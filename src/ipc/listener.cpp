#include "ipc/listener.h"

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <utility>
#include <vector>

namespace totem::ipc {

Result<std::unique_ptr<UnixListener>> UnixListener::create(
    net::Reactor& reactor, Config config, FrameHandler on_frame,
    ClosedHandler on_closed) {
  if (!on_frame || !on_closed) {
    return Status(StatusCode::kInvalidArgument, "UnixListener needs callbacks");
  }
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (config.socket_path.empty() ||
      config.socket_path.size() >= sizeof(addr.sun_path)) {
    return Status(StatusCode::kInvalidArgument,
                  "bad socket path: '" + config.socket_path + "'");
  }
  std::memcpy(addr.sun_path, config.socket_path.c_str(),
              config.socket_path.size() + 1);

  const int fd = ::socket(AF_UNIX, SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC, 0);
  if (fd < 0) {
    return Status(StatusCode::kUnavailable,
                  std::string("socket: ") + std::strerror(errno));
  }
  // A stale path from a crashed daemon would fail the bind; a LIVE daemon's
  // path is also unlinked — last binder wins, as with corosync restarts.
  ::unlink(config.socket_path.c_str());
  if (::bind(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) < 0 ||
      ::listen(fd, 64) < 0) {
    const Status s(StatusCode::kUnavailable, "bind/listen " +
                                                 config.socket_path + ": " +
                                                 std::strerror(errno));
    ::close(fd);
    return s;
  }

  auto listener = std::unique_ptr<UnixListener>(new UnixListener(
      reactor, std::move(config), std::move(on_frame), std::move(on_closed)));
  listener->listen_fd_ = fd;
  UnixListener* raw = listener.get();
  reactor.register_fd(fd, [raw] { raw->on_acceptable(); });
  return listener;
}

UnixListener::UnixListener(net::Reactor& reactor, Config config,
                           FrameHandler on_frame, ClosedHandler on_closed)
    : reactor_(reactor),
      config_(std::move(config)),
      on_frame_(std::move(on_frame)),
      on_closed_(std::move(on_closed)) {
  egress_ = std::make_shared<Egress>();
  egress_->reactor = &reactor_;
  egress_->cap = config_.max_egress_bytes;
  wake_hook_id_ = reactor_.add_wake_hook([this] { drain_egress(); });
}

UnixListener::~UnixListener() {
  {
    // Detach cross-thread senders: send()/hangup() after this are no-ops.
    std::lock_guard<std::mutex> lk(egress_->mu);
    egress_->reactor = nullptr;
    egress_->conns.clear();
  }
  reactor_.remove_wake_hook(wake_hook_id_);
  while (!conns_.empty()) close_conn(conns_.begin()->first, CloseCause::kLocal);
  if (listen_fd_ >= 0) {
    reactor_.unregister_fd(listen_fd_);
    ::close(listen_fd_);
    ::unlink(config_.socket_path.c_str());
  }
}

bool UnixListener::send(std::uint64_t id, Bytes frame) {
  std::lock_guard<std::mutex> lk(egress_->mu);
  if (!egress_->reactor) return false;
  auto it = egress_->conns.find(id);
  if (it == egress_->conns.end()) return false;
  Egress::Pending& p = it->second;
  if (p.doomed) return false;
  if (p.bytes + frame.size() > egress_->cap) return false;  // backpressure
  p.bytes += frame.size();
  p.frames.push_back(std::move(frame));
  p.dirty = true;
  egress_->reactor->notify();
  return true;
}

void UnixListener::hangup(std::uint64_t id, Bytes frame) {
  std::lock_guard<std::mutex> lk(egress_->mu);
  if (!egress_->reactor) return;
  auto it = egress_->conns.find(id);
  if (it == egress_->conns.end()) return;
  Egress::Pending& p = it->second;
  if (p.doomed) return;
  p.frames.clear();
  p.bytes = frame.size();
  p.frames.push_back(std::move(frame));
  p.doomed = true;
  p.dirty = true;
  egress_->reactor->notify();
}

std::size_t UnixListener::queued_bytes(std::uint64_t id) const {
  std::lock_guard<std::mutex> lk(egress_->mu);
  auto it = egress_->conns.find(id);
  return it == egress_->conns.end() ? 0 : it->second.bytes;
}

void UnixListener::on_acceptable() {
  for (;;) {
    const int fd =
        ::accept4(listen_fd_, nullptr, nullptr, SOCK_NONBLOCK | SOCK_CLOEXEC);
    if (fd < 0) return;  // EAGAIN or transient error: wait for the next round
    if (conns_.size() >= config_.max_connections) {
      ++stats_.rejected;
      ::close(fd);
      continue;
    }
    ++stats_.accepted;
    const std::uint64_t id = next_conn_id_++;
    conns_[id].fd = fd;
    {
      std::lock_guard<std::mutex> lk(egress_->mu);
      egress_->conns[id];  // open the cross-thread egress slot
    }
    reactor_.register_fd(fd, [this, id] { on_readable(id); });
  }
}

void UnixListener::on_readable(std::uint64_t id) {
  auto it = conns_.find(id);
  if (it == conns_.end()) return;
  Conn& c = it->second;
  char buf[65536];
  for (;;) {
    const ssize_t n = ::read(c.fd, buf, sizeof(buf));
    if (n > 0) {
      c.in.feed(buf, static_cast<std::size_t>(n));
      continue;
    }
    if (n == 0) {
      close_conn(id, CloseCause::kRemote);
      return;
    }
    if (errno == EAGAIN || errno == EWOULDBLOCK) break;
    if (errno == EINTR) continue;
    close_conn(id, CloseCause::kRemote);
    return;
  }
  while (auto frame = c.in.pop()) {
    on_frame_(id, std::move(*frame));
    // The handler may have (indirectly) closed this connection.
    if (conns_.find(id) == conns_.end()) return;
  }
  if (c.in.corrupted()) {
    // Best effort: tell the client why before the socket drops. The write
    // goes straight out — a conn this broken gets no queueing courtesy.
    const Bytes bye = encode_goodbye(GoodbyeReason::kProtocolViolation);
    (void)::send(c.fd, bye.data(), bye.size(), MSG_NOSIGNAL);
    close_conn(id, CloseCause::kProtocol);
  }
}

void UnixListener::drain_egress() {
  // Move queued frames into reactor-side out buffers. Collect doomed ids
  // and flush outside the lock — flush() may close and re-lock (via
  // close_conn erasing the egress slot).
  std::vector<std::uint64_t> ready;
  std::vector<std::uint64_t> doomed;
  {
    std::lock_guard<std::mutex> lk(egress_->mu);
    for (auto& [id, p] : egress_->conns) {
      if (!p.dirty) continue;
      p.dirty = false;
      auto cit = conns_.find(id);
      if (cit == conns_.end()) continue;
      Conn& c = cit->second;
      if (p.doomed) {
        // Discard anything part-written except... nothing: a doomed conn's
        // stream integrity no longer matters, only the GOODBYE attempt.
        c.out.clear();
        c.off = 0;
      }
      for (Bytes& f : p.frames) {
        c.out.insert(c.out.end(), f.begin(), f.end());
      }
      p.frames.clear();
      // p.bytes stays until flush() reports progress — it is the cap.
      (p.doomed ? doomed : ready).push_back(id);
    }
  }
  for (const std::uint64_t id : ready) flush(id);
  for (const std::uint64_t id : doomed) {
    flush(id);  // one best-effort attempt to land the GOODBYE
    close_conn(id, CloseCause::kLocal);
  }
}

void UnixListener::flush(std::uint64_t id) {
  auto it = conns_.find(id);
  if (it == conns_.end()) return;
  Conn& c = it->second;
  std::size_t written = 0;
  while (c.off < c.out.size()) {
    const ssize_t n =
        ::send(c.fd, c.out.data() + c.off, c.out.size() - c.off, MSG_NOSIGNAL);
    if (n > 0) {
      c.off += static_cast<std::size_t>(n);
      written += static_cast<std::size_t>(n);
      continue;
    }
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) break;
    if (n < 0 && errno == EINTR) continue;
    close_conn(id, CloseCause::kRemote);  // EPIPE etc: the reader is gone
    return;
  }
  if (written > 0) {
    std::lock_guard<std::mutex> lk(egress_->mu);
    auto eit = egress_->conns.find(id);
    if (eit != egress_->conns.end()) {
      eit->second.bytes -= std::min(eit->second.bytes, written);
    }
  }
  if (c.off == c.out.size()) {
    c.out.clear();
    c.off = 0;
    if (c.write_registered) {
      reactor_.unregister_fd_write(c.fd);
      c.write_registered = false;
    }
  } else if (!c.write_registered) {
    reactor_.register_fd_write(c.fd, [this, id] { flush(id); });
    c.write_registered = true;
  }
}

void UnixListener::close_conn(std::uint64_t id, CloseCause cause) {
  auto it = conns_.find(id);
  if (it == conns_.end()) return;
  const int fd = it->second.fd;
  reactor_.unregister_fd(fd);
  if (it->second.write_registered) reactor_.unregister_fd_write(fd);
  ::close(fd);
  conns_.erase(it);
  {
    std::lock_guard<std::mutex> lk(egress_->mu);
    egress_->conns.erase(id);
  }
  switch (cause) {
    case CloseCause::kRemote: ++stats_.closed_remote; break;
    case CloseCause::kProtocol: ++stats_.closed_protocol; break;
    case CloseCause::kLocal: ++stats_.closed_local; break;
  }
  on_closed_(id, cause);
}

}  // namespace totem::ipc

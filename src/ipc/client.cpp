#include "ipc/client.h"

#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>

namespace totem::ipc {
namespace {

using Clock = std::chrono::steady_clock;

int poll_wait_ms(Clock::time_point deadline) {
  const auto left = std::chrono::duration_cast<std::chrono::milliseconds>(
      deadline - Clock::now());
  if (left.count() <= 0) return 0;
  return static_cast<int>(std::min<long long>(left.count(), 60'000));
}

}  // namespace

Result<std::unique_ptr<Client>> Client::connect(Options options) {
  auto client = std::unique_ptr<Client>(new Client(std::move(options)));
  if (Status s = client->dial_and_handshake(); !s.is_ok()) return s;
  return client;
}

Client::~Client() {
  if (fd_ >= 0) ::close(fd_);
}

Status Client::dial_and_handshake() {
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (options_.socket_path.empty() ||
      options_.socket_path.size() >= sizeof(addr.sun_path)) {
    return {StatusCode::kInvalidArgument,
            "bad socket path: '" + options_.socket_path + "'"};
  }
  std::memcpy(addr.sun_path, options_.socket_path.c_str(),
              options_.socket_path.size() + 1);

  fd_ = ::socket(AF_UNIX, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (fd_ < 0) {
    return {StatusCode::kUnavailable, std::string("socket: ") + std::strerror(errno)};
  }
  if (::connect(fd_, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) < 0) {
    const Status s{StatusCode::kUnavailable,
                   "connect " + options_.socket_path + ": " + std::strerror(errno)};
    ::close(fd_);
    fd_ = -1;
    return s;
  }

  if (Status s = write_all(encode_hello(Hello{})); !s.is_ok()) return s;

  // The HELLO_ACK must be the first frame on the stream.
  const auto deadline = Clock::now() + options_.request_timeout;
  while (true) {
    if (auto frame = in_.pop()) {
      if (frame->type != FrameType::kHelloAck) {
        drop_connection();
        return {StatusCode::kFailedPrecondition, "expected HELLO_ACK"};
      }
      auto ack = decode_hello_ack(frame->body);
      if (!ack) {
        drop_connection();
        return ack.status();
      }
      hello_ = ack.value();
      credits_ = hello_.initial_credits;
      dead_ = false;
      return Status::ok();
    }
    if (in_.corrupted()) {
      drop_connection();
      return {StatusCode::kMalformedPacket, "corrupt handshake stream"};
    }
    pollfd pfd{fd_, POLLIN, 0};
    const int rc = ::poll(&pfd, 1, poll_wait_ms(deadline));
    if (rc < 0 && errno != EINTR) {
      drop_connection();
      return {StatusCode::kUnavailable, std::string("poll: ") + std::strerror(errno)};
    }
    if (rc == 0) {
      drop_connection();
      return {StatusCode::kUnavailable, "handshake timed out"};
    }
    char buf[4096];
    const ssize_t n = ::read(fd_, buf, sizeof(buf));
    if (n > 0) {
      in_.feed(buf, static_cast<std::size_t>(n));
    } else if (n == 0 || (errno != EAGAIN && errno != EINTR)) {
      drop_connection();
      return {StatusCode::kUnavailable, "daemon closed during handshake"};
    }
  }
}

Status Client::write_all(const Bytes& frame) {
  if (fd_ < 0) return {StatusCode::kUnavailable, "not connected"};
  std::size_t off = 0;
  while (off < frame.size()) {
    const ssize_t n =
        ::send(fd_, frame.data() + off, frame.size() - off, MSG_NOSIGNAL);
    if (n > 0) {
      off += static_cast<std::size_t>(n);
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    // EPIPE / ECONNRESET: the daemon is gone (or evicted us mid-write).
    drop_connection();
    return {StatusCode::kUnavailable,
            std::string("send: ") + std::strerror(errno)};
  }
  return Status::ok();
}

void Client::drop_connection() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
  if (!dead_) {
    dead_ = true;
    Event e;
    e.type = Event::Type::kDisconnected;
    pending_.push_back(std::move(e));
  }
}

Status Client::pump(bool wait, Duration timeout) {
  if (fd_ < 0) return {StatusCode::kUnavailable, "not connected"};
  const auto deadline = Clock::now() + timeout;
  const std::size_t pending_at_entry = pending_.size();
  bool first_round = true;
  while (true) {
    // Drain complete frames before touching the socket again.
    while (auto frame = in_.pop()) {
      switch (frame->type) {
        case FrameType::kCredit: {
          if (auto c = decode_credit(frame->body)) credits_ += c.value().granted;
          break;
        }
        case FrameType::kDeliver: {
          if (auto d = decode_deliver(frame->body)) {
            Event e;
            e.type = Event::Type::kDeliver;
            e.deliver = std::move(d).take();
            pending_.push_back(std::move(e));
          }
          break;
        }
        case FrameType::kView: {
          if (auto v = decode_view(frame->body)) {
            Event e;
            e.type = Event::Type::kView;
            e.view = std::move(v).take();
            pending_.push_back(std::move(e));
          }
          break;
        }
        case FrameType::kStatus: {
          if (auto s = decode_status(frame->body)) {
            if (awaiting_cookie_ != 0 && s.value().cookie == awaiting_cookie_) {
              captured_status_ = std::move(s).take();
            }
            // Unsolicited STATUS (e.g. a send to a group we left racing the
            // leave) is dropped; the daemon returned the credit regardless.
          }
          break;
        }
        case FrameType::kGoodbye: {
          Event e;
          e.type = Event::Type::kGoodbye;
          e.goodbye_reason = GoodbyeReason::kShutdown;
          if (auto g = decode_goodbye(frame->body)) e.goodbye_reason = g.value();
          pending_.push_back(std::move(e));
          dead_ = true;  // poll() reports kDisconnected after the goodbye
          if (fd_ >= 0) {
            ::close(fd_);
            fd_ = -1;
          }
          return Status::ok();
        }
        default:
          break;  // unknown daemon->client frame: ignore, stay compatible
      }
    }
    if (in_.corrupted()) {
      drop_connection();
      return {StatusCode::kMalformedPacket, "corrupt stream from daemon"};
    }
    // Stop the moment this call produced something to report — a new event
    // for poll() or a captured reply for request(). Only keep waiting while
    // the frames seen so far were pure bookkeeping (CREDIT refills).
    if (wait && (pending_.size() > pending_at_entry ||
                 captured_status_.has_value())) {
      return Status::ok();
    }
    if (!wait && !first_round) return Status::ok();
    pollfd pfd{fd_, POLLIN, 0};
    const int wait_ms = wait ? poll_wait_ms(deadline) : 0;
    if (wait && wait_ms == 0 && !first_round) return Status::ok();
    const int rc = ::poll(&pfd, 1, wait ? wait_ms : 0);
    first_round = false;
    if (rc < 0) {
      if (errno == EINTR) continue;
      drop_connection();
      return {StatusCode::kUnavailable, std::string("poll: ") + std::strerror(errno)};
    }
    if (rc == 0) {
      if (!wait) return Status::ok();
      continue;  // re-check deadline at the top
    }
    char buf[65536];
    const ssize_t n = ::read(fd_, buf, sizeof(buf));
    if (n > 0) {
      in_.feed(buf, static_cast<std::size_t>(n));
      continue;
    }
    if (n < 0 && (errno == EAGAIN || errno == EINTR)) continue;
    drop_connection();  // EOF or hard error
    return Status::ok();
  }
}

Status Client::request(const Bytes& frame, std::uint32_t cookie) {
  if (dead_ || fd_ < 0) return {StatusCode::kUnavailable, "not connected"};
  if (Status s = write_all(frame); !s.is_ok()) return s;
  awaiting_cookie_ = cookie;
  captured_status_.reset();
  const auto deadline = Clock::now() + options_.request_timeout;
  while (!captured_status_) {
    if (dead_ || fd_ < 0) {
      awaiting_cookie_ = 0;
      return {StatusCode::kUnavailable, "disconnected awaiting reply"};
    }
    if (Clock::now() >= deadline) {
      awaiting_cookie_ = 0;
      return {StatusCode::kUnavailable, "request timed out"};
    }
    if (Status s = pump(true, std::chrono::milliseconds(50)); !s.is_ok()) {
      awaiting_cookie_ = 0;
      return s;
    }
  }
  awaiting_cookie_ = 0;
  StatusReply reply = std::move(*captured_status_);
  captured_status_.reset();
  if (reply.code == StatusCode::kOk) return Status::ok();
  return {reply.code, std::move(reply.detail)};
}

Status Client::join(const std::string& group) {
  const std::uint32_t cookie = next_cookie_++;
  Status s = request(encode_join(GroupRequest{cookie, group}), cookie);
  if (s.is_ok()) joined_.insert(group);
  return s;
}

Status Client::leave(const std::string& group) {
  const std::uint32_t cookie = next_cookie_++;
  Status s = request(encode_leave(GroupRequest{cookie, group}), cookie);
  if (s.is_ok()) joined_.erase(group);
  return s;
}

Status Client::send(const std::string& group, BytesView payload) {
  if (dead_ || fd_ < 0) return {StatusCode::kUnavailable, "not connected"};
  if (payload.size() > hello_.max_message_bytes) {
    return {StatusCode::kInvalidArgument,
            "payload exceeds max_message_bytes (" +
                std::to_string(hello_.max_message_bytes) + ")"};
  }
  if (credits_ == 0) {
    // Harvest any CREDIT frames already on the wire, then fast-fail: the
    // contract is that send() never blocks on a congested ring.
    if (Status s = pump(false, Duration::zero()); !s.is_ok()) return s;
  }
  if (credits_ == 0) {
    return {StatusCode::kResourceExhausted, "no send credits"};
  }
  SendRequest req;
  req.cookie = next_cookie_++;
  req.group = group;
  req.payload.assign(payload.begin(), payload.end());
  if (Status s = write_all(encode_send(req)); !s.is_ok()) return s;
  --credits_;
  return Status::ok();
}

std::optional<Client::Event> Client::poll(Duration timeout) {
  if (!pending_.empty()) {
    Event e = std::move(pending_.front());
    pending_.pop_front();
    return e;
  }
  if (dead_ || fd_ < 0) {
    Event e;
    e.type = Event::Type::kDisconnected;
    return e;
  }
  (void)pump(true, timeout);
  if (pending_.empty()) return std::nullopt;
  Event e = std::move(pending_.front());
  pending_.pop_front();
  return e;
}

Status Client::reconnect() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
  dead_ = false;
  pending_.clear();       // events from the previous incarnation are stale
  in_ = FrameBuffer{};
  awaiting_cookie_ = 0;
  captured_status_.reset();
  if (Status s = dial_and_handshake(); !s.is_ok()) return s;
  for (const std::string& group : joined_) {
    const std::uint32_t cookie = next_cookie_++;
    if (Status s = request(encode_join(GroupRequest{cookie, group}), cookie);
        !s.is_ok()) {
      return s;
    }
  }
  return Status::ok();
}

}  // namespace totem::ipc

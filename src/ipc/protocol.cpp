#include "ipc/protocol.h"

namespace totem::ipc {
namespace {

constexpr std::size_t kMaxGroupName = 255;

/// Start a frame: reserve the length prefix, write the type byte. finish()
/// patches the prefix with the body size.
class FrameWriter {
 public:
  explicit FrameWriter(FrameType type, std::size_t reserve = 64) : w_(reserve + 5) {
    w_.u32(0);  // length prefix, patched by finish()
    w_.u8(static_cast<std::uint8_t>(type));
  }

  ByteWriter& body() { return w_; }

  [[nodiscard]] Bytes finish() && {
    const auto body_len = static_cast<std::uint32_t>(w_.size() - kLengthPrefixBytes);
    w_.patch_u32(0, body_len);
    return std::move(w_).take();
  }

 private:
  ByteWriter w_;
};

void write_group(ByteWriter& w, const std::string& group) {
  w.u8(static_cast<std::uint8_t>(group.size() > kMaxGroupName ? kMaxGroupName
                                                              : group.size()));
  w.raw(to_bytes(group.substr(0, kMaxGroupName)));
}

Result<std::string> read_group(ByteReader& r) {
  auto len = r.u8();
  if (!len) return len.status();
  auto raw = r.raw(len.value());
  if (!raw) return raw.status();
  return totem::to_string(raw.value());
}

void write_refs(ByteWriter& w, const std::vector<ClientRef>& refs) {
  w.u32(static_cast<std::uint32_t>(refs.size()));
  for (const auto& ref : refs) {
    w.u32(ref.node);
    w.u64(ref.client);
  }
}

Result<std::vector<ClientRef>> read_refs(ByteReader& r) {
  auto count = r.u32();
  if (!count) return count.status();
  // Each ref is 12 bytes; bound the claimed count by what is actually left.
  if (count.value() > r.remaining() / 12) {
    return Status{StatusCode::kMalformedPacket, "ref list overruns frame"};
  }
  std::vector<ClientRef> refs;
  refs.reserve(count.value());
  for (std::uint32_t i = 0; i < count.value(); ++i) {
    auto node = r.u32();
    auto client = r.u64();
    if (!node || !client) return Status{StatusCode::kMalformedPacket, "short ref"};
    refs.push_back(ClientRef{node.value(), client.value()});
  }
  return refs;
}

}  // namespace

Bytes encode_hello(const Hello& h) {
  FrameWriter f(FrameType::kHello);
  f.body().u32(h.version);
  return std::move(f).finish();
}

Bytes encode_hello_ack(const HelloAck& a) {
  FrameWriter f(FrameType::kHelloAck);
  f.body().u32(a.node);
  f.body().u64(a.client_id);
  f.body().u32(a.initial_credits);
  f.body().u32(a.max_message_bytes);
  return std::move(f).finish();
}

Bytes encode_join(const GroupRequest& r) {
  FrameWriter f(FrameType::kJoin, r.group.size() + 8);
  f.body().u32(r.cookie);
  write_group(f.body(), r.group);
  return std::move(f).finish();
}

Bytes encode_leave(const GroupRequest& r) {
  FrameWriter f(FrameType::kLeave, r.group.size() + 8);
  f.body().u32(r.cookie);
  write_group(f.body(), r.group);
  return std::move(f).finish();
}

Bytes encode_send(const SendRequest& r) {
  FrameWriter f(FrameType::kSend, r.group.size() + r.payload.size() + 16);
  f.body().u32(r.cookie);
  write_group(f.body(), r.group);
  f.body().raw(r.payload);
  return std::move(f).finish();
}

Bytes encode_status(const StatusReply& s) {
  FrameWriter f(FrameType::kStatus, s.detail.size() + 16);
  f.body().u32(s.cookie);
  f.body().u8(static_cast<std::uint8_t>(s.code));
  f.body().raw(to_bytes(s.detail));
  return std::move(f).finish();
}

Bytes encode_credit(const Credit& c) {
  FrameWriter f(FrameType::kCredit);
  f.body().u32(c.granted);
  return std::move(f).finish();
}

Bytes encode_deliver(const Deliver& d) {
  FrameWriter f(FrameType::kDeliver, d.group.size() + d.payload.size() + 32);
  write_group(f.body(), d.group);
  f.body().u32(d.origin.node);
  f.body().u64(d.origin.client);
  f.body().u64(d.seq);
  f.body().raw(d.payload);
  return std::move(f).finish();
}

Bytes encode_view(const View& v) {
  FrameWriter f(FrameType::kView,
                v.group.size() + 16 + 12 * (v.members.size() + v.added.size() +
                                            v.removed.size()));
  write_group(f.body(), v.group);
  f.body().u64(v.view_seq);
  write_refs(f.body(), v.members);
  write_refs(f.body(), v.added);
  write_refs(f.body(), v.removed);
  return std::move(f).finish();
}

Bytes encode_goodbye(GoodbyeReason reason) {
  FrameWriter f(FrameType::kGoodbye);
  f.body().u8(static_cast<std::uint8_t>(reason));
  return std::move(f).finish();
}

Result<Hello> decode_hello(BytesView body) {
  ByteReader r(body);
  auto version = r.u32();
  if (!version) return version.status();
  return Hello{version.value()};
}

Result<HelloAck> decode_hello_ack(BytesView body) {
  ByteReader r(body);
  auto node = r.u32();
  auto client = r.u64();
  auto credits = r.u32();
  auto max_msg = r.u32();
  if (!node || !client || !credits || !max_msg) {
    return Status{StatusCode::kMalformedPacket, "short HELLO_ACK"};
  }
  return HelloAck{node.value(), client.value(), credits.value(), max_msg.value()};
}

Result<GroupRequest> decode_group_request(BytesView body) {
  ByteReader r(body);
  auto cookie = r.u32();
  if (!cookie) return cookie.status();
  auto group = read_group(r);
  if (!group) return group.status();
  return GroupRequest{cookie.value(), std::move(group).take()};
}

Result<SendRequest> decode_send(BytesView body) {
  ByteReader r(body);
  auto cookie = r.u32();
  if (!cookie) return cookie.status();
  auto group = read_group(r);
  if (!group) return group.status();
  auto payload = r.raw(r.remaining());
  SendRequest out{cookie.value(), std::move(group).take(), {}};
  out.payload.assign(payload.value().begin(), payload.value().end());
  return out;
}

Result<StatusReply> decode_status(BytesView body) {
  ByteReader r(body);
  auto cookie = r.u32();
  auto code = r.u8();
  if (!cookie || !code) return Status{StatusCode::kMalformedPacket, "short STATUS"};
  auto detail = r.raw(r.remaining());
  return StatusReply{cookie.value(), static_cast<StatusCode>(code.value()),
                     totem::to_string(detail.value())};
}

Result<Credit> decode_credit(BytesView body) {
  ByteReader r(body);
  auto granted = r.u32();
  if (!granted) return granted.status();
  return Credit{granted.value()};
}

Result<Deliver> decode_deliver(BytesView body) {
  ByteReader r(body);
  auto group = read_group(r);
  if (!group) return group.status();
  auto node = r.u32();
  auto client = r.u64();
  auto seq = r.u64();
  if (!node || !client || !seq) {
    return Status{StatusCode::kMalformedPacket, "short DELIVER"};
  }
  auto payload = r.raw(r.remaining());
  Deliver out;
  out.group = std::move(group).take();
  out.origin = ClientRef{node.value(), client.value()};
  out.seq = seq.value();
  out.payload.assign(payload.value().begin(), payload.value().end());
  return out;
}

Result<View> decode_view(BytesView body) {
  ByteReader r(body);
  auto group = read_group(r);
  if (!group) return group.status();
  auto view_seq = r.u64();
  if (!view_seq) return view_seq.status();
  auto members = read_refs(r);
  if (!members) return members.status();
  auto added = read_refs(r);
  if (!added) return added.status();
  auto removed = read_refs(r);
  if (!removed) return removed.status();
  View v;
  v.group = std::move(group).take();
  v.view_seq = view_seq.value();
  v.members = std::move(members).take();
  v.added = std::move(added).take();
  v.removed = std::move(removed).take();
  return v;
}

Result<GoodbyeReason> decode_goodbye(BytesView body) {
  ByteReader r(body);
  auto reason = r.u8();
  if (!reason) return reason.status();
  return static_cast<GoodbyeReason>(reason.value());
}

void FrameBuffer::feed(const void* data, std::size_t n) {
  const auto* b = static_cast<const std::byte*>(data);
  buf_.insert(buf_.end(), b, b + n);
}

std::optional<Frame> FrameBuffer::pop() {
  if (corrupted_) return std::nullopt;
  const std::size_t avail = buf_.size() - off_;
  if (avail < kLengthPrefixBytes) return std::nullopt;
  // Portable LE decode (matches ByteWriter::u32).
  const std::uint32_t body_len =
      static_cast<std::uint32_t>(static_cast<std::uint8_t>(buf_[off_])) |
             static_cast<std::uint32_t>(static_cast<std::uint8_t>(buf_[off_ + 1])) << 8 |
             static_cast<std::uint32_t>(static_cast<std::uint8_t>(buf_[off_ + 2])) << 16 |
             static_cast<std::uint32_t>(static_cast<std::uint8_t>(buf_[off_ + 3])) << 24;
  if (body_len < 1 || body_len > kMaxFrameBody) {
    corrupted_ = true;
    return std::nullopt;
  }
  if (avail < kLengthPrefixBytes + body_len) return std::nullopt;
  Frame f;
  f.type = static_cast<FrameType>(
      static_cast<std::uint8_t>(buf_[off_ + kLengthPrefixBytes]));
  f.body.assign(buf_.begin() + static_cast<std::ptrdiff_t>(off_ + kLengthPrefixBytes + 1),
                buf_.begin() + static_cast<std::ptrdiff_t>(off_ + kLengthPrefixBytes + body_len));
  off_ += kLengthPrefixBytes + body_len;
  // Compact once the consumed prefix dominates, so the buffer cannot grow
  // without bound across a long-lived connection.
  if (off_ > 4096 && off_ * 2 > buf_.size()) {
    buf_.erase(buf_.begin(), buf_.begin() + static_cast<std::ptrdiff_t>(off_));
    off_ = 0;
  }
  return f;
}

}  // namespace totem::ipc

// totem::ipc::Client — the thin library an application process links to
// talk to its node's totemd (src/daemon/) over the Unix socket protocol in
// ipc/protocol.h. This is the cpg-style surface: connect, join/leave named
// process groups, send, and poll for totally-ordered deliveries and
// membership views.
//
// The client is deliberately synchronous and single-threaded (one instance
// per thread; no internal locking): join/leave block for the daemon's
// STATUS reply, send() never blocks — it fast-fails with
// RESOURCE_EXHAUSTED when the credit window is empty (credits come back on
// CREDIT frames as the daemon hands messages to the ring) — and poll()
// surfaces everything else as a stream of Events. Total order guarantee:
// every client in a group, on every node, observes DELIVER events for that
// group in the same sequence (Deliver::seq is the ring sequence number and
// is strictly increasing per group at every client).
//
// Crash/restart handling: when the daemon dies, poll() yields a
// kDisconnected event (and join/send start failing kUnavailable).
// reconnect() re-dials the socket, repeats the HELLO handshake, and
// re-joins every group the application had joined — the daemon broadcast
// leaves for the dead connection, so peers see a leave+join pair, never a
// silent identity swap (the ClientRef changes).
#pragma once

#include <cstdint>
#include <deque>
#include <memory>
#include <optional>
#include <set>
#include <string>

#include "common/bytes.h"
#include "common/status.h"
#include "common/types.h"
#include "ipc/protocol.h"

namespace totem::ipc {

class Client {
 public:
  struct Options {
    std::string socket_path;
    /// Budget for connect()+handshake and for each blocking request's
    /// STATUS reply; expiry surfaces as kUnavailable.
    Duration request_timeout = std::chrono::seconds(10);
  };

  struct Event {
    enum class Type : std::uint8_t {
      kDeliver = 1,       ///< a group message, in total order
      kView = 2,          ///< agreed membership change for a joined group
      kGoodbye = 3,       ///< daemon evicted us (reason says why)
      kDisconnected = 4,  ///< socket died — reconnect() to reattach
    };
    Type type{};
    Deliver deliver;               ///< kDeliver
    View view;                     ///< kView
    GoodbyeReason goodbye_reason;  ///< kGoodbye
  };

  /// Dial + HELLO/HELLO_ACK handshake.
  static Result<std::unique_ptr<Client>> connect(Options options);
  ~Client();

  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;

  /// Block until the daemon accepts the join (kOk), rejects it, or the
  /// request times out. DELIVER/VIEW frames arriving meanwhile are queued
  /// for poll(), never lost. Joining twice is kOk (idempotent).
  Status join(const std::string& group);

  /// Counterpart of join(); after kOk no further frames for `group` arrive
  /// (a VIEW showing our own removal is delivered first).
  Status leave(const std::string& group);

  /// Never blocks. kResourceExhausted when no send credits remain (poll()
  /// or any blocking call harvests CREDIT frames and refills the window);
  /// kInvalidArgument when `payload` exceeds max_message_bytes();
  /// kUnavailable once disconnected.
  Status send(const std::string& group, BytesView payload);

  /// Wait up to `timeout` for the next event; nullopt on timeout. After
  /// kGoodbye/kDisconnected it keeps returning kDisconnected immediately.
  [[nodiscard]] std::optional<Event> poll(Duration timeout);

  /// Re-dial after a daemon restart: fresh handshake (new client_id), then
  /// re-join every group join()ed before the disconnect.
  Status reconnect();

  [[nodiscard]] bool connected() const { return fd_ >= 0; }
  [[nodiscard]] NodeId node() const { return hello_.node; }
  [[nodiscard]] std::uint64_t client_id() const { return hello_.client_id; }
  /// Our cluster-wide identity as it appears in Views.
  [[nodiscard]] ClientRef self() const { return {hello_.node, hello_.client_id}; }
  [[nodiscard]] std::uint32_t credits() const { return credits_; }
  [[nodiscard]] std::uint32_t max_message_bytes() const {
    return hello_.max_message_bytes;
  }

 private:
  explicit Client(Options options) : options_(std::move(options)) {}

  Status dial_and_handshake();
  /// Read whatever is available (blocking up to `timeout` for the first
  /// byte if `wait`), turning frames into queued events / credit refills.
  Status pump(bool wait, Duration timeout);
  /// Blocking request: write `frame`, pump until STATUS{cookie} arrives.
  Status request(const Bytes& frame, std::uint32_t cookie);
  Status write_all(const Bytes& frame);
  void drop_connection();  ///< close fd, queue kDisconnected

  Options options_;
  int fd_ = -1;
  HelloAck hello_;
  FrameBuffer in_;
  std::deque<Event> pending_;
  std::set<std::string> joined_;  ///< for reconnect()
  std::uint32_t credits_ = 0;
  std::uint32_t next_cookie_ = 1;
  std::uint32_t awaiting_cookie_ = 0;          ///< request() in flight
  std::optional<StatusReply> captured_status_; ///< its matched reply
  bool dead_ = false;  ///< disconnect already surfaced; poll() repeats it
};

}  // namespace totem::ipc

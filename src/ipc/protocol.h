// totemd IPC wire protocol: the frame vocabulary spoken between the
// per-node daemon (src/daemon/) and its local client processes over a
// SOCK_STREAM Unix-domain socket (docs/DAEMON.md is the operator view).
//
// This is the openais/corosync executive model: applications do not join
// the Totem ring — they connect to the daemon on their node, which
// multiplexes them onto its one api::Node. The protocol is therefore
// deliberately small and asymmetric:
//
//   client -> daemon: HELLO, JOIN, LEAVE, SEND
//   daemon -> client: HELLO_ACK, STATUS, CREDIT, DELIVER, VIEW, GOODBYE
//
// Frames are length-prefixed ([u32 len][u8 type][body]) with every
// multi-byte field little-endian through common/bytes.h — the same codec
// discipline as the ring's wire format: a malformed frame from a client is
// a countable protocol violation (the daemon hangs up), never a crash.
//
// Flow control vocabulary (the part that keeps a stalled client from
// stalling the ring — DESIGN.md §18):
//   * SEND carries no acknowledgement; the acknowledgement IS the returned
//     credit. A client holds `initial_credits` send credits, spends one per
//     SEND, and regains one per CREDIT unit once the daemon has handed the
//     message to the ring. Out of credits => the client library fast-fails
//     with RESOURCE_EXHAUSTED (it never blocks the caller).
//   * DELIVER frames are queued per client with a byte cap; a reader that
//     lets the queue exceed the cap is evicted (GOODBYE + close), because
//     a totally-ordered stream can be delivered gap-free or not at all.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "common/bytes.h"
#include "common/status.h"
#include "common/types.h"

namespace totem::ipc {

/// Bumped on any incompatible frame change; HELLO carries it and the daemon
/// rejects mismatches (STATUS kFailedPrecondition + close).
constexpr std::uint32_t kProtocolVersion = 1;

/// Hard ceiling on one frame's body (type byte + fields + payload). The
/// daemon enforces it on ingest (oversize => protocol violation) and the
/// codec refuses to build bigger frames. Large enough for a 1 MiB payload
/// plus headers — the ring fragments payloads transparently (srp/wire.h).
constexpr std::size_t kMaxFrameBody = (1u << 20) + 4096;

/// Frame length prefix (u32, little-endian), excluding itself.
constexpr std::size_t kLengthPrefixBytes = 4;

enum class FrameType : std::uint8_t {
  kHello = 1,     ///< client -> daemon: {u32 version}
  kHelloAck = 2,  ///< daemon -> client: {u32 node, u64 client_id, u32 credits,
                  ///<                    u32 max_message_bytes}
  kJoin = 3,      ///< client -> daemon: {u32 cookie, group}
  kLeave = 4,     ///< client -> daemon: {u32 cookie, group}
  kSend = 5,      ///< client -> daemon: {u32 cookie, group, payload}
  kStatus = 6,    ///< daemon -> client: {u32 cookie, u8 code, detail}
  kCredit = 7,    ///< daemon -> client: {u32 granted}
  kDeliver = 8,   ///< daemon -> client: {group, u32 origin_node,
                  ///<                    u64 origin_client, u64 seq, payload}
  kView = 9,      ///< daemon -> client: {group, u64 view_seq, members, added,
                  ///<                    removed} (each a ClientRef list)
  kGoodbye = 10,  ///< daemon -> client: {u8 reason} — then the socket closes
};

/// Why the daemon hung up (GOODBYE body).
enum class GoodbyeReason : std::uint8_t {
  kShutdown = 1,          ///< daemon stopping (clean)
  kSlowReader = 2,        ///< delivery queue exceeded the byte cap
  kProtocolViolation = 3, ///< malformed/oversize frame or credit overdraft
};

[[nodiscard]] constexpr const char* to_string(GoodbyeReason r) {
  switch (r) {
    case GoodbyeReason::kShutdown: return "shutdown";
    case GoodbyeReason::kSlowReader: return "slow-reader";
    case GoodbyeReason::kProtocolViolation: return "protocol-violation";
  }
  return "?";
}

/// Cluster-wide identity of one attached client process: the ring node its
/// daemon runs on plus the daemon-assigned local id. Group views list these.
struct ClientRef {
  NodeId node = kInvalidNode;
  std::uint64_t client = 0;

  friend bool operator==(const ClientRef& a, const ClientRef& b) {
    return a.node == b.node && a.client == b.client;
  }
  friend bool operator<(const ClientRef& a, const ClientRef& b) {
    return a.node != b.node ? a.node < b.node : a.client < b.client;
  }
};

// ---- decoded frame bodies ----

struct Hello {
  std::uint32_t version = kProtocolVersion;
};

struct HelloAck {
  NodeId node = kInvalidNode;
  std::uint64_t client_id = 0;
  std::uint32_t initial_credits = 0;
  std::uint32_t max_message_bytes = 0;
};

/// JOIN and LEAVE share a shape; `cookie` pairs the daemon's STATUS reply
/// with the request (client-chosen, echoed verbatim).
struct GroupRequest {
  std::uint32_t cookie = 0;
  std::string group;
};

struct SendRequest {
  std::uint32_t cookie = 0;
  std::string group;
  Bytes payload;
};

struct StatusReply {
  std::uint32_t cookie = 0;
  StatusCode code = StatusCode::kOk;
  std::string detail;
};

struct Credit {
  std::uint32_t granted = 0;
};

struct Deliver {
  std::string group;
  ClientRef origin;
  std::uint64_t seq = 0;  ///< ring sequence number: the total-order witness
  Bytes payload;
};

/// One agreed group membership view. `view_seq` is the ring sequence number
/// of the join/leave announcement that produced it — identical at every
/// daemon, so clients on different nodes can compare views directly.
struct View {
  std::string group;
  std::uint64_t view_seq = 0;
  std::vector<ClientRef> members;  ///< sorted
  std::vector<ClientRef> added;    ///< sorted
  std::vector<ClientRef> removed;  ///< sorted
};

// ---- encoding (returns the complete frame: length prefix included) ----

[[nodiscard]] Bytes encode_hello(const Hello& h);
[[nodiscard]] Bytes encode_hello_ack(const HelloAck& a);
[[nodiscard]] Bytes encode_join(const GroupRequest& r);
[[nodiscard]] Bytes encode_leave(const GroupRequest& r);
[[nodiscard]] Bytes encode_send(const SendRequest& r);
[[nodiscard]] Bytes encode_status(const StatusReply& s);
[[nodiscard]] Bytes encode_credit(const Credit& c);
[[nodiscard]] Bytes encode_deliver(const Deliver& d);
[[nodiscard]] Bytes encode_view(const View& v);
[[nodiscard]] Bytes encode_goodbye(GoodbyeReason reason);

// ---- decoding (body only, after the [len][type] prefix is stripped) ----

[[nodiscard]] Result<Hello> decode_hello(BytesView body);
[[nodiscard]] Result<HelloAck> decode_hello_ack(BytesView body);
[[nodiscard]] Result<GroupRequest> decode_group_request(BytesView body);
[[nodiscard]] Result<SendRequest> decode_send(BytesView body);
[[nodiscard]] Result<StatusReply> decode_status(BytesView body);
[[nodiscard]] Result<Credit> decode_credit(BytesView body);
[[nodiscard]] Result<Deliver> decode_deliver(BytesView body);
[[nodiscard]] Result<View> decode_view(BytesView body);
[[nodiscard]] Result<GoodbyeReason> decode_goodbye(BytesView body);

/// One complete frame popped off a stream.
struct Frame {
  FrameType type{};
  Bytes body;
};

/// Incremental stream deframer shared by the daemon's listener and the
/// client library: feed() raw socket bytes, pop() complete frames.
/// Rejects frames whose announced body exceeds kMaxFrameBody so a
/// corrupt length prefix cannot make either side buffer unbounded data.
class FrameBuffer {
 public:
  void feed(const void* data, std::size_t n);

  /// Pop the next complete frame, or nullopt when more bytes are needed.
  /// After an oversize/malformed length the buffer is poisoned: pop()
  /// returns nullopt forever and corrupted() is true — hang up.
  [[nodiscard]] std::optional<Frame> pop();
  [[nodiscard]] bool corrupted() const { return corrupted_; }
  [[nodiscard]] std::size_t buffered_bytes() const { return buf_.size() - off_; }

 private:
  Bytes buf_;
  std::size_t off_ = 0;  // consumed prefix, compacted opportunistically
  bool corrupted_ = false;
};

}  // namespace totem::ipc

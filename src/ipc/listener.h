// UnixListener: the daemon side of the totemd IPC socket (ipc/protocol.h).
//
// A SOCK_STREAM Unix-domain listener on the Reactor that accepts local
// client processes, deframes their byte stream into ipc::Frame values, and
// flushes queued egress frames without ever blocking the loop. It is the
// transport under src/daemon/ — it knows framing and flow-control plumbing,
// but nothing about groups, credits or the ring (that is Daemon's job).
//
// Threading. Accepts, reads, writes and both callbacks happen on the
// reactor thread. Exactly three entry points are safe from other threads —
// the ordering thread calls them when the ring delivers:
//   * send(id, frame)   — queue one egress frame; REFUSES (returns false)
//     when the connection's queued bytes would exceed max_egress_bytes.
//     This is the slow-reader backpressure edge: the caller decides what
//     refusal means (the daemon evicts).
//   * hangup(id, frame) — drop everything queued, queue `frame` (a GOODBYE)
//     past the cap, then close after ONE best-effort flush attempt. A
//     wedged client's kernel buffer is full, so the GOODBYE may be lost —
//     eviction must not depend on the evictee reading.
//   * queued_bytes(id)  — metrics snapshot of the cross-thread queue.
// All three take one mutex, kick Reactor::notify(), and let the reactor's
// wake hook marshal the work back onto the loop (the TelemetryServer
// ReplyQueue pattern, DESIGN.md §16).
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>

#include "common/status.h"
#include "ipc/protocol.h"
#include "net/reactor.h"

namespace totem::ipc {

/// Why a connection went away (ClosedHandler argument).
enum class CloseCause : std::uint8_t {
  kRemote = 1,    ///< peer closed or socket error — client crash/exit
  kProtocol = 2,  ///< listener hung up on malformed framing
  kLocal = 3,     ///< hangup()/shutdown — the daemon already knows why
};

class UnixListener {
 public:
  struct Config {
    std::string socket_path;            ///< unlinked on create and destroy
    std::size_t max_connections = 128;  ///< extra accepts close instantly
    /// Per-connection cap on queued egress bytes (cross-thread queue plus
    /// the partially flushed buffer). send() refuses past this.
    std::size_t max_egress_bytes = 4u << 20;
  };

  /// Reactor thread: one complete frame from connection `id`.
  using FrameHandler = std::function<void(std::uint64_t id, Frame frame)>;
  /// Reactor thread: connection `id` is gone; `id` is never reused.
  using ClosedHandler = std::function<void(std::uint64_t id, CloseCause cause)>;

  /// Bind + listen + register with the reactor. Call from the reactor
  /// thread or before it starts. Fails if the path cannot be bound.
  static Result<std::unique_ptr<UnixListener>> create(net::Reactor& reactor,
                                                      Config config,
                                                      FrameHandler on_frame,
                                                      ClosedHandler on_closed);
  ~UnixListener();

  UnixListener(const UnixListener&) = delete;
  UnixListener& operator=(const UnixListener&) = delete;

  /// Thread-safe. Queue one already-encoded frame. Returns false (and
  /// queues nothing) when the connection is unknown, doomed, or the frame
  /// would push queued bytes past max_egress_bytes.
  [[nodiscard]] bool send(std::uint64_t id, Bytes frame);

  /// Thread-safe. Evict: discard queued egress, queue `frame` past the
  /// cap, close after one flush attempt. ClosedHandler fires with kLocal.
  void hangup(std::uint64_t id, Bytes frame);

  /// Thread-safe. Bytes currently queued for `id` (0 if unknown).
  [[nodiscard]] std::size_t queued_bytes(std::uint64_t id) const;

  [[nodiscard]] const std::string& path() const { return config_.socket_path; }

  struct Stats {  // reactor thread only
    std::uint64_t accepted = 0;
    std::uint64_t rejected = 0;        ///< over max_connections
    std::uint64_t closed_remote = 0;
    std::uint64_t closed_protocol = 0;
    std::uint64_t closed_local = 0;
  };
  [[nodiscard]] const Stats& stats() const { return stats_; }

 private:
  /// Cross-thread egress: frames queued by send()/hangup() under `mu`,
  /// drained onto the reactor by the wake hook. The reactor pointer is
  /// nulled in ~UnixListener so late senders become no-ops.
  struct Egress {
    struct Pending {
      std::deque<Bytes> frames;
      std::size_t bytes = 0;    ///< queued here + unflushed in Conn::out
      bool doomed = false;      ///< hangup() called: close after one flush
      bool dirty = false;       ///< has frames the reactor has not taken
    };
    mutable std::mutex mu;
    net::Reactor* reactor = nullptr;
    std::map<std::uint64_t, Pending> conns;
    std::size_t cap = 0;
  };

  /// Reactor-thread connection state.
  struct Conn {
    int fd = -1;
    FrameBuffer in;
    Bytes out;             ///< flattened frames being written
    std::size_t off = 0;   ///< out bytes already written
    bool write_registered = false;
  };

  UnixListener(net::Reactor& reactor, Config config, FrameHandler on_frame,
               ClosedHandler on_closed);

  void on_acceptable();
  void on_readable(std::uint64_t id);
  void drain_egress();                       ///< wake hook: move queued frames
  void flush(std::uint64_t id);              ///< write() until done or EAGAIN
  void close_conn(std::uint64_t id, CloseCause cause);

  net::Reactor& reactor_;
  Config config_;
  FrameHandler on_frame_;
  ClosedHandler on_closed_;
  int listen_fd_ = -1;
  std::uint64_t next_conn_id_ = 1;
  std::map<std::uint64_t, Conn> conns_;
  std::shared_ptr<Egress> egress_;
  std::uint64_t wake_hook_id_ = 0;
  Stats stats_;
};

}  // namespace totem::ipc

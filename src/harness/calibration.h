// Calibration of the simulated substrate to the paper's testbed.
//
// The paper's evaluation (§8) ran on Pentium II 450 MHz / Pentium III
// 900 MHz-1 GHz workstations with 3Com 100 Mbit/s NICs under Linux 2.2.
// These constants set the simulated per-packet/per-message CPU costs so the
// headline anchor holds: an UNREPLICATED 4-node ring delivers ≈9,000 1-KB
// msgs/s — ~90% utilization of a 100 Mbit/s Ethernet (paper §2) — and the
// qualitative ordering of Figures 6-9 follows from the model:
//   * active replication doubles network-stack calls  => CPU-bound, slower;
//   * passive replication doubles wire capacity but protocol processing
//     becomes the bottleneck                           => faster, but < 2x.
#pragma once

#include "net/sim_network.h"
#include "srp/config.h"
#include "srp/wire.h"

namespace totem::harness {

/// Per-packet network stack traversal costs (sendto()/recvfrom() on the
/// paper's hosts and kernel).
///
/// The send-side per-byte budget is split between the kernel stack proper
/// (checksum + DMA setup, paid on every sendto()) and the user-space copy
/// of the payload into the socket layer. A sender that hands the stack an
/// already-encoded shared buffer pays only the kernel share; a sender that
/// passes a raw byte view pays both, which sums to the original 0.007
/// single-constant calibration. The receive side keeps its single
/// constant: the kernel copies the frame into the receiver regardless of
/// how the sender staged it.
[[nodiscard]] inline net::HostCostModel paper_host_costs() {
  net::HostCostModel costs;
  costs.send_packet_cost = Duration{20};
  costs.recv_packet_cost = Duration{34};
  costs.send_byte_cost_us = 0.004;
  costs.recv_byte_cost_us = 0.008;
  costs.copy_byte_cost_us = 0.003;
  return costs;
}

/// Per-protocol-unit processing costs (ordering, dedup, delivery, token
/// handling) charged by the SRP to the host CPU. The paper names exactly
/// this processing — "detecting and retransmitting missing messages,
/// imposing a total order on the messages, and updating liveness
/// information" — as what caps passive replication below 2x (§8).
inline void apply_paper_srp_costs(srp::Config& config) {
  config.per_msg_send_cost = Duration{10};
  config.per_msg_recv_cost = Duration{28};
  config.per_token_cost = Duration{12};
}

/// Network parameters matching the paper's framing math: the 94 bytes of
/// Ethernet+IP+UDP+Totem headers are split between our 22-byte packet
/// header (already inside the packet bytes) and 72 bytes of modeled frame
/// overhead; the frame payload limit is the paper's 1424-byte Totem body
/// plus our header.
[[nodiscard]] inline net::SimNetwork::Params paper_net_params() {
  net::SimNetwork::Params params;
  params.bandwidth_mbps = 100.0;
  params.base_latency = Duration{6};
  params.latency_jitter = Duration{3};
  params.frame_overhead = 94 - static_cast<std::uint32_t>(srp::wire::kPacketHeaderSize);
  params.max_frame_payload =
      1424 + static_cast<std::uint32_t>(srp::wire::kPacketHeaderSize);
  return params;
}

}  // namespace totem::harness

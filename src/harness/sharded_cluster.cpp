#include "harness/sharded_cluster.h"

#include <algorithm>
#include <chrono>

#include "api/stats.h"

namespace totem::harness {

namespace {

/// Shared backend assembly: the router borrows every shard's logs + kvs.
std::unique_ptr<shard::ShardedKv> build_router(
    shard::ShardedKv::Config router_config, std::size_t shard_count,
    const std::vector<std::vector<std::unique_ptr<smr::ReplicatedLog>>>& logs,
    const std::vector<std::vector<std::unique_ptr<smr::ReplicatedKv>>>& machines) {
  router_config.partitioner.shard_count = shard_count;
  std::vector<shard::ShardBackend> backends(shard_count);
  for (std::size_t s = 0; s < shard_count; ++s) {
    for (const auto& log : logs[s]) backends[s].logs.push_back(log.get());
    for (const auto& kv : machines[s]) backends[s].kvs.push_back(kv.get());
  }
  return std::make_unique<shard::ShardedKv>(router_config, std::move(backends));
}

}  // namespace

SimShardedCluster::SimShardedCluster(ShardedClusterConfig config)
    : config_(std::move(config)) {
  for (std::size_t s = 0; s < config_.shard_count; ++s) {
    ClusterConfig cc;
    cc.node_count = config_.nodes_per_shard;
    cc.network_count = config_.networks_per_shard;
    cc.style = config_.style;
    cc.seed = config_.seed + 1000 * s;
    cc.srp = config_.srp;
    cc.record_payloads = config_.record_payloads;
    cc.trace_capacity = config_.trace_capacity;
    clusters_.push_back(std::make_unique<SimCluster>(cc));

    buses_.emplace_back();
    machines_.emplace_back();
    logs_.emplace_back();
    for (std::size_t i = 0; i < config_.nodes_per_shard; ++i) {
      buses_[s].push_back(std::make_unique<api::GroupBus>(clusters_[s]->node(i)));
      machines_[s].push_back(std::make_unique<smr::ReplicatedKv>());
      smr::ReplicatedLog::Config lc;
      lc.group = config_.group_prefix + std::to_string(s);
      lc.trace = clusters_[s]->mutable_trace(i);
      logs_[s].push_back(std::make_unique<smr::ReplicatedLog>(
          clusters_[s]->simulator(), *buses_[s].back(), *machines_[s].back(),
          std::move(lc)));
    }
  }
  router_ = build_router(config_.router, config_.shard_count, logs_, machines_);
}

SimShardedCluster::~SimShardedCluster() = default;

void SimShardedCluster::start_all() {
  for (std::size_t s = 0; s < clusters_.size(); ++s) {
    clusters_[s]->start_all();
    for (auto& log : logs_[s]) (void)log->start();
  }
}

void SimShardedCluster::run_for(Duration d) {
  Duration remaining = d;
  while (remaining > Duration::zero()) {
    const Duration slice = std::min(remaining, config_.lockstep_slice);
    for (auto& cluster : clusters_) cluster->run_for(slice);
    remaining -= slice;
  }
}

bool SimShardedCluster::run_until_live(Duration budget) {
  // Live logs are not enough: the submit replica must also have seen its
  // peers' "established" announcements, or the router's majority gate
  // rejects the first writes a caller issues right after this returns.
  const auto all_ready = [&] {
    for (const auto& shard_logs : logs_) {
      for (const auto& log : shard_logs) {
        if (!log->live()) return false;
      }
    }
    for (std::size_t s = 0; s < clusters_.size(); ++s) {
      if (!router_->shard_available(s)) return false;
    }
    return true;
  };
  Duration spent{0};
  while (!all_ready() && spent < budget) {
    run_for(config_.lockstep_slice);
    spent += config_.lockstep_slice;
  }
  return all_ready();
}

TimePoint SimShardedCluster::now(std::size_t s) const {
  return clusters_[s]->simulator().now();
}

void SimShardedCluster::kill_shard(std::size_t s) {
  for (std::size_t i = 0; i < config_.nodes_per_shard; ++i) {
    clusters_[s]->crash(static_cast<NodeId>(i));
  }
}

void SimShardedCluster::restore_shard(std::size_t s) {
  for (std::size_t i = 0; i < config_.nodes_per_shard; ++i) {
    clusters_[s]->reconnect(static_cast<NodeId>(i));
    for (std::size_t n = 0; n < config_.networks_per_shard; ++n) {
      clusters_[s]->node(i).replicator().reset_network(static_cast<NetworkId>(n));
    }
  }
}

shard::ClusterSnapshot SimShardedCluster::snapshot(bool include_nodes) {
  std::vector<std::vector<api::StatsSnapshot>> per_shard;
  if (include_nodes) {
    per_shard.resize(clusters_.size());
    for (std::size_t s = 0; s < clusters_.size(); ++s) {
      for (std::size_t i = 0; i < config_.nodes_per_shard; ++i) {
        per_shard[s].push_back(
            api::snapshot(clusters_[s]->node(i), clusters_[s]->transports(i)));
      }
    }
  }
  return router_->roll_up(std::move(per_shard));
}

UdpShardedCluster::UdpShardedCluster(ShardedClusterConfig config,
                                     std::uint16_t base_port)
    : config_(std::move(config)) {
  for (std::size_t s = 0; s < config_.shard_count; ++s) {
    nodes_.emplace_back();
    node_transports_.emplace_back();
    buses_.emplace_back();
    machines_.emplace_back();
    logs_.emplace_back();
    std::vector<NodeId> members;
    for (std::size_t i = 0; i < config_.nodes_per_shard; ++i) {
      members.push_back(static_cast<NodeId>(i));
    }
    for (std::size_t i = 0; i < config_.nodes_per_shard; ++i) {
      std::vector<net::Transport*> raw;
      std::vector<const net::Transport*> views;
      for (std::size_t n = 0; n < config_.networks_per_shard; ++n) {
        net::UdpTransport::Config tc;
        tc.network = static_cast<NetworkId>(n);
        tc.local_node = static_cast<NodeId>(i);
        const auto block = static_cast<std::uint16_t>(
            base_port + (s * config_.networks_per_shard + n) * kPortsPerBlock);
        tc.peers = net::loopback_peers(
            block, static_cast<std::uint32_t>(config_.nodes_per_shard));
        auto t = net::UdpTransport::create(reactor_, tc);
        if (!t.is_ok()) {
          status_ = t.status();
          return;
        }
        transports_.push_back(std::move(t).take());
        raw.push_back(transports_.back().get());
        views.push_back(transports_.back().get());
      }
      api::NodeConfig cfg;
      cfg.srp.node_id = static_cast<NodeId>(i);
      cfg.srp.initial_members = members;
      cfg.style = config_.style;
      nodes_[s].push_back(std::make_unique<api::Node>(reactor_, raw, cfg));
      node_transports_[s].push_back(std::move(views));
      buses_[s].push_back(std::make_unique<api::GroupBus>(*nodes_[s].back()));
      machines_[s].push_back(std::make_unique<smr::ReplicatedKv>());
      smr::ReplicatedLog::Config lc;
      lc.group = config_.group_prefix + std::to_string(s);
      logs_[s].push_back(std::make_unique<smr::ReplicatedLog>(
          reactor_, *buses_[s].back(), *machines_[s].back(), std::move(lc)));
    }
  }
  router_ = build_router(config_.router, config_.shard_count, logs_, machines_);
}

UdpShardedCluster::~UdpShardedCluster() = default;

void UdpShardedCluster::start_all() {
  for (auto& shard_nodes : nodes_) {
    for (auto& node : shard_nodes) node->start();
  }
  for (auto& shard_logs : logs_) {
    for (auto& log : shard_logs) (void)log->start();
  }
}

bool UdpShardedCluster::wait_all_live(Duration budget) {
  // As in SimShardedCluster::run_until_live: wait for router availability,
  // not just per-log liveness, so the first post-wait write is accepted.
  const auto all_ready = [&] {
    for (const auto& shard_logs : logs_) {
      for (const auto& log : shard_logs) {
        if (!log->live()) return false;
      }
    }
    for (std::size_t s = 0; s < logs_.size(); ++s) {
      if (!router_->shard_available(s)) return false;
    }
    return true;
  };
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::microseconds(budget.count());
  while (!all_ready() && std::chrono::steady_clock::now() < deadline) {
    reactor_.poll_once(Duration{5'000});
  }
  return all_ready();
}

shard::ClusterSnapshot UdpShardedCluster::snapshot(bool include_nodes) {
  std::vector<std::vector<api::StatsSnapshot>> per_shard;
  if (include_nodes) {
    per_shard.resize(nodes_.size());
    for (std::size_t s = 0; s < nodes_.size(); ++s) {
      for (std::size_t i = 0; i < nodes_[s].size(); ++i) {
        per_shard[s].push_back(
            api::snapshot(*nodes_[s][i], node_transports_[s][i]));
      }
    }
  }
  return router_->roll_up(std::move(per_shard));
}

}  // namespace totem::harness

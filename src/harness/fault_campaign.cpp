#include "harness/fault_campaign.h"

#include <algorithm>
#include <fstream>
#include <functional>
#include <sstream>

#include "api/stats.h"
#include "common/bytes.h"
#include "common/json.h"
#include "common/log.h"
#include "common/rng.h"
#include "common/trace.h"
#include "common/trace_merge.h"
#include "smr/replicated_kv.h"
#include "smr/replicated_log.h"

namespace totem::harness {

const char* to_string(FaultKind kind) {
  switch (kind) {
    case FaultKind::kCrashNode: return "crash-node";
    case FaultKind::kRestartNode: return "restart-node";
    case FaultKind::kPauseNode: return "pause-node";
    case FaultKind::kResumeNode: return "resume-node";
    case FaultKind::kKillNetwork: return "kill-network";
    case FaultKind::kRecoverNetwork: return "recover-network";
    case FaultKind::kLossBurst: return "loss-burst";
    case FaultKind::kEndLossBurst: return "end-loss-burst";
    case FaultKind::kCorruptionBurst: return "corruption-burst";
    case FaultKind::kEndCorruptionBurst: return "end-corruption-burst";
    case FaultKind::kPartition: return "partition";
    case FaultKind::kHealPartition: return "heal-partition";
    case FaultKind::kDropTokens: return "drop-tokens";
    case FaultKind::kKillNetworkAtState: return "kill-network-at-state";
    case FaultKind::kFlapNetwork: return "flap-network";
    case FaultKind::kEndFlap: return "end-flap";
    case FaultKind::kGrayDegrade: return "gray-degrade";
    case FaultKind::kEndGrayDegrade: return "end-gray-degrade";
    case FaultKind::kReorderBurst: return "reorder-burst";
    case FaultKind::kEndReorderBurst: return "end-reorder-burst";
    case FaultKind::kDuplicateBurst: return "duplicate-burst";
    case FaultKind::kEndDuplicateBurst: return "end-duplicate-burst";
  }
  return "?";
}

std::string to_string(const FaultEvent& ev) {
  std::ostringstream os;
  os << "t=" << ev.at.time_since_epoch().count() << "us " << to_string(ev.kind);
  switch (ev.kind) {
    case FaultKind::kCrashNode:
    case FaultKind::kRestartNode:
    case FaultKind::kPauseNode:
    case FaultKind::kResumeNode:
      os << " node=" << ev.node;
      break;
    case FaultKind::kKillNetwork:
    case FaultKind::kRecoverNetwork:
    case FaultKind::kHealPartition:
      os << " net=" << static_cast<int>(ev.network);
      break;
    case FaultKind::kLossBurst:
    case FaultKind::kCorruptionBurst:
    case FaultKind::kReorderBurst:
    case FaultKind::kDuplicateBurst:
      os << " net=" << static_cast<int>(ev.network) << " rate=" << ev.rate;
      break;
    case FaultKind::kEndLossBurst:
    case FaultKind::kEndCorruptionBurst:
    case FaultKind::kGrayDegrade:
    case FaultKind::kEndGrayDegrade:
    case FaultKind::kEndReorderBurst:
    case FaultKind::kEndDuplicateBurst:
    case FaultKind::kEndFlap:
      os << " net=" << static_cast<int>(ev.network);
      break;
    case FaultKind::kFlapNetwork:
      os << " net=" << static_cast<int>(ev.network)
         << " period=" << ev.period.count() << "us";
      break;
    case FaultKind::kPartition: {
      os << " net=" << static_cast<int>(ev.network) << " groups=";
      for (std::size_t g = 0; g < ev.groups.size(); ++g) {
        os << (g ? "|{" : "{");
        for (std::size_t k = 0; k < ev.groups[g].size(); ++k) {
          os << (k ? "," : "") << ev.groups[g][k];
        }
        os << "}";
      }
      break;
    }
    case FaultKind::kDropTokens:
      os << " net=" << static_cast<int>(ev.network) << " count=" << ev.count;
      break;
    case FaultKind::kKillNetworkAtState:
      os << " net=" << static_cast<int>(ev.network) << " node=" << ev.node
         << " state=" << srp::to_string(ev.state);
      break;
  }
  return os.str();
}

bool parse_style(const std::string& s, api::ReplicationStyle& out) {
  if (s == "active") {
    out = api::ReplicationStyle::kActive;
  } else if (s == "passive") {
    out = api::ReplicationStyle::kPassive;
  } else if (s == "active-passive") {
    out = api::ReplicationStyle::kActivePassive;
  } else {
    return false;
  }
  return true;
}

std::vector<FaultEvent> generate_schedule(const CampaignOptions& o) {
  // Decoupled from the cluster seed so the schedule and the sim's own
  // randomness (jitter, loss) draw from independent streams.
  Rng rng(o.seed * 0x9E3779B97F4A7C15uLL + 0xC4A7);
  std::vector<FaultEvent> out;

  const auto slot_start = [&](std::size_t slot) {
    return TimePoint{} + o.settle +
           o.event_spacing * static_cast<Duration::rep>(slot);
  };
  const auto jitter = [&] {
    const auto quarter = static_cast<std::uint64_t>(o.event_spacing.count() / 4);
    return Duration{static_cast<Duration::rep>(quarter ? rng.next_below(quarter) : 0)};
  };

  // Occupancy bookkeeping: a fault started at slot s with duration d "owns"
  // slots [s, s+d). `*_until` stores the last owned slot (as signed so -1
  // means free).
  long crash_until = -1, pause_until = -1;
  NodeId crash_victim = kInvalidNode, pause_victim = kInvalidNode;
  std::vector<long> net_dead_until(o.networks, -1);
  std::vector<long> net_lossy_until(o.networks, -1);
  std::vector<long> net_part_until(o.networks, -1);
  bool used_state_kill = false;

  const auto dead_nets_at = [&](long slot) {
    std::size_t n = 0;
    for (long u : net_dead_until) {
      if (u >= slot) ++n;
    }
    return n;
  };
  const auto pick_free_net = [&](const std::vector<long>& until, long slot) -> int {
    std::vector<NetworkId> free;
    for (std::size_t n = 0; n < until.size(); ++n) {
      if (until[n] < slot) free.push_back(static_cast<NetworkId>(n));
    }
    if (free.empty()) return -1;
    return free[rng.next_below(free.size())];
  };

  // Classic seeds draw from kinds 0-7; the degraded vocabulary appends
  // kinds 8-11 (flap / gray / reorder / duplicate). The count feeds the RNG,
  // so classic schedules stay byte-identical with the flag off.
  const int kind_count = o.degraded_vocabulary ? 12 : 8;
  for (std::size_t slot = 0; slot < o.events; ++slot) {
    const long s = static_cast<long>(slot);
    const long d = 1 + static_cast<long>(rng.next_below(2));  // 1-2 slots
    const int first = static_cast<int>(rng.next_below(kind_count));
    for (int attempt = 0; attempt < kind_count; ++attempt) {
      const int kind = (first + attempt) % kind_count;
      FaultEvent begin;
      begin.at = slot_start(slot) + jitter();
      FaultEvent end;
      end.at = slot_start(slot + static_cast<std::size_t>(d)) + jitter();
      bool placed = false;
      switch (kind) {
        case 0: {  // crash + restart
          if (crash_until >= s) break;
          NodeId victim;
          do {
            victim = static_cast<NodeId>(rng.next_below(o.nodes));
          } while (pause_until >= s && victim == pause_victim);
          crash_until = s + d - 1;
          crash_victim = victim;
          begin.kind = FaultKind::kCrashNode;
          begin.node = victim;
          end.kind = FaultKind::kRestartNode;
          end.node = victim;
          out.push_back(begin);
          out.push_back(end);
          placed = true;
          break;
        }
        case 1: {  // pause (mute) + resume
          if (pause_until >= s) break;
          NodeId victim;
          do {
            victim = static_cast<NodeId>(rng.next_below(o.nodes));
          } while (crash_until >= s && victim == crash_victim);
          pause_until = s + d - 1;
          pause_victim = victim;
          begin.kind = FaultKind::kPauseNode;
          begin.node = victim;
          end.kind = FaultKind::kResumeNode;
          end.node = victim;
          out.push_back(begin);
          out.push_back(end);
          placed = true;
          break;
        }
        case 2: {  // kill + recover one network
          if (dead_nets_at(s) + 1 > o.networks - 1) break;
          const int net = pick_free_net(net_dead_until, s);
          if (net < 0) break;
          net_dead_until[net] = s + d - 1;
          begin.kind = FaultKind::kKillNetwork;
          begin.network = static_cast<NetworkId>(net);
          end.kind = FaultKind::kRecoverNetwork;
          end.network = static_cast<NetworkId>(net);
          out.push_back(begin);
          out.push_back(end);
          placed = true;
          break;
        }
        case 3: {  // loss burst
          const int net = pick_free_net(net_lossy_until, s);
          if (net < 0) break;
          net_lossy_until[net] = s + d - 1;
          begin.kind = FaultKind::kLossBurst;
          begin.network = static_cast<NetworkId>(net);
          begin.rate = 0.15 + 0.2 * rng.next_double();
          end.kind = FaultKind::kEndLossBurst;
          end.network = static_cast<NetworkId>(net);
          out.push_back(begin);
          out.push_back(end);
          placed = true;
          break;
        }
        case 4: {  // corruption burst (CRC turns it into loss)
          const int net = pick_free_net(net_lossy_until, s);
          if (net < 0) break;
          net_lossy_until[net] = s + d - 1;
          begin.kind = FaultKind::kCorruptionBurst;
          begin.network = static_cast<NetworkId>(net);
          begin.rate = 0.05 + 0.1 * rng.next_double();
          end.kind = FaultKind::kEndCorruptionBurst;
          end.network = static_cast<NetworkId>(net);
          out.push_back(begin);
          out.push_back(end);
          placed = true;
          break;
        }
        case 5: {  // partition one network into two groups
          const int net = pick_free_net(net_part_until, s);
          if (net < 0) break;
          net_part_until[net] = s + d - 1;
          // A non-degenerate bitmask splits the nodes into two groups.
          const std::uint64_t mask =
              1 + rng.next_below((1uLL << o.nodes) - 2);
          std::vector<NodeId> a, b;
          for (std::size_t i = 0; i < o.nodes; ++i) {
            ((mask >> i) & 1 ? a : b).push_back(static_cast<NodeId>(i));
          }
          begin.kind = FaultKind::kPartition;
          begin.network = static_cast<NetworkId>(net);
          begin.groups = {a, b};
          end.kind = FaultKind::kHealPartition;
          end.network = static_cast<NetworkId>(net);
          out.push_back(begin);
          out.push_back(end);
          placed = true;
          break;
        }
        case 6: {  // deterministic token loss
          begin.kind = FaultKind::kDropTokens;
          begin.network = static_cast<NetworkId>(rng.next_below(o.networks));
          begin.count = 2 + static_cast<std::uint32_t>(rng.next_below(4));
          out.push_back(begin);
          placed = true;
          break;
        }
        case 7: {  // kill a network at a chosen protocol state
          if (used_state_kill || dead_nets_at(s) + 1 > o.networks - 1) break;
          const int net = pick_free_net(net_dead_until, s);
          if (net < 0) break;
          used_state_kill = true;
          // No paired recover: the global heal revives it. Conservatively
          // treat the network as dead until the end of the schedule.
          net_dead_until[net] = static_cast<long>(o.events);
          begin.kind = FaultKind::kKillNetworkAtState;
          begin.network = static_cast<NetworkId>(net);
          begin.node = static_cast<NodeId>(rng.next_below(o.nodes));
          static constexpr srp::SingleRing::State kTriggers[] = {
              srp::SingleRing::State::kGather, srp::SingleRing::State::kCommit,
              srp::SingleRing::State::kRecovery};
          begin.state = kTriggers[rng.next_below(3)];
          out.push_back(begin);
          placed = true;
          break;
        }
        case 8: {  // flap: network toggles dead/alive until the end event
          if (dead_nets_at(s) + 1 > o.networks - 1) break;
          const int net = pick_free_net(net_dead_until, s);
          if (net < 0) break;
          net_dead_until[net] = s + d - 1;
          begin.kind = FaultKind::kFlapNetwork;
          begin.network = static_cast<NetworkId>(net);
          begin.period =
              Duration{15'000 + static_cast<Duration::rep>(rng.next_below(30'000))};
          end.kind = FaultKind::kEndFlap;
          end.network = static_cast<NetworkId>(net);
          out.push_back(begin);
          out.push_back(end);
          placed = true;
          break;
        }
        case 9: {  // gray degrade: the gray_failure link profile
          const int net = pick_free_net(net_lossy_until, s);
          if (net < 0) break;
          net_lossy_until[net] = s + d - 1;
          begin.kind = FaultKind::kGrayDegrade;
          begin.network = static_cast<NetworkId>(net);
          end.kind = FaultKind::kEndGrayDegrade;
          end.network = static_cast<NetworkId>(net);
          out.push_back(begin);
          out.push_back(end);
          placed = true;
          break;
        }
        case 10: {  // reorder burst
          const int net = pick_free_net(net_lossy_until, s);
          if (net < 0) break;
          net_lossy_until[net] = s + d - 1;
          begin.kind = FaultKind::kReorderBurst;
          begin.network = static_cast<NetworkId>(net);
          begin.rate = 0.2 + 0.3 * rng.next_double();
          end.kind = FaultKind::kEndReorderBurst;
          end.network = static_cast<NetworkId>(net);
          out.push_back(begin);
          out.push_back(end);
          placed = true;
          break;
        }
        case 11: {  // duplicate burst
          const int net = pick_free_net(net_lossy_until, s);
          if (net < 0) break;
          net_lossy_until[net] = s + d - 1;
          begin.kind = FaultKind::kDuplicateBurst;
          begin.network = static_cast<NetworkId>(net);
          begin.rate = 0.05 + 0.15 * rng.next_double();
          end.kind = FaultKind::kEndDuplicateBurst;
          end.network = static_cast<NetworkId>(net);
          out.push_back(begin);
          out.push_back(end);
          placed = true;
          break;
        }
      }
      if (placed) break;
    }
  }

  std::stable_sort(out.begin(), out.end(),
                   [](const FaultEvent& a, const FaultEvent& b) { return a.at < b.at; });
  return out;
}

std::string CampaignResult::replay_command() const {
  std::ostringstream os;
  os << "totem_chaos --seed=" << options.seed
     << " --style=" << api::to_string(options.style)
     << " --networks=" << options.networks << " --events=" << options.events;
  if (options.kv_workload) os << " --kv";
  if (options.degraded_vocabulary) os << " --degraded";
  return os.str();
}

std::string CampaignResult::describe() const {
  std::ostringstream os;
  os << "campaign seed=" << options.seed << " style=" << api::to_string(options.style)
     << " nodes=" << options.nodes << " networks=" << options.networks
     << " events=" << options.events << "\nschedule:\n";
  for (const auto& ev : schedule) os << "  " << to_string(ev) << "\n";
  os << "verdict: " << report.to_string();
  if (!report.ok()) {
    if (!observations.empty()) os << "observations:\n" << observations;
    os << "replay: " << replay_command() << "\n";
  }
  return os.str();
}

bool CampaignResult::write_failure_artifact(const std::string& path) const {
  if (artifact_json.empty()) return false;
  std::ofstream out(path, std::ios::trunc);
  if (!out) return false;
  out << artifact_json << "\n";
  return static_cast<bool>(out);
}

namespace {

/// The triage bundle dumped when an invariant check fails: everything an
/// engineer needs to start on the failure without re-running it.
std::string build_artifact(const CampaignResult& result, SimCluster& cluster) {
  const CampaignOptions& o = result.options;
  JsonWriter w;
  w.begin_object();
  w.key("campaign");
  w.begin_object();
  w.kv("seed", o.seed);
  w.kv("style", api::to_string(o.style));
  w.kv("nodes", static_cast<std::uint64_t>(o.nodes));
  w.kv("networks", static_cast<std::uint64_t>(o.networks));
  w.kv("events", static_cast<std::uint64_t>(o.events));
  w.end_object();
  w.kv("replay", result.replay_command());
  w.key("violations");
  w.begin_array();
  for (const auto& v : result.report.violations) w.value(v);
  w.end_array();
  w.key("schedule");
  w.begin_array();
  for (const auto& ev : result.schedule) w.value(to_string(ev));
  w.end_array();
  w.key("nodes");
  w.begin_array();
  for (std::size_t i = 0; i < cluster.node_count(); ++i) {
    w.begin_object();
    w.kv("node", static_cast<std::uint64_t>(i));
    w.key("stats");
    w.raw(api::snapshot(cluster.node(i), cluster.transports(i)).to_json());
    w.key("trace");
    if (const TraceRing* tr = cluster.trace(i)) {
      w.raw(tr->to_json_array(o.artifact_trace_last_n));
    } else {
      w.raw("[]");
    }
    w.end_object();
  }
  w.end_array();
  // Merged cluster timeline (same last-N window as the per-node dumps):
  // load artifact["timeline"] straight into Perfetto to see what every node
  // was doing around the violation.
  std::vector<TraceRecord> all_records;
  for (std::size_t i = 0; i < cluster.node_count(); ++i) {
    if (const TraceRing* tr = cluster.trace(i)) {
      auto records = tr->snapshot();
      const std::size_t n = o.artifact_trace_last_n;
      const std::size_t skip =
          (n > 0 && records.size() > n) ? records.size() - n : 0;
      all_records.insert(all_records.end(), records.begin() + skip, records.end());
    }
  }
  w.key("timeline");
  w.raw(merge_to_chrome_trace(std::move(all_records)));
  w.end_object();
  return w.take();
}

}  // namespace

CampaignResult run_campaign(CampaignOptions o) {
  if (o.style == api::ReplicationStyle::kActivePassive && o.networks < 3) {
    o.networks = 3;  // the style's hard precondition (paper §7)
  }
  CampaignResult result;
  result.options = o;
  result.schedule = generate_schedule(o);

  ClusterConfig cfg;
  cfg.node_count = o.nodes;
  cfg.network_count = o.networks;
  cfg.style = o.style;
  cfg.seed = o.seed;
  cfg.srp.token_loss_timeout = Duration{100'000};
  cfg.srp.join_interval = Duration{10'000};
  cfg.srp.consensus_timeout = Duration{100'000};
  cfg.srp.commit_timeout = Duration{100'000};
  cfg.srp.announce_interval = Duration{200'000};  // fast post-heal merges
  cfg.srp.merge_backoff = Duration{1'000'000};
  if (!o.trace_dump_dir.empty()) {
    // A Perfetto dump wants the whole run, not the last ~0.3 s the default
    // ring holds. Ring depth has zero protocol feedback, so deepening it
    // cannot perturb the seeded schedule.
    cfg.trace_capacity = 1 << 17;
  }
  SimCluster cluster(cfg);
  auto& sim = cluster.simulator();

  // Optional replicated-KV stack on every node (V8). Built before start_all
  // so the GroupBus handler chain is in place for the first delivery;
  // declared after `cluster` so the logs' timer handles die first.
  std::vector<std::unique_ptr<api::GroupBus>> kv_buses;
  std::vector<std::unique_ptr<smr::ReplicatedKv>> kv_machines;
  std::vector<std::unique_ptr<smr::ReplicatedLog>> kv_logs;
  // Function-scope so the self-rescheduling timer lambdas that capture it
  // by reference outlive every sim.run_* call below.
  std::function<void(std::size_t)> kv_client;
  if (o.kv_workload) {
    for (std::size_t i = 0; i < o.nodes; ++i) {
      kv_buses.push_back(std::make_unique<api::GroupBus>(cluster.node(i)));
      kv_machines.push_back(std::make_unique<smr::ReplicatedKv>());
      smr::ReplicatedLog::Config kv_cfg;
      kv_cfg.trace = cluster.mutable_trace(i);
      kv_logs.push_back(std::make_unique<smr::ReplicatedLog>(
          cluster.simulator(), *kv_buses.back(), *kv_machines.back(),
          std::move(kv_cfg)));
    }
  }

  const TimePoint heal_time =
      TimePoint{} + o.settle +
      o.event_spacing * static_cast<Duration::rep>(o.events + 2);

  InvariantContext ctx;
  ctx.heal_time = heal_time;
  ctx.reformation_budget = o.reformation_budget;
  ctx.fault_report_grace = o.fault_report_grace;

  // Injury windows for V5, derived from the schedule (the state-triggered
  // kill appends its window at fire time).
  const auto& sched = result.schedule;
  for (std::size_t i = 0; i < sched.size(); ++i) {
    const auto& ev = sched[i];
    const auto close = [&](FaultKind end_kind) {
      for (std::size_t j = i + 1; j < sched.size(); ++j) {
        if (sched[j].kind == end_kind && sched[j].network == ev.network) {
          return sched[j].at;
        }
      }
      return heal_time;
    };
    switch (ev.kind) {
      case FaultKind::kKillNetwork:
        ctx.injured.push_back({ev.network, ev.at, close(FaultKind::kRecoverNetwork)});
        break;
      case FaultKind::kLossBurst:
        ctx.injured.push_back({ev.network, ev.at, close(FaultKind::kEndLossBurst)});
        break;
      case FaultKind::kCorruptionBurst:
        ctx.injured.push_back(
            {ev.network, ev.at, close(FaultKind::kEndCorruptionBurst)});
        break;
      case FaultKind::kPartition:
        ctx.injured.push_back({ev.network, ev.at, close(FaultKind::kHealPartition)});
        break;
      case FaultKind::kDropTokens:
        ctx.injured.push_back({ev.network, ev.at, ev.at});
        break;
      case FaultKind::kFlapNetwork:
        ctx.injured.push_back({ev.network, ev.at, close(FaultKind::kEndFlap)});
        break;
      case FaultKind::kGrayDegrade:
        // Gray failure includes a duplicate_rate: count-inflating, so a
        // reception-imbalance report may indict any network (see
        // InjuryWindow::any_network).
        ctx.injured.push_back(
            {ev.network, ev.at, close(FaultKind::kEndGrayDegrade), true});
        break;
      case FaultKind::kReorderBurst:
        ctx.injured.push_back(
            {ev.network, ev.at, close(FaultKind::kEndReorderBurst)});
        break;
      case FaultKind::kDuplicateBurst:
        ctx.injured.push_back(
            {ev.network, ev.at, close(FaultKind::kEndDuplicateBurst), true});
        break;
      default:
        break;
    }
  }

  // Flap toggles, pre-scheduled deterministically from the schedule itself
  // (begin fails the network; every period it alternates until the end
  // event recovers it for good).
  for (std::size_t i = 0; i < sched.size(); ++i) {
    const auto& ev = sched[i];
    if (ev.kind != FaultKind::kFlapNetwork) continue;
    TimePoint flap_end = heal_time;
    for (std::size_t j = i + 1; j < sched.size(); ++j) {
      if (sched[j].kind == FaultKind::kEndFlap && sched[j].network == ev.network) {
        flap_end = sched[j].at;
        break;
      }
    }
    bool down = true;  // the begin event itself fails the network
    for (TimePoint t = ev.at + ev.period; t < flap_end; t += ev.period) {
      down = !down;
      const bool fail_now = down;
      const NetworkId net = ev.network;
      sim.schedule_at(t, [&cluster, net, fail_now] {
        if (fail_now) {
          cluster.network(net).fail();
        } else {
          cluster.network(net).recover();
        }
      });
    }
  }

  for (const auto& ev : sched) {
    sim.schedule_at(ev.at, [&, ev] {
      switch (ev.kind) {
        case FaultKind::kCrashNode:
          cluster.crash(ev.node);
          break;
        case FaultKind::kRestartNode:
          cluster.reconnect(ev.node);
          break;
        case FaultKind::kPauseNode:  // mute: TX fault everywhere, RX intact
          for (std::size_t n = 0; n < cluster.network_count(); ++n) {
            cluster.network(n).set_send_fault(ev.node, true);
          }
          break;
        case FaultKind::kResumeNode:
          for (std::size_t n = 0; n < cluster.network_count(); ++n) {
            cluster.network(n).set_send_fault(ev.node, false);
          }
          break;
        case FaultKind::kKillNetwork:
          cluster.network(ev.network).fail();
          break;
        case FaultKind::kRecoverNetwork:
          cluster.network(ev.network).recover();
          // The administrator repairs promptly (paper §3: fault reports are
          // an alarm for a human; the campaign plays that human).
          for (std::size_t i = 0; i < cluster.node_count(); ++i) {
            cluster.node(i).replicator().reset_network(ev.network);
          }
          break;
        case FaultKind::kLossBurst:
          cluster.network(ev.network).set_loss_rate(ev.rate);
          break;
        case FaultKind::kEndLossBurst:
          cluster.network(ev.network).set_loss_rate(0.0);
          break;
        case FaultKind::kCorruptionBurst:
          cluster.network(ev.network).set_corruption_rate(ev.rate);
          break;
        case FaultKind::kEndCorruptionBurst:
          cluster.network(ev.network).set_corruption_rate(0.0);
          break;
        case FaultKind::kPartition:
          cluster.network(ev.network).set_partition(ev.groups);
          break;
        case FaultKind::kHealPartition:
          cluster.network(ev.network).clear_partition();
          break;
        case FaultKind::kDropTokens:
          cluster.network(ev.network).drop_next_unicasts(ev.count);
          break;
        case FaultKind::kKillNetworkAtState:
          cluster.set_app_state_observer(
              ev.node, [&, ev](srp::SingleRing::State s, const RingId&) {
                if (s != ev.state || sim.now() >= heal_time) return;
                if (cluster.network(ev.network).failed()) return;  // one-shot
                cluster.network(ev.network).fail();
                ctx.injured.push_back({ev.network, sim.now(), heal_time});
              });
          break;
        case FaultKind::kFlapNetwork:
          // The periodic toggles are pre-scheduled above; this is edge 0.
          cluster.network(ev.network).fail();
          break;
        case FaultKind::kEndFlap:
          cluster.network(ev.network).recover();
          for (std::size_t i = 0; i < cluster.node_count(); ++i) {
            cluster.node(i).replicator().reset_network(ev.network);
          }
          break;
        case FaultKind::kGrayDegrade:
          cluster.network(ev.network).set_default_profile(
              net::LinkProfile::gray_failure());
          break;
        case FaultKind::kReorderBurst: {
          net::LinkProfile p = cluster.network(ev.network).default_profile();
          p.reorder_rate = ev.rate;
          p.reorder_window = Duration{2'000};
          cluster.network(ev.network).set_default_profile(p);
          break;
        }
        case FaultKind::kDuplicateBurst: {
          net::LinkProfile p = cluster.network(ev.network).default_profile();
          p.duplicate_rate = ev.rate;
          cluster.network(ev.network).set_default_profile(p);
          break;
        }
        case FaultKind::kEndGrayDegrade:
        case FaultKind::kEndReorderBurst:
        case FaultKind::kEndDuplicateBurst:
          cluster.network(ev.network).reset_default_profile();
          break;
      }
    });
  }

  // Global heal: every fault is undone, pending sabotage cleared, the
  // replicators' faulty marks reset. V6 starts its clock here.
  sim.schedule_at(heal_time, [&] {
    for (std::size_t n = 0; n < cluster.network_count(); ++n) {
      auto& net = cluster.network(n);
      net.recover();
      net.clear_partition();
      net.set_loss_rate(0.0);
      net.set_corruption_rate(0.0);
      net.clear_pending_unicast_drops();
      net.reset_default_profile();
      net.clear_link_profiles();
    }
    for (std::size_t i = 0; i < cluster.node_count(); ++i) {
      cluster.reconnect(static_cast<NodeId>(i));
      cluster.set_app_state_observer(static_cast<NodeId>(i), nullptr);
      for (std::size_t n = 0; n < cluster.network_count(); ++n) {
        cluster.node(i).replicator().reset_network(static_cast<NetworkId>(n));
      }
    }
  });

  cluster.start_all();

  if (o.kv_workload) {
    for (auto& log : kv_logs) (void)log->start();
    // Seeded closed-ish-loop clients: each node keeps a put/delete/CAS mix
    // flowing while it is live. Payloads are tagged (seed, node, counter)
    // so V2's global-uniqueness premise also covers the KV stream.
    auto kv_rng = std::make_shared<Rng>(o.seed * 77 + 13);
    auto kv_counter = std::make_shared<std::uint64_t>(0);
    kv_client = [&, kv_rng, kv_counter](std::size_t n) {
      if (sim.now() >= heal_time) return;
      if (kv_logs[n]->live()) {
        const std::string key =
            "k" + std::to_string(kv_rng->next_below(o.kv_keys));
        const Bytes value = to_bytes("v" + std::to_string(o.seed) + "-" +
                                     std::to_string(n) + "-" +
                                     std::to_string((*kv_counter)++));
        const std::uint64_t dice = kv_rng->next_below(10);
        Bytes cmd;
        if (dice < 7) {
          cmd = smr::ReplicatedKv::encode_put(key, value);
        } else if (dice < 9) {
          const auto* e = kv_machines[n]->get(key);
          cmd = smr::ReplicatedKv::encode_cas(key, e ? e->version : 0, value);
        } else {
          cmd = smr::ReplicatedKv::encode_del(key);
        }
        (void)kv_logs[n]->submit(cmd);
      }
      sim.schedule(o.kv_client_interval +
                       Duration{static_cast<Duration::rep>(
                           kv_rng->next_below(3'000))},
                   [&kv_client, n] { kv_client(n); });
    };
    for (std::size_t n = 0; n < o.nodes; ++n) kv_client(n);
  }

  // Uniquely-tagged background traffic from every node until the heal.
  Rng traffic_rng(o.seed * 31 + 5);
  std::uint64_t counter = 0;
  std::function<void(std::size_t)> trickle = [&](std::size_t n) {
    if (sim.now() >= heal_time) return;
    (void)cluster.node(n).send(
        to_bytes("c" + std::to_string(o.seed) + "-" + std::to_string(counter++)));
    sim.schedule(Duration{4'000 + traffic_rng.next_below(4'000)},
                 [&trickle, n] { trickle(n); });
  };
  for (std::size_t n = 0; n < cluster.node_count(); ++n) trickle(n);

  sim.run_until(heal_time + o.convergence);

  // Post-heal probes: exactly-once delivery everywhere (V7).
  for (std::size_t n = 0; n < cluster.node_count(); ++n) {
    const std::string probe = "p" + std::to_string(o.seed) + "-" + std::to_string(n);
    ctx.probes.push_back(probe);
    (void)cluster.node(n).send(to_bytes(probe));
  }
  sim.run_for(o.drain);

  if (o.kv_workload) {
    // Give freshly re-synced replicas time to finish their transfer, then
    // take the V8 census.
    sim.run_for(o.kv_drain);
    for (std::size_t i = 0; i < o.nodes; ++i) {
      InvariantContext::ReplicaState r;
      r.node = static_cast<NodeId>(i);
      r.live = kv_logs[i]->live();
      r.applied_seq = kv_logs[i]->applied_seq();
      r.snapshot = kv_machines[i]->snapshot();
      ctx.replicas.push_back(std::move(r));
    }
  }

  result.report = check_invariants(cluster, ctx);
  if (!result.report.ok()) {
    result.observations = dump_observations(cluster);
    result.artifact_json = build_artifact(result, cluster);
  }
  if (!o.trace_dump_dir.empty()) {
    for (std::size_t i = 0; i < cluster.node_count(); ++i) {
      if (const TraceRing* tr = cluster.trace(i)) {
        const std::string path =
            o.trace_dump_dir + "/node" + std::to_string(i) + ".jsonl";
        std::ofstream out(path, std::ios::trunc);
        if (out) {
          out << tr->to_jsonl();
        } else {
          TLOG_WARN << "chaos: cannot write trace dump " << path;
        }
      }
    }
  }
  return result;
}

}  // namespace totem::harness

// SimCluster: M nodes x N simulated networks, fully wired.
//
// The shared fixture for integration tests, property tests and every
// benchmark: builds hosts, networks and api::Nodes inside one deterministic
// simulator, records everything the application layer observes (deliveries,
// membership views, network fault reports), and exposes the fault-injection
// controls of the underlying networks.
#pragma once

#include <memory>
#include <vector>

#include "api/node.h"
#include "common/trace.h"
#include "net/sim_network.h"
#include "rrp/replicator.h"
#include "sim/simulator.h"
#include "srp/single_ring.h"

namespace totem::harness {

struct ClusterConfig {
  std::size_t node_count = 4;
  std::size_t network_count = 2;
  api::ReplicationStyle style = api::ReplicationStyle::kActive;
  std::uint64_t seed = 1;

  net::SimNetwork::Params net_params;  // applied to every network
  net::HostCostModel host_costs;

  /// Template for every node's SRP config; node_id and initial_members are
  /// filled in per node (ids 0..node_count-1).
  srp::Config srp;
  rrp::ActiveConfig active;
  rrp::PassiveConfig passive;
  rrp::ActivePassiveConfig active_passive;

  /// Adaptive token-timeout tuning, applied to every node (api::NodeConfig).
  api::NodeConfig::AdaptiveTimeout adaptive_timeout;

  /// Health-model thresholds + optional periodic update, applied to every
  /// node (api::NodeConfig). Default = lazy updates on api::snapshot only.
  api::NodeConfig::Health health;

  /// Telemetry-endpoint knobs, copied into every api::NodeConfig. The sim
  /// cluster itself never opens sockets (NodeConfig documents this), but
  /// drivers that rebuild a config for live deployment inherit it.
  api::NodeConfig::Telemetry telemetry;

  /// Record every delivery's payload (disable for throughput benches to
  /// keep memory flat; counters still accumulate).
  bool record_payloads = true;

  /// Capacity of each node's protocol flight recorder (common/trace.h),
  /// wired into the SRP and RRP configs. 0 disables tracing entirely.
  std::size_t trace_capacity = 1024;
};

struct RecordedDelivery {
  NodeId origin = kInvalidNode;
  SeqNum seq = 0;
  Bytes payload;  // empty when record_payloads is off
  std::size_t payload_size = 0;
  bool recovered = false;
  RingId ring;  // ring whose seq space assigned `seq`
  TimePoint when{};
};

struct RecordedView {
  srp::MembershipView view;
  TimePoint when{};
};

struct RecordedFault {
  rrp::NetworkFaultReport report;
  NodeId at = kInvalidNode;
};

/// One safe-delivery watermark advance, tagged with the ring it was
/// announced on (the watermark restarts per ring).
struct RecordedSafe {
  RingId ring;
  SeqNum safe_seq = 0;
  TimePoint when{};
};

/// One protocol-state transition (Operational/Gather/Commit/Recovery).
struct RecordedState {
  srp::SingleRing::State state = srp::SingleRing::State::kOperational;
  RingId ring;
  TimePoint when{};
};

class SimCluster {
 public:
  explicit SimCluster(ClusterConfig config);
  ~SimCluster();

  SimCluster(const SimCluster&) = delete;
  SimCluster& operator=(const SimCluster&) = delete;

  /// Start every node (the representative injects the first token).
  void start_all();
  /// Start one node (for staggered-join scenarios).
  void start(std::size_t i) { nodes_[i]->start(); }

  /// Crash a node: it can no longer send or receive on any network. (Its
  /// timers keep firing — it will eventually form a singleton ring — but it
  /// is invisible to the survivors, exactly like a crashed process.)
  void crash(NodeId node);
  /// Undo crash(): reconnect the node's NICs (it will rejoin via Gather).
  void reconnect(NodeId node);
  void run_for(Duration d) { sim_.run_for(d); }
  void run_until(TimePoint t) { sim_.run_until(t); }

  [[nodiscard]] sim::Simulator& simulator() { return sim_; }
  [[nodiscard]] net::SimNetwork& network(std::size_t i) { return *networks_[i]; }
  [[nodiscard]] net::SimHost& host(std::size_t i) { return *hosts_[i]; }
  [[nodiscard]] api::Node& node(std::size_t i) { return *nodes_[i]; }
  [[nodiscard]] std::size_t node_count() const { return nodes_.size(); }
  [[nodiscard]] std::size_t network_count() const { return networks_.size(); }
  [[nodiscard]] const ClusterConfig& config() const { return config_; }

  /// Node i's flight recorder — null when trace_capacity is 0.
  [[nodiscard]] const TraceRing* trace(std::size_t i) const { return traces_[i].get(); }
  /// Mutable access for wiring the recorder into extra components built on
  /// top of the cluster (e.g. the fault campaign's replicated-KV logs).
  [[nodiscard]] TraceRing* mutable_trace(std::size_t i) { return traces_[i].get(); }
  /// Node i's transports (one per network) in api::snapshot()-ready form.
  [[nodiscard]] const std::vector<const net::Transport*>& transports(std::size_t i) const {
    return transports_[i];
  }

  // ---- recorded observations ----
  [[nodiscard]] const std::vector<RecordedDelivery>& deliveries(NodeId at) const {
    return deliveries_[at];
  }
  [[nodiscard]] const std::vector<RecordedView>& views(NodeId at) const {
    return views_[at];
  }
  [[nodiscard]] const std::vector<RecordedFault>& faults() const { return faults_; }
  [[nodiscard]] const std::vector<RecordedSafe>& safe_advances(NodeId at) const {
    return safe_advances_[at];
  }
  [[nodiscard]] const std::vector<RecordedState>& states(NodeId at) const {
    return states_[at];
  }
  [[nodiscard]] std::uint64_t delivered_count(NodeId at) const {
    return delivered_count_[at];
  }
  [[nodiscard]] std::uint64_t delivered_bytes(NodeId at) const {
    return delivered_bytes_[at];
  }
  /// Sum of per-node delivery counters.
  [[nodiscard]] std::uint64_t total_delivered() const;

  void clear_recordings();

  /// Attach an application-level deliver handler WITHOUT disabling the
  /// cluster's own recording (the recording handler chains into this).
  void set_app_deliver_handler(NodeId at, srp::SingleRing::DeliverHandler h) {
    app_deliver_[at] = std::move(h);
  }

  /// Attach a protocol-state observer WITHOUT disabling the cluster's own
  /// recording (the recording observer chains into this). Used by the fault
  /// campaign engine to trigger faults at a chosen protocol state.
  void set_app_state_observer(NodeId at, srp::SingleRing::StateObserver h) {
    app_state_[at] = std::move(h);
  }

 private:
  ClusterConfig config_;
  sim::Simulator sim_;
  std::vector<std::unique_ptr<net::SimNetwork>> networks_;
  std::vector<std::unique_ptr<net::SimHost>> hosts_;
  std::vector<std::unique_ptr<TraceRing>> traces_;  // before nodes_: outlives them
  std::vector<std::unique_ptr<api::Node>> nodes_;
  std::vector<std::vector<const net::Transport*>> transports_;

  std::vector<srp::SingleRing::DeliverHandler> app_deliver_;
  std::vector<srp::SingleRing::StateObserver> app_state_;
  std::vector<std::vector<RecordedDelivery>> deliveries_;
  std::vector<std::vector<RecordedView>> views_;
  std::vector<std::vector<RecordedSafe>> safe_advances_;
  std::vector<std::vector<RecordedState>> states_;
  std::vector<RecordedFault> faults_;
  std::vector<std::uint64_t> delivered_count_;
  std::vector<std::uint64_t> delivered_bytes_;
};

}  // namespace totem::harness

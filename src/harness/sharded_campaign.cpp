#include "harness/sharded_campaign.h"

#include <algorithm>
#include <map>
#include <set>

#include "common/bytes.h"
#include "common/rng.h"
#include "harness/sharded_cluster.h"
#include "shard/sharded_kv.h"
#include "smr/replicated_kv.h"

namespace totem::harness {

const char* to_string(ShardFaultKind kind) {
  switch (kind) {
    case ShardFaultKind::kKillShard: return "kill-shard";
    case ShardFaultKind::kRestoreShard: return "restore-shard";
    case ShardFaultKind::kKillShardNetwork: return "kill-shard-network";
    case ShardFaultKind::kRecoverShardNetwork: return "recover-shard-network";
    case ShardFaultKind::kLossBurst: return "loss-burst";
    case ShardFaultKind::kEndLossBurst: return "end-loss-burst";
  }
  return "?";
}

std::string to_string(const ShardFaultEvent& ev) {
  std::string out = "t=" + std::to_string(ev.at.time_since_epoch().count()) +
                    "us " + to_string(ev.kind) + " shard=" +
                    std::to_string(ev.shard);
  switch (ev.kind) {
    case ShardFaultKind::kKillShardNetwork:
    case ShardFaultKind::kRecoverShardNetwork:
      out += " network=" + std::to_string(ev.network);
      break;
    case ShardFaultKind::kLossBurst:
      out += " network=" + std::to_string(ev.network) +
             " rate=" + std::to_string(ev.rate);
      break;
    default:
      break;
  }
  return out;
}

std::vector<ShardFaultEvent> generate_sharded_schedule(
    const ShardedCampaignOptions& o) {
  Rng rng(o.seed * 131 + 17);
  std::vector<ShardFaultEvent> schedule;
  const TimePoint start = TimePoint{} + o.settle;
  for (std::size_t i = 0; i < o.events; ++i) {
    const TimePoint begin = start + o.event_spacing * static_cast<Duration::rep>(i);
    const TimePoint end = begin + o.fault_window;
    const std::size_t shard = rng.next_below(o.shards);
    // The first window is always the headline fault; later windows mix in
    // the single-ring vocabulary (scoped to one shard's networks).
    const std::uint64_t dice = i == 0 ? 0 : rng.next_below(3);
    ShardFaultEvent begin_ev;
    begin_ev.at = begin;
    begin_ev.shard = shard;
    ShardFaultEvent end_ev;
    end_ev.at = end;
    end_ev.shard = shard;
    switch (dice) {
      case 0:
        begin_ev.kind = ShardFaultKind::kKillShard;
        end_ev.kind = ShardFaultKind::kRestoreShard;
        break;
      case 1:
        begin_ev.kind = ShardFaultKind::kKillShardNetwork;
        end_ev.kind = ShardFaultKind::kRecoverShardNetwork;
        begin_ev.network = end_ev.network =
            static_cast<NetworkId>(rng.next_below(o.networks));
        break;
      default:
        begin_ev.kind = ShardFaultKind::kLossBurst;
        end_ev.kind = ShardFaultKind::kEndLossBurst;
        begin_ev.network = end_ev.network =
            static_cast<NetworkId>(rng.next_below(o.networks));
        begin_ev.rate = 0.15 + 0.1 * static_cast<double>(rng.next_below(3));
        break;
    }
    schedule.push_back(begin_ev);
    schedule.push_back(end_ev);
  }
  return schedule;
}

std::string ShardedCampaignResult::describe() const {
  std::string out = "sharded campaign: seed=" + std::to_string(options.seed) +
                    " style=" + api::to_string(options.style) +
                    " shards=" + std::to_string(options.shards) +
                    " nodes/shard=" + std::to_string(options.nodes_per_shard) +
                    " networks=" + std::to_string(options.networks) +
                    " events=" + std::to_string(options.events) + "\n";
  out += "schedule:\n";
  for (const auto& ev : schedule) out += "  " + to_string(ev) + "\n";
  out += "ops: completed=" + std::to_string(ops_completed) +
         " rejected=" + std::to_string(ops_rejected) + "\n";
  out += report.to_string();
  return out;
}

namespace {

/// One closed-loop router client: at most one op in flight; resubmits from
/// the slice loop (deterministic — no timers involved).
struct Client {
  bool idle = true;
};

struct CampaignState {
  Rng rng;
  std::uint64_t counter = 0;
  std::vector<Client> clients;
  /// Router op id -> submitting client.
  std::map<std::uint64_t, std::size_t> owner;
  /// Every value ever submitted for a key (pending or not): the V9.2
  /// "never wrong" reference set.
  std::map<std::string, std::set<std::string>> submitted;
};

}  // namespace

ShardedCampaignResult run_sharded_campaign(ShardedCampaignOptions o) {
  ShardedCampaignResult result;
  result.options = o;
  result.schedule = generate_sharded_schedule(o);
  auto violation = [&](const std::string& v) {
    result.report.violations.push_back(v);
  };

  ShardedClusterConfig cfg;
  cfg.shard_count = o.shards;
  cfg.nodes_per_shard = o.nodes_per_shard;
  cfg.networks_per_shard = o.networks;
  cfg.style = o.style;
  cfg.seed = o.seed;
  cfg.record_payloads = false;
  // Fast reformation, mirroring the single-ring campaigns.
  cfg.srp.token_loss_timeout = Duration{100'000};
  cfg.srp.join_interval = Duration{10'000};
  cfg.srp.consensus_timeout = Duration{100'000};
  cfg.srp.commit_timeout = Duration{100'000};
  cfg.srp.announce_interval = Duration{200'000};
  cfg.srp.merge_backoff = Duration{1'000'000};
  SimShardedCluster cluster(cfg);
  auto& router = cluster.kv();

  cluster.start_all();
  if (!cluster.run_until_live(o.live_budget)) {
    violation("V9 setup: replicas never all went live before the campaign");
    return result;
  }

  CampaignState st{Rng(o.seed * 91 + 7), 0, {}, {}, {}};
  st.clients.assign(o.clients_per_shard * o.shards, Client{});

  router.set_completion_handler([&](const shard::OpCompletion& done) {
    auto it = st.owner.find(done.op);
    if (it == st.owner.end()) return;
    st.clients[it->second].idle = true;
    st.owner.erase(it);
  });

  auto try_submit = [&](std::size_t c) {
    const std::string key = "k" + std::to_string(st.rng.next_below(o.keys));
    const std::string value = "v" + std::to_string(o.seed) + "-" +
                              std::to_string(st.counter++);
    const std::uint64_t dice = st.rng.next_below(10);
    Result<std::uint64_t> r = [&]() -> Result<std::uint64_t> {
      if (dice < 7) return router.put(key, to_bytes(value));
      if (dice < 9) {
        const auto cur = router.get(key);
        return router.cas(key, cur.status == shard::ReadStatus::kOk ? cur.version : 0,
                          to_bytes(value));
      }
      return router.del(key);
    }();
    if (r.is_ok()) {
      if (dice < 9) st.submitted[key].insert(value);
      st.owner.emplace(r.value(), c);
      st.clients[c].idle = false;
    }
    // Rejected (backpressure / unavailable shard): stay idle, retry next
    // slice. The router's counters record the rejection.
  };

  // ---- schedule + probe bookkeeping ----
  const TimePoint heal_time =
      TimePoint{} + o.settle +
      o.event_spacing * static_cast<Duration::rep>(o.events);
  std::size_t next_event = 0;
  struct PendingProbe {
    TimePoint at{};
    std::size_t killed_shard = 0;
    bool done = false;
  };
  std::vector<PendingProbe> probes;
  for (const auto& ev : result.schedule) {
    if (ev.kind == ShardFaultKind::kKillShard) {
      probes.push_back({ev.at + o.probe_delay, ev.shard, false});
    }
  }
  /// Completed-op counters captured when a kill begins, per surviving
  /// shard; V9.4 requires growth by the time the shard is restored.
  std::map<std::size_t, std::vector<std::uint64_t>> serving_baseline;

  auto apply_event = [&](const ShardFaultEvent& ev) {
    auto& sc = cluster.shard_cluster(ev.shard);
    switch (ev.kind) {
      case ShardFaultKind::kKillShard: {
        std::vector<std::uint64_t> base(o.shards, 0);
        for (std::size_t s = 0; s < o.shards; ++s) {
          base[s] = router.shard_stats(s).completed;
        }
        serving_baseline[ev.shard] = std::move(base);
        cluster.kill_shard(ev.shard);
        break;
      }
      case ShardFaultKind::kRestoreShard: {
        cluster.restore_shard(ev.shard);
        auto it = serving_baseline.find(ev.shard);
        if (it != serving_baseline.end()) {
          for (std::size_t s = 0; s < o.shards; ++s) {
            if (s == ev.shard) continue;
            if (router.shard_stats(s).completed <= it->second[s]) {
              violation("V9.4: surviving shard " + std::to_string(s) +
                        " completed no ops while shard " +
                        std::to_string(ev.shard) + " was killed");
            }
          }
          serving_baseline.erase(it);
        }
        break;
      }
      case ShardFaultKind::kKillShardNetwork:
        sc.network(ev.network).fail();
        break;
      case ShardFaultKind::kRecoverShardNetwork:
        sc.network(ev.network).recover();
        for (std::size_t i = 0; i < o.nodes_per_shard; ++i) {
          sc.node(i).replicator().reset_network(ev.network);
        }
        break;
      case ShardFaultKind::kLossBurst:
        sc.network(ev.network).set_loss_rate(ev.rate);
        break;
      case ShardFaultKind::kEndLossBurst:
        sc.network(ev.network).set_loss_rate(0.0);
        break;
    }
  };

  auto run_probe = [&](const PendingProbe& p) {
    // Mid-kill census: the killed shard's keys answer unavailable (never
    // minority state), a write to it is rejected, and healthy shards still
    // answer. Keys with no active fault anywhere else by construction —
    // windows never overlap.
    bool write_probed = false;
    for (std::size_t k = 0; k < o.keys; ++k) {
      const std::string key = "k" + std::to_string(k);
      const auto read = router.get(key);
      if (read.shard == p.killed_shard) {
        if (read.status != shard::ReadStatus::kUnavailable) {
          violation("V9.4: killed shard " + std::to_string(p.killed_shard) +
                    " answered '" + std::string(to_string(read.status)) +
                    "' for " + key + " mid-kill (must be unavailable)");
        }
        if (!write_probed) {
          write_probed = true;  // one write probe per kill is enough
          auto w = router.put(key, to_bytes("mid-kill-write-must-fail"));
          if (w.is_ok()) {
            violation("V9.4: killed shard " + std::to_string(p.killed_shard) +
                      " accepted a write for " + key + " mid-kill");
          }
        }
      } else if (read.status == shard::ReadStatus::kUnavailable) {
        violation("V9.4: healthy shard " + std::to_string(read.shard) +
                  " was unavailable for " + key + " mid-kill of shard " +
                  std::to_string(p.killed_shard));
      }
    }
  };

  // ---- main loop: slice-driven clients + schedule ----
  const Duration slice{20'000};
  while (cluster.now() < heal_time) {
    while (next_event < result.schedule.size() &&
           result.schedule[next_event].at <= cluster.now()) {
      apply_event(result.schedule[next_event++]);
    }
    for (auto& p : probes) {
      if (!p.done && p.at <= cluster.now()) {
        run_probe(p);
        p.done = true;
      }
    }
    for (std::size_t c = 0; c < st.clients.size(); ++c) {
      if (st.clients[c].idle) try_submit(c);
    }
    cluster.run_for(slice);
  }
  while (next_event < result.schedule.size()) {
    apply_event(result.schedule[next_event++]);
  }

  // Global heal (belt and braces — every end event already fired): clear
  // residual faults so convergence starts clean.
  for (std::size_t s = 0; s < o.shards; ++s) {
    auto& sc = cluster.shard_cluster(s);
    for (std::size_t n = 0; n < o.networks; ++n) {
      sc.network(n).recover();
      sc.network(n).set_loss_rate(0.0);
    }
  }
  cluster.run_for(o.convergence);

  // ---- post-heal probe writes: every shard serves again (V9.4) ----
  std::map<std::uint64_t, std::size_t> probe_ops;  // op -> shard
  std::set<std::size_t> probe_completed;
  router.set_completion_handler([&](const shard::OpCompletion& done) {
    auto it = probe_ops.find(done.op);
    if (it != probe_ops.end()) probe_completed.insert(it->second);
  });
  for (std::size_t s = 0; s < o.shards; ++s) {
    // Deterministically find a key routing to shard s.
    std::string key;
    for (std::uint64_t i = 0;; ++i) {
      key = "probe-" + std::to_string(o.seed) + "-" + std::to_string(i);
      if (router.shard_for(key) == s) break;
    }
    const std::string value = "post-heal-" + std::to_string(s);
    st.submitted[key].insert(value);
    auto r = router.put(key, to_bytes(value));
    if (!r.is_ok()) {
      violation("V9.4: post-heal probe write to shard " + std::to_string(s) +
                " rejected: " + r.status().to_string());
      continue;
    }
    probe_ops.emplace(r.value(), s);
  }
  cluster.run_for(o.drain);
  for (const auto& entry : probe_ops) {
    if (probe_completed.count(entry.second) == 0) {
      violation("V9.4: post-heal probe write to shard " +
                std::to_string(entry.second) + " never completed");
    }
  }

  // ---- final census: V9.1 / V9.2 / V9.3 ----
  for (std::size_t s = 0; s < o.shards; ++s) {
    const Bytes reference = cluster.machine(s, 0).snapshot();
    const std::uint64_t ref_applied = cluster.log(s, 0).applied_seq();
    for (std::size_t r = 0; r < o.nodes_per_shard; ++r) {
      if (!cluster.log(s, r).live()) {
        violation("V9.1: shard " + std::to_string(s) + " replica " +
                  std::to_string(r) + " not live after heal");
        continue;
      }
      if (cluster.log(s, r).applied_seq() != ref_applied) {
        violation("V9.1: shard " + std::to_string(s) + " replica " +
                  std::to_string(r) + " applied " +
                  std::to_string(cluster.log(s, r).applied_seq()) +
                  " commands vs replica 0's " + std::to_string(ref_applied));
      }
      if (cluster.machine(s, r).snapshot() != reference) {
        violation("V9.1: shard " + std::to_string(s) + " replica " +
                  std::to_string(r) + " snapshot diverges from replica 0");
      }
    }
    for (const auto& [key, entry] : cluster.machine(s, 0).entries()) {
      if (router.shard_for(key) != s) {
        violation("V9.3: key '" + key + "' found in shard " +
                  std::to_string(s) + " but routes to shard " +
                  std::to_string(router.shard_for(key)));
      }
      const std::string value = totem::to_string(BytesView(entry.value));
      auto it = st.submitted.find(key);
      if (it == st.submitted.end() || it->second.count(value) == 0) {
        violation("V9.2: shard " + std::to_string(s) + " holds value '" +
                  value + "' for key '" + key +
                  "' that no client ever submitted for it");
      }
    }
  }

  for (std::size_t s = 0; s < o.shards; ++s) {
    const auto& stats = router.shard_stats(s);
    result.ops_completed += stats.completed;
    result.ops_rejected +=
        stats.rejected_backpressure + stats.rejected_unavailable;
  }
  return result;
}

}  // namespace totem::harness

// Sharded-cluster factories: R independent ring+ReplicatedKv stacks plus
// one totem::ShardedKv router, on either substrate the repo supports
// (DESIGN.md §17, docs/SHARDING.md):
//
//   SimShardedCluster — R SimClusters advanced in LOCKSTEP slices. Shards
//     are causally independent (they share no networks), so interleaving
//     whole slices is equivalent to one global simulator while reusing the
//     per-ring deterministic harness unchanged. Each shard's ring gets its
//     own seed, trace ring, and metrics namespace.
//   UdpShardedCluster — R real UDP rings on loopback behind one Reactor,
//     each ring on its own port block (SHARDING.md documents the layout:
//     port = base + (shard * networks + network) * kPortsPerBlock + node).
//
// Both expose the same surface to benches/tests: kv() for the router,
// log()/machine() per replica, shard-level fault controls (sim), and a
// ClusterSnapshot roll-up wired from live node snapshots.
#pragma once

#include <memory>
#include <vector>

#include "api/group_bus.h"
#include "harness/sim_cluster.h"
#include "net/reactor.h"
#include "net/udp_transport.h"
#include "shard/sharded_kv.h"
#include "smr/replicated_kv.h"
#include "smr/replicated_log.h"

namespace totem::harness {

/// Everything a sharded deployment needs beyond one ring's ClusterConfig.
struct ShardedClusterConfig {
  std::size_t shard_count = 4;
  std::size_t nodes_per_shard = 3;
  std::size_t networks_per_shard = 2;
  api::ReplicationStyle style = api::ReplicationStyle::kActive;
  /// Base seed; shard s's ring runs on seed + 1000 * s so schedules stay
  /// deterministic but decorrelated across shards.
  std::uint64_t seed = 1;

  /// Router knobs. `router.partitioner.shard_count` is overwritten with
  /// `shard_count`; virtual_nodes is honored.
  shard::ShardedKv::Config router;

  /// Each shard's replicated-log group name: "<prefix><shard>". Groups live
  /// on disjoint rings, so the suffix only aids traces and debugging.
  std::string group_prefix = "kv/shard";

  /// Sim substrate only: per-ring SRP template + recording toggles,
  /// forwarded into every shard's ClusterConfig.
  srp::Config srp;
  bool record_payloads = false;
  std::size_t trace_capacity = 1024;

  /// Lockstep granularity for SimShardedCluster::run_for — the maximum
  /// causal skew between any two shards' clocks.
  Duration lockstep_slice{20'000};
};

/// R deterministic sim rings + router. Construction builds every stack;
/// call start_all(), then run_until_live() before driving traffic.
class SimShardedCluster {
 public:
  explicit SimShardedCluster(ShardedClusterConfig config);
  ~SimShardedCluster();

  SimShardedCluster(const SimShardedCluster&) = delete;
  SimShardedCluster& operator=(const SimShardedCluster&) = delete;

  /// Start every shard's nodes and replicated logs.
  void start_all();
  /// Advance every shard's simulator by `d`, interleaved in lockstep
  /// slices (config.lockstep_slice).
  void run_for(Duration d);
  /// run_for until every replica log reports kLive AND every shard is
  /// available through the router (submit replicas see a majority
  /// established), up to `budget` of sim time. Returns true on success.
  bool run_until_live(Duration budget);

  [[nodiscard]] shard::ShardedKv& kv() { return *router_; }
  [[nodiscard]] const ShardedClusterConfig& config() const { return config_; }
  [[nodiscard]] std::size_t shard_count() const { return clusters_.size(); }
  /// Shard s's underlying single-ring harness (fault injection, networks).
  [[nodiscard]] SimCluster& shard_cluster(std::size_t s) { return *clusters_[s]; }
  /// Shard s's clock (all shards stay within one lockstep slice).
  [[nodiscard]] TimePoint now(std::size_t s = 0) const;
  [[nodiscard]] smr::ReplicatedLog& log(std::size_t s, std::size_t replica) {
    return *logs_[s][replica];
  }
  [[nodiscard]] const smr::ReplicatedKv& machine(std::size_t s,
                                                 std::size_t replica) const {
    return *machines_[s][replica];
  }

  // ---- shard-level fault controls (chaos campaigns) ----
  /// Crash every node of shard s (NICs cut on every network — the whole
  /// shard is gone from the cluster's point of view).
  void kill_shard(std::size_t s);
  /// Undo kill_shard: reconnect every node and clear residual monitor
  /// verdicts so the shard re-forms cleanly.
  void restore_shard(std::size_t s);

  /// Roll availability, health and router counters into one cluster view;
  /// `include_nodes` adds full per-replica api::StatsSnapshots.
  [[nodiscard]] shard::ClusterSnapshot snapshot(bool include_nodes = false);

 private:
  ShardedClusterConfig config_;
  std::vector<std::unique_ptr<SimCluster>> clusters_;
  std::vector<std::vector<std::unique_ptr<api::GroupBus>>> buses_;
  std::vector<std::vector<std::unique_ptr<smr::ReplicatedKv>>> machines_;
  std::vector<std::vector<std::unique_ptr<smr::ReplicatedLog>>> logs_;
  std::unique_ptr<shard::ShardedKv> router_;
};

/// R real UDP rings on loopback behind one Reactor + router. Check ok()
/// after construction (socket setup can fail); then start_all() and
/// wait_all_live().
class UdpShardedCluster {
 public:
  /// Ports used: [base_port, base_port + shards*networks*kPortsPerBlock).
  static constexpr std::uint16_t kPortsPerBlock = 16;  // max nodes per ring

  UdpShardedCluster(ShardedClusterConfig config, std::uint16_t base_port);
  ~UdpShardedCluster();

  UdpShardedCluster(const UdpShardedCluster&) = delete;
  UdpShardedCluster& operator=(const UdpShardedCluster&) = delete;

  /// OK unless a transport failed to bind (port collision, no loopback).
  [[nodiscard]] const Status& ok() const { return status_; }

  void start_all();
  /// Poll the reactor until every replica log is live and every shard is
  /// router-available, or `budget` (wall-clock) elapses. Returns true on
  /// success.
  bool wait_all_live(Duration budget);
  /// One bounded reactor poll (drive this from the bench's closed loop).
  void poll_once(Duration timeout) { reactor_.poll_once(timeout); }

  [[nodiscard]] shard::ShardedKv& kv() { return *router_; }
  [[nodiscard]] net::Reactor& reactor() { return reactor_; }
  [[nodiscard]] std::size_t shard_count() const { return logs_.size(); }
  [[nodiscard]] smr::ReplicatedLog& log(std::size_t s, std::size_t replica) {
    return *logs_[s][replica];
  }
  /// Shard s's replica node (e.g. to hang a NodeTelemetry endpoint off one
  /// member of the deployment and serve /shards from this cluster).
  [[nodiscard]] const api::Node& node(std::size_t s, std::size_t replica) const {
    return *nodes_[s][replica];
  }
  [[nodiscard]] shard::ClusterSnapshot snapshot(bool include_nodes = false);

 private:
  ShardedClusterConfig config_;
  Status status_;
  net::Reactor reactor_;
  std::vector<std::unique_ptr<net::UdpTransport>> transports_;
  std::vector<std::vector<std::unique_ptr<api::Node>>> nodes_;
  std::vector<std::vector<std::vector<const net::Transport*>>> node_transports_;
  std::vector<std::vector<std::unique_ptr<api::GroupBus>>> buses_;
  std::vector<std::vector<std::unique_ptr<smr::ReplicatedKv>>> machines_;
  std::vector<std::vector<std::unique_ptr<smr::ReplicatedLog>>> logs_;
  std::unique_ptr<shard::ShardedKv> router_;
};

}  // namespace totem::harness

#include "harness/invariant_checker.h"

#include <algorithm>
#include <map>
#include <optional>
#include <set>
#include <sstream>

namespace totem::harness {
namespace {

std::string time_str(TimePoint t) {
  return std::to_string(t.time_since_epoch().count()) + "us";
}

/// Payloads embedded in violation messages must survive printf-style
/// printing even when a bug leaks binary data to the application: escape
/// non-printables and cap the length.
std::string printable(const std::string& payload) {
  constexpr std::size_t kMax = 48;
  std::string out;
  for (std::size_t i = 0; i < payload.size() && i < kMax; ++i) {
    const unsigned char c = static_cast<unsigned char>(payload[i]);
    if (c >= 0x20 && c < 0x7F) {
      out.push_back(static_cast<char>(c));
    } else {
      constexpr char kHex[] = "0123456789abcdef";
      out += {'\\', 'x', kHex[c >> 4], kHex[c & 0xF]};
    }
  }
  if (payload.size() > kMax) {
    out += "...(" + std::to_string(payload.size()) + " bytes)";
  }
  return out;
}

/// V1 (cross-ring half): the common elements of two full payload streams
/// appear in the same relative order.
void check_stream_order(const std::vector<std::string>& a,
                        const std::vector<std::string>& b, NodeId ia, NodeId ib,
                        std::vector<std::string>& out) {
  const std::set<std::string> in_a(a.begin(), a.end());
  const std::set<std::string> in_b(b.begin(), b.end());
  std::vector<const std::string*> common_a, common_b;
  for (const auto& m : a) {
    if (in_b.count(m)) common_a.push_back(&m);
  }
  for (const auto& m : b) {
    if (in_a.count(m)) common_b.push_back(&m);
  }
  if (common_a.size() != common_b.size()) {
    // Only possible when one side delivered a common payload twice; V2
    // reports the duplicate itself, but flag the order check too.
    out.push_back("V1: nodes " + std::to_string(ia) + "/" + std::to_string(ib) +
                  " disagree on common-message count (" +
                  std::to_string(common_a.size()) + " vs " +
                  std::to_string(common_b.size()) + ")");
    return;
  }
  for (std::size_t k = 0; k < common_a.size(); ++k) {
    if (*common_a[k] != *common_b[k]) {
      out.push_back("V1: order divergence between nodes " + std::to_string(ia) +
                    " and " + std::to_string(ib) + " at common position " +
                    std::to_string(k) + ": \"" + printable(*common_a[k]) +
                    "\" vs \"" + printable(*common_b[k]) + "\"");
      return;  // one divergence per pair is enough noise
    }
  }
}

}  // namespace

std::string InvariantReport::to_string() const {
  if (violations.empty()) return "all invariants hold";
  std::ostringstream os;
  os << violations.size() << " invariant violation(s):\n";
  for (const auto& v : violations) os << "  - " << v << "\n";
  return os.str();
}

std::string dump_observations(SimCluster& cluster) {
  std::ostringstream os;
  for (std::size_t i = 0; i < cluster.node_count(); ++i) {
    const NodeId id = static_cast<NodeId>(i);
    const auto& ring = cluster.node(i).ring();
    os << "node " << i << ": state=" << srp::to_string(ring.state())
       << " ring=" << totem::to_string(ring.ring()) << " aru=" << ring.my_aru()
       << " safe=" << ring.safe_up_to() << "\n";
    std::map<RingId, std::tuple<SeqNum, SeqNum, std::size_t, std::size_t>> per_ring;
    for (const auto& d : cluster.deliveries(id)) {
      auto it = per_ring.find(d.ring);
      if (it == per_ring.end()) {
        per_ring.emplace(d.ring, std::tuple{d.seq, d.seq, std::size_t{1},
                                            static_cast<std::size_t>(d.recovered)});
      } else {
        auto& [lo, hi, n, rec] = it->second;
        lo = std::min(lo, d.seq);
        hi = std::max(hi, d.seq);
        ++n;
        rec += d.recovered ? 1 : 0;
      }
    }
    for (const auto& [rid, t] : per_ring) {
      const auto& [lo, hi, n, rec] = t;
      os << "  delivered ring " << totem::to_string(rid) << ": seq " << lo << ".." << hi
         << " (" << n << " msgs, " << rec << " recovered)\n";
    }
    std::map<RingId, SeqNum> safe_max;
    for (const auto& s : cluster.safe_advances(id)) {
      auto& m = safe_max[s.ring];
      m = std::max(m, s.safe_seq);
    }
    for (const auto& [rid, s] : safe_max) {
      os << "  safe ring " << totem::to_string(rid) << ": up to " << s << "\n";
    }
    for (const auto& v : cluster.views(id)) {
      os << "  view " << totem::to_string(v.view.ring) << " at "
         << v.when.time_since_epoch().count() << "us members={";
      for (std::size_t k = 0; k < v.view.members.size(); ++k) {
        os << (k ? "," : "") << v.view.members[k];
      }
      os << "}\n";
    }
  }
  return os.str();
}

InvariantReport check_invariants(SimCluster& cluster, const InvariantContext& ctx) {
  InvariantReport report;
  auto& out = report.violations;
  const std::size_t nodes = cluster.node_count();

  // ---- V1: per-ring content + order agreement ----
  // Canonical content per (ring, seq), built from every node's stream.
  std::map<std::pair<RingId, SeqNum>, std::pair<NodeId, std::string>> canon;
  for (std::size_t i = 0; i < nodes; ++i) {
    const NodeId id = static_cast<NodeId>(i);
    std::map<RingId, SeqNum> last_seq;  // per-ring monotonicity
    for (const auto& d : cluster.deliveries(id)) {
      const std::string payload = totem::to_string(d.payload);
      if (auto it = last_seq.find(d.ring); it != last_seq.end() && d.seq <= it->second) {
        out.push_back("V1: node " + std::to_string(id) + " delivered ring " +
                      totem::to_string(d.ring) + " seq " + std::to_string(d.seq) +
                      " after seq " + std::to_string(it->second));
      }
      last_seq[d.ring] = d.seq;
      const std::string tag =
          std::to_string(d.origin) + "|" + payload;  // origin+payload identity
      auto [it, inserted] = canon.try_emplace({d.ring, d.seq}, id, tag);
      if (!inserted && it->second.second != tag) {
        out.push_back("V1: ring " + totem::to_string(d.ring) + " seq " +
                      std::to_string(d.seq) + " is \"" + printable(it->second.second) +
                      "\" at node " + std::to_string(it->second.first) +
                      " but \"" + printable(tag) + "\" at node " + std::to_string(id));
      }
    }
  }
  std::vector<std::vector<std::string>> streams(nodes);
  for (std::size_t i = 0; i < nodes; ++i) {
    for (const auto& d : cluster.deliveries(static_cast<NodeId>(i))) {
      streams[i].push_back(totem::to_string(d.payload));
    }
  }
  for (std::size_t a = 0; a < nodes; ++a) {
    for (std::size_t b = a + 1; b < nodes; ++b) {
      check_stream_order(streams[a], streams[b], static_cast<NodeId>(a),
                         static_cast<NodeId>(b), out);
    }
  }

  // ---- V2: no duplicate delivery at any node ----
  for (std::size_t i = 0; i < nodes; ++i) {
    std::set<std::string> seen;
    for (const auto& p : streams[i]) {
      if (!seen.insert(p).second) {
        out.push_back("V2: node " + std::to_string(i) + " delivered \"" +
                      printable(p) + "\" more than once");
      }
    }
  }

  // ---- V4 first (V3 needs the canonical member sets) ----
  std::map<RingId, std::pair<NodeId, std::vector<NodeId>>> ring_members;
  for (std::size_t i = 0; i < nodes; ++i) {
    const NodeId id = static_cast<NodeId>(i);
    std::uint64_t last_ring_seq = 0;
    bool first = true;
    for (const auto& rv : cluster.views(id)) {
      const auto& v = rv.view;
      if (!first && v.ring.ring_seq <= last_ring_seq) {
        out.push_back("V4: node " + std::to_string(id) + " installed ring " +
                      totem::to_string(v.ring) + " after ring seq " +
                      std::to_string(last_ring_seq));
      }
      first = false;
      last_ring_seq = v.ring.ring_seq;
      if (std::find(v.members.begin(), v.members.end(), id) == v.members.end()) {
        out.push_back("V4: node " + std::to_string(id) +
                      " reported a view of ring " + totem::to_string(v.ring) +
                      " it is not a member of");
      }
      auto [it, inserted] = ring_members.try_emplace(v.ring, id, v.members);
      if (!inserted && it->second.second != v.members) {
        out.push_back("V4: ring " + totem::to_string(v.ring) +
                      " has different member sets at nodes " +
                      std::to_string(it->second.first) + " and " +
                      std::to_string(id));
      }
    }
  }

  // ---- V3: safe watermark monotonic + coverage ----
  // Union of delivered seqs per ring, and per (node, ring) delivered seqs.
  std::map<RingId, std::set<SeqNum>> ring_seqs;
  std::vector<std::map<RingId, std::set<SeqNum>>> node_ring_seqs(nodes);
  for (std::size_t i = 0; i < nodes; ++i) {
    for (const auto& d : cluster.deliveries(static_cast<NodeId>(i))) {
      ring_seqs[d.ring].insert(d.seq);
      node_ring_seqs[i][d.ring].insert(d.seq);
    }
  }
  std::map<RingId, SeqNum> max_safe;
  for (std::size_t i = 0; i < nodes; ++i) {
    const NodeId id = static_cast<NodeId>(i);
    std::map<RingId, SeqNum> last;
    for (const auto& s : cluster.safe_advances(id)) {
      if (auto it = last.find(s.ring); it != last.end() && s.safe_seq < it->second) {
        out.push_back("V3: node " + std::to_string(id) +
                      " safe watermark regressed on ring " +
                      totem::to_string(s.ring) + ": " + std::to_string(it->second) +
                      " -> " + std::to_string(s.safe_seq));
      }
      last[s.ring] = s.safe_seq;
      auto& m = max_safe[s.ring];
      m = std::max(m, s.safe_seq);
    }
    // The announcing node cannot claim a line above what it has delivered
    // itself plus what it currently holds: safe_up_to <= my_aru always.
    const auto& ring = cluster.node(i).ring();
    if (ring.safe_up_to() > ring.my_aru()) {
      out.push_back("V3: node " + std::to_string(id) + " ended with safe_up_to " +
                    std::to_string(ring.safe_up_to()) + " above its aru " +
                    std::to_string(ring.my_aru()));
    }
  }
  // Coverage: safe(R, s) means every member of R received 1..s, and agreed
  // delivery hands contiguously received messages straight up — so every
  // member must have delivered every ring-R seq <= s that ANY node
  // delivered. (The union sidesteps seqs occupied by recovery rebroadcasts
  // and fragment continuations, which never surface as ring-R deliveries.)
  for (const auto& [ring, s] : max_safe) {
    auto mem = ring_members.find(ring);
    if (mem == ring_members.end()) continue;  // watermark on a never-viewed ring
    const auto& union_seqs = ring_seqs[ring];
    for (NodeId m : mem->second.second) {
      if (m >= nodes) continue;
      const auto& mine = node_ring_seqs[m][ring];
      for (SeqNum q : union_seqs) {
        if (q > s) break;
        if (!mine.count(q)) {
          out.push_back("V3: ring " + totem::to_string(ring) + " safe line " +
                        std::to_string(s) + " but member " + std::to_string(m) +
                        " never delivered seq " + std::to_string(q));
        }
      }
    }
  }

  // ---- V5: fault-report soundness ----
  for (const auto& f : cluster.faults()) {
    if (f.report.reason == rrp::NetworkFaultReport::Reason::kAdministrative) continue;
    bool justified = false;
    const bool imbalance =
        f.report.reason == rrp::NetworkFaultReport::Reason::kReceptionImbalance;
    for (const auto& w : ctx.injured) {
      const bool network_matches =
          w.network == f.report.network || (w.any_network && imbalance);
      if (network_matches && f.report.when >= w.from &&
          f.report.when <= w.until + ctx.fault_report_grace) {
        justified = true;
        break;
      }
    }
    if (!justified) {
      out.push_back("V5: node " + std::to_string(f.at) + " blamed network " +
                    std::to_string(f.report.network) + " (" +
                    rrp::to_string(f.report.reason) + ") at " +
                    time_str(f.report.when) +
                    " outside every injected-fault window");
    }
  }

  // ---- V6: bounded re-formation after heal ----
  std::vector<NodeId> everyone;
  for (std::size_t i = 0; i < nodes; ++i) everyone.push_back(static_cast<NodeId>(i));
  std::optional<RingId> final_ring;
  for (std::size_t i = 0; i < nodes; ++i) {
    const auto& ring = cluster.node(i).ring();
    if (ring.state() != srp::SingleRing::State::kOperational) {
      out.push_back("V6: node " + std::to_string(i) + " ended in state " +
                    srp::to_string(ring.state()) + ", not operational");
      continue;
    }
    if (ring.members() != everyone) {
      out.push_back("V6: node " + std::to_string(i) +
                    " ended on a ring of only " +
                    std::to_string(ring.members().size()) + " member(s)");
      continue;
    }
    if (!final_ring) final_ring = ring.ring();
    if (*final_ring != ring.ring()) {
      out.push_back("V6: nodes ended on different rings (" +
                    totem::to_string(*final_ring) + " vs " +
                    totem::to_string(ring.ring()) + ")");
    }
    const auto& vs = cluster.views(static_cast<NodeId>(i));
    if (!vs.empty() && vs.back().when > ctx.heal_time + ctx.reformation_budget) {
      out.push_back("V6: node " + std::to_string(i) + " installed its final ring at " +
                    time_str(vs.back().when) + ", past the re-formation budget (heal " +
                    time_str(ctx.heal_time) + " + " +
                    std::to_string(ctx.reformation_budget.count()) + "us)");
    }
  }

  // ---- V8: replicated-state convergence (only when a workload ran) ----
  if (!ctx.replicas.empty()) {
    const InvariantContext::ReplicaState* ref = nullptr;
    for (const auto& r : ctx.replicas) {
      if (!r.live) {
        out.push_back("V8: replica on node " + std::to_string(r.node) +
                      " is still not live after heal + drain (applied " +
                      std::to_string(r.applied_seq) + " commands)");
        continue;
      }
      if (!ref) {
        ref = &r;
        continue;
      }
      if (r.applied_seq != ref->applied_seq) {
        out.push_back("V8: replica on node " + std::to_string(r.node) +
                      " applied " + std::to_string(r.applied_seq) +
                      " commands but node " + std::to_string(ref->node) +
                      " applied " + std::to_string(ref->applied_seq));
      }
      if (r.snapshot != ref->snapshot) {
        out.push_back("V8: replica snapshots diverge between nodes " +
                      std::to_string(ref->node) + " (" +
                      std::to_string(ref->snapshot.size()) + " bytes) and " +
                      std::to_string(r.node) + " (" +
                      std::to_string(r.snapshot.size()) + " bytes)");
      }
    }
  }

  // ---- V7: probes delivered exactly once everywhere ----
  for (const auto& probe : ctx.probes) {
    for (std::size_t i = 0; i < nodes; ++i) {
      const auto n = std::count(streams[i].begin(), streams[i].end(), probe);
      if (n != 1) {
        out.push_back("V7: probe \"" + probe + "\" delivered " + std::to_string(n) +
                      " time(s) at node " + std::to_string(i));
      }
    }
  }

  return report;
}

}  // namespace totem::harness

#include "harness/sim_cluster.h"

namespace totem::harness {

SimCluster::SimCluster(ClusterConfig config)
    : config_(std::move(config)), sim_(config_.seed) {
  app_deliver_.resize(config_.node_count);
  app_state_.resize(config_.node_count);
  deliveries_.resize(config_.node_count);
  views_.resize(config_.node_count);
  safe_advances_.resize(config_.node_count);
  states_.resize(config_.node_count);
  delivered_count_.assign(config_.node_count, 0);
  delivered_bytes_.assign(config_.node_count, 0);

  for (std::size_t n = 0; n < config_.network_count; ++n) {
    networks_.push_back(std::make_unique<net::SimNetwork>(
        sim_, static_cast<NetworkId>(n), config_.net_params));
  }

  std::vector<NodeId> members;
  for (std::size_t i = 0; i < config_.node_count; ++i) {
    members.push_back(static_cast<NodeId>(i));
  }

  for (std::size_t i = 0; i < config_.node_count; ++i) {
    hosts_.push_back(std::make_unique<net::SimHost>(sim_, static_cast<NodeId>(i),
                                                    config_.host_costs));
    std::vector<net::Transport*> transports;
    const std::size_t nets =
        config_.style == api::ReplicationStyle::kNone ? 1 : config_.network_count;
    for (std::size_t n = 0; n < nets; ++n) {
      transports.push_back(&networks_[n]->attach(*hosts_[i]));
    }
    transports_.emplace_back(transports.begin(), transports.end());

    api::NodeConfig nc;
    nc.srp = config_.srp;
    nc.srp.node_id = static_cast<NodeId>(i);
    nc.srp.initial_members = members;
    nc.style = config_.style;
    nc.active = config_.active;
    nc.passive = config_.passive;
    nc.active_passive = config_.active_passive;
    nc.adaptive_timeout = config_.adaptive_timeout;
    nc.health = config_.health;
    nc.telemetry = config_.telemetry;
    traces_.push_back(config_.trace_capacity > 0
                          ? std::make_unique<TraceRing>(config_.trace_capacity)
                          : nullptr);
    if (TraceRing* tr = traces_.back().get()) {
      // One recorder per node, shared by its SRP and RRP layers (callers
      // that pre-set a ring in the config template keep theirs).
      if (!nc.srp.trace) nc.srp.trace = tr;
      if (!nc.active.trace) nc.active.trace = tr;
      if (!nc.passive.trace) nc.passive.trace = tr;
      if (!nc.active_passive.monitor.trace) nc.active_passive.monitor.trace = tr;
    }

    nodes_.push_back(std::make_unique<api::Node>(sim_, transports, nc, hosts_[i].get()));

    const NodeId id = static_cast<NodeId>(i);
    nodes_[i]->set_deliver_handler([this, id](const srp::DeliveredMessage& m) {
      ++delivered_count_[id];
      delivered_bytes_[id] += m.payload.size();
      RecordedDelivery d;
      d.origin = m.origin;
      d.seq = m.seq;
      d.payload_size = m.payload.size();
      d.recovered = m.recovered;
      d.ring = m.ring;
      d.when = sim_.now();
      if (config_.record_payloads) {
        d.payload.assign(m.payload.begin(), m.payload.end());
      }
      deliveries_[id].push_back(std::move(d));
      if (app_deliver_[id]) app_deliver_[id](m);
    });
    nodes_[i]->set_membership_handler([this, id](const srp::MembershipView& v) {
      views_[id].push_back(RecordedView{v, sim_.now()});
    });
    nodes_[i]->set_fault_handler([this, id](const rrp::NetworkFaultReport& r) {
      faults_.push_back(RecordedFault{r, id});
    });
    nodes_[i]->ring().set_safe_watermark_handler([this, id](SeqNum safe_seq) {
      safe_advances_[id].push_back(
          RecordedSafe{nodes_[id]->ring().ring(), safe_seq, sim_.now()});
    });
    nodes_[i]->ring().set_state_observer(
        [this, id](srp::SingleRing::State s, const RingId& ring) {
          states_[id].push_back(RecordedState{s, ring, sim_.now()});
          if (app_state_[id]) app_state_[id](s, ring);
        });
  }
}

SimCluster::~SimCluster() = default;

void SimCluster::start_all() {
  for (auto& n : nodes_) n->start();
}

void SimCluster::crash(NodeId node) {
  for (auto& net : networks_) {
    net->set_send_fault(node, true);
    net->set_recv_fault(node, true);
  }
}

void SimCluster::reconnect(NodeId node) {
  for (auto& net : networks_) {
    net->set_send_fault(node, false);
    net->set_recv_fault(node, false);
  }
}

std::uint64_t SimCluster::total_delivered() const {
  std::uint64_t total = 0;
  for (auto c : delivered_count_) total += c;
  return total;
}

void SimCluster::clear_recordings() {
  for (auto& d : deliveries_) d.clear();
  for (auto& v : views_) v.clear();
  for (auto& s : safe_advances_) s.clear();
  for (auto& s : states_) s.clear();
  faults_.clear();
  delivered_count_.assign(delivered_count_.size(), 0);
  delivered_bytes_.assign(delivered_bytes_.size(), 0);
}

}  // namespace totem::harness

// Sharded chaos campaigns: deterministic fault injection against a
// SimShardedCluster + router, checked by the cross-shard convergence
// invariant V9 (DESIGN.md §17).
//
// The single-ring campaigns (fault_campaign.h, V1-V8) prove one ring's
// guarantees under faults. Sharding adds a new failure domain — a WHOLE
// ring can die — and a new layer that must stay honest about it: the
// consistent-hash router. V9 is that layer's contract:
//
//   V9.1 Per-shard convergence — after the global heal, every replica of
//        every shard ends live with the byte-identical snapshot and equal
//        applied count (V8, per ring).
//   V9.2 Never wrong — every value present in any shard's final state was
//        actually submitted for that exact key by a campaign client.
//        Unavailability may lose answers; it may never fabricate them.
//   V9.3 Routing isolation — every key in shard s's final state hashes to
//        s under the campaign's partitioner. Keys cannot bleed between
//        rings: there is no cross-ring protocol to move them.
//   V9.4 Surviving shards keep serving — while a shard is killed, reads
//        and writes on every healthy shard keep completing, reads of the
//        killed shard's keys report unavailable (never stale minority
//        state), writes to it are rejected, and after the heal the killed
//        shard serves fresh probe writes again.
//
// Schedules are a pure function of (seed, options): a failing campaign is
// reproduced by re-running the same options.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "api/node.h"
#include "common/types.h"
#include "harness/invariant_checker.h"

namespace totem::harness {

/// Fault vocabulary over shards. Whole-shard kill is the headline; the
/// network kinds re-exercise the single-ring vocabulary inside one shard
/// while the router keeps serving the others.
enum class ShardFaultKind : std::uint8_t {
  kKillShard,            ///< crash every node of one shard (ring vanishes)
  kRestoreShard,         ///< reconnect them (ring re-forms, replicas re-sync)
  kKillShardNetwork,     ///< one redundant network of one shard dies
  kRecoverShardNetwork,  ///< ... and recovers
  kLossBurst,            ///< one shard network drops a fraction of packets
  kEndLossBurst,
};

[[nodiscard]] const char* to_string(ShardFaultKind kind);

struct ShardFaultEvent {
  TimePoint at{};
  ShardFaultKind kind = ShardFaultKind::kKillShard;
  std::size_t shard = 0;
  NetworkId network = 0;  ///< network kinds only
  double rate = 0.0;      ///< loss burst only
};

[[nodiscard]] std::string to_string(const ShardFaultEvent& ev);

struct ShardedCampaignOptions {
  std::size_t shards = 3;
  std::size_t nodes_per_shard = 3;
  std::size_t networks = 2;
  api::ReplicationStyle style = api::ReplicationStyle::kActive;
  std::uint64_t seed = 1;
  /// Fault windows (begin/end pairs count once). The first window is
  /// always a kill-whole-shard; windows never overlap, so the victim is
  /// the only degraded shard while V9.4 probes the survivors.
  std::size_t events = 3;

  std::size_t keys = 48;           ///< client keyspace ("k0".."k<keys-1>")
  std::size_t clients_per_shard = 2;  ///< closed-loop clients (router-wide)

  Duration settle{800'000};         ///< fault-free warmup after all-live
  Duration event_spacing{2'500'000};///< slot width per fault window
  Duration fault_window{1'500'000}; ///< fault active this long within a slot
  Duration probe_delay{1'200'000};  ///< window start -> mid-fault V9.4 probe
  Duration convergence{6'000'000};  ///< heal -> post-heal probes
  Duration drain{2'500'000};        ///< probe writes -> final census
  Duration live_budget{5'000'000};  ///< initial all-live budget
};

struct ShardedCampaignResult {
  ShardedCampaignOptions options;
  std::vector<ShardFaultEvent> schedule;
  InvariantReport report;            ///< V9 violations (empty = pass)
  std::uint64_t ops_completed = 0;   ///< router-wide completions
  std::uint64_t ops_rejected = 0;    ///< unavailability + backpressure

  [[nodiscard]] bool ok() const { return report.ok(); }
  /// Options, schedule and every violation — everything needed to act on
  /// (and deterministically re-run) a failure.
  [[nodiscard]] std::string describe() const;
};

/// Deterministically expand (seed, options) into non-overlapping fault
/// windows; the first is always kill-whole-shard.
[[nodiscard]] std::vector<ShardFaultEvent> generate_sharded_schedule(
    const ShardedCampaignOptions& options);

/// Build the sharded cluster, run the schedule under router traffic, heal,
/// probe, and check V9. Same options => byte-for-byte identical run.
[[nodiscard]] ShardedCampaignResult run_sharded_campaign(
    ShardedCampaignOptions options);

}  // namespace totem::harness

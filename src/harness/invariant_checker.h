// Ring-wide invariant checker: cross-validates every node's recorded
// observations after a fault-injection campaign (see fault_campaign.h).
//
// The checks encode what the Totem SRP + RRP stack guarantees REGARDLESS of
// the fault schedule (DESIGN.md §10):
//
//   V1 Agreed total order — within one ring, every node delivers that
//      ring's messages in strictly increasing seq order, and any two nodes
//      that deliver the same (ring, seq) deliver the identical message.
//      Across rings, the common elements of two nodes' full payload
//      streams appear in the same relative order.
//   V2 No duplicate delivery — no payload reaches the application twice at
//      any node (campaign payloads are globally unique).
//   V3 Safe-line soundness — each node's safe watermark is monotonic per
//      ring, and a watermark s announced on ring R means every member of R
//      delivered every ring-R message with seq <= s that anyone delivered.
//   V4 Membership-view consistency — two nodes installing the same ring id
//      agree on its member set; a node only reports views it belongs to;
//      each node's installed ring seqs strictly increase.
//   V5 Fault-report soundness — a non-administrative network fault report
//      must fall inside (or within a grace period after) a window in which
//      that network was actually injected-faulty. Node crashes are not
//      network injuries and must not trigger blame. Exception: while a
//      count-inflating fault (duplicate-burst, gray-degrade) is active,
//      a reception-imbalance report may blame any network — the monitors
//      compare counts, and inflation indicts the clean side.
//   V6 Bounded re-formation — after the schedule fully heals, every node
//      ends Operational on one common full-membership ring, installed
//      within `reformation_budget` of the heal.
//   V7 Probe delivery — post-heal probe messages arrive exactly once at
//      every node.
//   V8 Replica-state convergence — when the campaign ran a replicated
//      state machine on top of the stack (see fault_campaign.h kv_workload),
//      every replica must end live with the byte-identical snapshot and the
//      same applied-command count. Total order + the SMR sync protocol make
//      this the end-to-end corollary of V1/V2.
#pragma once

#include <string>
#include <vector>

#include "common/bytes.h"
#include "common/types.h"
#include "harness/sim_cluster.h"

namespace totem::harness {

/// A window during which a specific network was deliberately degraded
/// (killed, lossy, partitioned, or dropping tokens).
struct InjuryWindow {
  NetworkId network = 0;
  TimePoint from{};
  TimePoint until{};
  /// Count-inflating faults (duplicate-burst, gray-degrade): the RRP's
  /// reception monitors are purely comparative, so inflating one network's
  /// reception count legitimately indicts a *clean* network as lagging.
  /// Such a window excuses a reception-imbalance report on any network.
  bool any_network = false;
};

struct InvariantContext {
  std::vector<InjuryWindow> injured;
  /// When the campaign removed the last fault (networks recovered,
  /// partitions cleared, loss zeroed, nodes reconnected).
  TimePoint heal_time{};
  /// V6: the survivors must re-form one full ring within this much sim
  /// time of heal_time.
  Duration reformation_budget{6'000'000};
  /// V5: evidence gathered during an injury may surface as a report this
  /// long after the window closes (problem counters drain slowly).
  Duration fault_report_grace{2'000'000};
  /// V7: payloads sent after convergence; must be delivered exactly once
  /// at every node.
  std::vector<std::string> probes;

  /// V8: end-of-campaign replica observations (empty = check skipped).
  struct ReplicaState {
    NodeId node = kInvalidNode;
    bool live = false;
    std::uint64_t applied_seq = 0;
    Bytes snapshot;
  };
  std::vector<ReplicaState> replicas;
};

struct InvariantReport {
  std::vector<std::string> violations;
  [[nodiscard]] bool ok() const { return violations.empty(); }
  [[nodiscard]] std::string to_string() const;
};

/// Run every check against the cluster's recordings. The cluster must have
/// been built with record_payloads on.
[[nodiscard]] InvariantReport check_invariants(SimCluster& cluster,
                                               const InvariantContext& ctx);

/// Human-readable summary of everything the nodes observed (per-ring
/// delivery ranges, safe watermarks, views, final states). Printed by the
/// totem_chaos replay mode under a failing seed.
[[nodiscard]] std::string dump_observations(SimCluster& cluster);

}  // namespace totem::harness

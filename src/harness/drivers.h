// Workload drivers for the simulated cluster.
#pragma once

#include <cstdint>
#include <vector>

#include "harness/sim_cluster.h"

namespace totem::harness {

/// Saturation workload: keep every node's send queue topped up so the ring
/// runs as fast as the flow-control mechanism permits — the workload of the
/// paper's evaluation ("every node sent as many messages as the Totem flow
/// control mechanism permitted", §8).
class SaturationDriver {
 public:
  struct Params {
    std::size_t message_size = 1024;
    std::size_t queue_target = 256;  // entries to keep queued per node
    Duration refill_interval{1'000};
  };

  SaturationDriver(SimCluster& cluster, Params params);
  void start();
  void stop() { running_ = false; }

  [[nodiscard]] std::uint64_t messages_offered() const { return offered_; }

 private:
  void refill(std::size_t node_index);

  SimCluster& cluster_;
  Params params_;
  Bytes payload_;
  bool running_ = false;
  std::uint64_t offered_ = 0;
};

/// Fixed-rate workload: each node sends `rate_per_node` messages/sec.
class PeriodicDriver {
 public:
  struct Params {
    std::size_t message_size = 256;
    double rate_per_node = 100.0;  // messages per second per node
  };

  PeriodicDriver(SimCluster& cluster, Params params);
  void start();
  void stop() { running_ = false; }

  [[nodiscard]] std::uint64_t messages_offered() const { return offered_; }

 private:
  void tick(std::size_t node_index);

  SimCluster& cluster_;
  Params params_;
  Bytes payload_;
  Duration interval_;
  bool running_ = false;
  std::uint64_t offered_ = 0;
};

}  // namespace totem::harness

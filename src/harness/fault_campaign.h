// Deterministic fault-injection campaigns.
//
// A campaign is: one SimCluster + a SCHEDULE of typed fault events applied
// at fixed sim times + background traffic + a global heal + the ring-wide
// invariant checker (invariant_checker.h) over everything the nodes
// observed. Schedules are generated from a seed, so a failing campaign is
// replayed byte-for-byte from its seed alone:
//
//   totem_chaos --seed=S [--style=active|passive|active-passive]
//               [--networks=N] [--events=E] [--kv]
//
// The fault vocabulary (DESIGN.md §10):
//   * crash/restart      — node loses TX+RX on every network, later rejoins
//   * pause/resume       — node goes MUTE (TX fault everywhere, still hears)
//   * kill/recover       — one network fails totally
//   * loss burst         — one network drops a fraction of its packets
//   * corruption burst   — one network flips bytes (CRC turns it into loss)
//   * partition/heal     — one network splits into two groups
//   * token drop         — one network eats the next few unicasts (tokens)
//   * kill-at-state      — one network dies the moment a chosen node enters
//                          a chosen protocol state (Gather/Commit/Recovery)
//
// Degraded-network vocabulary (DESIGN.md §14; opt-in via
// CampaignOptions::degraded_vocabulary so classic seeds stay byte-identical):
//   * flap               — one network toggles dead/alive with a fixed period
//   * gray degrade       — one network runs the gray_failure link profile
//                          (high loss + jitter + reorder + duplication)
//   * reorder burst      — one network reorders a fraction of its packets
//   * duplicate burst    — one network duplicates a fraction of its packets
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "api/node.h"
#include "common/types.h"
#include "harness/invariant_checker.h"
#include "srp/single_ring.h"

namespace totem::harness {

enum class FaultKind : std::uint8_t {
  kCrashNode,
  kRestartNode,
  kPauseNode,
  kResumeNode,
  kKillNetwork,
  kRecoverNetwork,
  kLossBurst,
  kEndLossBurst,
  kCorruptionBurst,
  kEndCorruptionBurst,
  kPartition,
  kHealPartition,
  kDropTokens,
  kKillNetworkAtState,
  // Degraded-network kinds (generated only with degraded_vocabulary).
  kFlapNetwork,
  kEndFlap,
  kGrayDegrade,
  kEndGrayDegrade,
  kReorderBurst,
  kEndReorderBurst,
  kDuplicateBurst,
  kEndDuplicateBurst,
};

[[nodiscard]] const char* to_string(FaultKind kind);

struct FaultEvent {
  TimePoint at{};
  FaultKind kind = FaultKind::kCrashNode;
  NodeId node = kInvalidNode;     // crash/pause/kill-at-state target
  NetworkId network = 0;          // network kinds
  double rate = 0.0;              // loss / corruption / reorder / dup bursts
  std::uint32_t count = 0;        // token drops
  Duration period{25'000};        // flap half-period (dead for period, then alive)
  srp::SingleRing::State state = srp::SingleRing::State::kGather;  // trigger
  std::vector<std::vector<NodeId>> groups;  // partition
};

[[nodiscard]] std::string to_string(const FaultEvent& ev);

struct CampaignOptions {
  api::ReplicationStyle style = api::ReplicationStyle::kActive;
  std::size_t nodes = 4;
  /// Active-passive requires >= 3 networks; run_campaign raises this.
  std::size_t networks = 2;
  std::uint64_t seed = 1;
  /// Number of injected faults (begin/end pairs count once).
  std::size_t events = 6;

  /// Include the degraded-network fault kinds (flap, gray degrade,
  /// reorder/duplicate bursts) in the generated vocabulary. Off by default:
  /// classic seeds must keep producing byte-identical schedules.
  bool degraded_vocabulary = false;

  Duration settle{300'000};          // fault-free warmup
  Duration event_spacing{300'000};   // schedule slot width
  Duration convergence{4'000'000};   // heal -> probe
  Duration drain{1'000'000};         // probe -> verdict
  Duration reformation_budget{6'000'000};
  Duration fault_report_grace{2'000'000};

  /// How many of each node's most recent trace records the failure
  /// artifact carries (0 = the whole ring).
  std::size_t artifact_trace_last_n = 256;

  /// When non-empty, every node's full flight-recorder history is written
  /// to `<dir>/node<N>.jsonl` at the end of the run (pass or fail) — the
  /// inputs tools/totem_tracemerge stitches into one Perfetto timeline.
  /// The directory must already exist.
  std::string trace_dump_dir;

  /// Run a replicated KV store (smr::ReplicatedLog over a GroupBus group)
  /// on every node, with seeded per-node clients submitting put/delete/CAS
  /// commands until the heal. The end-of-run replica states feed invariant
  /// V8: every replica must converge to the byte-identical snapshot.
  bool kv_workload = false;
  Duration kv_client_interval{5'000};  ///< per-node submit pacing
  std::size_t kv_keys = 48;            ///< workload key-space size
  /// Extra post-probe sim time for demoted replicas to finish their state
  /// transfer before V8 takes its snapshot census.
  Duration kv_drain{4'000'000};
};

/// Deterministically expand (seed, options) into a sorted fault schedule.
/// Liveliness constraints keep the run recoverable: at most one crashed and
/// one paused node at a time (distinct victims), at most networks-1 dead
/// networks, every fault healed before the campaign's global heal.
[[nodiscard]] std::vector<FaultEvent> generate_schedule(const CampaignOptions& options);

struct CampaignResult {
  CampaignOptions options;
  std::vector<FaultEvent> schedule;
  InvariantReport report;
  /// dump_observations() snapshot, captured only when a check failed.
  std::string observations;
  /// Machine-readable triage bundle, captured only when a check failed:
  /// violated invariants, the schedule, the replay command, and per-node
  /// stats snapshots (histograms included) + last-N trace records.
  std::string artifact_json;

  [[nodiscard]] bool ok() const { return report.ok(); }
  /// Everything a human needs to act on a failure: options, the full event
  /// schedule, every violation, and the exact replay command.
  [[nodiscard]] std::string describe() const;
  /// The exact `totem_chaos --seed=...` command that reproduces this run.
  [[nodiscard]] std::string replay_command() const;
  /// Write artifact_json to `path`. Returns false (artifact empty or I/O
  /// error) without throwing — triage must not mask the original failure.
  [[nodiscard]] bool write_failure_artifact(const std::string& path) const;
};

/// Build the cluster, run the schedule, heal, converge, probe, and check
/// every invariant. Same options => byte-for-byte identical run.
[[nodiscard]] CampaignResult run_campaign(CampaignOptions options);

/// "active" / "passive" / "active-passive" -> style (for --style=...).
[[nodiscard]] bool parse_style(const std::string& s, api::ReplicationStyle& out);

}  // namespace totem::harness

#include "harness/drivers.h"

#include <algorithm>

namespace totem::harness {

SaturationDriver::SaturationDriver(SimCluster& cluster, Params params)
    : cluster_(cluster), params_(params) {
  payload_.assign(params_.message_size, std::byte{0xAB});
}

void SaturationDriver::start() {
  running_ = true;
  for (std::size_t i = 0; i < cluster_.node_count(); ++i) {
    refill(i);
  }
}

void SaturationDriver::refill(std::size_t node_index) {
  if (!running_) return;
  auto& ring = cluster_.node(node_index).ring();
  while (ring.send_queue_depth() < params_.queue_target) {
    if (!cluster_.node(node_index).send(payload_).is_ok()) break;
    ++offered_;
  }
  cluster_.simulator().schedule(params_.refill_interval,
                                [this, node_index] { refill(node_index); });
}

PeriodicDriver::PeriodicDriver(SimCluster& cluster, Params params)
    : cluster_(cluster), params_(params) {
  payload_.assign(params_.message_size, std::byte{0xCD});
  const double us = 1e6 / std::max(params_.rate_per_node, 1e-6);
  interval_ = Duration{static_cast<Duration::rep>(std::max(us, 1.0))};
}

void PeriodicDriver::start() {
  running_ = true;
  for (std::size_t i = 0; i < cluster_.node_count(); ++i) {
    tick(i);
  }
}

void PeriodicDriver::tick(std::size_t node_index) {
  if (!running_) return;
  if (cluster_.node(node_index).send(payload_).is_ok()) {
    ++offered_;
  }
  cluster_.simulator().schedule(interval_, [this, node_index] { tick(node_index); });
}

}  // namespace totem::harness

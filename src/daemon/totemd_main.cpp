// totemd — the per-node Totem daemon binary (docs/DAEMON.md).
//
// Owns one api::Node on a UDP loopback ring under the split I/O/protocol
// runtime, and serves local client processes over the Unix-domain IPC
// socket via daemon::Daemon. Run one totemd per node id:
//
//   totemd --node=0 --nodes=4 --base-port=47100 --socket=/tmp/totemd.0
//
// Exits 0 on SIGTERM/SIGINT after sending every client GOODBYE(shutdown).
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "api/node.h"
#include "api/runtime.h"
#include "api/telemetry.h"
#include "daemon/daemon.h"
#include "net/reactor.h"
#include "net/udp_transport.h"

namespace {

volatile std::sig_atomic_t g_stop = 0;

void on_signal(int) { g_stop = 1; }

bool flag(const char* arg, const char* name, std::string* out) {
  const std::size_t n = std::strlen(name);
  if (std::strncmp(arg, name, n) != 0 || arg[n] != '=') return false;
  *out = arg + n + 1;
  return true;
}

struct Options {
  totem::NodeId node = 0;
  std::uint32_t nodes = 1;
  std::uint16_t base_port = 47100;
  std::uint32_t networks = 1;
  std::string socket_path;
  std::uint32_t credits = 64;
  std::size_t max_egress = 4u << 20;
  std::uint32_t max_message = 1u << 20;
  int telemetry_port = -1;  ///< -1 = no telemetry endpoint
  long run_for_ms = 0;      ///< 0 = until a signal; else orphan insurance
};

int usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s --socket=PATH [--node=ID] [--nodes=N]\n"
               "  [--base-port=P] [--networks=K] [--credits=N]\n"
               "  [--max-egress=BYTES] [--max-message=BYTES]\n"
               "  [--telemetry-port=P] [--run-for-ms=MS]\n",
               argv0);
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  Options opt;
  for (int i = 1; i < argc; ++i) {
    std::string v;
    if (flag(argv[i], "--node", &v)) opt.node = static_cast<totem::NodeId>(std::stoul(v));
    else if (flag(argv[i], "--nodes", &v)) opt.nodes = static_cast<std::uint32_t>(std::stoul(v));
    else if (flag(argv[i], "--base-port", &v)) opt.base_port = static_cast<std::uint16_t>(std::stoul(v));
    else if (flag(argv[i], "--networks", &v)) opt.networks = static_cast<std::uint32_t>(std::stoul(v));
    else if (flag(argv[i], "--socket", &v)) opt.socket_path = v;
    else if (flag(argv[i], "--credits", &v)) opt.credits = static_cast<std::uint32_t>(std::stoul(v));
    else if (flag(argv[i], "--max-egress", &v)) opt.max_egress = std::stoull(v);
    else if (flag(argv[i], "--max-message", &v)) opt.max_message = static_cast<std::uint32_t>(std::stoul(v));
    else if (flag(argv[i], "--telemetry-port", &v)) opt.telemetry_port = std::stoi(v);
    else if (flag(argv[i], "--run-for-ms", &v)) opt.run_for_ms = std::stol(v);
    else return usage(argv[0]);
  }
  if (opt.socket_path.empty() || opt.nodes == 0 || opt.networks == 0 ||
      opt.node >= opt.nodes) {
    return usage(argv[0]);
  }

  std::signal(SIGINT, on_signal);
  std::signal(SIGTERM, on_signal);
  std::signal(SIGPIPE, SIG_IGN);

  totem::net::Reactor reactor;
  totem::api::OrderingLoop loop;

  std::vector<std::unique_ptr<totem::net::UdpTransport>> owned;
  std::vector<totem::net::Transport*> transports;
  std::vector<totem::net::UdpTransport*> udp;
  for (std::uint32_t n = 0; n < opt.networks; ++n) {
    totem::net::UdpTransport::Config tc;
    tc.network = static_cast<totem::NetworkId>(n);
    tc.local_node = opt.node;
    tc.peers = totem::net::loopback_peers(
        static_cast<std::uint16_t>(opt.base_port + 100 * n), opt.nodes);
    tc.rx_queue_capacity = 1024;
    tc.tx_queue_capacity = 1024;
    auto t = totem::net::UdpTransport::create(reactor, tc);
    if (!t) {
      std::fprintf(stderr, "totemd: transport: %s\n", t.status().to_string().c_str());
      return 1;
    }
    owned.push_back(std::move(t).take());
    transports.push_back(owned.back().get());
    udp.push_back(owned.back().get());
  }

  totem::api::NodeConfig cfg;
  cfg.srp.node_id = opt.node;
  for (totem::NodeId m = 0; m < opt.nodes; ++m) cfg.srp.initial_members.push_back(m);
  cfg.style = opt.networks > 1 ? totem::api::ReplicationStyle::kActive
                               : totem::api::ReplicationStyle::kNone;
  totem::api::Node node(loop, transports, cfg);

  totem::api::ThreadedRuntime runtime(reactor, loop, udp);

  totem::daemon::Daemon::Config dcfg;
  dcfg.socket_path = opt.socket_path;
  dcfg.initial_credits = opt.credits;
  dcfg.max_egress_bytes = opt.max_egress;
  dcfg.max_message_bytes = opt.max_message;
  auto daemon = totem::daemon::Daemon::create(
      reactor, loop, node,
      [&runtime](std::function<void()> fn) { runtime.post(std::move(fn)); },
      dcfg);
  if (!daemon) {
    std::fprintf(stderr, "totemd: %s\n", daemon.status().to_string().c_str());
    return 1;
  }

  std::unique_ptr<totem::api::NodeTelemetry> telemetry;
  if (opt.telemetry_port >= 0) {
    totem::api::NodeTelemetry::Config tcfg;
    tcfg.http.port = static_cast<std::uint16_t>(opt.telemetry_port);
    tcfg.post = [&runtime](std::function<void()> fn) { runtime.post(std::move(fn)); };
    std::vector<const totem::net::Transport*> ct(transports.begin(), transports.end());
    auto t = totem::api::NodeTelemetry::create(reactor, node, ct, std::move(tcfg));
    if (!t) {
      std::fprintf(stderr, "totemd: telemetry: %s\n", t.status().to_string().c_str());
      return 1;
    }
    telemetry = std::move(t).take();
    std::printf("totemd telemetry port=%u\n", telemetry->port());
  }

  runtime.start();
  runtime.post([&node] { node.start(); });

  std::printf("totemd ready node=%u nodes=%u socket=%s\n", opt.node, opt.nodes,
              opt.socket_path.c_str());
  std::fflush(stdout);

  const auto started = std::chrono::steady_clock::now();
  while (!g_stop) {
    if (opt.run_for_ms > 0 &&
        std::chrono::steady_clock::now() - started >
            std::chrono::milliseconds(opt.run_for_ms)) {
      break;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }

  // Best-effort GOODBYE(shutdown) to every client, a beat for the reactor
  // to flush, then join both threads. Clients treat EOF the same way.
  daemon.value()->begin_shutdown();
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  runtime.stop();
  std::printf("totemd exiting node=%u\n", opt.node);
  return 0;
}

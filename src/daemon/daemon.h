// totem::daemon::Daemon — the totemd executive: one api::Node multiplexed
// across many local client processes, the openais/corosync deployment shape
// (docs/DAEMON.md is the operator guide, DESIGN.md §18 the rationale).
//
// The daemon composes three existing layers and adds the client-facing
// semantics on top:
//
//   ipc::UnixListener (reactor thread)  — accepts clients, deframes bytes
//        | post()                       — every frame marshals over
//   Daemon state (ordering thread)      — groups, credits, views
//        | api::GroupBus / api::Node    — the totally-ordered ring
//
// Closed process groups. Group membership is CLIENTS, not nodes: a client
// join/leave is broadcast through the GroupBus as an envelope riding the
// ring's totally-ordered stream, so every daemon applies membership changes
// at the same sequence number and all clients observe the same sequence of
// (view | message) events per group. View catch-up follows the bus's sync
// idiom: when a daemon's node-level join to a group delivers, the other
// daemons re-announce their local clients (idempotent, totally ordered), so
// a node that starts hosting a group converges to the agreed view. The
// daemon never bus-leaves a group once joined — GroupBus keeps local state
// until a leave delivers, and staying subscribed makes client churn cheap.
//
// Flow control. Each client holds a credit window (Config::initial_credits):
// one credit per in-flight SEND, returned as CREDIT the moment the message
// is accepted by the ring. A ring that pushes back (RESOURCE_EXHAUSTED from
// a full send queue) parks the message in a per-client retry queue — the
// credit stays spent, which is exactly how ring congestion propagates to
// clients without blocking anyone. Spending more credits than granted is a
// protocol violation: eviction. On the delivery side every client has a
// byte-capped egress queue in the listener; a DELIVER that will not fit
// evicts the slow reader (GOODBYE kSlowReader, best effort) — a totally
// ordered stream can be delivered gap-free or not at all, and one wedged
// reader must never stall the ring or its peers.
//
// Crash cleanup. A closed socket (client crash or eviction) broadcasts
// client-leave envelopes for everything the client had joined, so remote
// views converge. A daemon restart re-binds the socket path; clients see
// EOF, surface kDisconnected, and ipc::Client::reconnect() re-attaches
// with a fresh identity.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "api/group_bus.h"
#include "api/node.h"
#include "common/metrics.h"
#include "common/status.h"
#include "common/timer_service.h"
#include "ipc/listener.h"
#include "ipc/protocol.h"
#include "net/reactor.h"

namespace totem::daemon {

class Daemon {
 public:
  struct Config {
    std::string socket_path;
    std::uint32_t initial_credits = 64;
    std::uint32_t max_message_bytes = 1u << 20;
    /// Per-client delivery-queue cap; exceeding it evicts the slow reader.
    /// Keep it well above initial_credits * max_message_bytes: the ordering
    /// thread can queue a full credit window of deliveries before the
    /// reactor thread flushes, and that transient burst must not evict a
    /// healthy reader.
    std::size_t max_egress_bytes = 4u << 20;
    std::size_t max_connections = 128;
    Duration send_retry_interval{2'000};  ///< ring-pushback retry cadence
  };

  /// Construct before Node::start() and before the runtime threads spawn:
  /// the internal GroupBus chains onto the node's handlers, and the
  /// listener registers with the reactor. `timers` must be the protocol
  /// thread's TimerService (the OrderingLoop under ThreadedRuntime; the
  /// reactor itself single-threaded). `post` marshals work onto the
  /// protocol thread — leave null when the reactor thread IS the protocol
  /// thread. `node` must outlive the Daemon.
  static Result<std::unique_ptr<Daemon>> create(
      net::Reactor& reactor, TimerService& timers, api::Node& node,
      std::function<void(std::function<void()>)> post, Config config);

  ~Daemon();
  Daemon(const Daemon&) = delete;
  Daemon& operator=(const Daemon&) = delete;

  /// Thread-safe: queue a GOODBYE(kShutdown) to every client. Call before
  /// stopping the runtime; give the reactor a beat to flush (best effort —
  /// clients treat EOF as disconnect anyway).
  void begin_shutdown();

  [[nodiscard]] const std::string& socket_path() const {
    return listener_->path();
  }
  /// The bus (protocol thread): tests inspect node-level group state.
  [[nodiscard]] api::GroupBus& bus() { return *bus_; }
  /// Protocol thread: currently attached (HELLO-completed) client count.
  [[nodiscard]] std::size_t client_count() const { return clients_.size(); }

 private:
  struct PendingSend {
    std::string group;
    Bytes envelope;
  };
  struct ClientState {
    bool hello_done = false;
    bool evicted = false;             ///< hangup sent; awaiting on_closed
    std::uint32_t in_flight = 0;      ///< credits currently spent
    std::set<std::string> groups;     ///< memberships whose join delivered
    std::set<std::string> joining;    ///< join broadcast, not yet delivered
    std::deque<PendingSend> pending;  ///< ring pushed back; retried on timer
  };
  struct PendingReply {
    std::uint64_t conn = 0;
    std::uint32_t cookie = 0;
  };
  struct GroupState {
    bool bus_joined = false;               ///< sticky for the daemon's life
    std::set<ipc::ClientRef> members;      ///< the agreed view
    std::set<std::uint64_t> local_conns;   ///< members attached to this daemon
    std::uint64_t view_seq = 0;
    std::vector<PendingReply> pending_joins;
    std::vector<PendingReply> pending_leaves;
  };

  Daemon(TimerService& timers, api::Node& node,
         std::function<void(std::function<void()>)> post, Config config);

  /// Marshal `fn` onto the protocol thread (or run inline without `post`).
  void on_protocol(std::function<void()> fn);

  // --- protocol-thread frame handling ---
  void handle_frame(std::uint64_t conn, ipc::Frame frame);
  void handle_hello(std::uint64_t conn, BytesView body);
  void handle_join(std::uint64_t conn, BytesView body);
  void handle_leave(std::uint64_t conn, BytesView body);
  void handle_send(std::uint64_t conn, BytesView body);
  void handle_closed(std::uint64_t conn, ipc::CloseCause cause);

  // --- ring-side (GroupBus upcalls, protocol thread) ---
  void on_group_message(const std::string& group, const api::GroupMessage& m);
  void on_group_view(const std::string& group, const api::GroupView& view);
  void apply_client_join(const std::string& group, ipc::ClientRef ref,
                         std::uint64_t seq);
  void apply_client_leave(const std::string& group, ipc::ClientRef ref,
                          std::uint64_t seq);

  // --- helpers (protocol thread) ---
  Status ensure_bus_joined(const std::string& group);
  /// Broadcast one client join/leave envelope; queues for retry on ring
  /// pushback so cleanup cannot be lost.
  void broadcast_membership(const std::string& group, std::uint8_t kind,
                            std::uint64_t client);
  void emit_view(const std::string& group, GroupState& g,
                 std::vector<ipc::ClientRef> added,
                 std::vector<ipc::ClientRef> removed);
  void reply_status(std::uint64_t conn, std::uint32_t cookie, const Status& s);
  void grant_credit(std::uint64_t conn, std::uint32_t n);
  /// send() with slow-reader eviction on refusal.
  void send_or_evict(std::uint64_t conn, Bytes frame);
  void evict(std::uint64_t conn, ipc::GoodbyeReason reason);
  void arm_retry_timer();
  void drain_pending();

  TimerService& timers_;
  api::Node& node_;
  std::function<void(std::function<void()>)> post_;
  Config config_;
  std::unique_ptr<api::GroupBus> bus_;
  std::unique_ptr<ipc::UnixListener> listener_;

  std::map<std::uint64_t, ClientState> clients_;
  std::map<std::string, GroupState> groups_;
  /// Membership envelopes the ring refused (must not be lost — a dead
  /// client's leave is cleanup, not best effort).
  std::deque<PendingSend> pending_control_;
  std::uint64_t envelope_nonce_ = 0;
  bool retry_armed_ = false;
  TimerHandle retry_timer_;  ///< cancelled in the destructor

  // IPC metrics (registered in node.metrics(); protocol thread writes).
  Counter* m_connects_ = nullptr;
  Counter* m_disconnects_ = nullptr;
  Counter* m_evict_slow_ = nullptr;
  Counter* m_evict_protocol_ = nullptr;
  Counter* m_sends_ = nullptr;
  Counter* m_send_errors_ = nullptr;
  Counter* m_delivers_ = nullptr;
  Counter* m_joins_ = nullptr;
  Counter* m_leaves_ = nullptr;
  Counter* m_credit_stalls_ = nullptr;
  Gauge* m_clients_ = nullptr;
  Gauge* m_groups_ = nullptr;
  Gauge* m_egress_peak_ = nullptr;
  Gauge* m_pending_sends_ = nullptr;
};

}  // namespace totem::daemon

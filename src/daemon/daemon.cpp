#include "daemon/daemon.h"

#include <algorithm>
#include <utility>

namespace totem::daemon {
namespace {

// Client-level envelope inside a GroupBus data message:
//   [u8 kind][u64 client][payload...]            kind 1 = data
//   [u8 kind][u64 client][u64 nonce]             kind 2/3 = join/leave
// The nonce keeps two announcements for the same client from ever being
// byte-identical on the wire (the GroupBus announcement idiom).
constexpr std::uint8_t kEnvData = 1;
constexpr std::uint8_t kEnvJoin = 2;
constexpr std::uint8_t kEnvLeave = 3;

constexpr std::size_t kMaxGroupName = 255;

Bytes encode_data_envelope(std::uint64_t client, BytesView payload) {
  ByteWriter w(9 + payload.size());
  w.u8(kEnvData);
  w.u64(client);
  w.raw(payload);
  return std::move(w).take();
}

Bytes encode_membership_envelope(std::uint8_t kind, std::uint64_t client,
                                 std::uint64_t nonce) {
  ByteWriter w(17);
  w.u8(kind);
  w.u64(client);
  w.u64(nonce);
  return std::move(w).take();
}

}  // namespace

Result<std::unique_ptr<Daemon>> Daemon::create(
    net::Reactor& reactor, TimerService& timers, api::Node& node,
    std::function<void(std::function<void()>)> post, Config config) {
  if (config.socket_path.empty()) {
    return Status(StatusCode::kInvalidArgument, "Daemon needs a socket path");
  }
  if (config.initial_credits == 0) {
    return Status(StatusCode::kInvalidArgument, "initial_credits must be > 0");
  }
  auto daemon = std::unique_ptr<Daemon>(
      new Daemon(timers, node, std::move(post), std::move(config)));
  Daemon* raw = daemon.get();
  ipc::UnixListener::Config lcfg;
  lcfg.socket_path = daemon->config_.socket_path;
  lcfg.max_connections = daemon->config_.max_connections;
  lcfg.max_egress_bytes = daemon->config_.max_egress_bytes;
  auto listener = ipc::UnixListener::create(
      reactor, std::move(lcfg),
      [raw](std::uint64_t conn, ipc::Frame frame) {
        raw->on_protocol([raw, conn, f = std::move(frame)]() mutable {
          raw->handle_frame(conn, std::move(f));
        });
      },
      [raw](std::uint64_t conn, ipc::CloseCause cause) {
        raw->on_protocol([raw, conn, cause] { raw->handle_closed(conn, cause); });
      });
  if (!listener) return listener.status();
  daemon->listener_ = std::move(listener).take();
  return daemon;
}

Daemon::Daemon(TimerService& timers, api::Node& node,
               std::function<void(std::function<void()>)> post, Config config)
    : timers_(timers),
      node_(node),
      post_(std::move(post)),
      config_(std::move(config)),
      bus_(std::make_unique<api::GroupBus>(node)) {
  MetricsRegistry& m = node_.metrics();
  m_connects_ = m.counter("ipc.connects");
  m_disconnects_ = m.counter("ipc.disconnects");
  m_evict_slow_ = m.counter("ipc.evictions_slow_reader");
  m_evict_protocol_ = m.counter("ipc.evictions_protocol");
  m_sends_ = m.counter("ipc.sends");
  m_send_errors_ = m.counter("ipc.send_errors");
  m_delivers_ = m.counter("ipc.delivers");
  m_joins_ = m.counter("ipc.client_joins");
  m_leaves_ = m.counter("ipc.client_leaves");
  m_credit_stalls_ = m.counter("ipc.credit_stalls");
  m_clients_ = m.gauge("ipc.clients");
  m_groups_ = m.gauge("ipc.groups");
  m_egress_peak_ = m.gauge("ipc.egress_peak_bytes");
  m_pending_sends_ = m.gauge("ipc.pending_sends");
}

Daemon::~Daemon() { retry_timer_.cancel(); }

void Daemon::on_protocol(std::function<void()> fn) {
  if (post_) {
    post_(std::move(fn));
  } else {
    fn();
  }
}

void Daemon::begin_shutdown() {
  on_protocol([this] {
    const Bytes bye = ipc::encode_goodbye(ipc::GoodbyeReason::kShutdown);
    for (auto& [conn, client] : clients_) {
      client.evicted = true;  // suppress further frames / slow-reader paths
      listener_->hangup(conn, bye);
    }
  });
}

// ---------------------------------------------------------------- frames

void Daemon::handle_frame(std::uint64_t conn, ipc::Frame frame) {
  auto it = clients_.find(conn);
  if (frame.type == ipc::FrameType::kHello) {
    handle_hello(conn, frame.body);
    return;
  }
  if (it == clients_.end() || !it->second.hello_done) {
    // Spoke before HELLO (or after we evicted and erased it): hang up.
    listener_->hangup(conn,
                      ipc::encode_goodbye(ipc::GoodbyeReason::kProtocolViolation));
    return;
  }
  if (it->second.evicted) return;  // frames racing an eviction: ignore
  switch (frame.type) {
    case ipc::FrameType::kJoin:
      handle_join(conn, frame.body);
      return;
    case ipc::FrameType::kLeave:
      handle_leave(conn, frame.body);
      return;
    case ipc::FrameType::kSend:
      handle_send(conn, frame.body);
      return;
    default:
      evict(conn, ipc::GoodbyeReason::kProtocolViolation);
      return;
  }
}

void Daemon::handle_hello(std::uint64_t conn, BytesView body) {
  if (clients_.count(conn) != 0) {
    evict(conn, ipc::GoodbyeReason::kProtocolViolation);  // double HELLO
    return;
  }
  auto hello = ipc::decode_hello(body);
  if (!hello || hello.value().version != ipc::kProtocolVersion) {
    listener_->hangup(conn,
                      ipc::encode_goodbye(ipc::GoodbyeReason::kProtocolViolation));
    return;
  }
  ClientState& c = clients_[conn];
  c.hello_done = true;
  m_connects_->add();
  m_clients_->set(static_cast<std::int64_t>(clients_.size()));
  ipc::HelloAck ack;
  ack.node = node_.id();
  ack.client_id = conn;  // connection ids are unique for the daemon's life
  ack.initial_credits = config_.initial_credits;
  ack.max_message_bytes = config_.max_message_bytes;
  send_or_evict(conn, ipc::encode_hello_ack(ack));
}

void Daemon::handle_join(std::uint64_t conn, BytesView body) {
  auto req = ipc::decode_group_request(body);
  if (!req) {
    evict(conn, ipc::GoodbyeReason::kProtocolViolation);
    return;
  }
  const std::string& group = req.value().group;
  const std::uint32_t cookie = req.value().cookie;
  if (group.empty() || group.size() > kMaxGroupName) {
    reply_status(conn, cookie,
                 Status(StatusCode::kInvalidArgument, "group name must be 1..255 bytes"));
    return;
  }
  ClientState& c = clients_.at(conn);
  if (c.groups.count(group) != 0) {
    reply_status(conn, cookie, Status::ok());  // idempotent re-join
    return;
  }
  if (Status s = ensure_bus_joined(group); !s.is_ok()) {
    reply_status(conn, cookie, s);
    return;
  }
  groups_.at(group).pending_joins.push_back({conn, cookie});
  if (c.joining.insert(group).second) {
    // First join request from this client: broadcast it. The STATUS reply
    // waits for the envelope to deliver — after join() returns, the
    // client's membership is ordered at every node.
    broadcast_membership(group, kEnvJoin, conn);
  }
}

void Daemon::handle_leave(std::uint64_t conn, BytesView body) {
  auto req = ipc::decode_group_request(body);
  if (!req) {
    evict(conn, ipc::GoodbyeReason::kProtocolViolation);
    return;
  }
  const std::string& group = req.value().group;
  const std::uint32_t cookie = req.value().cookie;
  ClientState& c = clients_.at(conn);
  if (c.groups.count(group) == 0) {
    reply_status(conn, cookie,
                 Status(StatusCode::kFailedPrecondition,
                        c.joining.count(group) ? "join still in flight"
                                               : "not a member of " + group));
    return;
  }
  groups_.at(group).pending_leaves.push_back({conn, cookie});
  broadcast_membership(group, kEnvLeave, conn);
}

void Daemon::handle_send(std::uint64_t conn, BytesView body) {
  ClientState& c = clients_.at(conn);
  if (c.in_flight >= config_.initial_credits) {
    // More SENDs in flight than credits granted: the client is not
    // honoring the window. That is a protocol violation, not congestion.
    evict(conn, ipc::GoodbyeReason::kProtocolViolation);
    return;
  }
  auto req = ipc::decode_send(body);
  if (!req) {
    evict(conn, ipc::GoodbyeReason::kProtocolViolation);
    return;
  }
  c.in_flight += 1;
  const std::string& group = req.value().group;
  if (req.value().payload.size() > config_.max_message_bytes) {
    m_send_errors_->add();
    reply_status(conn, req.value().cookie,
                 Status(StatusCode::kInvalidArgument, "payload too large"));
    grant_credit(conn, 1);
    c.in_flight -= 1;
    return;
  }
  if (c.groups.count(group) == 0) {
    m_send_errors_->add();
    reply_status(conn, req.value().cookie,
                 Status(StatusCode::kNotFound, "not a member of " + group));
    grant_credit(conn, 1);
    c.in_flight -= 1;
    return;
  }
  Bytes envelope = encode_data_envelope(conn, req.value().payload);
  const Status s = bus_->send(group, envelope);
  if (s.is_ok()) {
    m_sends_->add();
    grant_credit(conn, 1);
    c.in_flight -= 1;
    return;
  }
  if (s.code() == StatusCode::kResourceExhausted) {
    // Ring pushback: park the message, keep the credit spent — this is how
    // ring congestion reaches clients without blocking anyone.
    m_credit_stalls_->add();
    c.pending.push_back({group, std::move(envelope)});
    m_pending_sends_->set(m_pending_sends_->value() + 1);
    arm_retry_timer();
    return;
  }
  m_send_errors_->add();
  reply_status(conn, req.value().cookie, s);
  grant_credit(conn, 1);
  c.in_flight -= 1;
}

void Daemon::handle_closed(std::uint64_t conn, ipc::CloseCause cause) {
  auto it = clients_.find(conn);
  if (it == clients_.end()) return;  // closed before HELLO completed
  ClientState state = std::move(it->second);
  clients_.erase(it);
  m_disconnects_->add();
  if (cause == ipc::CloseCause::kProtocol) m_evict_protocol_->add();
  m_clients_->set(static_cast<std::int64_t>(clients_.size()));
  m_pending_sends_->set(m_pending_sends_->value() -
                        static_cast<std::int64_t>(state.pending.size()));

  // Broadcast a leave for everything the client was (or was becoming) a
  // member of — crash cleanup rides the same totally-ordered stream as
  // deliberate leaves, so every node converges. A leave for a join still
  // in flight is safe: sender-FIFO ordering delivers the join first.
  std::set<std::string> to_leave = std::move(state.groups);
  to_leave.insert(state.joining.begin(), state.joining.end());
  for (const std::string& group : to_leave) {
    broadcast_membership(group, kEnvLeave, conn);
  }
  for (auto& [name, g] : groups_) {
    g.local_conns.erase(conn);
    auto drop = [conn](const PendingReply& p) { return p.conn == conn; };
    std::erase_if(g.pending_joins, drop);
    std::erase_if(g.pending_leaves, drop);
  }
}

// ---------------------------------------------------------------- ring side

Status Daemon::ensure_bus_joined(const std::string& group) {
  GroupState& g = groups_[group];
  if (g.bus_joined) return Status::ok();
  Status s = bus_->join(
      group,
      [this, group](const api::GroupMessage& m) { on_group_message(group, m); },
      [this, group](const api::GroupView& v) { on_group_view(group, v); });
  // kFailedPrecondition = bus already joined (a previous attempt whose
  // announcement send failed): the subscription exists, proceed.
  if (!s.is_ok() && s.code() != StatusCode::kFailedPrecondition) return s;
  g.bus_joined = true;
  std::int64_t joined = 0;
  for (const auto& [_, gs] : groups_) joined += gs.bus_joined ? 1 : 0;
  m_groups_->set(joined);
  return Status::ok();
}

void Daemon::broadcast_membership(const std::string& group, std::uint8_t kind,
                                  std::uint64_t client) {
  Bytes envelope = encode_membership_envelope(kind, client, ++envelope_nonce_);
  const Status s = bus_->send(group, envelope);
  if (s.is_ok()) return;
  // Membership traffic must not be lost (a dead client's leave is cleanup,
  // not best effort): park it and retry on the timer. kNotFound cannot
  // happen — we bus-join before broadcasting.
  pending_control_.push_back({group, std::move(envelope)});
  arm_retry_timer();
}

void Daemon::on_group_message(const std::string& group,
                              const api::GroupMessage& m) {
  ByteReader r(m.payload);
  auto kind = r.u8();
  auto client = r.u64();
  if (!kind || !client) return;  // not one of ours — ignore
  const ipc::ClientRef ref{m.origin, client.value()};
  switch (kind.value()) {
    case kEnvData: {
      auto payload = r.raw(r.remaining());
      GroupState& g = groups_[group];
      if (g.local_conns.empty()) return;
      ipc::Deliver d;
      d.group = group;
      d.origin = ref;
      d.seq = m.seq;
      d.payload.assign(payload.value().begin(), payload.value().end());
      const Bytes frame = ipc::encode_deliver(d);
      // Copy the fan-out list: a slow-reader eviction mutates local_conns
      // (via handle_closed) only later, but keep the iteration robust.
      const std::vector<std::uint64_t> fanout(g.local_conns.begin(),
                                              g.local_conns.end());
      for (const std::uint64_t conn : fanout) {
        m_delivers_->add();
        send_or_evict(conn, frame);
        const auto q = static_cast<std::int64_t>(listener_->queued_bytes(conn));
        if (q > m_egress_peak_->value()) m_egress_peak_->set(q);
      }
      return;
    }
    case kEnvJoin:
      apply_client_join(group, ref, m.seq);
      return;
    case kEnvLeave:
      apply_client_leave(group, ref, m.seq);
      return;
    default:
      return;
  }
}

void Daemon::apply_client_join(const std::string& group, ipc::ClientRef ref,
                               std::uint64_t seq) {
  GroupState& g = groups_[group];
  const bool is_new = g.members.insert(ref).second;
  const bool local = ref.node == node_.id();
  if (local) {
    auto cit = clients_.find(ref.client);
    if (cit != clients_.end()) {
      cit->second.joining.erase(group);
      cit->second.groups.insert(group);
      g.local_conns.insert(ref.client);
    }
    // else: the client died between broadcast and delivery; our leave
    // envelope is already behind this join in sender-FIFO order.
  }
  if (is_new) {
    m_joins_->add();
    g.view_seq = seq;
    emit_view(group, g, {ref}, {});
  }
  if (local) {
    // Resolve join() calls waiting on this delivery — after the view, so
    // the joiner's first event is the view that includes it.
    std::vector<PendingReply> done;
    std::erase_if(g.pending_joins, [&](const PendingReply& p) {
      if (p.conn != ref.client) return false;
      done.push_back(p);
      return true;
    });
    for (const PendingReply& p : done) reply_status(p.conn, p.cookie, Status::ok());
  }
}

void Daemon::apply_client_leave(const std::string& group, ipc::ClientRef ref,
                                std::uint64_t seq) {
  GroupState& g = groups_[group];
  if (g.members.erase(ref) == 0) return;  // duplicate cleanup leave
  m_leaves_->add();
  g.view_seq = seq;
  // The leaver (if alive and local) sees the view with its own removal
  // BEFORE the STATUS that completes leave() — last event, clean cut.
  emit_view(group, g, {}, {ref});
  if (ref.node != node_.id()) return;
  g.local_conns.erase(ref.client);
  auto cit = clients_.find(ref.client);
  if (cit != clients_.end()) cit->second.groups.erase(group);
  std::vector<PendingReply> done;
  std::erase_if(g.pending_leaves, [&](const PendingReply& p) {
    if (p.conn != ref.client) return false;
    done.push_back(p);
    return true;
  });
  for (const PendingReply& p : done) reply_status(p.conn, p.cookie, Status::ok());
}

void Daemon::on_group_view(const std::string& group, const api::GroupView& view) {
  GroupState& g = groups_[group];
  // Nodes that fell off the ring take their clients with them — the ring
  // view is the agreed synchronization point, so every surviving daemon
  // prunes the same refs here.
  if (!view.removed.empty()) {
    std::vector<ipc::ClientRef> gone;
    for (auto it = g.members.begin(); it != g.members.end();) {
      if (std::find(view.removed.begin(), view.removed.end(), it->node) !=
          view.removed.end()) {
        gone.push_back(*it);
        it = g.members.erase(it);
      } else {
        ++it;
      }
    }
    if (!gone.empty()) {
      g.view_seq += 1;  // node-crash views carry no ring seq of their own
      emit_view(group, g, {}, std::move(gone));
    }
  }
  // A node newly hosting this group missed earlier client joins: everyone
  // re-announces its local clients (idempotent, totally ordered) — the
  // CPG-style sync phase.
  bool foreign_added = false;
  for (const NodeId n : view.added) foreign_added |= n != node_.id();
  if (foreign_added) {
    for (const std::uint64_t conn : g.local_conns) {
      broadcast_membership(group, kEnvJoin, conn);
    }
  }
}

// ---------------------------------------------------------------- helpers

void Daemon::emit_view(const std::string& group, GroupState& g,
                       std::vector<ipc::ClientRef> added,
                       std::vector<ipc::ClientRef> removed) {
  if (g.local_conns.empty()) return;
  ipc::View v;
  v.group = group;
  v.view_seq = g.view_seq;
  v.members.assign(g.members.begin(), g.members.end());  // set: sorted
  std::sort(added.begin(), added.end());
  std::sort(removed.begin(), removed.end());
  v.added = std::move(added);
  v.removed = std::move(removed);
  const Bytes frame = ipc::encode_view(v);
  const std::vector<std::uint64_t> fanout(g.local_conns.begin(),
                                          g.local_conns.end());
  for (const std::uint64_t conn : fanout) send_or_evict(conn, frame);
}

void Daemon::reply_status(std::uint64_t conn, std::uint32_t cookie,
                          const Status& s) {
  ipc::StatusReply reply;
  reply.cookie = cookie;
  reply.code = s.code();
  reply.detail = s.message();
  send_or_evict(conn, ipc::encode_status(reply));
}

void Daemon::grant_credit(std::uint64_t conn, std::uint32_t n) {
  send_or_evict(conn, ipc::encode_credit(ipc::Credit{n}));
}

void Daemon::send_or_evict(std::uint64_t conn, Bytes frame) {
  if (listener_->send(conn, std::move(frame))) return;
  // Refused: egress over the cap (slow reader) — or the conn is already
  // doomed/gone, in which case evict() is a no-op.
  evict(conn, ipc::GoodbyeReason::kSlowReader);
}

void Daemon::evict(std::uint64_t conn, ipc::GoodbyeReason reason) {
  auto it = clients_.find(conn);
  if (it == clients_.end() || it->second.evicted) return;
  it->second.evicted = true;
  if (reason == ipc::GoodbyeReason::kSlowReader) {
    m_evict_slow_->add();
  } else if (reason == ipc::GoodbyeReason::kProtocolViolation) {
    m_evict_protocol_->add();
  }
  // Best effort GOODBYE, forced close; handle_closed() (kLocal) broadcasts
  // the leaves once the listener confirms the teardown.
  listener_->hangup(conn, ipc::encode_goodbye(reason));
}

void Daemon::arm_retry_timer() {
  if (retry_armed_) return;
  retry_armed_ = true;
  retry_timer_ = timers_.schedule(config_.send_retry_interval, [this] {
    retry_armed_ = false;
    drain_pending();
  });
}

void Daemon::drain_pending() {
  bool ring_full = false;
  while (!pending_control_.empty() && !ring_full) {
    PendingSend& p = pending_control_.front();
    const Status s = bus_->send(p.group, p.envelope);
    if (s.code() == StatusCode::kResourceExhausted) {
      ring_full = true;
      break;
    }
    // OK — or a non-retryable error (dropped: the group vanished).
    pending_control_.pop_front();
  }
  for (auto& [conn, c] : clients_) {
    while (!c.pending.empty() && !ring_full) {
      PendingSend& p = c.pending.front();
      const Status s = bus_->send(p.group, p.envelope);
      if (s.code() == StatusCode::kResourceExhausted) {
        ring_full = true;
        break;
      }
      if (s.is_ok()) m_sends_->add();
      else m_send_errors_->add();
      c.pending.pop_front();
      m_pending_sends_->set(m_pending_sends_->value() - 1);
      grant_credit(conn, 1);
      if (c.in_flight > 0) c.in_flight -= 1;
    }
  }
  if (ring_full) arm_retry_timer();
}

}  // namespace totem::daemon

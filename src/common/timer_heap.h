// TimerHeap: the one-shot-timer priority queue behind every real-time
// TimerService implementation (net::Reactor's poll loop and the ordering
// thread's api::OrderingLoop). Single-threaded by contract: schedule() and
// fire_due() must be called from the owning loop's thread (or before that
// thread starts). FIFO order among timers sharing a deadline is preserved
// via a monotonically increasing sequence number.
#pragma once

#include <cstdint>
#include <optional>
#include <queue>
#include <utility>
#include <vector>

#include "common/timer_service.h"
#include "common/types.h"

namespace totem {

class TimerHeap {
 public:
  /// Register `cb` to fire at `at`. The returned handle cancels lazily: a
  /// cancelled entry stays queued and is skipped when it pops.
  TimerHandle schedule(TimePoint at, TimerService::Callback cb) {
    auto state = std::make_shared<detail::TimerState>();
    timers_.push(Pending{at, next_seq_++, std::move(cb), state});
    return TimerHandle{state};
  }

  /// Pop and invoke every non-cancelled timer due at or before `now`.
  void fire_due(TimePoint now) {
    while (!timers_.empty() && timers_.top().at <= now) {
      Pending t = timers_.top();
      timers_.pop();
      if (t.state->cancelled) continue;
      t.state->fired = true;
      t.fn();
    }
  }

  /// Deadline of the earliest pending timer (cancelled entries included —
  /// they pop as no-ops, so the returned wait is merely conservative).
  [[nodiscard]] std::optional<TimePoint> next_deadline() const {
    if (timers_.empty()) return std::nullopt;
    return timers_.top().at;
  }

  [[nodiscard]] bool empty() const { return timers_.empty(); }

 private:
  struct Pending {
    TimePoint at;
    std::uint64_t seq;
    TimerService::Callback fn;
    std::shared_ptr<detail::TimerState> state;
  };
  struct Later {
    bool operator()(const Pending& a, const Pending& b) const {
      if (a.at != b.at) return a.at > b.at;
      return a.seq > b.seq;
    }
  };

  std::priority_queue<Pending, std::vector<Pending>, Later> timers_;
  std::uint64_t next_seq_ = 0;
};

}  // namespace totem

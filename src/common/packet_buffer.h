// Reference-counted packet buffers backed by a freelist pool.
//
// The send path encodes each message/token ONCE into a PacketBuffer; the
// replicator then fans the SAME buffer out to N transports, each of which
// holds a refcount instead of a deep copy (the paper's active-replication
// slowdown is per-packet CPU cost — extra copies are exactly what we must
// not add per network). The receive path likewise hands pooled buffers up,
// so a replicator that retains a token (PassiveReplicator's buffer,
// ActiveReplicator's last token) pins bytes, not copies.
//
// Thread/lifetime model: PacketBuffer handles may be created, copied and
// destroyed on any thread (atomic refcount); the freelist is mutex-guarded
// so a buffer freed from a reactor callback while another thread acquires
// is safe. Buffers still in flight keep the freelist core alive via
// shared_ptr, so a pool may be destroyed before its last buffer returns.
#pragma once

#include <atomic>
#include <cassert>
#include <cstddef>
#include <cstdint>
#include <memory>

#include "common/bytes.h"

namespace totem {

class BufferPool;
class PacketBuffer;

namespace detail {

struct PoolCore;

struct BufferSlab {
  explicit BufferSlab(std::shared_ptr<PoolCore> c) : core(std::move(c)) {}

  std::shared_ptr<PoolCore> core;  // keeps the freelist alive past the pool
  std::atomic<std::uint32_t> refs{1};
  Bytes storage;
};

/// Return a slab whose refcount hit zero to its pool's freelist (or delete
/// it if the pool is gone). Defined in packet_buffer.cpp.
void return_slab(BufferSlab* slab);

}  // namespace detail

/// A refcounted view of pooled bytes. Copying a PacketBuffer bumps a
/// refcount; the underlying storage returns to its pool when the last
/// handle drops. The viewed range can be narrowed in place (drop_front /
/// truncate) without touching the bytes — used by transports to strip
/// framing headers without a copy.
class PacketBuffer {
 public:
  PacketBuffer() = default;

  PacketBuffer(const PacketBuffer& other)
      : slab_(other.slab_), offset_(other.offset_), length_(other.length_) {
    if (slab_) slab_->refs.fetch_add(1, std::memory_order_relaxed);
  }

  PacketBuffer(PacketBuffer&& other) noexcept
      : slab_(other.slab_), offset_(other.offset_), length_(other.length_) {
    other.slab_ = nullptr;
    other.offset_ = 0;
    other.length_ = kWholeSlab;
  }

  PacketBuffer& operator=(const PacketBuffer& other) {
    PacketBuffer tmp(other);
    swap(tmp);
    return *this;
  }

  PacketBuffer& operator=(PacketBuffer&& other) noexcept {
    if (this != &other) {
      reset();
      slab_ = other.slab_;
      offset_ = other.offset_;
      length_ = other.length_;
      other.slab_ = nullptr;
      other.offset_ = 0;
      other.length_ = kWholeSlab;
    }
    return *this;
  }

  ~PacketBuffer() { reset(); }

  /// Release this handle; the storage returns to the pool when it was the
  /// last one.
  void reset() {
    if (slab_ && slab_->refs.fetch_sub(1, std::memory_order_acq_rel) == 1) {
      detail::return_slab(slab_);
    }
    slab_ = nullptr;
    offset_ = 0;
    length_ = kWholeSlab;
  }

  void swap(PacketBuffer& other) noexcept {
    std::swap(slab_, other.slab_);
    std::swap(offset_, other.offset_);
    std::swap(length_, other.length_);
  }

  [[nodiscard]] BytesView view() const {
    if (!slab_) return {};
    const BytesView whole(slab_->storage);
    const std::size_t off = offset_ < whole.size() ? offset_ : whole.size();
    const std::size_t len = length_ < whole.size() - off ? length_ : whole.size() - off;
    return whole.subspan(off, len);
  }

  // NOLINTNEXTLINE(google-explicit-constructor): the whole point — every
  // BytesView consumer (parsers, handlers, tests) accepts a PacketBuffer.
  operator BytesView() const { return view(); }

  [[nodiscard]] const std::byte* data() const { return view().data(); }
  [[nodiscard]] std::size_t size() const { return view().size(); }
  [[nodiscard]] bool empty() const { return size() == 0; }
  [[nodiscard]] std::byte operator[](std::size_t i) const { return view()[i]; }
  [[nodiscard]] explicit operator bool() const { return slab_ != nullptr; }

  /// Narrow the view past the first `n` bytes (strip a framing header).
  void drop_front(std::size_t n) {
    const std::size_t cur = size();
    offset_ += n < cur ? n : cur;
    length_ = cur - (n < cur ? n : cur);
  }

  /// Narrow the view to at most `n` bytes.
  void truncate(std::size_t n) {
    if (n < size()) length_ = n;
    else length_ = size();
  }

  /// Direct access to the backing storage for filling a freshly acquired
  /// buffer. Only valid while this handle is the sole owner — a shared
  /// buffer is immutable by contract.
  [[nodiscard]] Bytes& mutable_bytes() {
    assert(slab_ && slab_->refs.load(std::memory_order_relaxed) == 1 &&
           "mutable access requires unique ownership");
    return slab_->storage;
  }

  /// Current refcount (introspection/tests only; racy by nature).
  [[nodiscard]] std::uint32_t ref_count() const {
    return slab_ ? slab_->refs.load(std::memory_order_relaxed) : 0;
  }

 private:
  friend class BufferPool;
  explicit PacketBuffer(detail::BufferSlab* slab) : slab_(slab) {}

  static constexpr std::size_t kWholeSlab = static_cast<std::size_t>(-1);

  detail::BufferSlab* slab_ = nullptr;
  std::size_t offset_ = 0;
  std::size_t length_ = kWholeSlab;  // clamped to storage size in view()
};

/// Freelist of packet-sized slabs. acquire() hands out a cleared buffer,
/// reusing returned storage (and its heap capacity) when available.
class BufferPool {
 public:
  struct Stats {
    std::uint64_t allocations = 0;  // slabs newly heap-allocated
    std::uint64_t reuses = 0;       // acquisitions served from the freelist
    std::uint64_t returns = 0;      // buffers whose last ref came back
    std::uint64_t outstanding = 0;  // live buffers right now
    std::uint64_t high_water = 0;   // max simultaneous live buffers
  };

  /// Default capacity reserved in a fresh slab: one full Totem packet
  /// (26-byte header + 1424-byte body) with slack.
  static constexpr std::size_t kDefaultReserve = 2048;

  explicit BufferPool(std::size_t default_reserve = kDefaultReserve);
  ~BufferPool();

  BufferPool(const BufferPool&) = delete;
  BufferPool& operator=(const BufferPool&) = delete;

  /// An empty buffer with at least `reserve` bytes of capacity.
  [[nodiscard]] PacketBuffer acquire(std::size_t reserve = 0);

  /// A buffer viewing exactly `size` bytes of unspecified content (the
  /// caller overwrites them, e.g. recv() into it). Skips the zero-fill a
  /// plain resize of cleared storage would cost.
  [[nodiscard]] PacketBuffer acquire_uninitialized(std::size_t size);

  /// A pooled copy of `data` — the bridge from non-pooled call sites.
  [[nodiscard]] PacketBuffer copy_of(BytesView data);

  [[nodiscard]] Stats stats() const;

  /// Process-wide fallback pool used by the legacy BytesView convenience
  /// entry points on Transport/Replicator.
  static BufferPool& scratch();

 private:
  [[nodiscard]] detail::BufferSlab* take_slab(std::size_t reserve);

  std::shared_ptr<detail::PoolCore> core_;
};

}  // namespace totem

// Fundamental identifier and time types shared by every Totem module.
#pragma once

#include <chrono>
#include <compare>
#include <cstdint>
#include <functional>
#include <limits>
#include <string>

namespace totem {

/// Identifies a node (processor) in the system. The Totem papers identify
/// nodes by IP address; we use a small integer that maps to an endpoint in
/// the transport layer. Lower ids win representative elections, mirroring
/// Totem's "lowest ring id" rule.
using NodeId = std::uint32_t;

/// Identifies one of the N redundant networks (0-based index).
using NetworkId = std::uint8_t;

/// Global message sequence number stamped by the token holder. 64-bit so it
/// never wraps in practice (the original protocol handled 32-bit wraparound;
/// we document the simplification in DESIGN.md).
using SeqNum = std::uint64_t;

constexpr NodeId kInvalidNode = std::numeric_limits<NodeId>::max();
constexpr SeqNum kInvalidSeq = std::numeric_limits<SeqNum>::max();

/// Identifies a ring incarnation. A new ring id is generated each time the
/// membership protocol forms a new ring: the representative's node id plus a
/// monotonically increasing sequence (always advanced by at least 4 per the
/// Totem SRP so that concurrently formed rings never collide).
struct RingId {
  NodeId representative = kInvalidNode;
  std::uint64_t ring_seq = 0;

  friend auto operator<=>(const RingId&, const RingId&) = default;
};

/// Virtual (simulated) or real time. All protocol code is written against
/// this one representation so it runs unchanged on the simulator and on the
/// real-time reactor.
using Duration = std::chrono::microseconds;
using TimePoint = std::chrono::time_point<std::chrono::steady_clock, Duration>;

inline std::string to_string(const RingId& rid) {
  return std::to_string(rid.representative) + ":" + std::to_string(rid.ring_seq);
}

}  // namespace totem

template <>
struct std::hash<totem::RingId> {
  std::size_t operator()(const totem::RingId& r) const noexcept {
    return std::hash<std::uint64_t>{}((static_cast<std::uint64_t>(r.representative) << 32) ^
                                      r.ring_seq);
  }
};

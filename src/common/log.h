// Minimal leveled logger.
//
// Protocol modules log through this sink so tests can capture, silence or
// assert on log output. The default sink writes to stderr. Logging is
// intentionally synchronous and allocation-light; the simulator injects the
// virtual timestamp via set_clock().
#pragma once

#include <functional>
#include <sstream>
#include <string>

#include "common/types.h"

namespace totem {

enum class LogLevel { kTrace = 0, kDebug, kInfo, kWarn, kError };

[[nodiscard]] const char* log_level_name(LogLevel level);

class Logger {
 public:
  using Sink = std::function<void(LogLevel, const std::string&)>;
  using ClockFn = std::function<TimePoint()>;

  static Logger& instance();

  void set_level(LogLevel level) { level_ = level; }
  [[nodiscard]] LogLevel level() const { return level_; }
  void set_sink(Sink sink);
  void set_clock(ClockFn clock);

  [[nodiscard]] bool enabled(LogLevel level) const { return level >= level_; }
  void log(LogLevel level, const std::string& msg);

 private:
  Logger();
  LogLevel level_ = LogLevel::kWarn;
  Sink sink_;
  ClockFn clock_;
};

namespace log_detail {
class LineBuilder {
 public:
  explicit LineBuilder(LogLevel level) : level_(level) {}
  ~LineBuilder() { Logger::instance().log(level_, stream_.str()); }
  LineBuilder(const LineBuilder&) = delete;
  LineBuilder& operator=(const LineBuilder&) = delete;

  template <typename T>
  LineBuilder& operator<<(const T& v) {
    stream_ << v;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};
}  // namespace log_detail

}  // namespace totem

#define TOTEM_LOG(level)                                  \
  if (!::totem::Logger::instance().enabled(level)) {      \
  } else                                                  \
    ::totem::log_detail::LineBuilder(level)

#define TLOG_TRACE TOTEM_LOG(::totem::LogLevel::kTrace)
#define TLOG_DEBUG TOTEM_LOG(::totem::LogLevel::kDebug)
#define TLOG_INFO TOTEM_LOG(::totem::LogLevel::kInfo)
#define TLOG_WARN TOTEM_LOG(::totem::LogLevel::kWarn)
#define TLOG_ERROR TOTEM_LOG(::totem::LogLevel::kError)

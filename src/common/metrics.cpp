#include "common/metrics.h"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "common/json.h"

namespace totem {

namespace {

// Value range covered by bucket i (see header: bucket 0 = {0},
// bucket i >= 1 = [2^(i-1), 2^i - 1], top bucket open-ended).
void bucket_range(std::size_t i, std::uint64_t& lo, std::uint64_t& hi) {
  if (i == 0) {
    lo = hi = 0;
    return;
  }
  lo = std::uint64_t{1} << (i - 1);
  hi = (i >= 64) ? ~std::uint64_t{0} : (std::uint64_t{1} << i) - 1;
  if (i == LatencyHistogram::kBuckets - 1) hi = ~std::uint64_t{0};
}

std::string prometheus_name(std::string_view name) {
  std::string out = "totem_";
  for (char c : name) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_';
    out += ok ? c : '_';
  }
  return out;
}

std::string label_block(std::string_view labels, std::string_view extra = "") {
  if (labels.empty() && extra.empty()) return "";
  std::string out = "{";
  out += labels;
  if (!labels.empty() && !extra.empty()) out += ',';
  out += extra;
  out += '}';
  return out;
}

}  // namespace

double HistogramSnapshot::percentile(double q) const {
  if (count == 0) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  const auto target = static_cast<std::uint64_t>(
      std::max<double>(1.0, std::ceil(q * static_cast<double>(count))));
  std::uint64_t cum = 0;
  for (std::size_t i = 0; i < buckets.size(); ++i) {
    if (buckets[i] == 0) continue;
    cum += buckets[i];
    if (cum < target) continue;
    std::uint64_t lo = 0, hi = 0;
    bucket_range(i, lo, hi);
    const std::uint64_t before = cum - buckets[i];
    const double frac =
        buckets[i] <= 1 ? 0.0
                        : static_cast<double>(target - before - 1) /
                              static_cast<double>(buckets[i] - 1);
    const double v =
        static_cast<double>(lo) +
        frac * (static_cast<double>(hi) - static_cast<double>(lo));
    return std::clamp(v, static_cast<double>(min), static_cast<double>(max));
  }
  return static_cast<double>(max);
}

const HistogramSnapshot* MetricsSnapshot::find_histogram(
    std::string_view name) const {
  for (const auto& h : histograms) {
    if (h.name == name) return &h;
  }
  return nullptr;
}

const MetricsSnapshot::CounterValue* MetricsSnapshot::find_counter(
    std::string_view name) const {
  for (const auto& c : counters) {
    if (c.name == name) return &c;
  }
  return nullptr;
}

std::string MetricsSnapshot::to_json() const {
  JsonWriter w;
  w.begin_object();
  w.key("counters").begin_object();
  for (const auto& c : counters) w.kv(c.name, c.value);
  w.end_object();
  w.key("gauges").begin_object();
  for (const auto& g : gauges) w.kv(g.name, g.value);
  w.end_object();
  w.key("histograms").begin_object();
  for (const auto& h : histograms) {
    w.key(h.name).begin_object();
    w.kv("count", h.count);
    w.kv("sum", h.sum);
    w.kv("min", h.min);
    w.kv("max", h.max);
    w.kv("mean", h.mean());
    w.kv("p50", h.p50());
    w.kv("p90", h.p90());
    w.kv("p99", h.p99());
    w.kv("p999", h.p999());
    // Sparse bucket dump ([index, count] pairs) so offline tooling can
    // re-derive any quantile without us guessing which it wants.
    w.key("buckets").begin_array();
    for (std::size_t i = 0; i < h.buckets.size(); ++i) {
      if (h.buckets[i] == 0) continue;
      w.begin_array().value(static_cast<std::uint64_t>(i)).value(h.buckets[i]).end_array();
    }
    w.end_array();
    w.end_object();
  }
  w.end_object();
  w.end_object();
  return w.take();
}

std::string MetricsSnapshot::to_prometheus(std::string_view labels) const {
  std::ostringstream out;
  for (const auto& c : counters) {
    const std::string n = prometheus_name(c.name);
    out << "# TYPE " << n << " counter\n"
        << n << label_block(labels) << " " << c.value << "\n";
  }
  for (const auto& g : gauges) {
    const std::string n = prometheus_name(g.name);
    out << "# TYPE " << n << " gauge\n"
        << n << label_block(labels) << " " << g.value << "\n";
  }
  for (const auto& h : histograms) {
    const std::string n = prometheus_name(h.name);
    out << "# TYPE " << n << " summary\n";
    const std::pair<const char*, double> quantiles[] = {
        {"0.5", h.p50()}, {"0.9", h.p90()}, {"0.99", h.p99()}, {"0.999", h.p999()}};
    for (const auto& [q, v] : quantiles) {
      out << n
          << label_block(labels,
                         std::string("quantile=\"") + q + "\"")
          << " " << v << "\n";
    }
    out << n << "_sum" << label_block(labels) << " " << h.sum << "\n"
        << n << "_count" << label_block(labels) << " " << h.count << "\n";
  }
  return out.str();
}

std::string MetricsSnapshot::to_string() const {
  std::ostringstream out;
  for (const auto& c : counters) {
    if (c.value == 0) continue;
    out << "  " << c.name << ": " << c.value << "\n";
  }
  for (const auto& g : gauges) {
    if (g.value == 0) continue;
    out << "  " << g.name << ": " << g.value << "\n";
  }
  for (const auto& h : histograms) {
    if (h.count == 0) continue;
    out << "  " << h.name << ": n=" << h.count << " mean=" << h.mean()
        << " min=" << h.min << " p50=" << h.p50() << " p90=" << h.p90()
        << " p99=" << h.p99() << " p999=" << h.p999() << " max=" << h.max
        << "\n";
  }
  return out.str();
}

MetricsSnapshot MetricsRegistry::snapshot() const {
  MetricsSnapshot snap;
  snap.counters.reserve(counters_.size());
  for (const auto& [name, c] : counters_) {
    snap.counters.push_back({name, c.value()});
  }
  snap.gauges.reserve(gauges_.size());
  for (const auto& [name, g] : gauges_) {
    snap.gauges.push_back({name, g.value()});
  }
  snap.histograms.reserve(histograms_.size());
  for (const auto& [name, h] : histograms_) {
    HistogramSnapshot hs;
    hs.name = name;
    hs.count = h.count();
    hs.sum = h.sum();
    hs.min = h.min();
    hs.max = h.max();
    hs.buckets = h.buckets();
    snap.histograms.push_back(std::move(hs));
  }
  return snap;
}

void MetricsRegistry::reset() {
  for (auto& [name, c] : counters_) c.reset();
  for (auto& [name, g] : gauges_) g.reset();
  for (auto& [name, h] : histograms_) h.reset();
}

}  // namespace totem

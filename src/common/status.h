// Lightweight Status / Result error-handling vocabulary.
//
// The protocol stack never throws across module boundaries: wire-format
// parsing and transport operations return Result<T> / Status so that a
// malformed packet from a (possibly faulty) network degrades to a counted
// drop, never a crash (Core Guidelines E.x: use exceptions only for
// programming errors; here remote input is an expected failure domain).
#pragma once

#include <cassert>
#include <optional>
#include <string>
#include <utility>
#include <variant>

namespace totem {

enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kOutOfRange,
  kMalformedPacket,
  kNotFound,
  kUnavailable,
  kFailedPrecondition,
  kResourceExhausted,
  kInternal,
};

[[nodiscard]] constexpr const char* status_code_name(StatusCode c) {
  switch (c) {
    case StatusCode::kOk: return "OK";
    case StatusCode::kInvalidArgument: return "INVALID_ARGUMENT";
    case StatusCode::kOutOfRange: return "OUT_OF_RANGE";
    case StatusCode::kMalformedPacket: return "MALFORMED_PACKET";
    case StatusCode::kNotFound: return "NOT_FOUND";
    case StatusCode::kUnavailable: return "UNAVAILABLE";
    case StatusCode::kFailedPrecondition: return "FAILED_PRECONDITION";
    case StatusCode::kResourceExhausted: return "RESOURCE_EXHAUSTED";
    case StatusCode::kInternal: return "INTERNAL";
  }
  return "UNKNOWN";
}

class [[nodiscard]] Status {
 public:
  Status() = default;  // OK
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status ok() { return {}; }

  [[nodiscard]] bool is_ok() const { return code_ == StatusCode::kOk; }
  [[nodiscard]] StatusCode code() const { return code_; }
  [[nodiscard]] const std::string& message() const { return message_; }

  [[nodiscard]] std::string to_string() const {
    if (is_ok()) return "OK";
    return std::string(status_code_name(code_)) + ": " + message_;
  }

  friend bool operator==(const Status& a, const Status& b) {
    return a.code_ == b.code_;
  }

 private:
  StatusCode code_ = StatusCode::kOk;
  std::string message_;
};

/// Result<T>: either a value or an error Status. Minimal expected<>-style
/// type (we target C++20; std::expected is C++23).
template <typename T>
class [[nodiscard]] Result {
 public:
  Result(T value) : v_(std::move(value)) {}                      // NOLINT(google-explicit-constructor)
  Result(Status status) : v_(std::move(status)) {                // NOLINT(google-explicit-constructor)
    assert(!std::get<Status>(v_).is_ok() && "Result error must not be OK");
  }

  [[nodiscard]] bool is_ok() const { return std::holds_alternative<T>(v_); }
  explicit operator bool() const { return is_ok(); }

  [[nodiscard]] const T& value() const& {
    assert(is_ok());
    return std::get<T>(v_);
  }
  [[nodiscard]] T& value() & {
    assert(is_ok());
    return std::get<T>(v_);
  }
  [[nodiscard]] T&& take() && {
    assert(is_ok());
    return std::get<T>(std::move(v_));
  }

  [[nodiscard]] Status status() const {
    if (is_ok()) return Status::ok();
    return std::get<Status>(v_);
  }

 private:
  std::variant<T, Status> v_;
};

}  // namespace totem

#include "common/trace_merge.h"

#include <cstdlib>
#include <map>
#include <utility>

#include "common/json.h"

namespace totem {
namespace {

// ---- JSONL parsing --------------------------------------------------------
// The dumps are machine-written flat objects (common/trace.cpp to_json), so
// a tiny scanner is enough: quoted keys, and values that are either numbers
// or quoted strings. Anything that deviates fails the line, not the merge.

struct LineScanner {
  std::string_view s;
  std::size_t pos = 0;

  void skip_ws() {
    while (pos < s.size() && (s[pos] == ' ' || s[pos] == '\t')) ++pos;
  }
  bool eat(char c) {
    skip_ws();
    if (pos < s.size() && s[pos] == c) {
      ++pos;
      return true;
    }
    return false;
  }
  bool quoted(std::string_view& out) {
    skip_ws();
    if (pos >= s.size() || s[pos] != '"') return false;
    const std::size_t start = ++pos;
    while (pos < s.size() && s[pos] != '"') {
      if (s[pos] == '\\') return false;  // trace dumps never escape
      ++pos;
    }
    if (pos >= s.size()) return false;
    out = s.substr(start, pos - start);
    ++pos;
    return true;
  }
  bool number(std::int64_t& out) {
    skip_ws();
    const std::size_t start = pos;
    if (pos < s.size() && s[pos] == '-') ++pos;
    while (pos < s.size() && s[pos] >= '0' && s[pos] <= '9') ++pos;
    if (pos == start) return false;
    out = std::strtoll(std::string(s.substr(start, pos - start)).c_str(),
                       nullptr, 10);
    return true;
  }
};

bool parse_trace_line(std::string_view line, TraceRecord& out) {
  LineScanner sc{line};
  if (!sc.eat('{')) return false;
  bool have_kind = false;
  bool first = true;
  for (;;) {
    if (sc.eat('}')) break;
    if (!first && !sc.eat(',')) return false;
    first = false;
    std::string_view key;
    if (!sc.quoted(key) || !sc.eat(':')) return false;
    if (key == "kind") {
      std::string_view name;
      if (!sc.quoted(name)) return false;
      if (!trace_kind_from_string(name, out.kind)) return false;
      have_kind = true;
      continue;
    }
    std::int64_t v = 0;
    if (!sc.number(v)) return false;
    if (key == "t_us") {
      out.at = TimePoint{} + Duration{v};
    } else if (key == "a") {
      out.a = static_cast<std::uint64_t>(v);
    } else if (key == "b") {
      out.b = static_cast<std::uint64_t>(v);
    } else if (key == "node") {
      out.node = static_cast<NodeId>(v);
    } else if (key == "ring_seq") {
      out.ring_seq = static_cast<std::uint64_t>(v);
    } else if (key == "token_seq") {
      out.token_seq = static_cast<std::uint64_t>(v);
    }
    // Unknown numeric keys are skipped: forward compatibility.
  }
  return have_kind;
}

// ---- Chrome trace-event emission -----------------------------------------

// Fixed Perfetto "thread" lanes inside each node's process.
enum Lane : int {
  kLaneToken = 1,
  kLaneMessages = 2,
  kLaneMembership = 3,
  kLaneSmr = 4,
  kLaneRrp = 5,
  kLaneDatapath = 6,
  kLaneHealth = 7,
  kLaneEvents = 8,
};

const char* lane_name(int lane) {
  switch (lane) {
    case kLaneToken: return "token";
    case kLaneMessages: return "messages";
    case kLaneMembership: return "membership";
    case kLaneSmr: return "smr";
    case kLaneRrp: return "rrp";
    case kLaneDatapath: return "datapath";
    case kLaneHealth: return "health";
    case kLaneEvents: return "events";
  }
  return "?";
}

// Must track rrp::NetworkFaultReport::Reason::kReinstated (the merge layer
// sits below rrp/ and cannot include it; trace_merge_test pins the value).
constexpr std::uint64_t kReinstatedReason = 3;

// Must track api::HealthState (same layering constraint; pinned by test).
const char* health_state_name(std::uint64_t v) {
  switch (v) {
    case 0: return "healthy";
    case 1: return "degraded";
    case 2: return "faulted";
  }
  return "?";
}

// Pid used for records emitted before any node id was stamped.
constexpr std::uint64_t kUnattributedPid = 0xFFFFFFFFu;

std::uint64_t pid_of(const TraceRecord& r) {
  return r.node == kInvalidNode ? kUnattributedPid
                                : static_cast<std::uint64_t>(r.node);
}

std::int64_t us_of(const TraceRecord& r) {
  return r.at.time_since_epoch().count();
}

class ChromeTraceBuilder {
 public:
  ChromeTraceBuilder() {
    w_.begin_object();
    w_.key("traceEvents");
    w_.begin_array();
  }

  void span(std::uint64_t pid, int lane, std::string_view name,
            std::int64_t ts, std::int64_t dur,
            const std::vector<std::pair<std::string_view, std::uint64_t>>& args) {
    begin_event(pid, lane, name, "X", ts);
    w_.kv("dur", dur < 0 ? std::int64_t{0} : dur);
    end_event(args);
  }

  void instant(std::uint64_t pid, int lane, std::string_view name,
               std::int64_t ts,
               const std::vector<std::pair<std::string_view, std::uint64_t>>& args) {
    begin_event(pid, lane, name, "i", ts);
    w_.kv("s", "t");  // thread-scoped instant
    end_event(args);
  }

  std::string finish() {
    // Metadata last is fine — Perfetto applies it regardless of position.
    for (const auto& [pid, lanes] : used_lanes_) {
      meta(pid, 0, "process_name",
           pid == kUnattributedPid ? std::string("unattributed")
                                   : "node " + std::to_string(pid));
      for (const auto& [lane, _] : lanes) {
        meta(pid, lane, "thread_name", lane_name(lane));
      }
    }
    w_.end_array();
    w_.end_object();
    return w_.take();
  }

 private:
  void begin_event(std::uint64_t pid, int lane, std::string_view name,
                   std::string_view ph, std::int64_t ts) {
    used_lanes_[pid][lane] = true;
    w_.begin_object();
    w_.kv("name", name);
    w_.kv("ph", ph);
    w_.kv("ts", ts);
    w_.kv("pid", pid);
    w_.kv("tid", static_cast<std::uint64_t>(lane));
  }

  void end_event(const std::vector<std::pair<std::string_view, std::uint64_t>>& args) {
    w_.key("args");
    w_.begin_object();
    for (const auto& [k, v] : args) w_.kv(k, v);
    w_.end_object();
    w_.end_object();
  }

  void meta(std::uint64_t pid, int lane, std::string_view kind,
            const std::string& name) {
    w_.begin_object();
    w_.kv("name", kind);
    w_.kv("ph", "M");
    w_.kv("pid", pid);
    if (lane != 0) w_.kv("tid", static_cast<std::uint64_t>(lane));
    w_.key("args");
    w_.begin_object();
    w_.kv("name", name);
    w_.end_object();
    w_.end_object();
  }

  JsonWriter w_;
  std::map<std::uint64_t, std::map<int, bool>> used_lanes_;
};

// Per-node pairing state carried through the time-ordered sweep.
struct NodeSpans {
  bool token_open = false;
  std::int64_t token_ts = 0;
  std::uint64_t token_seq = 0;
  std::uint64_t token_rotation = 0;

  bool reform_open = false;
  std::int64_t reform_ts = 0;
  std::uint64_t reform_view = 0;
  std::uint64_t reform_old_seq = 0;

  std::map<std::pair<std::uint64_t, std::uint64_t>, std::int64_t> smr_open;
  std::map<std::uint64_t, std::pair<std::int64_t, std::uint64_t>> outage_open;
};

}  // namespace

std::vector<TraceRecord> parse_trace_jsonl(std::string_view jsonl,
                                           std::size_t* skipped) {
  std::vector<TraceRecord> out;
  std::size_t bad = 0;
  std::size_t start = 0;
  while (start < jsonl.size()) {
    std::size_t end = jsonl.find('\n', start);
    if (end == std::string_view::npos) end = jsonl.size();
    const std::string_view line = jsonl.substr(start, end - start);
    start = end + 1;
    if (line.empty()) continue;
    TraceRecord rec;
    if (parse_trace_line(line, rec)) {
      out.push_back(rec);
    } else {
      ++bad;
    }
  }
  if (skipped) *skipped = bad;
  return out;
}

std::string merge_to_chrome_trace(std::vector<TraceRecord> records) {
  std::stable_sort(records.begin(), records.end(),
                   [](const TraceRecord& l, const TraceRecord& r) {
                     if (l.at != r.at) return l.at < r.at;
                     return pid_of(l) < pid_of(r);
                   });

  // Pre-pass: broadcast times keyed (origin, seq) so a delivery anywhere can
  // anchor its end-to-end span at the origin's broadcast instant. A
  // broadcast record covers [first_seq, first_seq + count); the per-message
  // fan-out is capped to keep a corrupt count from exploding the map.
  constexpr std::uint64_t kMaxFanout = 4096;
  std::map<std::pair<std::uint64_t, std::uint64_t>, std::int64_t> broadcast_at;
  for (const TraceRecord& r : records) {
    if (r.kind != TraceKind::kMessageBroadcast || r.node == kInvalidNode) continue;
    const std::uint64_t count = r.b < kMaxFanout ? r.b : kMaxFanout;
    for (std::uint64_t s = 0; s < count; ++s) {
      broadcast_at.emplace(std::make_pair(static_cast<std::uint64_t>(r.node),
                                          r.a + s),
                           us_of(r));
    }
  }

  ChromeTraceBuilder out;
  std::map<std::uint64_t, NodeSpans> state;

  auto flush_token = [&](std::uint64_t pid, NodeSpans& ns) {
    if (!ns.token_open) return;
    ns.token_open = false;
    out.instant(pid, kLaneToken, "token-received (unforwarded)", ns.token_ts,
                {{"seq", ns.token_seq}, {"rotation_us", ns.token_rotation}});
  };

  for (const TraceRecord& r : records) {
    const std::uint64_t pid = pid_of(r);
    NodeSpans& ns = state[pid];
    const std::int64_t ts = us_of(r);
    switch (r.kind) {
      case TraceKind::kTokenReceived:
        flush_token(pid, ns);
        ns.token_open = true;
        ns.token_ts = ts;
        ns.token_seq = r.b;
        ns.token_rotation = r.a;
        break;
      case TraceKind::kTokenForwarded:
      case TraceKind::kTokenRetained:
        // The forwarded seq may exceed the received one (the holder stamps
        // its new broadcasts into the token), so pair on alternation, not
        // on equal seq: the next forward after a receive closes it.
        if (ns.token_open && r.b >= ns.token_seq) {
          ns.token_open = false;
          out.span(pid, kLaneToken, "token-rotation", ns.token_ts,
                   ts - ns.token_ts,
                   {{"seq", r.b},
                    {"to", r.a},
                    {"rotation_us", ns.token_rotation},
                    {"ring_seq", r.ring_seq}});
        } else {
          out.instant(pid, kLaneToken, to_string(r.kind), ts,
                      {{"to", r.a}, {"seq", r.b}});
        }
        break;
      case TraceKind::kMessageDelivered: {
        const auto it = broadcast_at.find(std::make_pair(r.a, r.b));
        if (it != broadcast_at.end()) {
          out.span(pid, kLaneMessages, "deliver", it->second, ts - it->second,
                   {{"origin", r.a}, {"seq", r.b}, {"ring_seq", r.ring_seq}});
        } else {
          out.instant(pid, kLaneMessages, "deliver", ts,
                      {{"origin", r.a}, {"seq", r.b}});
        }
        break;
      }
      case TraceKind::kMessageBroadcast:
        out.instant(pid, kLaneMessages, "broadcast", ts,
                    {{"first_seq", r.a}, {"count", r.b}});
        break;
      case TraceKind::kReformationBegin:
        if (ns.reform_open) {
          out.instant(pid, kLaneMembership, "reformation (restarted)", ns.reform_ts,
                      {{"view", ns.reform_view}});
        }
        ns.reform_open = true;
        ns.reform_ts = ts;
        ns.reform_view = r.a;
        ns.reform_old_seq = r.b;
        break;
      case TraceKind::kReformationEnd:
        if (ns.reform_open) {
          ns.reform_open = false;
          out.span(pid, kLaneMembership, "reformation", ns.reform_ts,
                   ts - ns.reform_ts,
                   {{"view", r.a},
                    {"old_ring_seq", ns.reform_old_seq},
                    {"new_ring_seq", r.b}});
        } else {
          out.instant(pid, kLaneMembership, "reformation-end", ts,
                      {{"view", r.a}, {"new_ring_seq", r.b}});
        }
        break;
      case TraceKind::kSnapshotRoundBegin:
        ns.smr_open[{r.a, r.b}] = ts;
        break;
      case TraceKind::kSnapshotRoundEnd: {
        const auto it = ns.smr_open.find({r.a, r.b});
        if (it != ns.smr_open.end()) {
          out.span(pid, kLaneSmr, "snapshot-round", it->second, ts - it->second,
                   {{"leader", r.a}, {"nonce", r.b}});
          ns.smr_open.erase(it);
        } else {
          out.instant(pid, kLaneSmr, "snapshot-round-end", ts,
                      {{"leader", r.a}, {"nonce", r.b}});
        }
        break;
      }
      case TraceKind::kNetworkFault:
        if (r.b == kReinstatedReason) {
          const auto it = ns.outage_open.find(r.a);
          if (it != ns.outage_open.end()) {
            out.span(pid, kLaneRrp, "network-outage", it->second.first,
                     ts - it->second.first,
                     {{"network", r.a}, {"reason", it->second.second}});
            ns.outage_open.erase(it);
          } else {
            out.instant(pid, kLaneRrp, "network-reinstated", ts,
                        {{"network", r.a}});
          }
        } else if (ns.outage_open.count(r.a) == 0) {
          ns.outage_open[r.a] = {ts, r.b};
          out.instant(pid, kLaneRrp, "network-fault", ts,
                      {{"network", r.a}, {"reason", r.b}});
        } else {
          // Re-report during an open outage: keep the original span edge.
          out.instant(pid, kLaneRrp, "network-fault", ts,
                      {{"network", r.a}, {"reason", r.b}});
        }
        break;
      case TraceKind::kDatapathTxBatch:
        out.instant(pid, kLaneDatapath, "tx-batch", ts,
                    {{"network", r.a}, {"datagrams", r.b}});
        break;
      case TraceKind::kDatapathRxBatch:
        out.instant(pid, kLaneDatapath, "rx-batch", ts,
                    {{"network", r.a}, {"datagrams", r.b}});
        break;
      case TraceKind::kHealthTransition: {
        const std::uint64_t from = (r.b >> 8) & 0xff;
        const std::uint64_t to = r.b & 0xff;
        std::string name = r.a == kHealthOverall
                               ? std::string("ring ")
                               : "net" + std::to_string(r.a) + " ";
        name += health_state_name(from);
        name += "->";
        name += health_state_name(to);
        std::vector<std::pair<std::string_view, std::uint64_t>> args = {
            {"from", from}, {"to", to}};
        if (r.a != kHealthOverall) args.emplace_back("network", r.a);
        out.instant(pid, kLaneHealth, name, ts, args);
        break;
      }
      default:
        out.instant(pid, kLaneEvents, to_string(r.kind), ts,
                    {{"a", r.a},
                     {"b", r.b},
                     {"ring_seq", r.ring_seq},
                     {"token_seq", r.token_seq}});
        break;
    }
  }

  // Leftover opens degrade to instants so truncated rings still render.
  for (auto& [pid, ns] : state) {
    flush_token(pid, ns);
    if (ns.reform_open) {
      out.instant(pid, kLaneMembership, "reformation (unfinished)", ns.reform_ts,
                  {{"view", ns.reform_view}});
    }
    for (const auto& [key, begin_ts] : ns.smr_open) {
      out.instant(pid, kLaneSmr, "snapshot-round (unfinished)", begin_ts,
                  {{"leader", key.first}, {"nonce", key.second}});
    }
    for (const auto& [network, open] : ns.outage_open) {
      out.instant(pid, kLaneRrp, "network-outage (unhealed)", open.first,
                  {{"network", network}, {"reason", open.second}});
    }
  }
  return out.finish();
}

}  // namespace totem

// JsonWriter: a minimal streaming JSON emitter shared by every export
// surface in the repo (metrics snapshots, api::StatsSnapshot::to_json,
// TraceRing::to_jsonl, bench reports, chaos-failure artifacts).
//
// It is deliberately tiny: a comma-state stack plus string escaping. It
// never parses, never allocates per-value beyond the output string, and
// guards non-finite doubles (NaN/inf render as null — JSON has no
// spelling for them and downstream tooling chokes otherwise).
#pragma once

#include <cmath>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace totem {

class JsonWriter {
 public:
  JsonWriter& begin_object() { return open('{'); }
  JsonWriter& end_object() { return close('}'); }
  JsonWriter& begin_array() { return open('['); }
  JsonWriter& end_array() { return close(']'); }

  JsonWriter& key(std::string_view k) {
    comma();
    append_escaped(k);
    out_ += ':';
    pending_value_ = true;
    return *this;
  }

  JsonWriter& value(std::string_view v) {
    comma();
    append_escaped(v);
    return *this;
  }
  JsonWriter& value(const char* v) { return value(std::string_view(v)); }
  JsonWriter& value(bool v) {
    comma();
    out_ += v ? "true" : "false";
    return *this;
  }
  JsonWriter& value(double v) {
    comma();
    if (!std::isfinite(v)) {
      out_ += "null";
    } else {
      char buf[32];
      std::snprintf(buf, sizeof(buf), "%.6g", v);
      out_ += buf;
    }
    return *this;
  }
  JsonWriter& value(std::uint64_t v) {
    comma();
    out_ += std::to_string(v);
    return *this;
  }
  JsonWriter& value(std::int64_t v) {
    comma();
    out_ += std::to_string(v);
    return *this;
  }
  JsonWriter& value(int v) { return value(static_cast<std::int64_t>(v)); }
  JsonWriter& value(unsigned v) { return value(static_cast<std::uint64_t>(v)); }
  JsonWriter& null() {
    comma();
    out_ += "null";
    return *this;
  }

  /// Splice pre-rendered JSON (e.g. a nested snapshot's to_json()) as one value.
  JsonWriter& raw(std::string_view json) {
    comma();
    out_ += json;
    return *this;
  }

  template <typename V>
  JsonWriter& kv(std::string_view k, V&& v) {
    key(k);
    return value(std::forward<V>(v));
  }

  [[nodiscard]] const std::string& str() const { return out_; }
  [[nodiscard]] std::string take() { return std::move(out_); }

 private:
  JsonWriter& open(char c) {
    comma();
    out_ += c;
    first_.push_back(true);
    return *this;
  }
  JsonWriter& close(char c) {
    out_ += c;
    if (!first_.empty()) first_.pop_back();
    return *this;
  }
  void comma() {
    if (pending_value_) {
      pending_value_ = false;
      return;  // value immediately follows its key, no comma
    }
    if (!first_.empty()) {
      if (!first_.back()) out_ += ',';
      first_.back() = false;
    }
  }
  void append_escaped(std::string_view s) {
    out_ += '"';
    for (char c : s) {
      switch (c) {
        case '"': out_ += "\\\""; break;
        case '\\': out_ += "\\\\"; break;
        case '\n': out_ += "\\n"; break;
        case '\r': out_ += "\\r"; break;
        case '\t': out_ += "\\t"; break;
        default:
          if (static_cast<unsigned char>(c) < 0x20) {
            char buf[8];
            std::snprintf(buf, sizeof(buf), "\\u%04x", c);
            out_ += buf;
          } else {
            out_ += c;
          }
      }
    }
    out_ += '"';
  }

  std::string out_;
  std::vector<bool> first_;
  bool pending_value_ = false;
};

}  // namespace totem

// CRC-32 (IEEE 802.3 polynomial) used to checksum every Totem packet.
//
// The real protocol relies on the Ethernet frame CRC; our simulated
// transports carry packets through process memory, so the packet checksum
// stands in for the link-layer CRC and lets tests inject corruption.
#pragma once

#include <cstdint>

#include "common/bytes.h"

namespace totem {

[[nodiscard]] std::uint32_t crc32(BytesView data);

/// Streaming interface: feed data in pieces (used to checksum a packet with
/// its embedded CRC field treated as zero, without copying the packet).
class Crc32 {
 public:
  Crc32& update(BytesView data);
  /// Feed `n` zero bytes.
  Crc32& update_zeros(std::size_t n);
  [[nodiscard]] std::uint32_t value() const { return state_ ^ 0xFFFFFFFFu; }

 private:
  std::uint32_t state_ = 0xFFFFFFFFu;
};

}  // namespace totem

#include "common/packet_buffer.h"

#include <mutex>
#include <vector>

namespace totem {

namespace detail {

struct PoolCore {
  std::mutex mu;
  std::vector<BufferSlab*> free_list;
  BufferPool::Stats stats;
  std::size_t default_reserve = BufferPool::kDefaultReserve;
  bool closed = false;
};

void return_slab(BufferSlab* slab) {
  // Keep the core alive across the erase of our own shared_ptr member.
  const std::shared_ptr<PoolCore> core = slab->core;
  std::lock_guard<std::mutex> lock(core->mu);
  --core->stats.outstanding;
  ++core->stats.returns;
  if (core->closed) {
    delete slab;
    return;
  }
  core->free_list.push_back(slab);
}

}  // namespace detail

BufferPool::BufferPool(std::size_t default_reserve)
    : core_(std::make_shared<detail::PoolCore>()) {
  core_->default_reserve = default_reserve;
}

BufferPool::~BufferPool() {
  std::vector<detail::BufferSlab*> drop;
  {
    std::lock_guard<std::mutex> lock(core_->mu);
    core_->closed = true;
    drop.swap(core_->free_list);
  }
  for (detail::BufferSlab* slab : drop) delete slab;
}

detail::BufferSlab* BufferPool::take_slab(std::size_t reserve) {
  detail::BufferSlab* slab = nullptr;
  {
    std::lock_guard<std::mutex> lock(core_->mu);
    if (!core_->free_list.empty()) {
      slab = core_->free_list.back();
      core_->free_list.pop_back();
      ++core_->stats.reuses;
    } else {
      ++core_->stats.allocations;
    }
    ++core_->stats.outstanding;
    if (core_->stats.outstanding > core_->stats.high_water) {
      core_->stats.high_water = core_->stats.outstanding;
    }
  }
  if (!slab) {
    slab = new detail::BufferSlab(core_);
    slab->storage.reserve(reserve > core_->default_reserve ? reserve
                                                           : core_->default_reserve);
  } else {
    slab->refs.store(1, std::memory_order_relaxed);
    if (reserve > slab->storage.capacity()) slab->storage.reserve(reserve);
  }
  return slab;
}

PacketBuffer BufferPool::acquire(std::size_t reserve) {
  detail::BufferSlab* slab = take_slab(reserve);
  slab->storage.clear();
  return PacketBuffer(slab);
}

PacketBuffer BufferPool::acquire_uninitialized(std::size_t size) {
  detail::BufferSlab* slab = take_slab(size);
  // Reused storage keeps its previous (stale) bytes: the caller overwrites
  // them, so only grow — no clear+resize zero-fill on the hot receive path.
  if (slab->storage.size() < size) slab->storage.resize(size);
  PacketBuffer buffer(slab);
  buffer.truncate(size);
  return buffer;
}

PacketBuffer BufferPool::copy_of(BytesView data) {
  PacketBuffer buffer = acquire(data.size());
  buffer.mutable_bytes().assign(data.begin(), data.end());
  return buffer;
}

BufferPool::Stats BufferPool::stats() const {
  std::lock_guard<std::mutex> lock(core_->mu);
  return core_->stats;
}

BufferPool& BufferPool::scratch() {
  static BufferPool* pool = new BufferPool();  // never destroyed: buffers may
  return *pool;                                // outlive static teardown order
}

}  // namespace totem

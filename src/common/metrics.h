// Metrics layer: named counters, gauges and log-bucketed latency
// histograms with a zero-allocation hot path.
//
// Instruments are registered once at construction time (cold path — a map
// lookup and possible node allocation) and thereafter recorded through
// stable pointers: Counter::add and Gauge::set are single integer stores,
// LatencyHistogram::record is one std::bit_width plus one array increment.
// Nothing on the record path allocates, locks, or formats.
//
// Bucketing: histogram bucket i >= 1 holds values in [2^(i-1), 2^i - 1];
// bucket 0 holds the value 0. Percentiles are reconstructed from the
// cumulative bucket walk with linear interpolation inside the winning
// bucket, clamped to the exactly-tracked min/max. That gives p50/p90/p99/
// p999 with bounded relative error (a factor-of-two bucket is at most
// ~50% off before clamping, far less in practice) at the cost of
// 64 * 8 bytes per histogram — the classic HdrHistogram trade, shrunk to
// the accuracy a protocol repro needs.
//
// Attach a MetricsRegistry via srp::Config::metrics / rrp config metrics
// pointers / net::UdpTransport::Config::metrics (same idiom as the
// TraceRing pointers); a null pointer disables the instrument site.
#pragma once

#include <array>
#include <bit>
#include <cstdint>
#include <map>
#include <string>
#include <string_view>
#include <vector>

namespace totem {

class Counter {
 public:
  void add(std::uint64_t n = 1) { value_ += n; }
  void reset() { value_ = 0; }
  [[nodiscard]] std::uint64_t value() const { return value_; }

 private:
  std::uint64_t value_ = 0;
};

class Gauge {
 public:
  void set(std::int64_t v) { value_ = v; }
  void reset() { value_ = 0; }
  [[nodiscard]] std::int64_t value() const { return value_; }

 private:
  std::int64_t value_ = 0;
};

class LatencyHistogram {
 public:
  static constexpr std::size_t kBuckets = 64;

  void record(std::uint64_t v) {
    const auto idx = static_cast<std::size_t>(std::bit_width(v));
    ++buckets_[idx < kBuckets ? idx : kBuckets - 1];
    ++count_;
    sum_ += v;
    if (v < min_ || count_ == 1) min_ = v;
    if (v > max_) max_ = v;
  }

  void reset() {
    buckets_.fill(0);
    count_ = sum_ = max_ = 0;
    min_ = 0;
  }

  [[nodiscard]] std::uint64_t count() const { return count_; }
  [[nodiscard]] std::uint64_t sum() const { return sum_; }
  [[nodiscard]] std::uint64_t min() const { return count_ ? min_ : 0; }
  [[nodiscard]] std::uint64_t max() const { return max_; }
  [[nodiscard]] const std::array<std::uint64_t, kBuckets>& buckets() const {
    return buckets_;
  }

 private:
  std::array<std::uint64_t, kBuckets> buckets_{};
  std::uint64_t count_ = 0;
  std::uint64_t sum_ = 0;
  std::uint64_t min_ = 0;
  std::uint64_t max_ = 0;
};

/// Point-in-time copy of one histogram, with derived statistics.
struct HistogramSnapshot {
  std::string name;
  std::uint64_t count = 0;
  std::uint64_t sum = 0;
  std::uint64_t min = 0;
  std::uint64_t max = 0;
  std::array<std::uint64_t, LatencyHistogram::kBuckets> buckets{};

  [[nodiscard]] double mean() const {
    return count ? static_cast<double>(sum) / static_cast<double>(count) : 0.0;
  }
  /// q in (0, 1]; reconstructed from buckets, clamped to [min, max].
  [[nodiscard]] double percentile(double q) const;
  [[nodiscard]] double p50() const { return percentile(0.50); }
  [[nodiscard]] double p90() const { return percentile(0.90); }
  [[nodiscard]] double p99() const { return percentile(0.99); }
  [[nodiscard]] double p999() const { return percentile(0.999); }
};

struct MetricsSnapshot {
  struct CounterValue {
    std::string name;
    std::uint64_t value = 0;
  };
  struct GaugeValue {
    std::string name;
    std::int64_t value = 0;
  };

  std::vector<CounterValue> counters;    // sorted by name
  std::vector<GaugeValue> gauges;        // sorted by name
  std::vector<HistogramSnapshot> histograms;  // sorted by name

  [[nodiscard]] const HistogramSnapshot* find_histogram(std::string_view name) const;
  [[nodiscard]] const CounterValue* find_counter(std::string_view name) const;

  /// Compact JSON object: {"counters":{...},"gauges":{...},"histograms":{...}}.
  [[nodiscard]] std::string to_json() const;
  /// Prometheus text exposition (names are prefixed "totem_", '.'->'_').
  /// `labels` is spliced verbatim into every sample's label set,
  /// e.g. R"(node="3")".
  [[nodiscard]] std::string to_prometheus(std::string_view labels = "") const;
  /// Human-readable multi-line summary (only non-zero instruments).
  [[nodiscard]] std::string to_string() const;
};

/// Owns all instruments for one node. Registration returns stable pointers
/// (map nodes never move); the same name always yields the same instrument.
class MetricsRegistry {
 public:
  [[nodiscard]] Counter* counter(std::string_view name) {
    return &counters_[std::string(name)];
  }
  [[nodiscard]] Gauge* gauge(std::string_view name) {
    return &gauges_[std::string(name)];
  }
  [[nodiscard]] LatencyHistogram* histogram(std::string_view name) {
    return &histograms_[std::string(name)];
  }

  /// Read-only lookup that does NOT create the instrument on a miss —
  /// for observers (api::HealthModel) that must not register empty
  /// histograms as a side effect of looking.
  [[nodiscard]] const LatencyHistogram* find_histogram(std::string_view name) const {
    const auto it = histograms_.find(name);
    return it == histograms_.end() ? nullptr : &it->second;
  }

  [[nodiscard]] MetricsSnapshot snapshot() const;

  /// Zero every instrument but keep registrations (and therefore every
  /// pointer handed out) valid — used at bench warmup/measure boundaries.
  void reset();

 private:
  std::map<std::string, Counter, std::less<>> counters_;
  std::map<std::string, Gauge, std::less<>> gauges_;
  std::map<std::string, LatencyHistogram, std::less<>> histograms_;
};

}  // namespace totem

// Deterministic pseudo-random number generator (xoshiro256**).
//
// All stochastic behaviour in the simulator (packet loss, latency jitter,
// fault injection schedules) draws from explicitly seeded Rng instances so
// that every test and benchmark run is exactly reproducible.
#pragma once

#include <cstdint>

namespace totem {

class Rng {
 public:
  explicit Rng(std::uint64_t seed) {
    // SplitMix64 seeding, as recommended by the xoshiro authors.
    auto next_seed = [&seed] {
      seed += 0x9E3779B97F4A7C15uLL;
      std::uint64_t z = seed;
      z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9uLL;
      z = (z ^ (z >> 27)) * 0x94D049BB133111EBuLL;
      return z ^ (z >> 31);
    };
    for (auto& s : s_) s = next_seed();
  }

  std::uint64_t next_u64() {
    const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const std::uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
  }

  /// Uniform in [0, 1).
  double next_double() {
    return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
  }

  /// Uniform in [0, bound). bound must be > 0.
  std::uint64_t next_below(std::uint64_t bound) { return next_u64() % bound; }

  /// Bernoulli trial.
  bool chance(double p) { return next_double() < p; }

 private:
  static std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  std::uint64_t s_[4]{};
};

}  // namespace totem

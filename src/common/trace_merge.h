// Trace merge: stitch per-node TraceRing dumps into one causally ordered
// Chrome trace-event JSON document (loadable in Perfetto / chrome://tracing).
//
// Input is the JSONL format TraceRing::to_jsonl() produces — one record per
// line with the correlation keys (node, ring_seq, token_seq) every record
// carries since PR 8. The merger groups records by emitting node (one
// Perfetto "process" per node) and reconstructs duration spans from the
// protocol's begin/end pairs:
//
//   * token rotations     kTokenReceived -> kTokenForwarded/kTokenRetained,
//                         paired on the token seq
//   * message latency     kMessageBroadcast at the origin -> each node's
//                         kMessageDelivered, keyed on (origin, seq) — the
//                         end-to-end send->deliver span drawn on the
//                         DELIVERING node's track
//   * reformations        kReformationBegin -> kReformationEnd
//   * snapshot transfer   kSnapshotRoundBegin -> kSnapshotRoundEnd, keyed
//                         on (leader, mark nonce)
//   * network outages     kNetworkFault (fault reason) -> kNetworkFault
//                         (reinstated), per (node, network) — the RRP
//                         failover window
//
// Everything else (datapath batches, health transitions, retransmissions,
// ...) renders as instant events. Unpaired begins/ends degrade to instants
// rather than being dropped, so a truncated ring still yields a timeline.
//
// The same clock must drive every input ring for the merged axis to mean
// anything: the simulator's virtual clock (chaos campaigns) or one host's
// steady_clock (the in-process live examples) both qualify.
#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "common/trace.h"

namespace totem {

/// Parse one TraceRing::to_jsonl() dump. Unparseable lines and unknown
/// kinds are counted in `*skipped` (when non-null) and dropped — a merge
/// should survive a partially torn dump file.
[[nodiscard]] std::vector<TraceRecord> parse_trace_jsonl(
    std::string_view jsonl, std::size_t* skipped = nullptr);

/// Merge records from any number of nodes (concatenate the parsed dumps)
/// into one Chrome trace-event JSON document: {"traceEvents":[...]}.
/// Records are grouped by their `node` correlation key; records emitted
/// before a node id was stamped land under a synthetic "unattributed" pid.
[[nodiscard]] std::string merge_to_chrome_trace(std::vector<TraceRecord> records);

}  // namespace totem

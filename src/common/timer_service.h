// TimerService: the one clock/timer abstraction the protocol stack uses.
//
// The SRP and RRP state machines need "now" and cancellable one-shot timers
// (token retention, token-loss detection, RRP token timers, monitor decay).
// Two implementations exist:
//   * sim::Simulator    — virtual time, deterministic (tests, benches)
//   * net::Reactor      — real time over poll() (examples, live deployments)
// Writing the protocol against this interface is what makes the simulated
// evaluation and the real UDP deployment run the exact same protocol code.
#pragma once

#include <functional>
#include <memory>
#include <utility>

#include "common/types.h"

namespace totem {

namespace detail {
struct TimerState {
  bool cancelled = false;
  bool fired = false;
};
}  // namespace detail

/// RAII-ish handle to a scheduled timer. Copyable (shared ownership of the
/// cancellation flag); cancel() is idempotent and safe after firing.
class TimerHandle {
 public:
  TimerHandle() = default;
  explicit TimerHandle(std::shared_ptr<detail::TimerState> state)
      : state_(std::move(state)) {}

  void cancel() {
    if (state_) state_->cancelled = true;
  }

  /// True if the timer is scheduled and has neither fired nor been cancelled.
  [[nodiscard]] bool active() const {
    return state_ && !state_->cancelled && !state_->fired;
  }

 private:
  std::shared_ptr<detail::TimerState> state_;
};

class TimerService {
 public:
  using Callback = std::function<void()>;

  virtual ~TimerService() = default;

  /// Current time. Virtual in the simulator, monotonic wall time in the
  /// reactor.
  [[nodiscard]] virtual TimePoint now() const = 0;

  /// Run `cb` once after `delay`. The returned handle may be used to cancel.
  virtual TimerHandle schedule(Duration delay, Callback cb) = 0;
};

}  // namespace totem

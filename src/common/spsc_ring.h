// SpscRing: bounded lock-free single-producer / single-consumer queue.
//
// The handoff primitive of the threaded UDP hot path (DESIGN.md §12): the
// reactor/I-O thread pushes received packets up to the ordering thread, and
// the ordering thread pushes framed datagrams down to the I/O thread, each
// direction through one of these rings. Exactly ONE thread may call
// try_push and exactly ONE thread may call try_pop; with that contract the
// ring needs no locks — a release store on the producer index publishes the
// slot contents to the consumer's acquire load (and vice versa for slot
// reuse), which is the whole synchronization story and is what makes the
// hot path ThreadSanitizer-clean.
//
// Indices are monotonically increasing and wrapped by a power-of-two mask;
// head_ == tail_ means empty, head_ - tail_ == capacity means full, so all
// capacity slots are usable. Each side caches the other side's index and
// refreshes it only when the cached value says the ring is full/empty,
// keeping the common case free of cross-core cache traffic; the indices
// live on separate cache lines for the same reason.
#pragma once

#include <atomic>
#include <cstddef>
#include <utility>
#include <vector>

namespace totem {

/// Bounded SPSC queue of default-constructible, movable T. Capacity is
/// rounded up to a power of two. Popped slots hold moved-from values until
/// overwritten, so a T that owns resources (e.g. a PacketBuffer refcount)
/// releases them at pop time, not when the slot is reused.
template <typename T>
class SpscRing {
 public:
  explicit SpscRing(std::size_t min_capacity) {
    std::size_t cap = 1;
    while (cap < min_capacity) cap <<= 1;
    slots_.resize(cap);
    mask_ = cap - 1;
  }

  SpscRing(const SpscRing&) = delete;
  SpscRing& operator=(const SpscRing&) = delete;

  /// Producer side. Returns false (and leaves `v` untouched) when full.
  [[nodiscard]] bool try_push(T&& v) {
    const std::size_t head = head_.load(std::memory_order_relaxed);
    if (head - cached_tail_ > mask_) {
      cached_tail_ = tail_.load(std::memory_order_acquire);
      if (head - cached_tail_ > mask_) return false;  // genuinely full
    }
    slots_[head & mask_] = std::move(v);
    head_.store(head + 1, std::memory_order_release);
    return true;
  }

  /// Consumer side. Returns false when empty.
  [[nodiscard]] bool try_pop(T& out) {
    const std::size_t tail = tail_.load(std::memory_order_relaxed);
    if (tail == cached_head_) {
      cached_head_ = head_.load(std::memory_order_acquire);
      if (tail == cached_head_) return false;  // genuinely empty
    }
    out = std::move(slots_[tail & mask_]);
    tail_.store(tail + 1, std::memory_order_release);
    return true;
  }

  /// Snapshot of the element count. Exact when called by either endpoint
  /// thread for its own decision making (never shrinks under the producer,
  /// never grows under the consumer); approximate from anywhere else.
  [[nodiscard]] std::size_t size() const {
    const std::size_t head = head_.load(std::memory_order_acquire);
    const std::size_t tail = tail_.load(std::memory_order_acquire);
    return head - tail;
  }

  [[nodiscard]] bool empty() const { return size() == 0; }
  [[nodiscard]] std::size_t capacity() const { return mask_ + 1; }

 private:
  std::vector<T> slots_;
  std::size_t mask_ = 0;

  alignas(64) std::atomic<std::size_t> head_{0};  // next write (producer-owned)
  alignas(64) std::size_t cached_tail_ = 0;       // producer's view of tail_
  alignas(64) std::atomic<std::size_t> tail_{0};  // next read (consumer-owned)
  alignas(64) std::size_t cached_head_ = 0;       // consumer's view of head_
};

}  // namespace totem

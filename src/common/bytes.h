// Bounds-checked little-endian byte codec used for all wire formats.
//
// Every packet that crosses a network is serialized with ByteWriter and
// parsed with ByteReader. ByteReader never reads past the buffer: every
// accessor returns a Result so malformed input from a faulty network is an
// ordinary, countable event.
#pragma once

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <span>
#include <string>
#include <vector>

#include "common/status.h"

namespace totem {

using Bytes = std::vector<std::byte>;
using BytesView = std::span<const std::byte>;

inline Bytes to_bytes(std::string_view s) {
  Bytes b(s.size());
  if (!s.empty()) std::memcpy(b.data(), s.data(), s.size());
  return b;
}

inline std::string to_string(BytesView b) {
  if (b.empty()) return {};
  return {reinterpret_cast<const char*>(b.data()), b.size()};
}

class ByteWriter {
 public:
  ByteWriter() = default;
  explicit ByteWriter(std::size_t reserve) { buf_.reserve(reserve); }
  /// Write into caller-owned storage (e.g. a pooled packet buffer) instead
  /// of the writer's own vector; `external` is appended to in place.
  explicit ByteWriter(Bytes& external) : out_(&external) {}

  void u8(std::uint8_t v) { append(&v, 1); }
  void u16(std::uint16_t v) { write_le(v); }
  void u32(std::uint32_t v) { write_le(v); }
  void u64(std::uint64_t v) { write_le(v); }

  void raw(BytesView data) { append(data.data(), data.size()); }

  /// Length-prefixed (u32) byte string.
  void blob(BytesView data) {
    u32(static_cast<std::uint32_t>(data.size()));
    raw(data);
  }

  [[nodiscard]] std::size_t size() const { return out_->size(); }

  /// Overwrite a previously written u32 at `offset` (used for patching
  /// counts after the fact, e.g. number of packed messages in a frame).
  void patch_u32(std::size_t offset, std::uint32_t v) {
    std::uint8_t le[4] = {static_cast<std::uint8_t>(v), static_cast<std::uint8_t>(v >> 8),
                          static_cast<std::uint8_t>(v >> 16), static_cast<std::uint8_t>(v >> 24)};
    std::memcpy(out_->data() + offset, le, 4);
  }

  /// Only valid for writers using their own storage.
  [[nodiscard]] Bytes take() && { return std::move(buf_); }
  [[nodiscard]] const Bytes& view() const { return *out_; }

 private:
  template <typename T>
  void write_le(T v) {
    std::uint8_t tmp[sizeof(T)];
    for (std::size_t i = 0; i < sizeof(T); ++i) {
      tmp[i] = static_cast<std::uint8_t>(v >> (8 * i));
    }
    append(tmp, sizeof(T));
  }

  void append(const void* p, std::size_t n) {
    const auto* b = static_cast<const std::byte*>(p);
    out_->insert(out_->end(), b, b + n);
  }

  Bytes buf_;
  Bytes* out_ = &buf_;
};

class ByteReader {
 public:
  explicit ByteReader(BytesView data) : data_(data) {}

  [[nodiscard]] Result<std::uint8_t> u8() { return read_le<std::uint8_t>(); }
  [[nodiscard]] Result<std::uint16_t> u16() { return read_le<std::uint16_t>(); }
  [[nodiscard]] Result<std::uint32_t> u32() { return read_le<std::uint32_t>(); }
  [[nodiscard]] Result<std::uint64_t> u64() { return read_le<std::uint64_t>(); }

  [[nodiscard]] Result<BytesView> raw(std::size_t n) {
    if (remaining() < n) return underflow();
    BytesView out = data_.subspan(pos_, n);
    pos_ += n;
    return out;
  }

  /// Length-prefixed (u32) byte string, validated against the remaining
  /// buffer before the span is taken.
  [[nodiscard]] Result<BytesView> blob() {
    auto n = u32();
    if (!n) return n.status();
    if (remaining() < n.value()) return underflow();
    return raw(n.value());
  }

  [[nodiscard]] std::size_t remaining() const { return data_.size() - pos_; }
  [[nodiscard]] std::size_t position() const { return pos_; }
  [[nodiscard]] bool exhausted() const { return remaining() == 0; }

 private:
  template <typename T>
  Result<T> read_le() {
    if (remaining() < sizeof(T)) return underflow();
    T v = 0;
    for (std::size_t i = 0; i < sizeof(T); ++i) {
      v |= static_cast<T>(static_cast<std::uint8_t>(data_[pos_ + i])) << (8 * i);
    }
    pos_ += sizeof(T);
    return v;
  }

  [[nodiscard]] static Status underflow() {
    return {StatusCode::kMalformedPacket, "buffer underflow"};
  }

  BytesView data_;
  std::size_t pos_ = 0;
};

}  // namespace totem

// TraceRing: a fixed-capacity in-memory flight recorder for protocol events
// (the "blackbox" every production group-communication system grows — when
// a ring misbehaves in the field, the last few thousand protocol events
// matter more than any log line).
//
// Recording is allocation-free after construction and cheap enough to leave
// on: a handful of relaxed atomic stores per event. Attach a TraceRing via
// srp::Config::trace and/or the rrp::*Config::trace pointers; snapshot() /
// to_string() render the history oldest-first.
//
// Correlation keys (DESIGN.md §16). Every record carries the emitting node
// id plus the ring seq and token seq current at emit time, so per-node dumps
// from different nodes can be stitched into one causally ordered cluster
// timeline (common/trace_merge.h, tools/totem_tracemerge): a token-rotation
// span at node 2 and the delivery of message (origin 0, seq 41) at node 3
// line up on the same token_seq / (origin, seq) axes. The SRP refreshes the
// context (set_node / set_ring_seq / set_token_seq); other layers sharing
// the same per-node ring inherit it.
//
// Threading (DESIGN.md §16). emit() may be called concurrently from the
// ordering thread (SRP/RRP/SMR events) and the I/O thread (datapath batch
// events), and snapshot() from any thread (the live telemetry endpoint
// serves /trace from the reactor thread while the ring is being written).
// Each slot is a seqlock over relaxed atomics: writers claim a slot with one
// fetch_add, bump the slot version odd, store the fields, bump it even;
// readers retry or skip slots whose version changed mid-read. No locks, no
// allocation, and TSan-clean (every shared field is an atomic).
#pragma once

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <limits>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "common/types.h"

namespace totem {

enum class TraceKind : std::uint8_t {
  kTokenReceived = 1,   // a = rotation, b = seq
  kTokenForwarded,      // a = successor node, b = seq
  kTokenRetained,       // a = successor node, b = seq (retention resend)
  kTokenLoss,           // token-loss timeout fired
  kMessageBroadcast,    // a = first seq, b = count
  kMessageDelivered,    // a = origin, b = seq
  kRetransmissionSent,  // a = count
  kRetransmitRequested, // a = first missing seq, b = count added
  kStateChange,         // a = new srp state
  kMembershipInstalled, // a = ring representative, b = ring seq
  kSafeAdvanced,        // a = safe seq
  kTokenTimerExpired,   // RRP copy-collection / buffer timer fired.
                        //   active / active-passive: a = bitmask of networks
                        //   whose token copy was still missing, b = token seq
                        //   passive: a = buffered token's network, b = token seq
  kDuplicateTokenAbsorbed,  // a = network
  kNetworkFault,        // a = network, b = reason enum
  // ---- span-style kinds (PR 8): begin/end pairs the trace merger turns
  // into Perfetto duration spans ----
  kReformationBegin,    // a = view number at gather entry, b = old ring seq
  kReformationEnd,      // a = new view number, b = new ring seq
  kSnapshotRoundBegin,  // smr state transfer: a = round leader, b = mark nonce
  kSnapshotRoundEnd,    // a = round leader, b = mark nonce (sent/restored/superseded)
  kDatapathTxBatch,     // a = network, b = datagrams in this TX syscall/chain
  kDatapathRxBatch,     // a = network, b = datagrams in this RX drain
  kHealthTransition,    // a = network (kHealthOverall = ring-wide), b = old<<8|new
};

/// `a` value on kHealthTransition records for the ring-wide state (no
/// single network): the per-network states use their NetworkId.
constexpr std::uint64_t kHealthOverall = std::numeric_limits<std::uint64_t>::max();

[[nodiscard]] const char* to_string(TraceKind kind);

/// Inverse of to_string(TraceKind): resolves a kind name back to the enum
/// (the trace merger parses to_jsonl() dumps). Returns false for unknown
/// names — forward compatibility for dumps from newer builds.
[[nodiscard]] bool trace_kind_from_string(std::string_view name, TraceKind& out);

/// Last enumerator — the merge/parse layers iterate [kTokenReceived, kLastTraceKind].
constexpr TraceKind kLastTraceKind = TraceKind::kHealthTransition;

struct TraceRecord {
  TimePoint at{};
  TraceKind kind{};
  std::uint64_t a = 0;
  std::uint64_t b = 0;
  // Correlation keys (stamped from the ring's context at emit time).
  NodeId node = kInvalidNode;
  std::uint64_t ring_seq = 0;
  std::uint64_t token_seq = 0;
};

class TraceRing {
 public:
  explicit TraceRing(std::size_t capacity = 4096)
      : capacity_(capacity > 0 ? capacity : 1),
        slots_(std::make_unique<Slot[]>(capacity_)) {}

  /// Record one event. Safe to call concurrently from multiple threads
  /// (each call claims its own slot); wait-free and allocation-free.
  void emit(TimePoint at, TraceKind kind, std::uint64_t a = 0, std::uint64_t b = 0) {
    Slot& s = slots_[next_.fetch_add(1, std::memory_order_acq_rel) % capacity_];
    // Seqlock write: odd version opens the slot, even version publishes it.
    // The release fence keeps the field stores from drifting above the
    // opening version store (Boehm, "Can seqlocks get along with
    // programming language memory models?").
    const std::uint32_t v = s.ver.load(std::memory_order_relaxed);
    s.ver.store(v + 1, std::memory_order_relaxed);
    std::atomic_thread_fence(std::memory_order_release);
    s.t_us.store(at.time_since_epoch().count(), std::memory_order_relaxed);
    s.kind.store(static_cast<std::uint8_t>(kind), std::memory_order_relaxed);
    s.a.store(a, std::memory_order_relaxed);
    s.b.store(b, std::memory_order_relaxed);
    s.node.store(node_.load(std::memory_order_relaxed), std::memory_order_relaxed);
    s.ring_seq.store(ring_seq_.load(std::memory_order_relaxed),
                     std::memory_order_relaxed);
    s.token_seq.store(token_seq_.load(std::memory_order_relaxed),
                      std::memory_order_relaxed);
    s.ver.store(v + 2, std::memory_order_release);
  }

  // ---- correlation context (stamped onto every subsequent record) ----
  void set_node(NodeId node) { node_.store(node, std::memory_order_relaxed); }
  void set_ring_seq(std::uint64_t ring_seq) {
    ring_seq_.store(ring_seq, std::memory_order_relaxed);
  }
  void set_token_seq(std::uint64_t token_seq) {
    token_seq_.store(token_seq, std::memory_order_relaxed);
  }
  [[nodiscard]] NodeId node() const { return node_.load(std::memory_order_relaxed); }

  /// Events currently held, oldest first. Safe concurrently with emit():
  /// slots caught mid-write (and slots a lapped writer tears) are skipped
  /// rather than returned torn.
  [[nodiscard]] std::vector<TraceRecord> snapshot() const {
    std::vector<TraceRecord> out;
    const std::size_t end = next_.load(std::memory_order_acquire);
    const std::size_t n = std::min(end, capacity_);
    out.reserve(n);
    for (std::size_t i = 0; i < n; ++i) {
      TraceRecord rec;
      if (read_slot(slots_[(end - n + i) % capacity_], rec)) out.push_back(rec);
    }
    return out;
  }

  [[nodiscard]] std::size_t total_emitted() const {
    return next_.load(std::memory_order_acquire);
  }
  [[nodiscard]] std::size_t dropped() const {
    const std::size_t n = total_emitted();
    return n > capacity_ ? n - capacity_ : 0;
  }
  [[nodiscard]] std::size_t capacity() const { return capacity_; }

  /// Reset to empty. NOT safe concurrently with emit() — a bench/test
  /// convenience, not a hot-path operation.
  void clear() {
    for (std::size_t i = 0; i < capacity_; ++i) {
      Slot& s = slots_[i];
      const std::uint32_t v = s.ver.load(std::memory_order_relaxed);
      s.ver.store(v + 1, std::memory_order_relaxed);
      std::atomic_thread_fence(std::memory_order_release);
      s.kind.store(0, std::memory_order_relaxed);
      s.ver.store(v + 2, std::memory_order_release);
    }
    next_.store(0, std::memory_order_release);
  }

  /// Multi-line human-readable dump, oldest first.
  [[nodiscard]] std::string to_string() const;

  /// One JSON object per line, oldest first (JSONL). last_n = 0 dumps
  /// everything currently held; otherwise only the newest last_n records.
  [[nodiscard]] std::string to_jsonl(std::size_t last_n = 0) const;

  /// Same records as a single JSON array value (for splicing into a
  /// larger document, e.g. a chaos-failure artifact).
  [[nodiscard]] std::string to_json_array(std::size_t last_n = 0) const;

 private:
  struct Slot {
    std::atomic<std::uint32_t> ver{0};
    std::atomic<std::int64_t> t_us{0};
    std::atomic<std::uint8_t> kind{0};  // 0 = never written
    std::atomic<std::uint64_t> a{0};
    std::atomic<std::uint64_t> b{0};
    std::atomic<std::uint32_t> node{kInvalidNode};
    std::atomic<std::uint64_t> ring_seq{0};
    std::atomic<std::uint64_t> token_seq{0};
  };

  /// Seqlock read; false when the slot is unwritten or stayed torn after a
  /// few retries (writer mid-store — the record is simply skipped).
  [[nodiscard]] static bool read_slot(const Slot& s, TraceRecord& out) {
    for (int attempt = 0; attempt < 4; ++attempt) {
      const std::uint32_t v1 = s.ver.load(std::memory_order_acquire);
      if (v1 & 1) continue;
      out.at = TimePoint{} + Duration{s.t_us.load(std::memory_order_relaxed)};
      out.kind = static_cast<TraceKind>(s.kind.load(std::memory_order_relaxed));
      out.a = s.a.load(std::memory_order_relaxed);
      out.b = s.b.load(std::memory_order_relaxed);
      out.node = s.node.load(std::memory_order_relaxed);
      out.ring_seq = s.ring_seq.load(std::memory_order_relaxed);
      out.token_seq = s.token_seq.load(std::memory_order_relaxed);
      std::atomic_thread_fence(std::memory_order_acquire);
      if (s.ver.load(std::memory_order_relaxed) == v1) {
        return static_cast<std::uint8_t>(out.kind) != 0;
      }
    }
    return false;
  }

  std::size_t capacity_;
  std::unique_ptr<Slot[]> slots_;
  std::atomic<std::size_t> next_{0};

  // Correlation context, folded into each record at emit time.
  std::atomic<NodeId> node_{kInvalidNode};
  std::atomic<std::uint64_t> ring_seq_{0};
  std::atomic<std::uint64_t> token_seq_{0};
};

[[nodiscard]] std::string to_string(const TraceRecord& record);

/// One compact JSON object:
/// {"t_us":...,"kind":"...","a":...,"b":...,"node":...,"ring_seq":...,"token_seq":...}.
[[nodiscard]] std::string to_json(const TraceRecord& record);

}  // namespace totem

// TraceRing: a fixed-capacity in-memory flight recorder for protocol events
// (the "blackbox" every production group-communication system grows — when
// a ring misbehaves in the field, the last few thousand protocol events
// matter more than any log line).
//
// Recording is allocation-free after construction and cheap enough to leave
// on: one array store per event. Attach a TraceRing via srp::Config::trace
// and/or the rrp::*Config::trace pointers; snapshot() / to_string() render
// the history oldest-first.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/types.h"

namespace totem {

enum class TraceKind : std::uint8_t {
  kTokenReceived = 1,   // a = rotation, b = seq
  kTokenForwarded,      // a = successor node, b = seq
  kTokenRetained,       // a = successor node, b = seq (retention resend)
  kTokenLoss,           // token-loss timeout fired
  kMessageBroadcast,    // a = first seq, b = count
  kMessageDelivered,    // a = origin, b = seq
  kRetransmissionSent,  // a = count
  kRetransmitRequested, // a = first missing seq, b = count added
  kStateChange,         // a = new srp state
  kMembershipInstalled, // a = ring representative, b = ring seq
  kSafeAdvanced,        // a = safe seq
  kTokenTimerExpired,   // RRP copy-collection / buffer timer fired.
                        //   active / active-passive: a = bitmask of networks
                        //   whose token copy was still missing, b = token seq
                        //   passive: a = buffered token's network, b = token seq
  kDuplicateTokenAbsorbed,  // a = network
  kNetworkFault,        // a = network, b = reason enum
};

[[nodiscard]] const char* to_string(TraceKind kind);

struct TraceRecord {
  TimePoint at{};
  TraceKind kind{};
  std::uint64_t a = 0;
  std::uint64_t b = 0;
};

class TraceRing {
 public:
  explicit TraceRing(std::size_t capacity = 4096)
      : records_(capacity > 0 ? capacity : 1) {}

  void emit(TimePoint at, TraceKind kind, std::uint64_t a = 0, std::uint64_t b = 0) {
    records_[next_ % records_.size()] = TraceRecord{at, kind, a, b};
    ++next_;
  }

  /// Events currently held, oldest first.
  [[nodiscard]] std::vector<TraceRecord> snapshot() const {
    std::vector<TraceRecord> out;
    const std::size_t n = std::min(next_, records_.size());
    out.reserve(n);
    for (std::size_t i = 0; i < n; ++i) {
      out.push_back(records_[(next_ - n + i) % records_.size()]);
    }
    return out;
  }

  [[nodiscard]] std::size_t total_emitted() const { return next_; }
  [[nodiscard]] std::size_t dropped() const {
    return next_ > records_.size() ? next_ - records_.size() : 0;
  }
  [[nodiscard]] std::size_t capacity() const { return records_.size(); }

  void clear() { next_ = 0; }

  /// Multi-line human-readable dump, oldest first.
  [[nodiscard]] std::string to_string() const;

  /// One JSON object per line, oldest first (JSONL). last_n = 0 dumps
  /// everything currently held; otherwise only the newest last_n records.
  [[nodiscard]] std::string to_jsonl(std::size_t last_n = 0) const;

  /// Same records as a single JSON array value (for splicing into a
  /// larger document, e.g. a chaos-failure artifact).
  [[nodiscard]] std::string to_json_array(std::size_t last_n = 0) const;

 private:
  std::vector<TraceRecord> records_;
  std::size_t next_ = 0;
};

[[nodiscard]] std::string to_string(const TraceRecord& record);

/// One compact JSON object: {"t_us":...,"kind":"...","a":...,"b":...}.
[[nodiscard]] std::string to_json(const TraceRecord& record);

}  // namespace totem

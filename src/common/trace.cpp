#include "common/trace.h"

#include <sstream>

#include "common/json.h"

namespace totem {

const char* to_string(TraceKind kind) {
  switch (kind) {
    case TraceKind::kTokenReceived: return "token-received";
    case TraceKind::kTokenForwarded: return "token-forwarded";
    case TraceKind::kTokenRetained: return "token-retained-resend";
    case TraceKind::kTokenLoss: return "token-loss";
    case TraceKind::kMessageBroadcast: return "message-broadcast";
    case TraceKind::kMessageDelivered: return "message-delivered";
    case TraceKind::kRetransmissionSent: return "retransmission-sent";
    case TraceKind::kRetransmitRequested: return "retransmit-requested";
    case TraceKind::kStateChange: return "state-change";
    case TraceKind::kMembershipInstalled: return "membership-installed";
    case TraceKind::kSafeAdvanced: return "safe-advanced";
    case TraceKind::kTokenTimerExpired: return "rrp-token-timer-expired";
    case TraceKind::kDuplicateTokenAbsorbed: return "rrp-duplicate-token";
    case TraceKind::kNetworkFault: return "rrp-network-fault";
    case TraceKind::kReformationBegin: return "reformation-begin";
    case TraceKind::kReformationEnd: return "reformation-end";
    case TraceKind::kSnapshotRoundBegin: return "smr-snapshot-round-begin";
    case TraceKind::kSnapshotRoundEnd: return "smr-snapshot-round-end";
    case TraceKind::kDatapathTxBatch: return "datapath-tx-batch";
    case TraceKind::kDatapathRxBatch: return "datapath-rx-batch";
    case TraceKind::kHealthTransition: return "health-transition";
  }
  return "?";
}

bool trace_kind_from_string(std::string_view name, TraceKind& out) {
  for (int k = static_cast<int>(TraceKind::kTokenReceived);
       k <= static_cast<int>(kLastTraceKind); ++k) {
    const auto kind = static_cast<TraceKind>(k);
    if (name == to_string(kind)) {
      out = kind;
      return true;
    }
  }
  return false;
}

std::string to_string(const TraceRecord& record) {
  std::ostringstream out;
  out << "t=" << record.at.time_since_epoch().count() << "us "
      << to_string(record.kind);
  switch (record.kind) {
    case TraceKind::kTokenReceived:
      out << " rotation=" << record.a << " seq=" << record.b;
      break;
    case TraceKind::kTokenForwarded:
    case TraceKind::kTokenRetained:
      out << " to=" << record.a << " seq=" << record.b;
      break;
    case TraceKind::kMessageBroadcast:
      out << " first_seq=" << record.a << " count=" << record.b;
      break;
    case TraceKind::kMessageDelivered:
      out << " origin=" << record.a << " seq=" << record.b;
      break;
    case TraceKind::kRetransmissionSent:
      out << " count=" << record.a;
      break;
    case TraceKind::kRetransmitRequested:
      out << " first_missing=" << record.a << " added=" << record.b;
      break;
    case TraceKind::kStateChange:
      out << " state=" << record.a;
      break;
    case TraceKind::kMembershipInstalled:
      out << " ring=" << record.a << ":" << record.b;
      break;
    case TraceKind::kSafeAdvanced:
      out << " safe=" << record.a;
      break;
    case TraceKind::kNetworkFault:
      out << " network=" << record.a << " reason=" << record.b;
      break;
    case TraceKind::kTokenTimerExpired:
      out << " missing=" << record.a << " seq=" << record.b;
      break;
    case TraceKind::kDuplicateTokenAbsorbed:
      out << " network=" << record.a;
      break;
    case TraceKind::kReformationBegin:
      out << " view=" << record.a << " old_ring_seq=" << record.b;
      break;
    case TraceKind::kReformationEnd:
      out << " view=" << record.a << " new_ring_seq=" << record.b;
      break;
    case TraceKind::kSnapshotRoundBegin:
    case TraceKind::kSnapshotRoundEnd:
      out << " leader=" << record.a << " nonce=" << record.b;
      break;
    case TraceKind::kDatapathTxBatch:
    case TraceKind::kDatapathRxBatch:
      out << " network=" << record.a << " datagrams=" << record.b;
      break;
    case TraceKind::kHealthTransition:
      if (record.a == kHealthOverall) {
        out << " scope=ring";
      } else {
        out << " network=" << record.a;
      }
      out << " from=" << ((record.b >> 8) & 0xff) << " to=" << (record.b & 0xff);
      break;
    case TraceKind::kTokenLoss:
      break;
  }
  if (record.node != kInvalidNode) {
    out << " node=" << record.node << " ring_seq=" << record.ring_seq
        << " token_seq=" << record.token_seq;
  }
  return out.str();
}

std::string to_json(const TraceRecord& record) {
  JsonWriter w;
  w.begin_object();
  w.kv("t_us", static_cast<std::int64_t>(record.at.time_since_epoch().count()));
  w.kv("kind", to_string(record.kind));
  w.kv("a", record.a);
  w.kv("b", record.b);
  w.kv("node", static_cast<std::uint64_t>(record.node));
  w.kv("ring_seq", record.ring_seq);
  w.kv("token_seq", record.token_seq);
  w.end_object();
  return w.take();
}

std::string TraceRing::to_jsonl(std::size_t last_n) const {
  std::string out;
  auto records = snapshot();
  const std::size_t skip =
      (last_n > 0 && records.size() > last_n) ? records.size() - last_n : 0;
  for (std::size_t i = skip; i < records.size(); ++i) {
    out += to_json(records[i]);
    out += '\n';
  }
  return out;
}

std::string TraceRing::to_json_array(std::size_t last_n) const {
  JsonWriter w;
  w.begin_array();
  auto records = snapshot();
  const std::size_t skip =
      (last_n > 0 && records.size() > last_n) ? records.size() - last_n : 0;
  for (std::size_t i = skip; i < records.size(); ++i) {
    w.raw(to_json(records[i]));
  }
  w.end_array();
  return w.take();
}

std::string TraceRing::to_string() const {
  std::ostringstream out;
  for (const auto& r : snapshot()) {
    out << totem::to_string(r) << "\n";
  }
  if (dropped() > 0) {
    out << "(" << dropped() << " older events overwritten)\n";
  }
  return out.str();
}

}  // namespace totem

#include "common/log.h"

#include <cstdio>

namespace totem {

const char* log_level_name(LogLevel level) {
  switch (level) {
    case LogLevel::kTrace: return "TRACE";
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO";
    case LogLevel::kWarn: return "WARN";
    case LogLevel::kError: return "ERROR";
  }
  return "?";
}

Logger::Logger() {
  sink_ = [](LogLevel level, const std::string& msg) {
    std::fprintf(stderr, "[%s] %s\n", log_level_name(level), msg.c_str());
  };
}

Logger& Logger::instance() {
  static Logger logger;
  return logger;
}

void Logger::set_sink(Sink sink) { sink_ = std::move(sink); }

void Logger::set_clock(ClockFn clock) { clock_ = std::move(clock); }

void Logger::log(LogLevel level, const std::string& msg) {
  if (!enabled(level)) return;
  if (clock_) {
    const auto us = clock_().time_since_epoch().count();
    sink_(level, "t=" + std::to_string(us) + "us " + msg);
  } else {
    sink_(level, msg);
  }
}

}  // namespace totem

// Introspection: a coherent snapshot of every layer's counters plus a
// human-readable dump — what an operator's monitoring agent would scrape.
#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "api/health.h"
#include "api/node.h"
#include "common/metrics.h"
#include "common/packet_buffer.h"

namespace totem::api {

/// One redundant network's state as seen by this node.
struct NetworkSnapshot {
  NetworkId network = 0;           ///< which redundant network
  bool faulty = false;             ///< declared faulty by the RRP monitor
  net::Transport::Stats transport; ///< packet/byte/drop counters
};

/// A coherent point-in-time copy of every layer's counters for one node.
/// Plain data: safe to ship across threads, serialize, or diff.
struct StatsSnapshot {
  NodeId node = kInvalidNode;                ///< whose snapshot this is
  ReplicationStyle style = ReplicationStyle::kNone;
  srp::SingleRing::State state = srp::SingleRing::State::kOperational;
  RingId ring;                               ///< current ring identifier
  std::size_t member_count = 0;              ///< ring membership size
  SeqNum my_aru = 0;                         ///< all-received-up-to watermark
  SeqNum safe_up_to = 0;                     ///< safe (all-hold) watermark
  std::size_t send_queue_depth = 0;          ///< messages awaiting the token
  srp::SingleRing::Stats srp;                ///< ordering-layer counters
  rrp::Replicator::Stats rrp;                ///< replication-layer counters
  BufferPool::Stats buffer_pool;             ///< the ring's packet-encode pool
  std::vector<NetworkSnapshot> networks;     ///< one entry per transport
  /// Latency histograms + event counters from the node's MetricsRegistry.
  MetricsSnapshot metrics;
  /// Derived ring health verdict (api/health.h), re-derived at capture.
  HealthSnapshot health;

  /// One JSON object covering every field above (histograms included).
  [[nodiscard]] std::string to_json() const;
  /// Prometheus text exposition; every sample is labelled node="<id>".
  /// `extra_labels` is appended verbatim to every sample's label set (must
  /// start with ',' when non-empty, e.g. ",shard=\"2\"") — node ids repeat
  /// across shards, so the sharded roll-up disambiguates with it.
  [[nodiscard]] std::string to_prometheus(std::string_view extra_labels = "") const;
};

/// Capture a snapshot of `node` and its transports (pass the same transport
/// list the node was constructed with).
[[nodiscard]] StatsSnapshot snapshot(const Node& node,
                                     const std::vector<const net::Transport*>& transports);

/// Multi-line human-readable rendering of a snapshot.
[[nodiscard]] std::string to_string(const StatsSnapshot& snap);

}  // namespace totem::api

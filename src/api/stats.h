// Introspection: a coherent snapshot of every layer's counters plus a
// human-readable dump — what an operator's monitoring agent would scrape.
#pragma once

#include <string>
#include <vector>

#include "api/node.h"
#include "common/metrics.h"
#include "common/packet_buffer.h"

namespace totem::api {

struct NetworkSnapshot {
  NetworkId network = 0;
  bool faulty = false;
  net::Transport::Stats transport;
};

struct StatsSnapshot {
  NodeId node = kInvalidNode;
  ReplicationStyle style = ReplicationStyle::kNone;
  srp::SingleRing::State state = srp::SingleRing::State::kOperational;
  RingId ring;
  std::size_t member_count = 0;
  SeqNum my_aru = 0;
  SeqNum safe_up_to = 0;
  std::size_t send_queue_depth = 0;
  srp::SingleRing::Stats srp;
  rrp::Replicator::Stats rrp;
  BufferPool::Stats buffer_pool;  // the ring's packet-encode pool
  std::vector<NetworkSnapshot> networks;
  /// Latency histograms + event counters from the node's MetricsRegistry.
  MetricsSnapshot metrics;

  /// One JSON object covering every field above (histograms included).
  [[nodiscard]] std::string to_json() const;
  /// Prometheus text exposition; every sample is labelled node="<id>".
  [[nodiscard]] std::string to_prometheus() const;
};

/// Capture a snapshot of `node` and its transports (pass the same transport
/// list the node was constructed with).
[[nodiscard]] StatsSnapshot snapshot(const Node& node,
                                     const std::vector<const net::Transport*>& transports);

/// Multi-line human-readable rendering of a snapshot.
[[nodiscard]] std::string to_string(const StatsSnapshot& snap);

}  // namespace totem::api

#include "api/runtime.h"

#if defined(__linux__)
#include <pthread.h>
#include <sched.h>
#endif

#include <chrono>

#include "common/log.h"

namespace totem::api {
namespace {

// Best-effort CPU pinning for ThreadedRuntime::Options; no-op off Linux.
void pin_to_cpu(std::thread& thread, int cpu, const char* which) {
  if (cpu < 0) return;
#if defined(__linux__)
  cpu_set_t set;
  CPU_ZERO(&set);
  CPU_SET(cpu, &set);
  const int rc =
      ::pthread_setaffinity_np(thread.native_handle(), sizeof(set), &set);
  if (rc != 0) {
    TLOG_WARN << "ThreadedRuntime: pinning " << which << " thread to cpu "
              << cpu << " failed (errno " << rc << "); leaving it unpinned";
  }
#else
  (void)thread;
  TLOG_WARN << "ThreadedRuntime: cpu pinning unsupported on this platform ("
            << which << " thread unpinned)";
#endif
}

}  // namespace

TimePoint OrderingLoop::now() const {
  return std::chrono::time_point_cast<Duration>(std::chrono::steady_clock::now());
}

TimerHandle OrderingLoop::schedule(Duration delay, Callback cb) {
  return timers_.schedule(now() + delay, std::move(cb));
}

void OrderingLoop::add_transport(net::UdpTransport* transport) {
  transports_.push_back(transport);
}

void OrderingLoop::post(std::function<void()> fn) {
  {
    std::lock_guard<std::mutex> lk(mu_);
    posted_.push_back(std::move(fn));
    wake_pending_ = true;
  }
  cv_.notify_one();
}

void OrderingLoop::wake() {
  {
    // Taking the mutex (not just notifying) is what makes this race-free:
    // the loop re-checks wake_pending_ under the same mutex before it
    // sleeps, so a wake() landing between its empty RX check and the
    // cv_.wait cannot be lost.
    std::lock_guard<std::mutex> lk(mu_);
    wake_pending_ = true;
  }
  cv_.notify_one();
}

std::size_t OrderingLoop::run_once() {
  std::size_t work = 0;
  for (net::UdpTransport* t : transports_) {
    work += t->dispatch_queued();
  }
  std::deque<std::function<void()>> posted;
  {
    std::lock_guard<std::mutex> lk(mu_);
    posted.swap(posted_);
  }
  work += posted.size();
  for (auto& fn : posted) fn();
  timers_.fire_due(now());
  return work;
}

void OrderingLoop::run() {
  {
    std::lock_guard<std::mutex> lk(mu_);
    stopped_ = false;
  }
  for (;;) {
    const std::size_t work = run_once();
    std::unique_lock<std::mutex> lk(mu_);
    if (stopped_) return;
    if (work > 0 || wake_pending_ || !posted_.empty()) {
      // More may be queued behind what we just drained — go around again
      // without sleeping.
      wake_pending_ = false;
      continue;
    }
    const auto deadline = timers_.next_deadline();
    const auto pred = [this] { return wake_pending_ || stopped_; };
    if (deadline) {
      cv_.wait_until(lk, *deadline, pred);
    } else {
      cv_.wait(lk, pred);
    }
    wake_pending_ = false;
    if (stopped_) return;
  }
}

void OrderingLoop::stop() {
  {
    std::lock_guard<std::mutex> lk(mu_);
    stopped_ = true;
  }
  cv_.notify_one();
}

ThreadedRuntime::ThreadedRuntime(net::Reactor& reactor, OrderingLoop& loop,
                                 std::vector<net::UdpTransport*> transports,
                                 Options options)
    : reactor_(reactor), loop_(loop), options_(options) {
  for (net::UdpTransport* t : transports) {
    if (!t->rx_queued()) {
      TLOG_WARN << "ThreadedRuntime: transport net" << t->network_id()
                << " has no RX ring; its rx handler will run on the I/O thread";
    }
    loop_.add_transport(t);
    t->set_rx_wakeup([this] { loop_.wake(); });
  }
}

ThreadedRuntime::~ThreadedRuntime() { stop(); }

void ThreadedRuntime::start() {
  if (running_) return;
  running_ = true;
  io_thread_ = std::thread([this] { reactor_.run(); });
  ordering_thread_ = std::thread([this] { loop_.run(); });
  pin_to_cpu(io_thread_, options_.io_cpu, "I/O");
  pin_to_cpu(ordering_thread_, options_.ordering_cpu, "ordering");
}

void ThreadedRuntime::stop() {
  if (!running_) return;
  running_ = false;
  loop_.stop();
  reactor_.stop();
  reactor_.notify();  // a blocked poll() won't see stopped_ until it wakes
  if (ordering_thread_.joinable()) ordering_thread_.join();
  if (io_thread_.joinable()) io_thread_.join();
}

}  // namespace totem::api

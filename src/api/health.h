// Ring health model (DESIGN.md §16): a derived, operator-facing verdict.
//
// The protocol layers expose raw signals — the RRP monitor's per-network
// faulty flags, per-network token-gap histograms, the SRP's rotation-time
// histogram and protocol state. None of them alone answers the on-call
// question "is this ring OK?". HealthModel folds them into a three-state
// verdict per redundant network plus one ring-wide verdict:
//
//   * healthy  — monitor clean, windowed token-gap p99 under the limit
//   * degraded — monitor clean but the gap p99 (or, ring-wide, rotation
//                drift or a non-operational SRP state) says trouble is
//                brewing: the classic gray-failure window the paper's
//                fault monitors react to only after thresholds trip
//   * faulted  — the RRP monitor declared the network faulty (ring-wide:
//                every network is faulted — total connectivity loss)
//
// Histogram signals are WINDOWED: each update() diffs the cumulative
// bucket counts against the previous update, so the verdict tracks the
// last interval, not the lifetime average (a ring that was slow an hour
// ago is not degraded now). Every state change bumps a transition counter
// and emits a kHealthTransition trace record (a = network id, or
// kHealthOverall for the ring-wide state; b = old<<8|new), so failovers
// line up with reformation spans on the merged Perfetto timeline.
//
// The numeric HealthState values are part of the trace contract:
// common/trace_merge.cpp renders kHealthTransition payloads through the
// same 0/1/2 mapping (pinned by tests/common/trace_merge_test.cpp).
#pragma once

#include <array>
#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "common/metrics.h"
#include "common/trace.h"
#include "common/types.h"
#include "srp/single_ring.h"

namespace totem::api {

/// Derived health verdict. Values are stable wire/trace constants
/// (trace_merge renders b = old<<8|new through this mapping).
enum class HealthState : std::uint8_t {
  kHealthy = 0,
  kDegraded = 1,
  kFaulted = 2,
};

[[nodiscard]] constexpr const char* to_string(HealthState s) {
  switch (s) {
    case HealthState::kHealthy: return "healthy";
    case HealthState::kDegraded: return "degraded";
    case HealthState::kFaulted: return "faulted";
  }
  return "?";
}

/// One redundant network's derived health.
struct NetworkHealth {
  NetworkId network = 0;
  HealthState state = HealthState::kHealthy;
  bool monitor_faulty = false;     ///< the RRP monitor's verdict
  double token_gap_p99_us = 0.0;   ///< windowed (since previous update)
  std::uint64_t window_samples = 0;  ///< gap samples in the window
  std::uint64_t transitions = 0;   ///< lifetime state-change count
};

/// Point-in-time health verdict for the whole node. Plain data.
struct HealthSnapshot {
  HealthState overall = HealthState::kHealthy;
  std::uint64_t overall_transitions = 0;
  srp::SingleRing::State srp_state = srp::SingleRing::State::kOperational;
  bool rotation_drift = false;       ///< windowed rotation p99 over baseline
  double rotation_p99_us = 0.0;      ///< windowed rotation p99
  double rotation_baseline_us = 0.0; ///< lifetime rotation p50 (drift base)
  std::vector<NetworkHealth> networks;
};

/// One JSON object for a health verdict — the `health` block of
/// StatsSnapshot::to_json and the whole body of the /healthz endpoint.
[[nodiscard]] std::string to_json(const HealthSnapshot& h);

/// Folds monitor verdicts + histogram windows into HealthState verdicts.
/// Not thread-safe: call update() from the protocol thread (or wrap in the
/// same external ordering api::snapshot already requires).
class HealthModel {
 public:
  struct Config {
    /// A network whose windowed token-gap p99 exceeds this is degraded
    /// even while the monitor still calls it OK. Default 50ms: an order of
    /// magnitude over a healthy LAN gap, well under the token timeouts
    /// that would trip the monitor.
    double token_gap_p99_limit_us = 50'000.0;
    /// Ring-wide drift alarm: windowed rotation p99 beyond this multiple
    /// of the lifetime rotation median marks the ring degraded.
    double rotation_drift_factor = 8.0;
    /// Histogram windows with fewer samples than this are ignored (no
    /// verdict flapping off one slow rotation).
    std::uint64_t min_window_samples = 16;
    /// The drift baseline (lifetime median) needs at least this many
    /// samples before drift detection arms.
    std::uint64_t min_baseline_samples = 64;
    /// Optional flight recorder for kHealthTransition records. Not owned.
    TraceRing* trace = nullptr;
  };

  /// Everything one update() reads, decoupled from the live layers so the
  /// model is unit-testable without constructing a ring.
  struct Inputs {
    srp::SingleRing::State srp_state = srp::SingleRing::State::kOperational;
    std::size_t network_count = 0;
    std::uint64_t faulty_mask = 0;  ///< bit n: monitor declared network n faulty
    /// Registry carrying `srp.token_rotation_us` and `rrp.token_gap_us.netN`;
    /// may be null (histogram signals simply stay quiet).
    const MetricsRegistry* metrics = nullptr;
  };

  HealthModel() = default;
  explicit HealthModel(const Config& config) : config_(config) {}

  /// Re-derive every verdict from the current inputs. Emits one
  /// kHealthTransition trace record per state that changed.
  void update(TimePoint now, const Inputs& in);

  [[nodiscard]] const HealthSnapshot& snapshot() const { return snapshot_; }
  [[nodiscard]] const Config& config() const { return config_; }

 private:
  /// Cumulative bucket counts at the previous update, per histogram name.
  struct Window {
    std::array<std::uint64_t, LatencyHistogram::kBuckets> buckets{};
    std::uint64_t count = 0;
  };

  /// Windowed p99 of `name` since the previous update. Returns sample
  /// count via `samples`; 0.0 when the histogram is missing or empty.
  double windowed_p99(const MetricsRegistry* metrics, const std::string& name,
                      std::uint64_t& samples);

  void transition(TimePoint now, std::uint64_t key, HealthState& slot,
                  HealthState next, std::uint64_t& counter);

  Config config_;
  HealthSnapshot snapshot_;
  std::map<std::string, Window, std::less<>> windows_;
};

}  // namespace totem::api

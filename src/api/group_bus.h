// GroupBus: closed process groups multiplexed over one Totem ring — the
// programming model Totem deployments actually expose to applications
// (compare Corosync's CPG service, which runs on exactly the Totem SRP/RRP
// stack this library implements).
//
// Every node joins named groups; a message is addressed to a group and
// delivered — in ring total order — at every node that is a member of that
// group. Join and leave announcements ride the same totally-ordered stream
// as data, so every member observes the identical sequence of
// (view change | message) events per group: the property that makes
// replicated state machines per group trivially consistent (src/smr/ is
// that state-machine layer).
//
// Ring membership changes compose with group membership: nodes that fall
// off the ring are removed from every group (with a view change), and after
// a new ring forms every node re-announces its memberships so a joining
// node converges to the same views (a simplified CPG sync phase —
// re-announcements are idempotent and totally ordered).
#pragma once

#include <functional>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "api/node.h"

namespace totem::api {

/// One delivered group message (handler argument).
///
/// LIFETIME RULE: `payload` is a view into the ring's pooled delivery
/// buffer and is valid ONLY for the duration of the handler callback — the
/// buffer is recycled the moment the callback returns. A handler that needs
/// the bytes later must copy them (e.g. `Bytes(m.payload.begin(),
/// m.payload.end())`); retaining the BytesView itself dangles.
struct GroupMessage {
  std::string group;            ///< destination group name
  NodeId origin = kInvalidNode; ///< sending node
  SeqNum seq = 0;               ///< ring sequence number (total order witness)
  BytesView payload;            ///< valid only during the callback — copy to keep
};

/// A group membership view: who is in `group` right now, in agreed order.
/// `added`/`removed` are the delta against the previous view of the same
/// group — the hook a state-transfer layer needs to react to joiners.
struct GroupView {
  std::string group;
  std::vector<NodeId> members;  ///< sorted
  std::vector<NodeId> added;    ///< sorted; joined since the previous view
  std::vector<NodeId> removed;  ///< sorted; left/dropped since the previous view
};

class GroupBus {
 public:
  /// Receives the group's totally-ordered message stream.
  using MessageHandler = std::function<void(const GroupMessage&)>;
  /// Receives group membership views (also totally ordered with traffic).
  using ViewHandler = std::function<void(const GroupView&)>;
  /// Observes raw ring membership views AFTER the bus updated every group
  /// (drops emitted, re-announcements queued). Because re-announcements are
  /// sent inside the same view transition, an observer that sends here is
  /// ordered AFTER the bus's own sync traffic — a view-ordered send
  /// barrier. Multiple observers run in registration order.
  using RingViewObserver = std::function<void(const srp::MembershipView&)>;

  /// Chains onto `node`'s deliver and membership handlers: anything already
  /// installed (e.g. a test harness recorder) keeps running, then the bus
  /// processes the event. Do not replace the node's handlers after
  /// constructing a GroupBus. Call before start().
  explicit GroupBus(Node& node);

  GroupBus(const GroupBus&) = delete;
  GroupBus& operator=(const GroupBus&) = delete;

  /// Join `group`: `on_message` receives the group's totally-ordered
  /// stream; `on_view` (optional) receives membership views. The join takes
  /// effect when its announcement delivers (totally ordered with traffic).
  Status join(const std::string& group, MessageHandler on_message,
              ViewHandler on_view = {});

  /// Leave `group` (announcement is totally ordered too).
  Status leave(const std::string& group);

  /// Send `payload` to every member of `group`. The sender need not be a
  /// member (it will not receive the delivery unless it is) — but the group
  /// must exist from this node's point of view: sending to a group this
  /// node never joined and with no known members returns kNotFound instead
  /// of enqueuing bytes nobody will ever deliver.
  Status send(const std::string& group, BytesView payload);

  /// Register a ring-view observer (see RingViewObserver). Observers cannot
  /// be removed; they must outlive the bus or be self-disabling.
  void add_ring_view_observer(RingViewObserver observer);

  /// Current (locally known) membership of a group, sorted.
  [[nodiscard]] std::vector<NodeId> group_members(const std::string& group) const;
  [[nodiscard]] bool locally_joined(const std::string& group) const {
    return local_.count(group) != 0;
  }
  /// This bus's node id / last seen ring membership (empty before the
  /// first view).
  [[nodiscard]] NodeId node_id() const { return node_.id(); }
  [[nodiscard]] const std::vector<NodeId>& ring_members() const {
    return ring_members_;
  }

  /// Bus-level counters (all updated on the protocol thread).
  struct Stats {
    std::uint64_t messages_sent = 0;        ///< send() calls accepted
    std::uint64_t messages_delivered = 0;   ///< to local handlers
    std::uint64_t messages_filtered = 0;    ///< groups we are not in
    std::uint64_t view_changes = 0;         ///< views emitted to handlers
    std::uint64_t malformed_envelopes = 0;  ///< undecodable group frames
  };
  [[nodiscard]] const Stats& stats() const { return stats_; }

 private:
  enum class Kind : std::uint8_t { kData = 1, kJoin = 2, kLeave = 3 };

  struct LocalSub {
    MessageHandler on_message;
    ViewHandler on_view;
  };

  [[nodiscard]] static Bytes encode(Kind kind, const std::string& group,
                                    BytesView payload);
  /// A join/leave announcement. Carries (node, nonce) trailer bytes so two
  /// announcements are never byte-identical on the wire (the chaos
  /// invariants treat payload bytes as message identities); the parser
  /// ignores the trailer.
  [[nodiscard]] Bytes encode_announcement(Kind kind, const std::string& group);
  void on_deliver(const srp::DeliveredMessage& m);
  void on_ring_view(const srp::MembershipView& view);
  void apply_membership(const std::string& group, NodeId node, bool joined);
  void emit_view(const std::string& group, std::vector<NodeId> added,
                 std::vector<NodeId> removed);

  Node& node_;
  srp::SingleRing::DeliverHandler chained_deliver_;        // pre-bus handler
  srp::SingleRing::MembershipHandler chained_membership_;  // pre-bus handler
  std::map<std::string, LocalSub> local_;          // groups this node joined
  std::map<std::string, std::set<NodeId>> views_;  // group -> member nodes
  std::vector<NodeId> ring_members_;
  std::vector<RingViewObserver> ring_observers_;
  std::uint64_t announce_nonce_ = 0;
  Stats stats_;
};

}  // namespace totem::api

// GroupBus: closed process groups multiplexed over one Totem ring — the
// programming model Totem deployments actually expose to applications
// (compare Corosync's CPG service, which runs on exactly the Totem SRP/RRP
// stack this library implements).
//
// Every node joins named groups; a message is addressed to a group and
// delivered — in ring total order — at every node that is a member of that
// group. Join and leave announcements ride the same totally-ordered stream
// as data, so every member observes the identical sequence of
// (view change | message) events per group: the property that makes
// replicated state machines per group trivially consistent.
//
// Ring membership changes compose with group membership: nodes that fall
// off the ring are removed from every group (with a view change), and after
// a new ring forms every node re-announces its memberships so a joining
// node converges to the same views (a simplified CPG sync phase —
// re-announcements are idempotent and totally ordered).
#pragma once

#include <functional>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "api/node.h"

namespace totem::api {

/// One delivered group message (handler argument).
struct GroupMessage {
  std::string group;            ///< destination group name
  NodeId origin = kInvalidNode; ///< sending node
  SeqNum seq = 0;               ///< ring sequence number (total order witness)
  BytesView payload;            ///< valid only during the callback
};

/// A group membership view: who is in `group` right now, in agreed order.
struct GroupView {
  std::string group;
  std::vector<NodeId> members;  ///< sorted
};

class GroupBus {
 public:
  /// Receives the group's totally-ordered message stream.
  using MessageHandler = std::function<void(const GroupMessage&)>;
  /// Receives group membership views (also totally ordered with traffic).
  using ViewHandler = std::function<void(const GroupView&)>;

  /// Takes ownership of `node`'s deliver and membership handlers — do not
  /// set them yourself after constructing a GroupBus. Call before start().
  explicit GroupBus(Node& node);

  GroupBus(const GroupBus&) = delete;
  GroupBus& operator=(const GroupBus&) = delete;

  /// Join `group`: `on_message` receives the group's totally-ordered
  /// stream; `on_view` (optional) receives membership views. The join takes
  /// effect when its announcement delivers (totally ordered with traffic).
  Status join(const std::string& group, MessageHandler on_message,
              ViewHandler on_view = {});

  /// Leave `group` (announcement is totally ordered too).
  Status leave(const std::string& group);

  /// Send `payload` to every member of `group`. The sender need not be a
  /// member (it will not receive the delivery unless it is).
  Status send(const std::string& group, BytesView payload);

  /// Current (locally known) membership of a group, sorted.
  [[nodiscard]] std::vector<NodeId> group_members(const std::string& group) const;
  [[nodiscard]] bool locally_joined(const std::string& group) const {
    return local_.count(group) != 0;
  }

  /// Bus-level counters (all updated on the protocol thread).
  struct Stats {
    std::uint64_t messages_sent = 0;        ///< send() calls accepted
    std::uint64_t messages_delivered = 0;   ///< to local handlers
    std::uint64_t messages_filtered = 0;    ///< groups we are not in
    std::uint64_t view_changes = 0;         ///< views emitted to handlers
    std::uint64_t malformed_envelopes = 0;  ///< undecodable group frames
  };
  [[nodiscard]] const Stats& stats() const { return stats_; }

 private:
  enum class Kind : std::uint8_t { kData = 1, kJoin = 2, kLeave = 3 };

  struct LocalSub {
    MessageHandler on_message;
    ViewHandler on_view;
  };

  [[nodiscard]] static Bytes encode(Kind kind, const std::string& group,
                                    BytesView payload);
  void on_deliver(const srp::DeliveredMessage& m);
  void on_ring_view(const srp::MembershipView& view);
  void apply_membership(const std::string& group, NodeId node, bool joined);
  void emit_view(const std::string& group);

  Node& node_;
  std::map<std::string, LocalSub> local_;          // groups this node joined
  std::map<std::string, std::set<NodeId>> views_;  // group -> member nodes
  std::vector<NodeId> ring_members_;
  Stats stats_;
};

}  // namespace totem::api

#include "api/group_bus.h"

#include <algorithm>

#include "common/log.h"

namespace totem::api {
namespace {

constexpr std::size_t kMaxGroupName = 255;

}  // namespace

GroupBus::GroupBus(Node& node)
    : node_(node),
      chained_deliver_(node.ring().deliver_handler()),
      chained_membership_(node.ring().membership_handler()) {
  // Chain, don't replace: a harness recorder (or any earlier layer) that
  // installed handlers before us still sees every event first.
  node_.set_deliver_handler([this](const srp::DeliveredMessage& m) {
    if (chained_deliver_) chained_deliver_(m);
    on_deliver(m);
  });
  node_.set_membership_handler([this](const srp::MembershipView& v) {
    if (chained_membership_) chained_membership_(v);
    on_ring_view(v);
  });
}

Bytes GroupBus::encode(Kind kind, const std::string& group, BytesView payload) {
  ByteWriter w(4 + group.size() + payload.size());
  w.u8(static_cast<std::uint8_t>(kind));
  w.u8(static_cast<std::uint8_t>(group.size()));
  w.raw(to_bytes(group));
  w.raw(payload);
  return std::move(w).take();
}

Bytes GroupBus::encode_announcement(Kind kind, const std::string& group) {
  // Announcements have no payload, so two nodes re-announcing the same
  // group would otherwise emit byte-identical ring messages. The (node,
  // nonce) trailer keeps every announcement unique on the wire; on_deliver
  // never reads past the group name for kJoin/kLeave, so the trailer is
  // wire-compatible padding.
  ByteWriter w(14 + group.size());
  w.u8(static_cast<std::uint8_t>(kind));
  w.u8(static_cast<std::uint8_t>(group.size()));
  w.raw(to_bytes(group));
  w.u32(node_.id());
  w.u64(++announce_nonce_);
  return std::move(w).take();
}

Status GroupBus::join(const std::string& group, MessageHandler on_message,
                      ViewHandler on_view) {
  if (group.empty() || group.size() > kMaxGroupName) {
    return Status{StatusCode::kInvalidArgument, "group name must be 1..255 bytes"};
  }
  if (local_.count(group) != 0) {
    return Status{StatusCode::kFailedPrecondition, "already joined " + group};
  }
  local_[group] = LocalSub{std::move(on_message), std::move(on_view)};
  // The join becomes visible (including to ourselves) when the announcement
  // delivers — totally ordered against all group traffic.
  return node_.send(encode_announcement(Kind::kJoin, group));
}

Status GroupBus::leave(const std::string& group) {
  if (local_.count(group) == 0) {
    return Status{StatusCode::kFailedPrecondition, "not a member of " + group};
  }
  return node_.send(encode_announcement(Kind::kLeave, group));
}

Status GroupBus::send(const std::string& group, BytesView payload) {
  if (group.empty() || group.size() > kMaxGroupName) {
    return Status{StatusCode::kInvalidArgument, "group name must be 1..255 bytes"};
  }
  if (local_.count(group) == 0 && views_.count(group) == 0) {
    // Never joined, and no join announcement from anyone has delivered:
    // nothing could ever deliver this message. Tell the caller instead of
    // eating ring bandwidth.
    return Status{StatusCode::kNotFound, "group has no known members: " + group};
  }
  const Status s = node_.send(encode(Kind::kData, group, payload));
  if (s.is_ok()) ++stats_.messages_sent;
  return s;
}

void GroupBus::add_ring_view_observer(RingViewObserver observer) {
  ring_observers_.push_back(std::move(observer));
}

std::vector<NodeId> GroupBus::group_members(const std::string& group) const {
  auto it = views_.find(group);
  if (it == views_.end()) return {};
  return {it->second.begin(), it->second.end()};
}

void GroupBus::on_deliver(const srp::DeliveredMessage& m) {
  ByteReader r(m.payload);
  auto kind = r.u8();
  auto name_len = r.u8();
  if (!kind || !name_len) {
    ++stats_.malformed_envelopes;
    return;
  }
  auto name = r.raw(name_len.value());
  if (!name) {
    ++stats_.malformed_envelopes;
    return;
  }
  const std::string group = totem::to_string(name.value());

  switch (static_cast<Kind>(kind.value())) {
    case Kind::kData: {
      auto it = local_.find(group);
      // Deliver only if we are a member of the group — and our own join has
      // already delivered (closed-group semantics).
      auto view_it = views_.find(group);
      if (it == local_.end() || view_it == views_.end() ||
          view_it->second.count(node_.id()) == 0) {
        ++stats_.messages_filtered;
        return;
      }
      ++stats_.messages_delivered;
      if (it->second.on_message) {
        const BytesView payload = m.payload.subspan(2 + name_len.value());
        it->second.on_message(GroupMessage{group, m.origin, m.seq, payload});
      }
      return;
    }
    case Kind::kJoin:
      apply_membership(group, m.origin, true);
      return;
    case Kind::kLeave:
      apply_membership(group, m.origin, false);
      // Our own leave finalizes when it delivers.
      if (m.origin == node_.id()) local_.erase(group);
      return;
  }
  ++stats_.malformed_envelopes;
}

void GroupBus::apply_membership(const std::string& group, NodeId node, bool joined) {
  auto& members = views_[group];
  const bool changed = joined ? members.insert(node).second : members.erase(node) > 0;
  if (!changed) {
    // Idempotent re-announcement after a ring change.
    if (members.empty()) views_.erase(group);
    return;
  }
  if (members.empty()) views_.erase(group);
  if (joined) {
    emit_view(group, {node}, {});
  } else {
    emit_view(group, {}, {node});
  }
}

void GroupBus::emit_view(const std::string& group, std::vector<NodeId> added,
                         std::vector<NodeId> removed) {
  ++stats_.view_changes;
  auto it = local_.find(group);
  if (it == local_.end() || !it->second.on_view) return;
  GroupView view;
  view.group = group;
  view.members = group_members(group);
  view.added = std::move(added);
  view.removed = std::move(removed);
  it->second.on_view(view);
}

void GroupBus::on_ring_view(const srp::MembershipView& view) {
  ring_members_ = view.members;
  // Drop group members that fell off the ring (totally ordered at every
  // survivor: the ring view itself is the synchronization point).
  for (auto it = views_.begin(); it != views_.end();) {
    auto& [group, members] = *it;
    std::vector<NodeId> dropped;
    for (auto m = members.begin(); m != members.end();) {
      if (std::find(ring_members_.begin(), ring_members_.end(), *m) ==
          ring_members_.end()) {
        dropped.push_back(*m);
        m = members.erase(m);
      } else {
        ++m;
      }
    }
    const std::string group_name = group;
    const bool now_empty = members.empty();
    if (now_empty) {
      it = views_.erase(it);
    } else {
      ++it;
    }
    if (!dropped.empty()) emit_view(group_name, {}, std::move(dropped));
  }
  // Re-announce our memberships so nodes that merged into the ring learn
  // them (idempotent; totally ordered). Our own state is re-inserted when
  // the announcements deliver.
  for (const auto& [group, _] : local_) {
    (void)node_.send(encode_announcement(Kind::kJoin, group));
  }
  // Ring observers run last: group drops are already emitted and the sync
  // announcements are already queued, so anything an observer sends is
  // ordered after the bus's own view transition (the send barrier).
  for (const auto& observer : ring_observers_) observer(view);
}

}  // namespace totem::api

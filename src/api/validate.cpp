#include "api/validate.h"

#include <algorithm>

namespace totem::api {
namespace {

Status invalid(std::string message) {
  return Status{StatusCode::kInvalidArgument, std::move(message)};
}

}  // namespace

Status validate(const NodeConfig& config, std::size_t transport_count) {
  if (transport_count == 0) {
    return invalid("at least one transport (network) is required");
  }
  if (config.srp.node_id == kInvalidNode) {
    return invalid("node_id must be set");
  }
  if (config.srp.initial_members.empty() && config.srp.assume_initial_ring) {
    return invalid("assume_initial_ring requires initial_members");
  }

  switch (config.style) {
    case ReplicationStyle::kNone:
      // Extra transports would silently go unused — almost certainly a
      // configuration mistake.
      if (transport_count != 1) {
        return invalid("no-replication style uses exactly one transport");
      }
      break;
    case ReplicationStyle::kActive:
    case ReplicationStyle::kPassive:
      if (transport_count < 2) {
        return invalid("network replication requires at least two networks");
      }
      break;
    case ReplicationStyle::kActivePassive:
      // Paper §7: 1 < K < N, hence N >= 3.
      if (transport_count < 3) {
        return invalid("active-passive replication requires at least three networks (§7)");
      }
      if (config.active_passive.k <= 1 || config.active_passive.k >= transport_count) {
        return invalid("active-passive requires 1 < K < N");
      }
      break;
  }

  // Timing sanity.
  if (config.srp.token_loss_timeout <= Duration::zero()) {
    return invalid("token_loss_timeout must be positive");
  }
  if (config.srp.token_retention_interval <= Duration::zero()) {
    return invalid("token_retention_interval must be positive");
  }
  if (config.srp.token_retention_interval >= config.srp.token_loss_timeout) {
    return invalid("token retention must fire well before the token-loss timeout");
  }
  if (config.style == ReplicationStyle::kPassive &&
      config.passive.token_buffer_timeout >= config.srp.token_loss_timeout) {
    return invalid("passive token buffer timeout must be below the token-loss timeout");
  }
  if (config.style == ReplicationStyle::kActive &&
      config.active.token_timeout >= config.srp.token_loss_timeout) {
    return invalid("active token timeout must be below the token-loss timeout");
  }

  // Flow control sanity.
  if (config.srp.window_size == 0 || config.srp.max_messages_per_visit == 0) {
    return invalid("flow-control window and per-visit cap must be positive");
  }
  if (config.srp.max_messages_per_visit > config.srp.window_size) {
    return invalid("per-visit cap cannot exceed the rotation window");
  }
  if (config.srp.rtr_limit == 0) {
    return invalid("rtr_limit must be positive or retransmission cannot work");
  }
  if (config.srp.send_queue_limit == 0) {
    return invalid("send_queue_limit must be positive");
  }

  // Monitor sanity.
  if (config.style == ReplicationStyle::kActive && config.active.problem_threshold == 0) {
    return invalid("problem_threshold must be positive");
  }
  if (config.style == ReplicationStyle::kPassive &&
      config.passive.imbalance_threshold == 0) {
    return invalid("imbalance_threshold must be positive");
  }
  return Status::ok();
}

}  // namespace totem::api

// NodeTelemetry: binds a net::TelemetryServer to one api::Node, serving
// the operator surface of a live ring (DESIGN.md §16):
//
//   GET /metrics  -> StatsSnapshot::to_prometheus() (text exposition)
//   GET /healthz  -> api::to_json(node.health());  HTTP 503 when the
//                    overall verdict is faulted (probe-friendly), 200 for
//                    healthy AND degraded — degraded is an alert, not an
//                    outage
//   GET /trace    -> TraceRing::to_jsonl() flight-recorder dump (feed the
//                    per-node dumps to totem_tracemerge for a timeline)
//   GET /shards   -> shard::ClusterSnapshot::to_json() roll-up, when this
//                    node fronts a ShardedKv (Config::shards provider set;
//                    404 otherwise). The api layer stays shard-agnostic:
//                    the provider is a std::function the embedder wires to
//                    ShardedKv::roll_up (see harness::ShardedUdpCluster)
//
// Threading. Requests arrive on the reactor (I/O) thread. /metrics and
// /healthz walk protocol-thread state (ring stats, histograms, health
// model), so under ThreadedRuntime the snapshot work MUST run on the
// ordering thread: set Config::post (e.g. `[&rt](auto fn) {
// rt.post(std::move(fn)); }`) and the handler marshals each request over
// and the response back. With post unset the snapshot runs inline —
// correct only for single-threaded runtimes where the reactor thread IS
// the protocol thread. /trace reads the seqlock-protected TraceRing and
// is served inline from any thread either way.
#pragma once

#include <functional>
#include <memory>
#include <vector>

#include "api/node.h"
#include "api/stats.h"
#include "common/status.h"
#include "net/telemetry_server.h"

namespace totem::api {

class NodeTelemetry {
 public:
  struct Config {
    /// Listener knobs (bind address, port, limits). Defaults: loopback,
    /// ephemeral port — read port() after create.
    net::TelemetryServer::Config http;
    /// Protocol-thread executor; required under ThreadedRuntime, leave
    /// null when the reactor thread runs the protocol stack.
    std::function<void(std::function<void()>)> post;
    /// Flight recorder served at /trace; null => /trace answers 404.
    const TraceRing* trace = nullptr;
    /// Cluster-wide shard roll-up served at /shards as JSON (wire it to
    /// shard::ClusterSnapshot::to_json over ShardedKv::roll_up); null =>
    /// /shards answers 404. Runs through Config::post like /metrics — the
    /// router state it walks belongs to the protocol thread.
    std::function<std::string()> shards;
  };

  /// `node` and `transports` must outlive the returned object (same
  /// lifetime rule as api::snapshot's arguments).
  static Result<std::unique_ptr<NodeTelemetry>> create(
      net::Reactor& reactor, const Node& node,
      std::vector<const net::Transport*> transports, Config config);

  /// The bound port (resolves an ephemeral-port request).
  [[nodiscard]] std::uint16_t port() const { return server_->port(); }
  [[nodiscard]] const net::TelemetryServer& server() const { return *server_; }

 private:
  NodeTelemetry(const Node& node, std::vector<const net::Transport*> transports,
                Config config)
      : node_(node), transports_(std::move(transports)), config_(std::move(config)) {}

  void handle(const net::TelemetryServer::Request& req,
              std::function<void(net::TelemetryServer::Response)> reply) const;

  const Node& node_;
  std::vector<const net::Transport*> transports_;
  Config config_;
  std::unique_ptr<net::TelemetryServer> server_;
};

}  // namespace totem::api

#include "api/node.h"

#include <cassert>
#include <stdexcept>

#include "api/validate.h"
#include "rrp/active_passive_replicator.h"
#include "rrp/active_replicator.h"
#include "rrp/null_replicator.h"
#include "rrp/passive_replicator.h"

namespace totem::api {

Node::Node(TimerService& timers, std::vector<net::Transport*> transports, NodeConfig config,
           net::CpuCharger* cpu)
    : style_(config.style) {
  if (const Status s = validate(config, transports.size()); !s.is_ok()) {
    throw std::invalid_argument("invalid NodeConfig: " + s.message());
  }
  // Every layer records into the node-wide registry unless the caller
  // injected one of their own (config is by value, so this is local).
  if (!config.srp.metrics) config.srp.metrics = &metrics_;
  if (!config.active.metrics) config.active.metrics = &metrics_;
  if (!config.passive.metrics) config.passive.metrics = &metrics_;
  if (!config.active_passive.monitor.metrics) {
    config.active_passive.monitor.metrics = &metrics_;
  }
  switch (config.style) {
    case ReplicationStyle::kNone:
      replicator_ = std::make_unique<rrp::NullReplicator>(*transports.front());
      break;
    case ReplicationStyle::kActive:
      replicator_ = std::make_unique<rrp::ActiveReplicator>(timers, transports,
                                                            config.active);
      break;
    case ReplicationStyle::kPassive:
      replicator_ = std::make_unique<rrp::PassiveReplicator>(timers, transports,
                                                             config.passive);
      break;
    case ReplicationStyle::kActivePassive:
      replicator_ = std::make_unique<rrp::ActivePassiveReplicator>(
          timers, transports, config.active_passive);
      break;
  }
  ring_ = std::make_unique<srp::SingleRing>(timers, *replicator_, config.srp, cpu);
  timers_ = &timers;

  // Health model (DESIGN.md §16): reads whatever registry the SRP records
  // into and traces transitions into the same flight recorder.
  if (!config.health.model.trace) config.health.model.trace = config.srp.trace;
  health_model_ = HealthModel(config.health.model);
  health_metrics_ = config.srp.metrics;
  health_interval_ = config.health.update_interval;
  if (health_interval_ > Duration{0}) update_health_and_rearm();

  // Adaptive token-timeout tuning (DESIGN.md §14): watch the SRP rotation
  // histogram, periodically retune the replicator's timer. kNone has no
  // replicator timer to tune.
  if (config.adaptive_timeout.enabled && config.style != ReplicationStyle::kNone) {
    adaptive_ = config.adaptive_timeout;
    switch (config.style) {
      case ReplicationStyle::kNone: break;  // unreachable (guard above)
      case ReplicationStyle::kActive:
        static_timeout_ = config.active.token_timeout;
        break;
      case ReplicationStyle::kPassive:
        static_timeout_ = config.passive.token_buffer_timeout;
        break;
      case ReplicationStyle::kActivePassive:
        static_timeout_ = config.active_passive.token_timeout;
        break;
    }
    // The advisor must read the same registry the SRP records into; that is
    // metrics_ unless the caller injected their own.
    advisor_ = std::make_unique<rrp::TimeoutAdvisor>(*config.srp.metrics,
                                                     adaptive_.advisor);
    apply_advice_and_rearm();
  }
}

Node::~Node() {
  advisor_timer_.cancel();
  health_timer_.cancel();
}

void Node::apply_advice_and_rearm() {
  replicator_->set_token_timeout(advisor_->advise(static_timeout_));
  advisor_timer_ = timers_->schedule(adaptive_.update_interval,
                                     [this] { apply_advice_and_rearm(); });
}

const HealthSnapshot& Node::health() const {
  HealthModel::Inputs in;
  in.srp_state = ring_->state();
  in.network_count = replicator_->network_count();
  for (std::size_t n = 0; n < in.network_count && n < 64; ++n) {
    if (replicator_->network_faulty(static_cast<NetworkId>(n))) {
      in.faulty_mask |= std::uint64_t{1} << n;
    }
  }
  in.metrics = health_metrics_;
  health_model_.update(timers_->now(), in);
  return health_model_.snapshot();
}

void Node::update_health_and_rearm() {
  (void)health();
  health_timer_ =
      timers_->schedule(health_interval_, [this] { update_health_and_rearm(); });
}

}  // namespace totem::api

#include "api/telemetry.h"

#include "common/trace.h"

namespace totem::api {

Result<std::unique_ptr<NodeTelemetry>> NodeTelemetry::create(
    net::Reactor& reactor, const Node& node,
    std::vector<const net::Transport*> transports, Config config) {
  auto telemetry = std::unique_ptr<NodeTelemetry>(
      new NodeTelemetry(node, std::move(transports), std::move(config)));
  NodeTelemetry* raw = telemetry.get();
  auto server = net::TelemetryServer::create(
      reactor, telemetry->config_.http,
      [raw](const net::TelemetryServer::Request& req, auto reply) {
        raw->handle(req, std::move(reply));
      });
  if (!server.is_ok()) return server.status();
  telemetry->server_ = std::move(server).take();
  return telemetry;
}

void NodeTelemetry::handle(
    const net::TelemetryServer::Request& req,
    std::function<void(net::TelemetryServer::Response)> reply) const {
  using Response = net::TelemetryServer::Response;
  if (req.method != "GET") {
    reply(Response{405, "text/plain; charset=utf-8", "GET only\n"});
    return;
  }
  // Ignore any query string: "/metrics?x=1" still serves /metrics.
  const std::string path = req.target.substr(0, req.target.find('?'));

  if (path == "/trace") {
    // TraceRing snapshots are seqlock-consistent from any thread — no need
    // to borrow the protocol thread for what may be megabytes of JSONL.
    if (!config_.trace) {
      reply(Response{404, "text/plain; charset=utf-8", "tracing disabled\n"});
      return;
    }
    reply(Response{200, "application/x-ndjson", config_.trace->to_jsonl()});
    return;
  }

  std::function<void()> work;
  if (path == "/metrics") {
    work = [this, reply] {
      reply(Response{200, "text/plain; version=0.0.4; charset=utf-8",
                     api::snapshot(node_, transports_).to_prometheus()});
    };
  } else if (path == "/shards") {
    if (!config_.shards) {
      reply(Response{404, "text/plain; charset=utf-8",
                     "no sharded deployment on this node\n"});
      return;
    }
    work = [this, reply] {
      reply(Response{200, "application/json", config_.shards() + "\n"});
    };
  } else if (path == "/healthz") {
    work = [this, reply] {
      const HealthSnapshot& h = node_.health();
      reply(Response{h.overall == HealthState::kFaulted ? 503 : 200,
                     "application/json", to_json(h) + "\n"});
    };
  } else {
    reply(Response{404, "text/plain; charset=utf-8",
                   "try /metrics, /healthz, /shards, or /trace\n"});
    return;
  }
  if (config_.post) {
    config_.post(std::move(work));  // marshal onto the protocol thread
  } else {
    work();
  }
}

}  // namespace totem::api

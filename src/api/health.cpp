#include "api/health.h"

#include <algorithm>

#include "common/json.h"

namespace totem::api {

std::string to_json(const HealthSnapshot& h) {
  JsonWriter w;
  w.begin_object();
  w.kv("overall", to_string(h.overall));
  w.kv("overall_transitions", h.overall_transitions);
  w.kv("srp_state", srp::to_string(h.srp_state));
  w.kv("rotation_drift", h.rotation_drift);
  w.kv("rotation_p99_us", h.rotation_p99_us);
  w.kv("rotation_baseline_us", h.rotation_baseline_us);
  w.key("networks");
  w.begin_array();
  for (const auto& nh : h.networks) {
    w.begin_object();
    w.kv("network", static_cast<std::uint64_t>(nh.network));
    w.kv("state", to_string(nh.state));
    w.kv("monitor_faulty", nh.monitor_faulty);
    w.kv("token_gap_p99_us", nh.token_gap_p99_us);
    w.kv("window_samples", nh.window_samples);
    w.kv("transitions", nh.transitions);
    w.end_object();
  }
  w.end_array();
  w.end_object();
  return w.take();
}

namespace {

// Value range covered by histogram bucket i (mirrors common/metrics.cpp:
// bucket 0 = {0}, bucket i >= 1 = [2^(i-1), 2^i - 1], top bucket open).
void bucket_range(std::size_t i, std::uint64_t& lo, std::uint64_t& hi) {
  if (i == 0) {
    lo = hi = 0;
    return;
  }
  lo = std::uint64_t{1} << (i - 1);
  hi = (i >= 64) ? ~std::uint64_t{0} : (std::uint64_t{1} << i) - 1;
  if (i == LatencyHistogram::kBuckets - 1) hi = ~std::uint64_t{0};
}

}  // namespace

double HealthModel::windowed_p99(const MetricsRegistry* metrics,
                                 const std::string& name,
                                 std::uint64_t& samples) {
  samples = 0;
  if (!metrics) return 0.0;
  const LatencyHistogram* h = metrics->find_histogram(name);
  if (!h) return 0.0;

  Window& prev = windows_[name];
  const auto& cur = h->buckets();
  HistogramSnapshot delta;
  delta.name = name;
  // A registry reset() (bench warmup/measure boundary) makes the cumulative
  // counts go backwards; restart the window from the fresh counts.
  const bool restarted = h->count() < prev.count;
  std::size_t lo_bucket = cur.size();
  std::size_t hi_bucket = 0;
  for (std::size_t i = 0; i < cur.size(); ++i) {
    const std::uint64_t d = restarted || cur[i] < prev.buckets[i]
                                ? cur[i]
                                : cur[i] - prev.buckets[i];
    delta.buckets[i] = d;
    delta.count += d;
    if (d > 0) {
      lo_bucket = std::min(lo_bucket, i);
      hi_bucket = std::max(hi_bucket, i);
    }
  }
  prev.buckets = cur;
  prev.count = h->count();
  samples = delta.count;
  if (delta.count == 0) return 0.0;
  // min/max only clamp percentile(); bucket bounds are tight enough here.
  std::uint64_t lo = 0, hi = 0;
  bucket_range(lo_bucket, lo, hi);
  delta.min = lo;
  bucket_range(hi_bucket, lo, hi);
  delta.max = hi;
  return delta.p99();
}

void HealthModel::transition(TimePoint now, std::uint64_t key,
                             HealthState& slot, HealthState next,
                             std::uint64_t& counter) {
  if (slot == next) return;
  if (config_.trace) {
    config_.trace->emit(now, TraceKind::kHealthTransition, key,
                        (static_cast<std::uint64_t>(slot) << 8) |
                            static_cast<std::uint64_t>(next));
  }
  slot = next;
  ++counter;
}

void HealthModel::update(TimePoint now, const Inputs& in) {
  snapshot_.srp_state = in.srp_state;
  if (snapshot_.networks.size() != in.network_count) {
    snapshot_.networks.resize(in.network_count);
    for (std::size_t n = 0; n < in.network_count; ++n) {
      snapshot_.networks[n].network = static_cast<NetworkId>(n);
    }
  }

  // Per-network verdicts: the monitor's word is final (faulted); below the
  // monitor's thresholds, a swollen windowed token-gap p99 means degraded.
  std::size_t faulted = 0;
  bool any_unhealthy = false;
  for (std::size_t n = 0; n < in.network_count; ++n) {
    NetworkHealth& nh = snapshot_.networks[n];
    nh.monitor_faulty = (in.faulty_mask >> n) & 1;
    nh.token_gap_p99_us = windowed_p99(
        in.metrics, "rrp.token_gap_us.net" + std::to_string(n),
        nh.window_samples);
    HealthState next = HealthState::kHealthy;
    if (nh.monitor_faulty) {
      next = HealthState::kFaulted;
    } else if (nh.window_samples >= config_.min_window_samples &&
               nh.token_gap_p99_us > config_.token_gap_p99_limit_us) {
      next = HealthState::kDegraded;
    }
    transition(now, n, nh.state, next, nh.transitions);
    if (nh.state == HealthState::kFaulted) ++faulted;
    if (nh.state != HealthState::kHealthy) any_unhealthy = true;
  }

  // Rotation drift: windowed rotation p99 far beyond the lifetime median.
  // The baseline needs enough history before the comparison means anything.
  std::uint64_t rotation_samples = 0;
  snapshot_.rotation_p99_us =
      windowed_p99(in.metrics, "srp.token_rotation_us", rotation_samples);
  snapshot_.rotation_baseline_us = 0.0;
  snapshot_.rotation_drift = false;
  if (in.metrics) {
    if (const LatencyHistogram* h =
            in.metrics->find_histogram("srp.token_rotation_us");
        h && h->count() >= config_.min_baseline_samples) {
      HistogramSnapshot life;
      life.count = h->count();
      life.sum = h->sum();
      life.min = h->min();
      life.max = h->max();
      life.buckets = h->buckets();
      snapshot_.rotation_baseline_us = life.p50();
      snapshot_.rotation_drift =
          rotation_samples >= config_.min_window_samples &&
          snapshot_.rotation_p99_us >
              config_.rotation_drift_factor * snapshot_.rotation_baseline_us;
    }
  }

  // Ring-wide verdict. All networks faulted = the node cannot reach anyone:
  // faulted. Any softer trouble — a sick network, a reformation in flight,
  // rotation drift — is degraded: the ring still delivers, watch it.
  HealthState overall = HealthState::kHealthy;
  if (in.network_count > 0 && faulted == in.network_count) {
    overall = HealthState::kFaulted;
  } else if (any_unhealthy || snapshot_.rotation_drift ||
             in.srp_state != srp::SingleRing::State::kOperational) {
    overall = HealthState::kDegraded;
  }
  transition(now, kHealthOverall, snapshot_.overall, overall,
             snapshot_.overall_transitions);
}

}  // namespace totem::api

#include "api/stats.h"

#include <sstream>

namespace totem::api {

StatsSnapshot snapshot(const Node& node,
                       const std::vector<const net::Transport*>& transports) {
  StatsSnapshot snap;
  snap.node = node.id();
  snap.style = node.style();
  snap.state = node.ring().state();
  snap.ring = node.ring().ring();
  snap.member_count = node.ring().members().size();
  snap.my_aru = node.ring().my_aru();
  snap.safe_up_to = node.ring().safe_up_to();
  snap.send_queue_depth = node.ring().send_queue_depth();
  snap.srp = node.ring().stats();
  snap.rrp = node.replicator().stats();
  snap.buffer_pool = node.ring().buffer_pool().stats();
  for (const net::Transport* t : transports) {
    NetworkSnapshot ns;
    ns.network = t->network_id();
    ns.faulty = node.replicator().network_faulty(t->network_id());
    ns.transport = t->stats();
    snap.networks.push_back(ns);
  }
  return snap;
}

std::string to_string(const StatsSnapshot& snap) {
  std::ostringstream out;
  out << "node " << snap.node << " [" << to_string(snap.style) << "] state="
      << srp::to_string(snap.state) << " ring=" << totem::to_string(snap.ring)
      << " members=" << snap.member_count << "\n";
  out << "  seq: aru=" << snap.my_aru << " safe=" << snap.safe_up_to
      << " send_queue=" << snap.send_queue_depth << "\n";
  out << "  srp: sent=" << snap.srp.messages_sent
      << " broadcast=" << snap.srp.messages_broadcast
      << " delivered=" << snap.srp.messages_delivered
      << " dups=" << snap.srp.duplicates_dropped
      << " retrans=" << snap.srp.retransmissions_sent
      << " rtr_req=" << snap.srp.retransmit_requests
      << " tokens=" << snap.srp.tokens_processed
      << " token_loss=" << snap.srp.token_loss_events
      << " stale=" << snap.srp.stale_packets
      << " malformed=" << snap.srp.malformed_packets
      << " views=" << snap.srp.membership_changes << "\n";
  out << "  rrp: fanout=" << snap.rrp.packets_fanned_out
      << " tokens_up=" << snap.rrp.tokens_delivered_up
      << " dup_tokens=" << snap.rrp.duplicate_tokens_absorbed
      << " timer_expiries=" << snap.rrp.token_timer_expiries
      << " faults=" << snap.rrp.faults_reported << "\n";
  out << "  pool: alloc=" << snap.buffer_pool.allocations
      << " reuse=" << snap.buffer_pool.reuses
      << " outstanding=" << snap.buffer_pool.outstanding
      << " high_water=" << snap.buffer_pool.high_water << "\n";
  for (const auto& n : snap.networks) {
    out << "  net" << static_cast<int>(n.network) << (n.faulty ? " FAULTY" : "        ")
        << " tx=" << n.transport.packets_sent << "/" << n.transport.bytes_sent << "B"
        << " rx=" << n.transport.packets_received << "/" << n.transport.bytes_received
        << "B\n";
  }
  return out.str();
}

}  // namespace totem::api

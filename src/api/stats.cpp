#include "api/stats.h"

#include <set>
#include <sstream>

#include "common/json.h"

namespace totem::api {

StatsSnapshot snapshot(const Node& node,
                       const std::vector<const net::Transport*>& transports) {
  StatsSnapshot snap;
  snap.node = node.id();
  snap.style = node.style();
  snap.state = node.ring().state();
  snap.ring = node.ring().ring();
  snap.member_count = node.ring().members().size();
  snap.my_aru = node.ring().my_aru();
  snap.safe_up_to = node.ring().safe_up_to();
  snap.send_queue_depth = node.ring().send_queue_depth();
  snap.srp = node.ring().stats();
  snap.rrp = node.replicator().stats();
  snap.buffer_pool = node.ring().buffer_pool().stats();
  snap.metrics = node.metrics().snapshot();
  snap.health = node.health();  // re-derives the verdict at capture time
  for (const net::Transport* t : transports) {
    NetworkSnapshot ns;
    ns.network = t->network_id();
    ns.faulty = node.replicator().network_faulty(t->network_id());
    ns.transport = t->stats();
    snap.networks.push_back(ns);
  }
  return snap;
}

std::string to_string(const StatsSnapshot& snap) {
  std::ostringstream out;
  out << "node " << snap.node << " [" << to_string(snap.style) << "] state="
      << srp::to_string(snap.state) << " ring=" << totem::to_string(snap.ring)
      << " members=" << snap.member_count << "\n";
  out << "  seq: aru=" << snap.my_aru << " safe=" << snap.safe_up_to
      << " send_queue=" << snap.send_queue_depth << "\n";
  out << "  srp: sent=" << snap.srp.messages_sent
      << " broadcast=" << snap.srp.messages_broadcast
      << " delivered=" << snap.srp.messages_delivered
      << " dups=" << snap.srp.duplicates_dropped
      << " retrans=" << snap.srp.retransmissions_sent
      << " rtr_req=" << snap.srp.retransmit_requests
      << " tokens=" << snap.srp.tokens_processed
      << " token_loss=" << snap.srp.token_loss_events
      << " stale=" << snap.srp.stale_packets
      << " malformed=" << snap.srp.malformed_packets
      << " views=" << snap.srp.membership_changes << "\n";
  out << "  rrp: fanout=" << snap.rrp.packets_fanned_out
      << " tokens_up=" << snap.rrp.tokens_delivered_up
      << " dup_tokens=" << snap.rrp.duplicate_tokens_absorbed
      << " timer_expiries=" << snap.rrp.token_timer_expiries
      << " faults=" << snap.rrp.faults_reported << "\n";
  out << "  health: " << api::to_string(snap.health.overall)
      << " transitions=" << snap.health.overall_transitions;
  if (snap.health.rotation_drift) out << " ROTATION-DRIFT";
  for (const auto& nh : snap.health.networks) {
    out << " net" << static_cast<int>(nh.network) << "="
        << api::to_string(nh.state);
  }
  out << "\n";
  out << "  pool: alloc=" << snap.buffer_pool.allocations
      << " reuse=" << snap.buffer_pool.reuses
      << " outstanding=" << snap.buffer_pool.outstanding
      << " high_water=" << snap.buffer_pool.high_water << "\n";
  for (const auto& n : snap.networks) {
    out << "  net" << static_cast<int>(n.network) << (n.faulty ? " FAULTY" : "        ")
        << " tx=" << n.transport.packets_sent << "/" << n.transport.bytes_sent << "B"
        << " rx=" << n.transport.packets_received << "/" << n.transport.bytes_received
        << "B";
    if (n.transport.rx_dropped || n.transport.rx_truncated || n.transport.rx_short) {
      out << " drop=" << n.transport.rx_dropped << " trunc=" << n.transport.rx_truncated
          << " short=" << n.transport.rx_short;
    }
    out << "\n";
  }
  out << snap.metrics.to_string();
  return out.str();
}

namespace {

void write_srp(JsonWriter& w, const srp::SingleRing::Stats& s) {
  w.begin_object();
  w.kv("messages_sent", s.messages_sent);
  w.kv("bytes_sent", s.bytes_sent);
  w.kv("messages_broadcast", s.messages_broadcast);
  w.kv("messages_delivered", s.messages_delivered);
  w.kv("bytes_delivered", s.bytes_delivered);
  w.kv("duplicates_dropped", s.duplicates_dropped);
  w.kv("retransmissions_sent", s.retransmissions_sent);
  w.kv("retransmit_requests", s.retransmit_requests);
  w.kv("tokens_processed", s.tokens_processed);
  w.kv("duplicate_tokens", s.duplicate_tokens);
  w.kv("token_retention_resends", s.token_retention_resends);
  w.kv("token_loss_events", s.token_loss_events);
  w.kv("stale_packets", s.stale_packets);
  w.kv("malformed_packets", s.malformed_packets);
  w.kv("send_queue_rejects", s.send_queue_rejects);
  w.kv("membership_changes", s.membership_changes);
  w.kv("old_ring_messages_recovered", s.old_ring_messages_recovered);
  w.kv("old_ring_messages_lost", s.old_ring_messages_lost);
  w.kv("send_time_desync", s.send_time_desync);
  w.end_object();
}

void write_rrp(JsonWriter& w, const rrp::Replicator::Stats& s) {
  w.begin_object();
  w.kv("messages_sent", s.messages_sent);
  w.kv("tokens_sent", s.tokens_sent);
  w.kv("packets_fanned_out", s.packets_fanned_out);
  w.kv("messages_delivered_up", s.messages_delivered_up);
  w.kv("tokens_delivered_up", s.tokens_delivered_up);
  w.kv("duplicate_tokens_absorbed", s.duplicate_tokens_absorbed);
  w.kv("token_timer_expiries", s.token_timer_expiries);
  w.kv("faults_reported", s.faults_reported);
  w.end_object();
}

}  // namespace

std::string StatsSnapshot::to_json() const {
  JsonWriter w;
  w.begin_object();
  w.kv("node", static_cast<std::uint64_t>(node));
  w.kv("style", api::to_string(style));
  w.kv("state", srp::to_string(state));
  w.key("ring");
  w.begin_object();
  w.kv("representative", static_cast<std::uint64_t>(ring.representative));
  w.kv("ring_seq", ring.ring_seq);
  w.end_object();
  w.kv("member_count", static_cast<std::uint64_t>(member_count));
  w.kv("my_aru", my_aru);
  w.kv("safe_up_to", safe_up_to);
  w.kv("send_queue_depth", static_cast<std::uint64_t>(send_queue_depth));
  w.key("srp");
  write_srp(w, srp);
  w.key("rrp");
  write_rrp(w, rrp);
  w.key("buffer_pool");
  w.begin_object();
  w.kv("allocations", buffer_pool.allocations);
  w.kv("reuses", buffer_pool.reuses);
  w.kv("returns", buffer_pool.returns);
  w.kv("outstanding", buffer_pool.outstanding);
  w.kv("high_water", buffer_pool.high_water);
  w.end_object();
  w.key("networks");
  w.begin_array();
  for (const auto& n : networks) {
    w.begin_object();
    w.kv("network", static_cast<std::uint64_t>(n.network));
    w.kv("faulty", n.faulty);
    w.kv("packets_sent", n.transport.packets_sent);
    w.kv("packets_received", n.transport.packets_received);
    w.kv("bytes_sent", n.transport.bytes_sent);
    w.kv("bytes_received", n.transport.bytes_received);
    w.kv("rx_dropped", n.transport.rx_dropped);
    w.kv("rx_truncated", n.transport.rx_truncated);
    w.kv("rx_short", n.transport.rx_short);
    w.end_object();
  }
  w.end_array();
  w.key("health");
  w.raw(api::to_json(health));
  w.key("metrics");
  w.raw(metrics.to_json());
  w.end_object();
  return w.take();
}

std::string StatsSnapshot::to_prometheus(std::string_view extra_labels) const {
  std::string label = "node=\"" + std::to_string(node) + "\"";
  label += extra_labels;  // e.g. ",shard=\"2\"" from the sharded roll-up
  std::string out;
  std::set<std::string> typed;  // one # TYPE line per metric family
  auto scalar = [&](const char* name, const char* type, std::uint64_t v,
                    const std::string& extra = {}) {
    if (typed.insert(name).second) {
      out += "# TYPE totem_";
      out += name;
      out += ' ';
      out += type;
      out += '\n';
    }
    out += "totem_";
    out += name;
    out += '{';
    out += label;
    out += extra;
    out += "} ";
    out += std::to_string(v);
    out += '\n';
  };
  scalar("member_count", "gauge", member_count);
  scalar("my_aru", "gauge", my_aru);
  scalar("safe_up_to", "gauge", safe_up_to);
  scalar("send_queue_depth", "gauge", send_queue_depth);
  scalar("srp_messages_delivered", "counter", srp.messages_delivered);
  scalar("srp_messages_broadcast", "counter", srp.messages_broadcast);
  scalar("srp_retransmissions_sent", "counter", srp.retransmissions_sent);
  scalar("srp_tokens_processed", "counter", srp.tokens_processed);
  scalar("srp_membership_changes", "counter", srp.membership_changes);
  scalar("rrp_packets_fanned_out", "counter", rrp.packets_fanned_out);
  scalar("rrp_duplicate_tokens_absorbed", "counter", rrp.duplicate_tokens_absorbed);
  scalar("rrp_faults_reported", "counter", rrp.faults_reported);
  // Health verdicts export as enum-valued gauges (0 healthy / 1 degraded /
  // 2 faulted — the HealthState contract) so alerting is a threshold rule.
  scalar("health_state", "gauge", static_cast<std::uint64_t>(health.overall));
  scalar("health_transitions", "counter", health.overall_transitions);
  scalar("health_rotation_drift", "gauge", health.rotation_drift ? 1 : 0);
  for (const auto& nh : health.networks) {
    const std::string net = ",network=\"" + std::to_string(nh.network) + "\"";
    scalar("net_health_state", "gauge", static_cast<std::uint64_t>(nh.state), net);
    scalar("net_health_transitions", "counter", nh.transitions, net);
  }
  for (const auto& n : networks) {
    const std::string net = ",network=\"" + std::to_string(n.network) + "\"";
    scalar("net_faulty", "gauge", n.faulty ? 1 : 0, net);
    scalar("net_packets_sent", "counter", n.transport.packets_sent, net);
    scalar("net_packets_received", "counter", n.transport.packets_received, net);
    scalar("net_rx_dropped", "counter", n.transport.rx_dropped, net);
    scalar("net_rx_truncated", "counter", n.transport.rx_truncated, net);
    scalar("net_rx_short", "counter", n.transport.rx_short, net);
  }
  out += metrics.to_prometheus(label);
  return out;
}

}  // namespace totem::api

// totem::api::Node — the public facade of the library.
//
// One Node per process. Construction wires together the chosen replication
// style (paper §4), the Totem SRP, and one Transport per redundant network.
// The application interacts with exactly four things:
//   * send()                — totally-ordered reliable broadcast
//   * the deliver handler   — messages arrive in the same order everywhere
//   * the membership handler— ring membership views (node joins/crashes)
//   * the fault handler     — network fault alarms (paper §3): the system
//                             keeps running; an administrator reacts.
//
// Quickstart (see examples/quickstart.cpp for the runnable version):
//
//   totem::net::Reactor reactor;
//   auto t0 = UdpTransport::create(reactor, {...network 0...});
//   auto t1 = UdpTransport::create(reactor, {...network 1...});
//   totem::api::NodeConfig cfg;
//   cfg.srp.node_id = my_id;
//   cfg.srp.initial_members = {0, 1, 2};
//   cfg.style = totem::api::ReplicationStyle::kActive;
//   totem::api::Node node(reactor, {t0->get(), t1->get()}, cfg);
//   node.set_deliver_handler([](const srp::DeliveredMessage& m) { ... });
//   node.start();
//   reactor.run();
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "api/health.h"
#include "common/metrics.h"
#include "common/status.h"
#include "common/timer_service.h"
#include "net/transport.h"
#include "rrp/config.h"
#include "rrp/replicator.h"
#include "rrp/timeout_advisor.h"
#include "srp/config.h"
#include "srp/single_ring.h"

namespace totem::api {

/// Which RRP replication engine the node runs (paper §4).
enum class ReplicationStyle {
  kNone,           ///< single network (the paper's baseline)
  kActive,         ///< §5: every packet on every network
  kPassive,        ///< §6: packets round-robin over the networks
  kActivePassive,  ///< §7: K of N networks per packet
};

/// Human-readable style name ("none", "active", ...).
[[nodiscard]] constexpr const char* to_string(ReplicationStyle s) {
  switch (s) {
    case ReplicationStyle::kNone: return "none";
    case ReplicationStyle::kActive: return "active";
    case ReplicationStyle::kPassive: return "passive";
    case ReplicationStyle::kActivePassive: return "active-passive";
  }
  return "?";
}

/// Everything a Node needs beyond its transports. Validated by
/// api::validate() at construction.
struct NodeConfig {
  /// SRP parameters: node id, initial members, timeouts, flow control.
  srp::Config srp;
  /// Replication engine; must match the transport count (kNone needs
  /// exactly one network, the others at least two).
  ReplicationStyle style = ReplicationStyle::kActive;
  /// Engine-specific tuning; only the struct matching `style` is read.
  rrp::ActiveConfig active;
  rrp::PassiveConfig passive;          ///< used when style == kPassive
  rrp::ActivePassiveConfig active_passive;  ///< used when style == kActivePassive

  /// Adaptive token-timeout tuning (DESIGN.md §14). When enabled, the node
  /// periodically re-derives the replicator's token timeout from the
  /// observed rotation-time histogram via rrp::TimeoutAdvisor; until enough
  /// rotations are seen, the style's static configured timeout applies.
  /// Ignored for kNone (no replicator timer to tune). Requires SRP metrics
  /// (on by default) for the rotation histogram.
  struct AdaptiveTimeout {
    bool enabled = false;
    Duration update_interval{250'000};  ///< how often the advice is applied
    rrp::TimeoutAdvisor::Config advisor;
  };
  AdaptiveTimeout adaptive_timeout;

  /// Ring health model (DESIGN.md §16). Always available through
  /// Node::health() — by default it is re-derived lazily on each call
  /// (and therefore on every api::snapshot), which costs nothing between
  /// calls and keeps deterministic schedules untouched. Set
  /// update_interval > 0 to also re-derive on a periodic timer so health
  /// transitions are traced promptly even when nobody polls.
  struct Health {
    HealthModel::Config model;  ///< thresholds; trace defaults to srp.trace
    Duration update_interval{0};  ///< 0 = lazy only (update on health())
  };
  Health health;

  /// Live telemetry endpoint (api/telemetry.h), opt-in. The Node itself
  /// opens no sockets — api::NodeTelemetry::create consumes this block; it
  /// is carried here so one struct holds a deployment's knobs. Ignored by
  /// simulated clusters (no real sockets to serve from).
  struct Telemetry {
    bool enabled = false;
    std::string bind_address = "127.0.0.1";  ///< loopback-only by default
    std::uint16_t port = 0;                  ///< 0 = ephemeral
  };
  Telemetry telemetry;
};

class Node {
 public:
  /// `transports` — one per redundant network, all for the same node id.
  /// `cpu` — optional simulated-CPU charger (tests/benches only).
  Node(TimerService& timers, std::vector<net::Transport*> transports, NodeConfig config,
       net::CpuCharger* cpu = nullptr);

  Node(const Node&) = delete;
  Node& operator=(const Node&) = delete;
  ~Node();  // cancels the adaptive-timeout timer (callback captures this)

  /// Totally-ordered delivery upcall: invoked with each message in the
  /// agreed order, identically at every node. Runs on the protocol thread
  /// (the reactor thread, or the OrderingLoop thread under
  /// ThreadedRuntime).
  void set_deliver_handler(srp::SingleRing::DeliverHandler h) {
    ring_->set_deliver_handler(std::move(h));
  }
  /// Ring membership views (node joins / crashes). Network faults do NOT
  /// produce views — that transparency is the paper's point.
  void set_membership_handler(srp::SingleRing::MembershipHandler h) {
    ring_->set_membership_handler(std::move(h));
  }
  /// Network fault alarms (paper §3): a redundant network failed or
  /// recovered; the ring keeps running on the survivors.
  void set_fault_handler(rrp::Replicator::FaultHandler h) {
    replicator_->set_fault_handler(std::move(h));
  }

  /// Begin protocol operation (call after the handlers are set).
  void start() { ring_->start(); }

  /// Queue `payload` for totally-ordered broadcast to the group.
  Status send(BytesView payload) { return ring_->send(payload); }

  /// This node's id (== config.srp.node_id).
  [[nodiscard]] NodeId id() const { return ring_->node_id(); }
  /// The SRP layer (escape hatch: watermark handlers, detailed stats).
  [[nodiscard]] srp::SingleRing& ring() { return *ring_; }
  [[nodiscard]] const srp::SingleRing& ring() const { return *ring_; }
  /// The RRP layer (escape hatch: per-network health, fault state).
  [[nodiscard]] rrp::Replicator& replicator() { return *replicator_; }
  [[nodiscard]] const rrp::Replicator& replicator() const { return *replicator_; }
  /// The replication style this node was constructed with.
  [[nodiscard]] ReplicationStyle style() const { return style_; }

  /// The node-wide metrics registry (latency histograms + event counters
  /// from every layer). The Node owns it and injects it into the SRP and
  /// RRP configs at construction; config-supplied registry pointers are
  /// honored instead if the caller already set them.
  [[nodiscard]] MetricsRegistry& metrics() { return metrics_; }
  [[nodiscard]] const MetricsRegistry& metrics() const { return metrics_; }

  /// Re-derive and return the ring health verdict (api/health.h). Call
  /// from the protocol thread (same rule as api::snapshot, which calls
  /// this for you). Also driven periodically when
  /// NodeConfig::Health::update_interval > 0.
  [[nodiscard]] const HealthSnapshot& health() const;

  /// The adaptive-timeout advisor, or nullptr when adaptive tuning is off.
  [[nodiscard]] const rrp::TimeoutAdvisor* timeout_advisor() const {
    return advisor_.get();
  }
  /// The timeout the advisor would apply right now (the static configured
  /// value until enough rotations are observed). Only meaningful when
  /// adaptive tuning is enabled.
  [[nodiscard]] Duration advised_token_timeout() const {
    return advisor_ ? advisor_->advise(static_timeout_) : static_timeout_;
  }

 private:
  void apply_advice_and_rearm();
  void update_health_and_rearm();

  ReplicationStyle style_;
  MetricsRegistry metrics_;  // declared before the layers that record into it
  std::unique_ptr<rrp::Replicator> replicator_;
  std::unique_ptr<srp::SingleRing> ring_;

  TimerService* timers_ = nullptr;

  // Adaptive timeout (inactive unless config.adaptive_timeout.enabled).
  NodeConfig::AdaptiveTimeout adaptive_;
  Duration static_timeout_{};  // the style's configured fallback timeout
  std::unique_ptr<rrp::TimeoutAdvisor> advisor_;
  TimerHandle advisor_timer_;

  // Health model: mutable so const introspection (health(), api::snapshot)
  // can refresh the derived verdict without widening the public API.
  mutable HealthModel health_model_;
  const MetricsRegistry* health_metrics_ = nullptr;  // what the SRP records into
  Duration health_interval_{0};
  TimerHandle health_timer_;
};

}  // namespace totem::api

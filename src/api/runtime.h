// Threaded runtime: split socket I/O from protocol work (DESIGN.md §12).
//
// Single-threaded mode (the default everywhere else in this repo) runs the
// whole stack — reactor poll loop, UDP drains, SRP ordering, delivery
// upcalls — on one thread. That is simple and fast until datagram bursts
// and protocol work contend for the same core. This header provides the
// two-thread alternative:
//
//   I/O (reactor) thread        ordering (protocol) thread
//   ---------------------       --------------------------
//   poll / recvmmsg drains  --> SpscRing<ReceivedPacket> --> SRP + RRP,
//   sendmmsg TX flushes     <-- SpscRing<TxEntry>        <-- timers,
//   (net::Reactor::run)          delivery upcalls (OrderingLoop::run)
//
// The handoff rings live inside each UdpTransport (Config::rx_queue_capacity
// / tx_queue_capacity); this layer owns the threads and the wakeups:
// Reactor::notify() kicks the I/O thread when TX is queued, and
// OrderingLoop::wake() (installed as the transport's rx_wakeup) kicks the
// protocol thread when RX lands. Both directions are TSan-clean: the rings
// publish with acquire/release, and each wakeup uses a proper
// mutex/condvar (ordering side) or self-pipe (I/O side) — no timed polling.
#pragma once

#include <condition_variable>
#include <deque>
#include <functional>
#include <mutex>
#include <optional>
#include <thread>
#include <vector>

#include "common/timer_heap.h"
#include "common/timer_service.h"
#include "net/udp_transport.h"

namespace totem::api {

/// The protocol thread's event loop: a TimerService (so SingleRing and the
/// replicators run on it unchanged) plus the consumer side of every
/// transport's RX handoff ring.
///
/// Threading contract: run() is entered by exactly one thread — the
/// "ordering thread" — and everything the protocol stack does (timer
/// callbacks, rx handlers, delivery upcalls, send() calls made from those
/// upcalls) happens on that thread. Three entry points are safe from other
/// threads: wake(), post(), and stop(). schedule() is loop-thread-only,
/// like Reactor's.
class OrderingLoop final : public TimerService {
 public:
  OrderingLoop() = default;
  ~OrderingLoop() override = default;
  OrderingLoop(const OrderingLoop&) = delete;
  OrderingLoop& operator=(const OrderingLoop&) = delete;

  /// Monotonic wall-clock time (same clock as net::Reactor).
  [[nodiscard]] TimePoint now() const override;
  /// Run `cb` once after `delay`. Ordering thread only.
  TimerHandle schedule(Duration delay, Callback cb) override;

  /// Register a transport whose RX ring this loop drains. Call before the
  /// loop starts (ThreadedRuntime does this).
  void add_transport(net::UdpTransport* transport);

  /// Thread-safe: run `fn` on the ordering thread at the next loop round.
  /// Used to marshal calls like Node::start() and application send()s onto
  /// the protocol thread.
  void post(std::function<void()> fn);

  /// Thread-safe: wake a sleeping loop round. Installed as each transport's
  /// rx_wakeup; coalesces like Reactor::notify().
  void wake();

  /// Run until stop(): drain RX rings, run posted functions, fire timers,
  /// then sleep on the condvar until the next deadline or a wake().
  void run();

  /// Thread-safe: make run() return at the next round.
  void stop();

 private:
  /// One loop round. Returns the amount of work done (packets + posts).
  std::size_t run_once();

  TimerHeap timers_;
  std::vector<net::UdpTransport*> transports_;

  std::mutex mu_;
  std::condition_variable cv_;
  bool stopped_ = false;       // guarded by mu_
  bool wake_pending_ = false;  // guarded by mu_; set by wake(), cleared by the loop
  std::deque<std::function<void()>> posted_;  // guarded by mu_
};

/// Owns the two threads of the split runtime and wires the wakeups between
/// them. Lifecycle:
///
///   net::Reactor reactor;
///   api::OrderingLoop loop;
///   auto t = UdpTransport::create(reactor, cfg);      // cfg.rx/tx_queue_capacity > 0
///   api::Node node(loop, {t->get()}, node_cfg);       // timers = the ordering loop
///   api::ThreadedRuntime rt(reactor, loop, {t->get()});
///   rt.start();                                       // spawns I/O + ordering threads
///   rt.post([&] { node.start(); });                   // protocol work runs over there
///   ...
///   rt.stop();                                        // joins both threads
///
/// After stop() returns both threads have joined, so reading transport
/// stats / node metrics from the caller is race-free.
/// Optional thread placement for ThreadedRuntime. On a multi-core host,
/// pinning the I/O thread away from the ordering thread keeps reactor
/// wakeups (or the io_uring completion path) from preempting protocol work
/// — the paper's measurements dedicate the NIC interrupt path similarly.
/// -1 leaves a thread unpinned; pin failures are logged and otherwise
/// ignored (a best-effort hint, never a correctness requirement).
struct RuntimeOptions {
  int io_cpu = -1;
  int ordering_cpu = -1;
};

class ThreadedRuntime {
 public:
  using Options = RuntimeOptions;

  /// Wires each transport's rx_wakeup to `loop` and registers it for RX
  /// dispatch. Transports should be created with rx_queue_capacity and
  /// tx_queue_capacity set; a transport without an RX ring would run its rx
  /// handler on the I/O thread, racing the protocol stack (warned at
  /// construction).
  ThreadedRuntime(net::Reactor& reactor, OrderingLoop& loop,
                  std::vector<net::UdpTransport*> transports,
                  Options options = {});
  ~ThreadedRuntime();
  ThreadedRuntime(const ThreadedRuntime&) = delete;
  ThreadedRuntime& operator=(const ThreadedRuntime&) = delete;

  /// Spawn the I/O thread (reactor.run()) and the ordering thread
  /// (loop.run()). Idempotent until stop().
  void start();

  /// Stop both loops and join both threads. Idempotent; also called by the
  /// destructor.
  void stop();

  /// Thread-safe: run `fn` on the ordering thread (see OrderingLoop::post).
  void post(std::function<void()> fn) { loop_.post(std::move(fn)); }

  [[nodiscard]] bool running() const { return running_; }

 private:
  net::Reactor& reactor_;
  OrderingLoop& loop_;
  Options options_;
  std::thread io_thread_;
  std::thread ordering_thread_;
  bool running_ = false;
};

}  // namespace totem::api

// Configuration validation: catch misconfigurations at construction time
// with actionable messages instead of undefined protocol behaviour later.
#pragma once

#include <cstddef>

#include "api/node.h"
#include "common/status.h"

namespace totem::api {

/// Validate `config` for a node wired to `transport_count` networks.
/// Returns the first problem found, or OK.
[[nodiscard]] Status validate(const NodeConfig& config, std::size_t transport_count);

}  // namespace totem::api

// totem::ShardedKv — a consistent-hash router over R independent Totem
// rings, each running its own smr::ReplicatedKv group (DESIGN.md §17,
// docs/SHARDING.md).
//
// One token ring's throughput is capped by rotation; the sharded KV scales
// by PARTITIONING: every key lives on exactly one ring (shard::Partitioner),
// rings never talk to each other, and aggregate ops/s grows with shard
// count. The contract the router preserves — and deliberately does NOT
// promise — is:
//
//   * PER-SHARD ORDER — all writes this router accepts for one shard are
//     applied in acceptance order (they funnel through one submit replica,
//     whose sends the ring delivers FIFO; the overflow queue drains FIFO
//     too). Two writes to different shards have NO relative order: total
//     order is a per-ring property, and cross-shard order is exactly what
//     sharding trades away for throughput.
//   * PER-SHARD BACKPRESSURE — each shard has an independent in-flight +
//     queued budget (Config::max_pending_per_shard). A slow or re-forming
//     shard rejects new writes with RESOURCE_EXHAUSTED without slowing the
//     others.
//   * AVAILABILITY, NEVER LIES — a shard whose submit replica cannot see a
//     majority of its replicas established is UNAVAILABLE: writes are
//     rejected and reads return kUnavailable instead of possibly-divergent
//     minority state. A killed shard's keys are unavailable, never wrong —
//     the property chaos invariant V9 pins.
//
// Reads are local (any live replica's map is the agreed state — see
// ReplicatedKv); multi_get/multi_put fan out across shards and report
// per-key/per-op results.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <string>
#include <vector>

#include "api/stats.h"
#include "shard/partitioner.h"
#include "smr/replicated_kv.h"
#include "smr/replicated_log.h"

namespace totem::shard {

/// One shard's backend: the replica stacks of one ring. `logs` and `kvs`
/// are index-aligned (replica r's log drives replica r's machine); none are
/// owned and all must outlive the router.
struct ShardBackend {
  std::vector<smr::ReplicatedLog*> logs;
  std::vector<const smr::ReplicatedKv*> kvs;
};

/// Synchronous read outcome (get / multi_get).
enum class ReadStatus : std::uint8_t {
  kOk = 0,           ///< key present; value/version filled in
  kNotFound = 1,     ///< shard available, key absent
  kUnavailable = 2,  ///< shard below majority — no answer, never a wrong one
};

[[nodiscard]] constexpr const char* to_string(ReadStatus s) {
  switch (s) {
    case ReadStatus::kOk: return "ok";
    case ReadStatus::kNotFound: return "not-found";
    case ReadStatus::kUnavailable: return "unavailable";
  }
  return "?";
}

/// Result of one key's read.
struct ReadResult {
  ReadStatus status = ReadStatus::kUnavailable;
  std::size_t shard = 0;        ///< where the key routes
  Bytes value;                  ///< kOk only
  std::uint64_t version = 0;    ///< kOk only (>= 1)
};

/// Completion of one accepted write (put/del/cas), delivered on the
/// submitting replica's protocol thread once the ring applied it.
struct OpCompletion {
  std::uint64_t op = 0;      ///< router op id (returned by put/del/cas)
  std::size_t shard = 0;     ///< shard that executed it
  smr::KvResult result;      ///< decoded apply() outcome
  bool decoded = false;      ///< false: result bytes were malformed
};

/// Per-shard router counters (see ShardedKv::shard_stats).
struct ShardRouterStats {
  std::uint64_t submitted = 0;    ///< accepted writes (incl. queued)
  std::uint64_t completed = 0;    ///< completions delivered
  std::uint64_t queued = 0;       ///< writes that waited in the overflow queue
  std::uint64_t rejected_backpressure = 0;  ///< budget full
  std::uint64_t rejected_unavailable = 0;   ///< shard below majority
  std::uint64_t reads = 0;                  ///< get() calls routed here
  std::uint64_t reads_unavailable = 0;      ///< reads answered kUnavailable
  std::size_t in_flight = 0;      ///< submitted-or-queued, not yet completed
};

/// One shard's row in the cluster roll-up.
struct ShardSnapshot {
  std::size_t shard = 0;
  bool available = false;            ///< majority established at submit replica
  std::size_t live_replicas = 0;     ///< logs reporting kLive
  std::size_t replica_count = 0;
  std::uint64_t keys = 0;            ///< submit replica's key count
  api::HealthState health = api::HealthState::kHealthy;  ///< worst node verdict
  ShardRouterStats router;
  /// Per-replica node snapshots (empty unless the caller supplied them —
  /// they require api::snapshot on each node's protocol thread).
  std::vector<api::StatsSnapshot> nodes;
};

/// The one cluster view an operator scrapes: every shard's availability,
/// health and router counters folded together (docs/SHARDING.md).
struct ClusterSnapshot {
  api::HealthState overall = api::HealthState::kHealthy;  ///< worst shard
  std::size_t shards_available = 0;
  std::size_t shard_count = 0;
  std::uint64_t ops_completed = 0;   ///< sum over shards
  std::uint64_t ops_rejected = 0;    ///< backpressure + unavailable
  std::uint64_t keys = 0;            ///< sum of per-shard key counts
  std::vector<ShardSnapshot> shards;

  /// One JSON object: totals plus a per-shard array (node snapshots
  /// included when present).
  [[nodiscard]] std::string to_json() const;
  /// Prometheus exposition: shard-level totem_shard_* samples, plus every
  /// included node snapshot re-labelled with its shard id.
  [[nodiscard]] std::string to_prometheus() const;
};

/// Multi-line human-readable rendering of a roll-up.
[[nodiscard]] std::string to_string(const ClusterSnapshot& snap);

class ShardedKv {
 public:
  using CompletionHandler = std::function<void(const OpCompletion&)>;

  struct Config {
    Partitioner::Config partitioner;  ///< shard_count must equal backends.size()
    /// Per-shard write budget: in-flight + overflow-queued ops. Beyond it,
    /// writes fail with RESOURCE_EXHAUSTED until completions drain.
    std::size_t max_pending_per_shard = 256;
    /// Replica index each shard submits through; -1 = spread shards over
    /// replicas (shard s uses replica s % replica_count) so router load
    /// lands on different nodes per shard.
    int submit_replica = -1;
  };

  /// `backends[s]` is shard s's ring. The router installs itself as each
  /// submit replica's ReplicatedLog completion handler — do not overwrite
  /// it afterwards.
  ShardedKv(Config config, std::vector<ShardBackend> backends);

  ShardedKv(const ShardedKv&) = delete;
  ShardedKv& operator=(const ShardedKv&) = delete;

  /// Completion callback for accepted writes. Runs on the executing
  /// shard's protocol thread; with multiple threaded shards, synchronize
  /// externally or keep shards on one thread (the harness does the latter).
  void set_completion_handler(CompletionHandler h) { on_complete_ = std::move(h); }

  // ---- writes (asynchronous; completion fires when the ring applies) ----
  /// Route an unconditional write. Returns the router op id.
  Result<std::uint64_t> put(std::string_view key, BytesView value);
  /// Route a delete.
  Result<std::uint64_t> del(std::string_view key);
  /// Route a compare-and-swap (see ReplicatedKv::encode_cas semantics).
  Result<std::uint64_t> cas(std::string_view key, std::uint64_t expected_version,
                            BytesView value);
  /// Fan a batch of puts out across shards, all-or-nothing at submission:
  /// either every pair is accepted (per-shard order = input order, op ids
  /// returned in input order) or no state changes and the first obstacle's
  /// status is returned.
  Result<std::vector<std::uint64_t>> multi_put(
      const std::vector<std::pair<std::string, Bytes>>& pairs);

  // ---- reads (synchronous, local) ----
  /// Read one key from its shard's submit replica. Never blocks; an
  /// unavailable shard yields kUnavailable, not stale minority state.
  [[nodiscard]] ReadResult get(std::string_view key) const;
  /// Read many keys; per-key results in input order. No cross-shard
  /// atomicity: each key reflects its own shard's current agreed state.
  [[nodiscard]] std::vector<ReadResult> multi_get(
      const std::vector<std::string>& keys) const;

  // ---- introspection ----
  [[nodiscard]] std::size_t shard_for(std::string_view key) const {
    return partitioner_.shard_for(key);
  }
  [[nodiscard]] std::size_t shard_count() const { return shards_.size(); }
  [[nodiscard]] const Partitioner& partitioner() const { return partitioner_; }
  /// True when the shard's submit replica is live and sees a majority of
  /// the shard's replicas established (the write/read admission gate).
  [[nodiscard]] bool shard_available(std::size_t shard) const;
  /// The replica index shard `shard` submits through.
  [[nodiscard]] std::size_t submit_replica(std::size_t shard) const;
  [[nodiscard]] const ShardRouterStats& shard_stats(std::size_t shard) const {
    return shards_[shard].stats;
  }

  /// Fold availability, health and router counters into one cluster view.
  /// `per_shard_nodes[s]` (optional) carries api::snapshot() of each of
  /// shard s's replica nodes; when present it also drives the health
  /// roll-up and rides inside the returned snapshot.
  [[nodiscard]] ClusterSnapshot roll_up(
      std::vector<std::vector<api::StatsSnapshot>> per_shard_nodes = {}) const;

 private:
  struct PendingOp {
    std::uint64_t op = 0;
    Bytes command;  // queued only; emptied once handed to the log
  };

  struct ShardState {
    std::vector<smr::ReplicatedLog*> logs;
    std::vector<const smr::ReplicatedKv*> kvs;
    std::size_t submit_index = 0;
    /// Router op ids keyed by the log's request id (in-flight ops).
    std::map<std::uint64_t, std::uint64_t> inflight;
    /// FIFO overflow: accepted writes waiting for ring send-queue space.
    std::deque<PendingOp> queue;
    /// mutable: reads are const for callers but still counted.
    mutable ShardRouterStats stats;
  };

  Result<std::uint64_t> submit(std::string_view key, Bytes command);
  void flush_queue(std::size_t shard);
  void on_log_completion(std::size_t shard, std::uint64_t request_id,
                         BytesView result, bool applied_locally);

  Config config_;
  Partitioner partitioner_;
  std::vector<ShardState> shards_;
  std::uint64_t next_op_ = 1;
  CompletionHandler on_complete_;
};

}  // namespace totem::shard

namespace totem {
/// The name the ROADMAP promises: totem::ShardedKv.
using shard::ShardedKv;
}  // namespace totem

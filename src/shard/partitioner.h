// Consistent-hash partitioner: the deterministic key -> shard mapping that
// lets many independent Totem rings carry one keyspace (DESIGN.md §17,
// docs/SHARDING.md).
//
// Classic Karger-style consistent hashing with virtual nodes: every shard
// owns `virtual_nodes` pseudo-random points on a 64-bit hash ring; a key is
// routed to the shard owning the first point at or clockwise-after
// hash(key). The properties the sharded KV layer builds on:
//
//   * DETERMINISM — the hash is a fixed FNV-1a + SplitMix64 finalizer
//     (ring_hash below), the point set is a pure
//     function of (shard id, virtual-node index), and ties are broken by
//     (point, shard id). Two processes, today or after a restart, always
//     agree where a key lives. No state is exchanged to route.
//   * UNIFORMITY — with V virtual nodes per shard the expected imbalance
//     shrinks like 1/sqrt(R*V); the defaults keep every shard within a few
//     percent of the mean over large keyspaces (bounded by a unit test).
//   * MINIMAL REMAPPING — adding a shard only moves keys onto the new
//     shard (expected fraction 1/(R+1)); removing one only moves the keys
//     it owned. Keys never shuffle between surviving shards, which is what
//     makes rebalancing R -> R+1 an incremental migration instead of a
//     full reshuffle.
#pragma once

#include <cstdint>
#include <string_view>
#include <vector>

namespace totem::shard {

/// FNV-1a 64-bit over the bytes of `s`. Fixed constants, no seeding: the
/// routing hash must agree across builds, platforms and process restarts.
[[nodiscard]] constexpr std::uint64_t fnv1a64(std::string_view s) {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (const char c : s) {
    h ^= static_cast<std::uint8_t>(c);
    h *= 0x100000001b3ULL;
  }
  return h;
}

/// SplitMix64 finalizer. FNV-1a alone has weak avalanche on short, similar
/// strings ("key-1", "key-2", ... land on correlated ring positions, which
/// skews arc ownership badly); this fixed bijective mix restores uniform
/// spread while keeping the composition a pure, portable function.
[[nodiscard]] constexpr std::uint64_t mix64(std::uint64_t z) {
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

/// The routing hash: where on the 64-bit ring a key (or a shard's virtual
/// node label) sits.
[[nodiscard]] constexpr std::uint64_t ring_hash(std::string_view s) {
  return mix64(fnv1a64(s));
}

/// Immutable-by-convention consistent-hash ring over shard ids 0..R-1.
/// add_shard()/remove_shard() exist for rebalance analysis and tests; a
/// live ShardedKv holds a fixed ring for its lifetime.
class Partitioner {
 public:
  struct Config {
    /// Number of shards (hash-ring owners). Ids are 0..shard_count-1.
    std::size_t shard_count = 1;
    /// Ring points per shard. More points = tighter balance at O(R*V log)
    /// build cost; 128 keeps max/mean load within ~10% for small R.
    std::size_t virtual_nodes = 128;
  };

  explicit Partitioner(Config config);

  /// The shard owning `key`. O(log(R*V)) binary search; never fails while
  /// at least one shard is present.
  [[nodiscard]] std::size_t shard_for(std::string_view key) const;

  /// Number of shards currently on the ring.
  [[nodiscard]] std::size_t shard_count() const { return shard_ids_.size(); }
  /// Sorted ids of the shards currently on the ring.
  [[nodiscard]] const std::vector<std::size_t>& shards() const { return shard_ids_; }
  /// Total ring points (shard_count * virtual_nodes).
  [[nodiscard]] std::size_t ring_points() const { return ring_.size(); }

  /// Append shard id == shard_count() to the ring (rebalance analysis).
  void add_shard();
  /// Remove shard `id` from the ring; keys it owned redistribute over the
  /// survivors, keys it did not own stay put. No-op for unknown ids.
  void remove_shard(std::size_t id);

  /// Fraction of the 64-bit hash space shard `id` owns — the analytic load
  /// estimate SHARDING.md's capacity-planning math uses (0 if absent).
  [[nodiscard]] double load_fraction(std::size_t id) const;

 private:
  struct Point {
    std::uint64_t hash = 0;
    std::uint32_t shard = 0;
    friend bool operator<(const Point& a, const Point& b) {
      return a.hash != b.hash ? a.hash < b.hash : a.shard < b.shard;
    }
  };

  void insert_points(std::size_t id);

  std::size_t virtual_nodes_;
  std::vector<Point> ring_;            // sorted by (hash, shard)
  std::vector<std::size_t> shard_ids_; // sorted active ids
};

}  // namespace totem::shard

#include "shard/sharded_kv.h"

#include <algorithm>
#include <cassert>

#include "common/json.h"

namespace totem::shard {

ShardedKv::ShardedKv(Config config, std::vector<ShardBackend> backends)
    : config_(config), partitioner_(config.partitioner) {
  assert(partitioner_.shard_count() == backends.size() &&
         "partitioner shard_count must match backend count");
  shards_.reserve(backends.size());
  for (std::size_t s = 0; s < backends.size(); ++s) {
    ShardState st;
    st.logs = std::move(backends[s].logs);
    st.kvs = std::move(backends[s].kvs);
    assert(!st.logs.empty() && st.logs.size() == st.kvs.size() &&
           "shard backend needs index-aligned logs and kvs");
    st.submit_index = config_.submit_replica >= 0
                          ? static_cast<std::size_t>(config_.submit_replica)
                          : s % st.logs.size();
    assert(st.submit_index < st.logs.size() && "submit_replica out of range");
    shards_.push_back(std::move(st));
  }
  for (std::size_t s = 0; s < shards_.size(); ++s) {
    shards_[s].logs[shards_[s].submit_index]->set_completion_handler(
        [this, s](std::uint64_t req, BytesView result, bool applied) {
          on_log_completion(s, req, result, applied);
        });
  }
}

std::size_t ShardedKv::submit_replica(std::size_t shard) const {
  return shards_[shard].submit_index;
}

bool ShardedKv::shard_available(std::size_t shard) const {
  const ShardState& st = shards_[shard];
  const smr::ReplicatedLog* log = st.logs[st.submit_index];
  if (!log->live()) return false;
  // Majority gate: Totem itself has no primary-partition rule — a fully
  // isolated replica happily runs on as a singleton ring. Serving (or
  // accepting writes) from a minority fragment risks handing out state the
  // post-heal merge demotes away, so the router refuses below majority.
  return log->established_members().size() * 2 > st.logs.size();
}

Result<std::uint64_t> ShardedKv::put(std::string_view key, BytesView value) {
  return submit(key, smr::ReplicatedKv::encode_put(key, value));
}

Result<std::uint64_t> ShardedKv::del(std::string_view key) {
  return submit(key, smr::ReplicatedKv::encode_del(key));
}

Result<std::uint64_t> ShardedKv::cas(std::string_view key,
                                     std::uint64_t expected_version,
                                     BytesView value) {
  return submit(key, smr::ReplicatedKv::encode_cas(key, expected_version, value));
}

Result<std::uint64_t> ShardedKv::submit(std::string_view key, Bytes command) {
  const std::size_t s = partitioner_.shard_for(key);
  ShardState& st = shards_[s];
  if (!shard_available(s)) {
    ++st.stats.rejected_unavailable;
    return Status{StatusCode::kUnavailable,
                  "shard " + std::to_string(s) + " below majority"};
  }
  if (st.stats.in_flight >= config_.max_pending_per_shard) {
    ++st.stats.rejected_backpressure;
    return Status{StatusCode::kResourceExhausted,
                  "shard " + std::to_string(s) + " write budget full"};
  }
  const std::uint64_t op = next_op_++;
  ++st.stats.submitted;
  ++st.stats.in_flight;
  // FIFO rule: once anything waits in the overflow queue, every later write
  // joins it — submitting around the queue would reorder the shard's stream.
  if (st.queue.empty()) {
    auto r = st.logs[st.submit_index]->submit(command);
    if (r.is_ok()) {
      st.inflight.emplace(r.value(), op);
      return op;
    }
  }
  ++st.stats.queued;
  st.queue.push_back({op, std::move(command)});
  return op;
}

Result<std::vector<std::uint64_t>> ShardedKv::multi_put(
    const std::vector<std::pair<std::string, Bytes>>& pairs) {
  // All-or-nothing admission: route everything first, verify every target
  // shard is available and has budget for its slice, then submit in input
  // order (which is what makes the per-shard suborder the input order).
  std::vector<std::size_t> route(pairs.size());
  std::vector<std::size_t> load(shards_.size(), 0);
  for (std::size_t i = 0; i < pairs.size(); ++i) {
    route[i] = partitioner_.shard_for(pairs[i].first);
    ++load[route[i]];
  }
  for (std::size_t s = 0; s < shards_.size(); ++s) {
    if (load[s] == 0) continue;
    if (!shard_available(s)) {
      ++shards_[s].stats.rejected_unavailable;
      return Status{StatusCode::kUnavailable,
                    "shard " + std::to_string(s) + " below majority"};
    }
    if (shards_[s].stats.in_flight + load[s] > config_.max_pending_per_shard) {
      ++shards_[s].stats.rejected_backpressure;
      return Status{StatusCode::kResourceExhausted,
                    "shard " + std::to_string(s) + " cannot absorb batch"};
    }
  }
  std::vector<std::uint64_t> ops;
  ops.reserve(pairs.size());
  for (const auto& [key, value] : pairs) {
    auto r = put(key, value);
    // The pre-check reserved budget; the only residual failure would be a
    // availability flip mid-batch, which delivery-order callbacks cannot
    // cause between these non-blocking submits.
    if (!r.is_ok()) return r.status();
    ops.push_back(r.value());
  }
  return ops;
}

ReadResult ShardedKv::get(std::string_view key) const {
  const std::size_t s = partitioner_.shard_for(key);
  const ShardState& st = shards_[s];
  ++st.stats.reads;
  ReadResult out;
  out.shard = s;
  if (!shard_available(s)) {
    ++st.stats.reads_unavailable;
    out.status = ReadStatus::kUnavailable;
    return out;
  }
  const smr::ReplicatedKv::Entry* e = st.kvs[st.submit_index]->get(key);
  if (e == nullptr) {
    out.status = ReadStatus::kNotFound;
    return out;
  }
  out.status = ReadStatus::kOk;
  out.value = e->value;
  out.version = e->version;
  return out;
}

std::vector<ReadResult> ShardedKv::multi_get(
    const std::vector<std::string>& keys) const {
  std::vector<ReadResult> out;
  out.reserve(keys.size());
  for (const auto& k : keys) out.push_back(get(k));
  return out;
}

void ShardedKv::flush_queue(std::size_t shard) {
  ShardState& st = shards_[shard];
  while (!st.queue.empty()) {
    auto r = st.logs[st.submit_index]->submit(st.queue.front().command);
    if (!r.is_ok()) return;  // still backpressured; the next completion retries
    st.inflight.emplace(r.value(), st.queue.front().op);
    st.queue.pop_front();
  }
}

void ShardedKv::on_log_completion(std::size_t shard, std::uint64_t request_id,
                                  BytesView result, bool applied_locally) {
  ShardState& st = shards_[shard];
  auto it = st.inflight.find(request_id);
  if (it == st.inflight.end()) return;  // not ours (pre-router submit)
  OpCompletion done;
  done.op = it->second;
  done.shard = shard;
  st.inflight.erase(it);
  ++st.stats.completed;
  if (st.stats.in_flight > 0) --st.stats.in_flight;
  if (applied_locally) {
    auto decoded = smr::ReplicatedKv::decode_result(result);
    if (decoded.is_ok()) {
      done.result = decoded.value();
      done.decoded = true;
    }
  }
  flush_queue(shard);
  if (on_complete_) on_complete_(done);
}

ClusterSnapshot ShardedKv::roll_up(
    std::vector<std::vector<api::StatsSnapshot>> per_shard_nodes) const {
  ClusterSnapshot out;
  out.shard_count = shards_.size();
  for (std::size_t s = 0; s < shards_.size(); ++s) {
    const ShardState& st = shards_[s];
    ShardSnapshot shard;
    shard.shard = s;
    shard.available = shard_available(s);
    shard.replica_count = st.logs.size();
    for (const auto* log : st.logs) {
      if (log->live()) ++shard.live_replicas;
    }
    shard.keys = st.kvs[st.submit_index]->size();
    shard.router = st.stats;
    if (s < per_shard_nodes.size()) {
      shard.nodes = std::move(per_shard_nodes[s]);
      for (const auto& n : shard.nodes) {
        shard.health = std::max(shard.health, n.health.overall);
      }
    }
    // An unavailable shard IS the faulted condition from the cluster's
    // point of view, whatever its individual nodes think of their NICs.
    if (!shard.available) shard.health = api::HealthState::kFaulted;
    out.overall = std::max(out.overall, shard.health);
    if (shard.available) ++out.shards_available;
    out.ops_completed += shard.router.completed;
    out.ops_rejected +=
        shard.router.rejected_backpressure + shard.router.rejected_unavailable;
    out.keys += shard.keys;
    out.shards.push_back(std::move(shard));
  }
  return out;
}

std::string ClusterSnapshot::to_json() const {
  JsonWriter w;
  w.begin_object();
  w.kv("overall", api::to_string(overall));
  w.kv("shard_count", static_cast<std::uint64_t>(shard_count));
  w.kv("shards_available", static_cast<std::uint64_t>(shards_available));
  w.kv("ops_completed", ops_completed);
  w.kv("ops_rejected", ops_rejected);
  w.kv("keys", keys);
  w.key("shards");
  w.begin_array();
  for (const auto& s : shards) {
    w.begin_object();
    w.kv("shard", static_cast<std::uint64_t>(s.shard));
    w.kv("available", s.available);
    w.kv("health", api::to_string(s.health));
    w.kv("live_replicas", static_cast<std::uint64_t>(s.live_replicas));
    w.kv("replica_count", static_cast<std::uint64_t>(s.replica_count));
    w.kv("keys", s.keys);
    w.key("router");
    w.begin_object();
    w.kv("submitted", s.router.submitted);
    w.kv("completed", s.router.completed);
    w.kv("queued", s.router.queued);
    w.kv("rejected_backpressure", s.router.rejected_backpressure);
    w.kv("rejected_unavailable", s.router.rejected_unavailable);
    w.kv("reads", s.router.reads);
    w.kv("reads_unavailable", s.router.reads_unavailable);
    w.kv("in_flight", static_cast<std::uint64_t>(s.router.in_flight));
    w.end_object();
    if (!s.nodes.empty()) {
      w.key("nodes");
      w.begin_array();
      for (const auto& n : s.nodes) w.raw(n.to_json());
      w.end_array();
    }
    w.end_object();
  }
  w.end_array();
  w.end_object();
  return w.take();
}

std::string ClusterSnapshot::to_prometheus() const {
  std::string out;
  auto family = [&](const char* name, const char* type) {
    out += "# TYPE totem_shard_";
    out += name;
    out += ' ';
    out += type;
    out += '\n';
  };
  auto sample = [&](const char* name, std::size_t shard, std::uint64_t v) {
    out += "totem_shard_";
    out += name;
    out += "{shard=\"";
    out += std::to_string(shard);
    out += "\"} ";
    out += std::to_string(v);
    out += '\n';
  };
  family("available", "gauge");
  for (const auto& s : shards) sample("available", s.shard, s.available ? 1 : 0);
  family("health_state", "gauge");
  for (const auto& s : shards)
    sample("health_state", s.shard, static_cast<std::uint64_t>(s.health));
  family("live_replicas", "gauge");
  for (const auto& s : shards) sample("live_replicas", s.shard, s.live_replicas);
  family("keys", "gauge");
  for (const auto& s : shards) sample("keys", s.shard, s.keys);
  family("ops_completed", "counter");
  for (const auto& s : shards) sample("ops_completed", s.shard, s.router.completed);
  family("ops_rejected", "counter");
  for (const auto& s : shards)
    sample("ops_rejected", s.shard,
           s.router.rejected_backpressure + s.router.rejected_unavailable);
  family("in_flight", "gauge");
  for (const auto& s : shards) sample("in_flight", s.shard, s.router.in_flight);
  for (const auto& s : shards) {
    const std::string label = ",shard=\"" + std::to_string(s.shard) + "\"";
    for (const auto& n : s.nodes) out += n.to_prometheus(label);
  }
  return out;
}

std::string to_string(const ClusterSnapshot& snap) {
  std::string out = "sharded-kv cluster: " + std::string(api::to_string(snap.overall)) +
                    ", " + std::to_string(snap.shards_available) + "/" +
                    std::to_string(snap.shard_count) + " shards available, " +
                    std::to_string(snap.keys) + " keys, " +
                    std::to_string(snap.ops_completed) + " ops completed, " +
                    std::to_string(snap.ops_rejected) + " rejected\n";
  for (const auto& s : snap.shards) {
    out += "  shard " + std::to_string(s.shard) + ": " +
           (s.available ? "available" : "UNAVAILABLE") + " (" +
           api::to_string(s.health) + "), replicas " +
           std::to_string(s.live_replicas) + "/" +
           std::to_string(s.replica_count) + " live, " +
           std::to_string(s.keys) + " keys, completed " +
           std::to_string(s.router.completed) + ", in-flight " +
           std::to_string(s.router.in_flight) + ", queued " +
           std::to_string(s.router.queued) + ", rejected " +
           std::to_string(s.router.rejected_backpressure +
                          s.router.rejected_unavailable) +
           "\n";
  }
  return out;
}

}  // namespace totem::shard

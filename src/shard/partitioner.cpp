#include "shard/partitioner.h"

#include <algorithm>
#include <cassert>
#include <string>

namespace totem::shard {

Partitioner::Partitioner(Config config) : virtual_nodes_(config.virtual_nodes) {
  assert(config.shard_count > 0 && "partitioner needs at least one shard");
  assert(config.virtual_nodes > 0 && "partitioner needs at least one point per shard");
  if (virtual_nodes_ == 0) virtual_nodes_ = 1;
  ring_.reserve(config.shard_count * virtual_nodes_);
  for (std::size_t id = 0; id < config.shard_count; ++id) {
    shard_ids_.push_back(id);
    insert_points(id);
  }
  std::sort(ring_.begin(), ring_.end());
}

void Partitioner::insert_points(std::size_t id) {
  // The point label is a fixed string, so the ring layout is a pure
  // function of (id, vnode index) — never of insertion history.
  for (std::size_t v = 0; v < virtual_nodes_; ++v) {
    const std::string label =
        "shard:" + std::to_string(id) + "#" + std::to_string(v);
    ring_.push_back({ring_hash(label), static_cast<std::uint32_t>(id)});
  }
}

std::size_t Partitioner::shard_for(std::string_view key) const {
  assert(!ring_.empty() && "shard_for on an empty ring");
  const std::uint64_t h = ring_hash(key);
  // First point with hash >= h, wrapping to the ring start past the top.
  auto it = std::lower_bound(
      ring_.begin(), ring_.end(), h,
      [](const Point& p, std::uint64_t hash) { return p.hash < hash; });
  if (it == ring_.end()) it = ring_.begin();
  return it->shard;
}

void Partitioner::add_shard() {
  const std::size_t id = shard_ids_.empty() ? 0 : shard_ids_.back() + 1;
  shard_ids_.push_back(id);
  insert_points(id);
  std::sort(ring_.begin(), ring_.end());
}

void Partitioner::remove_shard(std::size_t id) {
  auto sit = std::find(shard_ids_.begin(), shard_ids_.end(), id);
  if (sit == shard_ids_.end()) return;
  shard_ids_.erase(sit);
  ring_.erase(std::remove_if(ring_.begin(), ring_.end(),
                             [id](const Point& p) { return p.shard == id; }),
              ring_.end());
}

double Partitioner::load_fraction(std::size_t id) const {
  if (ring_.empty()) return 0.0;
  if (shard_ids_.size() == 1) return shard_ids_.front() == id ? 1.0 : 0.0;
  // Each point owns the arc from its predecessor (exclusive) to itself
  // (inclusive); the first point also owns the wrap-around arc.
  constexpr double kSpace = 18446744073709551616.0;  // 2^64
  double owned = 0.0;
  bool present = false;
  for (std::size_t i = 0; i < ring_.size(); ++i) {
    const Point& p = ring_[i];
    if (p.shard != id) continue;
    present = true;
    const std::uint64_t prev = i == 0 ? ring_.back().hash : ring_[i - 1].hash;
    // Wrap-safe arc length; a duplicate hash contributes zero width.
    owned += static_cast<double>(p.hash - prev);  // unsigned wrap is the arc
  }
  return present ? owned / kSpace : 0.0;
}

}  // namespace totem::shard

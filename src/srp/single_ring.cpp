#include "srp/single_ring.h"

#include <algorithm>
#include <cassert>

#include "common/log.h"

namespace totem::srp {

SingleRing::SingleRing(TimerService& timers, rrp::Replicator& replicator, Config config,
                       net::CpuCharger* cpu)
    : timers_(timers), replicator_(replicator), config_(std::move(config)), cpu_(cpu) {
  auto& m = config_.initial_members;
  if (std::find(m.begin(), m.end(), config_.node_id) == m.end()) {
    m.push_back(config_.node_id);
  }
  std::sort(m.begin(), m.end());
  m.erase(std::unique(m.begin(), m.end()), m.end());

  if (config_.trace) config_.trace->set_node(config_.node_id);
  if (config_.metrics) {
    rotation_hist_ = config_.metrics->histogram("srp.token_rotation_us");
    delivery_hist_ = config_.metrics->histogram("srp.delivery_latency_us");
    reformation_hist_ = config_.metrics->histogram("srp.reformation_us");
    loss_counter_ = config_.metrics->counter("srp.token_loss_events");
    retention_counter_ = config_.metrics->counter("srp.token_retention_resends");
  }
}

void SingleRing::start() {
  replicator_.set_message_handler(
      [this](BytesView p, NetworkId n) { on_message_packet(p, n); });
  replicator_.set_token_handler(
      [this](BytesView p, NetworkId n) { on_token_packet(p, n); });
  replicator_.set_missing_query(
      [this](SeqNum token_seq) { return any_messages_missing(token_seq); });

  if (config_.assume_initial_ring) {
    members_ = config_.initial_members;
    ring_id_ = RingId{members_.front(), 4};
    sync_trace_ring();
    remember_ring(ring_id_);
    highest_ring_seq_ = ring_id_.ring_seq;
    state_ = State::kOperational;
    notify_state();
    timers_.schedule(Duration{0}, [this] { deliver_membership_view(); });
    if (is_leader()) {
      // The representative injects the first token.
      wire::Token t;
      t.ring = ring_id_;
      t.sender = config_.node_id;
      PacketBuffer b = wire::serialize_token(pool_, t);
      timers_.schedule(Duration{0}, [this, b] { on_token_packet(b, 0); });
    }
    arm_token_loss_timer();
    arm_announce_timer();
  } else {
    start_gather("startup");
  }
}

void SingleRing::arm_announce_timer() {
  if (config_.announce_interval <= Duration::zero()) return;
  announce_timer_.cancel();
  announce_timer_ =
      timers_.schedule(config_.announce_interval, [this] { on_announce_fire(); });
}

void SingleRing::on_announce_fire() {
  if (state_ == State::kOperational && is_leader()) {
    wire::Announce a;
    a.sender = config_.node_id;
    a.ring = ring_id_;
    a.member_count = static_cast<std::uint32_t>(members_.size());
    replicator_.broadcast_message(wire::serialize_announce(pool_, a));
  }
  arm_announce_timer();
}

Status SingleRing::send(BytesView payload) {
  const std::size_t max_frag = wire::kMaxUnfragmentedPayload;
  const std::size_t frags =
      payload.empty() ? 1 : (payload.size() + max_frag - 1) / max_frag;
  if (frags > 0xFFFF) {
    return Status{StatusCode::kInvalidArgument, "message too large"};
  }
  if (send_queue_.size() + frags > config_.send_queue_limit) {
    ++stats_.send_queue_rejects;
    return Status{StatusCode::kResourceExhausted, "send queue full"};
  }
  if (frags == 1) {
    wire::MessageEntry e;
    e.payload.assign(payload.begin(), payload.end());
    send_queue_.push_back(std::move(e));
  } else {
    for (std::size_t i = 0; i < frags; ++i) {
      wire::MessageEntry e;
      e.flags = wire::MessageEntry::kFlagFragment;
      e.frag_index = static_cast<std::uint16_t>(i);
      e.frag_count = static_cast<std::uint16_t>(frags);
      const std::size_t begin = i * max_frag;
      const std::size_t len = std::min(max_frag, payload.size() - begin);
      auto chunk = payload.subspan(begin, len);
      e.payload.assign(chunk.begin(), chunk.end());
      send_queue_.push_back(std::move(e));
    }
  }
  ++stats_.messages_sent;
  stats_.bytes_sent += payload.size();
  // One timestamp per accepted message (not per fragment): delivery latency
  // is timed send() -> origin-local deliver callback. The origin delivers
  // its own broadcast the moment the token assigns its seq, so wire-time
  // alone is degenerate; queue wait IS part of what the application sees.
  if (delivery_hist_) send_times_.push_back(timers_.now());
  return Status::ok();
}

bool SingleRing::any_messages_missing(SeqNum token_seq) const {
  return my_aru_ < std::max(high_seq_seen_, token_seq);
}

// ---------------------------------------------------------------------------
// Receive path

void SingleRing::on_message_packet(BytesView packet, NetworkId from) {
  auto info = wire::peek(packet);
  if (!info) {
    ++stats_.malformed_packets;
    return;
  }
  switch (info.value().type) {
    case wire::PacketType::kRegular:
    case wire::PacketType::kRetransmit: {
      auto parsed = wire::parse_messages(packet);
      if (!parsed) {
        ++stats_.malformed_packets;
        return;
      }
      if (parsed.value().header.ring != ring_id_) {
        if (state_ == State::kOperational &&
            !is_recent_ring(parsed.value().header.ring) &&
            should_attempt_merge(parsed.value().header.ring)) {
          // Regular traffic from a ring we were never part of: a foreign
          // ring is reachable (a partition healed). Run the membership
          // protocol so the rings merge.
          start_gather("foreign ring traffic");
        }
        ++stats_.stale_packets;
        return;
      }
      for (auto& e : parsed.value().entries) {
        accept_entry(std::move(e));
      }
      try_deliver();
      if (state_ == State::kRecovery) deliver_old_ring_contiguous();
      break;
    }
    case wire::PacketType::kJoin: {
      auto join = wire::parse_join(packet);
      if (!join) {
        ++stats_.malformed_packets;
        return;
      }
      on_join(join.value());
      break;
    }
    case wire::PacketType::kCommitToken: {
      auto commit = wire::parse_commit(packet);
      if (!commit) {
        ++stats_.malformed_packets;
        return;
      }
      on_commit_token(std::move(commit).take());
      break;
    }
    case wire::PacketType::kAnnounce: {
      auto announce = wire::parse_announce(packet);
      if (!announce) {
        ++stats_.malformed_packets;
        return;
      }
      on_announce(announce.value());
      break;
    }
    case wire::PacketType::kToken:
      // Defensive: a replicator should route tokens to on_token_packet.
      on_token_packet(packet, from);
      break;
  }
}

void SingleRing::on_announce(const wire::Announce& announce) {
  if (announce.sender == config_.node_id) return;
  if (state_ != State::kOperational) return;  // gather will hear its joins
  if (announce.ring == ring_id_ || is_recent_ring(announce.ring)) return;
  if (!should_attempt_merge(announce.ring)) return;
  // A ring we were never part of is reachable: merge (paper-faithful
  // membership trigger, extended to idle rings).
  start_gather("foreign ring announcement");
}

bool SingleRing::should_attempt_merge(const RingId& foreign_ring) {
  const TimePoint now = timers_.now();
  for (auto& [ring, last] : merge_attempts_) {
    if (ring == foreign_ring) {
      if (now - last < config_.merge_backoff) return false;
      last = now;
      return true;
    }
  }
  merge_attempts_.emplace_back(foreign_ring, now);
  if (merge_attempts_.size() > 16) {
    merge_attempts_.erase(merge_attempts_.begin());
  }
  return true;
}

void SingleRing::on_token_packet(BytesView packet, NetworkId from) {
  auto info = wire::peek(packet);
  if (!info) {
    ++stats_.malformed_packets;
    return;
  }
  if (info.value().type == wire::PacketType::kCommitToken) {
    on_message_packet(packet, from);
    return;
  }
  auto token = wire::parse_token(packet);
  if (!token) {
    ++stats_.malformed_packets;
    return;
  }
  wire::Token t = std::move(token).take();
  if (t.ring != ring_id_) {
    ++stats_.stale_packets;
    return;
  }
  if (state_ == State::kGather || state_ == State::kCommit) {
    ++stats_.stale_packets;
    return;
  }
  if (last_token_instance_ && t.instance_id() <= *last_token_instance_) {
    // Paper §2: a token with an already-seen (rotation, seq) is a
    // retransmitted copy and is ignored.
    ++stats_.duplicate_tokens;
    return;
  }
  handle_regular_token(std::move(t));
}

void SingleRing::accept_entry(wire::MessageEntry&& entry) {
  if (entry.seq == 0) {
    ++stats_.malformed_packets;
    return;
  }
  high_seq_seen_ = std::max(high_seq_seen_, entry.seq);
  if (retention_active_ && entry.seq > retained_token_seq_) {
    // Paper §2: a message with a higher seq than the retained token proves
    // the successor received the token; stop resending it.
    retention_active_ = false;
  }
  if (entry.seq <= delivered_up_to_ || store_.count(entry.seq) != 0) {
    ++stats_.duplicates_dropped;
    return;
  }
  charge(config_.per_msg_recv_cost);
  if (state_ == State::kRecovery && entry.is_recovered()) {
    accept_recovered_entry(entry);
  }
  store_.emplace(entry.seq, std::move(entry));
  while (store_.count(my_aru_ + 1) != 0) ++my_aru_;
}

void SingleRing::try_deliver() {
  while (delivered_up_to_ < my_aru_) {
    auto it = store_.find(delivered_up_to_ + 1);
    assert(it != store_.end() && "contiguous message missing from store");
    if (state_ == State::kRecovery) {
      // Encapsulated old-ring messages are delivered in OLD ring order by
      // deliver_old_ring_contiguous(), not here. Anything else is fresh
      // application traffic from members that already installed this ring
      // (token.install doc in wire.h); hold it until our own install so it
      // is delivered, in order, once we are operational.
      if (!it->second.is_recovered()) break;
      ++delivered_up_to_;
      continue;
    }
    ++delivered_up_to_;
    if (it->second.is_recovered()) {
      // A recovery rebroadcast arriving after our install (we installed on
      // the token's mark while still missing it; see update_aru's single
      // aru_id owner). Its content was resolved — delivered or counted
      // lost — when install_ring() force-resolved the old ring, so the
      // entry only fills its seq slot; the raw encapsulation bytes must
      // never reach the application.
      continue;
    }
    deliver_entry(it->second, false, ring_id_);
  }
}

void SingleRing::deliver_entry(const wire::MessageEntry& entry, bool recovered,
                               const RingId& ring) {
  if (!entry.is_fragment()) {
    ++stats_.messages_delivered;
    stats_.bytes_delivered += entry.payload.size();
    trace_event(TraceKind::kMessageDelivered, entry.origin, entry.seq);
    if (entry.origin == config_.node_id) record_delivery_latency(entry.seq);
    if (deliver_) {
      deliver_(DeliveredMessage{entry.origin, entry.seq, entry.payload, recovered, ring});
    }
    return;
  }
  auto& st = frag_[entry.origin];
  if (entry.frag_index != st.expect) {
    // Fragment stream out of sync (possible only across a lossy membership
    // change). Resynchronize on the next fragment-0.
    st = FragReassembly{};
    if (entry.frag_index != 0) {
      frag_.erase(entry.origin);
      return;
    }
  }
  if (entry.frag_index == 0) {
    // The whole message is identified by its first fragment: that seq (and
    // the ring whose seq space assigned it) is the message's position in
    // the total order.
    st.first_seq = entry.seq;
    st.first_ring = ring;
  }
  st.buf.insert(st.buf.end(), entry.payload.begin(), entry.payload.end());
  st.recovered = st.recovered || recovered;
  ++st.expect;
  if (entry.frag_index + 1 == entry.frag_count) {
    ++stats_.messages_delivered;
    stats_.bytes_delivered += st.buf.size();
    trace_event(TraceKind::kMessageDelivered, entry.origin, st.first_seq);
    if (entry.origin == config_.node_id) record_delivery_latency(st.first_seq);
    if (deliver_) {
      deliver_(DeliveredMessage{entry.origin, st.first_seq, st.buf, st.recovered,
                                st.first_ring});
    }
    frag_.erase(entry.origin);
  }
}

void SingleRing::record_delivery_latency(SeqNum seq) {
  if (!delivery_hist_) return;
  // inflight_sends_ is seq-ascending and own messages deliver in seq order;
  // entries below `seq` (lost to a membership change) are dropped unmeasured.
  while (!inflight_sends_.empty() && inflight_sends_.front().first < seq) {
    inflight_sends_.pop_front();
  }
  if (inflight_sends_.empty() || inflight_sends_.front().first != seq) return;
  delivery_hist_->record(static_cast<std::uint64_t>(
      (timers_.now() - inflight_sends_.front().second).count()));
  inflight_sends_.pop_front();
}

// ---------------------------------------------------------------------------
// Token processing

void SingleRing::handle_regular_token(wire::Token token) {
  ++stats_.tokens_processed;
  if (config_.trace) config_.trace->set_token_seq(token.seq);
  trace_event(TraceKind::kTokenReceived, token.rotation, token.seq);
  if (rotation_hist_) {
    const TimePoint now = timers_.now();
    if (last_token_arrival_) {
      rotation_hist_->record(static_cast<std::uint64_t>(
          (now - *last_token_arrival_).count()));
    }
    last_token_arrival_ = now;
  }
  charge(config_.per_token_cost);
  last_token_instance_ = token.instance_id();
  token_loss_timer_.cancel();
  retention_active_ = false;

  const std::uint32_t retransmitted = service_retransmissions(token);
  const std::uint32_t sent = state_ == State::kRecovery
                                 ? broadcast_recovery_messages(token)
                                 : broadcast_new_messages(token);
  update_aru(token);
  add_retransmit_requests(token);
  update_flow_control(token, retransmitted + sent);
  try_deliver();
  if (state_ == State::kRecovery) {
    deliver_old_ring_contiguous();
    ++recovery_token_visits_;
    // Recovery is complete when nobody has anything left to rebroadcast
    // (backlog) and every member has received every recovery broadcast
    // (aru caught up with seq). Two rules make the decision sound:
    //  * A node may ORIGINATE it only from its second visit on: the token's
    //    backlog/aru aggregates cover every member only after a full
    //    rotation, and a first-visit reading (backlog == 0, aru == seq == 0)
    //    can be vacuous because nobody else has reported yet.
    //  * The decision is ring-wide: the first member to observe the
    //    condition marks the token, and every later member installs on the
    //    mark — re-evaluating the condition at later hops would race
    //    against the new application traffic that installed members are
    //    already broadcasting (token.install doc in wire.h).
    if (token.install ||
        (recovery_token_visits_ >= 2 && token.backlog == 0 &&
         token.aru == token.seq && my_retransmit_plan_.empty())) {
      token.install = true;
      install_ring();
      // Deliver any fresh new-ring traffic try_deliver() held back while we
      // were still recovering.
      try_deliver();
    }
  }
  discard_safe_messages(token);
  if (is_leader()) ++token.rotation;
  forward_token(std::move(token));
}

std::uint32_t SingleRing::service_retransmissions(wire::Token& token) {
  if (token.rtr.empty()) return 0;
  std::vector<wire::MessageEntry> out;
  std::vector<SeqNum> remaining;
  for (SeqNum s : token.rtr) {
    auto it = store_.find(s);
    if (it != store_.end()) {
      out.push_back(it->second);
    } else if (s > delivered_up_to_) {
      remaining.push_back(s);
    }
    // Requests at or below our delivery point refer to messages already
    // received by everyone that mattered; drop them defensively.
  }
  token.rtr = std::move(remaining);
  if (out.empty()) return 0;
  stats_.retransmissions_sent += out.size();
  const auto n = static_cast<std::uint32_t>(out.size());
  trace_event(TraceKind::kRetransmissionSent, n);
  send_packed_retransmit(std::move(out));
  return n;
}

std::uint32_t SingleRing::broadcast_new_messages(wire::Token& token) {
  const std::uint32_t window_remaining =
      config_.window_size > token.fcc ? config_.window_size - token.fcc : 0;
  std::uint32_t allowance =
      std::min({config_.max_messages_per_visit, window_remaining,
                static_cast<std::uint32_t>(send_queue_.size())});
  if (config_.fair_backlog_sharing && allowance > 0) {
    // Proportional share of the window. token.backlog still contains our
    // previous-rotation contribution (it is corrected in
    // update_flow_control), so this is the ring-wide demand as of the last
    // rotation — the same approximation the token's fcc uses.
    const std::uint64_t mine = send_queue_.size();
    const std::uint64_t total = std::max<std::uint64_t>(token.backlog, mine);
    const auto fair = static_cast<std::uint32_t>(std::max<std::uint64_t>(
        1, static_cast<std::uint64_t>(config_.window_size) * mine / total));
    allowance = std::min(allowance, fair);
  }
  if (allowance == 0) return 0;

  std::vector<wire::MessageEntry> batch;
  batch.reserve(allowance);
  for (std::uint32_t i = 0; i < allowance; ++i) {
    wire::MessageEntry e = std::move(send_queue_.front());
    send_queue_.pop_front();
    e.seq = ++token.seq;
    e.origin = config_.node_id;
    batch.push_back(std::move(e));
  }
  for (const auto& e : batch) {
    high_seq_seen_ = std::max(high_seq_seen_, e.seq);
    if (delivery_hist_ && (!e.is_fragment() || e.frag_index == 0)) {
      // Stamp the seq the message just received with its send()-time
      // timestamp (send_times_ is FIFO-aligned with send_queue_; a
      // fragmented message is identified by its first fragment's seq).
      if (send_times_.empty()) {
        // Desync: no timestamp for this message-start. Count it and skip
        // the latency sample — substituting now() here would record a
        // near-zero queue wait and silently corrupt the send→deliver
        // histogram.
        ++stats_.send_time_desync;
      } else {
        const TimePoint enqueued = send_times_.front();
        send_times_.pop_front();
        if (inflight_sends_.size() >= 65536) inflight_sends_.pop_front();
        inflight_sends_.emplace_back(e.seq, enqueued);
      }
    }
    store_.emplace(e.seq, e);
  }
  // Opposite-polarity audit: once the queue drains, every timestamp must
  // have been consumed. Leftovers would attach stale (too-early) times to
  // FUTURE messages; count and drop them instead.
  if (delivery_hist_ && send_queue_.empty() && !send_times_.empty()) {
    stats_.send_time_desync += send_times_.size();
    send_times_.clear();
  }
  while (store_.count(my_aru_ + 1) != 0) ++my_aru_;
  stats_.messages_broadcast += allowance;
  trace_event(TraceKind::kMessageBroadcast, batch.front().seq, allowance);
  send_packed_regular(std::move(batch));
  return allowance;
}

void SingleRing::update_aru(wire::Token& token) {
  if (token.aru > my_aru_) {
    token.aru = my_aru_;
    token.aru_id = config_.node_id;
  } else if (token.aru_id == config_.node_id || token.aru_id == kInvalidNode) {
    token.aru = my_aru_;
    token.aru_id = my_aru_ < token.seq ? config_.node_id : kInvalidNode;
  }
}

void SingleRing::add_retransmit_requests(wire::Token& token) {
  high_seq_seen_ = std::max(high_seq_seen_, token.seq);
  if (my_aru_ >= token.seq) return;
  std::uint32_t added = 0;
  for (SeqNum s = my_aru_ + 1;
       s <= token.seq && token.rtr.size() < config_.rtr_limit; ++s) {
    if (store_.count(s) != 0) continue;
    if (std::find(token.rtr.begin(), token.rtr.end(), s) != token.rtr.end()) continue;
    token.rtr.push_back(s);
    ++stats_.retransmit_requests;
    ++added;
  }
  if (added > 0) {
    trace_event(TraceKind::kRetransmitRequested, my_aru_ + 1, added);
  }
}

void SingleRing::update_flow_control(wire::Token& token, std::uint32_t sent_this_visit) {
  const std::int64_t fcc = static_cast<std::int64_t>(token.fcc) + sent_this_visit -
                           my_last_fcc_contribution_;
  token.fcc = static_cast<std::uint32_t>(std::max<std::int64_t>(fcc, 0));
  my_last_fcc_contribution_ = sent_this_visit;

  const std::uint32_t backlog_now = static_cast<std::uint32_t>(
      state_ == State::kRecovery ? my_retransmit_plan_.size() : send_queue_.size());
  const std::int64_t backlog = static_cast<std::int64_t>(token.backlog) + backlog_now -
                               my_last_backlog_contribution_;
  token.backlog = static_cast<std::uint32_t>(std::max<std::int64_t>(backlog, 0));
  my_last_backlog_contribution_ = backlog_now;
}

void SingleRing::discard_safe_messages(const wire::Token& token) {
  if (state_ != State::kRecovery) {
    // A message at or below the aru of two consecutive rotations has been
    // received by every node: it is SAFE (Totem SRP's strong guarantee) and
    // its store copy can be freed (paper §2).
    const SeqNum safe = std::min(prev_rotation_aru_, token.aru);
    if (safe > safe_up_to_) {
      safe_up_to_ = safe;
      trace_event(TraceKind::kSafeAdvanced, safe_up_to_);
      if (safe_handler_) safe_handler_(safe_up_to_);
    }
    store_.erase(store_.begin(), store_.upper_bound(std::min(safe, delivered_up_to_)));
  }
  prev_rotation_aru_ = token.aru;
}

void SingleRing::forward_token(wire::Token token) {
  token.sender = config_.node_id;
  PacketBuffer bytes = wire::serialize_token(pool_, token);
  retained_token_ = bytes;
  retained_token_seq_ = token.seq;

  const NodeId next = successor();
  if (next == config_.node_id) {
    // Singleton ring: loop the token back off-network.
    retention_active_ = false;
    timers_.schedule(config_.singleton_token_delay,
                     [this, bytes] { on_token_packet(bytes, 0); });
  } else {
    retention_active_ = true;
    replicator_.send_token(next, bytes);
    arm_retention_timer();
  }
  trace_event(TraceKind::kTokenForwarded, next, token.seq);
  arm_token_loss_timer();
}

void SingleRing::send_packed_regular(std::vector<wire::MessageEntry> entries) {
  charge(Duration{config_.per_msg_send_cost.count() *
                  static_cast<Duration::rep>(entries.size())});
  const wire::PacketHeader header{wire::PacketType::kRegular, config_.node_id, ring_id_};
  std::vector<wire::MessageEntry> pack;
  std::size_t body = wire::kRegularBodyFixed;
  for (auto& e : entries) {
    const std::size_t esize = wire::kRegularEntryOverhead + e.payload.size();
    if (!pack.empty() && body + esize > wire::kMaxBody) {
      replicator_.broadcast_message(wire::serialize_regular(pool_, header, pack));
      pack.clear();
      body = wire::kRegularBodyFixed;
    }
    body += esize;
    pack.push_back(std::move(e));
  }
  if (!pack.empty()) {
    replicator_.broadcast_message(wire::serialize_regular(pool_, header, pack));
  }
}

void SingleRing::send_packed_retransmit(std::vector<wire::MessageEntry> entries) {
  charge(Duration{config_.per_msg_send_cost.count() *
                  static_cast<Duration::rep>(entries.size())});
  const wire::PacketHeader header{wire::PacketType::kRetransmit, config_.node_id, ring_id_};
  std::vector<wire::MessageEntry> pack;
  std::size_t body = wire::kRetransBodyFixed;
  for (auto& e : entries) {
    const std::size_t esize = wire::kRetransEntryOverhead + e.payload.size();
    if (!pack.empty() && body + esize > wire::kMaxBody) {
      replicator_.broadcast_message(wire::serialize_retransmit(pool_, header, pack));
      pack.clear();
      body = wire::kRetransBodyFixed;
    }
    body += esize;
    pack.push_back(std::move(e));
  }
  if (!pack.empty()) {
    replicator_.broadcast_message(wire::serialize_retransmit(pool_, header, pack));
  }
}

// ---------------------------------------------------------------------------
// Timers

void SingleRing::arm_token_loss_timer() {
  token_loss_timer_.cancel();
  token_loss_timer_ = timers_.schedule(config_.token_loss_timeout, [this] {
    ++stats_.token_loss_events;
    if (loss_counter_) loss_counter_->add();
    trace_event(TraceKind::kTokenLoss);
    start_gather("token loss");
  });
}

void SingleRing::arm_retention_timer() {
  retention_timer_.cancel();
  retention_timer_ =
      timers_.schedule(config_.token_retention_interval, [this] { on_retention_fire(); });
}

void SingleRing::on_retention_fire() {
  if (!retention_active_) return;
  if (state_ == State::kGather || state_ == State::kCommit) return;
  ++stats_.token_retention_resends;
  if (retention_counter_) retention_counter_->add();
  trace_event(TraceKind::kTokenRetained, successor(), retained_token_seq_);
  replicator_.send_token(successor(), retained_token_);
  arm_retention_timer();
}

void SingleRing::cancel_operational_timers() {
  token_loss_timer_.cancel();
  retention_timer_.cancel();
  retention_active_ = false;
}

// ---------------------------------------------------------------------------
// Misc

void SingleRing::remember_ring(const RingId& ring) {
  if (is_recent_ring(ring)) return;
  recent_rings_.push_back(ring);
  if (recent_rings_.size() > 8) {
    recent_rings_.erase(recent_rings_.begin());
  }
}

bool SingleRing::is_recent_ring(const RingId& ring) const {
  return std::find(recent_rings_.begin(), recent_rings_.end(), ring) !=
         recent_rings_.end();
}

NodeId SingleRing::successor_in(const std::vector<NodeId>& ring_order) const {
  auto it = std::find(ring_order.begin(), ring_order.end(), config_.node_id);
  if (it == ring_order.end() || ring_order.size() == 1) return config_.node_id;
  ++it;
  return it == ring_order.end() ? ring_order.front() : *it;
}

NodeId SingleRing::successor() const { return successor_in(members_); }

void SingleRing::deliver_membership_view() {
  ++view_number_;
  if (membership_) {
    membership_(MembershipView{ring_id_, members_, view_number_});
  }
}

}  // namespace totem::srp

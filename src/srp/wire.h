// Totem SRP wire format.
//
// Framing math mirrors the paper (§8): an Ethernet frame is 1518 bytes, of
// which 94 are Ethernet + IPv4 + UDP + Totem headers, leaving 1424 bytes of
// Totem payload. Our fixed packet header is 26 bytes (counted inside the
// paper's 94), and the remaining body must fit in kMaxBody = 1424 bytes.
// A regular packet body carries first_seq(8) + count(2) + per-message
// {flags(1), frag_index(2), frag_count(2), len(2)} + payload — so exactly
// two 700-byte messages fill a frame (8+2+2*(7+700) = 1424), reproducing
// the throughput peaks at 700/1400-byte messages in Figures 6-9.
//
// All parse functions are bounds-checked and return Result: a malformed
// packet from a faulty network is an expected, countable event.
#pragma once

#include <cstdint>
#include <vector>

#include "common/bytes.h"
#include "common/packet_buffer.h"
#include "common/status.h"
#include "common/types.h"

namespace totem::srp::wire {

constexpr std::uint32_t kMagic = 0x54535250u;  // "TSRP"
constexpr std::uint8_t kVersion = 1;

/// Fixed header present on every packet: magic(4) version(1) type(1)
/// sender(4) ring.representative(4) ring.ring_seq(8) crc32(4). The CRC
/// covers the whole packet (with the CRC field itself zeroed) — standing in
/// for the Ethernet frame check sequence the paper's deployment relied on;
/// a corrupted packet parses as malformed and is dropped, and the SRP's
/// retransmission machinery repairs the loss.
constexpr std::size_t kPacketHeaderSize = 26;
constexpr std::size_t kCrcOffset = 22;

/// Maximum packet body (after the fixed header): the paper's 1424-byte
/// Totem payload.
constexpr std::size_t kMaxBody = 1424;

/// Per-message overhead inside a regular packet body.
constexpr std::size_t kRegularEntryOverhead = 7;   // flags + frag_index + frag_count + len
constexpr std::size_t kRegularBodyFixed = 10;      // first_seq + count
/// Largest payload that can travel unfragmented.
constexpr std::size_t kMaxUnfragmentedPayload =
    kMaxBody - kRegularBodyFixed - kRegularEntryOverhead;  // 1407 bytes

/// Per-message overhead inside a retransmission packet body (explicit seq
/// and origin since retransmitted messages are neither consecutive nor
/// necessarily the sender's own).
constexpr std::size_t kRetransEntryOverhead = 19;  // seq + origin + flags + frags + len
constexpr std::size_t kRetransBodyFixed = 2;       // count

enum class PacketType : std::uint8_t {
  kRegular = 1,      // packed new messages, consecutive seqs, origin == sender
  kRetransmit = 2,   // packed retransmitted messages, explicit seq/origin
  kToken = 3,        // the regular (operational / recovery) token
  kJoin = 4,         // membership: join message (broadcast)
  kCommitToken = 5,  // membership: commit token (unicast around new ring)
  kAnnounce = 6,     // periodic ring announcement (merge discovery on idle rings)
};

struct PacketHeader {
  PacketType type = PacketType::kRegular;
  NodeId sender = kInvalidNode;
  RingId ring;
};

// ---------------------------------------------------------------------------
// Messages

struct MessageEntry {
  static constexpr std::uint8_t kFlagFragment = 0x01;   // part of a fragmented message
  static constexpr std::uint8_t kFlagRecovered = 0x02;  // encapsulated old-ring message

  SeqNum seq = 0;
  NodeId origin = kInvalidNode;
  std::uint8_t flags = 0;
  std::uint16_t frag_index = 0;
  std::uint16_t frag_count = 1;
  Bytes payload;

  [[nodiscard]] bool is_fragment() const { return (flags & kFlagFragment) != 0; }
  [[nodiscard]] bool is_recovered() const { return (flags & kFlagRecovered) != 0; }
};

struct RegularPacket {
  PacketHeader header;
  std::vector<MessageEntry> entries;
};

/// Serialize consecutive-seq messages from `sender` (entries[i].seq must be
/// first_seq + i and origin == sender).
[[nodiscard]] Bytes serialize_regular(const PacketHeader& header,
                                      const std::vector<MessageEntry>& entries);
[[nodiscard]] PacketBuffer serialize_regular(BufferPool& pool, const PacketHeader& header,
                                             const std::vector<MessageEntry>& entries);

/// Serialize arbitrary (seq, origin) messages as a retransmission packet.
[[nodiscard]] Bytes serialize_retransmit(const PacketHeader& header,
                                         const std::vector<MessageEntry>& entries);
[[nodiscard]] PacketBuffer serialize_retransmit(BufferPool& pool, const PacketHeader& header,
                                                const std::vector<MessageEntry>& entries);

[[nodiscard]] Result<RegularPacket> parse_messages(BytesView packet);

// ---------------------------------------------------------------------------
// Regular token (paper §2)

struct Token {
  RingId ring;
  NodeId sender = kInvalidNode;     // node that forwarded this token
  SeqNum seq = 0;                   // seq of the last message broadcast on the ring
  SeqNum aru = 0;                   // all-received-up-to
  NodeId aru_id = kInvalidNode;     // node that last lowered aru
  std::uint64_t rotation = 0;       // incremented by the ring leader per rotation
  std::uint32_t fcc = 0;            // messages broadcast during the last rotation
  std::uint32_t backlog = 0;        // sum of send-queue lengths on the ring
  /// Set by the first member that observes the recovery-install condition.
  /// Every later member still in Recovery installs on sight: once one member
  /// has seen backlog == 0 and aru == seq, every member holds every recovery
  /// message and every retransmit plan is empty, but the installer's own new
  /// traffic can keep aru < seq at later hops forever. Without this flag a
  /// member late in the rotation can be stranded in Recovery on a ring that
  /// the earlier members already operate (and declare messages safe on).
  bool install = false;
  std::vector<SeqNum> rtr;          // retransmission requests

  /// Tokens are totally ordered per receiving node by (rotation, seq): the
  /// leader bumps rotation once per full rotation (paper §2 footnote), so a
  /// node never sees the same (rotation, seq) twice except for duplicates.
  [[nodiscard]] std::pair<std::uint64_t, SeqNum> instance_id() const {
    return {rotation, seq};
  }
};

[[nodiscard]] Bytes serialize_token(const Token& token);
[[nodiscard]] PacketBuffer serialize_token(BufferPool& pool, const Token& token);
[[nodiscard]] Result<Token> parse_token(BytesView packet);

// ---------------------------------------------------------------------------
// Membership (paper §2; Totem SRP Gather/Commit/Recovery)

struct JoinMessage {
  NodeId sender = kInvalidNode;
  std::vector<NodeId> proc_set;  // nodes the sender believes are alive
  std::vector<NodeId> fail_set;  // nodes the sender believes have failed
  std::uint64_t ring_seq = 0;    // highest ring seq the sender has seen
};

[[nodiscard]] Bytes serialize_join(const JoinMessage& join);
[[nodiscard]] PacketBuffer serialize_join(BufferPool& pool, const JoinMessage& join);
[[nodiscard]] Result<JoinMessage> parse_join(BytesView packet);

struct CommitMember {
  NodeId node = kInvalidNode;
  RingId old_ring;
  SeqNum my_aru = 0;     // member's aru on its old ring
  SeqNum high_seq = 0;   // highest seq the member has seen on its old ring
  bool filled = false;   // member has written its info (first pass)
};

struct CommitToken {
  RingId new_ring;
  NodeId sender = kInvalidNode;
  std::uint32_t hop = 0;  // total hops taken; hop >= members.size() => 2nd pass
  std::vector<CommitMember> members;
};

[[nodiscard]] Bytes serialize_commit(const CommitToken& commit);
[[nodiscard]] PacketBuffer serialize_commit(BufferPool& pool, const CommitToken& commit);
[[nodiscard]] Result<CommitToken> parse_commit(BytesView packet);

// ---------------------------------------------------------------------------
// Ring announcement: the ring leader periodically broadcasts its ring id so
// that a healed partition is discovered even when no application traffic
// flows. A node hearing an announcement for a ring it was never part of
// runs the membership protocol to merge.

struct Announce {
  NodeId sender = kInvalidNode;
  RingId ring;
  std::uint32_t member_count = 0;
};

[[nodiscard]] Bytes serialize_announce(const Announce& announce);
[[nodiscard]] PacketBuffer serialize_announce(BufferPool& pool, const Announce& announce);
[[nodiscard]] Result<Announce> parse_announce(BytesView packet);

// ---------------------------------------------------------------------------
// Recovery encapsulation: an old-ring message re-broadcast on the new ring
// travels as a MessageEntry payload with kFlagRecovered set.

struct RecoveredMessage {
  RingId old_ring;
  MessageEntry original;  // original seq/origin/flags/fragments/payload
};

[[nodiscard]] Bytes serialize_recovered(const RecoveredMessage& rec);
[[nodiscard]] Result<RecoveredMessage> parse_recovered(BytesView payload);

// ---------------------------------------------------------------------------
// Peek: cheap header inspection used by the RRP layer to route packets
// (message path vs token path) and by the network monitors.

struct PacketInfo {
  PacketType type = PacketType::kRegular;
  NodeId sender = kInvalidNode;
  RingId ring;
  // Valid for kToken only:
  SeqNum token_seq = 0;
  std::uint64_t token_rotation = 0;
};

[[nodiscard]] Result<PacketInfo> peek(BytesView packet);

}  // namespace totem::srp::wire

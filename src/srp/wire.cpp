#include "srp/wire.h"

#include <cassert>

#include "common/crc32.h"

namespace totem::srp::wire {
namespace {

void write_header(ByteWriter& w, PacketType type, NodeId sender, const RingId& ring) {
  w.u32(kMagic);
  w.u8(kVersion);
  w.u8(static_cast<std::uint8_t>(type));
  w.u32(sender);
  w.u32(ring.representative);
  w.u64(ring.ring_seq);
  w.u32(0);  // CRC placeholder, patched by finalize()
}

/// Checksum of the whole packet with the CRC field treated as zero.
std::uint32_t packet_crc(BytesView packet) {
  Crc32 crc;
  crc.update(packet.subspan(0, kCrcOffset));
  crc.update_zeros(4);
  crc.update(packet.subspan(kCrcOffset + 4));
  return crc.value();
}

/// Stamp the packet checksum; every serialize_* function returns through
/// here (or finalize(ByteWriter&&) for own-storage writers).
void finalize_in_place(Bytes& out) {
  assert(out.size() >= kPacketHeaderSize);
  const std::uint32_t crc = packet_crc(out);
  out[kCrcOffset] = std::byte(crc & 0xFF);
  out[kCrcOffset + 1] = std::byte((crc >> 8) & 0xFF);
  out[kCrcOffset + 2] = std::byte((crc >> 16) & 0xFF);
  out[kCrcOffset + 3] = std::byte((crc >> 24) & 0xFF);
}

Bytes finalize(ByteWriter&& w) {
  Bytes out = std::move(w).take();
  finalize_in_place(out);
  return out;
}

/// Encode a packet straight into a pooled buffer: acquire, fill via the
/// shared write core, stamp the CRC in place. This is the ONE payload
/// encode on the send path — the replicator fans the returned buffer out
/// by refcount, never by copy.
template <typename Fill>
PacketBuffer serialize_pooled(BufferPool& pool, std::size_t reserve, Fill&& fill) {
  PacketBuffer buffer = pool.acquire(reserve);
  ByteWriter w(buffer.mutable_bytes());
  fill(w);
  finalize_in_place(buffer.mutable_bytes());
  return buffer;
}

Result<PacketHeader> read_header(ByteReader& r, BytesView whole_packet) {
  auto magic = r.u32();
  if (!magic) return magic.status();
  if (magic.value() != kMagic) {
    return Status{StatusCode::kMalformedPacket, "bad magic"};
  }
  auto version = r.u8();
  if (!version) return version.status();
  if (version.value() != kVersion) {
    return Status{StatusCode::kMalformedPacket, "unsupported version"};
  }
  auto type = r.u8();
  auto sender = r.u32();
  auto rep = r.u32();
  auto ring_seq = r.u64();
  auto crc = r.u32();
  if (!type || !sender || !rep || !ring_seq || !crc) {
    return Status{StatusCode::kMalformedPacket, "truncated header"};
  }
  if (type.value() < static_cast<std::uint8_t>(PacketType::kRegular) ||
      type.value() > static_cast<std::uint8_t>(PacketType::kAnnounce)) {
    return Status{StatusCode::kMalformedPacket, "unknown packet type"};
  }
  if (crc.value() != packet_crc(whole_packet)) {
    return Status{StatusCode::kMalformedPacket, "checksum mismatch"};
  }
  return PacketHeader{static_cast<PacketType>(type.value()), sender.value(),
                      RingId{rep.value(), ring_seq.value()}};
}

void write_regular(ByteWriter& w, const PacketHeader& header,
                   const std::vector<MessageEntry>& entries) {
  assert(!entries.empty());
  write_header(w, PacketType::kRegular, header.sender, header.ring);
  w.u64(entries.front().seq);
  w.u16(static_cast<std::uint16_t>(entries.size()));
  for (std::size_t i = 0; i < entries.size(); ++i) {
    const MessageEntry& e = entries[i];
    assert(e.seq == entries.front().seq + i && "regular entries must be consecutive");
    assert(e.origin == header.sender && "regular entries must originate at sender");
    w.u8(e.flags);
    w.u16(e.frag_index);
    w.u16(e.frag_count);
    w.u16(static_cast<std::uint16_t>(e.payload.size()));
    w.raw(e.payload);
  }
}

void write_retransmit(ByteWriter& w, const PacketHeader& header,
                      const std::vector<MessageEntry>& entries) {
  assert(!entries.empty());
  write_header(w, PacketType::kRetransmit, header.sender, header.ring);
  w.u16(static_cast<std::uint16_t>(entries.size()));
  for (const MessageEntry& e : entries) {
    w.u64(e.seq);
    w.u32(e.origin);
    w.u8(e.flags);
    w.u16(e.frag_index);
    w.u16(e.frag_count);
    w.u16(static_cast<std::uint16_t>(e.payload.size()));
    w.raw(e.payload);
  }
}

}  // namespace

Bytes serialize_regular(const PacketHeader& header, const std::vector<MessageEntry>& entries) {
  ByteWriter w(kPacketHeaderSize + kMaxBody);
  write_regular(w, header, entries);
  return finalize(std::move(w));
}

PacketBuffer serialize_regular(BufferPool& pool, const PacketHeader& header,
                               const std::vector<MessageEntry>& entries) {
  return serialize_pooled(pool, kPacketHeaderSize + kMaxBody,
                          [&](ByteWriter& w) { write_regular(w, header, entries); });
}

Bytes serialize_retransmit(const PacketHeader& header, const std::vector<MessageEntry>& entries) {
  ByteWriter w(kPacketHeaderSize + kMaxBody);
  write_retransmit(w, header, entries);
  return finalize(std::move(w));
}

PacketBuffer serialize_retransmit(BufferPool& pool, const PacketHeader& header,
                                  const std::vector<MessageEntry>& entries) {
  return serialize_pooled(pool, kPacketHeaderSize + kMaxBody,
                          [&](ByteWriter& w) { write_retransmit(w, header, entries); });
}

Result<RegularPacket> parse_messages(BytesView packet) {
  ByteReader r(packet);
  auto header = read_header(r, packet);
  if (!header) return header.status();
  RegularPacket out;
  out.header = header.value();

  const bool retransmit = out.header.type == PacketType::kRetransmit;
  if (out.header.type != PacketType::kRegular && !retransmit) {
    return Status{StatusCode::kMalformedPacket, "not a message packet"};
  }

  SeqNum first_seq = 0;
  if (!retransmit) {
    auto fs = r.u64();
    if (!fs) return fs.status();
    first_seq = fs.value();
  }
  auto count = r.u16();
  if (!count) return count.status();
  if (count.value() == 0) {
    return Status{StatusCode::kMalformedPacket, "empty message packet"};
  }
  out.entries.reserve(count.value());
  for (std::uint16_t i = 0; i < count.value(); ++i) {
    MessageEntry e;
    if (retransmit) {
      auto seq = r.u64();
      auto origin = r.u32();
      if (!seq || !origin) return Status{StatusCode::kMalformedPacket, "truncated entry"};
      e.seq = seq.value();
      e.origin = origin.value();
    } else {
      e.seq = first_seq + i;
      e.origin = out.header.sender;
    }
    auto flags = r.u8();
    auto fi = r.u16();
    auto fc = r.u16();
    auto len = r.u16();
    if (!flags || !fi || !fc || !len) {
      return Status{StatusCode::kMalformedPacket, "truncated entry"};
    }
    e.flags = flags.value();
    e.frag_index = fi.value();
    e.frag_count = fc.value();
    if (e.frag_count == 0 || e.frag_index >= e.frag_count) {
      return Status{StatusCode::kMalformedPacket, "bad fragment indices"};
    }
    auto payload = r.raw(len.value());
    if (!payload) return payload.status();
    e.payload.assign(payload.value().begin(), payload.value().end());
    out.entries.push_back(std::move(e));
  }
  return out;
}

namespace {
void write_token(ByteWriter& w, const Token& token) {
  write_header(w, PacketType::kToken, token.sender, token.ring);
  w.u64(token.seq);
  w.u64(token.aru);
  w.u32(token.aru_id);
  w.u64(token.rotation);
  w.u32(token.fcc);
  w.u32(token.backlog);
  w.u8(token.install ? 1 : 0);
  w.u16(static_cast<std::uint16_t>(token.rtr.size()));
  for (SeqNum s : token.rtr) w.u64(s);
}
}  // namespace

Bytes serialize_token(const Token& token) {
  ByteWriter w(kPacketHeaderSize + 64 + token.rtr.size() * 8);
  write_token(w, token);
  return finalize(std::move(w));
}

PacketBuffer serialize_token(BufferPool& pool, const Token& token) {
  return serialize_pooled(pool, kPacketHeaderSize + 64 + token.rtr.size() * 8,
                          [&](ByteWriter& w) { write_token(w, token); });
}

Result<Token> parse_token(BytesView packet) {
  ByteReader r(packet);
  auto header = read_header(r, packet);
  if (!header) return header.status();
  if (header.value().type != PacketType::kToken) {
    return Status{StatusCode::kMalformedPacket, "not a token"};
  }
  Token t;
  t.ring = header.value().ring;
  t.sender = header.value().sender;
  auto seq = r.u64();
  auto aru = r.u64();
  auto aru_id = r.u32();
  auto rotation = r.u64();
  auto fcc = r.u32();
  auto backlog = r.u32();
  auto install = r.u8();
  auto rtr_count = r.u16();
  if (!seq || !aru || !aru_id || !rotation || !fcc || !backlog || !install ||
      !rtr_count) {
    return Status{StatusCode::kMalformedPacket, "truncated token"};
  }
  t.seq = seq.value();
  t.aru = aru.value();
  t.aru_id = aru_id.value();
  t.rotation = rotation.value();
  t.fcc = fcc.value();
  t.backlog = backlog.value();
  t.install = install.value() != 0;
  t.rtr.reserve(rtr_count.value());
  for (std::uint16_t i = 0; i < rtr_count.value(); ++i) {
    auto s = r.u64();
    if (!s) return s.status();
    t.rtr.push_back(s.value());
  }
  return t;
}

namespace {
void write_join(ByteWriter& w, const JoinMessage& join) {
  // Join messages are not bound to a ring; carry a null ring id.
  write_header(w, PacketType::kJoin, join.sender, RingId{});
  w.u64(join.ring_seq);
  w.u16(static_cast<std::uint16_t>(join.proc_set.size()));
  for (NodeId n : join.proc_set) w.u32(n);
  w.u16(static_cast<std::uint16_t>(join.fail_set.size()));
  for (NodeId n : join.fail_set) w.u32(n);
}
}  // namespace

Bytes serialize_join(const JoinMessage& join) {
  ByteWriter w(kPacketHeaderSize + 16 + (join.proc_set.size() + join.fail_set.size()) * 4);
  write_join(w, join);
  return finalize(std::move(w));
}

PacketBuffer serialize_join(BufferPool& pool, const JoinMessage& join) {
  return serialize_pooled(
      pool, kPacketHeaderSize + 16 + (join.proc_set.size() + join.fail_set.size()) * 4,
      [&](ByteWriter& w) { write_join(w, join); });
}

Result<JoinMessage> parse_join(BytesView packet) {
  ByteReader r(packet);
  auto header = read_header(r, packet);
  if (!header) return header.status();
  if (header.value().type != PacketType::kJoin) {
    return Status{StatusCode::kMalformedPacket, "not a join message"};
  }
  JoinMessage j;
  j.sender = header.value().sender;
  auto ring_seq = r.u64();
  if (!ring_seq) return ring_seq.status();
  j.ring_seq = ring_seq.value();
  auto np = r.u16();
  if (!np) return np.status();
  for (std::uint16_t i = 0; i < np.value(); ++i) {
    auto n = r.u32();
    if (!n) return n.status();
    j.proc_set.push_back(n.value());
  }
  auto nf = r.u16();
  if (!nf) return nf.status();
  for (std::uint16_t i = 0; i < nf.value(); ++i) {
    auto n = r.u32();
    if (!n) return n.status();
    j.fail_set.push_back(n.value());
  }
  return j;
}

namespace {
void write_commit(ByteWriter& w, const CommitToken& commit) {
  write_header(w, PacketType::kCommitToken, commit.sender, commit.new_ring);
  w.u32(commit.hop);
  w.u16(static_cast<std::uint16_t>(commit.members.size()));
  for (const CommitMember& m : commit.members) {
    w.u32(m.node);
    w.u32(m.old_ring.representative);
    w.u64(m.old_ring.ring_seq);
    w.u64(m.my_aru);
    w.u64(m.high_seq);
    w.u8(m.filled ? 1 : 0);
  }
}
}  // namespace

Bytes serialize_commit(const CommitToken& commit) {
  ByteWriter w(kPacketHeaderSize + 8 + commit.members.size() * 33);
  write_commit(w, commit);
  return finalize(std::move(w));
}

PacketBuffer serialize_commit(BufferPool& pool, const CommitToken& commit) {
  return serialize_pooled(pool, kPacketHeaderSize + 8 + commit.members.size() * 33,
                          [&](ByteWriter& w) { write_commit(w, commit); });
}

Result<CommitToken> parse_commit(BytesView packet) {
  ByteReader r(packet);
  auto header = read_header(r, packet);
  if (!header) return header.status();
  if (header.value().type != PacketType::kCommitToken) {
    return Status{StatusCode::kMalformedPacket, "not a commit token"};
  }
  CommitToken c;
  c.new_ring = header.value().ring;
  c.sender = header.value().sender;
  auto hop = r.u32();
  auto count = r.u16();
  if (!hop || !count) return Status{StatusCode::kMalformedPacket, "truncated commit token"};
  c.hop = hop.value();
  for (std::uint16_t i = 0; i < count.value(); ++i) {
    CommitMember m;
    auto node = r.u32();
    auto rep = r.u32();
    auto rseq = r.u64();
    auto aru = r.u64();
    auto high = r.u64();
    auto filled = r.u8();
    if (!node || !rep || !rseq || !aru || !high || !filled) {
      return Status{StatusCode::kMalformedPacket, "truncated commit member"};
    }
    m.node = node.value();
    m.old_ring = RingId{rep.value(), rseq.value()};
    m.my_aru = aru.value();
    m.high_seq = high.value();
    m.filled = filled.value() != 0;
    c.members.push_back(m);
  }
  return c;
}

namespace {
void write_announce(ByteWriter& w, const Announce& announce) {
  write_header(w, PacketType::kAnnounce, announce.sender, announce.ring);
  w.u32(announce.member_count);
}
}  // namespace

Bytes serialize_announce(const Announce& announce) {
  ByteWriter w(kPacketHeaderSize + 4);
  write_announce(w, announce);
  return finalize(std::move(w));
}

PacketBuffer serialize_announce(BufferPool& pool, const Announce& announce) {
  return serialize_pooled(pool, kPacketHeaderSize + 4,
                          [&](ByteWriter& w) { write_announce(w, announce); });
}

Result<Announce> parse_announce(BytesView packet) {
  ByteReader r(packet);
  auto header = read_header(r, packet);
  if (!header) return header.status();
  if (header.value().type != PacketType::kAnnounce) {
    return Status{StatusCode::kMalformedPacket, "not an announcement"};
  }
  Announce a;
  a.sender = header.value().sender;
  a.ring = header.value().ring;
  auto count = r.u32();
  if (!count) return count.status();
  a.member_count = count.value();
  return a;
}

Bytes serialize_recovered(const RecoveredMessage& rec) {
  ByteWriter w(32 + rec.original.payload.size());
  w.u32(rec.old_ring.representative);
  w.u64(rec.old_ring.ring_seq);
  w.u64(rec.original.seq);
  w.u32(rec.original.origin);
  w.u8(rec.original.flags);
  w.u16(rec.original.frag_index);
  w.u16(rec.original.frag_count);
  w.u16(static_cast<std::uint16_t>(rec.original.payload.size()));
  w.raw(rec.original.payload);
  // Not a packet: this is the inner payload of a recovery MessageEntry, so
  // it has no header/CRC of its own (the carrying packet is checksummed).
  return std::move(w).take();
}

Result<RecoveredMessage> parse_recovered(BytesView payload) {
  ByteReader r(payload);
  RecoveredMessage rec;
  auto rep = r.u32();
  auto rseq = r.u64();
  auto seq = r.u64();
  auto origin = r.u32();
  auto flags = r.u8();
  auto fi = r.u16();
  auto fc = r.u16();
  auto len = r.u16();
  if (!rep || !rseq || !seq || !origin || !flags || !fi || !fc || !len) {
    return Status{StatusCode::kMalformedPacket, "truncated recovered message"};
  }
  rec.old_ring = RingId{rep.value(), rseq.value()};
  rec.original.seq = seq.value();
  rec.original.origin = origin.value();
  rec.original.flags = flags.value() & ~MessageEntry::kFlagRecovered;
  rec.original.frag_index = fi.value();
  rec.original.frag_count = fc.value();
  auto body = r.raw(len.value());
  if (!body) return body.status();
  rec.original.payload.assign(body.value().begin(), body.value().end());
  return rec;
}

Result<PacketInfo> peek(BytesView packet) {
  ByteReader r(packet);
  auto header = read_header(r, packet);
  if (!header) return header.status();
  PacketInfo info;
  info.type = header.value().type;
  info.sender = header.value().sender;
  info.ring = header.value().ring;
  if (info.type == PacketType::kToken) {
    auto seq = r.u64();
    auto aru = r.u64();
    auto aru_id = r.u32();
    auto rotation = r.u64();
    if (!seq || !aru || !aru_id || !rotation) {
      return Status{StatusCode::kMalformedPacket, "truncated token"};
    }
    info.token_seq = seq.value();
    info.token_rotation = rotation.value();
  }
  return info;
}

}  // namespace totem::srp::wire

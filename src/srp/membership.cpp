// Totem SRP membership: the Gather / Commit / Recovery state machine.
//
// Gather:   nodes broadcast join messages carrying their proc/fail sets and
//           merge what they hear until consensus (everyone alive agrees on
//           both sets). Silent nodes are moved to the fail set after a
//           timeout.
// Commit:   the representative (lowest id) circulates a commit token around
//           the proposed new ring twice: the first pass collects every
//           member's old-ring position (ring id, aru, highest seq), the
//           second pass distributes the collected picture.
// Recovery: the new ring runs the regular token protocol, but instead of new
//           application messages the members rebroadcast (encapsulated)
//           old-ring messages that some member may be missing. Old-ring
//           messages are delivered in old-ring order. When the recovery
//           backlog drains and the new ring's aru catches up with its seq,
//           the ring is installed and normal operation resumes.
//
// Deviations from the TOCS '95 protocol are documented in DESIGN.md §6.
#include <algorithm>
#include <cassert>

#include "common/log.h"
#include "srp/single_ring.h"

namespace totem::srp {

void SingleRing::start_gather(const char* reason) {
  TLOG_INFO << "node " << config_.node_id << " gather (" << reason << ") from state "
            << to_string(state_);
  if (state_ == State::kRecovery) {
    // Double failure: the recovery ring itself failed. Abandon the old-ring
    // store (EVS would deliver the remainder in a transitional
    // configuration; we count it as lost — DESIGN.md §6).
    for (SeqNum s = old_delivered_up_to_ + 1; s <= old_high_target_; ++s) {
      if (old_store_.count(s) != 0) ++stats_.old_ring_messages_lost;
    }
    old_store_.clear();
    store_.clear();
    my_retransmit_plan_.clear();
    old_seq_on_new_ring_.clear();
    // Partial fragments belong to the seq space just abandoned; a later
    // same-origin fragment on the new ring must not be concatenated onto
    // them.
    frag_.clear();
    my_aru_ = 0;
    high_seq_seen_ = 0;
    delivered_up_to_ = 0;
    prev_rotation_aru_ = 0;
    safe_up_to_ = 0;
    // A per-node pseudo ring id so the aborted recovery ring can never be
    // confused with a committed one (real rings advance ring_seq by 4).
    ring_id_ = RingId{config_.node_id, highest_ring_seq_ + 1};
    sync_trace_ring();
    remember_ring(ring_id_);
  }

  // Reformation span: opened here, closed by install_ring's kReformationEnd
  // (the trace merger renders the pair as one Perfetto duration span).
  trace_event(TraceKind::kReformationBegin, view_number_, ring_id_.ring_seq);
  state_ = State::kGather;
  trace_event(TraceKind::kStateChange, static_cast<std::uint64_t>(State::kGather));
  notify_state();
  gather_start_ = timers_.now();
  // The seq space is about to change: pending send->deliver latency
  // samples and the token inter-arrival baseline are both meaningless now.
  // (send_times_ survives: it tracks messages still in send_queue_, which
  // will be broadcast on the new ring.)
  inflight_sends_.clear();
  last_token_arrival_.reset();
  consensus_rounds_ = 0;
  cancel_operational_timers();
  stop_commit_retention();
  commit_timer_.cancel();
  commit_forwards_ = 0;
  joins_.clear();
  proc_set_.clear();
  proc_set_.insert(config_.node_id);
  fail_set_.clear();
  highest_ring_seq_ = std::max(highest_ring_seq_, ring_id_.ring_seq);

  send_join();

  // Grace period: give join messages two broadcast intervals to propagate
  // before a lone node concludes it is alone.
  timers_.schedule(config_.join_interval * 2 + Duration{1},
                   [this] { check_consensus(); });
  consensus_timer_.cancel();
  consensus_timer_ =
      timers_.schedule(config_.consensus_timeout, [this] { on_consensus_timeout(); });
}

void SingleRing::send_join() {
  if (state_ != State::kGather) return;
  wire::JoinMessage j;
  j.sender = config_.node_id;
  j.proc_set.assign(proc_set_.begin(), proc_set_.end());
  j.fail_set.assign(fail_set_.begin(), fail_set_.end());
  j.ring_seq = highest_ring_seq_;
  replicator_.broadcast_message(wire::serialize_join(pool_, j));

  join_timer_.cancel();
  join_timer_ = timers_.schedule(config_.join_interval, [this] { send_join(); });
}

void SingleRing::on_join(const wire::JoinMessage& join) {
  highest_ring_seq_ = std::max(highest_ring_seq_, join.ring_seq);
  if (join.sender == config_.node_id) return;

  if (state_ == State::kOperational) {
    const bool is_member =
        std::find(members_.begin(), members_.end(), join.sender) != members_.end();
    if (is_member && join.ring_seq < ring_id_.ring_seq) {
      // Stale duplicate from the gather that formed the current ring.
      ++stats_.stale_packets;
      return;
    }
    // Either an outsider wants in, or a member fell off the ring.
    start_gather(is_member ? "member rejoin" : "foreign join");
  } else if (state_ == State::kCommit || state_ == State::kRecovery) {
    // While a ring is forming, members still in Gather keep rebroadcasting
    // joins that describe the consensus we already committed — those carry
    // no new information and must NOT abort the formation (otherwise two
    // sides of a partition livelock, re-forming forever). Only a join from
    // a node that has SEEN this formation (its ring_seq caught up with the
    // forming ring's) signals that a member gave up and we must start over.
    // highest_ring_seq_ was advanced to the forming ring's seq at commit.
    if (join.ring_seq >= highest_ring_seq_) {
      start_gather("join during formation");
    } else {
      return;
    }
  }

  // state_ == kGather here (possibly just entered above): merge.
  joins_[join.sender] = join;
  bool changed = proc_set_.insert(join.sender).second;
  for (NodeId n : join.proc_set) changed |= proc_set_.insert(n).second;
  for (NodeId n : join.fail_set) {
    if (n == config_.node_id) continue;  // we know we are alive
    changed |= fail_set_.insert(n).second;
  }
  if (changed) {
    consensus_rounds_ = 0;  // the picture changed; give convergence fresh time
    send_join();
  }
  check_consensus();
}

void SingleRing::check_consensus() {
  if (state_ != State::kGather) return;
  if (timers_.now() < gather_start_ + config_.join_interval * 2) return;

  std::vector<NodeId> alive;
  for (NodeId n : proc_set_) {
    if (fail_set_.count(n) == 0) alive.push_back(n);
  }
  if (alive.empty()) alive.push_back(config_.node_id);

  for (NodeId n : alive) {
    if (n == config_.node_id) continue;
    auto it = joins_.find(n);
    if (it == joins_.end()) return;  // no join from n yet
    const auto& j = it->second;
    if (std::set<NodeId>(j.proc_set.begin(), j.proc_set.end()) != proc_set_) return;
    if (std::set<NodeId>(j.fail_set.begin(), j.fail_set.end()) != fail_set_) return;
  }

  // Consensus. The representative (lowest id) creates the commit token.
  if (alive.front() != config_.node_id) {
    // Wait for the representative's commit token; the consensus timer stays
    // armed as a backstop in case it never arrives.
    return;
  }

  wire::CommitToken c;
  c.new_ring = RingId{config_.node_id, highest_ring_seq_ + 4};
  c.sender = config_.node_id;
  for (NodeId n : alive) {
    wire::CommitMember m;
    m.node = n;
    c.members.push_back(m);
  }
  auto& mine = c.members.front();
  assert(mine.node == config_.node_id);
  mine.old_ring = ring_id_;
  mine.my_aru = my_aru_;
  mine.high_seq = high_seq_seen_;
  mine.filled = true;

  state_ = State::kCommit;
  trace_event(TraceKind::kStateChange, static_cast<std::uint64_t>(State::kCommit));
  notify_state();
  join_timer_.cancel();
  consensus_timer_.cancel();
  commit_forwards_ = 0;
  highest_ring_seq_ = c.new_ring.ring_seq;

  TLOG_INFO << "node " << config_.node_id << " representative: committing ring "
            << to_string(c.new_ring) << " with " << c.members.size() << " members";

  if (c.members.size() == 1) {
    // Singleton: no network round needed.
    enter_recovery(c);
    begin_recovery_ring();
    return;
  }

  c.hop = 1;
  ++commit_forwards_;
  std::vector<NodeId> order;
  for (const auto& m : c.members) order.push_back(m.node);
  {
    const NodeId next = successor_in(order);
    PacketBuffer packet = wire::serialize_commit(pool_, c);
    replicator_.send_token(next, packet);
    retain_commit(next, std::move(packet));
  }
  commit_timer_.cancel();
  commit_timer_ = timers_.schedule(config_.commit_timeout, [this] {
    if (state_ == State::kCommit) start_gather("commit timeout");
  });
}

void SingleRing::on_consensus_timeout() {
  if (state_ != State::kGather) return;
  ++consensus_rounds_;
  // Move nodes that never said anything into the fail set and try again.
  bool changed = false;
  for (NodeId n : proc_set_) {
    if (n == config_.node_id) continue;
    if (joins_.count(n) == 0 && fail_set_.insert(n).second) changed = true;
  }
  if (consensus_rounds_ >= 2) {
    // Second round without consensus: nodes whose join state never converged
    // to ours (e.g. a node that can send but not receive) will never agree;
    // exclude them so the remainder can form a ring.
    for (NodeId n : proc_set_) {
      if (n == config_.node_id || fail_set_.count(n) != 0) continue;
      auto it = joins_.find(n);
      if (it == joins_.end()) continue;
      const auto& j = it->second;
      const bool agrees =
          std::set<NodeId>(j.proc_set.begin(), j.proc_set.end()) == proc_set_ &&
          std::set<NodeId>(j.fail_set.begin(), j.fail_set.end()) == fail_set_;
      if (!agrees && fail_set_.insert(n).second) changed = true;
    }
  }
  if (changed) {
    TLOG_INFO << "node " << config_.node_id
              << " consensus timeout; failing non-converging nodes";
    send_join();
  }
  check_consensus();
  if (state_ == State::kGather) {
    consensus_timer_ =
        timers_.schedule(config_.consensus_timeout, [this] { on_consensus_timeout(); });
  }
}

void SingleRing::on_commit_token(wire::CommitToken commit) {
  if (state_ == State::kOperational) {
    ++stats_.stale_packets;
    return;
  }
  if (state_ == State::kRecovery) {
    // Duplicate (e.g. one copy per network under active replication) of the
    // commit token we already acted on.
    return;
  }

  auto self = std::find_if(commit.members.begin(), commit.members.end(),
                           [&](const wire::CommitMember& m) { return m.node == config_.node_id; });
  if (self == commit.members.end()) {
    // A ring is forming without us; keep gathering (our joins will
    // eventually trigger a reconfiguration).
    return;
  }
  const std::size_t n = commit.members.size();

  if (commit.hop < n) {
    // First pass: contribute our old-ring position.
    if (state_ != State::kGather) return;  // duplicate first-pass copy
    self->old_ring = ring_id_;
    self->my_aru = my_aru_;
    self->high_seq = high_seq_seen_;
    self->filled = true;
    state_ = State::kCommit;
    trace_event(TraceKind::kStateChange, static_cast<std::uint64_t>(State::kCommit));
    notify_state();
    join_timer_.cancel();
    consensus_timer_.cancel();
    commit_forwards_ = 0;
    highest_ring_seq_ = std::max(highest_ring_seq_, commit.new_ring.ring_seq);

    commit.sender = config_.node_id;
    ++commit.hop;
    ++commit_forwards_;
    std::vector<NodeId> order;
    for (const auto& m : commit.members) order.push_back(m.node);
    {
      const NodeId next = successor_in(order);
      PacketBuffer packet = wire::serialize_commit(pool_, commit);
      replicator_.send_token(next, packet);
      retain_commit(next, std::move(packet));
    }
    commit_timer_.cancel();
    commit_timer_ = timers_.schedule(config_.commit_timeout, [this] {
      if (state_ == State::kCommit) start_gather("commit timeout");
    });
    return;
  }

  // Second pass: the full membership picture.
  if (state_ != State::kCommit) return;
  const bool complete = std::all_of(commit.members.begin(), commit.members.end(),
                                    [](const wire::CommitMember& m) { return m.filled; });
  if (!complete) {
    start_gather("incomplete commit token");
    return;
  }

  const bool is_new_rep = commit.new_ring.representative == config_.node_id;
  const wire::CommitToken snapshot = commit;
  enter_recovery(snapshot);

  if (commit_forwards_ < 2) {
    commit.sender = config_.node_id;
    ++commit.hop;
    ++commit_forwards_;
    std::vector<NodeId> order;
    for (const auto& m : commit.members) order.push_back(m.node);
    const NodeId next = successor_in(order);
    PacketBuffer packet = wire::serialize_commit(pool_, commit);
    replicator_.send_token(next, packet);
    retain_commit(next, std::move(packet));
  }
  if (is_new_rep) {
    begin_recovery_ring();
  }
}

void SingleRing::enter_recovery(const wire::CommitToken& commit) {
  TLOG_INFO << "node " << config_.node_id << " entering recovery for ring "
            << to_string(commit.new_ring);
  state_ = State::kRecovery;
  trace_event(TraceKind::kStateChange, static_cast<std::uint64_t>(State::kRecovery));
  commit_timer_.cancel();

  old_ring_id_ = ring_id_;
  ring_id_ = commit.new_ring;
  sync_trace_ring();
  remember_ring(ring_id_);
  notify_state();
  members_.clear();
  for (const auto& m : commit.members) members_.push_back(m.node);
  std::sort(members_.begin(), members_.end());

  // Recovery targets for OUR old ring: the span (low, high] where low is the
  // lowest aru and high the highest seq any co-member of that ring saw.
  SeqNum low = my_aru_;
  SeqNum high = high_seq_seen_;
  for (const auto& m : commit.members) {
    if (m.old_ring != old_ring_id_) continue;
    low = std::min(low, m.my_aru);
    high = std::max(high, m.high_seq);
  }
  old_high_target_ = high;
  old_store_ = std::move(store_);
  store_.clear();
  old_delivered_up_to_ = delivered_up_to_;

  my_retransmit_plan_.clear();
  for (const auto& [s, e] : old_store_) {
    // Entries that are themselves recovery rebroadcasts are history: every
    // node that presents this ring as its old ring installed it, and
    // install_ring() resolved their content then. Re-encapsulating them
    // would double-wrap them and deliver raw bytes downstream.
    if (s > low && !e.is_recovered()) my_retransmit_plan_.push_back(s);
  }
  old_seq_on_new_ring_.clear();
  recovery_token_visits_ = 0;

  // Fresh counters for the new ring's seq space.
  my_aru_ = 0;
  high_seq_seen_ = 0;
  delivered_up_to_ = 0;
  prev_rotation_aru_ = 0;
  safe_up_to_ = 0;
  my_last_fcc_contribution_ = 0;
  my_last_backlog_contribution_ = 0;
  last_token_instance_.reset();
  retention_active_ = false;

  arm_token_loss_timer();  // recovery-ring failure => re-gather
}

void SingleRing::begin_recovery_ring() {
  wire::Token t;
  t.ring = ring_id_;
  t.sender = config_.node_id;
  PacketBuffer b = wire::serialize_token(pool_, t);
  timers_.schedule(Duration{0}, [this, b] { on_token_packet(b, 0); });
}

std::uint32_t SingleRing::broadcast_recovery_messages(wire::Token& token) {
  while (!my_retransmit_plan_.empty() &&
         old_seq_on_new_ring_.count(my_retransmit_plan_.front()) != 0) {
    my_retransmit_plan_.pop_front();  // someone else already rebroadcast it
  }
  const std::uint32_t window_remaining =
      config_.window_size > token.fcc ? config_.window_size - token.fcc : 0;
  const std::uint32_t allowance =
      std::min({config_.max_messages_per_visit, window_remaining,
                static_cast<std::uint32_t>(my_retransmit_plan_.size())});
  if (allowance == 0) return 0;

  std::vector<wire::MessageEntry> batch;
  batch.reserve(allowance);
  std::uint32_t produced = 0;
  while (produced < allowance && !my_retransmit_plan_.empty()) {
    const SeqNum old_seq = my_retransmit_plan_.front();
    my_retransmit_plan_.pop_front();
    if (old_seq_on_new_ring_.count(old_seq) != 0) continue;
    auto it = old_store_.find(old_seq);
    if (it == old_store_.end()) continue;

    wire::RecoveredMessage rec{old_ring_id_, it->second};
    wire::MessageEntry e;
    e.seq = ++token.seq;
    e.origin = config_.node_id;
    e.flags = wire::MessageEntry::kFlagRecovered;
    e.payload = wire::serialize_recovered(rec);
    old_seq_on_new_ring_.insert(old_seq);
    batch.push_back(std::move(e));
    ++produced;
  }
  if (batch.empty()) return 0;
  for (const auto& e : batch) {
    high_seq_seen_ = std::max(high_seq_seen_, e.seq);
    store_.emplace(e.seq, e);
  }
  while (store_.count(my_aru_ + 1) != 0) ++my_aru_;
  stats_.messages_broadcast += produced;
  send_packed_regular(std::move(batch));
  return produced;
}

void SingleRing::accept_recovered_entry(const wire::MessageEntry& entry) {
  auto rec = wire::parse_recovered(entry.payload);
  if (!rec) {
    ++stats_.malformed_packets;
    return;
  }
  const wire::RecoveredMessage& r = rec.value();
  if (r.old_ring != old_ring_id_) {
    // A message from another partition's old ring. We were not a member of
    // that configuration, so we do not deliver it (its co-members do).
    return;
  }
  old_seq_on_new_ring_.insert(r.original.seq);
  if (r.original.seq <= old_delivered_up_to_ || old_store_.count(r.original.seq) != 0) {
    return;  // already have it
  }
  ++stats_.old_ring_messages_recovered;
  old_store_.emplace(r.original.seq, r.original);
}

void SingleRing::deliver_old_ring_contiguous() {
  while (old_delivered_up_to_ < old_high_target_) {
    auto it = old_store_.find(old_delivered_up_to_ + 1);
    if (it == old_store_.end()) return;
    ++old_delivered_up_to_;
    // An old-ring entry that is itself a recovery rebroadcast was resolved
    // when the old ring installed; only its seq slot matters here.
    if (it->second.is_recovered()) continue;
    deliver_entry(it->second, /*recovered=*/true, old_ring_id_);
  }
}

void SingleRing::retain_commit(NodeId dest, PacketBuffer packet) {
  retained_commit_ = std::move(packet);
  retained_commit_dest_ = dest;
  commit_retention_active_ = true;
  commit_retention_timer_.cancel();
  commit_retention_timer_ = timers_.schedule(config_.token_retention_interval,
                                             [this] { on_commit_retention_fire(); });
}

void SingleRing::on_commit_retention_fire() {
  if (!commit_retention_active_) return;
  // Keep nudging while the formation can still be stuck on a lost commit
  // token: in Commit always; in Recovery until the first recovery-ring
  // token proves our successor progressed.
  if (state_ != State::kCommit &&
      !(state_ == State::kRecovery && !last_token_instance_)) {
    commit_retention_active_ = false;
    return;
  }
  replicator_.send_token(retained_commit_dest_, retained_commit_);
  commit_retention_timer_ = timers_.schedule(config_.token_retention_interval,
                                             [this] { on_commit_retention_fire(); });
}

void SingleRing::stop_commit_retention() {
  commit_retention_active_ = false;
  commit_retention_timer_.cancel();
}

void SingleRing::install_ring() {
  // Deliver whatever old-ring messages we managed to recover; count
  // unrecoverable ones (originator crashed before anyone received them).
  while (old_delivered_up_to_ < old_high_target_) {
    ++old_delivered_up_to_;
    auto it = old_store_.find(old_delivered_up_to_);
    if (it == old_store_.end()) {
      ++stats_.old_ring_messages_lost;
      // The lost seq may have carried a fragment: any partial reassembly is
      // now incompletable, and a later same-origin fragment must resync on
      // its fragment 0 rather than extend a stale buffer. At install every
      // surviving member holds the identical old-ring coverage (the plans
      // drained and the recovery aru caught its seq), so all of them skip —
      // and reset — at the same positions.
      frag_.clear();
      continue;
    }
    // Resolved at the old ring's own install; see deliver_old_ring_contiguous.
    if (it->second.is_recovered()) continue;
    deliver_entry(it->second, /*recovered=*/true, old_ring_id_);
  }
  old_store_.clear();
  old_seq_on_new_ring_.clear();
  stop_commit_retention();

  state_ = State::kOperational;
  trace_event(TraceKind::kStateChange, static_cast<std::uint64_t>(State::kOperational));
  notify_state();
  trace_event(TraceKind::kMembershipInstalled, ring_id_.representative, ring_id_.ring_seq);
  trace_event(TraceKind::kReformationEnd, view_number_, ring_id_.ring_seq);
  ++stats_.membership_changes;
  if (reformation_hist_ && gather_start_ != TimePoint{}) {
    // Gather -> install: the paper's reformation cost, per affected node.
    reformation_hist_->record(
        static_cast<std::uint64_t>((timers_.now() - gather_start_).count()));
  }
  arm_announce_timer();
  TLOG_INFO << "node " << config_.node_id << " installed ring " << to_string(ring_id_)
            << " with " << members_.size() << " members";
  deliver_membership_view();
}

}  // namespace totem::srp

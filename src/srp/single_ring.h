// Totem Single Ring Protocol (Amir, Moser, Melliar-Smith, Agarwal,
// Ciarfella — ACM TOCS 1995; summarized in §2 of the RRP paper).
//
// A logical token-passing ring over a broadcast LAN. The token carries the
// global message sequence number, the all-received-up-to (aru) watermark,
// retransmission requests and flow-control state. A node may broadcast only
// while holding the token, which gives reliable totally-ordered delivery and
// lets the ring drive an Ethernet far beyond its usual saturation point.
//
// This implementation talks to the network exclusively through
// rrp::Replicator, so the identical protocol code runs unreplicated
// (NullReplicator) or over N redundant networks (active/passive/
// active-passive replicators) — which is precisely the layering the RRP
// paper describes.
//
// Membership: the Gather / Commit / Recovery state machine of the Totem SRP
// re-forms the ring after token loss, node crash, join, or partition heal,
// and recovers old-ring messages so that delivery remains totally ordered
// across configuration changes. (Simplifications vs the TOCS paper are
// listed in DESIGN.md §6.)
#pragma once

#include <deque>
#include <functional>
#include <map>
#include <optional>
#include <set>
#include <vector>

#include "common/bytes.h"
#include "common/metrics.h"
#include "common/packet_buffer.h"
#include "common/status.h"
#include "common/timer_service.h"
#include "common/trace.h"
#include "common/types.h"
#include "net/transport.h"
#include "rrp/replicator.h"
#include "srp/config.h"
#include "srp/wire.h"

namespace totem::srp {

/// A message handed to the application in agreed (total) order.
struct DeliveredMessage {
  NodeId origin = kInvalidNode;
  SeqNum seq = 0;          // global sequence number on `ring`'s seq space
  BytesView payload;       // valid only for the duration of the callback
  bool recovered = false;  // delivered through the ring-recovery path
  RingId ring;             // ring whose seq space assigned `seq`
};

struct MembershipView {
  RingId ring;
  std::vector<NodeId> members;  // sorted
  std::uint64_t view_number = 0;
};

class SingleRing {
 public:
  enum class State { kOperational, kGather, kCommit, kRecovery };

  using DeliverHandler = std::function<void(const DeliveredMessage&)>;
  using MembershipHandler = std::function<void(const MembershipView&)>;
  /// Safe-delivery watermark (Totem SRP's stronger guarantee): invoked when
  /// it becomes known that EVERY ring member has received all messages up
  /// to `safe_seq` of the current ring. A message at or below the watermark
  /// survives any single-node crash. Seq numbers restart per ring; pair the
  /// watermark with the membership view.
  using SafeHandler = std::function<void(SeqNum safe_seq)>;
  /// Protocol-state transitions (Operational/Gather/Commit/Recovery) with
  /// the ring id current at the moment of the transition. Used by the fault
  /// campaign harness to trigger faults at a chosen protocol state.
  using StateObserver = std::function<void(State state, const RingId& ring)>;

  SingleRing(TimerService& timers, rrp::Replicator& replicator, Config config,
             net::CpuCharger* cpu = nullptr);

  SingleRing(const SingleRing&) = delete;
  SingleRing& operator=(const SingleRing&) = delete;

  void set_deliver_handler(DeliverHandler h) { deliver_ = std::move(h); }
  void set_membership_handler(MembershipHandler h) { membership_ = std::move(h); }
  /// Current handlers — lets a wrapper (api::GroupBus) CHAIN onto handlers
  /// an earlier layer installed instead of silently replacing them.
  [[nodiscard]] const DeliverHandler& deliver_handler() const { return deliver_; }
  [[nodiscard]] const MembershipHandler& membership_handler() const {
    return membership_;
  }
  void set_safe_watermark_handler(SafeHandler h) { safe_handler_ = std::move(h); }
  void set_state_observer(StateObserver h) { state_observer_ = std::move(h); }

  /// Wire the upcalls and begin protocol operation. Call after handlers are
  /// set. With assume_initial_ring the representative injects the first
  /// token; otherwise every node starts in Gather.
  void start();

  /// Queue a message for totally-ordered broadcast. Messages larger than
  /// wire::kMaxUnfragmentedPayload are fragmented transparently and
  /// reassembled before delivery. Fails when the send queue is full
  /// (backpressure) — the paper's flow control in action.
  Status send(BytesView payload);

  // ---- introspection ----
  [[nodiscard]] State state() const { return state_; }
  [[nodiscard]] NodeId node_id() const { return config_.node_id; }
  [[nodiscard]] const RingId& ring() const { return ring_id_; }
  [[nodiscard]] const std::vector<NodeId>& members() const { return members_; }
  [[nodiscard]] SeqNum my_aru() const { return my_aru_; }
  [[nodiscard]] std::size_t send_queue_depth() const { return send_queue_.size(); }
  /// Messages currently retained for retransmission (tests/introspection).
  [[nodiscard]] std::size_t store_size() const { return store_.size(); }
  [[nodiscard]] SeqNum delivered_up_to() const { return delivered_up_to_; }
  /// Highest seq known to be held by every ring member (0 until the token
  /// has demonstrated it over two rotations).
  [[nodiscard]] SeqNum safe_up_to() const { return safe_up_to_; }
  /// True while a partially reassembled fragmented message is buffered for
  /// any origin. Fragment state must not survive into a ring whose seq
  /// space lost the remaining fragments.
  [[nodiscard]] bool has_partial_fragments() const { return !frag_.empty(); }

  /// True while this node knows of messages it has not yet received — used
  /// by the passive replicator to hold the token back (paper Fig. 4,
  /// anyMessagesMissing()). `token_seq` is the seq carried by the token
  /// that prompted the question (0 if unknown).
  [[nodiscard]] bool any_messages_missing(SeqNum token_seq) const;

  struct Stats {
    std::uint64_t messages_sent = 0;        // accepted from the application
    std::uint64_t bytes_sent = 0;
    std::uint64_t messages_broadcast = 0;   // entries put on the wire (new)
    std::uint64_t messages_delivered = 0;   // application-visible messages
    std::uint64_t bytes_delivered = 0;
    std::uint64_t duplicates_dropped = 0;
    std::uint64_t retransmissions_sent = 0;
    std::uint64_t retransmit_requests = 0;  // rtr entries we added
    std::uint64_t tokens_processed = 0;
    std::uint64_t duplicate_tokens = 0;
    std::uint64_t token_retention_resends = 0;
    std::uint64_t token_loss_events = 0;
    std::uint64_t stale_packets = 0;        // wrong/old ring
    std::uint64_t malformed_packets = 0;
    std::uint64_t send_queue_rejects = 0;
    std::uint64_t membership_changes = 0;
    std::uint64_t old_ring_messages_recovered = 0;
    std::uint64_t old_ring_messages_lost = 0;
    /// send_times_ fell out of alignment with send_queue_ (audited — the
    /// deques are kept FIFO-aligned across ring transitions, so this should
    /// stay 0). When it fires, the affected message's send→deliver latency
    /// sample is SKIPPED rather than fabricated from now(), which would
    /// silently pollute the histogram with ~0 queue-wait samples.
    std::uint64_t send_time_desync = 0;
  };
  [[nodiscard]] const Stats& stats() const { return stats_; }

  /// Pool backing every packet this ring encodes. Exposed so operators can
  /// read allocation/reuse counters (api::StatsSnapshot).
  [[nodiscard]] BufferPool& buffer_pool() { return pool_; }
  [[nodiscard]] const BufferPool& buffer_pool() const { return pool_; }

 private:
  // ---- wiring from the replicator ----
  void on_message_packet(BytesView packet, NetworkId from);
  void on_token_packet(BytesView packet, NetworkId from);

  // ---- operational protocol ----
  void handle_regular_token(wire::Token token);
  void accept_entry(wire::MessageEntry&& entry);
  void try_deliver();
  void deliver_entry(const wire::MessageEntry& entry, bool recovered, const RingId& ring);
  std::uint32_t service_retransmissions(wire::Token& token);
  std::uint32_t broadcast_new_messages(wire::Token& token);
  std::uint32_t broadcast_recovery_messages(wire::Token& token);
  void update_aru(wire::Token& token);
  void add_retransmit_requests(wire::Token& token);
  void update_flow_control(wire::Token& token, std::uint32_t sent_this_visit);
  void discard_safe_messages(const wire::Token& token);
  void forward_token(wire::Token token);
  void send_packed_regular(std::vector<wire::MessageEntry> entries);
  void send_packed_retransmit(std::vector<wire::MessageEntry> entries);

  // ---- timers ----
  void arm_token_loss_timer();
  void arm_retention_timer();
  void on_retention_fire();
  void cancel_operational_timers();

  // ---- membership (membership.cpp) ----
  void start_gather(const char* reason);
  void send_join();
  void on_join(const wire::JoinMessage& join);
  void check_consensus();
  void on_consensus_timeout();
  void on_commit_token(wire::CommitToken commit);
  void enter_recovery(const wire::CommitToken& commit);
  void begin_recovery_ring();
  void accept_recovered_entry(const wire::MessageEntry& entry);
  void deliver_old_ring_contiguous();
  void install_ring();

  void remember_ring(const RingId& ring);
  [[nodiscard]] bool is_recent_ring(const RingId& ring) const;
  [[nodiscard]] NodeId successor() const;
  [[nodiscard]] NodeId successor_in(const std::vector<NodeId>& ring_order) const;
  [[nodiscard]] bool is_leader() const {
    return !members_.empty() && members_.front() == config_.node_id;
  }
  void charge(Duration cost) {
    if (cpu_ && cost.count() > 0) cpu_->charge(cost);
  }
  void trace_event(TraceKind kind, std::uint64_t a = 0, std::uint64_t b = 0) {
    if (config_.trace) config_.trace->emit(timers_.now(), kind, a, b);
  }
  /// Refresh the flight recorder's ring-seq correlation key; call after
  /// every ring_id_ assignment so subsequent records are stamped with the
  /// seq space they belong to (DESIGN.md §16).
  void sync_trace_ring() {
    if (config_.trace) config_.trace->set_ring_seq(ring_id_.ring_seq);
  }
  void deliver_membership_view();

  TimerService& timers_;
  rrp::Replicator& replicator_;
  Config config_;
  net::CpuCharger* cpu_;

  DeliverHandler deliver_;
  MembershipHandler membership_;
  SafeHandler safe_handler_;
  StateObserver state_observer_;
  void notify_state() {
    if (state_observer_) state_observer_(state_, ring_id_);
  }
  Stats stats_;
  BufferPool pool_;  // every outgoing packet is encoded into a pooled buffer

  // ---- metrics (null when config_.metrics unset; see common/metrics.h) ----
  LatencyHistogram* rotation_hist_ = nullptr;     // srp.token_rotation_us
  LatencyHistogram* delivery_hist_ = nullptr;     // srp.delivery_latency_us
  LatencyHistogram* reformation_hist_ = nullptr;  // srp.reformation_us
  Counter* loss_counter_ = nullptr;               // srp.token_loss_events
  Counter* retention_counter_ = nullptr;          // srp.token_retention_resends
  /// Previous token arrival, for the rotation histogram. Reset across
  /// membership changes so reformation gaps don't pollute rotation time.
  std::optional<TimePoint> last_token_arrival_;
  /// send() timestamps of messages still waiting in send_queue_ (one per
  /// message, FIFO-aligned with the queue; only filled when delivery_hist_
  /// is registered). Alignment audit: send() is the only push (one
  /// timestamp per message, after the message's fragments are queued) and
  /// broadcast_new_messages the only pop (at each message-start entry);
  /// ring transitions preserve send_queue_ untouched, so the deques stay
  /// aligned. Misalignment is counted in Stats::send_time_desync rather
  /// than papered over with a fabricated now() timestamp.
  std::deque<TimePoint> send_times_;
  friend class SingleRingTestPeer;  // white-box regression tests only
  /// Own broadcasts in flight: (seq on the wire, send() time), seq
  /// ascending. Popped in deliver_entry to measure send->deliver latency;
  /// cleared when the seq space changes (start_gather).
  std::deque<std::pair<SeqNum, TimePoint>> inflight_sends_;
  void record_delivery_latency(SeqNum seq);

  State state_ = State::kOperational;
  RingId ring_id_;
  std::vector<NodeId> members_;  // sorted
  std::uint64_t view_number_ = 0;

  // Send path.
  std::deque<wire::MessageEntry> send_queue_;  // seq unassigned until broadcast

  // Receive path (current ring).
  std::map<SeqNum, wire::MessageEntry> store_;  // received & own messages
  SeqNum my_aru_ = 0;                           // highest contiguous seq held
  SeqNum high_seq_seen_ = 0;                    // highest seq seen (msgs+token)
  SeqNum delivered_up_to_ = 0;
  /// Per-origin fragment reassembly. The whole message is identified by its
  /// FIRST fragment (seq and assigning ring) and counts as recovered if any
  /// fragment arrived through the recovery path. Entries exist only while a
  /// message is partially assembled.
  struct FragReassembly {
    Bytes buf;
    std::uint16_t expect = 0;  // next expected fragment index
    SeqNum first_seq = 0;
    RingId first_ring;
    bool recovered = false;
  };
  std::map<NodeId, FragReassembly> frag_;

  // Token state.
  std::optional<std::pair<std::uint64_t, SeqNum>> last_token_instance_;
  SeqNum prev_rotation_aru_ = 0;
  SeqNum safe_up_to_ = 0;
  std::uint32_t my_last_fcc_contribution_ = 0;
  std::uint32_t my_last_backlog_contribution_ = 0;
  PacketBuffer retained_token_;
  SeqNum retained_token_seq_ = 0;
  bool retention_active_ = false;
  TimerHandle retention_timer_;
  TimerHandle token_loss_timer_;
  TimerHandle announce_timer_;
  void arm_announce_timer();
  void on_announce_fire();
  void on_announce(const wire::Announce& announce);

  // Gather state.
  std::set<NodeId> proc_set_;
  std::set<NodeId> fail_set_;
  std::map<NodeId, wire::JoinMessage> joins_;
  std::uint64_t highest_ring_seq_ = 0;
  TimePoint gather_start_{};
  int consensus_rounds_ = 0;
  TimerHandle join_timer_;
  TimerHandle consensus_timer_;
  /// Ring ids this node has recently been part of. Regular traffic tagged
  /// with a ring NOT in this list while we are Operational means a foreign
  /// ring exists (a healed partition): run the membership protocol to merge.
  std::vector<RingId> recent_rings_;
  /// Last merge attempt per foreign ring (bounded), enforcing merge_backoff.
  std::vector<std::pair<RingId, TimePoint>> merge_attempts_;
  [[nodiscard]] bool should_attempt_merge(const RingId& foreign_ring);

  // Commit state. Like regular tokens, a forwarded commit token is retained
  // and periodically resent until the formation visibly progresses — a lost
  // commit token then costs a retention interval, not a full re-Gather.
  TimerHandle commit_timer_;
  std::uint32_t commit_forwards_ = 0;
  PacketBuffer retained_commit_;
  NodeId retained_commit_dest_ = kInvalidNode;
  bool commit_retention_active_ = false;
  TimerHandle commit_retention_timer_;
  void retain_commit(NodeId dest, PacketBuffer packet);
  void on_commit_retention_fire();
  void stop_commit_retention();

  // Recovery state.
  RingId old_ring_id_;
  std::map<SeqNum, wire::MessageEntry> old_store_;  // old-ring messages
  SeqNum old_delivered_up_to_ = 0;
  SeqNum old_high_target_ = 0;  // deliver old messages up to here if possible
  std::deque<SeqNum> my_retransmit_plan_;  // old seqs I will rebroadcast
  std::set<SeqNum> old_seq_on_new_ring_;   // old seqs already rebroadcast
  /// Recovery-token visits at this node. The install condition reads the
  /// token's ring-wide backlog/aru aggregates, which only cover every member
  /// after a full rotation: a node may originate the install decision no
  /// earlier than its second visit (single_ring.cpp, handle_regular_token).
  std::uint32_t recovery_token_visits_ = 0;
};

[[nodiscard]] constexpr const char* to_string(SingleRing::State s) {
  switch (s) {
    case SingleRing::State::kOperational: return "operational";
    case SingleRing::State::kGather: return "gather";
    case SingleRing::State::kCommit: return "commit";
    case SingleRing::State::kRecovery: return "recovery";
  }
  return "?";
}

}  // namespace totem::srp

// Totem SRP configuration.
#pragma once

#include <cstdint>
#include <vector>

#include "common/types.h"

namespace totem {
class TraceRing;
class MetricsRegistry;
}

namespace totem::srp {

struct Config {
  NodeId node_id = 0;

  /// The expected initial membership (including node_id). With
  /// assume_initial_ring the ring starts Operational on exactly this set —
  /// the common configuration for benchmarks and for deployments with a
  /// static roster. Without it, nodes boot into Gather and form the ring
  /// through the membership protocol.
  std::vector<NodeId> initial_members;
  bool assume_initial_ring = true;

  // ---- timing ----
  /// No token for this long => the ring has failed; run membership.
  Duration token_loss_timeout{200'000};  // 200 ms
  /// Retained-token retransmission period (paper §2: a node periodically
  /// resends the last token it forwarded until it sees progress).
  Duration token_retention_interval{4'000};  // 4 ms
  /// Rebroadcast period for join messages while in Gather.
  Duration join_interval{30'000};  // 30 ms
  /// Gather gives up on silent nodes after this long and moves them to the
  /// fail set.
  Duration consensus_timeout{300'000};  // 300 ms
  /// Commit token lost => re-Gather.
  Duration commit_timeout{300'000};  // 300 ms
  /// Token hop delay a singleton ring uses to pass the token to itself.
  Duration singleton_token_delay{500};  // 0.5 ms
  /// The ring leader broadcasts a tiny ring announcement at this period so
  /// healed partitions merge even with no application traffic. Zero
  /// disables announcements (merges then require traffic).
  Duration announce_interval{1'000'000};  // 1 s
  /// Minimum spacing between merge attempts with the SAME foreign ring —
  /// if a merge keeps failing (e.g. the other side can send but not
  /// receive), we must not let its announcements churn our ring forever.
  Duration merge_backoff{5'000'000};  // 5 s

  // ---- flow control (paper §2: strict sending schedule) ----
  /// Global window: maximum messages broadcast per token rotation.
  std::uint32_t window_size = 80;
  /// Per-node cap per token visit.
  std::uint32_t max_messages_per_visit = 40;
  /// Bound on the send queue (entries, i.e. fragments).
  std::size_t send_queue_limit = 8192;
  /// Maximum retransmission requests carried in the token.
  std::uint32_t rtr_limit = 50;

  /// Fair backlog sharing (the Totem SRP paper's fuller flow-control rule):
  /// when enabled, a node's per-visit allowance is additionally capped at
  /// its proportional share of the window, window_size * my_backlog /
  /// total_backlog (as carried by the token). Heavily loaded nodes then
  /// cannot crowd out light senders within a rotation. Off by default —
  /// the paper's evaluation ran the simple window rule.
  bool fair_backlog_sharing = false;

  // ---- simulated CPU cost model (zero / ignored in real deployments) ----
  /// Charged to the host CPU per message broadcast (packing, bookkeeping).
  Duration per_msg_send_cost{0};
  /// Charged per newly accepted message (ordering, dedup, delivery).
  Duration per_msg_recv_cost{0};
  /// Charged per token processed.
  Duration per_token_cost{0};

  /// Optional flight recorder: protocol events are appended here when set
  /// (see common/trace.h). Not owned; must outlive the ring.
  TraceRing* trace = nullptr;

  /// Optional metrics registry (see common/metrics.h): token rotation /
  /// delivery-latency / reformation histograms and loss/retention counters
  /// are recorded here when set. Not owned; must outlive the ring.
  MetricsRegistry* metrics = nullptr;
};

}  // namespace totem::srp

#include "smr/replicated_kv.h"

namespace totem::smr {
namespace {

Bytes encode_result(bool ok, std::uint64_t version) {
  ByteWriter w(9);
  w.u8(ok ? 1 : 0);
  w.u64(version);
  return std::move(w).take();
}

Bytes to_key_bytes(std::string_view key) { return to_bytes(key); }

}  // namespace

Bytes ReplicatedKv::encode_put(std::string_view key, BytesView value) {
  ByteWriter w(9 + key.size() + value.size());
  w.u8(static_cast<std::uint8_t>(Op::kPut));
  w.blob(to_key_bytes(key));
  w.blob(value);
  return std::move(w).take();
}

Bytes ReplicatedKv::encode_del(std::string_view key) {
  ByteWriter w(5 + key.size());
  w.u8(static_cast<std::uint8_t>(Op::kDel));
  w.blob(to_key_bytes(key));
  return std::move(w).take();
}

Bytes ReplicatedKv::encode_cas(std::string_view key,
                               std::uint64_t expected_version, BytesView value) {
  ByteWriter w(17 + key.size() + value.size());
  w.u8(static_cast<std::uint8_t>(Op::kCas));
  w.blob(to_key_bytes(key));
  w.u64(expected_version);
  w.blob(value);
  return std::move(w).take();
}

Result<KvResult> ReplicatedKv::decode_result(BytesView result) {
  ByteReader r(result);
  auto ok = r.u8();
  auto version = r.u64();
  if (!ok || !version) {
    return Status{StatusCode::kMalformedPacket, "truncated KV result"};
  }
  return KvResult{ok.value() == 1, version.value()};
}

Bytes ReplicatedKv::apply(BytesView command) {
  ByteReader r(command);
  auto op = r.u8();
  auto key_bytes = op ? r.blob() : Result<BytesView>{op.status()};
  if (!op || !key_bytes) {
    ++stats_.malformed;
    return encode_result(false, 0);
  }
  const std::string key = to_string(key_bytes.value());
  switch (static_cast<Op>(op.value())) {
    case Op::kPut: {
      auto value = r.blob();
      if (!value) break;
      Entry& e = map_[key];
      e.value.assign(value.value().begin(), value.value().end());
      ++e.version;
      ++stats_.puts;
      return encode_result(true, e.version);
    }
    case Op::kDel: {
      auto it = map_.find(key);
      ++stats_.deletes;
      if (it == map_.end()) return encode_result(false, 0);
      map_.erase(it);
      return encode_result(true, 0);
    }
    case Op::kCas: {
      auto expected = r.u64();
      auto value = r.blob();
      if (!expected || !value) break;
      auto it = map_.find(key);
      const std::uint64_t current = it == map_.end() ? 0 : it->second.version;
      if (current != expected.value()) {
        ++stats_.cas_fail;
        return encode_result(false, current);
      }
      Entry& e = map_[key];
      e.value.assign(value.value().begin(), value.value().end());
      ++e.version;
      ++stats_.cas_ok;
      return encode_result(true, e.version);
    }
  }
  ++stats_.malformed;
  return encode_result(false, 0);
}

Bytes ReplicatedKv::snapshot() const {
  std::size_t bytes = 8;
  for (const auto& [key, e] : map_) bytes += 16 + key.size() + e.value.size();
  ByteWriter w(bytes);
  w.u64(map_.size());
  for (const auto& [key, e] : map_) {
    w.blob(to_bytes(key));
    w.u64(e.version);
    w.blob(e.value);
  }
  return std::move(w).take();
}

Status ReplicatedKv::restore(BytesView snapshot) {
  map_.clear();
  ByteReader r(snapshot);
  auto n = r.u64();
  if (!n) return Status{StatusCode::kMalformedPacket, "truncated KV snapshot"};
  for (std::uint64_t i = 0; i < n.value(); ++i) {
    auto key = r.blob();
    auto version = r.u64();
    auto value = r.blob();
    if (!key || !version || !value) {
      map_.clear();
      return Status{StatusCode::kMalformedPacket, "truncated KV snapshot entry"};
    }
    Entry e;
    e.value.assign(value.value().begin(), value.value().end());
    e.version = version.value();
    map_[to_string(key.value())] = std::move(e);
  }
  if (!r.exhausted()) {
    map_.clear();
    return Status{StatusCode::kMalformedPacket, "trailing bytes in KV snapshot"};
  }
  return Status::ok();
}

const ReplicatedKv::Entry* ReplicatedKv::get(std::string_view key) const {
  auto it = map_.find(key);
  return it == map_.end() ? nullptr : &it->second;
}

}  // namespace totem::smr

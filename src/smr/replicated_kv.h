// ReplicatedKv: the reference StateMachine — a key/value store with
// per-key versions and compare-and-swap, the workload Ring Paxos-style
// evaluations run against their atomic broadcast layer.
//
// Commands and results are fixed little-endian encodings (ByteWriter), so
// apply() is deterministic byte-for-byte. Reads are local: any live
// replica's map is the agreed state, so get() needs no command.
//
// Determinism note: state lives in a std::map (ordered), so snapshot() is
// canonical — byte-identical across replicas with equal history, which is
// exactly what invariant V8 and the joiner-convergence tests assert.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>

#include "smr/state_machine.h"

namespace totem::smr {

/// Decoded apply() result of any KV command.
struct KvResult {
  bool ok = false;           ///< operation succeeded (CAS matched, key existed, ...)
  std::uint64_t version = 0; ///< key's version after the command (0 = absent)
};

class ReplicatedKv final : public StateMachine {
 public:
  struct Entry {
    Bytes value;
    std::uint64_t version = 0;  ///< starts at 1, bumps on every write
  };

  // ---- command encoding (client side) ----
  /// Unconditional write. Creates the key at version 1 or bumps it.
  [[nodiscard]] static Bytes encode_put(std::string_view key, BytesView value);
  /// Delete. ok=false (no state change) when the key is absent.
  [[nodiscard]] static Bytes encode_del(std::string_view key);
  /// Compare-and-swap: writes only if the key's current version equals
  /// `expected_version` (0 = key must be absent; creates it).
  [[nodiscard]] static Bytes encode_cas(std::string_view key,
                                        std::uint64_t expected_version,
                                        BytesView value);
  /// Parse an apply() result.
  [[nodiscard]] static Result<KvResult> decode_result(BytesView result);

  // ---- StateMachine ----
  Bytes apply(BytesView command) override;
  [[nodiscard]] Bytes snapshot() const override;
  Status restore(BytesView snapshot) override;

  // ---- local reads ----
  /// Current entry for `key`, or nullptr when absent. Local-only: any live
  /// replica's map IS the agreed state (see file header).
  [[nodiscard]] const Entry* get(std::string_view key) const;
  /// Number of live keys.
  [[nodiscard]] std::size_t size() const { return map_.size(); }
  /// The full ordered key -> entry map (iteration order is canonical).
  /// Used by audits that must enumerate state, e.g. the sharded chaos
  /// campaign's V9 routing-isolation check.
  [[nodiscard]] const std::map<std::string, Entry, std::less<>>& entries() const {
    return map_;
  }

  struct Stats {
    std::uint64_t puts = 0;
    std::uint64_t deletes = 0;
    std::uint64_t cas_ok = 0;
    std::uint64_t cas_fail = 0;
    std::uint64_t malformed = 0;
  };
  [[nodiscard]] const Stats& stats() const { return stats_; }

 private:
  enum class Op : std::uint8_t { kPut = 1, kDel = 2, kCas = 3 };

  std::map<std::string, Entry, std::less<>> map_;
  Stats stats_;
};

}  // namespace totem::smr

// ReplicatedLog: state-machine replication over one GroupBus group.
//
// Every replica runs the same deterministic StateMachine and feeds it the
// group's totally-ordered command stream. The interesting part is STATE
// TRANSFER: a node that joins mid-run must converge to the exact state the
// live replicas hold, without pausing them. The protocol (DESIGN.md §13):
//
//   * All SMR traffic — commands, snapshot chunks, and control messages —
//     rides the ONE totally-ordered group stream. Every replica therefore
//     observes the identical sequence of events; all decisions below are
//     functions of that sequence, never of local timing.
//   * The LEADER is the lowest-id live (fully synced) replica. When a
//     group view adds members (or a syncing replica asks), the leader
//     broadcasts an alignment MARK. The mark's own delivery is a single
//     agreed point in the stream: the leader calls snapshot() exactly
//     there and immediately broadcasts the image as CRC-checked chunks;
//     a syncing replica starts buffering commands exactly there. The
//     buffered suffix therefore complements the snapshot precisely —
//     restore(), replay the buffer, and the joiner is byte-identical.
//   * Rounds are tagged (leader, mark-nonce): a joiner only assembles the
//     round of the latest mark, so duplicate and stale chunks (an old
//     leader's leftovers, a re-mark racing a slow transfer) are discarded
//     by tag alone. applied_seq tagging + a total CRC guard the image.
//   * Live replicas audit every round: at a mark each records its own
//     applied count and state CRC; if the leader's chunks disagree, the
//     replica has diverged (e.g. it missed a ring epoch) — it demotes
//     itself and consumes the very transfer it just audited, converging
//     back instead of staying silently wrong.
//   * When rings MERGE (partition heal / restarted node returns), sides
//     that were in the minority demote to syncing: majority size wins, and
//     an exact tie keeps the side containing the lowest-id ring member.
//     This is the (conservative) agreed rule for "whose state survives".
//
// Liveness nets: a syncing replica re-requests a transfer on every group
// view change and on a watchdog timer; the leader re-marks whenever adds
// or requests arrive while a round is already in flight.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <optional>
#include <set>
#include <vector>

#include "api/group_bus.h"
#include "common/timer_service.h"
#include "common/trace.h"
#include "smr/snapshot.h"
#include "smr/state_machine.h"

namespace totem::smr {

class ReplicatedLog {
 public:
  /// Completion of a locally submitted command: `result` is the machine's
  /// apply() output. applied_locally is false when the command was absorbed
  /// into a snapshot this replica restored instead of applying it (the
  /// command still executed — its effect arrived via the image).
  using CompletionHandler = std::function<void(
      std::uint64_t request_id, BytesView result, bool applied_locally)>;

  enum class Mode : std::uint8_t {
    kOffline,  ///< start() not yet called / left the group
    kSyncing,  ///< member, buffering commands, awaiting state transfer
    kLive,     ///< state machine authoritative; commands applied directly
  };

  struct Config {
    std::string group = "smr";
    /// Snapshot chunk payload size. Kept below the ring's unfragmented
    /// payload so one chunk = one wire message (fragmentation still works,
    /// it is just slower).
    std::size_t max_chunk_bytes = 900;
    /// Syncing watchdog: re-request a transfer if none completed within
    /// this interval. Fires only while kSyncing.
    Duration sync_retry{500'000};

    /// Optional flight recorder (common/trace.h): snapshot-transfer rounds
    /// are emitted as kSnapshotRoundBegin/End span pairs correlated on
    /// (leader, mark nonce), so a transfer shows up as one span on the
    /// leader and one on each joiner in the merged cluster timeline. Not
    /// owned; must outlive the log.
    TraceRing* trace = nullptr;
  };

  struct Stats {
    std::uint64_t commands_submitted = 0;
    std::uint64_t commands_applied = 0;    ///< fed to machine (live path)
    std::uint64_t commands_buffered = 0;   ///< queued while syncing
    std::uint64_t commands_replayed = 0;   ///< buffer drained post-restore
    std::uint64_t marks_sent = 0;          ///< alignment marks (leader)
    std::uint64_t snapshots_sent = 0;      ///< transfer rounds led
    std::uint64_t snapshots_restored = 0;  ///< restores completed
    std::uint64_t chunks_sent = 0;
    std::uint64_t chunks_accepted = 0;
    std::uint64_t chunks_stale = 0;        ///< wrong round / not awaiting
    std::uint64_t chunks_rejected = 0;     ///< CRC / malformed / inconsistent
    std::uint64_t sync_requests = 0;       ///< re-requests we broadcast
    std::uint64_t demotions = 0;           ///< live -> syncing transitions
    std::uint64_t divergence_alarms = 0;   ///< live audit mismatches
    std::uint64_t promotions = 0;          ///< disaster re-elections won
  };

  /// The log joins `config.group` on `bus` at start(). `machine` must
  /// outlive the log. `timers` drives the syncing watchdog only — all
  /// correctness-relevant transitions happen in delivery order.
  ReplicatedLog(TimerService& timers, api::GroupBus& bus, StateMachine& machine,
                Config config);

  ReplicatedLog(const ReplicatedLog&) = delete;
  ReplicatedLog& operator=(const ReplicatedLog&) = delete;
  ~ReplicatedLog() {
    watchdog_.cancel();
    retry_.cancel();
  }

  /// Join the group and begin replication. A node whose join CREATES the
  /// group becomes live immediately (it is the founding replica, state
  /// empty); any later joiner starts kSyncing and converges via transfer.
  Status start();

  /// Submit a command for replicated execution. Returns a request id that
  /// the completion handler echoes when the command's own delivery applies
  /// it here. Fails (backpressure) when the ring send queue is full.
  Result<std::uint64_t> submit(BytesView command);

  void set_completion_handler(CompletionHandler h) { on_complete_ = std::move(h); }

  [[nodiscard]] Mode mode() const { return mode_; }
  [[nodiscard]] bool live() const { return mode_ == Mode::kLive; }
  [[nodiscard]] std::uint64_t applied_seq() const { return applied_; }
  [[nodiscard]] const Stats& stats() const { return stats_; }
  [[nodiscard]] const StateMachine& machine() const { return machine_; }
  /// Live replicas this log currently believes are synced (sorted).
  [[nodiscard]] std::vector<NodeId> established_members() const;
  /// The replica that would lead the next transfer (lowest established id).
  [[nodiscard]] NodeId leader() const;

 private:
  enum class MsgKind : std::uint8_t {
    kCommand = 1,      // u32 submitter, u64 request id, raw command
    kSnapMark = 2,     // u32 leader, u64 mark nonce
    kSnapChunk = 3,    // encode_chunk() payload
    kSyncDone = 4,     // u32 node, u64 mark/nonce, u8 cause (unique payload)
    kSyncRequest = 5,  // u32 node, u64 nonce, u8 held-state-before flag
  };

  struct BufferedCommand {
    NodeId submitter = kInvalidNode;
    std::uint64_t request_id = 0;
    Bytes command;
  };

  void on_message(const api::GroupMessage& m);
  void on_group_view(const api::GroupView& v);
  void on_ring_view(const srp::MembershipView& v);

  void handle_command(NodeId submitter, std::uint64_t request_id, BytesView cmd);
  void handle_mark(NodeId mark_leader, std::uint64_t mark);
  void handle_chunk(BytesView wire);
  void handle_sync_request(NodeId node, bool held_state);
  void apply_one(NodeId submitter, std::uint64_t request_id, BytesView cmd);
  void flush_pending_as_absorbed(std::deque<BufferedCommand>& buffer);
  void finish_restore();
  void become_live();
  void demote(const char* reason);
  void promote();

  void trace_event(TraceKind kind, std::uint64_t a, std::uint64_t b) {
    if (config_.trace) config_.trace->emit(timers_.now(), kind, a, b);
  }

  void maybe_lead_transfer();
  void send_mark();
  void send_snapshot_round(std::uint64_t mark);
  void send_sync_done(std::uint64_t uniq, std::uint8_t cause);
  void request_sync();
  void arm_watchdog();

  [[nodiscard]] Bytes frame(MsgKind kind, BytesView body) const;
  [[nodiscard]] bool is_leader() const;

  TimerService& timers_;
  api::GroupBus& bus_;
  StateMachine& machine_;
  Config config_;
  NodeId self_;

  Mode mode_ = Mode::kOffline;
  bool was_live_ = false;      // held authoritative state at least once
  std::uint64_t applied_ = 0;  // commands fed to machine_ since empty state

  // Group membership split into established (synced) vs syncing replicas.
  // `had_state_`: syncing members that self-reported prior live state in
  // their kSyncRequest — the candidate set for disaster re-election.
  std::set<NodeId> members_;
  std::set<NodeId> syncing_;
  std::set<NodeId> had_state_;

  // --- submitter state ---
  std::uint64_t next_request_ = 1;
  std::set<std::uint64_t> pending_;  // submitted, completion not yet fired

  // --- syncing state ---
  SnapshotAssembler assembler_;
  bool awaiting_round_ = false;        // a mark delivered; chunks expected
  NodeId round_leader_ = kInvalidNode; // round we await
  std::uint64_t round_mark_ = 0;
  std::deque<BufferedCommand> buffer_; // commands after the awaited mark
  std::uint64_t sync_nonce_ = 0;       // uniquifies kSyncRequest payloads
  // Own kSyncRequest deliveries since entering kSyncing: the first one can
  // race post-merge announcements, so self-promotion waits for the second.
  std::uint64_t own_sync_requests_ = 0;
  TimerHandle watchdog_;
  TimerHandle retry_;                  // leader backpressure retry

  // --- leader state ---
  std::uint64_t mark_nonce_ = 0;   // uniquifies rounds this node leads
  bool mark_in_flight_ = false;    // sent a mark, its delivery pending
  bool mark_needed_ = false;       // adds/requests arrived meanwhile

  // --- live-side round audit ---
  bool audit_armed_ = false;
  NodeId audit_leader_ = kInvalidNode;
  std::uint64_t audit_mark_ = 0;
  std::uint64_t audit_applied_ = 0;    // our applied count at the mark
  std::uint32_t audit_crc_ = 0;        // our snapshot CRC at the mark
  std::deque<BufferedCommand> audit_buffer_;  // commands since the mark

  // Ring membership context for the merge-demotion rule.
  std::vector<NodeId> ring_members_;

  CompletionHandler on_complete_;
  Stats stats_;
};

}  // namespace totem::smr

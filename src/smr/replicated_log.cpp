#include "smr/replicated_log.h"

#include <algorithm>

#include "common/crc32.h"
#include "common/log.h"

namespace totem::smr {
namespace {

// kSyncDone causes — only there to keep the wire payloads distinct (the
// ring's no-duplicate-delivery invariant treats payloads as identities).
constexpr std::uint8_t kDoneRestored = 0;
constexpr std::uint8_t kDoneAudited = 1;
constexpr std::uint8_t kDonePromoted = 2;

}  // namespace

ReplicatedLog::ReplicatedLog(TimerService& timers, api::GroupBus& bus,
                             StateMachine& machine, Config config)
    : timers_(timers),
      bus_(bus),
      machine_(machine),
      config_(std::move(config)),
      self_(bus.node_id()) {}

Status ReplicatedLog::start() {
  if (mode_ != Mode::kOffline) {
    return Status{StatusCode::kFailedPrecondition, "log already started"};
  }
  ring_members_ = bus_.ring_members();
  bus_.add_ring_view_observer(
      [this](const srp::MembershipView& v) { on_ring_view(v); });
  return bus_.join(
      config_.group, [this](const api::GroupMessage& m) { on_message(m); },
      [this](const api::GroupView& v) { on_group_view(v); });
}

Result<std::uint64_t> ReplicatedLog::submit(BytesView command) {
  if (mode_ == Mode::kOffline && !bus_.locally_joined(config_.group)) {
    return Status{StatusCode::kFailedPrecondition, "log not started"};
  }
  const std::uint64_t req = next_request_++;
  ByteWriter w(13 + command.size());
  w.u8(static_cast<std::uint8_t>(MsgKind::kCommand));
  w.u32(self_);
  w.u64(req);
  w.raw(command);
  const Status s = bus_.send(config_.group, std::move(w).take());
  if (!s.is_ok()) return s;
  pending_.insert(req);
  ++stats_.commands_submitted;
  return req;
}

std::vector<NodeId> ReplicatedLog::established_members() const {
  std::vector<NodeId> out;
  for (NodeId n : members_) {
    if (syncing_.count(n) == 0) out.push_back(n);
  }
  return out;
}

NodeId ReplicatedLog::leader() const {
  const auto est = established_members();
  return est.empty() ? kInvalidNode : est.front();
}

bool ReplicatedLog::is_leader() const { return leader() == self_; }

Bytes ReplicatedLog::frame(MsgKind kind, BytesView body) const {
  ByteWriter w(1 + body.size());
  w.u8(static_cast<std::uint8_t>(kind));
  w.raw(body);
  return std::move(w).take();
}

void ReplicatedLog::on_message(const api::GroupMessage& m) {
  ByteReader r(m.payload);
  auto kind = r.u8();
  if (!kind) return;
  switch (static_cast<MsgKind>(kind.value())) {
    case MsgKind::kCommand: {
      auto submitter = r.u32();
      auto req = r.u64();
      if (!submitter || !req) return;
      handle_command(submitter.value(), req.value(),
                     m.payload.subspan(r.position()));
      return;
    }
    case MsgKind::kSnapMark: {
      auto mark_leader = r.u32();
      auto mark = r.u64();
      if (!mark_leader || !mark) return;
      handle_mark(mark_leader.value(), mark.value());
      return;
    }
    case MsgKind::kSnapChunk:
      handle_chunk(m.payload.subspan(r.position()));
      return;
    case MsgKind::kSyncDone: {
      auto node = r.u32();
      if (!node) return;
      syncing_.erase(node.value());
      had_state_.erase(node.value());
      return;
    }
    case MsgKind::kSyncRequest: {
      auto node = r.u32();
      auto nonce = r.u64();
      auto held = r.u8();
      if (!node || !nonce || !held) return;
      handle_sync_request(node.value(), held.value() != 0);
      return;
    }
  }
}

void ReplicatedLog::handle_command(NodeId submitter, std::uint64_t request_id,
                                   BytesView cmd) {
  if (mode_ == Mode::kLive) {
    if (audit_armed_) {
      audit_buffer_.push_back(
          BufferedCommand{submitter, request_id, Bytes(cmd.begin(), cmd.end())});
    }
    apply_one(submitter, request_id, cmd);
    return;
  }
  if (mode_ == Mode::kSyncing) {
    if (awaiting_round_) {
      buffer_.push_back(
          BufferedCommand{submitter, request_id, Bytes(cmd.begin(), cmd.end())});
      ++stats_.commands_buffered;
      return;
    }
    // Before any alignment mark the upcoming snapshot will already include
    // this command's effect: complete our own submissions now (result
    // unknown locally — it executed at the live replicas).
    if (submitter == self_ && pending_.erase(request_id) > 0 && on_complete_) {
      on_complete_(request_id, {}, false);
    }
  }
}

void ReplicatedLog::handle_mark(NodeId mark_leader, std::uint64_t mark) {
  if (mode_ == Mode::kSyncing) {
    // The mark's delivery is the agreed alignment point: the leader
    // snapshots exactly here, so commands before it are covered by the
    // image and commands after it go into the replay buffer.
    flush_pending_as_absorbed(buffer_);
    buffer_.clear();
    assembler_.reset();
    awaiting_round_ = true;
    round_leader_ = mark_leader;
    round_mark_ = mark;
    trace_event(TraceKind::kSnapshotRoundBegin, round_leader_, round_mark_);
    return;
  }
  if (mode_ != Mode::kLive) return;
  if (mark_leader == self_) {
    // Our own mark delivered — this is the point the whole group agreed on.
    // It also SUPERSEDES any older round we were auditing: every replica
    // honors only the latest-delivered mark's round, or two rounds led by
    // replicas with divergent state could be adopted cross-wise and swap
    // the divergence around instead of healing it.
    audit_armed_ = false;
    audit_buffer_.clear();
    mark_in_flight_ = false;
    send_snapshot_round(mark);
    if (mark_needed_) maybe_lead_transfer();
    return;
  }
  // Another replica leads a round: audit it. If the leader's snapshot
  // disagrees with our state at the same agreed point, WE are the diverged
  // one (we audit the elected leader, not the other way around) and the
  // incoming transfer is our repair.
  audit_armed_ = true;
  audit_leader_ = mark_leader;
  audit_mark_ = mark;
  audit_applied_ = applied_;
  audit_crc_ = crc32(machine_.snapshot());
  audit_buffer_.clear();
}

void ReplicatedLog::handle_chunk(BytesView wire) {
  auto decoded = decode_chunk(wire);
  if (!decoded) {
    ++stats_.chunks_rejected;
    return;
  }
  const SnapshotChunk& c = decoded.value();

  if (mode_ == Mode::kLive) {
    if (c.leader == self_) return;  // our own broadcast coming back
    if (audit_armed_ && c.leader == audit_leader_ && c.mark == audit_mark_) {
      audit_armed_ = false;
      if (c.applied_seq == audit_applied_ && c.total_crc == audit_crc_) {
        // State agreed at the mark. Ack so the leader's bookkeeping clears
        // us in case it (re-)counted us as syncing after a ring merge.
        audit_buffer_.clear();
        // Uniquified by our own nonce, not the round's mark: two different
        // leaders can both reach mark N, and we may ack both.
        send_sync_done(++sync_nonce_, kDoneAudited);
        return;
      }
      // We diverged (e.g. missed a ring epoch without noticing). Adopt the
      // very round we audited: commands since the mark are in
      // audit_buffer_, which is exactly the suffix the snapshot needs.
      ++stats_.divergence_alarms;
      ++stats_.demotions;
      TLOG_INFO << "smr[" << self_ << "]: divergence at mark (" << audit_leader_
            << "," << audit_mark_ << "): applied " << audit_applied_ << " vs "
            << c.applied_seq << " — resyncing";
      mode_ = Mode::kSyncing;
      awaiting_round_ = true;
      round_leader_ = c.leader;
      round_mark_ = c.mark;
      trace_event(TraceKind::kSnapshotRoundBegin, round_leader_, round_mark_);
      assembler_.reset();
      buffer_ = std::move(audit_buffer_);
      audit_buffer_.clear();
      arm_watchdog();
      // fall through to the syncing path below with this same chunk
    } else {
      ++stats_.chunks_stale;
      return;
    }
  }
  if (mode_ != Mode::kSyncing) {
    ++stats_.chunks_stale;
    return;
  }
  if (!awaiting_round_ || c.leader != round_leader_ || c.mark != round_mark_) {
    ++stats_.chunks_stale;
    return;
  }
  switch (assembler_.add(c)) {
    case SnapshotAssembler::Accept::kAccepted:
      ++stats_.chunks_accepted;
      break;
    case SnapshotAssembler::Accept::kDuplicate:
    case SnapshotAssembler::Accept::kStale:
      ++stats_.chunks_stale;
      return;
    case SnapshotAssembler::Accept::kCorrupt:
      ++stats_.chunks_rejected;
      return;
  }
  if (assembler_.complete()) finish_restore();
}

void ReplicatedLog::handle_sync_request(NodeId node, bool held_state) {
  if (members_.count(node) != 0 || node == self_) {
    syncing_.insert(node);
    if (held_state) had_state_.insert(node);
  }
  if (mode_ == Mode::kLive) {
    maybe_lead_transfer();
    return;
  }
  // Disaster check: every member is syncing — the live side vanished
  // entirely (e.g. a many-way merge demoted every fragment). The lowest-id
  // replica that ever held live state re-elects itself and re-seeds the
  // group from its (best-surviving) state. Each replica evaluates this on
  // the same agreed request stream, so at most the designated candidate
  // acts; transient disagreement is repaired by the audit path.
  // Never evaluate it on our FIRST own request while the ring holds other
  // nodes: right after a merge our group view may not yet contain the
  // (possibly still-live) peers, so "everyone is syncing" would be an
  // artifact of missing announcements. A foreign request proves the view
  // caught up; so does our own watchdog retry, which fires long after the
  // merge-time re-announcements landed. On a solo ring nobody is missing.
  if (node == self_) ++own_sync_requests_;
  if (node == self_ && ring_members_.size() > 1 && own_sync_requests_ < 2) {
    return;
  }
  if (mode_ == Mode::kSyncing && was_live_) {
    bool any_established = false;
    for (NodeId n : members_) {
      if (syncing_.count(n) == 0) {
        any_established = true;
        break;
      }
    }
    if (!any_established && !had_state_.empty() &&
        *had_state_.begin() == self_) {
      promote();
    }
  }
}

void ReplicatedLog::apply_one(NodeId submitter, std::uint64_t request_id,
                              BytesView cmd) {
  const Bytes result = machine_.apply(cmd);
  ++applied_;
  ++stats_.commands_applied;
  if (submitter == self_ && pending_.erase(request_id) > 0 && on_complete_) {
    on_complete_(request_id, result, true);
  }
}

void ReplicatedLog::flush_pending_as_absorbed(std::deque<BufferedCommand>& buffer) {
  for (const BufferedCommand& b : buffer) {
    if (b.submitter == self_ && pending_.erase(b.request_id) > 0 && on_complete_) {
      on_complete_(b.request_id, {}, false);
    }
  }
}

void ReplicatedLog::finish_restore() {
  auto image = assembler_.assemble();
  Status restored = image ? machine_.restore(image.value()) : image.status();
  if (!restored.is_ok()) {
    // Total-CRC or restore failure: the round was unusable; drop it and ask
    // for a fresh transfer.
    ++stats_.chunks_rejected;
    assembler_.reset();
    awaiting_round_ = false;
    trace_event(TraceKind::kSnapshotRoundEnd, round_leader_, round_mark_);
    request_sync();
    return;
  }
  applied_ = assembler_.applied_seq();
  assembler_.reset();
  awaiting_round_ = false;
  trace_event(TraceKind::kSnapshotRoundEnd, round_leader_, round_mark_);
  ++stats_.snapshots_restored;
  // The buffer holds exactly the commands delivered after the mark: replay
  // them and the machine equals every live replica byte-for-byte.
  std::deque<BufferedCommand> replay = std::move(buffer_);
  buffer_.clear();
  for (const BufferedCommand& b : replay) {
    apply_one(b.submitter, b.request_id, b.command);
    ++stats_.commands_replayed;
  }
  become_live();
  send_sync_done(++sync_nonce_, kDoneRestored);
  TLOG_INFO << "smr[" << self_ << "]: restored snapshot (applied=" << applied_
            << ", replayed=" << replay.size() << ")";
}

void ReplicatedLog::become_live() {
  mode_ = Mode::kLive;
  was_live_ = true;
  syncing_.erase(self_);
  had_state_.erase(self_);
  own_sync_requests_ = 0;
  watchdog_.cancel();
  audit_armed_ = false;
  audit_buffer_.clear();
}

void ReplicatedLog::demote(const char* reason) {
  if (mode_ != Mode::kLive) return;
  ++stats_.demotions;
  TLOG_INFO << "smr[" << self_ << "]: demoted to syncing (" << reason << ")";
  mode_ = Mode::kSyncing;
  own_sync_requests_ = 0;
  if (awaiting_round_) {
    trace_event(TraceKind::kSnapshotRoundEnd, round_leader_, round_mark_);
  }
  awaiting_round_ = false;
  round_leader_ = kInvalidNode;
  round_mark_ = 0;
  assembler_.reset();
  flush_pending_as_absorbed(buffer_);
  buffer_.clear();
  audit_armed_ = false;
  audit_buffer_.clear();
  mark_in_flight_ = false;
  mark_needed_ = false;
  arm_watchdog();
  request_sync();
}

void ReplicatedLog::promote() {
  ++stats_.promotions;
  TLOG_INFO << "smr[" << self_ << "]: no established replica left — promoting with applied="
            << applied_;
  // Commands buffered since the last mark were applied by no one; fold them
  // into the state we are about to re-seed the group with. (Syncing peers
  // clear their buffers at our upcoming mark, so nothing applies twice.)
  std::deque<BufferedCommand> replay = std::move(buffer_);
  buffer_.clear();
  if (awaiting_round_) {
    trace_event(TraceKind::kSnapshotRoundEnd, round_leader_, round_mark_);
  }
  awaiting_round_ = false;
  assembler_.reset();
  for (const BufferedCommand& b : replay) {
    apply_one(b.submitter, b.request_id, b.command);
  }
  become_live();
  send_sync_done(++sync_nonce_, kDonePromoted);
  maybe_lead_transfer();
}

void ReplicatedLog::maybe_lead_transfer() {
  if (mode_ != Mode::kLive || !is_leader() || syncing_.empty()) return;
  if (mark_in_flight_) {
    mark_needed_ = true;
    return;
  }
  send_mark();
}

void ReplicatedLog::send_mark() {
  const std::uint64_t mark = ++mark_nonce_;
  ByteWriter w(13);
  w.u8(static_cast<std::uint8_t>(MsgKind::kSnapMark));
  w.u32(self_);
  w.u64(mark);
  const Status s = bus_.send(config_.group, std::move(w).take());
  if (!s.is_ok()) {
    // Backpressure: retry once the queue drains a little.
    mark_needed_ = true;
    retry_.cancel();
    retry_ = timers_.schedule(config_.sync_retry, [this] { maybe_lead_transfer(); });
    return;
  }
  ++stats_.marks_sent;
  mark_in_flight_ = true;
  mark_needed_ = false;
}

void ReplicatedLog::send_snapshot_round(std::uint64_t mark) {
  trace_event(TraceKind::kSnapshotRoundBegin, self_, mark);
  const Bytes image = machine_.snapshot();
  const auto chunks =
      split_snapshot(image, self_, mark, applied_, config_.max_chunk_bytes);
  for (const SnapshotChunk& c : chunks) {
    const Status s =
        bus_.send(config_.group, frame(MsgKind::kSnapChunk, encode_chunk(c)));
    if (!s.is_ok()) {
      // Queue full mid-round: the partial round can never complete (total
      // CRC protects the joiners); schedule a fresh mark instead.
      mark_needed_ = true;
      retry_.cancel();
      retry_ = timers_.schedule(config_.sync_retry, [this] { maybe_lead_transfer(); });
      trace_event(TraceKind::kSnapshotRoundEnd, self_, mark);
      return;
    }
    ++stats_.chunks_sent;
  }
  ++stats_.snapshots_sent;
  trace_event(TraceKind::kSnapshotRoundEnd, self_, mark);
}

void ReplicatedLog::send_sync_done(std::uint64_t uniq, std::uint8_t cause) {
  ByteWriter w(14);
  w.u8(static_cast<std::uint8_t>(MsgKind::kSyncDone));
  w.u32(self_);
  w.u64(uniq);
  w.u8(cause);
  (void)bus_.send(config_.group, std::move(w).take());
}

void ReplicatedLog::request_sync() {
  if (mode_ != Mode::kSyncing) return;
  ByteWriter w(14);
  w.u8(static_cast<std::uint8_t>(MsgKind::kSyncRequest));
  w.u32(self_);
  w.u64(++sync_nonce_);
  w.u8(was_live_ ? 1 : 0);
  if (bus_.send(config_.group, std::move(w).take()).is_ok()) {
    ++stats_.sync_requests;
  }
}

void ReplicatedLog::arm_watchdog() {
  watchdog_.cancel();
  watchdog_ = timers_.schedule(config_.sync_retry, [this] {
    if (mode_ != Mode::kSyncing) return;
    request_sync();
    arm_watchdog();
  });
}

void ReplicatedLog::on_group_view(const api::GroupView& v) {
  members_.clear();
  members_.insert(v.members.begin(), v.members.end());
  for (NodeId n : v.removed) {
    syncing_.erase(n);
    had_state_.erase(n);
  }
  for (NodeId n : v.added) {
    if (n == self_) {
      if (mode_ != Mode::kOffline) continue;  // re-announce echo
      if (members_.size() == 1) {
        // Our join CREATED the group: we are the founding replica and the
        // empty machine is, by definition, the authoritative state.
        become_live();
        TLOG_INFO << "smr[" << self_ << "]: founded group '" << config_.group << "'";
      } else {
        mode_ = Mode::kSyncing;
        syncing_.insert(self_);
        arm_watchdog();
      }
      continue;
    }
    if (mode_ == Mode::kLive) {
      // A fresh joiner: it needs a transfer before it counts as a replica.
      syncing_.insert(n);
    }
  }
  if (mode_ == Mode::kLive && !v.added.empty()) maybe_lead_transfer();
  // Our transfer source may have been among the removed: ask again (the
  // surviving leader answers; the watchdog also retries).
  if (mode_ == Mode::kSyncing && !v.removed.empty()) request_sync();
}

void ReplicatedLog::on_ring_view(const srp::MembershipView& v) {
  const std::vector<NodeId> prev = ring_members_;
  ring_members_ = v.members;
  // A new ring is a send-barrier: anything we sent on the old ring has by
  // now either been delivered (recovery completed before this view) or died
  // with the ring. A mark still "in flight" here is gone — without this
  // reset, maybe_lead_transfer() would wait on it forever and no syncing
  // replica could ever be served again.
  if (mark_in_flight_) {
    mark_in_flight_ = false;
    mark_needed_ = true;
  }
  if (mode_ != Mode::kLive || prev.empty()) return;
  bool grew = false;
  for (NodeId n : v.members) {
    if (std::find(prev.begin(), prev.end(), n) == prev.end()) {
      grew = true;
      break;
    }
  }
  if (!grew) return;
  // Ring MERGE: fragments that diverged while partitioned are reuniting.
  // Exactly one side's state may survive; the agreed rule is majority size
  // with lowest-id tiebreak (ring size proxies the fragment's replica
  // count). The minority demotes and re-syncs from the survivors.
  const std::size_t p = prev.size();
  const std::size_t m = v.members.size();
  bool stay = 2 * p > m;
  if (!stay && 2 * p == m) {
    const NodeId lowest = *std::min_element(v.members.begin(), v.members.end());
    stay = std::find(prev.begin(), prev.end(), lowest) != prev.end();
  }
  if (!stay) {
    demote("ring merge: previous fragment was the minority");
  } else if (mark_needed_ && !syncing_.empty()) {
    // Still live on the new ring with a round owed (possibly the one the
    // barrier above just invalidated): restart it.
    maybe_lead_transfer();
  }
}

}  // namespace totem::smr

#include "smr/snapshot.h"

#include <algorithm>

#include "common/bytes.h"
#include "common/crc32.h"

namespace totem::smr {

Bytes encode_chunk(const SnapshotChunk& chunk) {
  ByteWriter w(40 + chunk.data.size());
  w.u32(chunk.leader);
  w.u64(chunk.mark);
  w.u64(chunk.applied_seq);
  w.u32(chunk.index);
  w.u32(chunk.count);
  w.u32(chunk.total_crc);
  w.blob(chunk.data);
  w.u32(crc32(chunk.data));
  return std::move(w).take();
}

Result<SnapshotChunk> decode_chunk(BytesView wire) {
  ByteReader r(wire);
  auto leader = r.u32();
  auto mark = r.u64();
  auto applied = r.u64();
  auto index = r.u32();
  auto count = r.u32();
  auto total_crc = r.u32();
  auto data = r.blob();
  auto chunk_crc = r.u32();
  if (!leader || !mark || !applied || !index || !count || !total_crc ||
      !data || !chunk_crc) {
    return Status{StatusCode::kMalformedPacket, "truncated snapshot chunk"};
  }
  if (count.value() == 0 || index.value() >= count.value()) {
    return Status{StatusCode::kMalformedPacket, "snapshot chunk index out of range"};
  }
  if (crc32(data.value()) != chunk_crc.value()) {
    return Status{StatusCode::kMalformedPacket, "snapshot chunk CRC mismatch"};
  }
  SnapshotChunk c;
  c.leader = leader.value();
  c.mark = mark.value();
  c.applied_seq = applied.value();
  c.index = index.value();
  c.count = count.value();
  c.total_crc = total_crc.value();
  c.data.assign(data.value().begin(), data.value().end());
  return c;
}

std::vector<SnapshotChunk> split_snapshot(BytesView snapshot, NodeId leader,
                                          std::uint64_t mark,
                                          std::uint64_t applied_seq,
                                          std::size_t max_chunk_bytes) {
  if (max_chunk_bytes == 0) max_chunk_bytes = 1;
  const std::uint32_t total_crc = crc32(snapshot);
  const std::size_t count =
      std::max<std::size_t>(1, (snapshot.size() + max_chunk_bytes - 1) / max_chunk_bytes);
  std::vector<SnapshotChunk> chunks;
  chunks.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    const std::size_t begin = i * max_chunk_bytes;
    const std::size_t len = std::min(max_chunk_bytes, snapshot.size() - begin);
    SnapshotChunk c;
    c.leader = leader;
    c.mark = mark;
    c.applied_seq = applied_seq;
    c.index = static_cast<std::uint32_t>(i);
    c.count = static_cast<std::uint32_t>(count);
    c.total_crc = total_crc;
    const BytesView slice = snapshot.subspan(begin, len);
    c.data.assign(slice.begin(), slice.end());
    chunks.push_back(std::move(c));
  }
  return chunks;
}

SnapshotAssembler::Accept SnapshotAssembler::add(const SnapshotChunk& chunk) {
  if (!in_progress()) {
    leader_ = chunk.leader;
    mark_ = chunk.mark;
    applied_seq_ = chunk.applied_seq;
    count_ = chunk.count;
    total_crc_ = chunk.total_crc;
    parts_[chunk.index] = chunk.data;
    return Accept::kAccepted;
  }
  if (chunk.leader != leader_ || chunk.mark != mark_) {
    // The caller (ReplicatedLog) resets the assembler at each alignment
    // mark and filters chunks to the round it awaits, so a mismatched
    // (leader, mark) here is a superseded round's leftover.
    return Accept::kStale;
  }
  // Same round: header fields must be consistent across all its chunks.
  if (chunk.count != count_ || chunk.total_crc != total_crc_ ||
      chunk.applied_seq != applied_seq_ || chunk.index >= count_) {
    return Accept::kCorrupt;
  }
  if (parts_.count(chunk.index) != 0) return Accept::kDuplicate;
  parts_[chunk.index] = chunk.data;
  return Accept::kAccepted;
}

bool SnapshotAssembler::complete() const {
  return count_ != 0 && parts_.size() == count_;
}

Result<Bytes> SnapshotAssembler::assemble() const {
  Bytes image;
  std::size_t total = 0;
  for (const auto& [_, data] : parts_) total += data.size();
  image.reserve(total);
  for (const auto& [_, data] : parts_) {
    image.insert(image.end(), data.begin(), data.end());
  }
  if (crc32(image) != total_crc_) {
    return Status{StatusCode::kMalformedPacket, "snapshot total CRC mismatch"};
  }
  return image;
}

void SnapshotAssembler::reset() {
  leader_ = kInvalidNode;
  mark_ = 0;
  applied_seq_ = 0;
  count_ = 0;
  total_crc_ = 0;
  parts_.clear();
}

}  // namespace totem::smr

// StateMachine: the application-side contract of the SMR layer.
//
// A deterministic state machine consumes an ordered stream of opaque
// commands. Replication is then exactly the textbook construction (and the
// one Ring Paxos evaluates): run the same machine at every group member,
// feed every machine the identical totally-ordered command stream — which
// GroupBus provides — and the replicas can never diverge.
//
// Determinism rules (DESIGN.md §13):
//   * apply() must depend only on the current state and the command bytes —
//     no clocks, no randomness, no node identity.
//   * snapshot() must be a pure, canonical serialization: two machines that
//     applied the same command sequence must produce byte-identical
//     snapshots (iteration order matters — use ordered containers).
//   * restore(snapshot()) followed by a command suffix must equal applying
//     the full command sequence directly.
#pragma once

#include "common/bytes.h"
#include "common/status.h"

namespace totem::smr {

class StateMachine {
 public:
  virtual ~StateMachine() = default;

  /// Apply one command, mutate state, return the (deterministic) result
  /// bytes. Malformed commands must be handled deterministically too:
  /// encode the error into the result, never throw and never skip state.
  virtual Bytes apply(BytesView command) = 0;

  /// Canonical serialization of the full current state. Two replicas with
  /// the same applied history must return byte-identical snapshots; this is
  /// what invariant V8 asserts after every chaos campaign.
  [[nodiscard]] virtual Bytes snapshot() const = 0;

  /// Replace the entire state from a snapshot() image. On error the machine
  /// must be left empty (the caller re-requests a transfer), never partial.
  virtual Status restore(BytesView snapshot) = 0;
};

}  // namespace totem::smr

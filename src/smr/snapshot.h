// Snapshot chunking for SMR state transfer.
//
// A snapshot travels through the SAME totally-ordered group stream as the
// commands it summarizes, split into chunks so a large state never exceeds
// the ring's fragmentation comfort zone. Each chunk is self-describing and
// double-checksummed:
//
//   u32 leader        — node that took the snapshot
//   u64 mark          — alignment-mark nonce; (leader, mark) names one
//                       transfer round, so stale or duplicate rounds are
//                       discarded without inspecting the payload
//   u64 applied_seq   — commands applied when the snapshot was taken
//   u32 index, count  — chunk position / total chunks in the round
//   u32 total_crc     — CRC-32 of the complete reassembled snapshot
//   blob data         — this chunk's slice (u32-length-prefixed)
//   u32 chunk_crc     — CRC-32 of `data` alone (per-chunk integrity)
//
// The ring already CRCs every packet, so chunk_crc/total_crc guard against
// software faults (truncation, mis-slicing, a diverged leader), not the
// network — and they let unit tests corrupt a chunk deliberately.
#pragma once

#include <cstdint>
#include <map>
#include <vector>

#include "common/bytes.h"
#include "common/status.h"
#include "common/types.h"

namespace totem::smr {

struct SnapshotChunk {
  NodeId leader = kInvalidNode;
  std::uint64_t mark = 0;         ///< transfer-round nonce (see ReplicatedLog)
  std::uint64_t applied_seq = 0;  ///< machine's applied count at snapshot time
  std::uint32_t index = 0;
  std::uint32_t count = 0;        ///< total chunks in this round (>= 1)
  std::uint32_t total_crc = 0;    ///< crc32 of the full snapshot image
  Bytes data;                     ///< this chunk's slice
};

/// Serialize one chunk (appends the trailing per-chunk CRC).
[[nodiscard]] Bytes encode_chunk(const SnapshotChunk& chunk);

/// Parse + verify one chunk. Fails with kMalformedPacket on truncation or
/// on a per-chunk CRC mismatch.
[[nodiscard]] Result<SnapshotChunk> decode_chunk(BytesView wire);

/// Split a snapshot image into <= max_chunk_bytes slices (at least one
/// chunk, even for an empty snapshot, so the transfer round is always
/// observable).
[[nodiscard]] std::vector<SnapshotChunk> split_snapshot(
    BytesView snapshot, NodeId leader, std::uint64_t mark,
    std::uint64_t applied_seq, std::size_t max_chunk_bytes);

/// Reassembles one transfer round's chunks, in any order, with duplicate
/// and stale-round detection. One assembler holds exactly one round: the
/// owner (ReplicatedLog) resets it at each alignment mark, which group
/// total order makes an agreed event at every replica.
class SnapshotAssembler {
 public:
  enum class Accept {
    kAccepted,    ///< chunk stored (or completed the round)
    kDuplicate,   ///< same (round, index) already held
    kStale,       ///< chunk belongs to a superseded (leader, mark) round
    kCorrupt,     ///< inconsistent header vs the round in progress
  };

  /// Feed one decoded chunk. The first chunk after reset() fixes the round;
  /// later chunks must match its (leader, mark) or they are kStale.
  Accept add(const SnapshotChunk& chunk);

  [[nodiscard]] bool complete() const;
  /// Valid only when complete(): the reassembled image, verified against
  /// total_crc. Fails with kMalformedPacket on a total-CRC mismatch.
  [[nodiscard]] Result<Bytes> assemble() const;

  [[nodiscard]] std::uint64_t applied_seq() const { return applied_seq_; }
  [[nodiscard]] NodeId leader() const { return leader_; }
  [[nodiscard]] std::uint64_t mark() const { return mark_; }
  [[nodiscard]] bool in_progress() const { return count_ != 0; }

  void reset();

 private:
  NodeId leader_ = kInvalidNode;
  std::uint64_t mark_ = 0;
  std::uint64_t applied_seq_ = 0;
  std::uint32_t count_ = 0;
  std::uint32_t total_crc_ = 0;
  std::map<std::uint32_t, Bytes> parts_;  // index -> data
};

}  // namespace totem::smr

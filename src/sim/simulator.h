// Deterministic discrete-event simulator.
//
// This is the substrate that replaces the paper's physical testbed (4-6
// workstations on two 100 Mbit/s Ethernets). Events execute in strict
// (time, insertion-order) order, so a given seed always produces an
// identical run — packet-level reorderings across networks included.
#pragma once

#include <cstdint>
#include <queue>
#include <vector>

#include "common/rng.h"
#include "common/timer_service.h"
#include "common/types.h"

namespace totem::sim {

class Simulator : public TimerService {
 public:
  explicit Simulator(std::uint64_t seed = 1);

  [[nodiscard]] TimePoint now() const override { return now_; }
  TimerHandle schedule(Duration delay, Callback cb) override;
  TimerHandle schedule_at(TimePoint at, Callback cb);

  /// Execute the next pending event. Returns false when the queue is empty.
  bool step();

  /// Run events until the queue drains or virtual time passes `deadline`.
  void run_until(TimePoint deadline);
  void run_for(Duration d) { run_until(now_ + d); }

  /// Drain every pending event regardless of timestamp (tests only; a
  /// saturated ring schedules work forever, so benches use run_until).
  void run_all(std::size_t max_events = 100'000'000);

  [[nodiscard]] Rng& rng() { return rng_; }
  [[nodiscard]] std::uint64_t events_executed() const { return executed_; }
  [[nodiscard]] std::size_t pending_events() const { return queue_.size(); }

 private:
  struct Event {
    TimePoint at;
    std::uint64_t seq;  // tie-break: FIFO among same-time events
    Callback fn;
    std::shared_ptr<detail::TimerState> state;
  };
  struct Later {
    bool operator()(const Event& a, const Event& b) const {
      if (a.at != b.at) return a.at > b.at;
      return a.seq > b.seq;
    }
  };

  TimePoint now_{};
  std::uint64_t next_seq_ = 0;
  std::uint64_t executed_ = 0;
  std::priority_queue<Event, std::vector<Event>, Later> queue_;
  Rng rng_;
};

/// Models one host CPU as a serializing resource.
//
// Every network-stack traversal (sendto / recvfrom equivalent) and every
// per-message protocol action costs CPU time; concurrent demands queue.
// This is the mechanism behind the paper's key performance findings: active
// replication is slower because it doubles stack calls (Section 8), and
// passive replication tops out below 2x because protocol processing, not
// wire bandwidth, becomes the bottleneck.
class CpuModel {
 public:
  /// Reserve `cost` CPU time starting no earlier than `earliest`.
  /// Returns the completion time.
  TimePoint acquire(TimePoint earliest, Duration cost) {
    const TimePoint start = std::max(earliest, busy_until_);
    busy_until_ = start + cost;
    total_busy_ += cost;
    return busy_until_;
  }

  [[nodiscard]] TimePoint busy_until() const { return busy_until_; }
  [[nodiscard]] Duration total_busy() const { return total_busy_; }

 private:
  TimePoint busy_until_{};
  Duration total_busy_{};
};

}  // namespace totem::sim

#include "sim/simulator.h"

#include <cassert>

namespace totem::sim {

Simulator::Simulator(std::uint64_t seed) : rng_(seed) {}

TimerHandle Simulator::schedule(Duration delay, Callback cb) {
  assert(delay >= Duration::zero() && "cannot schedule into the past");
  return schedule_at(now_ + delay, std::move(cb));
}

TimerHandle Simulator::schedule_at(TimePoint at, Callback cb) {
  auto state = std::make_shared<detail::TimerState>();
  queue_.push(Event{at, next_seq_++, std::move(cb), state});
  return TimerHandle{state};
}

bool Simulator::step() {
  // Consume exactly ONE queue entry. Skipped (cancelled) entries must still
  // consume one step: run_until() peeks the head's timestamp before calling
  // step(), so executing anything beyond the head here would let events past
  // a run_until deadline slip through.
  if (queue_.empty()) return false;
  Event ev = queue_.top();
  queue_.pop();
  assert(ev.at >= now_);
  now_ = ev.at;
  if (ev.state->cancelled) return true;
  ev.state->fired = true;
  ++executed_;
  ev.fn();
  return true;
}

void Simulator::run_until(TimePoint deadline) {
  while (!queue_.empty() && queue_.top().at <= deadline) {
    step();
  }
  // Advance the clock to the deadline even if the queue drained early so
  // consecutive run_for() calls compose predictably.
  if (now_ < deadline) now_ = deadline;
}

void Simulator::run_all(std::size_t max_events) {
  std::size_t n = 0;
  while (step()) {
    if (++n >= max_events) break;
  }
}

}  // namespace totem::sim

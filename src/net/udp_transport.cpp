#ifndef _GNU_SOURCE
#define _GNU_SOURCE  // sendmmsg/recvmmsg on glibc
#endif

#include "net/udp_transport.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "common/bytes.h"
#include "common/log.h"
#include "common/trace.h"
#include "net/io_uring_transport.h"

// The mmsg batch syscalls are Linux-specific; everything routes through the
// portable per-datagram fallback elsewhere (and when the per-datagram
// backend is selected).
#if defined(__linux__)
#define TOTEM_HAVE_MMSG 1
#else
#define TOTEM_HAVE_MMSG 0
#endif

namespace totem::net {
namespace {

constexpr std::uint32_t kUdpMagic = 0x544F544Du;  // "TOTM"
constexpr std::size_t kUdpHeader = UdpTransport::kUdpHeaderSize;
constexpr std::size_t kMaxDatagram = 64 * 1024;

sockaddr_in to_sockaddr(const UdpEndpoint& ep) {
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(ep.port);
  ::inet_pton(AF_INET, ep.ip.c_str(), &addr.sin_addr);
  return addr;
}

}  // namespace

Result<std::unique_ptr<UdpTransport>> UdpTransport::create(Reactor& reactor, Config config) {
  auto self_it = config.peers.find(config.local_node);
  if (self_it == config.peers.end()) {
    return Status{StatusCode::kInvalidArgument, "local node missing from peer map"};
  }

  // Resolve the requested backend against what this build and kernel can
  // actually provide. The legacy batched_syscalls=false switch means "pin
  // the portable per-datagram path" and predates the enum.
  DatapathBackend backend = config.backend;
  if (backend == DatapathBackend::kMmsg && !config.batched_syscalls) {
    backend = DatapathBackend::kPerDatagram;
  }
#if !TOTEM_HAVE_MMSG
  if (backend == DatapathBackend::kMmsg) backend = DatapathBackend::kPerDatagram;
#endif
  if (backend == DatapathBackend::kIoUring && !io_uring_available()) {
    if (config.require_backend) {
      return Status{StatusCode::kUnavailable,
                    io_uring_compiled()
                        ? "io_uring datapath unavailable: kernel probe failed"
                        : "io_uring datapath unavailable: not compiled in "
                          "(TOTEM_IO_URING=OFF or no <linux/io_uring.h>)"};
    }
    backend = TOTEM_HAVE_MMSG != 0 && config.batched_syscalls
                  ? DatapathBackend::kMmsg
                  : DatapathBackend::kPerDatagram;
    TLOG_WARN << "io_uring datapath unavailable on net" << config.network
              << "; falling back to " << backend_name(backend);
  }
  // Keep the legacy flag coherent with the resolution so the drain/send
  // paths (which still branch on it) agree with backend().
  config.batched_syscalls = backend == DatapathBackend::kMmsg;
  config.backend = backend;

  const int fd = ::socket(AF_INET, SOCK_DGRAM | SOCK_NONBLOCK, 0);
  if (fd < 0) {
    return Status{StatusCode::kUnavailable,
                  std::string("socket(): ") + std::strerror(errno)};
  }
  // No SO_REUSEADDR: a second bind to the same port is a configuration
  // error and must fail loudly. Buffer size defaults to the paper's
  // testbed value (64 KB); see Config::socket_buffer_bytes.
  const int buf = config.socket_buffer_bytes;
  ::setsockopt(fd, SOL_SOCKET, SO_RCVBUF, &buf, sizeof(buf));
  ::setsockopt(fd, SOL_SOCKET, SO_SNDBUF, &buf, sizeof(buf));

  const sockaddr_in addr = to_sockaddr(self_it->second);
  if (::bind(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) < 0) {
    const int err = errno;
    ::close(fd);
    return Status{StatusCode::kUnavailable,
                  "bind(" + self_it->second.ip + ":" + std::to_string(self_it->second.port) +
                      "): " + std::strerror(err)};
  }

  int mcast_fd = -1;
  if (!config.multicast_group.empty()) {
    if (config.multicast_port == 0) {
      ::close(fd);
      return Status{StatusCode::kInvalidArgument, "multicast_port must be set"};
    }
    mcast_fd = ::socket(AF_INET, SOCK_DGRAM | SOCK_NONBLOCK, 0);
    if (mcast_fd < 0) {
      ::close(fd);
      return Status{StatusCode::kUnavailable,
                    std::string("mcast socket(): ") + std::strerror(errno)};
    }
    // All members share the group port, so reuse is required here (the
    // unicast socket deliberately does NOT set it).
    const int one = 1;
    ::setsockopt(mcast_fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
    sockaddr_in maddr{};
    maddr.sin_family = AF_INET;
    maddr.sin_port = htons(config.multicast_port);
    maddr.sin_addr.s_addr = htonl(INADDR_ANY);
    if (::bind(mcast_fd, reinterpret_cast<const sockaddr*>(&maddr), sizeof(maddr)) < 0) {
      const int err = errno;
      ::close(fd);
      ::close(mcast_fd);
      return Status{StatusCode::kUnavailable,
                    std::string("mcast bind(): ") + std::strerror(err)};
    }
    ip_mreq mreq{};
    ::inet_pton(AF_INET, config.multicast_group.c_str(), &mreq.imr_multiaddr);
    ::inet_pton(AF_INET, config.multicast_interface.c_str(), &mreq.imr_interface);
    if (::setsockopt(mcast_fd, IPPROTO_IP, IP_ADD_MEMBERSHIP, &mreq, sizeof(mreq)) < 0) {
      const int err = errno;
      ::close(fd);
      ::close(mcast_fd);
      return Status{StatusCode::kUnavailable,
                    std::string("IP_ADD_MEMBERSHIP: ") + std::strerror(err)};
    }
    // Outgoing multicast leaves through the configured interface; loopback
    // on so co-hosted processes (and our own filter test) receive it.
    in_addr ifaddr{};
    ::inet_pton(AF_INET, config.multicast_interface.c_str(), &ifaddr);
    ::setsockopt(fd, IPPROTO_IP, IP_MULTICAST_IF, &ifaddr, sizeof(ifaddr));
    const unsigned char loop = 1;
    ::setsockopt(fd, IPPROTO_IP, IP_MULTICAST_LOOP, &loop, sizeof(loop));
  }

  std::unique_ptr<UdpTransport> transport;
#if TOTEM_IO_URING_BACKEND
  if (backend == DatapathBackend::kIoUring) {
    transport.reset(new IoUringTransport(reactor, std::move(config), fd, mcast_fd));
  }
#endif
  if (!transport) {
    transport.reset(new UdpTransport(reactor, std::move(config), fd, mcast_fd, backend));
  }
  if (Status st = transport->attach(); !st.is_ok()) return st;
  return transport;
}

UdpTransport::UdpTransport(Reactor& reactor, Config config, int fd, int mcast_fd,
                           DatapathBackend backend)
    : reactor_(reactor),
      config_(std::move(config)),
      backend_(backend),
      fd_(fd),
      mcast_fd_(mcast_fd),
      loss_rng_state_(0x9E3779B97F4A7C15uLL ^ (static_cast<std::uint64_t>(fd) << 32)) {
  if (mcast_fd_ >= 0) {
    mcast_addr_ = to_sockaddr(UdpEndpoint{config_.multicast_group, config_.multicast_port});
  }
  for (const auto& [node, ep] : config_.peers) {
    const sockaddr_in a = to_sockaddr(ep);
    addr_by_node_[node] = a;
    if (node != config_.local_node) peer_addrs_.emplace_back(node, a);
  }
  if (config_.rx_queue_capacity > 0) {
    rx_ring_ = std::make_unique<SpscRing<ReceivedPacket>>(config_.rx_queue_capacity);
  }
  if (config_.tx_queue_capacity > 0) {
    tx_ring_ = std::make_unique<SpscRing<TxEntry>>(config_.tx_queue_capacity);
    // The reactor thread drains the TX ring; notify() from the ordering
    // thread triggers the next round, and the hook also runs after every
    // socket wakeup so queued TX piggybacks on RX polls.
    wake_hook_id_ = reactor_.add_wake_hook([this] { flush_tx(); });
    wake_hook_added_ = true;
  }
  if (config_.metrics) {
    // Backend-labelled so a shoot-out over several backends keeps their
    // batch-shape histograms apart in one registry.
    const std::string suffix =
        ".net" + std::to_string(config_.network) + "." + backend_name(backend_);
    tx_batch_hist_ = config_.metrics->histogram("net.tx_batch" + suffix);
    rx_batch_hist_ = config_.metrics->histogram("net.rx_batch" + suffix);
  }
}

Status UdpTransport::attach() {
  reactor_.register_fd(fd_, [this] { drain(fd_); });
  if (mcast_fd_ >= 0) {
    reactor_.register_fd(mcast_fd_, [this] { drain(mcast_fd_); });
  }
  return {};
}

UdpTransport::~UdpTransport() {
  if (wake_hook_added_) reactor_.remove_wake_hook(wake_hook_id_);
  if (fd_ >= 0) {
    reactor_.unregister_fd(fd_);
    ::close(fd_);
  }
  if (mcast_fd_ >= 0) {
    reactor_.unregister_fd(mcast_fd_);
    ::close(mcast_fd_);
  }
}

PacketBuffer UdpTransport::build_frame(BytesView packet) {
  PacketBuffer frame = tx_pool_.acquire(kUdpHeader + packet.size());
  ByteWriter w(frame.mutable_bytes());
  w.u32(kUdpMagic);
  w.u32(config_.local_node);
  w.raw(packet);
  return frame;
}

bool UdpTransport::account_tx(std::size_t payload_bytes) {
  ++stats_.packets_sent;
  stats_.bytes_sent += payload_bytes;
  if (send_fault_.load(std::memory_order_relaxed)) return false;
  if (config_.send_loss_rate > 0.0) {
    // xorshift64*: cheap deterministic-enough loss injection for tests.
    loss_rng_state_ ^= loss_rng_state_ >> 12;
    loss_rng_state_ ^= loss_rng_state_ << 25;
    loss_rng_state_ ^= loss_rng_state_ >> 27;
    const double u =
        static_cast<double>((loss_rng_state_ * 0x2545F4914F6CDD1DuLL) >> 11) * 0x1.0p-53;
    if (u < config_.send_loss_rate) return false;
  }
  return true;
}

void UdpTransport::trace_batch(TraceKind kind, std::uint64_t datagrams) {
  if (config_.trace && datagrams > 0) {
    config_.trace->emit(reactor_.now(), kind, config_.network, datagrams);
  }
}

void UdpTransport::warn_unknown_dest(NodeId dest) {
  TLOG_WARN << "udp unicast to unknown node " << dest;
}

bool UdpTransport::wait_writable(int fd) {
  // The socket buffer back-pressured a send. Waiting here (briefly) instead
  // of dropping keeps the queued backlog intact and ordered; if the buffer
  // stays full past the budget the caller degrades to counted drops, so a
  // dead peer cannot wedge the reactor thread.
  pollfd p{fd, POLLOUT, 0};
  const int rc = ::poll(&p, 1, 50);
  return rc > 0 && (p.revents & POLLOUT) != 0;
}

void UdpTransport::send_batch(const PacketBuffer* frames[], const sockaddr_in* addrs,
                              std::size_t n) {
  if (n == 0) return;
#if TOTEM_HAVE_MMSG
  if (config_.batched_syscalls) {
    mmsghdr msgs[kTxBatch];
    iovec iovs[kTxBatch];
    std::memset(msgs, 0, sizeof(mmsghdr) * n);
    for (std::size_t i = 0; i < n; ++i) {
      iovs[i].iov_base = const_cast<std::byte*>(frames[i]->data());
      iovs[i].iov_len = frames[i]->size();
      msgs[i].msg_hdr.msg_iov = &iovs[i];
      msgs[i].msg_hdr.msg_iovlen = 1;
      msgs[i].msg_hdr.msg_name = const_cast<sockaddr_in*>(&addrs[i]);
      msgs[i].msg_hdr.msg_namelen = sizeof(sockaddr_in);
    }
    // Partial-return recovery. sendmmsg reports errno only when NOTHING was
    // sent; a short return means the datagram after the sent prefix errored
    // or the socket buffer filled. Resuming from the failed head makes the
    // next call either send it (transient) or surface its errno (per-
    // datagram failure, charged to tx_errors and skipped). Nothing is
    // dropped, duplicated, or reordered relative to the queued backlog, and
    // the batch histogram records each datagram exactly once: successfully
    // sent ones per actual syscall, failed ones only in tx_errors.
    std::size_t off = 0;
    bool waited = false;
    while (off < n) {
      const int rc =
          config_.sendmmsg_hook
              ? config_.sendmmsg_hook(fd_, msgs + off, static_cast<unsigned>(n - off), 0)
              : ::sendmmsg(fd_, msgs + off, static_cast<unsigned>(n - off), 0);
      if (rc > 0) {
        ++stats_.tx_syscall_batches;
        if (tx_batch_hist_) tx_batch_hist_->record(static_cast<std::uint64_t>(rc));
        trace_batch(TraceKind::kDatapathTxBatch, static_cast<std::uint64_t>(rc));
        off += static_cast<std::size_t>(rc);
        waited = false;
        continue;
      }
      if (rc < 0 && errno == EINTR) continue;
      if (rc < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
        // Full socket buffer, not a bad datagram: wait for POLLOUT once,
        // then retry the untouched remainder in order.
        if (!waited && wait_writable(fd_)) {
          waited = true;
          continue;
        }
        stats_.tx_errors += n - off;
        TLOG_DEBUG << "udp sendmmsg backlog dropped after POLLOUT wait: "
                   << (n - off) << " datagrams";
        return;
      }
      // Per-datagram error on the head (or rc == 0, which sendmmsg does not
      // produce for vlen > 0): charge it and resume behind it.
      ++stats_.tx_errors;
      TLOG_DEBUG << "udp sendmmsg datagram failed: " << std::strerror(errno);
      ++off;
      waited = false;
    }
    return;
  }
#endif
  // Portable fallback: one syscall per datagram, same recovery contract.
  std::uint64_t sent = 0;
  for (std::size_t i = 0; i < n; ++i) {
    bool waited = false;
    for (;;) {
      const ssize_t rc =
          ::sendto(fd_, frames[i]->data(), frames[i]->size(), 0,
                   reinterpret_cast<const sockaddr*>(&addrs[i]), sizeof(addrs[i]));
      if (rc >= 0) {
        ++stats_.tx_syscall_batches;
        if (tx_batch_hist_) tx_batch_hist_->record(1);
        ++sent;
        break;
      }
      if (errno == EINTR) continue;
      if ((errno == EAGAIN || errno == EWOULDBLOCK) && !waited && wait_writable(fd_)) {
        waited = true;
        continue;
      }
      ++stats_.tx_errors;
      if (errno != EAGAIN && errno != EWOULDBLOCK) {
        TLOG_DEBUG << "udp sendto failed: " << std::strerror(errno);
      }
      break;
    }
  }
  // One record for the whole round — per-datagram instants would flood the
  // ring on the portable path without adding timeline information.
  trace_batch(TraceKind::kDatapathTxBatch, sent);
}

void UdpTransport::begin_tx_round() { round_n_ = 0; }

void UdpTransport::submit_entry(const TxEntry& entry) {
  expand_entry(entry, [&](NodeId, const sockaddr_in& addr) {
    round_frames_[round_n_] = &entry.frame;
    round_addrs_[round_n_] = addr;
    if (++round_n_ == kTxBatch) {
      send_batch(round_frames_.data(), round_addrs_.data(), round_n_);
      round_n_ = 0;
    }
  });
}

void UdpTransport::end_tx_round() {
  send_batch(round_frames_.data(), round_addrs_.data(), round_n_);
  round_n_ = 0;
}

void UdpTransport::flush_tx() {
  if (!tx_ring_) return;
  for (;;) {
    // Gather up to kTxBatch queued entries; `held` keeps their frames alive
    // (and pinned by refcount) until every batch they feed has been sent.
    TxEntry held[kTxBatch];
    std::size_t held_n = 0;
    while (held_n < kTxBatch && tx_ring_->try_pop(held[held_n])) ++held_n;
    if (held_n == 0) return;
    begin_tx_round();
    for (std::size_t i = 0; i < held_n; ++i) submit_entry(held[i]);
    end_tx_round();
  }
}

void UdpTransport::broadcast(PacketBuffer packet) {
  TxEntry entry{build_frame(packet), kBroadcastDest};
  if (tx_ring_) {
    if (tx_ring_->try_push(std::move(entry))) {
      reactor_.notify();
    } else {
      stats_.tx_queue_drops += mcast_fd_ >= 0 ? 1 : peer_addrs_.size();
    }
    return;
  }
  begin_tx_round();
  submit_entry(entry);
  end_tx_round();
}

void UdpTransport::unicast(NodeId dest, PacketBuffer packet) {
  if (addr_by_node_.find(dest) == addr_by_node_.end()) {
    TLOG_WARN << "udp unicast to unknown node " << dest;
    return;
  }
  TxEntry entry{build_frame(packet), dest};
  if (tx_ring_) {
    if (tx_ring_->try_push(std::move(entry))) {
      reactor_.notify();
    } else {
      ++stats_.tx_queue_drops;
    }
    return;
  }
  begin_tx_round();
  submit_entry(entry);
  end_tx_round();
}

bool UdpTransport::accept_datagram(PacketBuffer buf, std::size_t len) {
  if (recv_fault_.load(std::memory_order_relaxed)) {
    ++stats_.rx_dropped;
    return false;
  }
  if (len > kMaxDatagram) {
    ++stats_.rx_truncated;
    return false;
  }
  if (len < kUdpHeader) {
    ++stats_.rx_short;
    return false;
  }
  buf.truncate(len);
  ByteReader r(buf);
  auto magic = r.u32();
  auto sender = r.u32();
  if (!magic || !sender || magic.value() != kUdpMagic) {
    ++stats_.rx_dropped;
    return false;  // not ours; a faulty network may deliver garbage
  }
  if (sender.value() == config_.local_node) {
    ++stats_.rx_dropped;
    return false;  // multicast loopback copy of our own broadcast
  }
  buf.drop_front(kUdpHeader);
  const std::size_t payload = buf.size();
  ReceivedPacket packet{std::move(buf), sender.value(), config_.network};
  if (rx_ring_) {
    if (!rx_ring_->try_push(std::move(packet))) {
      // Bounded handoff: a full ring drops like a full kernel socket
      // buffer — counted in BOTH rx_queue_drops (the why) and rx_dropped
      // (the what), so transport- and network-side totals reconcile.
      // (Pool exhaustion cannot drop here: BufferPool::acquire grows on
      // demand rather than failing.)
      ++stats_.rx_queue_drops;
      ++stats_.rx_dropped;
      return false;
    }
    ++stats_.packets_received;
    stats_.bytes_received += payload;
    return true;
  }
  ++stats_.packets_received;
  stats_.bytes_received += payload;
  if (rx_handler_) rx_handler_(std::move(packet));
  return false;
}

void UdpTransport::drain(int fd) {
#if TOTEM_HAVE_MMSG
  if (config_.batched_syscalls) {
    drain_batched(fd);
    return;
  }
#endif
  drain_fallback(fd);
}

void UdpTransport::drain_batched(int fd) {
#if TOTEM_HAVE_MMSG
  // Drain the socket in recvmmsg bursts: each slot is a pooled max-size
  // slab (recycled, so no 64 KB zero-fill per datagram) acquired before the
  // syscall; unused slots return to the pool untouched. MSG_TRUNC makes
  // msg_len report each datagram's REAL length even when it exceeds the
  // buffer, so oversized datagrams are counted, not clipped into garbage.
  bool queued_any = false;
  for (;;) {
    PacketBuffer bufs[kRxBatch];
    mmsghdr msgs[kRxBatch];
    iovec iovs[kRxBatch];
    std::memset(msgs, 0, sizeof(msgs));
    for (std::size_t i = 0; i < kRxBatch; ++i) {
      bufs[i] = rx_pool_.acquire_uninitialized(kMaxDatagram);
      iovs[i].iov_base = bufs[i].mutable_bytes().data();
      iovs[i].iov_len = kMaxDatagram;
      msgs[i].msg_hdr.msg_iov = &iovs[i];
      msgs[i].msg_hdr.msg_iovlen = 1;
    }
    const int rc = ::recvmmsg(fd, msgs, kRxBatch, MSG_TRUNC, nullptr);
    if (rc <= 0) {
      if (rc < 0 && errno != EAGAIN && errno != EWOULDBLOCK && errno != EINTR) {
        TLOG_DEBUG << "udp recvmmsg failed: " << std::strerror(errno);
      }
      break;
    }
    ++stats_.rx_syscall_batches;
    if (rx_batch_hist_) rx_batch_hist_->record(static_cast<std::uint64_t>(rc));
    trace_batch(TraceKind::kDatapathRxBatch, static_cast<std::uint64_t>(rc));
    for (int i = 0; i < rc; ++i) {
      queued_any |= accept_datagram(std::move(bufs[i]), msgs[i].msg_len);
    }
    if (rc < static_cast<int>(kRxBatch)) break;  // socket drained
  }
  if (queued_any && rx_wakeup_) rx_wakeup_();
#else
  (void)fd;
#endif
}

void UdpTransport::drain_fallback(int fd) {
  // Portable path: one recv() per datagram until EAGAIN.
  bool queued_any = false;
  std::uint64_t received = 0;
  for (;;) {
    PacketBuffer buf = rx_pool_.acquire_uninitialized(kMaxDatagram);
    Bytes& storage = buf.mutable_bytes();
    // MSG_TRUNC: recv() returns the datagram's real length (see above).
    const ssize_t n = ::recv(fd, storage.data(), kMaxDatagram, MSG_TRUNC);
    if (n < 0) {
      if (errno != EAGAIN && errno != EWOULDBLOCK && errno != EINTR) {
        TLOG_DEBUG << "udp recv failed: " << std::strerror(errno);
      }
      break;
    }
    ++stats_.rx_syscall_batches;
    if (rx_batch_hist_) rx_batch_hist_->record(1);
    ++received;
    queued_any |= accept_datagram(std::move(buf), static_cast<std::size_t>(n));
  }
  trace_batch(TraceKind::kDatapathRxBatch, received);
  if (queued_any && rx_wakeup_) rx_wakeup_();
}

std::size_t UdpTransport::dispatch_queued(std::size_t max) {
  if (!rx_ring_) return 0;
  std::size_t n = 0;
  ReceivedPacket p;
  while (n < max && rx_ring_->try_pop(p)) {
    if (rx_handler_) rx_handler_(std::move(p));
    ++n;
  }
  return n;
}

std::map<NodeId, UdpEndpoint> loopback_peers(std::uint16_t base_port,
                                             std::uint32_t node_count) {
  std::map<NodeId, UdpEndpoint> peers;
  for (std::uint32_t i = 0; i < node_count; ++i) {
    peers[i] = UdpEndpoint{"127.0.0.1", static_cast<std::uint16_t>(base_port + i)};
  }
  return peers;
}

}  // namespace totem::net

#include "net/udp_transport.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "common/bytes.h"
#include "common/log.h"

namespace totem::net {
namespace {

constexpr std::uint32_t kUdpMagic = 0x544F544Du;  // "TOTM"
constexpr std::size_t kUdpHeader = 8;             // magic + sender id
constexpr std::size_t kMaxDatagram = 64 * 1024;

sockaddr_in to_sockaddr(const UdpEndpoint& ep) {
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(ep.port);
  ::inet_pton(AF_INET, ep.ip.c_str(), &addr.sin_addr);
  return addr;
}

}  // namespace

Result<std::unique_ptr<UdpTransport>> UdpTransport::create(Reactor& reactor, Config config) {
  auto self_it = config.peers.find(config.local_node);
  if (self_it == config.peers.end()) {
    return Status{StatusCode::kInvalidArgument, "local node missing from peer map"};
  }

  const int fd = ::socket(AF_INET, SOCK_DGRAM | SOCK_NONBLOCK, 0);
  if (fd < 0) {
    return Status{StatusCode::kUnavailable,
                  std::string("socket(): ") + std::strerror(errno)};
  }
  // No SO_REUSEADDR: a second bind to the same port is a configuration
  // error and must fail loudly.
  // Match the paper's testbed: Linux 2.2 used 64 KB socket buffers.
  const int buf = 64 * 1024;
  ::setsockopt(fd, SOL_SOCKET, SO_RCVBUF, &buf, sizeof(buf));
  ::setsockopt(fd, SOL_SOCKET, SO_SNDBUF, &buf, sizeof(buf));

  const sockaddr_in addr = to_sockaddr(self_it->second);
  if (::bind(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) < 0) {
    const int err = errno;
    ::close(fd);
    return Status{StatusCode::kUnavailable,
                  "bind(" + self_it->second.ip + ":" + std::to_string(self_it->second.port) +
                      "): " + std::strerror(err)};
  }

  int mcast_fd = -1;
  if (!config.multicast_group.empty()) {
    if (config.multicast_port == 0) {
      ::close(fd);
      return Status{StatusCode::kInvalidArgument, "multicast_port must be set"};
    }
    mcast_fd = ::socket(AF_INET, SOCK_DGRAM | SOCK_NONBLOCK, 0);
    if (mcast_fd < 0) {
      ::close(fd);
      return Status{StatusCode::kUnavailable,
                    std::string("mcast socket(): ") + std::strerror(errno)};
    }
    // All members share the group port, so reuse is required here (the
    // unicast socket deliberately does NOT set it).
    const int one = 1;
    ::setsockopt(mcast_fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
    sockaddr_in maddr{};
    maddr.sin_family = AF_INET;
    maddr.sin_port = htons(config.multicast_port);
    maddr.sin_addr.s_addr = htonl(INADDR_ANY);
    if (::bind(mcast_fd, reinterpret_cast<const sockaddr*>(&maddr), sizeof(maddr)) < 0) {
      const int err = errno;
      ::close(fd);
      ::close(mcast_fd);
      return Status{StatusCode::kUnavailable,
                    std::string("mcast bind(): ") + std::strerror(err)};
    }
    ip_mreq mreq{};
    ::inet_pton(AF_INET, config.multicast_group.c_str(), &mreq.imr_multiaddr);
    ::inet_pton(AF_INET, config.multicast_interface.c_str(), &mreq.imr_interface);
    if (::setsockopt(mcast_fd, IPPROTO_IP, IP_ADD_MEMBERSHIP, &mreq, sizeof(mreq)) < 0) {
      const int err = errno;
      ::close(fd);
      ::close(mcast_fd);
      return Status{StatusCode::kUnavailable,
                    std::string("IP_ADD_MEMBERSHIP: ") + std::strerror(err)};
    }
    // Outgoing multicast leaves through the configured interface; loopback
    // on so co-hosted processes (and our own filter test) receive it.
    in_addr ifaddr{};
    ::inet_pton(AF_INET, config.multicast_interface.c_str(), &ifaddr);
    ::setsockopt(fd, IPPROTO_IP, IP_MULTICAST_IF, &ifaddr, sizeof(ifaddr));
    const unsigned char loop = 1;
    ::setsockopt(fd, IPPROTO_IP, IP_MULTICAST_LOOP, &loop, sizeof(loop));
  }

  return std::unique_ptr<UdpTransport>(
      new UdpTransport(reactor, std::move(config), fd, mcast_fd));
}

UdpTransport::UdpTransport(Reactor& reactor, Config config, int fd, int mcast_fd)
    : reactor_(reactor),
      config_(std::move(config)),
      fd_(fd),
      mcast_fd_(mcast_fd),
      loss_rng_state_(0x9E3779B97F4A7C15uLL ^ (static_cast<std::uint64_t>(fd) << 32)) {
  reactor_.register_fd(fd_, [this] { drain(fd_); });
  if (mcast_fd_ >= 0) {
    reactor_.register_fd(mcast_fd_, [this] { drain(mcast_fd_); });
  }
  if (config_.metrics) {
    const std::string net = std::to_string(config_.network);
    tx_batch_hist_ = config_.metrics->histogram("net.tx_batch.net" + net);
    rx_batch_hist_ = config_.metrics->histogram("net.rx_batch.net" + net);
  }
}

UdpTransport::~UdpTransport() {
  if (fd_ >= 0) {
    reactor_.unregister_fd(fd_);
    ::close(fd_);
  }
  if (mcast_fd_ >= 0) {
    reactor_.unregister_fd(mcast_fd_);
    ::close(mcast_fd_);
  }
}

void UdpTransport::build_frame(BytesView packet) {
  tx_frame_.clear();
  ByteWriter w(tx_frame_);
  w.u32(kUdpMagic);
  w.u32(config_.local_node);
  w.raw(packet);
}

void UdpTransport::send_frame(const UdpEndpoint& ep) {
  ++stats_.packets_sent;
  stats_.bytes_sent += tx_frame_.size() - kUdpHeader;
  if (send_fault_) return;
  if (config_.send_loss_rate > 0.0) {
    // xorshift64*: cheap deterministic-enough loss injection for tests.
    loss_rng_state_ ^= loss_rng_state_ >> 12;
    loss_rng_state_ ^= loss_rng_state_ << 25;
    loss_rng_state_ ^= loss_rng_state_ >> 27;
    const double u =
        static_cast<double>((loss_rng_state_ * 0x2545F4914F6CDD1DuLL) >> 11) * 0x1.0p-53;
    if (u < config_.send_loss_rate) return;
  }

  const sockaddr_in addr = to_sockaddr(ep);
  const ssize_t rc = ::sendto(fd_, tx_frame_.data(), tx_frame_.size(), 0,
                              reinterpret_cast<const sockaddr*>(&addr), sizeof(addr));
  if (rc < 0 && errno != EAGAIN && errno != EWOULDBLOCK) {
    TLOG_DEBUG << "udp sendto failed: " << std::strerror(errno);
  }
}

void UdpTransport::broadcast(PacketBuffer packet) {
  build_frame(packet);
  if (mcast_fd_ >= 0) {
    // One datagram to the group — the native broadcast Totem exploits (§2).
    send_frame(UdpEndpoint{config_.multicast_group, config_.multicast_port});
    if (tx_batch_hist_) tx_batch_hist_->record(1);
    return;
  }
  std::uint64_t sent = 0;
  for (const auto& [node, ep] : config_.peers) {
    if (node == config_.local_node) continue;
    send_frame(ep);
    ++sent;
  }
  if (tx_batch_hist_) tx_batch_hist_->record(sent);
}

void UdpTransport::unicast(NodeId dest, PacketBuffer packet) {
  auto it = config_.peers.find(dest);
  if (it == config_.peers.end()) {
    TLOG_WARN << "udp unicast to unknown node " << dest;
    return;
  }
  build_frame(packet);
  send_frame(it->second);
}

void UdpTransport::drain(int fd) {
  // Drain the socket: the reactor signals readability once per poll round.
  // Each datagram lands in a pooled buffer: the pool recycles the max-size
  // slab (no 64 KB zero-fill per recv) and the framing header is stripped
  // by narrowing the view, not by copying the payload out.
  std::uint64_t drained = 0;
  for (;;) {
    PacketBuffer buf = rx_pool_.acquire_uninitialized(kMaxDatagram);
    Bytes& storage = buf.mutable_bytes();
    // MSG_TRUNC makes recv() return the datagram's REAL length even when it
    // exceeds the buffer, so oversized datagrams are counted, not silently
    // clipped into parse garbage.
    const ssize_t n = ::recv(fd, storage.data(), kMaxDatagram, MSG_TRUNC);
    if (n < 0) {
      if (errno != EAGAIN && errno != EWOULDBLOCK) {
        TLOG_DEBUG << "udp recv failed: " << std::strerror(errno);
      }
      break;
    }
    ++drained;
    if (recv_fault_) {
      ++stats_.rx_dropped;
      continue;
    }
    if (static_cast<std::size_t>(n) > kMaxDatagram) {
      ++stats_.rx_truncated;
      continue;
    }
    if (static_cast<std::size_t>(n) < kUdpHeader) {
      ++stats_.rx_short;
      continue;
    }
    buf.truncate(static_cast<std::size_t>(n));
    ByteReader r(buf);
    auto magic = r.u32();
    auto sender = r.u32();
    if (!magic || !sender || magic.value() != kUdpMagic) {
      ++stats_.rx_dropped;
      continue;  // not ours; a faulty network may deliver garbage
    }
    if (sender.value() == config_.local_node) {
      ++stats_.rx_dropped;
      continue;  // multicast loopback copy of our own broadcast
    }
    ++stats_.packets_received;
    stats_.bytes_received += buf.size();
    if (rx_handler_) {
      buf.drop_front(kUdpHeader);
      rx_handler_(ReceivedPacket{std::move(buf), sender.value(), config_.network});
    }
  }
  if (rx_batch_hist_ && drained > 0) rx_batch_hist_->record(drained);
}

std::map<NodeId, UdpEndpoint> loopback_peers(std::uint16_t base_port,
                                             std::uint32_t node_count) {
  std::map<NodeId, UdpEndpoint> peers;
  for (std::uint32_t i = 0; i < node_count; ++i) {
    peers[i] = UdpEndpoint{"127.0.0.1", static_cast<std::uint16_t>(base_port + i)};
  }
  return peers;
}

}  // namespace totem::net

// Simulated Ethernet broadcast domain + simulated host network stack.
//
// This is the substitution for the paper's physical testbed (two 3Com
// 100 Mbit/s Ethernets, Linux 2.2 UDP stack, PII-450/PIII-900 hosts) — see
// DESIGN.md §1. The model captures exactly the effects the paper's
// evaluation depends on:
//
//  * Ethernet framing: 94 bytes of header/trailer overhead per frame and a
//    1424-byte maximum payload (paper §8) — the source of the throughput
//    peaks at 700/1400-byte messages.
//  * Wire serialization at a configurable bandwidth (default 100 Mbit/s).
//    Totem's token scheduling means only one node transmits at a time, so a
//    single busy-until horizon per network is a faithful model.
//  * Per-packet CPU cost for each network-stack traversal, on a per-host
//    serializing CPU shared by ALL of the host's NICs. Active replication
//    doubles these traversals — the paper's stated cause of its slowdown.
//  * Bounded receive buffering (Linux 2.2 default 64 KB socket buffers).
//  * FIFO per (sender, network, receiver) in the fault-free case; packets on
//    DIFFERENT networks may arrive in any relative order (paper §5, Fig. 1).
//
// Fault injection covers the paper's full fault model (§3): per-node send
// faults, per-node receive faults, per-link loss, partitions within one
// network, random loss, and total network failure.
#pragma once

#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <optional>
#include <vector>

#include "common/types.h"
#include "net/link_profile.h"
#include "net/transport.h"
#include "sim/simulator.h"

namespace totem::net {

/// CPU cost of one network-stack traversal on a simulated host. Values are
/// calibrated in src/harness/calibration.h so that the unreplicated 4-node ring
/// delivers ~9,000 1-KB msgs/s (paper §2).
struct HostCostModel {
  Duration send_packet_cost{20};  // one sendto() per packet per network
  Duration recv_packet_cost{25};  // one recvfrom() per packet copy
  double send_byte_cost_us = 0.004;  // kernel copy-out per byte
  double recv_byte_cost_us = 0.004;  // kernel copy-in per byte
  /// User-space payload copy per byte. Charged only when a send actually
  /// materializes a copy (the legacy BytesView entry points); the pooled
  /// zero-copy path shares one buffer across networks and never pays it.
  /// Default 0 keeps non-calibrated tests cost-identical to the pre-pool
  /// implementation.
  double copy_byte_cost_us = 0.0;
};

/// One simulated host: a single CPU shared by the host's NICs and protocol
/// stack. Implements CpuCharger so the SRP can charge per-message
/// processing time (ordering, dedup, delivery bookkeeping).
class SimHost : public CpuCharger {
 public:
  SimHost(sim::Simulator& simulator, NodeId id, HostCostModel costs = {})
      : sim_(simulator), id_(id), costs_(costs) {}

  void charge(Duration cost) override {
    cpu_.acquire(sim_.now(), cost);
  }

  [[nodiscard]] NodeId id() const { return id_; }
  [[nodiscard]] sim::CpuModel& cpu() { return cpu_; }
  [[nodiscard]] const HostCostModel& costs() const { return costs_; }
  [[nodiscard]] sim::Simulator& simulator() { return sim_; }

 private:
  sim::Simulator& sim_;
  NodeId id_;
  HostCostModel costs_;
  sim::CpuModel cpu_;
};

class SimTransport;

class SimNetwork {
 public:
  struct Params {
    double bandwidth_mbps = 100.0;
    Duration base_latency{5};
    Duration latency_jitter{2};      // uniform [0, jitter)
    std::uint32_t frame_overhead = 94;    // Eth + IPv4 + UDP + Totem headers
    std::uint32_t max_frame_payload = 1424;
    std::size_t rx_buffer_bytes = 64 * 1024;  // Linux 2.2 socket default
    double loss_rate = 0.0;
  };

  struct Stats {
    std::uint64_t packets_sent = 0;
    std::uint64_t deliveries = 0;
    std::uint64_t dropped_loss = 0;        // random / link loss
    std::uint64_t dropped_fault = 0;       // send/recv fault, failure, partition
    std::uint64_t dropped_overflow = 0;    // rx socket buffer overflow
    std::uint64_t dropped_injected = 0;    // drop_next_unicasts sabotage
    std::uint64_t corrupted = 0;           // delivered with a flipped byte
    std::uint64_t reordered = 0;           // bypassed the FIFO clamp (profile)
    std::uint64_t duplicated = 0;          // extra deliveries (profile)
    std::uint64_t wire_bytes = 0;          // incl. frame overhead
    Duration wire_busy{0};
  };

  /// One captured wire event (enable with start_capture). The pcap-style
  /// companion to the protocol-level TraceRing: what actually crossed (or
  /// failed to cross) this network. A broadcast that reaches the wire
  /// records one kSent entry (dst == kInvalidNode); every RECEIVER the
  /// random/link loss then eats records its own kDroppedLoss entry, so
  /// capture totals reconcile with Stats::dropped_loss.
  struct CapturedPacket {
    TimePoint at{};                  // submission time
    NodeId src = kInvalidNode;
    NodeId dst = kInvalidNode;       // kInvalidNode => broadcast
    std::uint32_t size = 0;          // packet bytes (pre-framing)
    enum class Verdict : std::uint8_t {
      kSent = 0,          // put on the wire
      kDroppedFailed,     // network failed / send fault / unknown dest
      kDroppedLoss,       // eaten by loss_rate / link loss (per receiver)
    } verdict = Verdict::kSent;
  };

  SimNetwork(sim::Simulator& simulator, NetworkId id, Params params);
  SimNetwork(sim::Simulator& simulator, NetworkId id);
  ~SimNetwork();

  SimNetwork(const SimNetwork&) = delete;
  SimNetwork& operator=(const SimNetwork&) = delete;

  /// Attach a host to this network; returns the host's NIC/socket endpoint.
  /// The returned transport is owned by the network and lives as long as it.
  SimTransport& attach(SimHost& host);

  // ---- fault injection (paper §3 fault model) ----
  /// Change propagation latency at runtime (e.g. to model one slow network
  /// whose traffic the fast network systematically overtakes — the reorder
  /// scenarios of Figs. 1 and 3).
  void set_base_latency(Duration latency) {
    params_.base_latency = latency;
    default_profile_.latency = latency;
  }

  void fail() { failed_ = true; }            // total network failure
  void recover() { failed_ = false; }
  [[nodiscard]] bool failed() const { return failed_; }
  void set_loss_rate(double p) {
    params_.loss_rate = p;
    default_profile_.loss = p;
  }

  // ---- degraded-network link profiles (DESIGN.md §14) ----
  /// Replace the whole network's default link behaviour (latency, jitter,
  /// loss, reordering, duplication). Per-(src, dst) profiles still win.
  void set_default_profile(const LinkProfile& p) { default_profile_ = p; }
  /// Restore the default profile derived from the construction Params.
  void reset_default_profile() { default_profile_ = profile_from_params(); }
  [[nodiscard]] const LinkProfile& default_profile() const { return default_profile_; }
  /// Profile for the DIRECTED link src -> dst (overrides the network
  /// default entirely; pass std::nullopt to clear). Directionality is the
  /// point: an asymmetric link degrades one direction only.
  void set_link_profile(NodeId src, NodeId dst, std::optional<LinkProfile> p);
  /// Drop every per-link profile override (the default profile remains).
  void clear_link_profiles() { link_profile_.clear(); }
  /// Probability that a delivered packet arrives with a flipped byte
  /// (models a NIC/switch corrupting frames; the packet CRC catches it and
  /// the SRP's retransmission machinery repairs the loss).
  void set_corruption_rate(double p) { corruption_rate_ = p; }
  /// Node `n` cannot send on this network (faulty TX path).
  void set_send_fault(NodeId n, bool faulty);
  /// Node `n` cannot receive on this network (faulty RX path).
  void set_recv_fault(NodeId n, bool faulty);
  /// Loss probability for the directed link src -> dst (overrides loss_rate
  /// when set; pass std::nullopt to clear).
  void set_link_loss(NodeId src, NodeId dst, std::optional<double> p);
  /// Partition the network: only nodes in the same group communicate.
  void set_partition(std::vector<std::vector<NodeId>> groups);
  void clear_partition() { group_of_.clear(); }
  /// Swallow the next `n` unicast submissions on this network, whoever
  /// sends them. Tokens (and commit tokens) are the ring's only unicast
  /// traffic, so this injects deterministic token loss on one network
  /// without inspecting protocol headers.
  void drop_next_unicasts(std::uint32_t n) { drop_unicasts_ += n; }
  void clear_pending_unicast_drops() { drop_unicasts_ = 0; }
  [[nodiscard]] std::uint32_t pending_unicast_drops() const { return drop_unicasts_; }

  [[nodiscard]] NetworkId id() const { return id_; }
  [[nodiscard]] const Stats& stats() const { return stats_; }
  [[nodiscard]] const Params& params() const { return params_; }

  /// Start recording every submitted packet (bounded ring of `capacity`).
  void start_capture(std::size_t capacity = 4096) {
    capture_enabled_ = true;
    capture_capacity_ = capacity > 0 ? capacity : 1;
    capture_.clear();
    capture_dropped_ = 0;
  }
  void stop_capture() { capture_enabled_ = false; }
  [[nodiscard]] const std::deque<CapturedPacket>& capture() const { return capture_; }
  [[nodiscard]] std::size_t capture_overwritten() const { return capture_dropped_; }

  /// Wire time to transmit a packet of `payload` bytes, including framing.
  [[nodiscard]] Duration transmission_time(std::size_t payload) const;
  /// Bytes on the wire for a packet of `payload` bytes, including framing.
  [[nodiscard]] std::uint64_t wire_size(std::size_t payload) const;

 private:
  friend class SimTransport;

  void submit(SimTransport& from, PacketBuffer packet, std::optional<NodeId> dest);
  void deliver_shared(SimTransport& from, SimTransport& to, const PacketBuffer& data,
                      TimePoint wire_done);
  /// Schedule the arrival-side half of a delivery (rx buffer, receiver CPU,
  /// handler upcall) at `arrival`. Shared by the primary delivery and the
  /// duplication path.
  void schedule_arrival(SimTransport* dest, NodeId src, const PacketBuffer& data,
                        TimePoint arrival);
  [[nodiscard]] bool same_partition(NodeId a, NodeId b) const;
  [[nodiscard]] LinkProfile profile_from_params() const;

  sim::Simulator& sim_;
  NetworkId id_;
  Params params_;
  Stats stats_;
  LinkProfile default_profile_;
  BufferPool corruption_pool_;  // per-receiver mangled copies only
  double corruption_rate_ = 0.0;
  std::uint32_t drop_unicasts_ = 0;
  bool failed_ = false;
  TimePoint wire_busy_until_{};
  std::vector<std::unique_ptr<SimTransport>> endpoints_;
  std::map<NodeId, SimTransport*> by_node_;
  std::map<NodeId, bool> send_fault_;
  std::map<NodeId, bool> recv_fault_;
  std::map<std::pair<NodeId, NodeId>, double> link_loss_;
  std::map<std::pair<NodeId, NodeId>, LinkProfile> link_profile_;
  std::map<NodeId, int> group_of_;  // empty => no partition
  // Enforces FIFO per (src, dst) pair on one network (UDP-over-Ethernet
  // preserves order to a single recipient in the fault-free case; paper §5).
  // Packets a LinkProfile selects for reordering deliberately bypass this
  // clamp — that is the only way the sim can express reordering at all.
  std::map<std::pair<NodeId, NodeId>, TimePoint> last_arrival_;

  // Wire capture (start_capture).
  void record_capture(NodeId src, std::optional<NodeId> dst, std::size_t size,
                      CapturedPacket::Verdict verdict);
  bool capture_enabled_ = false;
  std::size_t capture_capacity_ = 0;
  std::size_t capture_dropped_ = 0;
  std::deque<CapturedPacket> capture_;
};

class SimTransport final : public Transport {
 public:
  SimTransport(SimNetwork& network, SimHost& host)
      : network_(network), host_(host) {}

  using Transport::broadcast;
  using Transport::unicast;

  void broadcast(PacketBuffer packet) override {
    network_.submit(*this, std::move(packet), std::nullopt);
  }
  void unicast(NodeId dest, PacketBuffer packet) override {
    network_.submit(*this, std::move(packet), dest);
  }
  void set_rx_handler(RxHandler handler) override { rx_handler_ = std::move(handler); }

  [[nodiscard]] NetworkId network_id() const override { return network_.id(); }
  [[nodiscard]] NodeId local_node() const override { return host_.id(); }
  [[nodiscard]] const Stats& stats() const override { return stats_; }

  [[nodiscard]] SimHost& host() { return host_; }

 protected:
  /// The legacy copying entry points cost real user-space cycles on a real
  /// host; charge them to the simulated CPU (copy_byte_cost_us).
  void on_payload_copy(std::size_t bytes) override {
    const auto& costs = host_.costs();
    if (costs.copy_byte_cost_us > 0.0) {
      host_.charge(Duration(
          static_cast<Duration::rep>(static_cast<double>(bytes) * costs.copy_byte_cost_us)));
    }
  }

 private:
  friend class SimNetwork;

  SimNetwork& network_;
  SimHost& host_;
  RxHandler rx_handler_;
  Stats stats_;
  std::size_t rx_pending_bytes_ = 0;  // models the 64 KB socket buffer
};

}  // namespace totem::net

#include "net/telemetry_server.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

namespace totem::net {

namespace {

const char* reason_phrase(int status) {
  switch (status) {
    case 200: return "OK";
    case 400: return "Bad Request";
    case 404: return "Not Found";
    case 405: return "Method Not Allowed";
    case 503: return "Service Unavailable";
    default: return "Status";
  }
}

}  // namespace

Result<std::unique_ptr<TelemetryServer>> TelemetryServer::create(
    Reactor& reactor, Config config, Handler handler) {
  if (!handler) {
    return Status(StatusCode::kInvalidArgument, "TelemetryServer needs a handler");
  }
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(config.port);
  if (::inet_pton(AF_INET, config.bind_address.c_str(), &addr.sin_addr) != 1) {
    return Status(StatusCode::kInvalidArgument,
                  "bad telemetry bind address: " + config.bind_address);
  }

  const int fd = ::socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC, 0);
  if (fd < 0) {
    return Status(StatusCode::kUnavailable,
                  std::string("socket: ") + std::strerror(errno));
  }
  const int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  if (::bind(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) < 0 ||
      ::listen(fd, 16) < 0) {
    const Status s(StatusCode::kUnavailable,
                   "telemetry bind/listen " + config.bind_address + ":" +
                       std::to_string(config.port) + ": " + std::strerror(errno));
    ::close(fd);
    return s;
  }
  sockaddr_in bound{};
  socklen_t len = sizeof(bound);
  std::uint16_t port = config.port;
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&bound), &len) == 0) {
    port = ntohs(bound.sin_port);
  }

  auto server = std::unique_ptr<TelemetryServer>(
      new TelemetryServer(reactor, std::move(config), std::move(handler)));
  server->listen_fd_ = fd;
  server->port_ = port;
  TelemetryServer* raw = server.get();
  reactor.register_fd(fd, [raw] { raw->on_acceptable(); });
  return server;
}

TelemetryServer::TelemetryServer(Reactor& reactor, Config config, Handler handler)
    : reactor_(reactor), config_(std::move(config)), handler_(std::move(handler)) {
  reply_queue_ = std::make_shared<ReplyQueue>();
  reply_queue_->reactor = &reactor_;
  wake_hook_id_ = reactor_.add_wake_hook([this] { drain_replies(); });
}

TelemetryServer::~TelemetryServer() {
  {
    // Detach in-flight reply closures: after this they silently drop.
    std::lock_guard<std::mutex> lk(reply_queue_->mu);
    reply_queue_->reactor = nullptr;
  }
  reactor_.remove_wake_hook(wake_hook_id_);
  while (!conns_.empty()) close_conn(conns_.begin()->first);
  if (listen_fd_ >= 0) {
    reactor_.unregister_fd(listen_fd_);
    ::close(listen_fd_);
  }
}

void TelemetryServer::on_acceptable() {
  for (;;) {
    const int fd = ::accept4(listen_fd_, nullptr, nullptr,
                             SOCK_NONBLOCK | SOCK_CLOEXEC);
    if (fd < 0) return;  // EAGAIN or transient error: wait for the next round
    if (conns_.size() >= config_.max_connections) {
      ++stats_.connections_rejected;
      ::close(fd);
      continue;
    }
    ++stats_.connections_accepted;
    const std::uint64_t id = next_conn_id_++;
    conns_[id].fd = fd;
    reactor_.register_fd(fd, [this, id] { on_readable(id); });
  }
}

void TelemetryServer::on_readable(std::uint64_t id) {
  auto it = conns_.find(id);
  if (it == conns_.end()) return;
  Conn& c = it->second;
  char buf[2048];
  for (;;) {
    const ssize_t n = ::read(c.fd, buf, sizeof(buf));
    if (n > 0) {
      if (!c.dispatched) c.in.append(buf, static_cast<std::size_t>(n));
      continue;  // keep draining; dispatched connections just discard input
    }
    if (n == 0) {  // peer closed before (or after) the request completed
      if (!c.dispatched) close_conn(id);
      return;
    }
    if (errno == EAGAIN || errno == EWOULDBLOCK) break;
    close_conn(id);
    return;
  }
  if (c.dispatched) return;
  if (c.in.size() > config_.max_request_bytes) {
    ++stats_.bad_requests;
    c.dispatched = true;
    start_response(id, Response{400, "text/plain; charset=utf-8",
                                "request too large\n"});
    return;
  }
  // HTTP/1.0 GET: the request is complete at the first blank line (any
  // body would be ignored anyway).
  const std::size_t header_end = c.in.find("\r\n\r\n");
  if (header_end == std::string::npos) return;

  const std::size_t line_end = c.in.find("\r\n");
  const std::string line = c.in.substr(0, line_end);
  const std::size_t sp1 = line.find(' ');
  const std::size_t sp2 = sp1 == std::string::npos ? std::string::npos
                                                   : line.find(' ', sp1 + 1);
  if (sp1 == std::string::npos || sp2 == std::string::npos ||
      line.compare(sp2 + 1, 5, "HTTP/") != 0) {
    ++stats_.bad_requests;
    c.dispatched = true;
    start_response(id, Response{400, "text/plain; charset=utf-8",
                                "malformed request line\n"});
    return;
  }
  Request req;
  req.method = line.substr(0, sp1);
  req.target = line.substr(sp1 + 1, sp2 - sp1 - 1);
  c.dispatched = true;
  c.in.clear();
  c.in.shrink_to_fit();

  // The reply closure may outlive the server and fire from any thread.
  std::weak_ptr<ReplyQueue> weak = reply_queue_;
  handler_(req, [weak, id](Response r) {
    const std::shared_ptr<ReplyQueue> q = weak.lock();
    if (!q) return;
    std::lock_guard<std::mutex> lk(q->mu);
    if (!q->reactor) return;
    q->replies.emplace_back(id, std::move(r));
    q->reactor->notify();
  });
}

void TelemetryServer::drain_replies() {
  std::vector<std::pair<std::uint64_t, Response>> replies;
  {
    std::lock_guard<std::mutex> lk(reply_queue_->mu);
    replies.swap(reply_queue_->replies);
  }
  for (auto& [id, response] : replies) {
    if (conns_.find(id) == conns_.end()) continue;  // client already gone
    ++stats_.requests_served;
    start_response(id, response);
  }
}

void TelemetryServer::start_response(std::uint64_t id, const Response& r) {
  auto it = conns_.find(id);
  if (it == conns_.end()) return;
  Conn& c = it->second;
  c.out = "HTTP/1.0 " + std::to_string(r.status) + ' ' +
          reason_phrase(r.status) +
          "\r\nContent-Type: " + r.content_type +
          "\r\nContent-Length: " + std::to_string(r.body.size()) +
          "\r\nConnection: close\r\n\r\n" + r.body;
  c.off = 0;
  // Try inline first — most responses fit the socket buffer and finish
  // without ever registering for writability.
  flush(id);
  if (auto again = conns_.find(id); again != conns_.end()) {
    reactor_.register_fd_write(again->second.fd,
                               [this, id] { on_writable(id); });
  }
}

void TelemetryServer::on_writable(std::uint64_t id) { flush(id); }

void TelemetryServer::flush(std::uint64_t id) {
  auto it = conns_.find(id);
  if (it == conns_.end()) return;
  Conn& c = it->second;
  while (c.off < c.out.size()) {
    const ssize_t n =
        ::send(c.fd, c.out.data() + c.off, c.out.size() - c.off, MSG_NOSIGNAL);
    if (n > 0) {
      c.off += static_cast<std::size_t>(n);
      continue;
    }
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) return;
    break;  // error: give up on this connection
  }
  close_conn(id);  // fully flushed (or failed): HTTP/1.0, one shot
}

void TelemetryServer::close_conn(std::uint64_t id) {
  auto it = conns_.find(id);
  if (it == conns_.end()) return;
  const int fd = it->second.fd;
  reactor_.unregister_fd(fd);
  reactor_.unregister_fd_write(fd);
  ::close(fd);
  conns_.erase(it);
}

}  // namespace totem::net

// IoUringTransport: the io_uring datapath backend (DESIGN.md §15).
//
// Same wire format, framing, accounting, and SPSC handoff as UdpTransport —
// only the syscall strategy changes:
//
//   RX: one multishot IORING_OP_RECV per socket, armed once, delivering
//       every datagram into a provided-buffer ring of pooled 2 KB buffers.
//       Zero syscalls on the receive path while the recv stays armed; the
//       reactor polls the ring fd (POLLIN = CQEs pending) like any socket.
//   TX: one IORING_OP_SEND SQE per datagram on a CONNECTED per-peer socket
//       (connected sockets skip the per-sendto route lookup). A broadcast
//       fan-out is emitted as an IOSQE_IO_LINK chain so the kernel walks the
//       whole fan-out from one submit. Frames stay refcount-pinned in a TX
//       slot until their completion arrives.
//
//       When the kernel supports UDP_SEGMENT (4.18+), consecutive same-size
//       frames to the SAME destination within a flush round are packed into
//       one IORING_OP_SENDMSG carrying a GSO cmsg: the kernel traverses the
//       send path once and segments the buffer into up to 64 real datagrams.
//       On loopback this roughly halves the per-datagram kernel cost — it is
//       where most of the backend's throughput win over sendmmsg comes from.
//
// Created through UdpTransport::create() with Config::backend = kIoUring;
// never constructed directly. Compiled only when TOTEM_IO_URING_COMPILED
// (Linux build with <linux/io_uring.h> and TOTEM_IO_URING=ON).
#pragma once

#include "net/udp_transport.h"
#include "net/uring.h"

#if TOTEM_IO_URING_COMPILED
#define TOTEM_IO_URING_BACKEND 1
#else
#define TOTEM_IO_URING_BACKEND 0
#endif

#if TOTEM_IO_URING_BACKEND

#include <sys/socket.h>

#include <cstdint>
#include <deque>
#include <mutex>
#include <vector>

namespace totem::net {

class IoUringTransport final : public UdpTransport {
 public:
  ~IoUringTransport() override;

 protected:
  Status attach() override;
  void begin_tx_round() override;
  void submit_entry(const TxEntry& entry) override;
  void end_tx_round() override;

 private:
  friend class UdpTransport;  // create() constructs us
  IoUringTransport(Reactor& reactor, Config config, int fd, int mcast_fd);

  // CQE user_data tags. TX slots live at kTxBase + slot index.
  static constexpr std::uint64_t kRxMain = 1;
  static constexpr std::uint64_t kRxMcast = 2;
  static constexpr std::uint64_t kTxBase = 1ull << 16;
  static constexpr std::uint64_t kCancelBit = 1ull << 32;

  struct TxSlot {
    PacketBuffer frame;  // pins the bytes the kernel may still read
    int fd = -1;
    bool retried = false;  // one bounded resubmit after -ECANCELED
    // GSO state: segs > 1 means `frame` is a packed buffer of `segs`
    // datagrams of `seg_bytes` each (last possibly shorter), sent as one
    // IORING_OP_SENDMSG with a UDP_SEGMENT cmsg. The msghdr/iovec/cmsg
    // live here because the kernel reads them until the CQE arrives.
    unsigned segs = 1;
    unsigned seg_bytes = 0;
    msghdr mh{};
    iovec iov{};
    alignas(cmsghdr) char cmsg[CMSG_SPACE(sizeof(std::uint16_t))] = {};
  };
  struct BacklogEntry {
    PacketBuffer frame;
    int fd = -1;
  };

  Status setup_tx_sockets();
  [[nodiscard]] int tx_fd_for(NodeId dest) const;
  /// Arm (or re-arm) the multishot recv for `tag` on `fd`.
  void arm_recv_locked(int fd, std::uint64_t tag);
  /// Emit one send SQE for slot `slot` (frame/fd already stored). `link`
  /// chains it to the NEXT SQE. Must be decided before the SQE is written —
  /// a later flush may hand the slot's SQE memory to another writer.
  void emit_send_locked(std::size_t slot, bool link);
  /// Queue (frame, fd) behind the in-flight sends, preserving order.
  void backlog_locked(PacketBuffer frame, int fd);
  void drain_backlog_locked();
  void flush_round_locked();
  /// GSO path: stash `frame` on `fd`'s per-round queue (emitted at
  /// end_tx_round by flush_gso_locked, which packs equal-size runs).
  void queue_gso_locked(int fd, PacketBuffer frame);
  void flush_gso_locked();
  /// Reactor-thread completion handler (ring fd readable).
  void on_ring_readable();

  Uring ring_;
  bool shutting_down_ = false;
  bool ring_registered_ = false;

  // TX state. tx_mu_ serializes every SQ/slot/backlog access: submit may run
  // on the ordering thread (direct mode) while the reactor thread reaps.
  std::mutex tx_mu_;
  std::vector<TxSlot> slots_;
  std::vector<std::size_t> free_slots_;
  std::deque<BacklogEntry> backlog_;
  unsigned round_submitted_ = 0;  // datagrams emitted in the current round
  bool round_open_ = false;

  // Per-destination frame queues for the current flush round (GSO packing).
  // Fixed layout built at attach: one entry per TX socket; the frame
  // vectors keep their capacity across rounds.
  struct GsoQueue {
    int fd = -1;
    std::vector<PacketBuffer> frames;
  };
  std::vector<GsoQueue> round_gso_;
  bool gso_ok_ = false;  // kernel accepted UDP_SEGMENT on a TX socket

  // Connected per-peer TX sockets, indexed like peer_addrs_; mcast_tx_fd_
  // is connected to the group when multicast is enabled.
  std::vector<std::pair<NodeId, int>> tx_fds_;
  int mcast_tx_fd_ = -1;

  // RX state (reactor thread only, except during attach/teardown).
  std::vector<PacketBuffer> rx_bufs_;  // bid -> pinned pooled buffer
  std::size_t rx_buf_bytes_ = 0;
  bool rx_main_armed_ = false;
  bool rx_mcast_armed_ = false;
  bool rearm_main_ = false;
  bool rearm_mcast_ = false;
};

}  // namespace totem::net

#endif  // TOTEM_IO_URING_BACKEND

// TelemetryServer: a minimal non-blocking HTTP/1.0 responder on the
// Reactor, built for scrape traffic (Prometheus, health probes, trace
// dumps) — NOT a general web server.
//
// Scope and posture (DESIGN.md §16): binds loopback by default, speaks
// just enough HTTP/1.0 to serve GET requests, one response per
// connection (`Connection: close`), no TLS, no auth — expose it beyond
// localhost only behind a real proxy. Request bodies are ignored;
// anything that is not a well-formed request line is answered 400 and
// the connection closed.
//
// Threading. The listener and every connection live on the reactor
// thread: accepts, reads and writes all happen inside poll rounds, and a
// response larger than one send() drains through the reactor's
// writable-fd registration without ever blocking the loop. The ONE
// cross-thread edge is the reply callback handed to the Handler: it may
// be invoked from any thread (api::NodeTelemetry posts snapshot work to
// the ordering thread under ThreadedRuntime) — it enqueues the response
// under a mutex and kicks Reactor::notify(); the reactor's wake hook
// marshals it back onto the loop. The callback holds only a weak_ptr to
// that queue, so replies arriving after the server (or the connection)
// is gone are dropped, never dereferenced.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "common/status.h"
#include "net/reactor.h"

namespace totem::net {

class TelemetryServer {
 public:
  struct Request {
    std::string method;  ///< e.g. "GET"
    std::string target;  ///< e.g. "/metrics" (query string included verbatim)
  };

  struct Response {
    int status = 200;  ///< 200 / 400 / 404 / 405 / 503 get reason phrases
    std::string content_type = "text/plain; charset=utf-8";
    std::string body;
  };

  /// Invoked on the reactor thread once per complete request. `reply` must
  /// be called exactly once; it is thread-safe, may be called immediately
  /// or later, and is a no-op once the server or connection is gone.
  using Handler =
      std::function<void(const Request&, std::function<void(Response)> reply)>;

  struct Config {
    std::string bind_address = "127.0.0.1";  ///< loopback-only by default
    std::uint16_t port = 0;                  ///< 0 = ephemeral; see port()
    std::size_t max_connections = 16;        ///< extra accepts close instantly
    std::size_t max_request_bytes = 8192;    ///< oversize requests answered 400
  };

  /// Open + bind + listen, register with the reactor. Call from the
  /// reactor thread (or before it starts).
  static Result<std::unique_ptr<TelemetryServer>> create(Reactor& reactor,
                                                         Config config,
                                                         Handler handler);
  ~TelemetryServer();

  TelemetryServer(const TelemetryServer&) = delete;
  TelemetryServer& operator=(const TelemetryServer&) = delete;

  /// The bound port (resolves Config::port == 0 to the kernel's pick).
  [[nodiscard]] std::uint16_t port() const { return port_; }

  struct Stats {
    std::uint64_t connections_accepted = 0;
    std::uint64_t connections_rejected = 0;  ///< over max_connections
    std::uint64_t requests_served = 0;
    std::uint64_t bad_requests = 0;
  };
  [[nodiscard]] const Stats& stats() const { return stats_; }

 private:
  struct Conn {
    int fd = -1;
    std::string in;          ///< request bytes until the blank line
    std::string out;         ///< formatted response being flushed
    std::size_t off = 0;     ///< out bytes already written
    bool dispatched = false; ///< handler invoked, awaiting reply
  };

  /// Replies crossing back from other threads; the reply closures hold a
  /// weak_ptr to this, the reactor wake hook drains it.
  struct ReplyQueue {
    std::mutex mu;
    Reactor* reactor = nullptr;  // null once the server is destroyed
    std::vector<std::pair<std::uint64_t, Response>> replies;
  };

  TelemetryServer(Reactor& reactor, Config config, Handler handler);

  void on_acceptable();
  void on_readable(std::uint64_t id);
  void on_writable(std::uint64_t id);
  void start_response(std::uint64_t id, const Response& r);
  void flush(std::uint64_t id);
  void close_conn(std::uint64_t id);
  void drain_replies();

  Reactor& reactor_;
  Config config_;
  Handler handler_;
  int listen_fd_ = -1;
  std::uint16_t port_ = 0;
  std::uint64_t next_conn_id_ = 1;
  std::map<std::uint64_t, Conn> conns_;
  std::shared_ptr<ReplyQueue> reply_queue_;
  std::uint64_t wake_hook_id_ = 0;
  Stats stats_;
};

}  // namespace totem::net

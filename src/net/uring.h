// Minimal raw-syscall io_uring shim (no liburing dependency).
//
// The toolchain ships <linux/io_uring.h> but not liburing, so this wraps
// the three syscalls (io_uring_setup / io_uring_enter / io_uring_register)
// and the mmap'd SQ/CQ rings directly — just enough surface for
// IoUringTransport: SQE acquisition, submission, CQE reaping, and one
// provided-buffer ring (IORING_REGISTER_PBUF_RING) for multishot recv.
//
// Threading: the shim itself is not synchronized. The owner serializes all
// SQ access (get_sqe/submit) and CQ access (reap) — IoUringTransport holds
// its TX mutex around both. The kernel side of the rings uses its own
// acquire/release protocol, honored here with std::atomic_ref.
#pragma once

#include "common/status.h"

#if defined(__linux__) && defined(TOTEM_HAVE_IO_URING)
#define TOTEM_IO_URING_COMPILED 1
#else
#define TOTEM_IO_URING_COMPILED 0
#endif

#if TOTEM_IO_URING_COMPILED

#include <linux/io_uring.h>

#include <atomic>
#include <cstddef>
#include <cstdint>

namespace totem::net {

class Uring {
 public:
  Uring() = default;
  ~Uring();
  Uring(const Uring&) = delete;
  Uring& operator=(const Uring&) = delete;

  /// Create the ring: `sq_entries` submission slots and a completion queue
  /// of at least `cq_entries` (IORING_SETUP_CQSIZE; the kernel rounds both
  /// up to powers of two). kUnavailable when the kernel lacks io_uring
  /// (ENOSYS, or seccomp EPERM) or rejects the geometry.
  Status init(unsigned sq_entries, unsigned cq_entries);

  /// The ring fd. Pollable — POLLIN when CQEs are pending — so it plugs
  /// into net::Reactor like any socket.
  [[nodiscard]] int ring_fd() const { return fd_; }

  /// Next free SQE, zeroed, or nullptr when the SQ is full (submit first).
  io_uring_sqe* get_sqe();
  /// SQEs acquired but not yet handed to the kernel.
  [[nodiscard]] unsigned pending() const { return pending_; }
  /// Free SQ slots remaining before get_sqe() returns nullptr.
  [[nodiscard]] unsigned sq_space() const;

  /// io_uring_enter: submit everything pending, optionally waiting for
  /// `wait_nr` completions. Returns 0 or a negative errno; EINTR retried.
  int submit(unsigned wait_nr = 0);

  /// Invoke `fn(const io_uring_cqe&)` for every pending CQE, then release
  /// them to the kernel. Returns the number consumed.
  template <typename Fn>
  unsigned reap(Fn&& fn) {
    unsigned head = *cq_head_;  // sole consumer: plain read of our own index
    const unsigned tail =
        std::atomic_ref<unsigned>(*cq_tail_).load(std::memory_order_acquire);
    const unsigned mask = *cq_mask_;
    unsigned n = 0;
    while (head != tail) {
      fn(cqes_[head & mask]);
      ++head;
      ++n;
    }
    if (n > 0) {
      std::atomic_ref<unsigned>(*cq_head_).store(head, std::memory_order_release);
    }
    return n;
  }

  /// Register a provided-buffer ring of `entries` slots (rounded up to a
  /// power of two) under buffer-group id `bgid`. One ring per Uring.
  Status register_buf_ring(unsigned entries, unsigned short bgid);
  /// Stage buffer `bid` (addr/len) at the provided ring's tail. Invisible
  /// to the kernel until commit_buf_ring().
  void push_buf(unsigned short bid, void* addr, unsigned len);
  /// Publish every pushed buffer (release-store of the shared tail).
  void commit_buf_ring();
  [[nodiscard]] unsigned buf_ring_entries() const { return buf_ring_entries_; }

 private:
  int enter(unsigned to_submit, unsigned min_complete, unsigned flags);

  int fd_ = -1;
  io_uring_params params_{};
  void* sq_mem_ = nullptr;
  std::size_t sq_len_ = 0;
  void* cq_mem_ = nullptr;
  std::size_t cq_len_ = 0;
  void* sqe_mem_ = nullptr;
  std::size_t sqe_len_ = 0;
  unsigned* sq_head_ = nullptr;
  unsigned* sq_tail_ = nullptr;
  unsigned* sq_mask_ = nullptr;
  unsigned* sq_array_ = nullptr;
  io_uring_sqe* sqes_ = nullptr;
  unsigned* cq_head_ = nullptr;
  unsigned* cq_tail_ = nullptr;
  unsigned* cq_mask_ = nullptr;
  io_uring_cqe* cqes_ = nullptr;
  unsigned pending_ = 0;

  io_uring_buf_ring* buf_ring_ = nullptr;
  std::size_t buf_ring_len_ = 0;
  unsigned buf_ring_entries_ = 0;
  unsigned short buf_tail_ = 0;
  unsigned short bgid_ = 0;
  bool buf_ring_registered_ = false;
};

}  // namespace totem::net

#endif  // TOTEM_IO_URING_COMPILED

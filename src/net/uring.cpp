#include "net/uring.h"

#include "net/datapath.h"

#if TOTEM_IO_URING_COMPILED

#include <arpa/inet.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/mman.h>
#include <sys/socket.h>
#include <sys/syscall.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "common/log.h"

namespace totem::net {
namespace {

int sys_io_uring_setup(unsigned entries, io_uring_params* p) {
  return static_cast<int>(::syscall(__NR_io_uring_setup, entries, p));
}

int sys_io_uring_enter(int fd, unsigned to_submit, unsigned min_complete,
                       unsigned flags) {
  return static_cast<int>(
      ::syscall(__NR_io_uring_enter, fd, to_submit, min_complete, flags, nullptr, 0));
}

int sys_io_uring_register(int fd, unsigned op, void* arg, unsigned nr) {
  return static_cast<int>(::syscall(__NR_io_uring_register, fd, op, arg, nr));
}

}  // namespace

Status Uring::init(unsigned sq_entries, unsigned cq_entries) {
  std::memset(&params_, 0, sizeof(params_));
  params_.flags = IORING_SETUP_CQSIZE;
  params_.cq_entries = cq_entries;
  fd_ = sys_io_uring_setup(sq_entries, &params_);
  if (fd_ < 0) {
    return Status{StatusCode::kUnavailable,
                  std::string("io_uring_setup: ") + std::strerror(errno)};
  }
  sq_len_ = params_.sq_off.array + params_.sq_entries * sizeof(unsigned);
  cq_len_ = params_.cq_off.cqes + params_.cq_entries * sizeof(io_uring_cqe);
  sqe_len_ = params_.sq_entries * sizeof(io_uring_sqe);
  sq_mem_ = ::mmap(nullptr, sq_len_, PROT_READ | PROT_WRITE,
                   MAP_SHARED | MAP_POPULATE, fd_, IORING_OFF_SQ_RING);
  cq_mem_ = ::mmap(nullptr, cq_len_, PROT_READ | PROT_WRITE,
                   MAP_SHARED | MAP_POPULATE, fd_, IORING_OFF_CQ_RING);
  sqe_mem_ = ::mmap(nullptr, sqe_len_, PROT_READ | PROT_WRITE,
                    MAP_SHARED | MAP_POPULATE, fd_, IORING_OFF_SQES);
  if (sq_mem_ == MAP_FAILED || cq_mem_ == MAP_FAILED || sqe_mem_ == MAP_FAILED) {
    const int err = errno;
    if (sq_mem_ != MAP_FAILED) ::munmap(sq_mem_, sq_len_);
    if (cq_mem_ != MAP_FAILED) ::munmap(cq_mem_, cq_len_);
    if (sqe_mem_ != MAP_FAILED) ::munmap(sqe_mem_, sqe_len_);
    sq_mem_ = cq_mem_ = sqe_mem_ = nullptr;
    ::close(fd_);
    fd_ = -1;
    return Status{StatusCode::kUnavailable,
                  std::string("io_uring mmap: ") + std::strerror(err)};
  }
  auto* sq = static_cast<unsigned char*>(sq_mem_);
  sq_head_ = reinterpret_cast<unsigned*>(sq + params_.sq_off.head);
  sq_tail_ = reinterpret_cast<unsigned*>(sq + params_.sq_off.tail);
  sq_mask_ = reinterpret_cast<unsigned*>(sq + params_.sq_off.ring_mask);
  sq_array_ = reinterpret_cast<unsigned*>(sq + params_.sq_off.array);
  sqes_ = static_cast<io_uring_sqe*>(sqe_mem_);
  auto* cq = static_cast<unsigned char*>(cq_mem_);
  cq_head_ = reinterpret_cast<unsigned*>(cq + params_.cq_off.head);
  cq_tail_ = reinterpret_cast<unsigned*>(cq + params_.cq_off.tail);
  cq_mask_ = reinterpret_cast<unsigned*>(cq + params_.cq_off.ring_mask);
  cqes_ = reinterpret_cast<io_uring_cqe*>(cq + params_.cq_off.cqes);
  return {};
}

Uring::~Uring() {
  if (buf_ring_registered_) {
    io_uring_buf_reg reg{};
    reg.bgid = bgid_;
    sys_io_uring_register(fd_, IORING_UNREGISTER_PBUF_RING, &reg, 1);
    buf_ring_registered_ = false;
  }
  if (buf_ring_ != nullptr) ::munmap(buf_ring_, buf_ring_len_);
  if (sq_mem_ != nullptr) ::munmap(sq_mem_, sq_len_);
  if (cq_mem_ != nullptr) ::munmap(cq_mem_, cq_len_);
  if (sqe_mem_ != nullptr) ::munmap(sqe_mem_, sqe_len_);
  if (fd_ >= 0) ::close(fd_);
}

unsigned Uring::sq_space() const {
  const unsigned head =
      std::atomic_ref<unsigned>(*sq_head_).load(std::memory_order_acquire);
  return params_.sq_entries - (*sq_tail_ - head);
}

io_uring_sqe* Uring::get_sqe() {
  const unsigned tail = *sq_tail_;  // sole producer: plain read of our index
  const unsigned head =
      std::atomic_ref<unsigned>(*sq_head_).load(std::memory_order_acquire);
  if (tail - head >= params_.sq_entries) return nullptr;
  io_uring_sqe* sqe = &sqes_[tail & *sq_mask_];
  std::memset(sqe, 0, sizeof(*sqe));
  sq_array_[tail & *sq_mask_] = tail & *sq_mask_;
  std::atomic_ref<unsigned>(*sq_tail_).store(tail + 1, std::memory_order_release);
  ++pending_;
  return sqe;
}

int Uring::enter(unsigned to_submit, unsigned min_complete, unsigned flags) {
  const int rc = sys_io_uring_enter(fd_, to_submit, min_complete, flags);
  return rc < 0 ? -errno : rc;
}

int Uring::submit(unsigned wait_nr) {
  for (;;) {
    const int rc = enter(pending_, wait_nr,
                         wait_nr > 0 ? IORING_ENTER_GETEVENTS : 0);
    if (rc >= 0) {
      pending_ -= std::min(static_cast<unsigned>(rc), pending_);
      return 0;
    }
    if (rc == -EINTR) continue;
    return rc;
  }
}

Status Uring::register_buf_ring(unsigned entries, unsigned short bgid) {
  unsigned n = 1;
  while (n < entries) n <<= 1;
  buf_ring_len_ = n * sizeof(io_uring_buf);
  void* mem = ::mmap(nullptr, buf_ring_len_, PROT_READ | PROT_WRITE,
                     MAP_ANONYMOUS | MAP_PRIVATE, -1, 0);
  if (mem == MAP_FAILED) {
    return Status{StatusCode::kUnavailable,
                  std::string("pbuf mmap: ") + std::strerror(errno)};
  }
  io_uring_buf_reg reg{};
  reg.ring_addr = reinterpret_cast<std::uint64_t>(mem);
  reg.ring_entries = n;
  reg.bgid = bgid;
  if (sys_io_uring_register(fd_, IORING_REGISTER_PBUF_RING, &reg, 1) < 0) {
    const int err = errno;
    ::munmap(mem, buf_ring_len_);
    return Status{StatusCode::kUnavailable,
                  std::string("IORING_REGISTER_PBUF_RING: ") + std::strerror(err)};
  }
  buf_ring_ = static_cast<io_uring_buf_ring*>(mem);
  buf_ring_->tail = 0;
  buf_ring_entries_ = n;
  buf_tail_ = 0;
  bgid_ = bgid;
  buf_ring_registered_ = true;
  return {};
}

void Uring::push_buf(unsigned short bid, void* addr, unsigned len) {
  // NOT buf_ring_->bufs: the uapi flex-array macro compiles to offset 8 in
  // C++ (offset 0 in C, which is what the kernel reads), so index entries
  // from the ring base directly. Entry 0 is written field-by-field on
  // purpose — its resv field aliases the shared tail.
  auto* bufs = reinterpret_cast<io_uring_buf*>(buf_ring_);
  io_uring_buf& b = bufs[buf_tail_ & (buf_ring_entries_ - 1)];
  b.addr = reinterpret_cast<std::uint64_t>(addr);
  b.len = len;
  b.bid = bid;
  ++buf_tail_;
}

void Uring::commit_buf_ring() {
  std::atomic_ref<unsigned short>(buf_ring_->tail)
      .store(buf_tail_, std::memory_order_release);
}

bool io_uring_compiled() { return true; }

namespace {

// Functional probe: set up a real ring, register a provided-buffer ring,
// arm a multishot recv on a loopback UDP socket, and round-trip one
// datagram. Exercises exactly the kernel features IoUringTransport needs
// (ring + PBUF_RING ≥5.19, IORING_RECV_MULTISHOT ≥6.0); any missing piece
// fails some step cleanly.
bool probe_io_uring() {
  Uring u;
  if (!u.init(8, 32).is_ok()) return false;
  if (!u.register_buf_ring(4, 0).is_ok()) return false;
  alignas(8) static char probe_buf[512];
  u.push_buf(0, probe_buf, sizeof(probe_buf));
  u.commit_buf_ring();

  const int rx = ::socket(AF_INET, SOCK_DGRAM | SOCK_NONBLOCK, 0);
  const int tx = ::socket(AF_INET, SOCK_DGRAM, 0);
  if (rx < 0 || tx < 0) {
    if (rx >= 0) ::close(rx);
    if (tx >= 0) ::close(tx);
    return false;
  }
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  bool ok = false;
  socklen_t alen = sizeof(addr);
  if (::bind(rx, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) == 0 &&
      ::getsockname(rx, reinterpret_cast<sockaddr*>(&addr), &alen) == 0) {
    io_uring_sqe* sqe = u.get_sqe();
    sqe->opcode = IORING_OP_RECV;
    sqe->fd = rx;
    sqe->ioprio = IORING_RECV_MULTISHOT;
    sqe->flags = IOSQE_BUFFER_SELECT;
    sqe->buf_group = 0;
    sqe->user_data = 1;
    if (u.submit() == 0) {
      const char ping = 'u';
      if (::sendto(tx, &ping, 1, 0, reinterpret_cast<sockaddr*>(&addr),
                   sizeof(addr)) == 1) {
        pollfd p{u.ring_fd(), POLLIN, 0};
        if (::poll(&p, 1, 1000) > 0) {
          u.reap([&](const io_uring_cqe& cqe) {
            if (cqe.user_data == 1 && cqe.res == 1 &&
                (cqe.flags & IORING_CQE_F_BUFFER) != 0) {
              ok = true;
            }
          });
        }
      }
    }
  }
  ::close(rx);
  ::close(tx);
  return ok;
}

}  // namespace

bool io_uring_available() {
  static const bool available = probe_io_uring();
  return available;
}

}  // namespace totem::net

#else  // !TOTEM_IO_URING_COMPILED

namespace totem::net {

bool io_uring_compiled() { return false; }
bool io_uring_available() { return false; }

}  // namespace totem::net

#endif  // TOTEM_IO_URING_COMPILED

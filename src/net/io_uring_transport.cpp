#include "net/io_uring_transport.h"

#if TOTEM_IO_URING_BACKEND

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/udp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>

#include "common/log.h"
#include "common/trace.h"

// Older glibc headers may lack the UDP GSO knob even when the kernel has it.
#ifndef UDP_SEGMENT
#define UDP_SEGMENT 103
#endif

namespace totem::net {
namespace {

// Direct-mode senders with no TX ring still need bounded memory when the
// kernel back-pressures: entries past the in-flight slots queue here, FIFO.
constexpr std::size_t kMaxBacklog = 4096;

// UDP_SEGMENT limits: at most 64 segments per super-buffer, and the whole
// buffer must still fit in one UDP payload.
constexpr unsigned kMaxGsoSegs = 64;
constexpr std::size_t kMaxGsoBytes = 60000;

}  // namespace

IoUringTransport::IoUringTransport(Reactor& reactor, Config config, int fd, int mcast_fd)
    : UdpTransport(reactor, std::move(config), fd, mcast_fd, DatapathBackend::kIoUring) {}

Status IoUringTransport::setup_tx_sockets() {
  // One CONNECTED socket per peer: connect() resolves the route once, so
  // each IORING_OP_SEND skips the per-datagram lookup a sendto would pay.
  // The sockets are blocking on purpose — under io_uring a full socket
  // buffer parks the SQE in the kernel instead of failing with EAGAIN,
  // which is exactly the back-pressure the slot/backlog machinery wants.
  const int buf = config_.socket_buffer_bytes;
  for (const auto& [node, addr] : peer_addrs_) {
    const int fd = ::socket(AF_INET, SOCK_DGRAM, 0);
    if (fd < 0) {
      return Status{StatusCode::kUnavailable,
                    std::string("tx socket(): ") + std::strerror(errno)};
    }
    ::setsockopt(fd, SOL_SOCKET, SO_SNDBUF, &buf, sizeof(buf));
    if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) < 0) {
      const int err = errno;
      ::close(fd);
      return Status{StatusCode::kUnavailable,
                    std::string("tx connect(): ") + std::strerror(err)};
    }
    tx_fds_.emplace_back(node, fd);
  }
  if (mcast_fd_ >= 0) {
    mcast_tx_fd_ = ::socket(AF_INET, SOCK_DGRAM, 0);
    if (mcast_tx_fd_ < 0) {
      return Status{StatusCode::kUnavailable,
                    std::string("mcast tx socket(): ") + std::strerror(errno)};
    }
    ::setsockopt(mcast_tx_fd_, SOL_SOCKET, SO_SNDBUF, &buf, sizeof(buf));
    in_addr ifaddr{};
    ::inet_pton(AF_INET, config_.multicast_interface.c_str(), &ifaddr);
    ::setsockopt(mcast_tx_fd_, IPPROTO_IP, IP_MULTICAST_IF, &ifaddr, sizeof(ifaddr));
    const unsigned char loop = 1;
    ::setsockopt(mcast_tx_fd_, IPPROTO_IP, IP_MULTICAST_LOOP, &loop, sizeof(loop));
    if (::connect(mcast_tx_fd_, reinterpret_cast<const sockaddr*>(&mcast_addr_),
                  sizeof(mcast_addr_)) < 0) {
      return Status{StatusCode::kUnavailable,
                    std::string("mcast tx connect(): ") + std::strerror(errno)};
    }
  }
  // Probe UDP GSO: setting segment size 0 is a valid no-op on kernels that
  // have the option and fails with ENOPROTOOPT on ones that don't.
  if (config_.uring_tx_gso) {
    const int probe_fd = !tx_fds_.empty() ? tx_fds_.front().second : mcast_tx_fd_;
    int zero = 0;
    gso_ok_ = probe_fd >= 0 &&
              ::setsockopt(probe_fd, IPPROTO_UDP, UDP_SEGMENT, &zero,
                           sizeof(zero)) == 0;
  }
  round_gso_.clear();
  for (const auto& [node, fd] : tx_fds_) round_gso_.push_back(GsoQueue{fd, {}});
  if (mcast_tx_fd_ >= 0) round_gso_.push_back(GsoQueue{mcast_tx_fd_, {}});
  return {};
}

int IoUringTransport::tx_fd_for(NodeId dest) const {
  if (dest == kBroadcastDest) return mcast_tx_fd_;
  for (const auto& [node, fd] : tx_fds_) {
    if (node == dest) return fd;
  }
  return -1;
}

Status IoUringTransport::attach() {
  rx_buf_bytes_ = config_.uring_rx_buffer_bytes;
  const unsigned nbufs = std::max(8u, config_.uring_rx_buffers);
  const unsigned nslots = std::max(8u, config_.uring_tx_slots);
  // CQ sized for the worst burst: every RX buffer completing plus every TX
  // slot, with slack so completions are never dropped on the floor.
  if (Status st = ring_.init(std::max(8u, config_.uring_sq_entries),
                             2 * (nbufs + nslots));
      !st.is_ok()) {
    return st;
  }
  if (Status st = setup_tx_sockets(); !st.is_ok()) return st;
  if (Status st = ring_.register_buf_ring(nbufs, 0); !st.is_ok()) return st;

  // Every provided buffer is a pooled slab pinned in rx_bufs_ (bid-indexed)
  // until its completion hands it up; the replacement is pushed before the
  // next commit so the kernel never starves.
  const unsigned entries = ring_.buf_ring_entries();
  rx_bufs_.resize(entries);
  for (unsigned bid = 0; bid < entries; ++bid) {
    rx_bufs_[bid] = rx_pool_.acquire_uninitialized(rx_buf_bytes_);
    ring_.push_buf(static_cast<unsigned short>(bid),
                   rx_bufs_[bid].mutable_bytes().data(),
                   static_cast<unsigned>(rx_buf_bytes_));
  }
  ring_.commit_buf_ring();

  slots_.resize(nslots);
  free_slots_.reserve(nslots);
  for (std::size_t i = nslots; i-- > 0;) free_slots_.push_back(i);

  {
    std::lock_guard<std::mutex> lk(tx_mu_);
    arm_recv_locked(fd_, kRxMain);
    if (mcast_fd_ >= 0) arm_recv_locked(mcast_fd_, kRxMcast);
    if (const int rc = ring_.submit(); rc != 0) {
      return Status{StatusCode::kUnavailable,
                    std::string("io_uring submit: ") + std::strerror(-rc)};
    }
  }
  // The RING fd is what the reactor watches (POLLIN = CQEs pending); the
  // UDP sockets themselves are never registered — the armed multishot
  // recvs replace the readable-socket callbacks entirely.
  reactor_.register_fd(ring_.ring_fd(), [this] { on_ring_readable(); });
  ring_registered_ = true;
  return {};
}

IoUringTransport::~IoUringTransport() {
  // Ring teardown is asynchronous in the kernel: pending multishot recvs
  // hold socket references, and just closing everything leaves the ports
  // bound until the async cleanup runs — a follow-up bind() on the same
  // port then fails. Cancel the recvs and reap every outstanding CQE
  // (bounded) BEFORE ~UdpTransport closes the sockets.
  if (ring_registered_) reactor_.unregister_fd(ring_.ring_fd());
  std::lock_guard<std::mutex> lk(tx_mu_);
  shutting_down_ = true;
  auto cancel = [&](std::uint64_t tag) {
    io_uring_sqe* sqe = ring_.get_sqe();
    if (sqe == nullptr) return;
    sqe->opcode = IORING_OP_ASYNC_CANCEL;
    sqe->addr = tag;                    // cancel by matching user_data
    sqe->user_data = tag | kCancelBit;  // guarded out of the slot range below
  };
  if (rx_main_armed_) cancel(kRxMain);
  if (rx_mcast_armed_) cancel(kRxMcast);
  ring_.submit();
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::milliseconds(200);
  auto drained = [&] {
    return !rx_main_armed_ && !rx_mcast_armed_ &&
           free_slots_.size() == slots_.size();
  };
  while (!drained() && std::chrono::steady_clock::now() < deadline) {
    ring_.reap([&](const io_uring_cqe& cqe) {
      if (cqe.user_data >= kCancelBit) return;  // the cancel op's own CQE
      if (cqe.user_data >= kTxBase) {
        const std::size_t slot = static_cast<std::size_t>(cqe.user_data - kTxBase);
        if (slot < slots_.size()) {
          slots_[slot].frame = PacketBuffer();
          free_slots_.push_back(slot);
        }
        return;
      }
      // RX completions during teardown: data is dropped; only the
      // terminal (no F_MORE / error) CQE matters.
      if (cqe.res < 0 || (cqe.flags & IORING_CQE_F_MORE) == 0) {
        if (cqe.user_data == kRxMain) rx_main_armed_ = false;
        if (cqe.user_data == kRxMcast) rx_mcast_armed_ = false;
      }
    });
    if (!drained()) {
      pollfd p{ring_.ring_fd(), POLLIN, 0};
      ::poll(&p, 1, 10);
    }
  }
  if (!drained()) {
    TLOG_WARN << "io_uring teardown timed out with operations in flight on net"
              << config_.network;
  }
  rx_bufs_.clear();
  slots_.clear();
  backlog_.clear();
  round_gso_.clear();
  for (auto& [node, fd] : tx_fds_) ::close(fd);
  if (mcast_tx_fd_ >= 0) ::close(mcast_tx_fd_);
  // ~Uring then unregisters the provided-buffer ring and closes the ring
  // fd; ~UdpTransport closes fd_/mcast_fd_ (never reactor-registered here,
  // and unregister_fd of an unknown fd is a no-op).
}

void IoUringTransport::arm_recv_locked(int fd, std::uint64_t tag) {
  io_uring_sqe* sqe = ring_.get_sqe();
  if (sqe == nullptr) return;  // SQ full; the next completion round re-arms
  sqe->opcode = IORING_OP_RECV;
  sqe->fd = fd;
  sqe->ioprio = IORING_RECV_MULTISHOT;
  sqe->flags = IOSQE_BUFFER_SELECT;
  sqe->buf_group = 0;
  // MSG_TRUNC: cqe->res reports each datagram's REAL length even beyond
  // the provided buffer, so oversized datagrams are counted (rx_truncated),
  // never silently clipped.
  sqe->msg_flags = MSG_TRUNC;
  sqe->user_data = tag;
  if (tag == kRxMain) rx_main_armed_ = true;
  if (tag == kRxMcast) rx_mcast_armed_ = true;
}

void IoUringTransport::emit_send_locked(std::size_t slot, bool link) {
  io_uring_sqe* sqe = ring_.get_sqe();  // caller verified sq_space
  TxSlot& s = slots_[slot];
  if (s.segs > 1) {
    // Packed GSO super-buffer: one SENDMSG, UDP_SEGMENT cmsg carries the
    // segment size; the kernel emits s.segs real datagrams from it.
    s.iov.iov_base = const_cast<std::byte*>(s.frame.data());
    s.iov.iov_len = s.frame.size();
    std::memset(&s.mh, 0, sizeof(s.mh));
    s.mh.msg_iov = &s.iov;
    s.mh.msg_iovlen = 1;
    s.mh.msg_control = s.cmsg;
    s.mh.msg_controllen = CMSG_SPACE(sizeof(std::uint16_t));
    cmsghdr* cm = CMSG_FIRSTHDR(&s.mh);
    cm->cmsg_level = SOL_UDP;
    cm->cmsg_type = UDP_SEGMENT;
    cm->cmsg_len = CMSG_LEN(sizeof(std::uint16_t));
    const auto seg = static_cast<std::uint16_t>(s.seg_bytes);
    std::memcpy(CMSG_DATA(cm), &seg, sizeof(seg));
    sqe->opcode = IORING_OP_SENDMSG;
    sqe->fd = s.fd;
    sqe->addr = reinterpret_cast<std::uint64_t>(&s.mh);
    sqe->len = 1;
  } else {
    sqe->opcode = IORING_OP_SEND;
    sqe->fd = s.fd;
    sqe->addr = reinterpret_cast<std::uint64_t>(s.frame.data());
    sqe->len = static_cast<unsigned>(s.frame.size());
  }
  sqe->user_data = kTxBase + slot;
  // Link flags are decided NOW, while the SQE is written: once a flush may
  // run, this slot's SQE memory can be handed to another writer, so a
  // chain can never be extended retroactively.
  if (link) sqe->flags |= IOSQE_IO_LINK;
  round_submitted_ += s.segs;
}

void IoUringTransport::backlog_locked(PacketBuffer frame, int fd) {
  if (backlog_.size() >= kMaxBacklog) {
    ++stats_.tx_errors;
    return;
  }
  backlog_.push_back(BacklogEntry{std::move(frame), fd});
}

void IoUringTransport::drain_backlog_locked() {
  while (!backlog_.empty() && !free_slots_.empty() && ring_.sq_space() > 0) {
    const std::size_t slot = free_slots_.back();
    free_slots_.pop_back();
    TxSlot& s = slots_[slot];
    s.frame = std::move(backlog_.front().frame);
    s.fd = backlog_.front().fd;
    s.retried = false;
    s.segs = 1;
    backlog_.pop_front();
    emit_send_locked(slot, false);
  }
}

void IoUringTransport::queue_gso_locked(int fd, PacketBuffer frame) {
  for (GsoQueue& q : round_gso_) {
    if (q.fd == fd) {
      q.frames.push_back(std::move(frame));
      return;
    }
  }
  // Unknown fd (cannot happen with the fixed layout) — send unpacked.
  if (!free_slots_.empty() && ring_.sq_space() > 0) {
    const std::size_t slot = free_slots_.back();
    free_slots_.pop_back();
    TxSlot& s = slots_[slot];
    s.frame = std::move(frame);
    s.fd = fd;
    s.retried = false;
    s.segs = 1;
    emit_send_locked(slot, false);
  } else {
    backlog_locked(std::move(frame), fd);
  }
}

void IoUringTransport::flush_gso_locked() {
  for (GsoQueue& q : round_gso_) {
    if (q.frames.empty()) continue;
    // A non-empty backlog means earlier frames are still waiting for slots;
    // join the queue behind them so per-destination order holds.
    if (!backlog_.empty()) {
      for (PacketBuffer& f : q.frames) backlog_locked(std::move(f), q.fd);
      q.frames.clear();
      continue;
    }
    std::size_t i = 0;
    const std::size_t n = q.frames.size();
    while (i < n) {
      if (free_slots_.empty() || ring_.sq_space() == 0) {
        for (; i < n; ++i) backlog_locked(std::move(q.frames[i]), q.fd);
        break;
      }
      // Maximal GSO run: equal-size frames, optionally closed by one
      // shorter frame (UDP_SEGMENT allows a short final segment).
      const std::size_t seg = q.frames[i].size();
      std::size_t k = 1;
      std::size_t bytes = seg;
      while (i + k < n && k < kMaxGsoSegs && seg > 0) {
        const std::size_t next = q.frames[i + k].size();
        if (next > seg || bytes + next > kMaxGsoBytes) break;
        ++k;
        bytes += next;
        if (next < seg) break;  // short segment terminates the run
      }
      const std::size_t slot = free_slots_.back();
      free_slots_.pop_back();
      TxSlot& s = slots_[slot];
      s.fd = q.fd;
      s.retried = false;
      if (k == 1) {
        s.frame = std::move(q.frames[i]);
        s.segs = 1;
      } else {
        PacketBuffer packed = tx_pool_.acquire_uninitialized(bytes);
        std::byte* dst = packed.mutable_bytes().data();
        for (std::size_t j = 0; j < k; ++j) {
          const PacketBuffer& f = q.frames[i + j];
          std::memcpy(dst, f.data(), f.size());
          dst += f.size();
        }
        s.frame = std::move(packed);
        s.segs = static_cast<unsigned>(k);
        s.seg_bytes = static_cast<unsigned>(seg);
      }
      emit_send_locked(slot, false);
      i += k;
    }
    q.frames.clear();
  }
}

void IoUringTransport::flush_round_locked() {
  if (ring_.pending() > 0) ring_.submit();
  if (round_submitted_ > 0) {
    ++stats_.tx_syscall_batches;
    if (tx_batch_hist_) tx_batch_hist_->record(round_submitted_);
    trace_batch(TraceKind::kDatapathTxBatch, round_submitted_);
    round_submitted_ = 0;
  }
}

void IoUringTransport::begin_tx_round() {}

void IoUringTransport::submit_entry(const TxEntry& entry) {
  // Gather the fan-out first: the chain length must be known BEFORE any SQE
  // is written (see emit_send_locked on link flags).
  std::array<int, kTxBatch> fds;
  std::size_t m = 0;
  expand_entry(entry, [&](NodeId dest, const sockaddr_in&) {
    const int fd = tx_fd_for(dest);
    if (fd >= 0 && m < fds.size()) fds[m++] = fd;
  });
  if (m == 0) return;
  std::lock_guard<std::mutex> lk(tx_mu_);
  if (gso_ok_) {
    // GSO path: park the fan-out on the per-destination round queues;
    // end_tx_round packs equal-size runs into UDP_SEGMENT super-buffers.
    for (std::size_t i = 0; i < m; ++i) queue_gso_locked(fds[i], entry.frame);
    return;
  }
  if (ring_.sq_space() < m) ring_.submit();
  // Whole fan-out as one IOSQE_IO_LINK chain when resources allow — the
  // kernel walks every destination from a single submit. Otherwise emit
  // (or backlog) each datagram unlinked; a partially-resourced chain must
  // never dangle into a later, unrelated SQE.
  const bool chain =
      m > 1 && backlog_.empty() && free_slots_.size() >= m && ring_.sq_space() >= m;
  for (std::size_t i = 0; i < m; ++i) {
    if (!chain && (!backlog_.empty() || free_slots_.empty() || ring_.sq_space() == 0)) {
      backlog_locked(entry.frame, fds[i]);
      continue;
    }
    const std::size_t slot = free_slots_.back();
    free_slots_.pop_back();
    TxSlot& s = slots_[slot];
    s.frame = entry.frame;  // refcount copy pins the bytes for the kernel
    s.fd = fds[i];
    s.retried = false;
    s.segs = 1;
    emit_send_locked(slot, chain && i + 1 < m);
  }
}

void IoUringTransport::end_tx_round() {
  std::lock_guard<std::mutex> lk(tx_mu_);
  if (gso_ok_) flush_gso_locked();
  flush_round_locked();
}

void IoUringTransport::on_ring_readable() {
  // Datagrams accepted this round are handed up AFTER the lock drops: the
  // rx handler may immediately send (token forward), and submit_entry
  // takes tx_mu_.
  std::vector<std::pair<PacketBuffer, std::size_t>> accepted;
  {
    std::lock_guard<std::mutex> lk(tx_mu_);
    bool bufs_dirty = false;
    ring_.reap([&](const io_uring_cqe& cqe) {
      if (cqe.user_data >= kTxBase) {
        const std::size_t slot = static_cast<std::size_t>(cqe.user_data - kTxBase);
        TxSlot& s = slots_[slot];
        if (cqe.res == -ECANCELED && !s.retried && !shutting_down_ &&
            ring_.sq_space() > 0) {
          // A linked predecessor failed, so this SQE never ran. The frame
          // and fd are still in the slot: one bounded resubmit.
          s.retried = true;
          emit_send_locked(slot, false);
          return;
        }
        if (cqe.res < 0) {
          stats_.tx_errors += s.segs;  // a failed GSO op loses every segment
          TLOG_DEBUG << "io_uring send failed: " << std::strerror(-cqe.res);
        } else if (s.segs > 1 &&
                   static_cast<std::size_t>(cqe.res) < s.frame.size()) {
          // Short GSO write: the kernel sent only the leading whole
          // segments; charge the rest as errors so counters reconcile.
          const unsigned sent = s.seg_bytes > 0
                                    ? static_cast<unsigned>(cqe.res) / s.seg_bytes
                                    : 0;
          stats_.tx_errors += s.segs - std::min(s.segs, sent);
        }
        s.frame = PacketBuffer();  // un-pin the bytes
        s.fd = -1;
        s.retried = false;
        s.segs = 1;
        free_slots_.push_back(slot);
        return;
      }
      // Multishot recv completion.
      if (cqe.res >= 0 && (cqe.flags & IORING_CQE_F_BUFFER) != 0) {
        const auto bid =
            static_cast<unsigned short>(cqe.flags >> IORING_CQE_BUFFER_SHIFT);
        PacketBuffer buf = std::move(rx_bufs_[bid]);
        rx_bufs_[bid] = rx_pool_.acquire_uninitialized(rx_buf_bytes_);
        ring_.push_buf(bid, rx_bufs_[bid].mutable_bytes().data(),
                       static_cast<unsigned>(rx_buf_bytes_));
        bufs_dirty = true;
        const auto len = static_cast<std::size_t>(cqe.res);  // real length (MSG_TRUNC)
        if (len > rx_buf_bytes_) {
          ++stats_.rx_truncated;
        } else {
          accepted.emplace_back(std::move(buf), len);
        }
      }
      if (cqe.res < 0 || (cqe.flags & IORING_CQE_F_MORE) == 0) {
        // The multishot terminated (ENOBUFS after a burst, error, or
        // cancel); re-arm below once buffers are recommitted.
        if (cqe.user_data == kRxMain) {
          rx_main_armed_ = false;
          rearm_main_ = !shutting_down_;
        }
        if (cqe.user_data == kRxMcast) {
          rx_mcast_armed_ = false;
          rearm_mcast_ = !shutting_down_;
        }
        if (cqe.res < 0 && cqe.res != -ENOBUFS && cqe.res != -ECANCELED) {
          TLOG_DEBUG << "io_uring recv terminated: " << std::strerror(-cqe.res);
        }
      }
    });
    if (bufs_dirty) ring_.commit_buf_ring();
    if (rearm_main_ && !rx_main_armed_ && ring_.sq_space() > 0) {
      rearm_main_ = false;
      arm_recv_locked(fd_, kRxMain);
    }
    if (rearm_mcast_ && !rx_mcast_armed_ && ring_.sq_space() > 0) {
      rearm_mcast_ = false;
      arm_recv_locked(mcast_fd_, kRxMcast);
    }
    drain_backlog_locked();
    flush_round_locked();
    if (!accepted.empty()) {
      // One completion round plays the role one recvmmsg call played.
      ++stats_.rx_syscall_batches;
      if (rx_batch_hist_) rx_batch_hist_->record(accepted.size());
      trace_batch(TraceKind::kDatapathRxBatch, accepted.size());
    }
  }
  bool queued_any = false;
  for (auto& [buf, len] : accepted) {
    queued_any |= accept_datagram(std::move(buf), len);
  }
  if (queued_any && rx_wakeup_) rx_wakeup_();
}

}  // namespace totem::net

#endif  // TOTEM_IO_URING_BACKEND

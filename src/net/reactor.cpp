#include "net/reactor.h"

#include <poll.h>

#include <algorithm>
#include <chrono>

namespace totem::net {

Reactor::Reactor() = default;

TimePoint Reactor::now() const {
  return std::chrono::time_point_cast<Duration>(std::chrono::steady_clock::now());
}

TimerHandle Reactor::schedule(Duration delay, Callback cb) {
  auto state = std::make_shared<detail::TimerState>();
  timers_.push(PendingTimer{now() + delay, next_seq_++, std::move(cb), state});
  return TimerHandle{state};
}

void Reactor::register_fd(int fd, std::function<void()> on_readable) {
  fds_[fd] = std::move(on_readable);
}

void Reactor::unregister_fd(int fd) { fds_.erase(fd); }

Duration Reactor::until_next_timer(Duration cap) const {
  if (timers_.empty()) return cap;
  const Duration d = timers_.top().at - now();
  return std::clamp(d, Duration{0}, cap);
}

void Reactor::fire_due_timers() {
  while (!timers_.empty() && timers_.top().at <= now()) {
    PendingTimer t = timers_.top();
    timers_.pop();
    if (t.state->cancelled) continue;
    t.state->fired = true;
    t.fn();
  }
}

void Reactor::poll_once(Duration max_wait) {
  const Duration wait = until_next_timer(max_wait);
  std::vector<pollfd> pfds;
  pfds.reserve(fds_.size());
  for (const auto& [fd, _] : fds_) {
    pfds.push_back(pollfd{fd, POLLIN, 0});
  }
  const int timeout_ms =
      static_cast<int>(std::chrono::duration_cast<std::chrono::milliseconds>(wait).count());
  const int rc = ::poll(pfds.data(), pfds.size(), std::max(timeout_ms, 0));
  if (rc > 0) {
    for (const auto& p : pfds) {
      if ((p.revents & POLLIN) == 0) continue;
      // The handler may unregister fds; look it up fresh.
      auto it = fds_.find(p.fd);
      if (it != fds_.end()) it->second();
    }
  }
  fire_due_timers();
}

void Reactor::run() {
  stopped_ = false;
  while (!stopped_) {
    poll_once(Duration{100'000});  // 100 ms cap keeps stop() responsive
  }
}

void Reactor::run_for(Duration d) {
  stopped_ = false;
  const TimePoint deadline = now() + d;
  while (!stopped_ && now() < deadline) {
    poll_once(std::min(Duration{100'000}, deadline - now()));
  }
}

}  // namespace totem::net

#include "net/reactor.h"

#include <fcntl.h>
#include <poll.h>
#include <unistd.h>

#include <algorithm>
#include <chrono>

namespace totem::net {

Reactor::Reactor() {
  int fds[2] = {-1, -1};
  if (::pipe(fds) == 0) {
    ::fcntl(fds[0], F_SETFL, O_NONBLOCK);
    ::fcntl(fds[1], F_SETFL, O_NONBLOCK);
    wake_rd_ = fds[0];
    wake_wr_ = fds[1];
  }
}

Reactor::~Reactor() {
  if (wake_rd_ >= 0) ::close(wake_rd_);
  if (wake_wr_ >= 0) ::close(wake_wr_);
}

TimePoint Reactor::now() const {
  return std::chrono::time_point_cast<Duration>(std::chrono::steady_clock::now());
}

TimerHandle Reactor::schedule(Duration delay, Callback cb) {
  return timers_.schedule(now() + delay, std::move(cb));
}

void Reactor::register_fd(int fd, std::function<void()> on_readable) {
  fds_[fd] = std::move(on_readable);
}

void Reactor::unregister_fd(int fd) { fds_.erase(fd); }

void Reactor::register_fd_write(int fd, std::function<void()> on_writable) {
  write_fds_[fd] = std::move(on_writable);
}

void Reactor::unregister_fd_write(int fd) { write_fds_.erase(fd); }

std::uint64_t Reactor::add_wake_hook(std::function<void()> hook) {
  const std::uint64_t id = next_hook_id_++;
  wake_hooks_[id] = std::move(hook);
  return id;
}

void Reactor::remove_wake_hook(std::uint64_t id) { wake_hooks_.erase(id); }

void Reactor::notify() {
  // First caller since the last poll round pays the pipe write; the rest
  // see notified_ already set and return. The loop clears the flag BEFORE
  // draining the pipe and running hooks, so a notify() racing with the
  // wakeup either lands in the current round or triggers the next one.
  if (!notified_.exchange(true, std::memory_order_acq_rel) && wake_wr_ >= 0) {
    const char one = 1;
    [[maybe_unused]] ssize_t rc = ::write(wake_wr_, &one, 1);  // pipe full == wakeup pending
  }
}

Duration Reactor::until_next_timer(Duration cap) const {
  const auto deadline = timers_.next_deadline();
  if (!deadline) return cap;
  return std::clamp(*deadline - now(), Duration{0}, cap);
}

void Reactor::poll_once(Duration max_wait) {
  const Duration wait = until_next_timer(max_wait);
  std::vector<pollfd> pfds;
  pfds.reserve(fds_.size() + write_fds_.size() + 1);
  for (const auto& [fd, _] : fds_) {
    pfds.push_back(pollfd{fd, POLLIN, 0});
  }
  for (const auto& [fd, _] : write_fds_) {
    // A fd watched for both directions gets one pollfd with both bits
    // (both maps are sorted, so a linear merge would do; n is tiny).
    bool merged = false;
    for (auto& p : pfds) {
      if (p.fd == fd) {
        p.events |= POLLOUT;
        merged = true;
        break;
      }
    }
    if (!merged) pfds.push_back(pollfd{fd, POLLOUT, 0});
  }
  if (wake_rd_ >= 0) pfds.push_back(pollfd{wake_rd_, POLLIN, 0});
  const int timeout_ms =
      static_cast<int>(std::chrono::duration_cast<std::chrono::milliseconds>(wait).count());
  const int rc = ::poll(pfds.data(), pfds.size(), std::max(timeout_ms, 0));
  if (rc > 0) {
    for (const auto& p : pfds) {
      if ((p.revents & POLLIN) != 0) {
        if (p.fd == wake_rd_) {
          notified_.store(false, std::memory_order_release);
          char buf[64];
          while (::read(wake_rd_, buf, sizeof(buf)) > 0) {
          }
          continue;
        }
        // Handlers may unregister fds — even their own (a connection
        // handler closing its connection): look the entry up fresh and
        // invoke a copy so the erase cannot destroy the running function.
        auto it = fds_.find(p.fd);
        if (it != fds_.end()) {
          auto handler = it->second;
          handler();
        }
      }
      // Errors/hangups dispatch the write handler too: its write attempt
      // sees the error and tears the connection down.
      if ((p.revents & (POLLOUT | POLLERR | POLLHUP)) != 0) {
        auto it = write_fds_.find(p.fd);
        if (it != write_fds_.end()) {
          auto handler = it->second;
          handler();
        }
      }
    }
  }
  // Wake hooks run every round (they are cheap empty-queue checks), so TX
  // queued right before a socket-readability wakeup flushes without waiting
  // for its own notify round.
  for (auto& [id, hook] : wake_hooks_) hook();
  timers_.fire_due(now());
}

void Reactor::run() {
  stopped_ = false;
  while (!stopped_) {
    poll_once(Duration{100'000});  // 100 ms cap keeps stop() responsive
  }
}

void Reactor::run_for(Duration d) {
  stopped_ = false;
  const TimePoint deadline = now() + d;
  while (!stopped_ && now() < deadline) {
    poll_once(std::min(Duration{100'000}, deadline - now()));
  }
}

}  // namespace totem::net

#include "net/sim_network.h"

#include <algorithm>
#include <cassert>
#include <cmath>

#include "common/log.h"

namespace totem::net {

SimNetwork::SimNetwork(sim::Simulator& simulator, NetworkId id, Params params)
    : sim_(simulator), id_(id), params_(params),
      default_profile_(profile_from_params()) {}

SimNetwork::SimNetwork(sim::Simulator& simulator, NetworkId id)
    : SimNetwork(simulator, id, Params{}) {}

SimNetwork::~SimNetwork() = default;

SimTransport& SimNetwork::attach(SimHost& host) {
  assert(by_node_.find(host.id()) == by_node_.end() && "node already attached");
  endpoints_.push_back(std::make_unique<SimTransport>(*this, host));
  SimTransport& t = *endpoints_.back();
  by_node_[host.id()] = &t;
  return t;
}

void SimNetwork::set_send_fault(NodeId n, bool faulty) { send_fault_[n] = faulty; }
void SimNetwork::set_recv_fault(NodeId n, bool faulty) { recv_fault_[n] = faulty; }

void SimNetwork::set_link_loss(NodeId src, NodeId dst, std::optional<double> p) {
  if (p) {
    link_loss_[{src, dst}] = *p;
  } else {
    link_loss_.erase({src, dst});
  }
}

void SimNetwork::set_link_profile(NodeId src, NodeId dst,
                                  std::optional<LinkProfile> p) {
  if (p) {
    link_profile_[{src, dst}] = *p;
  } else {
    link_profile_.erase({src, dst});
  }
}

LinkProfile SimNetwork::profile_from_params() const {
  LinkProfile p;
  p.latency = params_.base_latency;
  p.jitter = params_.latency_jitter;
  p.loss = params_.loss_rate;
  return p;
}

void SimNetwork::set_partition(std::vector<std::vector<NodeId>> groups) {
  group_of_.clear();
  int g = 0;
  for (const auto& group : groups) {
    for (NodeId n : group) group_of_[n] = g;
    ++g;
  }
}

bool SimNetwork::same_partition(NodeId a, NodeId b) const {
  if (group_of_.empty()) return true;
  auto ia = group_of_.find(a);
  auto ib = group_of_.find(b);
  // Nodes not mentioned in any group are isolated.
  if (ia == group_of_.end() || ib == group_of_.end()) return false;
  return ia->second == ib->second;
}

std::uint64_t SimNetwork::wire_size(std::size_t payload) const {
  const std::uint64_t frames =
      std::max<std::uint64_t>(1, (payload + params_.max_frame_payload - 1) /
                                     params_.max_frame_payload);
  return payload + frames * params_.frame_overhead;
}

Duration SimNetwork::transmission_time(std::size_t payload) const {
  const double bits = static_cast<double>(wire_size(payload)) * 8.0;
  const double us = bits / params_.bandwidth_mbps;  // Mbit/s == bit/us
  return Duration(static_cast<Duration::rep>(std::ceil(us)));
}

void SimNetwork::record_capture(NodeId src, std::optional<NodeId> dst, std::size_t size,
                                CapturedPacket::Verdict verdict) {
  if (!capture_enabled_) return;
  if (capture_.size() >= capture_capacity_) {
    capture_.pop_front();
    ++capture_dropped_;
  }
  CapturedPacket c;
  c.at = sim_.now();
  c.src = src;
  c.dst = dst.value_or(kInvalidNode);
  c.size = static_cast<std::uint32_t>(size);
  c.verdict = verdict;
  capture_.push_back(c);
}

void SimNetwork::submit(SimTransport& from, PacketBuffer packet, std::optional<NodeId> dest) {
  const NodeId src = from.host_.id();
  ++stats_.packets_sent;
  ++from.stats_.packets_sent;
  from.stats_.bytes_sent += packet.size();

  // The sender's network-stack traversal costs CPU whether or not the
  // packet makes it onto the wire: the sendto() call still executes. This
  // per-call cost is the mechanism behind the paper's finding that active
  // replication loses throughput by "doubling the number of calls to the
  // network protocol stack" (§8).
  const auto& costs = from.host_.costs();
  const auto send_cost =
      costs.send_packet_cost +
      Duration(static_cast<Duration::rep>(packet.size() * costs.send_byte_cost_us));
  const TimePoint cpu_done = from.host_.cpu().acquire(sim_.now(), send_cost);

  if (failed_) {
    ++stats_.dropped_fault;
    record_capture(src, dest, packet.size(), CapturedPacket::Verdict::kDroppedFailed);
    return;
  }
  if (auto it = send_fault_.find(src); it != send_fault_.end() && it->second) {
    ++stats_.dropped_fault;
    record_capture(src, dest, packet.size(), CapturedPacket::Verdict::kDroppedFailed);
    return;
  }
  if (dest && drop_unicasts_ > 0) {
    // Injected token loss: the frame never reaches the wire (a switch ate
    // it), so it costs no transmission time and no receiver CPU.
    --drop_unicasts_;
    ++stats_.dropped_injected;
    record_capture(src, dest, packet.size(), CapturedPacket::Verdict::kDroppedFailed);
    return;
  }

  // One transmission serves all receivers (true Ethernet broadcast): the
  // wire serializes whole frames at line rate.
  const TimePoint wire_start = std::max(cpu_done, wire_busy_until_);
  const Duration tx = transmission_time(packet.size());
  wire_busy_until_ = wire_start + tx;
  stats_.wire_bytes += wire_size(packet.size());
  stats_.wire_busy += tx;
  const TimePoint wire_done = wire_busy_until_;

  record_capture(src, dest, packet.size(), CapturedPacket::Verdict::kSent);
  // Every receiver shares the sender's pooled buffer by refcount — the wire
  // does not copy payloads, and neither do we.
  if (dest) {
    auto it = by_node_.find(*dest);
    if (it == by_node_.end()) {
      ++stats_.dropped_fault;
      return;
    }
    deliver_shared(from, *it->second, packet, wire_done);
  } else {
    for (auto& ep : endpoints_) {
      if (ep->host_.id() == src) continue;
      deliver_shared(from, *ep, packet, wire_done);
    }
  }
}

void SimNetwork::deliver_shared(SimTransport& from, SimTransport& to,
                                const PacketBuffer& data, TimePoint wire_done) {
  const NodeId src = from.host_.id();
  const NodeId dst = to.host_.id();

  if (auto it = recv_fault_.find(dst); it != recv_fault_.end() && it->second) {
    ++stats_.dropped_fault;
    return;
  }
  if (!same_partition(src, dst)) {
    ++stats_.dropped_fault;
    return;
  }

  // Effective link behaviour: a per-(src, dst) profile replaces the network
  // default wholesale; the legacy set_link_loss override then wins on the
  // loss component alone (it predates profiles and tests rely on it).
  const LinkProfile* prof = &default_profile_;
  if (auto it = link_profile_.find({src, dst}); it != link_profile_.end()) {
    prof = &it->second;
  }
  double loss = prof->loss;
  if (auto it = link_loss_.find({src, dst}); it != link_loss_.end()) loss = it->second;
  if (loss > 0.0 && sim_.rng().chance(loss)) {
    ++stats_.dropped_loss;
    // Per-receiver loss verdict: the submission already recorded kSent (the
    // frame DID cross the wire); this entry records which receiver lost it,
    // so captures reconcile with Stats::dropped_loss.
    record_capture(src, dst, data.size(), CapturedPacket::Verdict::kDroppedLoss);
    return;
  }

  Duration jitter{0};
  if (prof->jitter.count() > 0) {
    jitter = Duration(static_cast<Duration::rep>(
        sim_.rng().next_below(static_cast<std::uint64_t>(prof->jitter.count()))));
  }
  TimePoint arrival = wire_done + prof->latency + jitter;

  const bool reorder = prof->reorder_rate > 0.0 &&
                       prof->reorder_window.count() > 0 &&
                       sim_.rng().chance(prof->reorder_rate);
  if (reorder) {
    // Hold this packet back by an extra delay and deliberately SKIP the
    // FIFO clamp: later packets on the same (src, dst) link may overtake
    // it. This is the one path where the sim produces genuine reordering.
    ++stats_.reordered;
    arrival += Duration(1 + static_cast<Duration::rep>(sim_.rng().next_below(
                                static_cast<std::uint64_t>(prof->reorder_window.count()))));
  } else {
    auto& last = last_arrival_[{src, dst}];
    if (arrival <= last) arrival = last + Duration(1);
    last = arrival;
  }

  schedule_arrival(&to, src, data, arrival);

  if (prof->duplicate_rate > 0.0 && sim_.rng().chance(prof->duplicate_rate)) {
    // Re-deliver a pooled copy (a refcount on the same shared buffer — the
    // wire does not copy payloads and neither do we) after an extra delay.
    // The duplicate bypasses the FIFO clamp like a reordered packet: real
    // duplicates arrive late, after the original's successors.
    ++stats_.duplicated;
    const std::uint64_t window = static_cast<std::uint64_t>(
        prof->reorder_window.count() > 0 ? prof->reorder_window.count()
                                         : prof->jitter.count() + 1);
    const TimePoint dup_arrival =
        arrival + Duration(1 + static_cast<Duration::rep>(sim_.rng().next_below(window)));
    schedule_arrival(&to, src, data, dup_arrival);
  }
}

void SimNetwork::schedule_arrival(SimTransport* dest, NodeId src,
                                  const PacketBuffer& data, TimePoint arrival) {
  sim_.schedule_at(arrival, [this, dest, src, data] {
    // Linux 2.2 default socket buffers were 64 KB: packets arriving while
    // the receiver's stack is backed up beyond that are silently dropped.
    // The drop shows up on BOTH ledgers — the network's overflow counter
    // and the endpoint's rx_dropped — so sim and UDP runs produce the same
    // triage artifacts.
    if (dest->rx_pending_bytes_ + data.size() > params_.rx_buffer_bytes) {
      ++stats_.dropped_overflow;
      ++dest->stats_.rx_dropped;
      return;
    }
    dest->rx_pending_bytes_ += data.size();
    const auto& costs = dest->host_.costs();
    const auto recv_cost =
        costs.recv_packet_cost +
        Duration(static_cast<Duration::rep>(data.size() * costs.recv_byte_cost_us));
    const TimePoint done = dest->host_.cpu().acquire(sim_.now(), recv_cost);
    sim_.schedule_at(done, [this, dest, src, data] {
      dest->rx_pending_bytes_ -= data.size();
      ++dest->stats_.packets_received;
      dest->stats_.bytes_received += data.size();
      ++stats_.deliveries;
      if (dest->rx_handler_) {
        if (corruption_rate_ > 0.0 && !data.empty() &&
            sim_.rng().chance(corruption_rate_)) {
          // Flip one byte of a pooled copy for THIS receiver only (other
          // receivers of the same broadcast may still get it intact, as on
          // a real LAN) — the shared buffer itself must stay pristine.
          ++stats_.corrupted;
          PacketBuffer mangled = corruption_pool_.copy_of(data);
          Bytes& bytes = mangled.mutable_bytes();
          const std::size_t pos = sim_.rng().next_below(bytes.size());
          bytes[pos] ^= std::byte{0x40};
          dest->rx_handler_(ReceivedPacket{std::move(mangled), src, id_});
        } else {
          dest->rx_handler_(ReceivedPacket{data, src, id_});
        }
      }
    });
  });
}

}  // namespace totem::net

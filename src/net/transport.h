// Transport: one instance per redundant network.
//
// The Totem RRP layer (src/rrp/) holds N of these — one per redundant LAN —
// and decides per replication style which subset carries each message/token.
// Implementations:
//   * net::SimTransport — simulated Ethernet broadcast domain (deterministic)
//   * net::UdpTransport — real UDP sockets driven by net::Reactor
#pragma once

#include <cstdint>
#include <functional>

#include "common/bytes.h"
#include "common/packet_buffer.h"
#include "common/types.h"

namespace totem::net {

/// One datagram handed up from a transport to the replication layer.
struct ReceivedPacket {
  /// The payload with transport framing already stripped. Refcounted:
  /// receivers of one broadcast share the bytes rather than copying them.
  PacketBuffer data;
  /// Node id of the sender, recovered from the transport framing header.
  NodeId source = kInvalidNode;
  /// Which redundant network delivered this copy.
  NetworkId network = 0;
};

/// Abstract best-effort datagram service over one redundant network.
///
/// Loss, duplication and reordering are allowed (the SRP's retransmission
/// machinery repairs them); in-order delivery within one network is typical
/// but not assumed. All methods are single-threaded with respect to each
/// other unless a concrete implementation documents otherwise (see
/// UdpTransport's threading notes for the batched/queued hot path).
class Transport {
 public:
  /// Upcall invoked once per received datagram, on the thread that drains
  /// the network (the reactor/I-O thread for UdpTransport).
  using RxHandler = std::function<void(ReceivedPacket&&)>;

  virtual ~Transport() = default;

  /// Best-effort broadcast to every other node attached to this network.
  /// The sender does NOT receive its own broadcast (the SRP retains its own
  /// messages directly, as the real implementation does). The buffer is
  /// SHARED, not copied: when a replicator fans one packet out to N
  /// networks, all N transports hold refcounts on the same pooled bytes.
  virtual void broadcast(PacketBuffer packet) = 0;

  /// Best-effort unicast (used for the token).
  virtual void unicast(NodeId dest, PacketBuffer packet) = 0;

  /// Convenience entry points for non-pooled callers (tests, tools): copy
  /// `packet` into a pooled buffer first. This materializes the extra copy
  /// the zero-copy path exists to avoid, and charges on_payload_copy().
  /// Derived classes re-expose these with `using Transport::broadcast;`.
  void broadcast(BytesView packet) { broadcast(copy_to_pool(packet)); }
  void unicast(NodeId dest, BytesView packet) { unicast(dest, copy_to_pool(packet)); }

  /// Install the receive upcall. Must be set before traffic flows (the
  /// replicators install theirs at construction).
  virtual void set_rx_handler(RxHandler handler) = 0;

  /// Index of the redundant network this transport serves (0-based).
  [[nodiscard]] virtual NetworkId network_id() const = 0;
  /// Node id of the local endpoint on this network.
  [[nodiscard]] virtual NodeId local_node() const = 0;

  /// Datagram-level traffic counters. Byte counts cover payloads only
  /// (transport framing excluded), so they are comparable across transports.
  struct Stats {
    std::uint64_t packets_sent = 0;      ///< datagrams submitted (incl. injected-loss victims)
    std::uint64_t packets_received = 0;  ///< datagrams accepted and handed up
    std::uint64_t bytes_sent = 0;        ///< payload bytes submitted
    std::uint64_t bytes_received = 0;    ///< payload bytes accepted
    // RX-side drop accounting. UdpTransport counts bad magic / loopback /
    // injected faults here; SimTransport counts rx-buffer overflow, so sim
    // and UDP runs surface receive-side drops through the same field.
    std::uint64_t rx_dropped = 0;    ///< rx-side drops (see above)
    std::uint64_t rx_truncated = 0;  ///< datagram exceeded the RX buffer
    std::uint64_t rx_short = 0;      ///< datagram shorter than the framing header
    // Batched/queued hot-path accounting (UdpTransport; zero elsewhere).
    std::uint64_t tx_errors = 0;          ///< datagrams the socket refused (per-datagram errno)
    std::uint64_t tx_queue_drops = 0;     ///< datagrams dropped: TX handoff ring full
    std::uint64_t rx_queue_drops = 0;     ///< datagrams dropped: RX handoff ring full
    std::uint64_t tx_syscall_batches = 0; ///< sendmmsg/sendto rounds issued
    std::uint64_t rx_syscall_batches = 0; ///< recvmmsg/recv rounds that returned data
  };
  /// Live counters. Plain (non-atomic) fields: when an implementation runs
  /// its hot path on an I/O thread (UdpTransport in queued mode), read them
  /// only while that thread is stopped or quiescent.
  [[nodiscard]] virtual const Stats& stats() const = 0;

 protected:
  /// Hook for cost models: invoked when the legacy BytesView entry points
  /// materialize a user-space payload copy (the simulator charges CPU time
  /// for it; real transports spend real cycles and need no hook).
  virtual void on_payload_copy(std::size_t /*bytes*/) {}

  /// Copy a non-pooled payload into the process-wide scratch pool (the
  /// bridge the BytesView convenience overloads ride on).
  [[nodiscard]] PacketBuffer copy_to_pool(BytesView packet) {
    on_payload_copy(packet.size());
    return BufferPool::scratch().copy_of(packet);
  }
};

/// Hook through which protocol layers charge per-unit processing time to the
/// local CPU. In the simulator this extends the host's busy time (the
/// mechanism behind the paper's CPU-bound throughput ceilings, Section 8);
/// in real deployments the charger is null because real cycles are spent.
class CpuCharger {
 public:
  virtual ~CpuCharger() = default;
  /// Add `cost` of busy time to the local CPU model.
  virtual void charge(Duration cost) = 0;
};

}  // namespace totem::net

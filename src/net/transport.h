// Transport: one instance per redundant network.
//
// The Totem RRP layer (src/rrp/) holds N of these — one per redundant LAN —
// and decides per replication style which subset carries each message/token.
// Implementations:
//   * net::SimTransport — simulated Ethernet broadcast domain (deterministic)
//   * net::UdpTransport — real UDP sockets driven by net::Reactor
#pragma once

#include <cstdint>
#include <functional>

#include "common/bytes.h"
#include "common/packet_buffer.h"
#include "common/types.h"

namespace totem::net {

struct ReceivedPacket {
  PacketBuffer data;  // refcounted: receivers of one broadcast share bytes
  NodeId source = kInvalidNode;
  NetworkId network = 0;
};

class Transport {
 public:
  using RxHandler = std::function<void(ReceivedPacket&&)>;

  virtual ~Transport() = default;

  /// Best-effort broadcast to every other node attached to this network.
  /// The sender does NOT receive its own broadcast (the SRP retains its own
  /// messages directly, as the real implementation does). The buffer is
  /// SHARED, not copied: when a replicator fans one packet out to N
  /// networks, all N transports hold refcounts on the same pooled bytes.
  virtual void broadcast(PacketBuffer packet) = 0;

  /// Best-effort unicast (used for the token).
  virtual void unicast(NodeId dest, PacketBuffer packet) = 0;

  /// Convenience entry points for non-pooled callers (tests, tools): copy
  /// `packet` into a pooled buffer first. This materializes the extra copy
  /// the zero-copy path exists to avoid, and charges on_payload_copy().
  /// Derived classes re-expose these with `using Transport::broadcast;`.
  void broadcast(BytesView packet) { broadcast(copy_to_pool(packet)); }
  void unicast(NodeId dest, BytesView packet) { unicast(dest, copy_to_pool(packet)); }

  virtual void set_rx_handler(RxHandler handler) = 0;

  [[nodiscard]] virtual NetworkId network_id() const = 0;
  [[nodiscard]] virtual NodeId local_node() const = 0;

  struct Stats {
    std::uint64_t packets_sent = 0;
    std::uint64_t packets_received = 0;
    std::uint64_t bytes_sent = 0;
    std::uint64_t bytes_received = 0;
    // RX-side drop accounting (populated by transports that can observe
    // these conditions, e.g. UdpTransport; zero on the simulator).
    std::uint64_t rx_dropped = 0;    // bad magic, own loopback copy, injected fault
    std::uint64_t rx_truncated = 0;  // datagram exceeded the RX buffer
    std::uint64_t rx_short = 0;      // datagram shorter than the framing header
  };
  [[nodiscard]] virtual const Stats& stats() const = 0;

 protected:
  /// Hook for cost models: invoked when the legacy BytesView entry points
  /// materialize a user-space payload copy (the simulator charges CPU time
  /// for it; real transports spend real cycles and need no hook).
  virtual void on_payload_copy(std::size_t /*bytes*/) {}

  [[nodiscard]] PacketBuffer copy_to_pool(BytesView packet) {
    on_payload_copy(packet.size());
    return BufferPool::scratch().copy_of(packet);
  }
};

/// Hook through which protocol layers charge per-unit processing time to the
/// local CPU. In the simulator this extends the host's busy time (the
/// mechanism behind the paper's CPU-bound throughput ceilings, Section 8);
/// in real deployments the charger is null because real cycles are spent.
class CpuCharger {
 public:
  virtual ~CpuCharger() = default;
  virtual void charge(Duration cost) = 0;
};

}  // namespace totem::net

// LinkProfile: per-direction link quality for the simulated networks.
//
// The paper's monitors (Fig. 5) assume symmetric, loss-or-dead LANs.
// Production rings see more: asymmetric loss, WAN-scale latency and jitter,
// reordering, duplication, and slow-but-not-dead "gray" networks. A
// LinkProfile captures those per DIRECTED (src, dst) pair — or as a whole
// network's default — so the degraded-network scenarios of DESIGN.md §14
// (and every later WAN/multi-site scenario) are expressible in the sim.
//
// Reordering and duplication deserve a note: SimNetwork normally clamps
// arrivals to FIFO per (src, dst) pair, because UDP over one Ethernet
// preserves order to a single recipient in the fault-free case. A packet
// selected for reordering deliberately BYPASSES that clamp (it is held back
// by an extra delay drawn from [1, reorder_window] while later packets
// overtake it), and a packet selected for duplication is delivered again —
// a refcounted copy of the same pooled buffer — after a similar extra
// delay. Both are repaired by the SRP (seq-number dedup, retransmission),
// which is exactly what the tests under these profiles assert.
#pragma once

#include <optional>
#include <string_view>

#include "common/types.h"

namespace totem::net {

struct LinkProfile {
  Duration latency{5};        ///< base propagation latency
  Duration jitter{2};         ///< uniform extra delay in [0, jitter)
  double loss = 0.0;          ///< drop probability per delivery attempt
  double reorder_rate = 0.0;  ///< probability a delivered packet is held back
  Duration reorder_window{0}; ///< max extra delay for a reordered packet
  double duplicate_rate = 0.0;///< probability a delivered packet arrives twice

  // ---- named presets (DESIGN.md §14) ----

  /// The clean paper-testbed LAN (matches SimNetwork::Params defaults).
  [[nodiscard]] static constexpr LinkProfile clean() { return LinkProfile{}; }

  /// A long-haul link: tens of ms of latency, visible jitter, light loss,
  /// and the mild reordering/duplication real WAN paths exhibit.
  [[nodiscard]] static constexpr LinkProfile wan() {
    LinkProfile p;
    p.latency = Duration{20'000};
    p.jitter = Duration{5'000};
    p.loss = 0.005;
    p.reorder_rate = 0.02;
    p.reorder_window = Duration{10'000};
    p.duplicate_rate = 0.001;
    return p;
  }

  /// Slow-but-not-dead: LAN latency, but heavy loss plus reordering and
  /// duplication. Neither monitor's loss-or-dead dichotomy fits it — the
  /// scenario the paper's Fig. 5 thresholds were never tuned for.
  [[nodiscard]] static constexpr LinkProfile gray_failure() {
    LinkProfile p;
    p.latency = Duration{8};
    p.jitter = Duration{40};
    p.loss = 0.10;
    p.reorder_rate = 0.05;
    p.reorder_window = Duration{2'000};
    p.duplicate_rate = 0.01;
    return p;
  }

  /// A link that oscillates between fine and awful: bursty delay spread
  /// (jitter far above the base latency) with moderate loss. Campaigns and
  /// the failover bench pair this profile with actual up/down flapping of
  /// the network (FaultKind::kFlapNetwork) for the time-varying half.
  [[nodiscard]] static constexpr LinkProfile flapping() {
    LinkProfile p;
    p.latency = Duration{10};
    p.jitter = Duration{15'000};
    p.loss = 0.05;
    p.reorder_rate = 0.10;
    p.reorder_window = Duration{15'000};
    return p;
  }

  /// The degraded DIRECTION of an asymmetric link: heavy one-way loss.
  /// Apply to (src, dst) and leave (dst, src) clean — receivers hear the
  /// sender badly while the reverse path stays perfect, which starves
  /// exactly one side of the token exchange.
  [[nodiscard]] static constexpr LinkProfile asymmetric_loss() {
    LinkProfile p;
    p.loss = 0.30;
    return p;
  }
};

/// Preset lookup by name ("clean", "wan", "gray_failure", "flapping",
/// "asymmetric_loss") — the vocabulary benches and campaign replays use.
[[nodiscard]] inline std::optional<LinkProfile> link_profile_preset(
    std::string_view name) {
  if (name == "clean") return LinkProfile::clean();
  if (name == "wan") return LinkProfile::wan();
  if (name == "gray_failure") return LinkProfile::gray_failure();
  if (name == "flapping") return LinkProfile::flapping();
  if (name == "asymmetric_loss") return LinkProfile::asymmetric_loss();
  return std::nullopt;
}

}  // namespace totem::net

// DatapathBackend: which syscall strategy drives a UdpTransport.
//
// Three generations of the same UDP hot path (DESIGN.md §12, §15):
//   kPerDatagram — portable sendto()/recv(), one syscall per datagram.
//   kMmsg        — sendmmsg()/recvmmsg() batches (Linux; PR 4).
//   kIoUring     — io_uring: multishot recv into provided buffers, linked
//                  SQE fan-out over connected per-peer sockets (Linux ≥6.0).
//
// Selection is a UdpTransport::Config field; UdpTransport::create() resolves
// it against what the build and the running kernel actually support and
// falls back kIoUring → kMmsg → kPerDatagram (see Config::require_backend
// for tests that must pin a backend or skip).
#pragma once

namespace totem::net {

enum class DatapathBackend {
  kPerDatagram,
  kMmsg,
  kIoUring,
};

/// Human-readable backend name ("per-datagram", "mmsg", "io_uring") — also
/// the label suffix on the net.tx_batch/net.rx_batch metrics. (Not named
/// to_string: it would hide totem::to_string(BytesView) inside totem::net.)
[[nodiscard]] constexpr const char* backend_name(DatapathBackend b) {
  switch (b) {
    case DatapathBackend::kPerDatagram: return "per-datagram";
    case DatapathBackend::kMmsg: return "mmsg";
    case DatapathBackend::kIoUring: return "io_uring";
  }
  return "?";
}

/// True when the io_uring backend was compiled in (Linux build with
/// <linux/io_uring.h>, CMake option TOTEM_IO_URING=ON).
[[nodiscard]] bool io_uring_compiled();

/// True when the running kernel supports everything the backend needs
/// (io_uring with multishot recv + provided buffer rings). One functional
/// probe per process — an actual ring, buffer ring, and multishot recv
/// round-trip on a loopback socket — cached after the first call. False
/// whenever io_uring_compiled() is false, or when seccomp/older kernels
/// reject the setup.
[[nodiscard]] bool io_uring_available();

}  // namespace totem::net

// Reactor: poll()-based event loop with a timer heap.
//
// Real-time counterpart of sim::Simulator — implements the same TimerService
// interface and additionally dispatches socket readability, so the protocol
// stack runs unchanged over real UDP (see net::UdpTransport).
//
// Threading model. The reactor itself is single-threaded: register_fd /
// unregister_fd / schedule / run / poll_once all belong to the one thread
// that runs the loop (or to setup code before that thread starts and after
// it joins). Exactly two entry points are safe from other threads:
//   * stop()   — atomic flag, ends run() at the next poll round
//   * notify() — wakes a blocked poll() immediately and runs the registered
//                wake hooks; used by the ordering thread to kick the I/O
//                thread after queueing TX work (DESIGN.md §12)
// notify() coalesces: any number of calls between two poll rounds cost at
// most one pipe write, so the ordering thread may call it per packet.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <vector>

#include "common/timer_heap.h"
#include "common/timer_service.h"
#include "common/types.h"

namespace totem::net {

class Reactor : public TimerService {
 public:
  Reactor();
  ~Reactor() override;

  /// Monotonic wall-clock time.
  [[nodiscard]] TimePoint now() const override;
  /// Run `cb` once after `delay` (loop thread only).
  TimerHandle schedule(Duration delay, Callback cb) override;

  /// Invoke `on_readable` whenever `fd` becomes readable.
  void register_fd(int fd, std::function<void()> on_readable);
  void unregister_fd(int fd);

  /// Invoke `on_writable` whenever `fd` becomes writable (or errors/hangs
  /// up — the handler's write attempt surfaces the error). A fd may be
  /// registered for read and write independently; used by streaming
  /// responders (net::TelemetryServer) to flush large replies without
  /// blocking the loop. Same threading rules as register_fd.
  void register_fd_write(int fd, std::function<void()> on_writable);
  void unregister_fd_write(int fd);

  /// Register `hook` to run on every poll round after fd dispatch — the
  /// mechanism by which transports flush their TX queues on the I/O thread.
  /// Returns an id for remove_wake_hook.
  std::uint64_t add_wake_hook(std::function<void()> hook);
  void remove_wake_hook(std::uint64_t id);

  /// Thread-safe: wake a blocked poll() now. Coalesced — concurrent calls
  /// between two poll rounds collapse into one wakeup.
  void notify();

  /// Run until stop() is called.
  void run();
  /// Run for (approximately) the given wall duration.
  void run_for(Duration d);
  /// One poll round: waits at most `max_wait` (clipped to the next timer
  /// deadline), dispatches ready fds, wake hooks and due timers.
  void poll_once(Duration max_wait);
  /// Thread-safe: make run() return at the next poll round.
  void stop() { stopped_ = true; }

 private:
  [[nodiscard]] Duration until_next_timer(Duration cap) const;

  TimerHeap timers_;
  std::map<int, std::function<void()>> fds_;
  std::map<int, std::function<void()>> write_fds_;
  std::map<std::uint64_t, std::function<void()>> wake_hooks_;
  std::uint64_t next_hook_id_ = 0;

  // Self-pipe for notify(): write end poked by other threads, read end in
  // the poll set. notified_ coalesces writes between poll rounds.
  int wake_rd_ = -1;
  int wake_wr_ = -1;
  std::atomic<bool> notified_{false};
  std::atomic<bool> stopped_{false};
};

}  // namespace totem::net

// Reactor: single-threaded poll()-based event loop with a timer heap.
//
// Real-time counterpart of sim::Simulator — implements the same TimerService
// interface and additionally dispatches socket readability, so the protocol
// stack runs unchanged over real UDP (see net::UdpTransport).
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <queue>
#include <vector>

#include "common/timer_service.h"
#include "common/types.h"

namespace totem::net {

class Reactor : public TimerService {
 public:
  Reactor();

  [[nodiscard]] TimePoint now() const override;
  TimerHandle schedule(Duration delay, Callback cb) override;

  /// Invoke `on_readable` whenever `fd` becomes readable.
  void register_fd(int fd, std::function<void()> on_readable);
  void unregister_fd(int fd);

  /// Run until stop() is called.
  void run();
  /// Run for (approximately) the given wall duration.
  void run_for(Duration d);
  /// One poll round: waits at most `max_wait` (clipped to the next timer
  /// deadline), dispatches ready fds and due timers.
  void poll_once(Duration max_wait);
  void stop() { stopped_ = true; }

 private:
  void fire_due_timers();
  [[nodiscard]] Duration until_next_timer(Duration cap) const;

  struct PendingTimer {
    TimePoint at;
    std::uint64_t seq;
    Callback fn;
    std::shared_ptr<detail::TimerState> state;
  };
  struct Later {
    bool operator()(const PendingTimer& a, const PendingTimer& b) const {
      if (a.at != b.at) return a.at > b.at;
      return a.seq > b.seq;
    }
  };

  std::priority_queue<PendingTimer, std::vector<PendingTimer>, Later> timers_;
  std::map<int, std::function<void()>> fds_;
  std::uint64_t next_seq_ = 0;
  std::atomic<bool> stopped_{false};
};

}  // namespace totem::net

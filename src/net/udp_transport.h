// UdpTransport: one real UDP socket per (node, redundant network).
//
// Mirrors the paper's deployment: Totem sends everything as UDP packets,
// one socket per NIC. A "network" here is a set of UDP endpoints sharing a
// base port — on a multi-homed machine these bind distinct interfaces; on a
// single machine (the examples) they bind distinct loopback port ranges,
// which preserves the property that matters to the RRP: the N channels fail
// and reorder independently.
//
// Broadcast is emulated by unicasting to every peer (the examples run on
// loopback where link-level broadcast is unavailable). A small transport
// header carries the sender's node id.
//
// Hot path (DESIGN.md §12). TX and RX are syscall-batched: a broadcast
// fan-out and any queued backlog go to the kernel as ONE sendmmsg() of up
// to kTxBatch datagrams, and a readable socket is drained recvmmsg()-first
// into kRxBatch pooled buffers per syscall (portable per-packet
// sendto/recv fallback when the platform lacks the mmsg calls, or when
// Config::batched_syscalls is off). Optionally the transport splits I/O
// from protocol work across threads: with Config::rx_queue_capacity /
// tx_queue_capacity set, received packets are handed to the ordering
// thread through a bounded lock-free SPSC ring (common/spsc_ring.h) and
// sends are framed on the ordering thread but hit the socket on the
// reactor thread, so replicator fan-out over N networks overlaps with SRP
// ordering work (api::ThreadedRuntime owns the thread lifecycle).
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <netinet/in.h>
#include <string>

#include "common/metrics.h"
#include "common/spsc_ring.h"
#include "common/status.h"
#include "net/reactor.h"
#include "net/transport.h"

namespace totem::net {

/// An IPv4 UDP address (dotted-quad + port) of one node on one network.
struct UdpEndpoint {
  std::string ip = "127.0.0.1";
  std::uint16_t port = 0;
};

class UdpTransport final : public Transport {
 public:
  /// Datagrams per sendmmsg() call (a broadcast fan-out plus queued backlog
  /// are packed up to this).
  static constexpr std::size_t kTxBatch = 64;
  /// Datagrams per recvmmsg() call (each backed by a pooled 64 KB buffer).
  static constexpr std::size_t kRxBatch = 32;

  struct Config {
    /// Index of the redundant network this transport serves.
    NetworkId network = 0;
    /// Local node id; must appear in `peers`.
    NodeId local_node = 0;
    /// Endpoint of every node (including the local one) on this network.
    std::map<NodeId, UdpEndpoint> peers;
    /// Simulate send-side packet loss (testing aid; 0 = off).
    double send_loss_rate = 0.0;

    /// SO_RCVBUF / SO_SNDBUF request. The default matches the paper's
    /// testbed (Linux 2.2 used 64 KB socket buffers); benchmarks that keep
    /// deep in-flight windows raise it so the kernel queue, not the
    /// buffer size, is the limit.
    int socket_buffer_bytes = 64 * 1024;

    /// Optional true IP multicast for broadcast() — what Totem actually
    /// uses on a real LAN ("the native Ethernet broadcast service", §2).
    /// When `multicast_group` is set (e.g. "239.192.7.1"), every transport
    /// on this network joins the group on `multicast_port`; broadcast()
    /// then costs ONE datagram instead of N-1 unicasts. Loopback copies of
    /// our own broadcasts are filtered by sender id. Tokens remain unicast
    /// (paper §2: "tokens are not broadcast").
    std::string multicast_group;
    std::uint16_t multicast_port = 0;
    std::string multicast_interface = "127.0.0.1";

    /// Optional metrics registry (common/metrics.h): send/recv batch-size
    /// histograms (net.tx_batch.netN / net.rx_batch.netN, datagrams per
    /// syscall) are recorded here when set. Not owned; must outlive the
    /// transport.
    MetricsRegistry* metrics = nullptr;

    /// Use sendmmsg/recvmmsg when the platform has them. Off = the
    /// portable one-syscall-per-datagram fallback (also what non-Linux
    /// builds compile to); exists so tests can pin either path and the
    /// bench can compare them.
    bool batched_syscalls = true;

    /// When > 0, received packets are queued into a bounded SPSC ring
    /// instead of invoking the rx handler on the reactor thread; the
    /// ordering thread must call dispatch_queued() (ThreadedRuntime wires
    /// this). Ring-full datagrams are counted in rx_queue_drops — bounded-
    /// queue semantics, same as a full kernel socket buffer.
    std::size_t rx_queue_capacity = 0;

    /// When > 0, broadcast()/unicast() only frame the packet (on the
    /// calling/ordering thread) and queue it; the reactor thread drains the
    /// queue into sendmmsg batches. Ring-full datagrams are counted in
    /// tx_queue_drops.
    std::size_t tx_queue_capacity = 0;
  };

  /// Binds the local endpoint and registers with the reactor. Fails with
  /// kInvalidArgument on a bad config and kUnavailable on socket errors
  /// (e.g. the port is taken).
  static Result<std::unique_ptr<UdpTransport>> create(Reactor& reactor, Config config);

  ~UdpTransport() override;
  UdpTransport(const UdpTransport&) = delete;
  UdpTransport& operator=(const UdpTransport&) = delete;

  using Transport::broadcast;
  using Transport::unicast;

  /// Send to every peer: one multicast datagram when configured, otherwise
  /// a sendmmsg-batched fan-out (or the per-peer fallback loop). In queued
  /// mode this only frames + enqueues; the reactor thread does the syscall.
  void broadcast(PacketBuffer packet) override;
  /// Send to one peer (the token path). Batched/queued like broadcast().
  void unicast(NodeId dest, PacketBuffer packet) override;
  /// Install the receive upcall. In queued mode it runs on the thread that
  /// calls dispatch_queued(); otherwise on the reactor thread.
  void set_rx_handler(RxHandler handler) override { rx_handler_ = std::move(handler); }

  [[nodiscard]] NetworkId network_id() const override { return config_.network; }
  [[nodiscard]] NodeId local_node() const override { return config_.local_node; }
  /// See Transport::stats() for the threading caveat in queued mode.
  [[nodiscard]] const Stats& stats() const override { return stats_; }
  /// True when broadcast() rides a single IP-multicast datagram.
  [[nodiscard]] bool multicast_enabled() const { return mcast_fd_ >= 0; }

  /// Pop up to `max` packets from the RX handoff ring and invoke the rx
  /// handler for each. The consumer half of the SPSC handoff: call from
  /// exactly one (ordering) thread. Returns the number dispatched. No-op
  /// unless Config::rx_queue_capacity > 0.
  std::size_t dispatch_queued(std::size_t max = static_cast<std::size_t>(-1));
  /// True when received packets are queued for dispatch_queued() rather than
  /// delivered on the reactor thread.
  [[nodiscard]] bool rx_queued() const { return rx_ring_ != nullptr; }
  /// Invoked on the reactor thread after a drain round that queued at least
  /// one packet — ThreadedRuntime uses it to wake the ordering loop. Set
  /// before traffic flows.
  void set_rx_wakeup(std::function<void()> wakeup) { rx_wakeup_ = std::move(wakeup); }

  /// Testing aid: drop all outgoing packets (models a failed NIC TX path).
  /// Thread-safe.
  void set_send_fault(bool faulty) { send_fault_.store(faulty, std::memory_order_relaxed); }
  /// Testing aid: drop all incoming packets (models a failed NIC RX path).
  /// Thread-safe.
  void set_recv_fault(bool faulty) { recv_fault_.store(faulty, std::memory_order_relaxed); }

 private:
  UdpTransport(Reactor& reactor, Config config, int fd, int mcast_fd);

  // One framed datagram bound for `dest` (kBroadcastDest = all peers, or
  // the multicast group when enabled). The frame is a pooled buffer so a
  // queued entry pins refcounted bytes, not a copy.
  static constexpr NodeId kBroadcastDest = kInvalidNode;
  struct TxEntry {
    PacketBuffer frame;
    NodeId dest = kBroadcastDest;
  };

  void drain(int fd);
  void drain_batched(int fd);
  void drain_fallback(int fd);
  /// Validate + strip framing and hand one datagram up (or queue it).
  /// Returns true if the packet was queued into the RX ring.
  bool accept_datagram(PacketBuffer buf, std::size_t len);

  /// Materialize the framed datagram (transport header + payload) into a
  /// pooled buffer ONCE per broadcast/unicast; the batch sender then reuses
  /// it for every destination instead of re-framing per datagram.
  [[nodiscard]] PacketBuffer build_frame(BytesView packet);
  /// Send `entry` now: expand broadcast to all peers and flush through the
  /// mmsghdr batch array. Caller thread = reactor thread in queued mode,
  /// the broadcast()/unicast() caller otherwise.
  void send_entry(const TxEntry& entry);
  /// Drain the TX handoff ring into sendmmsg batches (reactor thread).
  void flush_tx();
  /// Count + loss-inject one datagram; returns false if it must be dropped.
  bool account_tx(std::size_t payload_bytes);
  void send_batch(const PacketBuffer* frames[], const sockaddr_in* addrs, std::size_t n);

  Reactor& reactor_;
  Config config_;
  int fd_ = -1;
  int mcast_fd_ = -1;
  RxHandler rx_handler_;
  std::function<void()> rx_wakeup_;
  Stats stats_;
  std::atomic<bool> send_fault_{false};
  std::atomic<bool> recv_fault_{false};
  std::uint64_t loss_rng_state_;
  BufferPool tx_pool_;   // framed datagrams (TX); refcount-shared across a batch
  BufferPool rx_pool_;   // received datagrams, handed up by refcount
  std::unique_ptr<SpscRing<TxEntry>> tx_ring_;          // ordering -> reactor
  std::unique_ptr<SpscRing<ReceivedPacket>> rx_ring_;   // reactor -> ordering
  std::uint64_t wake_hook_id_ = 0;
  bool wake_hook_added_ = false;
  LatencyHistogram* tx_batch_hist_ = nullptr;  // datagrams per TX syscall batch
  LatencyHistogram* rx_batch_hist_ = nullptr;  // datagrams per RX syscall
  // Resolved peer addresses (excluding self), fixed after construction —
  // safe to read from any thread.
  std::vector<std::pair<NodeId, sockaddr_in>> peer_addrs_;
  std::map<NodeId, sockaddr_in> addr_by_node_;
  sockaddr_in mcast_addr_{};
};

/// Convenience: build the peer map for `node_count` nodes on loopback with
/// ports base_port, base_port+1, ... (one block per network).
[[nodiscard]] std::map<NodeId, UdpEndpoint> loopback_peers(std::uint16_t base_port,
                                                           std::uint32_t node_count);

}  // namespace totem::net

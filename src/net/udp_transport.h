// UdpTransport: one real UDP socket per (node, redundant network).
//
// Mirrors the paper's deployment: Totem sends everything as UDP packets,
// one socket per NIC. A "network" here is a set of UDP endpoints sharing a
// base port — on a multi-homed machine these bind distinct interfaces; on a
// single machine (the examples) they bind distinct loopback port ranges,
// which preserves the property that matters to the RRP: the N channels fail
// and reorder independently.
//
// Broadcast is emulated by unicasting to every peer (the examples run on
// loopback where link-level broadcast is unavailable). A small transport
// header carries the sender's node id.
#pragma once

#include <cstdint>
#include <map>
#include <string>

#include "common/metrics.h"
#include "common/status.h"
#include "net/reactor.h"
#include "net/transport.h"

namespace totem::net {

struct UdpEndpoint {
  std::string ip = "127.0.0.1";
  std::uint16_t port = 0;
};

class UdpTransport final : public Transport {
 public:
  struct Config {
    NetworkId network = 0;
    NodeId local_node = 0;
    /// Endpoint of every node (including the local one) on this network.
    std::map<NodeId, UdpEndpoint> peers;
    /// Simulate send-side packet loss (testing aid; 0 = off).
    double send_loss_rate = 0.0;

    /// Optional true IP multicast for broadcast() — what Totem actually
    /// uses on a real LAN ("the native Ethernet broadcast service", §2).
    /// When `multicast_group` is set (e.g. "239.192.7.1"), every transport
    /// on this network joins the group on `multicast_port`; broadcast()
    /// then costs ONE datagram instead of N-1 unicasts. Loopback copies of
    /// our own broadcasts are filtered by sender id. Tokens remain unicast
    /// (paper §2: "tokens are not broadcast").
    std::string multicast_group;
    std::uint16_t multicast_port = 0;
    std::string multicast_interface = "127.0.0.1";

    /// Optional metrics registry (common/metrics.h): send/recv batch-size
    /// histograms (net.tx_batch.netN / net.rx_batch.netN) are recorded
    /// here when set. Not owned; must outlive the transport.
    MetricsRegistry* metrics = nullptr;
  };

  /// Binds the local endpoint and registers with the reactor.
  static Result<std::unique_ptr<UdpTransport>> create(Reactor& reactor, Config config);

  ~UdpTransport() override;
  UdpTransport(const UdpTransport&) = delete;
  UdpTransport& operator=(const UdpTransport&) = delete;

  using Transport::broadcast;
  using Transport::unicast;

  void broadcast(PacketBuffer packet) override;
  void unicast(NodeId dest, PacketBuffer packet) override;
  void set_rx_handler(RxHandler handler) override { rx_handler_ = std::move(handler); }

  [[nodiscard]] NetworkId network_id() const override { return config_.network; }
  [[nodiscard]] NodeId local_node() const override { return config_.local_node; }
  [[nodiscard]] const Stats& stats() const override { return stats_; }
  [[nodiscard]] bool multicast_enabled() const { return mcast_fd_ >= 0; }

  /// Testing aid: drop all outgoing packets (models a failed NIC TX path).
  void set_send_fault(bool faulty) { send_fault_ = faulty; }
  /// Testing aid: drop all incoming packets (models a failed NIC RX path).
  void set_recv_fault(bool faulty) { recv_fault_ = faulty; }

 private:
  UdpTransport(Reactor& reactor, Config config, int fd, int mcast_fd);

  void drain(int fd);
  /// Materialize the framed datagram (transport header + payload) into
  /// tx_frame_ ONCE per broadcast/unicast; send_frame() then reuses it for
  /// every destination instead of re-framing per sendto().
  void build_frame(BytesView packet);
  void send_frame(const UdpEndpoint& ep);

  Reactor& reactor_;
  Config config_;
  int fd_ = -1;
  int mcast_fd_ = -1;
  RxHandler rx_handler_;
  Stats stats_;
  bool send_fault_ = false;
  bool recv_fault_ = false;
  std::uint64_t loss_rng_state_;
  Bytes tx_frame_;       // reused across sends; capacity stabilizes quickly
  BufferPool rx_pool_;   // received datagrams, handed up by refcount
  LatencyHistogram* tx_batch_hist_ = nullptr;  // datagrams per broadcast()
  LatencyHistogram* rx_batch_hist_ = nullptr;  // datagrams per drain() round
};

/// Convenience: build the peer map for `node_count` nodes on loopback with
/// ports base_port, base_port+1, ... (one block per network).
[[nodiscard]] std::map<NodeId, UdpEndpoint> loopback_peers(std::uint16_t base_port,
                                                           std::uint32_t node_count);

}  // namespace totem::net

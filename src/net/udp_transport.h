// UdpTransport: one real UDP socket per (node, redundant network).
//
// Mirrors the paper's deployment: Totem sends everything as UDP packets,
// one socket per NIC. A "network" here is a set of UDP endpoints sharing a
// base port — on a multi-homed machine these bind distinct interfaces; on a
// single machine (the examples) they bind distinct loopback port ranges,
// which preserves the property that matters to the RRP: the N channels fail
// and reorder independently.
//
// Broadcast is emulated by unicasting to every peer (the examples run on
// loopback where link-level broadcast is unavailable). A small transport
// header carries the sender's node id.
//
// Hot path (DESIGN.md §12, §15). Three datapath backends share this class's
// framing, accounting, and queueing; Config::backend picks one:
//   * kPerDatagram — portable sendto()/recv(), one syscall per datagram.
//   * kMmsg — a broadcast fan-out and any queued backlog go to the kernel
//     as ONE sendmmsg() of up to kTxBatch datagrams, and a readable socket
//     is drained recvmmsg()-first into kRxBatch pooled buffers per syscall.
//   * kIoUring — net::IoUringTransport (a subclass, still created through
//     UdpTransport::create()): multishot recv into a provided-buffer ring,
//     linked-SQE broadcast fan-out over connected per-peer sockets.
// Optionally the transport splits I/O from protocol work across threads:
// with Config::rx_queue_capacity / tx_queue_capacity set, received packets
// are handed to the ordering thread through a bounded lock-free SPSC ring
// (common/spsc_ring.h) and sends are framed on the ordering thread but hit
// the socket on the reactor thread, so replicator fan-out over N networks
// overlaps with SRP ordering work (api::ThreadedRuntime owns the thread
// lifecycle and can pin each thread to a CPU).
#pragma once

#include <array>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <netinet/in.h>
#include <string>
#include <vector>

#include "common/metrics.h"
#include "common/spsc_ring.h"
#include "common/status.h"
#include "net/datapath.h"
#include "net/reactor.h"
#include "net/transport.h"

namespace totem {
class TraceRing;
enum class TraceKind : std::uint8_t;
}  // namespace totem

namespace totem::net {

/// An IPv4 UDP address (dotted-quad + port) of one node on one network.
struct UdpEndpoint {
  std::string ip = "127.0.0.1";
  std::uint16_t port = 0;
};

class UdpTransport : public Transport {
 public:
  /// Datagrams per sendmmsg() call (a broadcast fan-out plus queued backlog
  /// are packed up to this).
  static constexpr std::size_t kTxBatch = 64;
  /// Datagrams per recvmmsg() call (each backed by a pooled 64 KB buffer).
  static constexpr std::size_t kRxBatch = 32;
  /// Size of the transport framing header (magic + sender id).
  static constexpr std::size_t kUdpHeaderSize = 8;

  struct Config {
    /// Index of the redundant network this transport serves.
    NetworkId network = 0;
    /// Local node id; must appear in `peers`.
    NodeId local_node = 0;
    /// Endpoint of every node (including the local one) on this network.
    std::map<NodeId, UdpEndpoint> peers;
    /// Simulate send-side packet loss (testing aid; 0 = off).
    double send_loss_rate = 0.0;

    /// SO_RCVBUF / SO_SNDBUF request. The default matches the paper's
    /// testbed (Linux 2.2 used 64 KB socket buffers); benchmarks that keep
    /// deep in-flight windows raise it so the kernel queue, not the
    /// buffer size, is the limit.
    int socket_buffer_bytes = 64 * 1024;

    /// Optional true IP multicast for broadcast() — what Totem actually
    /// uses on a real LAN ("the native Ethernet broadcast service", §2).
    /// When `multicast_group` is set (e.g. "239.192.7.1"), every transport
    /// on this network joins the group on `multicast_port`; broadcast()
    /// then costs ONE datagram instead of N-1 unicasts. Loopback copies of
    /// our own broadcasts are filtered by sender id. Tokens remain unicast
    /// (paper §2: "tokens are not broadcast").
    std::string multicast_group;
    std::uint16_t multicast_port = 0;
    std::string multicast_interface = "127.0.0.1";

    /// Optional metrics registry (common/metrics.h): send/recv batch-size
    /// histograms (net.tx_batch.netN.<backend> / net.rx_batch.netN.<backend>,
    /// datagrams per syscall or per completion round, labelled with the
    /// EFFECTIVE backend) are recorded here when set. Not owned; must
    /// outlive the transport.
    MetricsRegistry* metrics = nullptr;

    /// Optional flight recorder (common/trace.h): one kDatapathTxBatch /
    /// kDatapathRxBatch instant per syscall batch (a = network, b =
    /// datagrams in the batch), so the merged cluster timeline shows the
    /// batch shape under each token rotation. Emitted from the reactor
    /// (I/O) thread — TraceRing::emit is multi-writer safe. Not owned;
    /// must outlive the transport.
    TraceRing* trace = nullptr;

    /// Which datapath backend drives this transport (net/datapath.h).
    /// create() resolves it against the build and the running kernel:
    /// kIoUring degrades to kMmsg (with a warning) when io_uring is
    /// unavailable, and kMmsg degrades to kPerDatagram off Linux — unless
    /// require_backend is set. backend() reports the resolved choice.
    DatapathBackend backend = DatapathBackend::kMmsg;
    /// When true, create() fails with kUnavailable instead of degrading a
    /// `backend` the platform cannot provide (tests use this to skip).
    bool require_backend = false;

    /// Legacy switch for the pre-backend-enum API: false pins the portable
    /// per-datagram path (equivalent to backend = kPerDatagram). Kept so
    /// existing callers and benches keep meaning what they said.
    bool batched_syscalls = true;

    /// kIoUring tuning. RX buffers come from the transport's BufferPool and
    /// are registered as a provided-buffer ring; each must hold the largest
    /// protocol datagram (srp/wire.h caps bodies at 1424 bytes, so the 2 KB
    /// default — one pool slab — has headroom; oversized datagrams are
    /// counted in rx_truncated and dropped, never clipped into garbage).
    unsigned uring_sq_entries = 256;
    unsigned uring_rx_buffers = 256;
    std::size_t uring_rx_buffer_bytes = 2048;
    unsigned uring_tx_slots = 256;
    /// Pack consecutive same-size frames to one destination into a single
    /// UDP_SEGMENT (GSO) sendmsg — the kernel traverses the send path once
    /// per run instead of once per datagram. Probed at attach; silently
    /// falls back to per-datagram SQEs on kernels without UDP GSO.
    bool uring_tx_gso = true;

    /// TEST SEAM: when set, the mmsg path calls this instead of ::sendmmsg
    /// (msgvec is a struct mmsghdr*; same contract). Lets regression tests
    /// inject short writes and transient errors without a fake kernel.
    std::function<int(int fd, void* msgvec, unsigned vlen, int flags)>
        sendmmsg_hook;

    /// When > 0, received packets are queued into a bounded SPSC ring
    /// instead of invoking the rx handler on the reactor thread; the
    /// ordering thread must call dispatch_queued() (ThreadedRuntime wires
    /// this). Ring-full datagrams are counted in rx_queue_drops AND
    /// rx_dropped — bounded-queue semantics, same as a full kernel socket
    /// buffer, reconciled with the network-side counters.
    std::size_t rx_queue_capacity = 0;

    /// When > 0, broadcast()/unicast() only frame the packet (on the
    /// calling/ordering thread) and queue it; the reactor thread drains the
    /// queue into sendmmsg batches. Ring-full datagrams are counted in
    /// tx_queue_drops.
    std::size_t tx_queue_capacity = 0;
  };

  /// Binds the local endpoint, builds the backend resolved from
  /// Config::backend, and registers with the reactor. Fails with
  /// kInvalidArgument on a bad config and kUnavailable on socket errors
  /// (e.g. the port is taken) or when require_backend is set and the
  /// platform cannot provide the requested backend.
  static Result<std::unique_ptr<UdpTransport>> create(Reactor& reactor, Config config);

  ~UdpTransport() override;
  UdpTransport(const UdpTransport&) = delete;
  UdpTransport& operator=(const UdpTransport&) = delete;

  using Transport::broadcast;
  using Transport::unicast;

  /// Send to every peer: one multicast datagram when configured, otherwise
  /// a batched fan-out (or the per-peer fallback loop). In queued mode this
  /// only frames + enqueues; the reactor thread does the syscall.
  void broadcast(PacketBuffer packet) override;
  /// Send to one peer (the token path). Batched/queued like broadcast().
  void unicast(NodeId dest, PacketBuffer packet) override;
  /// Install the receive upcall. In queued mode it runs on the thread that
  /// calls dispatch_queued(); otherwise on the reactor thread.
  void set_rx_handler(RxHandler handler) override { rx_handler_ = std::move(handler); }

  [[nodiscard]] NetworkId network_id() const override { return config_.network; }
  [[nodiscard]] NodeId local_node() const override { return config_.local_node; }
  /// See Transport::stats() for the threading caveat in queued mode.
  [[nodiscard]] const Stats& stats() const override { return stats_; }
  /// True when broadcast() rides a single IP-multicast datagram.
  [[nodiscard]] bool multicast_enabled() const { return mcast_fd_ >= 0; }
  /// The EFFECTIVE datapath backend (after create()'s fallback resolution).
  [[nodiscard]] DatapathBackend backend() const { return backend_; }

  /// Pop up to `max` packets from the RX handoff ring and invoke the rx
  /// handler for each. The consumer half of the SPSC handoff: call from
  /// exactly one (ordering) thread. Returns the number dispatched. No-op
  /// unless Config::rx_queue_capacity > 0.
  std::size_t dispatch_queued(std::size_t max = static_cast<std::size_t>(-1));
  /// True when received packets are queued for dispatch_queued() rather than
  /// delivered on the reactor thread.
  [[nodiscard]] bool rx_queued() const { return rx_ring_ != nullptr; }
  /// Invoked on the reactor thread after a drain round that queued at least
  /// one packet — ThreadedRuntime uses it to wake the ordering loop. Set
  /// before traffic flows.
  void set_rx_wakeup(std::function<void()> wakeup) { rx_wakeup_ = std::move(wakeup); }

  /// Testing aid: drop all outgoing packets (models a failed NIC TX path).
  /// Thread-safe.
  void set_send_fault(bool faulty) { send_fault_.store(faulty, std::memory_order_relaxed); }
  /// Testing aid: drop all incoming packets (models a failed NIC RX path).
  /// Thread-safe.
  void set_recv_fault(bool faulty) { recv_fault_.store(faulty, std::memory_order_relaxed); }

 protected:
  UdpTransport(Reactor& reactor, Config config, int fd, int mcast_fd,
               DatapathBackend backend);

  // One framed datagram bound for `dest` (kBroadcastDest = all peers, or
  // the multicast group when enabled). The frame is a pooled buffer so a
  // queued entry pins refcounted bytes, not a copy.
  static constexpr NodeId kBroadcastDest = kInvalidNode;
  struct TxEntry {
    PacketBuffer frame;
    NodeId dest = kBroadcastDest;
  };

  /// Wire the freshly-constructed transport into the reactor (and, for
  /// subclasses, bring up their submission machinery). Called exactly once
  /// by create() — construction and attachment are split so a subclass's
  /// overrides are reachable. A failure status aborts create().
  virtual Status attach();

  // --- TX rounds -------------------------------------------------------
  // broadcast()/unicast() (direct mode) and flush_tx() (queued mode) wrap
  // one or more entries in begin_tx_round()..end_tx_round(); submit_entry()
  // expands each entry to its destinations. The base class packs datagrams
  // into sendmmsg batches; IoUringTransport overrides the three hooks to
  // fill SQEs instead. All three run on the sending thread (the reactor
  // thread in queued mode).
  virtual void begin_tx_round();
  virtual void submit_entry(const TxEntry& entry);
  virtual void end_tx_round();

  /// Expand `entry` into accounted (dest, addr) datagrams: multicast when
  /// enabled, else per-peer fan-out for broadcasts; route lookup for
  /// unicasts. `emit(NodeId dest, const sockaddr_in& addr)` is invoked once
  /// per datagram that survives account_tx() (dest == kBroadcastDest for
  /// the multicast group).
  template <typename Emit>
  void expand_entry(const TxEntry& entry, Emit&& emit) {
    const std::size_t payload = entry.frame.size() - kUdpHeaderSize;
    if (entry.dest == kBroadcastDest) {
      if (mcast_fd_ >= 0) {
        // One datagram to the group — the native broadcast Totem exploits (§2).
        if (account_tx(payload)) emit(kBroadcastDest, mcast_addr_);
      } else {
        for (const auto& [node, addr] : peer_addrs_) {
          if (account_tx(payload)) emit(node, addr);
        }
      }
    } else {
      auto it = addr_by_node_.find(entry.dest);
      if (it == addr_by_node_.end()) {
        warn_unknown_dest(entry.dest);
        return;
      }
      if (account_tx(payload)) emit(entry.dest, it->second);
    }
  }

  void drain(int fd);
  void drain_batched(int fd);
  void drain_fallback(int fd);
  /// Validate + strip framing and hand one datagram up (or queue it).
  /// Returns true if the packet was queued into the RX ring.
  bool accept_datagram(PacketBuffer buf, std::size_t len);

  /// Materialize the framed datagram (transport header + payload) into a
  /// pooled buffer ONCE per broadcast/unicast; the batch sender then reuses
  /// it for every destination instead of re-framing per datagram.
  [[nodiscard]] PacketBuffer build_frame(BytesView packet);
  /// Drain the TX handoff ring into TX rounds (reactor thread).
  void flush_tx();
  /// Count + loss-inject one datagram; returns false if it must be dropped.
  bool account_tx(std::size_t payload_bytes);
  /// Emit a kDatapathTxBatch/kDatapathRxBatch instant (no-op when
  /// Config::trace is unset or the batch is empty). Reactor-thread safe.
  void trace_batch(TraceKind kind, std::uint64_t datagrams);
  void send_batch(const PacketBuffer* frames[], const sockaddr_in* addrs, std::size_t n);
  void warn_unknown_dest(NodeId dest);
  /// Bounded POLLOUT wait used when the socket buffer back-pressures a
  /// send; returns false when it stayed full past the budget.
  bool wait_writable(int fd);

  Reactor& reactor_;
  Config config_;
  DatapathBackend backend_;
  int fd_ = -1;
  int mcast_fd_ = -1;
  RxHandler rx_handler_;
  std::function<void()> rx_wakeup_;
  Stats stats_;
  std::atomic<bool> send_fault_{false};
  std::atomic<bool> recv_fault_{false};
  std::uint64_t loss_rng_state_;
  BufferPool tx_pool_;   // framed datagrams (TX); refcount-shared across a batch
  BufferPool rx_pool_;   // received datagrams, handed up by refcount
  std::unique_ptr<SpscRing<TxEntry>> tx_ring_;          // ordering -> reactor
  std::unique_ptr<SpscRing<ReceivedPacket>> rx_ring_;   // reactor -> ordering
  std::uint64_t wake_hook_id_ = 0;
  bool wake_hook_added_ = false;
  LatencyHistogram* tx_batch_hist_ = nullptr;  // datagrams per TX syscall batch
  LatencyHistogram* rx_batch_hist_ = nullptr;  // datagrams per RX syscall
  // Resolved peer addresses (excluding self), fixed after construction —
  // safe to read from any thread.
  std::vector<std::pair<NodeId, sockaddr_in>> peer_addrs_;
  std::map<NodeId, sockaddr_in> addr_by_node_;
  sockaddr_in mcast_addr_{};

 private:
  // mmsg-batch accumulator for the current TX round (sending thread only;
  // frames stay pinned by the round's TxEntry owners until end_tx_round).
  std::array<const PacketBuffer*, kTxBatch> round_frames_{};
  std::array<sockaddr_in, kTxBatch> round_addrs_{};
  std::size_t round_n_ = 0;
};

/// Convenience: build the peer map for `node_count` nodes on loopback with
/// ports base_port, base_port+1, ... (one block per network).
[[nodiscard]] std::map<NodeId, UdpEndpoint> loopback_peers(std::uint16_t base_port,
                                                           std::uint32_t node_count);

}  // namespace totem::net

#include "rrp/active_replicator.h"

#include <cassert>

#include "common/log.h"
#include "common/trace.h"
#include "srp/wire.h"

namespace totem::rrp {

ActiveReplicator::ActiveReplicator(TimerService& timers,
                                   std::vector<net::Transport*> transports,
                                   ActiveConfig config)
    : timers_(timers),
      transports_(std::move(transports)),
      config_(config),
      faulty_(transports_.size(), false),
      recv_last_token_(transports_.size(), false),
      problem_counter_(transports_.size(), 0),
      success_streak_(transports_.size(), 0),
      last_token_at_(transports_.size()),
      evidence_start_(transports_.size()) {
  assert(!transports_.empty());
  for (net::Transport* t : transports_) {
    t->set_rx_handler([this](net::ReceivedPacket&& p) { on_packet(std::move(p)); });
  }
  if (config_.metrics) {
    token_gap_hists_.reserve(transports_.size());
    for (std::size_t i = 0; i < transports_.size(); ++i) {
      token_gap_hists_.push_back(
          config_.metrics->histogram("rrp.token_gap_us.net" + std::to_string(i)));
    }
    fault_detect_hist_ = config_.metrics->histogram("rrp.fault_detect_us");
  }
  decay_timer_ = timers_.schedule(config_.decay_interval, [this] { on_decay(); });
}

void ActiveReplicator::broadcast_message(PacketBuffer packet) {
  ++stats_.messages_sent;
  for (std::size_t i = 0; i < transports_.size(); ++i) {
    if (faulty_[i]) continue;
    ++stats_.packets_fanned_out;
    transports_[i]->broadcast(packet);
  }
}

void ActiveReplicator::send_token(NodeId next, PacketBuffer packet) {
  ++stats_.tokens_sent;
  for (std::size_t i = 0; i < transports_.size(); ++i) {
    if (faulty_[i]) continue;
    ++stats_.packets_fanned_out;
    transports_[i]->unicast(next, packet);
  }
}

void ActiveReplicator::on_packet(net::ReceivedPacket&& packet) {
  auto info = srp::wire::peek(packet.data);
  if (!info) return;
  if (info.value().type != srp::wire::PacketType::kToken) {
    // Messages go straight up; the SRP's sequence-number filter removes the
    // duplicate copies from the other networks (requirement A1).
    deliver_message_up(packet.data, packet.network);
    return;
  }
  handle_token(packet, TokenInstance{info.value().ring, info.value().token_rotation,
                                     info.value().token_seq});
}

void ActiveReplicator::credit_success(NetworkId net) {
  if (net < last_token_at_.size() && !token_gap_hists_.empty()) {
    // Per-network token inter-arrival: the paper's per-network health signal,
    // recorded for every current-ring token copy this network delivered.
    const TimePoint now = timers_.now();
    if (last_token_at_[net]) {
      token_gap_hists_[net]->record(
          static_cast<std::uint64_t>((now - *last_token_at_[net]).count()));
    }
    last_token_at_[net] = now;
  }
  // Traffic-proportional decay (requirement A6): successful copies earn the
  // network credit against sporadic losses.
  if (net < success_streak_.size() && config_.recovery_credit_period > 0 &&
      ++success_streak_[net] >= config_.recovery_credit_period) {
    success_streak_[net] = 0;
    if (problem_counter_[net] > 0) --problem_counter_[net];
    if (problem_counter_[net] == 0) evidence_start_[net].reset();
  }
}

void ActiveReplicator::handle_token(const net::ReceivedPacket& packet,
                                    const TokenInstance& instance) {
  const NetworkId net = packet.network;
  if (last_token_ && instance.ring != last_token_->ring) {
    if (instance.ring.ring_seq <= last_token_->ring.ring_seq) {
      // A straggler from a ring this node moved past. It must not restart
      // the collection, must not reach the SRP, and earns no recovery
      // credit: only copies of the current ring's traffic demonstrate a
      // network is keeping up.
      ++stats_.duplicate_tokens_absorbed;
      return;
    }
    // First token of a freshly formed ring: rotation/seq restart at 0, and
    // waiting for every network's copy would stall the just-installed ring
    // behind token_timeout — and charge healthy networks a problem count
    // for a delay the membership change caused. Deliver at once; the SRP
    // ignores duplicate instances.
    credit_success(net);
    last_token_ = instance;
    last_token_bytes_ = packet.data;
    last_token_net_ = net;
    std::fill(recv_last_token_.begin(), recv_last_token_.end(), false);
    if (net < recv_last_token_.size()) recv_last_token_[net] = true;
    delivered_current_ = true;
    token_timer_.cancel();
    deliver_token_up(last_token_bytes_, net);
    return;
  }
  if (!last_token_ || instance.newer_than(*last_token_)) {
    credit_success(net);
    // First copy of a new token.
    last_token_ = instance;
    last_token_bytes_ = packet.data;
    last_token_net_ = net;
    std::fill(recv_last_token_.begin(), recv_last_token_.end(), false);
    if (net < recv_last_token_.size()) recv_last_token_[net] = true;
    delivered_current_ = false;
    // Start the token timer. A new token can only arrive after the current
    // one completed a rotation, so the running timer (if any) belongs to a
    // completed wait; restarting is safe.
    token_timer_.cancel();
    token_timer_ = timers_.schedule(config_.token_timeout, [this] { on_token_timer(); });
  } else if (instance.same_as(*last_token_)) {
    credit_success(net);
    ++stats_.duplicate_tokens_absorbed;
    if (config_.trace) {
      config_.trace->emit(timers_.now(), TraceKind::kDuplicateTokenAbsorbed, net);
    }
    if (net < recv_last_token_.size()) recv_last_token_[net] = true;
  } else {
    // A stale retransmission of an older token; nothing to track — and no
    // recovery credit: only copies of the CURRENT token demonstrate the
    // network is keeping up (a dead network replaying old tokens must not
    // decay its problem counter).
    ++stats_.duplicate_tokens_absorbed;
    return;
  }
  maybe_deliver(net);
}

void ActiveReplicator::maybe_deliver(NetworkId from) {
  for (std::size_t i = 0; i < recv_last_token_.size(); ++i) {
    if (!recv_last_token_[i] && !faulty_[i]) return;  // still waiting
  }
  token_timer_.cancel();
  if (!delivered_current_) {
    delivered_current_ = true;
    deliver_token_up(last_token_bytes_, from);
  }
}

void ActiveReplicator::on_token_timer() {
  ++stats_.token_timer_expiries;
  if (config_.trace) {
    std::uint64_t missing = 0;
    for (std::size_t i = 0; i < recv_last_token_.size(); ++i) {
      if (!recv_last_token_[i] && !faulty_[i]) missing |= std::uint64_t{1} << i;
    }
    config_.trace->emit(timers_.now(), TraceKind::kTokenTimerExpired, missing,
                        last_token_ ? last_token_->seq : 0);
  }
  for (std::size_t i = 0; i < recv_last_token_.size(); ++i) {
    if (recv_last_token_[i] || faulty_[i]) continue;
    if (problem_counter_[i] == 0) evidence_start_[i] = timers_.now();
    ++problem_counter_[i];
    if (problem_counter_[i] >= config_.problem_threshold) {
      declare_faulty(static_cast<NetworkId>(i), problem_counter_[i]);
    }
  }
  if (!delivered_current_ && last_token_) {
    // Progress despite the missing copies (requirement A4).
    delivered_current_ = true;
    deliver_token_up(last_token_bytes_, last_token_net_);
  }
}

void ActiveReplicator::on_decay() {
  for (std::size_t i = 0; i < problem_counter_.size(); ++i) {
    if (problem_counter_[i] > 0 && --problem_counter_[i] == 0) {
      evidence_start_[i].reset();
    }
  }
  decay_timer_ = timers_.schedule(config_.decay_interval, [this] { on_decay(); });
}

void ActiveReplicator::declare_faulty(NetworkId n, std::uint32_t evidence) {
  if (faulty_[n]) return;
  faulty_[n] = true;
  if (fault_detect_hist_ && evidence_start_[n]) {
    // Detection latency: first uncredited problem evidence -> declaration.
    fault_detect_hist_->record(static_cast<std::uint64_t>(
        (timers_.now() - *evidence_start_[n]).count()));
  }
  TLOG_WARN << "active replicator: network " << static_cast<int>(n) << " declared faulty"
            << " (problem counter " << evidence << ")";
  if (config_.trace) {
    config_.trace->emit(
        timers_.now(), TraceKind::kNetworkFault, n,
        static_cast<std::uint64_t>(NetworkFaultReport::Reason::kTokenTimeout));
  }
  NetworkFaultReport report;
  report.network = n;
  report.reason = NetworkFaultReport::Reason::kTokenTimeout;
  report.evidence_count = evidence;
  report.when = timers_.now();
  report.detail = "token copies repeatedly missing";
  report_fault(report);
}

void ActiveReplicator::reset_network(NetworkId n) {
  if (n >= faulty_.size()) return;
  const bool was_reported = faulty_[n];
  faulty_[n] = false;
  problem_counter_[n] = 0;
  success_streak_[n] = 0;
  evidence_start_[n].reset();
  last_token_at_[n].reset();
  if (was_reported && config_.trace) {
    // The other edge of the outage: a reported network aged back in.
    config_.trace->emit(
        timers_.now(), TraceKind::kNetworkFault, n,
        static_cast<std::uint64_t>(NetworkFaultReport::Reason::kReinstated));
  }
}

void ActiveReplicator::mark_faulty(NetworkId n) {
  if (n >= faulty_.size() || faulty_[n]) return;
  faulty_[n] = true;
  NetworkFaultReport report;
  report.network = n;
  report.reason = NetworkFaultReport::Reason::kAdministrative;
  report.when = timers_.now();
  report_fault(report);
}

}  // namespace totem::rrp

// NullReplicator: single-network pass-through.
//
// This is the "no replication" baseline of the paper's evaluation: the SRP
// runs directly over one network. Having it implement the same Replicator
// interface means the benchmark sweeps compare identical protocol code and
// differ only in the replication layer.
#pragma once

#include <cassert>
#include <utility>

#include "rrp/replicator.h"
#include "srp/wire.h"

namespace totem::rrp {

class NullReplicator final : public Replicator {
 public:
  explicit NullReplicator(net::Transport& transport) : transport_(transport) {
    transport_.set_rx_handler(
        [this](net::ReceivedPacket&& p) { on_packet(std::move(p)); });
  }

  using Replicator::broadcast_message;
  using Replicator::send_token;

  void broadcast_message(PacketBuffer packet) override {
    ++stats_.messages_sent;
    ++stats_.packets_fanned_out;
    transport_.broadcast(std::move(packet));
  }

  void send_token(NodeId next, PacketBuffer packet) override {
    ++stats_.tokens_sent;
    ++stats_.packets_fanned_out;
    transport_.unicast(next, std::move(packet));
  }

  void on_packet(net::ReceivedPacket&& packet) override {
    auto info = srp::wire::peek(packet.data);
    if (!info) return;  // malformed; the SRP counts these when relevant
    if (info.value().type == srp::wire::PacketType::kToken) {
      deliver_token_up(packet.data, packet.network);
    } else {
      deliver_message_up(packet.data, packet.network);
    }
  }

  [[nodiscard]] std::size_t network_count() const override { return 1; }
  [[nodiscard]] bool network_faulty(NetworkId) const override { return false; }
  void reset_network(NetworkId) override {}
  void mark_faulty(NetworkId) override {
    assert(false && "cannot mark the only network faulty");
  }

 private:
  net::Transport& transport_;
};

}  // namespace totem::rrp

// Configuration for the RRP replication engines.
#pragma once

#include <cstdint>

#include "common/types.h"

namespace totem {
class TraceRing;
class MetricsRegistry;
}

namespace totem::rrp {

struct ActiveConfig {
  /// How long to wait for the remaining copies of a token after the first
  /// copy arrives before passing it to the SRP anyway (requirement A4).
  Duration token_timeout{2'000};  // 2 ms

  /// A network whose problem counter reaches this value is declared faulty
  /// (requirement A5).
  std::uint32_t problem_threshold = 10;

  /// Problem counters are decremented at this period so sporadic token loss
  /// never accumulates into a false fault report (requirement A6).
  Duration decay_interval{200'000};  // 200 ms

  /// Additionally, every this-many successful token copies on a network
  /// decrement its problem counter by one. On a fast-rotating (idle) ring
  /// the token rate vastly exceeds any wall-clock decay, so the credit must
  /// scale with traffic: sporadic loss (~1%) then never accumulates, while
  /// a dead or heavily degraded network earns no credit and still trips the
  /// threshold quickly (requirements A5 + A6; see DESIGN.md §6).
  std::uint32_t recovery_credit_period = 8;

  /// Optional flight recorder (see common/trace.h). Not owned.
  TraceRing* trace = nullptr;

  /// Optional metrics registry (see common/metrics.h): per-network token
  /// gap histograms and fault-detection latency. Not owned.
  MetricsRegistry* metrics = nullptr;
};

struct PassiveConfig {
  /// How long a token is buffered while messages it implies are still
  /// outstanding (requirement P3). The paper used 10 ms (§6).
  Duration token_buffer_timeout{10'000};

  /// A network whose reception count falls this far behind the
  /// best network is declared faulty (Fig. 5 threshold; requirement P4).
  std::uint32_t imbalance_threshold = 50;

  /// Lagging reception counts are bumped at this period so sporadic loss
  /// never accumulates into a false fault report (requirement P5).
  Duration aging_interval{100'000};  // 100 ms

  /// Optional flight recorder (see common/trace.h). Not owned.
  TraceRing* trace = nullptr;

  /// Optional metrics registry (see common/metrics.h): per-network token
  /// gap histograms and fault-detection latency. Not owned.
  MetricsRegistry* metrics = nullptr;
};

struct ActivePassiveConfig {
  /// Copies of each message/token to send (1 < K < N, paper §7).
  std::uint32_t k = 2;
  /// Wait-for-K-copies timeout on the receive side (stage 2).
  Duration token_timeout{2'000};
  PassiveConfig monitor;  // stage 1 uses the passive monitors
};

}  // namespace totem::rrp

#include "rrp/active_passive_replicator.h"

#include <cassert>

#include "common/log.h"
#include "common/trace.h"
#include "srp/wire.h"

namespace totem::rrp {

ActivePassiveReplicator::ActivePassiveReplicator(TimerService& timers,
                                                 std::vector<net::Transport*> transports,
                                                 ActivePassiveConfig config)
    : timers_(timers),
      transports_(std::move(transports)),
      config_(config),
      faulty_(transports_.size(), false),
      recv_last_token_(transports_.size(), false),
      token_monitor_(transports_.size(), config.monitor.imbalance_threshold) {
  assert(transports_.size() >= 3 && "active-passive needs at least 3 networks (paper §7)");
  assert(config_.k > 1 && config_.k < transports_.size() && "require 1 < K < N");
  for (net::Transport* t : transports_) {
    t->set_rx_handler([this](net::ReceivedPacket&& p) { on_packet(std::move(p)); });
  }
  last_token_at_.resize(transports_.size());
  evidence_start_.resize(transports_.size());
  if (config_.monitor.metrics) {
    token_gap_hists_.reserve(transports_.size());
    for (std::size_t i = 0; i < transports_.size(); ++i) {
      token_gap_hists_.push_back(config_.monitor.metrics->histogram(
          "rrp.token_gap_us.net" + std::to_string(i)));
    }
    fault_detect_hist_ = config_.monitor.metrics->histogram("rrp.fault_detect_us");
  }
  aging_timer_ = timers_.schedule(config_.monitor.aging_interval, [this] { on_aging(); });
}

std::vector<std::size_t> ActivePassiveReplicator::next_window(std::size_t& cursor) const {
  std::vector<std::size_t> window;
  std::size_t probe = cursor;
  for (std::size_t attempts = 0;
       attempts < transports_.size() && window.size() < config_.k; ++attempts) {
    probe = (probe + 1) % transports_.size();
    if (!faulty_[probe]) window.push_back(probe);
  }
  if (!window.empty()) cursor = window.back();
  return window;
}

void ActivePassiveReplicator::broadcast_message(PacketBuffer packet) {
  ++stats_.messages_sent;
  auto window = next_window(message_cursor_);
  if (window.empty()) window.push_back(0);  // total failure: still try
  for (std::size_t n : window) {
    ++stats_.packets_fanned_out;
    transports_[n]->broadcast(packet);
  }
}

void ActivePassiveReplicator::send_token(NodeId next, PacketBuffer packet) {
  ++stats_.tokens_sent;
  auto window = next_window(token_cursor_);
  if (window.empty()) window.push_back(0);
  for (std::size_t n : window) {
    ++stats_.packets_fanned_out;
    transports_[n]->unicast(next, packet);
  }
}

std::uint32_t ActivePassiveReplicator::effective_k() const {
  std::uint32_t healthy = 0;
  for (bool f : faulty_) {
    if (!f) ++healthy;
  }
  return std::min(config_.k, std::max<std::uint32_t>(healthy, 1));
}

void ActivePassiveReplicator::on_packet(net::ReceivedPacket&& packet) {
  auto info = srp::wire::peek(packet.data);
  if (!info) return;

  if (info.value().type == srp::wire::PacketType::kToken) {
    if (!token_gap_hists_.empty() && packet.network < last_token_at_.size()) {
      // Per-network token inter-arrival (K-of-N round robin: a healthy
      // network's gap is ~(N/K) x the rotation time).
      const TimePoint now = timers_.now();
      if (last_token_at_[packet.network]) {
        token_gap_hists_[packet.network]->record(static_cast<std::uint64_t>(
            (now - *last_token_at_[packet.network]).count()));
      }
      last_token_at_[packet.network] = now;
    }
    // Stage 1: monitor. Stage 2: collect K copies.
    record_monitored(token_monitor_, packet.network);
    handle_token(packet, TokenInstance{info.value().ring, info.value().token_rotation,
                                       info.value().token_seq});
    return;
  }

  auto& monitor = message_monitors_
                      .try_emplace(info.value().sender, transports_.size(),
                                   config_.monitor.imbalance_threshold)
                      .first->second;
  record_monitored(monitor, packet.network);
  deliver_message_up(packet.data, packet.network);
}

void ActivePassiveReplicator::handle_token(const net::ReceivedPacket& packet,
                                           const TokenInstance& instance) {
  const NetworkId net = packet.network;
  if (last_token_ && instance.ring != last_token_->ring) {
    if (instance.ring.ring_seq <= last_token_->ring.ring_seq) {
      // A straggler from a ring this node moved past (e.g. a retention
      // resend of the dead ring's token). It must neither restart the
      // collection nor go up to the SRP.
      ++stats_.duplicate_tokens_absorbed;
      return;
    }
    // First token of a freshly formed ring: rotation/seq restart at 0, and
    // waiting for K copies would stall the just-installed ring behind
    // token_timeout. Deliver at once — the SRP ignores duplicate instances,
    // so the remaining copies are harmless.
    last_token_ = instance;
    last_token_bytes_ = packet.data;
    last_token_net_ = net;
    std::fill(recv_last_token_.begin(), recv_last_token_.end(), false);
    if (net < recv_last_token_.size()) recv_last_token_[net] = true;
    delivered_current_ = true;
    token_timer_.cancel();
    deliver_token_up(last_token_bytes_, net);
    return;
  }
  if (!last_token_ || instance.newer_than(*last_token_)) {
    last_token_ = instance;
    last_token_bytes_ = packet.data;
    last_token_net_ = net;
    std::fill(recv_last_token_.begin(), recv_last_token_.end(), false);
    if (net < recv_last_token_.size()) recv_last_token_[net] = true;
    delivered_current_ = false;
    token_timer_.cancel();
    token_timer_ = timers_.schedule(config_.token_timeout, [this] { on_token_timer(); });
  } else if (instance.same_as(*last_token_)) {
    ++stats_.duplicate_tokens_absorbed;
    if (net < recv_last_token_.size()) recv_last_token_[net] = true;
  } else {
    ++stats_.duplicate_tokens_absorbed;
    return;
  }
  maybe_deliver(net);
}

void ActivePassiveReplicator::maybe_deliver(NetworkId from) {
  std::uint32_t copies = 0;
  for (bool r : recv_last_token_) {
    if (r) ++copies;
  }
  if (copies < effective_k()) return;
  token_timer_.cancel();
  if (!delivered_current_) {
    delivered_current_ = true;
    deliver_token_up(last_token_bytes_, from);
  }
}

void ActivePassiveReplicator::on_token_timer() {
  ++stats_.token_timer_expiries;
  if (config_.monitor.trace) {
    std::uint64_t missing = 0;
    for (std::size_t i = 0; i < recv_last_token_.size(); ++i) {
      if (!recv_last_token_[i] && !faulty_[i]) missing |= std::uint64_t{1} << i;
    }
    config_.monitor.trace->emit(timers_.now(), TraceKind::kTokenTimerExpired,
                                missing, last_token_ ? last_token_->seq : 0);
  }
  if (!delivered_current_ && last_token_) {
    delivered_current_ = true;
    deliver_token_up(last_token_bytes_, last_token_net_);
  }
}

void ActivePassiveReplicator::record_monitored(ReceptionMonitor& monitor, NetworkId net) {
  auto newly_faulty = monitor.record(net);
  note_evidence(monitor);
  for (NetworkId lagging : newly_faulty) {
    declare_faulty(lagging, monitor.lag(lagging));
  }
}

void ActivePassiveReplicator::note_evidence(const ReceptionMonitor& monitor) {
  if (!fault_detect_hist_) return;
  for (std::size_t i = 0; i < evidence_start_.size(); ++i) {
    if (!evidence_start_[i] && monitor.lag(static_cast<NetworkId>(i)) > 0) {
      evidence_start_[i] = timers_.now();
    }
  }
}

void ActivePassiveReplicator::on_aging() {
  token_monitor_.age();
  for (auto& [_, m] : message_monitors_) m.age();
  if (fault_detect_hist_) {
    // Evidence that aged away entirely was sporadic loss, not a fault:
    // restart the detection clock.
    for (std::size_t i = 0; i < evidence_start_.size(); ++i) {
      if (!evidence_start_[i] || faulty_[i]) continue;
      const auto n = static_cast<NetworkId>(i);
      std::uint64_t max_lag = token_monitor_.lag(n);
      for (const auto& [_, m] : message_monitors_) {
        max_lag = std::max(max_lag, m.lag(n));
      }
      if (max_lag == 0) evidence_start_[i].reset();
    }
  }
  aging_timer_ =
      timers_.schedule(config_.monitor.aging_interval, [this] { on_aging(); });
}

void ActivePassiveReplicator::declare_faulty(NetworkId n, std::uint64_t lag) {
  if (n >= faulty_.size() || faulty_[n]) return;
  faulty_[n] = true;
  if (fault_detect_hist_ && evidence_start_[n]) {
    fault_detect_hist_->record(static_cast<std::uint64_t>(
        (timers_.now() - *evidence_start_[n]).count()));
  }
  TLOG_WARN << "active-passive replicator: network " << static_cast<int>(n)
            << " declared faulty (reception lag " << lag << ")";
  if (config_.monitor.trace) {
    config_.monitor.trace->emit(
        timers_.now(), TraceKind::kNetworkFault, n,
        static_cast<std::uint64_t>(NetworkFaultReport::Reason::kReceptionImbalance));
  }
  NetworkFaultReport report;
  report.network = n;
  report.reason = NetworkFaultReport::Reason::kReceptionImbalance;
  report.evidence_count = static_cast<std::uint32_t>(lag);
  report.when = timers_.now();
  report.detail = "reception count fell behind the healthiest network";
  report_fault(report);
}

void ActivePassiveReplicator::reset_network(NetworkId n) {
  if (n >= faulty_.size()) return;
  const bool was_reported = faulty_[n];
  faulty_[n] = false;
  token_monitor_.reset_network(n);
  for (auto& [_, m] : message_monitors_) m.reset_network(n);
  if (n < evidence_start_.size()) evidence_start_[n].reset();
  if (n < last_token_at_.size()) last_token_at_[n].reset();
  if (was_reported && config_.monitor.trace) {
    // The other edge of the outage: a reported network aged back in.
    config_.monitor.trace->emit(
        timers_.now(), TraceKind::kNetworkFault, n,
        static_cast<std::uint64_t>(NetworkFaultReport::Reason::kReinstated));
  }
}

void ActivePassiveReplicator::mark_faulty(NetworkId n) {
  if (n >= faulty_.size() || faulty_[n]) return;
  faulty_[n] = true;
  NetworkFaultReport report;
  report.network = n;
  report.reason = NetworkFaultReport::Reason::kAdministrative;
  report.when = timers_.now();
  report_fault(report);
}

}  // namespace totem::rrp

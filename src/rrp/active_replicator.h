// ActiveReplicator — active network replication (paper §5, Fig. 2).
//
// Every message and token is sent over ALL non-faulty networks. Messages
// are passed up immediately (the SRP's seq-number filter removes duplicates
// — requirement A1). A token is passed up only once a copy has arrived on
// every non-faulty network (requirements A2/A3), or when the token timer
// expires (requirement A4). A per-network problem counter, incremented for
// networks that failed to deliver the token before the timer fired and
// decremented periodically, detects permanent network failure without being
// fooled by sporadic loss (requirements A5/A6).
#pragma once

#include <optional>
#include <vector>

#include "common/metrics.h"
#include "common/timer_service.h"
#include "rrp/config.h"
#include "rrp/replicator.h"

namespace totem::rrp {

class ActiveReplicator final : public Replicator {
 public:
  ActiveReplicator(TimerService& timers, std::vector<net::Transport*> transports,
                   ActiveConfig config = {});

  using Replicator::broadcast_message;
  using Replicator::send_token;

  void broadcast_message(PacketBuffer packet) override;
  void send_token(NodeId next, PacketBuffer packet) override;
  void on_packet(net::ReceivedPacket&& packet) override;

  [[nodiscard]] std::size_t network_count() const override { return transports_.size(); }
  [[nodiscard]] bool network_faulty(NetworkId n) const override {
    return n < faulty_.size() && faulty_[n];
  }
  void reset_network(NetworkId n) override;
  void mark_faulty(NetworkId n) override;
  void set_token_timeout(Duration timeout) override { config_.token_timeout = timeout; }

  [[nodiscard]] Duration token_timeout() const { return config_.token_timeout; }
  [[nodiscard]] std::uint32_t problem_counter(NetworkId n) const {
    return n < problem_counter_.size() ? problem_counter_[n] : 0;
  }

 private:
  struct TokenInstance {
    RingId ring;
    std::uint64_t rotation = 0;
    SeqNum seq = 0;

    /// Ordering WITHIN one ring; which ring is current is arbitrated in
    /// handle_token by ring_seq (a freshly installed ring restarts
    /// rotation/seq at 0, so the pair comparison is meaningless across
    /// rings).
    [[nodiscard]] bool newer_than(const TokenInstance& o) const {
      return std::pair{rotation, seq} > std::pair{o.rotation, o.seq};
    }
    [[nodiscard]] bool same_as(const TokenInstance& o) const {
      return ring == o.ring && rotation == o.rotation && seq == o.seq;
    }
  };

  void handle_token(const net::ReceivedPacket& packet, const TokenInstance& instance);
  void credit_success(NetworkId net);
  void maybe_deliver(NetworkId from);
  void on_token_timer();
  void on_decay();
  void declare_faulty(NetworkId n, std::uint32_t evidence);

  TimerService& timers_;
  std::vector<net::Transport*> transports_;
  ActiveConfig config_;

  std::vector<bool> faulty_;
  std::vector<bool> recv_last_token_;
  std::vector<std::uint32_t> problem_counter_;
  std::vector<std::uint32_t> success_streak_;
  std::optional<TokenInstance> last_token_;
  PacketBuffer last_token_bytes_;  // refcount on the received buffer, not a copy
  NetworkId last_token_net_ = 0;
  bool delivered_current_ = false;
  TimerHandle token_timer_;
  TimerHandle decay_timer_;

  // ---- metrics (null/empty unless config_.metrics; common/metrics.h) ----
  std::vector<LatencyHistogram*> token_gap_hists_;  // rrp.token_gap_us.netI
  LatencyHistogram* fault_detect_hist_ = nullptr;   // rrp.fault_detect_us
  std::vector<std::optional<TimePoint>> last_token_at_;
  /// First problem evidence per network (counter left 0); cleared when the
  /// counter drains back to 0. declare_faulty's detection latency is
  /// measured from here.
  std::vector<std::optional<TimePoint>> evidence_start_;
};

}  // namespace totem::rrp

#include "rrp/passive_replicator.h"

#include <cassert>

#include "common/log.h"
#include "common/trace.h"
#include "srp/wire.h"

namespace totem::rrp {

PassiveReplicator::PassiveReplicator(TimerService& timers,
                                     std::vector<net::Transport*> transports,
                                     PassiveConfig config)
    : timers_(timers),
      transports_(std::move(transports)),
      config_(config),
      faulty_(transports_.size(), false),
      token_monitor_(transports_.size(), config.imbalance_threshold) {
  assert(!transports_.empty());
  for (net::Transport* t : transports_) {
    t->set_rx_handler([this](net::ReceivedPacket&& p) { on_packet(std::move(p)); });
  }
  last_token_at_.resize(transports_.size());
  evidence_start_.resize(transports_.size());
  if (config_.metrics) {
    token_gap_hists_.reserve(transports_.size());
    for (std::size_t i = 0; i < transports_.size(); ++i) {
      token_gap_hists_.push_back(
          config_.metrics->histogram("rrp.token_gap_us.net" + std::to_string(i)));
    }
    fault_detect_hist_ = config_.metrics->histogram("rrp.fault_detect_us");
  }
  aging_timer_ = timers_.schedule(config_.aging_interval, [this] { on_aging(); });
}

std::optional<std::size_t> PassiveReplicator::next_network(std::size_t& cursor) const {
  for (std::size_t attempts = 0; attempts < transports_.size(); ++attempts) {
    cursor = (cursor + 1) % transports_.size();
    if (!faulty_[cursor]) return cursor;
  }
  return std::nullopt;  // every network is marked faulty
}

void PassiveReplicator::broadcast_message(PacketBuffer packet) {
  ++stats_.messages_sent;
  auto net = next_network(message_cursor_);
  if (!net) {
    // All networks faulty: send on network 0 anyway — the system has failed,
    // but silence would only make diagnosis harder.
    net = 0;
  }
  ++stats_.packets_fanned_out;
  transports_[*net]->broadcast(std::move(packet));
}

void PassiveReplicator::send_token(NodeId next, PacketBuffer packet) {
  ++stats_.tokens_sent;
  auto net = next_network(token_cursor_);
  if (!net) net = 0;
  ++stats_.packets_fanned_out;
  transports_[*net]->unicast(next, std::move(packet));
}

void PassiveReplicator::on_packet(net::ReceivedPacket&& packet) {
  auto info = srp::wire::peek(packet.data);
  if (!info) return;

  if (info.value().type == srp::wire::PacketType::kToken) {
    if (!token_gap_hists_.empty() && packet.network < last_token_at_.size()) {
      // Per-network token inter-arrival. Round-robin token assignment means
      // a healthy network's gap is ~N x the rotation time; a network that
      // stops carrying tokens simply stops producing samples.
      const TimePoint now = timers_.now();
      if (last_token_at_[packet.network]) {
        token_gap_hists_[packet.network]->record(static_cast<std::uint64_t>(
            (now - *last_token_at_[packet.network]).count()));
      }
      last_token_at_[packet.network] = now;
    }
    record_monitored(token_monitor_, packet.network);
    const SeqNum token_seq = info.value().token_seq;
    if (!srp_missing_messages(token_seq)) {
      // No outstanding messages: the token may pass (Fig. 4).
      if (token_buffered_) {
        // The newly arrived token supersedes the buffered one.
        token_buffered_ = false;
        buffered_token_.reset();  // return the pinned pooled bytes promptly
        buffer_timer_.cancel();
        buffer_timer_running_ = false;
      }
      deliver_token_up(packet.data, packet.network);
      return;
    }
    // Messages are outstanding — most likely still in flight on another
    // network (Fig. 3). Buffer the token (a refcount on the pooled bytes);
    // a short timer guarantees progress if they were really lost (P3).
    buffered_token_ = std::move(packet.data);
    buffered_token_net_ = packet.network;
    buffered_token_seq_ = token_seq;
    token_buffered_ = true;
    if (!buffer_timer_running_) {  // Fig. 4: the timer is never restarted
      buffer_timer_running_ = true;
      buffer_timer_ =
          timers_.schedule(config_.token_buffer_timeout, [this] { on_buffer_timer(); });
    }
    return;
  }

  // Message path: deliver first, then check whether this message was the
  // one the buffered token was waiting for (Fig. 4, recvMsg).
  auto& monitor =
      message_monitors_
          .try_emplace(info.value().sender, transports_.size(), config_.imbalance_threshold)
          .first->second;
  record_monitored(monitor, packet.network);
  deliver_message_up(packet.data, packet.network);
  if (token_buffered_ && !srp_missing_messages(buffered_token_seq_)) {
    flush_buffered_token();
  }
}

void PassiveReplicator::flush_buffered_token() {
  buffer_timer_.cancel();
  buffer_timer_running_ = false;
  token_buffered_ = false;
  deliver_token_up(buffered_token_, buffered_token_net_);
}

void PassiveReplicator::on_buffer_timer() {
  buffer_timer_running_ = false;
  ++stats_.token_timer_expiries;
  if (config_.trace) {
    config_.trace->emit(timers_.now(), TraceKind::kTokenTimerExpired,
                        token_buffered_ ? buffered_token_net_ : 0,
                        token_buffered_ ? buffered_token_seq_ : 0);
  }
  if (token_buffered_) {
    token_buffered_ = false;
    deliver_token_up(buffered_token_, buffered_token_net_);
  }
}

void PassiveReplicator::record_monitored(ReceptionMonitor& monitor, NetworkId net) {
  auto newly_faulty = monitor.record(net);
  note_evidence(monitor);
  for (NetworkId lagging : newly_faulty) {
    declare_faulty(lagging, monitor.lag(lagging));
  }
}

void PassiveReplicator::note_evidence(const ReceptionMonitor& monitor) {
  if (!fault_detect_hist_) return;
  for (std::size_t i = 0; i < evidence_start_.size(); ++i) {
    if (!evidence_start_[i] && monitor.lag(static_cast<NetworkId>(i)) > 0) {
      evidence_start_[i] = timers_.now();
    }
  }
}

void PassiveReplicator::on_aging() {
  token_monitor_.age();
  for (auto& [_, m] : message_monitors_) m.age();
  if (fault_detect_hist_) {
    // Evidence that aged away entirely was sporadic loss, not a fault:
    // restart the detection clock.
    for (std::size_t i = 0; i < evidence_start_.size(); ++i) {
      if (!evidence_start_[i] || faulty_[i]) continue;
      const auto n = static_cast<NetworkId>(i);
      std::uint64_t max_lag = token_monitor_.lag(n);
      for (const auto& [_, m] : message_monitors_) {
        max_lag = std::max(max_lag, m.lag(n));
      }
      if (max_lag == 0) evidence_start_[i].reset();
    }
  }
  aging_timer_ = timers_.schedule(config_.aging_interval, [this] { on_aging(); });
}

void PassiveReplicator::declare_faulty(NetworkId n, std::uint64_t lag) {
  if (n >= faulty_.size() || faulty_[n]) return;
  faulty_[n] = true;
  if (fault_detect_hist_ && evidence_start_[n]) {
    fault_detect_hist_->record(static_cast<std::uint64_t>(
        (timers_.now() - *evidence_start_[n]).count()));
  }
  TLOG_WARN << "passive replicator: network " << static_cast<int>(n)
            << " declared faulty (reception lag " << lag << ")";
  if (config_.trace) {
    config_.trace->emit(
        timers_.now(), TraceKind::kNetworkFault, n,
        static_cast<std::uint64_t>(NetworkFaultReport::Reason::kReceptionImbalance));
  }
  NetworkFaultReport report;
  report.network = n;
  report.reason = NetworkFaultReport::Reason::kReceptionImbalance;
  report.evidence_count = static_cast<std::uint32_t>(lag);
  report.when = timers_.now();
  report.detail = "reception count fell behind the healthiest network";
  report_fault(report);
}

void PassiveReplicator::reset_network(NetworkId n) {
  if (n >= faulty_.size()) return;
  const bool was_reported = faulty_[n];
  faulty_[n] = false;
  token_monitor_.reset_network(n);
  for (auto& [_, m] : message_monitors_) m.reset_network(n);
  if (n < evidence_start_.size()) evidence_start_[n].reset();
  if (n < last_token_at_.size()) last_token_at_[n].reset();
  if (was_reported && config_.trace) {
    // The other edge of the outage: a reported network aged back in.
    config_.trace->emit(
        timers_.now(), TraceKind::kNetworkFault, n,
        static_cast<std::uint64_t>(NetworkFaultReport::Reason::kReinstated));
  }
}

void PassiveReplicator::mark_faulty(NetworkId n) {
  if (n >= faulty_.size() || faulty_[n]) return;
  faulty_[n] = true;
  NetworkFaultReport report;
  report.network = n;
  report.reason = NetworkFaultReport::Reason::kAdministrative;
  report.when = timers_.now();
  report_fault(report);
}

}  // namespace totem::rrp

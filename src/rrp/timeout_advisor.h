// TimeoutAdvisor: adaptive token-timeout tuning from observed rotation time.
//
// The RRP token timeouts (ActiveConfig::token_timeout, the active-passive
// stage-2 timeout, PassiveConfig::token_buffer_timeout) are fixed constants
// in the paper — tuned for a clean 100 Mbit/s LAN where a rotation takes a
// few hundred microseconds. On a degraded or WAN-profiled network
// (DESIGN.md §14) the real rotation time can be 100x that, so a fixed 2 ms
// timeout fires on every rotation, charges healthy networks problem counts,
// and produces false fault reports; conversely, on a fast ring a padded
// timeout delays fault detection.
//
// The advisor closes the loop using the metrics the stack already records:
// it watches the SRP's `srp.token_rotation_us` histogram and advises
//
//     clamp(headroom * observed_rotation_p99, min_timeout, max_timeout)
//
// falling back to the configured static value until enough rotations have
// been observed. api::Node (NodeConfig::adaptive_timeout) polls it
// periodically and feeds the advice into Replicator::set_token_timeout.
#pragma once

#include <cstdint>
#include <string>

#include "common/metrics.h"
#include "common/types.h"

namespace totem::rrp {

class TimeoutAdvisor {
 public:
  struct Config {
    /// Histogram the advice is derived from (recorded by the SRP).
    std::string rotation_histogram = "srp.token_rotation_us";
    /// Advised timeout = headroom * rotation p99 (then clamped). >1 so a
    /// token that is merely at the observed tail is not declared late.
    double headroom = 1.5;
    Duration min_timeout{500};
    Duration max_timeout{100'000};
    /// Rotations to observe before overriding the static fallback.
    std::uint64_t min_samples = 32;
  };

  /// `metrics` must outlive the advisor (it is the node's registry).
  TimeoutAdvisor(MetricsRegistry& metrics, Config config);
  explicit TimeoutAdvisor(MetricsRegistry& metrics)
      : TimeoutAdvisor(metrics, Config{}) {}

  /// The timeout to use right now: the adaptive value once min_samples
  /// rotations have been seen, `fallback` (the static config value) before.
  [[nodiscard]] Duration advise(Duration fallback) const;

  /// Rotations observed so far.
  [[nodiscard]] std::uint64_t samples() const { return hist_->count(); }
  /// Current rotation p99 estimate in microseconds (0 until any samples).
  [[nodiscard]] double rotation_p99_us() const;

  [[nodiscard]] const Config& config() const { return config_; }

 private:
  Config config_;
  const LatencyHistogram* hist_;  // stable pointer into the registry
};

}  // namespace totem::rrp

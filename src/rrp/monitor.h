// Reception-count network monitor (paper Fig. 5).
//
// Passive (and active-passive) replication spreads traffic evenly over the
// networks, so every network should receive the same number of packets from
// any given source. A monitor counts receptions per network; when a
// network's count falls more than `threshold` behind the best network, the
// lagging network is declared faulty (requirement P4).
//
// To keep sporadic loss from accumulating into a false report over a long
// run (requirement P5), lagging counts are periodically "aged" upward by one
// — the paper's "slowly increasing recvCount for networks that lag behind".
#pragma once

#include <cstdint>
#include <vector>

#include "common/types.h"

namespace totem::rrp {

class ReceptionMonitor {
 public:
  ReceptionMonitor(std::size_t network_count, std::uint32_t threshold)
      : counts_(network_count, 0), reported_(network_count, false), threshold_(threshold) {}

  /// Record a reception on network `x`. Returns the networks newly found to
  /// be lagging beyond the threshold (each reported once until reset).
  std::vector<NetworkId> record(NetworkId x) {
    if (x < counts_.size()) ++counts_[x];
    return check();
  }

  /// Anti-false-positive aging: every lagging network creeps one packet
  /// closer to the leader. Networks already reported faulty are NOT aged —
  /// forgiveness is for sporadic loss on live networks; a dead network's
  /// count creeping back toward the leader would make lag() under-report
  /// the evidence in later fault reports. reset_network() is the one road
  /// back for a repaired network.
  void age() {
    const std::uint64_t max = max_count();
    for (std::size_t i = 0; i < counts_.size(); ++i) {
      if (reported_[i]) continue;
      if (counts_[i] < max) ++counts_[i];
    }
  }

  /// A repaired network restarts level with the leader.
  void reset_network(NetworkId x) {
    if (x >= counts_.size()) return;
    counts_[x] = max_count();
    reported_[x] = false;
  }

  [[nodiscard]] const std::vector<std::uint64_t>& counts() const { return counts_; }
  [[nodiscard]] std::uint64_t lag(NetworkId x) const {
    return x < counts_.size() ? max_count() - counts_[x] : 0;
  }

 private:
  [[nodiscard]] std::uint64_t max_count() const {
    std::uint64_t max = 0;
    for (auto c : counts_) max = std::max(max, c);
    return max;
  }

  std::vector<NetworkId> check() {
    std::vector<NetworkId> newly_faulty;
    const std::uint64_t max = max_count();
    for (std::size_t i = 0; i < counts_.size(); ++i) {
      if (reported_[i]) continue;
      if (max - counts_[i] > threshold_) {
        reported_[i] = true;
        newly_faulty.push_back(static_cast<NetworkId>(i));
      }
    }
    return newly_faulty;
  }

  std::vector<std::uint64_t> counts_;
  std::vector<bool> reported_;
  std::uint32_t threshold_;
};

}  // namespace totem::rrp

// ActivePassiveReplicator — active-passive replication (paper §7).
//
// Requires N >= 3 networks. Each message and token is sent over K networks
// (1 < K < N) chosen round-robin: if the last send ended at network m, the
// next uses networks (m+1) mod N ... (m+K) mod N. The receive side is a
// two-stage pipeline: stage 1 is the passive algorithm's reception-count
// monitoring; stage 2 is the active algorithm's copy collection — a token
// passes once K copies have arrived or a timeout fires. Duplicate messages
// are suppressed higher up in the SRP, exactly as in active replication.
#pragma once

#include <map>
#include <optional>
#include <vector>

#include "common/metrics.h"
#include "common/timer_service.h"
#include "rrp/config.h"
#include "rrp/monitor.h"
#include "rrp/replicator.h"

namespace totem::rrp {

class ActivePassiveReplicator final : public Replicator {
 public:
  ActivePassiveReplicator(TimerService& timers, std::vector<net::Transport*> transports,
                          ActivePassiveConfig config);

  using Replicator::broadcast_message;
  using Replicator::send_token;

  void broadcast_message(PacketBuffer packet) override;
  void send_token(NodeId next, PacketBuffer packet) override;
  void on_packet(net::ReceivedPacket&& packet) override;

  [[nodiscard]] std::size_t network_count() const override { return transports_.size(); }
  [[nodiscard]] bool network_faulty(NetworkId n) const override {
    return n < faulty_.size() && faulty_[n];
  }
  void reset_network(NetworkId n) override;
  void mark_faulty(NetworkId n) override;
  void set_token_timeout(Duration timeout) override { config_.token_timeout = timeout; }

  [[nodiscard]] Duration token_timeout() const { return config_.token_timeout; }
  [[nodiscard]] std::uint32_t k() const { return config_.k; }

 private:
  struct TokenInstance {
    RingId ring;
    std::uint64_t rotation = 0;
    SeqNum seq = 0;

    /// Ordering WITHIN one ring; which ring is current is arbitrated in
    /// handle_token by ring_seq (a freshly installed ring restarts
    /// rotation/seq at 0, so the pair comparison is meaningless across
    /// rings).
    [[nodiscard]] bool newer_than(const TokenInstance& o) const {
      return std::pair{rotation, seq} > std::pair{o.rotation, o.seq};
    }
    [[nodiscard]] bool same_as(const TokenInstance& o) const {
      return ring == o.ring && rotation == o.rotation && seq == o.seq;
    }
  };

  /// The K non-faulty networks following `cursor`; advances the cursor.
  [[nodiscard]] std::vector<std::size_t> next_window(std::size_t& cursor) const;
  void handle_token(const net::ReceivedPacket& packet, const TokenInstance& instance);
  void maybe_deliver(NetworkId from);
  void on_token_timer();
  void record_monitored(ReceptionMonitor& monitor, NetworkId net);
  void on_aging();
  void declare_faulty(NetworkId n, std::uint64_t lag);
  [[nodiscard]] std::uint32_t effective_k() const;

  TimerService& timers_;
  std::vector<net::Transport*> transports_;
  ActivePassiveConfig config_;

  std::vector<bool> faulty_;
  std::size_t message_cursor_ = 0;
  std::size_t token_cursor_ = 0;

  // Stage 2: active-style copy collection.
  std::optional<TokenInstance> last_token_;
  PacketBuffer last_token_bytes_;  // refcount on the received buffer, not a copy
  NetworkId last_token_net_ = 0;
  std::vector<bool> recv_last_token_;
  bool delivered_current_ = false;
  TimerHandle token_timer_;

  // Stage 1: passive-style monitors.
  ReceptionMonitor token_monitor_;
  std::map<NodeId, ReceptionMonitor> message_monitors_;
  TimerHandle aging_timer_;

  // ---- metrics (null/empty unless config_.monitor.metrics) ----
  std::vector<LatencyHistogram*> token_gap_hists_;  // rrp.token_gap_us.netI
  LatencyHistogram* fault_detect_hist_ = nullptr;   // rrp.fault_detect_us
  std::vector<std::optional<TimePoint>> last_token_at_;
  /// First moment any reception monitor showed a nonzero lag for the
  /// network; cleared when every monitor's lag ages back to zero.
  std::vector<std::optional<TimePoint>> evidence_start_;
  void note_evidence(const ReceptionMonitor& monitor);
};

}  // namespace totem::rrp

// Replicator: the Totem RRP abstraction — a layer between the Totem SRP and
// the N redundant networks (paper §§4-7).
//
// The SRP sends and receives through this interface only; the concrete
// replicator decides which network(s) carry each message and token, filters
// and times out redundant token copies, and monitors network health.
// Implementations:
//   * NullReplicator          — single network, pass-through ("no replication")
//   * ActiveReplicator        — paper §5, Fig. 2
//   * PassiveReplicator       — paper §6, Figs. 4-5
//   * ActivePassiveReplicator — paper §7
#pragma once

#include <cstdint>
#include <functional>
#include <string>

#include "common/bytes.h"
#include "common/packet_buffer.h"
#include "common/types.h"
#include "net/transport.h"

namespace totem::rrp {

/// Raised to the application when the local network monitor declares a
/// network faulty (paper §3: "the Totem RRP issues a fault report to the
/// user application process"). The system keeps running on the remaining
/// networks; an administrator is expected to react to this alarm.
struct NetworkFaultReport {
  enum class Reason {
    kTokenTimeout,        // active/active-passive: problem counter exceeded
    kReceptionImbalance,  // passive: recvCount gap exceeded threshold
    kAdministrative,      // marked faulty by the operator / test harness
    /// Not a fault: a previously reported network was aged back in
    /// (reset_network repaired it). Never delivered through the fault
    /// handler — used as the reason code on kNetworkFault trace records so
    /// the flight recorder shows both edges of a network's outage.
    kReinstated,
  };

  NetworkId network = 0;
  Reason reason = Reason::kAdministrative;
  std::uint32_t evidence_count = 0;  // problem counter / count gap at detection
  TimePoint when{};
  std::string detail;
};

[[nodiscard]] constexpr const char* to_string(NetworkFaultReport::Reason r) {
  switch (r) {
    case NetworkFaultReport::Reason::kTokenTimeout: return "token-timeout";
    case NetworkFaultReport::Reason::kReceptionImbalance: return "reception-imbalance";
    case NetworkFaultReport::Reason::kAdministrative: return "administrative";
    case NetworkFaultReport::Reason::kReinstated: return "reinstated";
  }
  return "?";
}

class Replicator {
 public:
  using MessageHandler = std::function<void(BytesView packet, NetworkId from)>;
  using TokenHandler = std::function<void(BytesView packet, NetworkId from)>;
  using FaultHandler = std::function<void(const NetworkFaultReport&)>;
  /// Passive replication holds the token back while the SRP has outstanding
  /// messages (Fig. 4: anyMessagesMissing()). The replicator passes the seq
  /// carried by the just-arrived token so the SRP can detect messages that
  /// were sent before the token but are still in flight on another network
  /// (requirement P1, Fig. 3).
  using MissingQuery = std::function<bool(SeqNum token_seq)>;

  virtual ~Replicator() = default;

  // ---- downcalls: SRP -> networks ----
  // The SRP encodes each packet ONCE into a pooled buffer; the replicator
  // fans the same buffer out to its transports by refcount. How many
  // networks carry it is invisible to the encode cost.
  virtual void broadcast_message(PacketBuffer packet) = 0;
  virtual void send_token(NodeId next, PacketBuffer packet) = 0;

  /// Convenience for non-pooled callers (tests): copy into a pooled buffer
  /// first. Derived classes re-expose with `using Replicator::...;`.
  void broadcast_message(BytesView packet) {
    broadcast_message(BufferPool::scratch().copy_of(packet));
  }
  void send_token(NodeId next, BytesView packet) {
    send_token(next, BufferPool::scratch().copy_of(packet));
  }

  // ---- upcall wiring (set by the SRP / application) ----
  void set_message_handler(MessageHandler h) { message_handler_ = std::move(h); }
  void set_token_handler(TokenHandler h) { token_handler_ = std::move(h); }
  void set_fault_handler(FaultHandler h) { fault_handler_ = std::move(h); }
  void set_missing_query(MissingQuery q) { missing_query_ = std::move(q); }

  // ---- feed: transports -> replicator ----
  virtual void on_packet(net::ReceivedPacket&& packet) = 0;

  // ---- introspection / administration ----
  [[nodiscard]] virtual std::size_t network_count() const = 0;
  [[nodiscard]] virtual bool network_faulty(NetworkId n) const = 0;
  /// Clear the faulty mark and health counters for a repaired network.
  virtual void reset_network(NetworkId n) = 0;
  /// Administratively mark a network faulty (stops sending on it).
  virtual void mark_faulty(NetworkId n) = 0;

  /// Retune the replicator's token timeout at runtime (adaptive tuning,
  /// DESIGN.md §14). Active/active-passive adjust the token-retransmission
  /// timeout; passive adjusts the token buffer timeout. NullReplicator has
  /// no timer and ignores it. Takes effect the next time the timer is armed.
  virtual void set_token_timeout(Duration /*timeout*/) {}

  struct Stats {
    std::uint64_t messages_sent = 0;        // SRP sends (pre-fanout)
    std::uint64_t tokens_sent = 0;          // SRP sends (pre-fanout)
    std::uint64_t packets_fanned_out = 0;   // actual transport sends
    std::uint64_t messages_delivered_up = 0;
    std::uint64_t tokens_delivered_up = 0;
    std::uint64_t duplicate_tokens_absorbed = 0;
    std::uint64_t token_timer_expiries = 0;
    std::uint64_t faults_reported = 0;
  };
  [[nodiscard]] const Stats& stats() const { return stats_; }

 protected:
  void deliver_message_up(BytesView packet, NetworkId from) {
    ++stats_.messages_delivered_up;
    if (message_handler_) message_handler_(packet, from);
  }
  void deliver_token_up(BytesView packet, NetworkId from) {
    ++stats_.tokens_delivered_up;
    if (token_handler_) token_handler_(packet, from);
  }
  void report_fault(const NetworkFaultReport& report) {
    ++stats_.faults_reported;
    if (fault_handler_) fault_handler_(report);
  }
  [[nodiscard]] bool srp_missing_messages(SeqNum token_seq) const {
    return missing_query_ ? missing_query_(token_seq) : false;
  }

  MessageHandler message_handler_;
  TokenHandler token_handler_;
  FaultHandler fault_handler_;
  MissingQuery missing_query_;
  Stats stats_;
};

}  // namespace totem::rrp

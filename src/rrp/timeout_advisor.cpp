#include "rrp/timeout_advisor.h"

#include <algorithm>

namespace totem::rrp {

TimeoutAdvisor::TimeoutAdvisor(MetricsRegistry& metrics, Config config)
    : config_(std::move(config)),
      hist_(metrics.histogram(config_.rotation_histogram)) {}

double TimeoutAdvisor::rotation_p99_us() const {
  if (hist_->count() == 0) return 0.0;
  HistogramSnapshot snap;
  snap.count = hist_->count();
  snap.sum = hist_->sum();
  snap.min = hist_->min();
  snap.max = hist_->max();
  snap.buckets = hist_->buckets();
  return snap.p99();
}

Duration TimeoutAdvisor::advise(Duration fallback) const {
  if (hist_->count() < config_.min_samples) return fallback;
  const auto advised =
      static_cast<Duration::rep>(config_.headroom * rotation_p99_us());
  return std::clamp(Duration{advised}, config_.min_timeout, config_.max_timeout);
}

}  // namespace totem::rrp

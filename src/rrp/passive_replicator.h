// PassiveReplicator — passive network replication (paper §6, Figs. 4-5).
//
// Each message and token is sent over exactly ONE network, assigned
// round-robin (messages and tokens rotate independently). Aggregate
// throughput approaches the sum of the networks' capacities. A token that
// arrives while messages it implies are still in flight on another network
// is buffered until they arrive or a short timer (10 ms in the paper)
// expires — this prevents spurious retransmission requests for merely
// delayed messages (requirement P1) while preserving progress (P3).
//
// Health monitoring uses M+1 reception-count modules (Fig. 5): one per
// sending node for message traffic plus one for token traffic. Since
// round-robin spreads traffic evenly, a network whose count lags the best
// by more than a threshold is faulty (P4); lagging counts age upward so
// sporadic loss never accumulates into a false alarm (P5).
#pragma once

#include <map>
#include <optional>
#include <vector>

#include "common/metrics.h"
#include "common/timer_service.h"
#include "rrp/config.h"
#include "rrp/monitor.h"
#include "rrp/replicator.h"

namespace totem::rrp {

class PassiveReplicator final : public Replicator {
 public:
  PassiveReplicator(TimerService& timers, std::vector<net::Transport*> transports,
                    PassiveConfig config = {});

  using Replicator::broadcast_message;
  using Replicator::send_token;

  void broadcast_message(PacketBuffer packet) override;
  void send_token(NodeId next, PacketBuffer packet) override;
  void on_packet(net::ReceivedPacket&& packet) override;

  [[nodiscard]] std::size_t network_count() const override { return transports_.size(); }
  [[nodiscard]] bool network_faulty(NetworkId n) const override {
    return n < faulty_.size() && faulty_[n];
  }
  void reset_network(NetworkId n) override;
  void mark_faulty(NetworkId n) override;
  void set_token_timeout(Duration timeout) override {
    config_.token_buffer_timeout = timeout;
  }

  [[nodiscard]] Duration token_timeout() const { return config_.token_buffer_timeout; }
  [[nodiscard]] const ReceptionMonitor& token_monitor() const { return token_monitor_; }
  [[nodiscard]] const std::map<NodeId, ReceptionMonitor>& message_monitors() const {
    return message_monitors_;
  }

 private:
  /// Advance `cursor` round-robin to the next non-faulty network.
  [[nodiscard]] std::optional<std::size_t> next_network(std::size_t& cursor) const;
  void record_monitored(ReceptionMonitor& monitor, NetworkId net);
  void flush_buffered_token();
  void on_buffer_timer();
  void on_aging();
  void declare_faulty(NetworkId n, std::uint64_t lag);

  TimerService& timers_;
  std::vector<net::Transport*> transports_;
  PassiveConfig config_;

  std::vector<bool> faulty_;
  std::size_t message_cursor_ = 0;
  std::size_t token_cursor_ = 0;

  // Token buffer (Fig. 4: lastToken + token timer). The buffer pins the
  // received pooled bytes by refcount; the arrival network rides along so a
  // delayed delivery is attributed to the network the token actually came
  // in on, not hardcoded to network 0.
  PacketBuffer buffered_token_;
  NetworkId buffered_token_net_ = 0;
  SeqNum buffered_token_seq_ = 0;
  bool token_buffered_ = false;
  TimerHandle buffer_timer_;
  bool buffer_timer_running_ = false;

  // Fig. 5 monitors: one per sending node plus one for tokens.
  ReceptionMonitor token_monitor_;
  std::map<NodeId, ReceptionMonitor> message_monitors_;
  TimerHandle aging_timer_;

  // ---- metrics (null/empty unless config_.metrics; common/metrics.h) ----
  std::vector<LatencyHistogram*> token_gap_hists_;  // rrp.token_gap_us.netI
  LatencyHistogram* fault_detect_hist_ = nullptr;   // rrp.fault_detect_us
  std::vector<std::optional<TimePoint>> last_token_at_;
  /// First moment any reception monitor showed a nonzero lag for the
  /// network; cleared when every monitor's lag ages back to zero.
  std::vector<std::optional<TimePoint>> evidence_start_;
  void note_evidence(const ReceptionMonitor& monitor);
};

}  // namespace totem::rrp

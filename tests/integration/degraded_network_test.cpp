// Protocol correctness under reordering and duplication (DESIGN.md §14).
//
// The SimNetwork's link profiles can now genuinely reorder (bypassing the
// per-link FIFO clamp) and duplicate packets. These tests pin down the SRP
// behaviours those paths exercise: duplicate-seq drops, duplicate-token
// absorption, and fragment reassembly resync when fragments arrive out of
// order or twice. Single-network (kNone) clusters are used so every
// duplicate/reorder observed is the network's doing — not the replicator's
// multi-network fanout.
#include <gtest/gtest.h>

#include <map>
#include <string>
#include <vector>

#include "harness/sim_cluster.h"
#include "net/link_profile.h"

namespace totem::harness {
namespace {

ClusterConfig single_net_cluster() {
  ClusterConfig cfg;
  cfg.node_count = 4;
  cfg.network_count = 1;
  cfg.style = api::ReplicationStyle::kNone;
  cfg.srp.token_loss_timeout = Duration{100'000};
  cfg.srp.join_interval = Duration{10'000};
  cfg.srp.consensus_timeout = Duration{100'000};
  cfg.srp.commit_timeout = Duration{100'000};
  return cfg;
}

/// Every node's delivery sequence as (origin, payload) pairs.
std::vector<std::pair<NodeId, std::string>> delivery_sequence(
    const SimCluster& cluster, NodeId at) {
  std::vector<std::pair<NodeId, std::string>> out;
  for (const auto& d : cluster.deliveries(at)) {
    out.emplace_back(d.origin, std::string(reinterpret_cast<const char*>(
                                               d.payload.data()),
                                           d.payload.size()));
  }
  return out;
}

TEST(DegradedNetwork, DuplicatedMessagesAreDeliveredExactlyOnce) {
  SimCluster cluster(single_net_cluster());
  net::LinkProfile p;  // clean latency, duplication only
  p.duplicate_rate = 0.5;
  cluster.network(0).set_default_profile(p);
  cluster.start_all();
  cluster.run_for(Duration{300'000});

  for (int i = 0; i < 20; ++i) {
    for (std::size_t n = 0; n < cluster.node_count(); ++n) {
      (void)cluster.node(n).send(
          to_bytes("m" + std::to_string(n) + "-" + std::to_string(i)));
    }
    cluster.run_for(Duration{10'000});
  }
  cluster.run_for(Duration{2'000'000});

  ASSERT_GT(cluster.network(0).stats().duplicated, 0u)
      << "the profile must actually have duplicated packets";
  std::uint64_t dups_dropped = 0;
  for (std::size_t n = 0; n < cluster.node_count(); ++n) {
    dups_dropped += cluster.node(n).ring().stats().duplicates_dropped;

    // Exactly-once: no (origin, payload) appears twice anywhere.
    std::map<std::pair<NodeId, std::string>, int> seen;
    for (const auto& e : delivery_sequence(cluster, static_cast<NodeId>(n))) {
      EXPECT_EQ(++seen[e], 1) << "node " << n << " saw \"" << e.second
                              << "\" from " << e.first << " twice";
    }
    EXPECT_EQ(cluster.delivered_count(n), 80u) << "node " << n;
  }
  EXPECT_GT(dups_dropped, 0u)
      << "single network + duplication: the SRP's seq filter must have fired";
}

TEST(DegradedNetwork, DuplicateTokensAreAbsorbed) {
  SimCluster cluster(single_net_cluster());
  net::LinkProfile p;
  p.duplicate_rate = 0.8;  // tokens are unicasts; most get duplicated
  cluster.network(0).set_default_profile(p);
  cluster.start_all();
  cluster.run_for(Duration{3'000'000});

  std::uint64_t duplicate_tokens = 0;
  for (std::size_t n = 0; n < cluster.node_count(); ++n) {
    duplicate_tokens += cluster.node(n).ring().stats().duplicate_tokens;
    EXPECT_EQ(cluster.node(n).ring().state(),
              srp::SingleRing::State::kOperational)
        << "node " << n;
  }
  EXPECT_GT(duplicate_tokens, 0u) << "duplicated tokens must be seen and dropped";

  // The ring still totally orders traffic through the token storm.
  for (std::size_t n = 0; n < cluster.node_count(); ++n) {
    (void)cluster.node(n).send(to_bytes("probe" + std::to_string(n)));
  }
  cluster.run_for(Duration{1'000'000});
  for (std::size_t n = 0; n < cluster.node_count(); ++n) {
    EXPECT_EQ(cluster.delivered_count(n), 4u) << "node " << n;
  }
}

TEST(DegradedNetwork, FragmentReassemblySurvivesReorderingAndDuplication) {
  SimCluster cluster(single_net_cluster());
  net::LinkProfile p;
  p.reorder_rate = 0.3;
  p.reorder_window = Duration{2'000};
  p.duplicate_rate = 0.3;
  cluster.network(0).set_default_profile(p);
  cluster.start_all();
  cluster.run_for(Duration{300'000});

  // ~3 fragments per message; payload content encodes (origin, index) so
  // reassembly corruption is visible, not just miscounts.
  const auto payload = [](std::size_t origin, int i) {
    std::string s = "frag" + std::to_string(origin) + "-" + std::to_string(i) + ":";
    while (s.size() < 4'000) s += static_cast<char>('a' + (s.size() % 26));
    return s;
  };
  for (int i = 0; i < 10; ++i) {
    for (std::size_t n = 0; n < cluster.node_count(); ++n) {
      (void)cluster.node(n).send(to_bytes(payload(n, i)));
    }
    cluster.run_for(Duration{20'000});
  }
  cluster.run_for(Duration{4'000'000});

  EXPECT_GT(cluster.network(0).stats().reordered, 0u);
  EXPECT_GT(cluster.network(0).stats().duplicated, 0u);

  const auto reference = delivery_sequence(cluster, 0);
  ASSERT_EQ(reference.size(), 40u) << "every fragmented message reassembles";
  std::map<std::pair<NodeId, std::string>, int> seen;
  for (const auto& e : reference) {
    EXPECT_EQ(++seen[e], 1) << "duplicate reassembled delivery";
    // Byte-exact: the payload matches what its origin sent.
    const auto dash = e.second.find('-');
    ASSERT_NE(dash, std::string::npos);
    const std::size_t origin = e.second[4] - '0';
    const int idx = std::stoi(e.second.substr(dash + 1));
    EXPECT_EQ(e.second, payload(origin, idx)) << "reassembly corrupted payload";
  }
  for (std::size_t n = 1; n < cluster.node_count(); ++n) {
    EXPECT_EQ(delivery_sequence(cluster, static_cast<NodeId>(n)), reference)
        << "total order must be identical at node " << n;
  }
}

}  // namespace
}  // namespace totem::harness

// End-to-end corruption handling: a network that flips bytes must cost only
// retransmissions (none/passive) or nothing at all (active masks it) — never
// a wrong delivery. The packet CRC stands in for the Ethernet frame check
// sequence of the paper's testbed.
#include <gtest/gtest.h>

#include <set>

#include "harness/drivers.h"
#include "harness/sim_cluster.h"

namespace totem::harness {
namespace {

bool membership_changed_anywhere(const SimCluster& cluster) {
  for (std::size_t i = 0; i < cluster.node_count(); ++i) {
    if (cluster.views(i).size() > 1) return true;
  }
  return false;
}

class CorruptionTest : public ::testing::TestWithParam<api::ReplicationStyle> {};

TEST_P(CorruptionTest, CorruptedPacketsNeverReachTheApplication) {
  ClusterConfig cfg;
  cfg.node_count = 4;
  cfg.network_count = GetParam() == api::ReplicationStyle::kActivePassive ? 3 : 2;
  cfg.style = GetParam();
  cfg.seed = 5;
  SimCluster cluster(cfg);
  cluster.network(0).set_corruption_rate(0.05);  // 5% of deliveries mangled
  cluster.start_all();

  std::vector<std::string> sent;
  for (std::size_t i = 0; i < 4; ++i) {
    for (int k = 0; k < 25; ++k) {
      const std::string text = "x" + std::to_string(i) + "-" + std::to_string(k);
      sent.push_back(text);
      ASSERT_TRUE(cluster.node(i).send(to_bytes(text)).is_ok());
    }
  }
  cluster.run_for(Duration{5'000'000});

  EXPECT_GT(cluster.network(0).stats().corrupted, 0u) << "injector must have fired";

  // Exactly the sent payloads, bit-exact, in identical order everywhere.
  const auto& ref = cluster.deliveries(0);
  ASSERT_EQ(ref.size(), sent.size());
  std::multiset<std::string> delivered;
  for (const auto& d : ref) delivered.insert(totem::to_string(d.payload));
  EXPECT_EQ(delivered, std::multiset<std::string>(sent.begin(), sent.end()));
  for (std::size_t i = 1; i < 4; ++i) {
    const auto& d = cluster.deliveries(i);
    ASSERT_EQ(d.size(), ref.size()) << "node " << i;
    for (std::size_t k = 0; k < ref.size(); ++k) {
      ASSERT_EQ(d[k].payload, ref[k].payload);
    }
  }
  // Corrupted packets surface as malformed in the SRP stats (via either the
  // RRP peek or the SRP parse, both of which verify the CRC).
  EXPECT_FALSE(membership_changed_anywhere(cluster));
}

INSTANTIATE_TEST_SUITE_P(Styles, CorruptionTest,
                         ::testing::Values(api::ReplicationStyle::kNone,
                                           api::ReplicationStyle::kActive,
                                           api::ReplicationStyle::kPassive));

TEST(Corruption, ActiveMasksCorruptionWithoutRetransmission) {
  // Corruption on one network behaves exactly like loss on that network:
  // active replication's second copy makes it invisible.
  ClusterConfig cfg;
  cfg.node_count = 4;
  cfg.network_count = 2;
  cfg.style = api::ReplicationStyle::kActive;
  SimCluster cluster(cfg);
  cluster.network(1).set_corruption_rate(0.2);
  cluster.start_all();
  for (std::size_t i = 0; i < 4; ++i) {
    for (int k = 0; k < 25; ++k) {
      ASSERT_TRUE(cluster.node(i).send(Bytes(100, std::byte(k))).is_ok());
    }
  }
  cluster.run_for(Duration{3'000'000});
  for (std::size_t i = 0; i < 4; ++i) {
    ASSERT_EQ(cluster.deliveries(i).size(), 100u) << "node " << i;
    EXPECT_EQ(cluster.node(i).ring().stats().retransmit_requests, 0u) << "node " << i;
  }
}

TEST(Corruption, SimNetworkCountsCorruptedDeliveries) {
  ClusterConfig cfg;
  cfg.node_count = 2;
  cfg.network_count = 2;
  cfg.style = api::ReplicationStyle::kActive;
  SimCluster cluster(cfg);
  cluster.network(0).set_corruption_rate(1.0);  // mangle everything on net 0
  cluster.start_all();
  ASSERT_TRUE(cluster.node(0).send(to_bytes("abc")).is_ok());
  cluster.run_for(Duration{200'000});
  EXPECT_GT(cluster.network(0).stats().corrupted, 0u);
  // Network 1 carried the day.
  ASSERT_EQ(cluster.deliveries(1).size(), 1u);
  EXPECT_EQ(totem::to_string(cluster.deliveries(1)[0].payload), "abc");
}

}  // namespace
}  // namespace totem::harness

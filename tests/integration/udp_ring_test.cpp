// Live end-to-end test: a full Totem RRP ring over REAL UDP sockets on
// loopback — three nodes, two redundant networks, one reactor. This is the
// same deployment shape as the examples and proves the protocol code runs
// identically over the real transport and the simulated one.
//
// The whole matrix runs once per datapath backend (per-datagram, mmsg,
// io_uring) so all three generations of the UDP hot path face the same
// end-to-end ordering, replication, and fault-recovery obligations. The
// io_uring rows skip (with a reason) when the kernel or build lacks it.
#include <gtest/gtest.h>

#include <memory>

#include "api/node.h"
#include "net/datapath.h"
#include "net/reactor.h"
#include "net/udp_transport.h"

namespace totem {
namespace {

constexpr std::uint32_t kNodes = 3;
constexpr std::uint32_t kNetworks = 2;

// Offset each backend's ports so back-to-back parameterized runs (and any
// lingering kernel state) cannot collide: base + 100*network + 10*backend.
std::uint16_t backend_port(std::uint16_t base, NetworkId n, net::DatapathBackend b) {
  return static_cast<std::uint16_t>(base + 100 * n + 10 * static_cast<int>(b));
}

struct UdpRing {
  net::Reactor reactor;
  std::vector<std::unique_ptr<net::UdpTransport>> transports;
  std::vector<std::unique_ptr<api::Node>> nodes;
  std::vector<std::vector<std::string>> delivered{kNodes};
  std::vector<rrp::NetworkFaultReport> faults;

  bool build(std::uint16_t base_port, api::ReplicationStyle style,
             net::DatapathBackend backend) {
    for (NodeId id = 0; id < kNodes; ++id) {
      std::vector<net::Transport*> node_transports;
      for (NetworkId n = 0; n < kNetworks; ++n) {
        net::UdpTransport::Config tc;
        tc.network = n;
        tc.local_node = id;
        tc.backend = backend;
        tc.require_backend = true;  // the fixture already skipped if absent
        tc.peers = net::loopback_peers(backend_port(base_port, n, backend), kNodes);
        auto t = net::UdpTransport::create(reactor, tc);
        if (!t.is_ok()) {
          ADD_FAILURE() << t.status().to_string();
          return false;
        }
        transports.push_back(std::move(t).take());
        node_transports.push_back(transports.back().get());
      }
      api::NodeConfig cfg;
      cfg.srp.node_id = id;
      cfg.srp.initial_members = {0, 1, 2};
      cfg.style = style;
      nodes.push_back(std::make_unique<api::Node>(reactor, node_transports, cfg));
      nodes.back()->set_deliver_handler([this, id](const srp::DeliveredMessage& m) {
        delivered[id].push_back(to_string(m.payload));
      });
      nodes.back()->set_fault_handler(
          [this](const rrp::NetworkFaultReport& r) { faults.push_back(r); });
    }
    for (auto& n : nodes) n->start();
    return true;
  }

  void run_until_delivered(std::size_t per_node, Duration cap) {
    const TimePoint deadline = reactor.now() + cap;
    while (reactor.now() < deadline) {
      bool done = true;
      for (const auto& d : delivered) {
        if (d.size() < per_node) done = false;
      }
      if (done) return;
      reactor.poll_once(Duration{10'000});
    }
  }
};

class UdpRingBackends : public ::testing::TestWithParam<net::DatapathBackend> {
 protected:
  void SetUp() override {
    if (GetParam() == net::DatapathBackend::kIoUring && !net::io_uring_available()) {
      GTEST_SKIP() << (net::io_uring_compiled()
                           ? "io_uring probe failed on this kernel"
                           : "io_uring backend not compiled in");
    }
  }
};

TEST_P(UdpRingBackends, ActiveReplicationDeliversInTotalOrder) {
  UdpRing ring;
  ASSERT_TRUE(ring.build(42000, api::ReplicationStyle::kActive, GetParam()));
  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE(ring.nodes[0]->send(to_bytes("a" + std::to_string(i))).is_ok());
    ASSERT_TRUE(ring.nodes[1]->send(to_bytes("b" + std::to_string(i))).is_ok());
  }
  ring.run_until_delivered(10, Duration{5'000'000});
  for (NodeId i = 0; i < kNodes; ++i) {
    ASSERT_EQ(ring.delivered[i].size(), 10u) << "node " << i;
    EXPECT_EQ(ring.delivered[i], ring.delivered[0]) << "node " << i;
  }
  EXPECT_TRUE(ring.faults.empty());
}

TEST_P(UdpRingBackends, PassiveReplicationDeliversInTotalOrder) {
  UdpRing ring;
  ASSERT_TRUE(ring.build(42600, api::ReplicationStyle::kPassive, GetParam()));
  for (int i = 0; i < 8; ++i) {
    ASSERT_TRUE(ring.nodes[i % 3]->send(to_bytes("m" + std::to_string(i))).is_ok());
  }
  ring.run_until_delivered(8, Duration{5'000'000});
  for (NodeId i = 0; i < kNodes; ++i) {
    ASSERT_EQ(ring.delivered[i].size(), 8u) << "node " << i;
    EXPECT_EQ(ring.delivered[i], ring.delivered[0]);
  }
}

TEST_P(UdpRingBackends, ActiveSurvivesNicSendFaultLive) {
  // Kill node 0's TX path on network 0 mid-run: with active replication the
  // ring keeps delivering through network 1.
  UdpRing ring;
  ASSERT_TRUE(ring.build(42300, api::ReplicationStyle::kActive, GetParam()));
  for (int i = 0; i < 3; ++i) {
    ASSERT_TRUE(ring.nodes[0]->send(to_bytes("pre" + std::to_string(i))).is_ok());
  }
  ring.run_until_delivered(3, Duration{5'000'000});

  // transports are laid out node-major: node 0's network-0 endpoint first.
  ring.transports[0]->set_send_fault(true);
  for (int i = 0; i < 3; ++i) {
    ASSERT_TRUE(ring.nodes[0]->send(to_bytes("post" + std::to_string(i))).is_ok());
  }
  ring.run_until_delivered(6, Duration{5'000'000});
  for (NodeId i = 0; i < kNodes; ++i) {
    ASSERT_EQ(ring.delivered[i].size(), 6u) << "node " << i;
    EXPECT_EQ(ring.delivered[i], ring.delivered[0]);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Datapaths, UdpRingBackends,
    ::testing::Values(net::DatapathBackend::kPerDatagram,
                      net::DatapathBackend::kMmsg,
                      net::DatapathBackend::kIoUring),
    [](const ::testing::TestParamInfo<net::DatapathBackend>& info) {
      switch (info.param) {
        case net::DatapathBackend::kPerDatagram: return "PerDatagram";
        case net::DatapathBackend::kMmsg: return "Mmsg";
        case net::DatapathBackend::kIoUring: return "IoUring";
      }
      return "Unknown";
    });

}  // namespace
}  // namespace totem

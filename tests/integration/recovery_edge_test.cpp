// Recovery edge cases: double failures during reconfiguration, fragmented
// messages spanning a membership change, and recovery under loss.
#include <gtest/gtest.h>

#include <set>

#include "harness/drivers.h"
#include "harness/sim_cluster.h"

namespace totem::harness {
namespace {

ClusterConfig fast_membership(std::size_t nodes) {
  ClusterConfig cfg;
  cfg.node_count = nodes;
  cfg.network_count = 2;
  cfg.style = api::ReplicationStyle::kActive;
  cfg.srp.token_loss_timeout = Duration{100'000};
  cfg.srp.join_interval = Duration{10'000};
  cfg.srp.consensus_timeout = Duration{100'000};
  cfg.srp.commit_timeout = Duration{100'000};
  return cfg;
}

TEST(RecoveryEdge, DoubleCrashDuringRecoveryStillConverges) {
  // Node 3 crashes; while the survivors reconfigure, node 2 crashes too.
  // The recovery ring fails, the abort path runs, and {0,1} must still end
  // up operational with identical delivered streams.
  SimCluster cluster(fast_membership(4));
  cluster.start_all();
  for (int k = 0; k < 20; ++k) {
    ASSERT_TRUE(cluster.node(k % 2).send(to_bytes("x" + std::to_string(k))).is_ok());
  }
  cluster.run_for(Duration{150'000});
  cluster.crash(3);
  cluster.run_for(Duration{120'000});  // mid-reconfiguration
  cluster.crash(2);
  cluster.run_for(Duration{4'000'000});

  for (NodeId i = 0; i < 2; ++i) {
    EXPECT_EQ(cluster.node(i).ring().state(), srp::SingleRing::State::kOperational)
        << "node " << i;
    ASSERT_FALSE(cluster.views(i).empty());
    EXPECT_EQ(cluster.views(i).back().view.members, (std::vector<NodeId>{0, 1}));
  }
  // Survivors agree on their common delivered stream.
  const auto& a = cluster.deliveries(0);
  const auto& b = cluster.deliveries(1);
  const std::size_t common = std::min(a.size(), b.size());
  for (std::size_t k = 0; k < common; ++k) {
    EXPECT_EQ(a[k].payload, b[k].payload) << "pos " << k;
  }
  // And fresh traffic still flows.
  ASSERT_TRUE(cluster.node(0).send(to_bytes("post-double-crash")).is_ok());
  cluster.run_for(Duration{500'000});
  EXPECT_EQ(totem::to_string(cluster.deliveries(1).back().payload), "post-double-crash");
}

TEST(RecoveryEdge, FragmentedMessageSurvivesMembershipChange) {
  // A large (fragmented) message is in flight when a node crashes. Every
  // survivor must deliver it exactly once, fully reassembled.
  ClusterConfig cfg = fast_membership(4);
  cfg.seed = 23;
  SimCluster cluster(cfg);
  cluster.network(0).set_loss_rate(0.05);
  cluster.start_all();

  Bytes big(20'000);
  for (std::size_t i = 0; i < big.size(); ++i) big[i] = std::byte(i % 241);
  ASSERT_TRUE(cluster.node(1).send(big).is_ok());
  ASSERT_TRUE(cluster.node(2).send(to_bytes("small")).is_ok());
  cluster.run_for(Duration{10'000});  // fragments partially propagated
  cluster.crash(3);
  cluster.run_for(Duration{4'000'000});

  for (NodeId i = 0; i < 3; ++i) {
    const auto& d = cluster.deliveries(i);
    ASSERT_EQ(d.size(), 2u) << "node " << i;
    std::multiset<std::size_t> sizes{d[0].payload.size(), d[1].payload.size()};
    EXPECT_EQ(sizes, (std::multiset<std::size_t>{5, 20'000}));
    for (const auto& m : d) {
      if (m.payload.size() == big.size()) {
        EXPECT_EQ(m.payload, big) << "reassembled bytes must be exact";
      }
    }
  }
}

TEST(RecoveryEdge, LossyRecoveryStillCompletes) {
  // Membership reconfiguration itself runs under 10% loss on both networks:
  // joins, commit tokens and recovery broadcasts all need the retention and
  // retransmission machinery.
  ClusterConfig cfg = fast_membership(4);
  cfg.seed = 31;
  cfg.net_params.loss_rate = 0.10;
  SimCluster cluster(cfg);
  cluster.start_all();
  for (int k = 0; k < 30; ++k) {
    ASSERT_TRUE(cluster.node(k % 4).send(to_bytes("m" + std::to_string(k))).is_ok());
  }
  cluster.run_for(Duration{100'000});
  cluster.crash(0);  // crash the LEADER for extra spice
  cluster.run_for(Duration{8'000'000});

  for (NodeId i = 1; i < 4; ++i) {
    EXPECT_EQ(cluster.node(i).ring().state(), srp::SingleRing::State::kOperational)
        << "node " << i;
    ASSERT_FALSE(cluster.views(i).empty());
    EXPECT_EQ(cluster.views(i).back().view.members, (std::vector<NodeId>{1, 2, 3}));
  }
  const auto& ref = cluster.deliveries(1);
  for (NodeId i = 2; i < 4; ++i) {
    const auto& d = cluster.deliveries(i);
    ASSERT_EQ(d.size(), ref.size()) << "node " << i;
    for (std::size_t k = 0; k < ref.size(); ++k) {
      EXPECT_EQ(d[k].payload, ref[k].payload);
    }
  }
}

TEST(RecoveryEdge, GroupOfThreePartitionsMergeInPairsThenFully) {
  // Three-way partition (both networks): three singleton-ish rings; heal
  // everything at once and let announcements stitch one ring back.
  ClusterConfig cfg = fast_membership(6);
  cfg.srp.announce_interval = Duration{200'000};
  SimCluster cluster(cfg);
  cluster.start_all();
  cluster.run_for(Duration{300'000});
  const std::vector<std::vector<NodeId>> groups = {{0, 1}, {2, 3}, {4, 5}};
  cluster.network(0).set_partition(groups);
  cluster.network(1).set_partition(groups);
  cluster.run_for(Duration{2'000'000});
  EXPECT_EQ(cluster.views(0).back().view.members, (std::vector<NodeId>{0, 1}));
  EXPECT_EQ(cluster.views(2).back().view.members, (std::vector<NodeId>{2, 3}));
  EXPECT_EQ(cluster.views(4).back().view.members, (std::vector<NodeId>{4, 5}));

  cluster.network(0).clear_partition();
  cluster.network(1).clear_partition();
  cluster.run_for(Duration{8'000'000});
  const std::vector<NodeId> everyone = {0, 1, 2, 3, 4, 5};
  for (NodeId i = 0; i < 6; ++i) {
    EXPECT_EQ(cluster.views(i).back().view.members, everyone) << "node " << i;
  }
}

}  // namespace
}  // namespace totem::harness

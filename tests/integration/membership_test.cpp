// Membership integration tests: the Totem SRP Gather/Commit/Recovery state
// machine running end-to-end over simulated redundant networks. Node
// crashes, cold-start formation, late joins, deaf nodes, and partition
// healing — in contrast to network faults (fault_injection_test.cpp), these
// DO produce membership changes.
#include <gtest/gtest.h>

#include <set>

#include "harness/drivers.h"
#include "harness/sim_cluster.h"

namespace totem::harness {
namespace {

ClusterConfig membership_config(api::ReplicationStyle style, std::size_t nodes) {
  ClusterConfig cfg;
  cfg.node_count = nodes;
  cfg.network_count = 2;
  cfg.style = style;
  // Brisk membership timing so the tests converge in little simulated time.
  cfg.srp.token_loss_timeout = Duration{100'000};
  cfg.srp.join_interval = Duration{10'000};
  cfg.srp.consensus_timeout = Duration{100'000};
  cfg.srp.commit_timeout = Duration{100'000};
  return cfg;
}

std::vector<NodeId> last_view_members(const SimCluster& cluster, NodeId at) {
  const auto& views = cluster.views(at);
  if (views.empty()) return {};
  return views.back().view.members;
}

class CrashTest : public ::testing::TestWithParam<api::ReplicationStyle> {};

TEST_P(CrashTest, SurvivorsFormNewRingAndContinue) {
  SimCluster cluster(membership_config(GetParam(), 4));
  cluster.start_all();
  for (int k = 0; k < 10; ++k) {
    ASSERT_TRUE(cluster.node(0).send(to_bytes("pre-" + std::to_string(k))).is_ok());
  }
  cluster.run_for(Duration{300'000});

  cluster.crash(3);
  cluster.run_for(Duration{1'500'000});  // detect + reconfigure

  // Survivors share a 3-member view.
  for (NodeId i = 0; i < 3; ++i) {
    EXPECT_EQ(last_view_members(cluster, i), (std::vector<NodeId>{0, 1, 2}))
        << "node " << i;
  }

  // Traffic continues on the new ring.
  for (int k = 0; k < 10; ++k) {
    ASSERT_TRUE(cluster.node(1).send(to_bytes("post-" + std::to_string(k))).is_ok());
  }
  cluster.run_for(Duration{1'000'000});
  for (NodeId i = 0; i < 3; ++i) {
    ASSERT_EQ(cluster.deliveries(i).size(), 20u) << "node " << i;
    // Identical total order among survivors.
    for (std::size_t k = 0; k < 20; ++k) {
      EXPECT_EQ(cluster.deliveries(i)[k].payload, cluster.deliveries(0)[k].payload);
    }
  }
  // A node crash is NOT a network fault: no network alarms.
  for (const auto& f : cluster.faults()) {
    EXPECT_NE(f.at, 0u);  // (tolerate none at all; assert below)
  }
}

INSTANTIATE_TEST_SUITE_P(Styles, CrashTest,
                         ::testing::Values(api::ReplicationStyle::kActive,
                                           api::ReplicationStyle::kPassive));

TEST(Membership, ColdStartFormsRingViaGather) {
  ClusterConfig cfg = membership_config(api::ReplicationStyle::kActive, 4);
  cfg.srp.assume_initial_ring = false;
  SimCluster cluster(cfg);
  cluster.start_all();
  cluster.run_for(Duration{1'000'000});

  for (NodeId i = 0; i < 4; ++i) {
    EXPECT_EQ(cluster.node(i).ring().state(), srp::SingleRing::State::kOperational)
        << "node " << i;
    EXPECT_EQ(last_view_members(cluster, i), (std::vector<NodeId>{0, 1, 2, 3}))
        << "node " << i;
  }
  // Same ring id everywhere.
  for (NodeId i = 1; i < 4; ++i) {
    EXPECT_EQ(cluster.node(i).ring().ring(), cluster.node(0).ring().ring());
  }
  // The formed ring carries traffic.
  ASSERT_TRUE(cluster.node(2).send(to_bytes("hello")).is_ok());
  cluster.run_for(Duration{500'000});
  for (NodeId i = 0; i < 4; ++i) {
    ASSERT_EQ(cluster.deliveries(i).size(), 1u) << "node " << i;
  }
}

TEST(Membership, SingletonColdStart) {
  ClusterConfig cfg = membership_config(api::ReplicationStyle::kActive, 1);
  cfg.srp.assume_initial_ring = false;
  SimCluster cluster(cfg);
  cluster.start_all();
  cluster.run_for(Duration{1'000'000});
  EXPECT_EQ(cluster.node(0).ring().state(), srp::SingleRing::State::kOperational);
  EXPECT_EQ(last_view_members(cluster, 0), (std::vector<NodeId>{0}));
  ASSERT_TRUE(cluster.node(0).send(to_bytes("solo")).is_ok());
  cluster.run_for(Duration{500'000});
  ASSERT_EQ(cluster.deliveries(0).size(), 1u);
}

TEST(Membership, LateJoinerMergesIntoRunningRing) {
  ClusterConfig cfg = membership_config(api::ReplicationStyle::kActive, 4);
  cfg.srp.assume_initial_ring = false;
  SimCluster cluster(cfg);
  cluster.start(0);
  cluster.start(1);
  cluster.start(2);
  cluster.run_for(Duration{1'000'000});
  for (NodeId i = 0; i < 3; ++i) {
    ASSERT_EQ(last_view_members(cluster, i), (std::vector<NodeId>{0, 1, 2}));
  }

  cluster.start(3);
  cluster.run_for(Duration{1'500'000});
  for (NodeId i = 0; i < 4; ++i) {
    EXPECT_EQ(last_view_members(cluster, i), (std::vector<NodeId>{0, 1, 2, 3}))
        << "node " << i;
  }
  ASSERT_TRUE(cluster.node(3).send(to_bytes("newcomer")).is_ok());
  cluster.run_for(Duration{500'000});
  for (NodeId i = 0; i < 4; ++i) {
    ASSERT_FALSE(cluster.deliveries(i).empty()) << "node " << i;
    EXPECT_EQ(totem::to_string(cluster.deliveries(i).back().payload), "newcomer");
  }
}

TEST(Membership, CrashedNodeRejoinsAfterReconnect) {
  SimCluster cluster(membership_config(api::ReplicationStyle::kActive, 3));
  cluster.start_all();
  cluster.run_for(Duration{300'000});

  cluster.crash(2);
  cluster.run_for(Duration{1'500'000});
  EXPECT_EQ(last_view_members(cluster, 0), (std::vector<NodeId>{0, 1}));

  // While isolated, node 2 forms a singleton ring. After reconnection the
  // rings merge when traffic from one reaches the other (merge detection is
  // traffic-triggered, as in Totem).
  cluster.reconnect(2);
  cluster.run_for(Duration{500'000});
  ASSERT_TRUE(cluster.node(2).send(to_bytes("back")).is_ok());
  cluster.run_for(Duration{2'500'000});
  for (NodeId i = 0; i < 3; ++i) {
    EXPECT_EQ(last_view_members(cluster, i), (std::vector<NodeId>{0, 1, 2}))
        << "node " << i;
  }
}

TEST(Membership, DeafNodeIsExcludedNotDeadlocked) {
  // A node that can send but not receive (both NICs' RX paths dead) keeps
  // broadcasting joins that never converge. The second-stage consensus
  // timeout must exclude it rather than stall the ring forever.
  SimCluster cluster(membership_config(api::ReplicationStyle::kActive, 3));
  cluster.start_all();
  cluster.run_for(Duration{300'000});

  cluster.network(0).set_recv_fault(2, true);
  cluster.network(1).set_recv_fault(2, true);
  cluster.run_for(Duration{3'000'000});

  EXPECT_EQ(last_view_members(cluster, 0), (std::vector<NodeId>{0, 1}));
  EXPECT_EQ(last_view_members(cluster, 1), (std::vector<NodeId>{0, 1}));
  // The survivors' ring still carries traffic.
  ASSERT_TRUE(cluster.node(0).send(to_bytes("onward")).is_ok());
  cluster.run_for(Duration{500'000});
  EXPECT_FALSE(cluster.deliveries(1).empty());
  EXPECT_EQ(totem::to_string(cluster.deliveries(1).back().payload), "onward");
}

TEST(Membership, FullPartitionSplitsThenMergesWithTraffic) {
  // BOTH networks partition identically (e.g. the two switches share a
  // failed trunk): this is a real partition, so two rings form. When the
  // partition heals, traffic from the foreign ring triggers the membership
  // protocol and the rings merge.
  SimCluster cluster(membership_config(api::ReplicationStyle::kActive, 4));
  cluster.start_all();
  cluster.run_for(Duration{300'000});

  cluster.network(0).set_partition({{0, 1}, {2, 3}});
  cluster.network(1).set_partition({{0, 1}, {2, 3}});
  cluster.run_for(Duration{1'500'000});

  EXPECT_EQ(last_view_members(cluster, 0), (std::vector<NodeId>{0, 1}));
  EXPECT_EQ(last_view_members(cluster, 2), (std::vector<NodeId>{2, 3}));

  // Each side makes independent progress.
  ASSERT_TRUE(cluster.node(0).send(to_bytes("side-a")).is_ok());
  ASSERT_TRUE(cluster.node(2).send(to_bytes("side-b")).is_ok());
  cluster.run_for(Duration{500'000});
  EXPECT_EQ(totem::to_string(cluster.deliveries(1).back().payload), "side-a");
  EXPECT_EQ(totem::to_string(cluster.deliveries(3).back().payload), "side-b");

  // Heal. Traffic on either side leaks across, is recognized as a foreign
  // ring, and triggers the merge.
  cluster.network(0).clear_partition();
  cluster.network(1).clear_partition();
  ASSERT_TRUE(cluster.node(0).send(to_bytes("probe")).is_ok());
  cluster.run_for(Duration{3'000'000});

  for (NodeId i = 0; i < 4; ++i) {
    EXPECT_EQ(last_view_members(cluster, i), (std::vector<NodeId>{0, 1, 2, 3}))
        << "node " << i;
  }
  // The merged ring carries traffic to everyone.
  ASSERT_TRUE(cluster.node(3).send(to_bytes("united")).is_ok());
  cluster.run_for(Duration{500'000});
  for (NodeId i = 0; i < 4; ++i) {
    ASSERT_FALSE(cluster.deliveries(i).empty());
    EXPECT_EQ(totem::to_string(cluster.deliveries(i).back().payload), "united")
        << "node " << i;
  }
}

TEST(Membership, IdlePartitionsMergeViaAnnouncements) {
  // Both networks partition, two rings form, the partition heals — and
  // NOBODY sends anything. The leaders' periodic ring announcements alone
  // must trigger the merge.
  ClusterConfig cfg = membership_config(api::ReplicationStyle::kActive, 4);
  cfg.srp.announce_interval = Duration{200'000};
  SimCluster cluster(cfg);
  cluster.start_all();
  cluster.run_for(Duration{300'000});

  cluster.network(0).set_partition({{0, 1}, {2, 3}});
  cluster.network(1).set_partition({{0, 1}, {2, 3}});
  cluster.run_for(Duration{1'500'000});
  ASSERT_EQ(last_view_members(cluster, 0), (std::vector<NodeId>{0, 1}));
  ASSERT_EQ(last_view_members(cluster, 2), (std::vector<NodeId>{2, 3}));

  cluster.network(0).clear_partition();
  cluster.network(1).clear_partition();
  cluster.run_for(Duration{4'000'000});  // no traffic at all

  for (NodeId i = 0; i < 4; ++i) {
    EXPECT_EQ(last_view_members(cluster, i), (std::vector<NodeId>{0, 1, 2, 3}))
        << "node " << i;
  }
}

TEST(Membership, AnnouncementsDisabledMeansNoIdleMerge) {
  // Companion: with announcements off and zero traffic, healed partitions
  // stay split — proving the announcement is the merge trigger above.
  ClusterConfig cfg = membership_config(api::ReplicationStyle::kActive, 4);
  cfg.srp.announce_interval = Duration{0};
  SimCluster cluster(cfg);
  cluster.start_all();
  cluster.run_for(Duration{300'000});
  cluster.network(0).set_partition({{0, 1}, {2, 3}});
  cluster.network(1).set_partition({{0, 1}, {2, 3}});
  cluster.run_for(Duration{1'500'000});
  cluster.network(0).clear_partition();
  cluster.network(1).clear_partition();
  cluster.run_for(Duration{4'000'000});
  EXPECT_EQ(last_view_members(cluster, 0), (std::vector<NodeId>{0, 1}));
  EXPECT_EQ(last_view_members(cluster, 2), (std::vector<NodeId>{2, 3}));
}

TEST(Membership, MessagesRecoveredAcrossReconfiguration) {
  // Old-ring messages still in flight at the moment of a crash must survive
  // the reconfiguration: every survivor delivers the complete stream in the
  // same order (extended virtual synchrony's agreed-delivery core).
  ClusterConfig cfg = membership_config(api::ReplicationStyle::kPassive, 4);
  cfg.seed = 11;
  SimCluster cluster(cfg);
  // Loss keeps some survivors behind others, so the recovery phase has real
  // work: laggards' gaps must be filled from peers' stores.
  cluster.network(0).set_loss_rate(0.10);
  cluster.start_all();
  for (NodeId i = 0; i < 4; ++i) {
    for (int k = 0; k < 25; ++k) {
      ASSERT_TRUE(cluster.node(i)
                      .send(to_bytes("m-" + std::to_string(i) + "-" + std::to_string(k)))
                      .is_ok());
    }
  }
  // Crash node 3 while messages are still propagating.
  cluster.run_for(Duration{30'000});
  cluster.crash(3);
  cluster.run_for(Duration{4'000'000});

  // All survivors deliver identical streams (node 3's accepted messages
  // included, recovered from whoever held them).
  const auto& ref = cluster.deliveries(0);
  ASSERT_GE(ref.size(), 75u) << "survivors' own messages must all deliver";
  for (NodeId i = 1; i < 3; ++i) {
    const auto& d = cluster.deliveries(i);
    ASSERT_EQ(d.size(), ref.size()) << "node " << i;
    for (std::size_t k = 0; k < ref.size(); ++k) {
      EXPECT_EQ(d[k].payload, ref[k].payload) << "node " << i << " pos " << k;
    }
  }
  // Survivors' own 75 messages are a subset of what was delivered.
  std::set<std::string> delivered_set;
  for (const auto& m : ref) delivered_set.insert(totem::to_string(m.payload));
  for (NodeId i = 0; i < 3; ++i) {
    for (int k = 0; k < 25; ++k) {
      EXPECT_TRUE(delivered_set.count("m-" + std::to_string(i) + "-" + std::to_string(k)))
          << "lost message from surviving node " << i << " #" << k;
    }
  }
}

TEST(Membership, ViewNumbersAreMonotonic) {
  SimCluster cluster(membership_config(api::ReplicationStyle::kActive, 3));
  cluster.start_all();
  cluster.run_for(Duration{300'000});
  cluster.crash(2);
  cluster.run_for(Duration{2'000'000});
  for (NodeId i = 0; i < 2; ++i) {
    const auto& views = cluster.views(i);
    ASSERT_GE(views.size(), 2u);
    for (std::size_t k = 1; k < views.size(); ++k) {
      EXPECT_GT(views[k].view.view_number, views[k - 1].view.view_number);
      EXPECT_GE(views[k].view.ring.ring_seq, views[k - 1].view.ring.ring_seq);
    }
  }
}

}  // namespace
}  // namespace totem::harness

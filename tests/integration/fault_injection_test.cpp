// Fault-injection integration tests: the paper's fault model (§3) exercised
// end-to-end. The central claim under test: partial or total failure of a
// network is TRANSPARENT to the application — no membership change, no lost
// or reordered messages — while the local monitors raise a fault report for
// the administrator.
#include <gtest/gtest.h>

#include "harness/drivers.h"
#include "harness/sim_cluster.h"

namespace totem::harness {
namespace {

ClusterConfig make_config(api::ReplicationStyle style, std::size_t nodes = 4,
                          std::size_t networks = 2) {
  ClusterConfig cfg;
  cfg.node_count = nodes;
  cfg.network_count = networks;
  cfg.style = style;
  return cfg;
}

void send_batch(SimCluster& cluster, int per_node, int tag) {
  for (std::size_t i = 0; i < cluster.node_count(); ++i) {
    for (int k = 0; k < per_node; ++k) {
      const std::string text =
          "b" + std::to_string(tag) + "-n" + std::to_string(i) + "-" + std::to_string(k);
      ASSERT_TRUE(cluster.node(i).send(to_bytes(text)).is_ok());
    }
  }
}

void expect_total_order_and_count(SimCluster& cluster, std::size_t expected) {
  const auto& ref = cluster.deliveries(0);
  ASSERT_EQ(ref.size(), expected);
  for (std::size_t i = 1; i < cluster.node_count(); ++i) {
    const auto& d = cluster.deliveries(i);
    ASSERT_EQ(d.size(), expected) << "node " << i;
    for (std::size_t k = 0; k < expected; ++k) {
      ASSERT_EQ(d[k].payload, ref[k].payload) << "node " << i << " pos " << k;
    }
  }
}

bool membership_changed(const SimCluster& cluster) {
  for (std::size_t i = 0; i < cluster.node_count(); ++i) {
    // Every node sees exactly the initial view if no reconfiguration ran.
    if (cluster.views(i).size() > 1) return true;
  }
  return false;
}

// ---------------------------------------------------------------------------
// Total network failure (paper §3: "a network nx is unable to deliver any
// data ... can even comprise the entire set of nodes").

TEST(FaultInjection, ActiveSurvivesTotalNetworkFailureTransparently) {
  SimCluster cluster(make_config(api::ReplicationStyle::kActive));
  cluster.start_all();
  send_batch(cluster, 10, 0);
  cluster.run_for(Duration{200'000});

  cluster.network(0).fail();
  send_batch(cluster, 10, 1);
  cluster.run_for(Duration{2'000'000});

  expect_total_order_and_count(cluster, 4 * 20);
  EXPECT_FALSE(membership_changed(cluster)) << "network faults must not change membership";
  // Every node's monitor eventually reports network 0 (problem counters).
  ASSERT_FALSE(cluster.faults().empty());
  for (const auto& f : cluster.faults()) {
    EXPECT_EQ(f.report.network, 0);
    EXPECT_EQ(f.report.reason, rrp::NetworkFaultReport::Reason::kTokenTimeout);
  }
  std::set<NodeId> reporters;
  for (const auto& f : cluster.faults()) reporters.insert(f.at);
  EXPECT_EQ(reporters.size(), 4u) << "each node's local monitor raises its own alarm";
}

TEST(FaultInjection, PassiveSurvivesTotalNetworkFailureTransparently) {
  SimCluster cluster(make_config(api::ReplicationStyle::kPassive));
  cluster.start_all();
  send_batch(cluster, 10, 0);
  cluster.run_for(Duration{200'000});

  cluster.network(1).fail();
  send_batch(cluster, 30, 1);
  cluster.run_for(Duration{3'000'000});

  expect_total_order_and_count(cluster, 4 * 40);
  EXPECT_FALSE(membership_changed(cluster));
  ASSERT_FALSE(cluster.faults().empty());
  for (const auto& f : cluster.faults()) {
    EXPECT_EQ(f.report.network, 1);
    EXPECT_EQ(f.report.reason, rrp::NetworkFaultReport::Reason::kReceptionImbalance);
  }
}

TEST(FaultInjection, ActivePassiveSurvivesTotalNetworkFailure) {
  SimCluster cluster(make_config(api::ReplicationStyle::kActivePassive, 4, 3));
  cluster.start_all();
  send_batch(cluster, 10, 0);
  cluster.run_for(Duration{200'000});

  cluster.network(2).fail();
  send_batch(cluster, 30, 1);
  cluster.run_for(Duration{3'000'000});

  expect_total_order_and_count(cluster, 4 * 40);
  EXPECT_FALSE(membership_changed(cluster));
  ASSERT_FALSE(cluster.faults().empty());
  for (const auto& f : cluster.faults()) {
    EXPECT_EQ(f.report.network, 2);
  }
}

TEST(FaultInjection, ActiveSurvivesSequentialFailuresDownToLastNetwork) {
  // Three networks; kill two, one after the other. "The system remains
  // operational as long as a single network is operational" (§1).
  SimCluster cluster(make_config(api::ReplicationStyle::kActive, 4, 3));
  cluster.start_all();
  send_batch(cluster, 10, 0);
  cluster.run_for(Duration{200'000});

  cluster.network(0).fail();
  send_batch(cluster, 10, 1);
  cluster.run_for(Duration{2'000'000});

  cluster.network(1).fail();
  send_batch(cluster, 10, 2);
  cluster.run_for(Duration{2'000'000});

  expect_total_order_and_count(cluster, 4 * 30);
  EXPECT_FALSE(membership_changed(cluster));
  std::set<NetworkId> reported;
  for (const auto& f : cluster.faults()) reported.insert(f.report.network);
  EXPECT_EQ(reported, (std::set<NetworkId>{0, 1}));
}

// ---------------------------------------------------------------------------
// Per-node NIC faults (paper §3: "a node A is unable to send (receive) any
// data via a particular network nx").

TEST(FaultInjection, PassiveNodeSendFaultDetectedByPeers) {
  SimCluster cluster(make_config(api::ReplicationStyle::kPassive));
  cluster.start_all();
  cluster.run_for(Duration{100'000});

  // Node 2 loses its TX path on network 0. Its round-robin still tries to
  // send there; peers' per-sender monitors see the imbalance (§3: "a node's
  // refusal to send via a particular network is interpreted as a fault by
  // the monitors of the other nodes").
  cluster.network(0).set_send_fault(2, true);
  send_batch(cluster, 40, 0);
  cluster.run_for(Duration{3'000'000});

  expect_total_order_and_count(cluster, 4 * 40);
  EXPECT_FALSE(membership_changed(cluster));
  ASSERT_FALSE(cluster.faults().empty());
  for (const auto& f : cluster.faults()) {
    EXPECT_EQ(f.report.network, 0);
  }
  // The faulty sender cannot observe its own TX fault — a peer's monitor
  // must raise the first alarm. (Node 2 may report LATER: once its peers
  // stop sending on network 0, their refusal "is interpreted as a fault by
  // the monitors of the other nodes" — §3's propagation.)
  EXPECT_NE(cluster.faults().front().at, 2u);
  std::set<NodeId> reporters;
  for (const auto& f : cluster.faults()) reporters.insert(f.at);
  EXPECT_GE(reporters.size(), 3u);
}

TEST(FaultInjection, ActiveNodeRecvFaultDetectedLocally) {
  SimCluster cluster(make_config(api::ReplicationStyle::kActive));
  cluster.start_all();
  cluster.run_for(Duration{100'000});

  // Node 3 goes deaf on network 1: its own token copies stop arriving there,
  // so ITS problem counter trips while everyone else stays clean.
  cluster.network(1).set_recv_fault(3, true);
  send_batch(cluster, 20, 0);
  cluster.run_for(Duration{3'000'000});

  expect_total_order_and_count(cluster, 4 * 20);
  EXPECT_FALSE(membership_changed(cluster));
  ASSERT_FALSE(cluster.faults().empty());
  for (const auto& f : cluster.faults()) {
    EXPECT_EQ(f.report.network, 1);
  }
  // The deaf node's own monitor raises the first alarm (its token copies on
  // network 1 stop arriving). Once it stops SENDING on network 1, its
  // successor's monitor fires too — the paper's §3 propagation — so later
  // reports from other nodes are expected.
  EXPECT_EQ(cluster.faults().front().at, 3u);
}

// ---------------------------------------------------------------------------
// Partial network faults: one network partitioned, the other whole.

TEST(FaultInjection, ActiveSurvivesPartitionOfOneNetwork) {
  // Network 0 partitions {0,1} | {2,3}; network 1 stays whole. The ring must
  // keep running through network 1 with no membership change (§3: a network
  // "unable to deliver any data from some subset of nodes to some other
  // subset").
  SimCluster cluster(make_config(api::ReplicationStyle::kActive));
  cluster.start_all();
  cluster.run_for(Duration{100'000});

  cluster.network(0).set_partition({{0, 1}, {2, 3}});
  send_batch(cluster, 20, 0);
  cluster.run_for(Duration{3'000'000});

  expect_total_order_and_count(cluster, 4 * 20);
  EXPECT_FALSE(membership_changed(cluster));
}

// ---------------------------------------------------------------------------
// Sporadic loss: must be masked (active) or repaired (passive) and must NOT
// trigger fault reports (requirements A6 / P5).

class SporadicLossTest
    : public ::testing::TestWithParam<std::tuple<api::ReplicationStyle, std::uint64_t>> {};

TEST_P(SporadicLossTest, LossRepairedWithoutFalseAlarms) {
  const auto [style, seed] = GetParam();
  ClusterConfig cfg = make_config(style, 4, style == api::ReplicationStyle::kActivePassive ? 3 : 2);
  cfg.seed = seed;
  cfg.net_params.loss_rate = 0.01;  // 1% on every network
  SimCluster cluster(cfg);
  cluster.start_all();
  send_batch(cluster, 50, 0);
  cluster.run_for(Duration{5'000'000});

  expect_total_order_and_count(cluster, 4 * 50);
  EXPECT_FALSE(membership_changed(cluster));
  EXPECT_TRUE(cluster.faults().empty())
      << "sporadic loss must never be declared a network fault";
}

INSTANTIATE_TEST_SUITE_P(
    StylesAndSeeds, SporadicLossTest,
    ::testing::Combine(::testing::Values(api::ReplicationStyle::kNone,
                                         api::ReplicationStyle::kActive,
                                         api::ReplicationStyle::kPassive,
                                         api::ReplicationStyle::kActivePassive),
                       ::testing::Values(1u, 7u, 42u)));

TEST(FaultInjection, ActiveMasksLossWithoutRetransmission) {
  // §4: active replication masks the loss of a message on up to N-1
  // networks WITHOUT any retransmission delay. Drop 30% on network 0 only:
  // every message still arrives via network 1, so the SRP never issues a
  // retransmission request.
  ClusterConfig cfg = make_config(api::ReplicationStyle::kActive);
  cfg.net_params.loss_rate = 0.0;
  SimCluster cluster(cfg);
  cluster.network(0).set_loss_rate(0.3);
  cluster.start_all();
  send_batch(cluster, 50, 0);
  cluster.run_for(Duration{3'000'000});

  expect_total_order_and_count(cluster, 4 * 50);
  for (std::size_t i = 0; i < 4; ++i) {
    EXPECT_EQ(cluster.node(i).ring().stats().retransmit_requests, 0u)
        << "node " << i << ": masked loss must not trigger retransmissions";
  }
}

TEST(FaultInjection, PassiveRepairsLossViaRetransmission) {
  // §4: under passive replication a lost message must wait for
  // retransmission — the protocol recovers, at a latency cost.
  ClusterConfig cfg = make_config(api::ReplicationStyle::kPassive);
  cfg.seed = 3;
  SimCluster cluster(cfg);
  cluster.network(0).set_loss_rate(0.05);
  cluster.start_all();
  send_batch(cluster, 50, 0);
  cluster.run_for(Duration{5'000'000});

  expect_total_order_and_count(cluster, 4 * 50);
  std::uint64_t retransmissions = 0;
  for (std::size_t i = 0; i < 4; ++i) {
    retransmissions += cluster.node(i).ring().stats().retransmissions_sent;
  }
  EXPECT_GT(retransmissions, 0u);
}

// ---------------------------------------------------------------------------
// Cross-network reorder (paper §5 Fig. 1 / §6 Fig. 3): asymmetric latency
// means one network systematically overtakes the other. Requirements A2/P1:
// delayed (not lost) traffic must never trigger a retransmission.

class SkewTest : public ::testing::TestWithParam<api::ReplicationStyle> {};

TEST_P(SkewTest, AsymmetricLatencyNeverTriggersSpuriousRetransmission) {
  ClusterConfig cfg = make_config(GetParam(), 4,
                                  GetParam() == api::ReplicationStyle::kActivePassive ? 3 : 2);
  SimCluster cluster(cfg);
  // Handicap: network 1 is ~50x slower than network 0 (but lossless).
  // Tokens and messages on network 0 routinely overtake those on network 1
  // (within one network FIFO still holds, as over real UDP/Ethernet) —
  // latency asymmetry, not loss: nothing is ever actually missing.
  cluster.network(1).set_base_latency(Duration{300});
  cluster.start_all();
  send_batch(cluster, 40, 0);
  cluster.run_for(Duration{3'000'000});

  expect_total_order_and_count(cluster, 4 * 40);
  for (std::size_t i = 0; i < 4; ++i) {
    EXPECT_EQ(cluster.node(i).ring().stats().retransmissions_sent, 0u) << "node " << i;
    EXPECT_EQ(cluster.node(i).ring().stats().retransmit_requests, 0u) << "node " << i;
  }
  EXPECT_TRUE(cluster.faults().empty());
}

INSTANTIATE_TEST_SUITE_P(Styles, SkewTest,
                         ::testing::Values(api::ReplicationStyle::kActive,
                                           api::ReplicationStyle::kPassive,
                                           api::ReplicationStyle::kActivePassive));

// ---------------------------------------------------------------------------
// Repair: a failed network comes back and is administratively reset.

TEST(FaultInjection, RepairedNetworkRejoinsAfterReset) {
  SimCluster cluster(make_config(api::ReplicationStyle::kActive));
  cluster.start_all();
  cluster.run_for(Duration{100'000});

  cluster.network(0).fail();
  send_batch(cluster, 10, 0);
  cluster.run_for(Duration{2'000'000});
  ASSERT_TRUE(cluster.node(0).replicator().network_faulty(0));

  // Administrator repairs the switch and resets the RRP on every node.
  cluster.network(0).recover();
  for (std::size_t i = 0; i < 4; ++i) {
    cluster.node(i).replicator().reset_network(0);
  }
  const auto sent_before = cluster.network(0).stats().packets_sent;
  send_batch(cluster, 10, 1);
  cluster.run_for(Duration{2'000'000});

  expect_total_order_and_count(cluster, 4 * 20);
  EXPECT_FALSE(cluster.node(0).replicator().network_faulty(0));
  EXPECT_GT(cluster.network(0).stats().packets_sent, sent_before)
      << "traffic must flow on the repaired network again";
}

}  // namespace
}  // namespace totem::harness

// End-to-end smoke tests: full stack (api::Node -> SRP -> RRP -> simulated
// networks) for every replication style.
#include <gtest/gtest.h>

#include "harness/drivers.h"
#include "harness/sim_cluster.h"

namespace totem::harness {
namespace {

class SmokeTest : public ::testing::TestWithParam<api::ReplicationStyle> {};

TEST_P(SmokeTest, MessagesDeliveredEverywhereInTotalOrder) {
  ClusterConfig cfg;
  cfg.node_count = 4;
  cfg.network_count = GetParam() == api::ReplicationStyle::kActivePassive ? 3 : 2;
  cfg.style = GetParam();
  SimCluster cluster(cfg);
  cluster.start_all();

  // Every node sends 20 distinct messages.
  for (std::size_t i = 0; i < cluster.node_count(); ++i) {
    for (int k = 0; k < 20; ++k) {
      const std::string text = "msg-" + std::to_string(i) + "-" + std::to_string(k);
      ASSERT_TRUE(cluster.node(i).send(to_bytes(text)).is_ok());
    }
  }
  cluster.run_for(Duration{500'000});

  const std::size_t expected = cluster.node_count() * 20;
  for (std::size_t i = 0; i < cluster.node_count(); ++i) {
    ASSERT_EQ(cluster.deliveries(i).size(), expected) << "node " << i;
  }
  // Identical delivery order everywhere (agreed / total order).
  const auto& reference = cluster.deliveries(0);
  for (std::size_t i = 1; i < cluster.node_count(); ++i) {
    const auto& d = cluster.deliveries(i);
    for (std::size_t k = 0; k < expected; ++k) {
      ASSERT_EQ(d[k].seq, reference[k].seq) << "node " << i << " position " << k;
      ASSERT_EQ(d[k].origin, reference[k].origin);
      ASSERT_EQ(d[k].payload, reference[k].payload);
    }
  }
  // No spurious fault reports on healthy networks.
  EXPECT_TRUE(cluster.faults().empty());
}

INSTANTIATE_TEST_SUITE_P(AllStyles, SmokeTest,
                         ::testing::Values(api::ReplicationStyle::kNone,
                                           api::ReplicationStyle::kActive,
                                           api::ReplicationStyle::kPassive,
                                           api::ReplicationStyle::kActivePassive),
                         [](const auto& info) {
                           switch (info.param) {
                             case api::ReplicationStyle::kNone: return "None";
                             case api::ReplicationStyle::kActive: return "Active";
                             case api::ReplicationStyle::kPassive: return "Passive";
                             case api::ReplicationStyle::kActivePassive:
                               return "ActivePassive";
                           }
                           return "Unknown";
                         });

TEST(Smoke, SaturationDriverDeliversContinuously) {
  ClusterConfig cfg;
  cfg.node_count = 4;
  cfg.network_count = 2;
  cfg.style = api::ReplicationStyle::kActive;
  cfg.record_payloads = false;
  SimCluster cluster(cfg);
  cluster.start_all();

  SaturationDriver driver(cluster, {.message_size = 512, .queue_target = 64});
  driver.start();
  cluster.run_for(Duration{200'000});  // 200 ms simulated

  EXPECT_GT(cluster.delivered_count(0), 500u);
  // All nodes deliver the same count (same totally-ordered stream).
  for (std::size_t i = 1; i < 4; ++i) {
    EXPECT_NEAR(static_cast<double>(cluster.delivered_count(i)),
                static_cast<double>(cluster.delivered_count(0)),
                static_cast<double>(cluster.delivered_count(0)) * 0.05);
  }
}

TEST(Smoke, LargeMessagesFragmentAndReassemble) {
  ClusterConfig cfg;
  cfg.node_count = 3;
  cfg.network_count = 2;
  cfg.style = api::ReplicationStyle::kPassive;
  SimCluster cluster(cfg);
  cluster.start_all();

  Bytes big(10'000);
  for (std::size_t i = 0; i < big.size(); ++i) big[i] = std::byte(i % 251);
  ASSERT_TRUE(cluster.node(1).send(big).is_ok());
  cluster.run_for(Duration{300'000});

  for (std::size_t i = 0; i < 3; ++i) {
    ASSERT_EQ(cluster.deliveries(i).size(), 1u) << "node " << i;
    EXPECT_EQ(cluster.deliveries(i)[0].payload, big);
    EXPECT_EQ(cluster.deliveries(i)[0].origin, 1u);
  }
}

TEST(Smoke, EmptyMessageIsDelivered) {
  ClusterConfig cfg;
  cfg.node_count = 2;
  cfg.style = api::ReplicationStyle::kActive;
  SimCluster cluster(cfg);
  cluster.start_all();
  ASSERT_TRUE(cluster.node(0).send({}).is_ok());
  cluster.run_for(Duration{100'000});
  ASSERT_EQ(cluster.deliveries(1).size(), 1u);
  EXPECT_TRUE(cluster.deliveries(1)[0].payload.empty());
}

}  // namespace
}  // namespace totem::harness

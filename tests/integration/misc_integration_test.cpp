// Assorted integration coverage: the cross-network reorder premise the
// paper's Fig. 1 rests on, cluster-wide safe-watermark semantics, large
// rings, single-network degenerate cases, and the UDP transport's loss
// injection driving real retransmissions.
#include <gtest/gtest.h>

#include "api/node.h"
#include "harness/drivers.h"
#include "harness/sim_cluster.h"
#include "net/reactor.h"
#include "net/udp_transport.h"

namespace totem::harness {
namespace {

TEST(CrossNetworkReorder, LaterSendOnFastNetworkOvertakesEarlierSlowOne) {
  sim::Simulator sim;
  net::SimNetwork::Params slow_params;
  slow_params.base_latency = Duration{500};
  slow_params.latency_jitter = Duration{0};
  net::SimNetwork fast(sim, 0);
  net::SimNetwork slow(sim, 1, slow_params);
  net::SimHost a(sim, 0), b(sim, 1);
  auto& a_fast = fast.attach(a);
  auto& a_slow = slow.attach(a);
  auto& b_fast = fast.attach(b);
  auto& b_slow = slow.attach(b);

  std::vector<std::pair<NetworkId, std::string>> arrivals;
  auto record = [&](net::ReceivedPacket&& p) {
    arrivals.emplace_back(p.network, to_string(p.data));
  };
  b_fast.set_rx_handler(record);
  b_slow.set_rx_handler(record);

  a_slow.broadcast(to_bytes("first-slow"));   // sent first, slow path
  a_fast.broadcast(to_bytes("second-fast"));  // sent second, fast path
  sim.run_for(Duration{10'000});

  ASSERT_EQ(arrivals.size(), 2u);
  EXPECT_EQ(arrivals[0].second, "second-fast") << "fast copy must overtake";
  EXPECT_EQ(arrivals[1].second, "first-slow");
}

TEST(SafeWatermark, ClusterWideSemantics) {
  // The watermark at any node never exceeds what every node has delivered,
  // and converges to the full stream on an idle ring.
  ClusterConfig cfg;
  cfg.node_count = 4;
  cfg.network_count = 2;
  cfg.style = api::ReplicationStyle::kActive;
  SimCluster cluster(cfg);

  std::vector<SeqNum> watermarks(4, 0);
  for (NodeId i = 0; i < 4; ++i) {
    cluster.node(i).ring().set_safe_watermark_handler(
        [&watermarks, i](SeqNum s) { watermarks[i] = s; });
  }
  cluster.start_all();
  for (int k = 0; k < 30; ++k) {
    ASSERT_TRUE(cluster.node(k % 4).send(Bytes(100, std::byte(k))).is_ok());
  }
  cluster.run_for(Duration{50'000});
  // Mid-flight: each node's watermark is at most its own aru.
  for (NodeId i = 0; i < 4; ++i) {
    EXPECT_LE(watermarks[i], cluster.node(i).ring().my_aru());
  }
  cluster.run_for(Duration{500'000});
  for (NodeId i = 0; i < 4; ++i) {
    EXPECT_EQ(watermarks[i], 30u) << "idle ring must make everything safe";
    EXPECT_EQ(cluster.node(i).ring().safe_up_to(), 30u);
  }
}

TEST(SafeWatermark, LossDelaysSafetyButNotDelivery) {
  ClusterConfig cfg;
  cfg.node_count = 3;
  cfg.network_count = 2;
  cfg.style = api::ReplicationStyle::kPassive;
  cfg.seed = 17;
  SimCluster cluster(cfg);
  cluster.network(0).set_loss_rate(0.2);
  cluster.start_all();
  for (int k = 0; k < 20; ++k) {
    ASSERT_TRUE(cluster.node(0).send(Bytes(64, std::byte(k))).is_ok());
  }
  cluster.run_for(Duration{3'000'000});
  for (NodeId i = 0; i < 3; ++i) {
    EXPECT_EQ(cluster.deliveries(i).size(), 20u);
    EXPECT_EQ(cluster.node(i).ring().safe_up_to(), 20u)
        << "retransmissions eventually make everything safe";
  }
}

TEST(LargeRing, TenNodesThreeNetworksActivePassive) {
  ClusterConfig cfg;
  cfg.node_count = 10;
  cfg.network_count = 3;
  cfg.style = api::ReplicationStyle::kActivePassive;
  SimCluster cluster(cfg);
  cluster.start_all();
  for (NodeId i = 0; i < 10; ++i) {
    for (int k = 0; k < 5; ++k) {
      ASSERT_TRUE(
          cluster.node(i).send(to_bytes(std::to_string(i) + ":" + std::to_string(k)))
              .is_ok());
    }
  }
  cluster.run_for(Duration{2'000'000});
  const auto& ref = cluster.deliveries(0);
  ASSERT_EQ(ref.size(), 50u);
  for (NodeId i = 1; i < 10; ++i) {
    const auto& d = cluster.deliveries(i);
    ASSERT_EQ(d.size(), 50u) << "node " << i;
    for (std::size_t k = 0; k < 50; ++k) {
      ASSERT_EQ(d[k].payload, ref[k].payload);
    }
  }
  EXPECT_TRUE(cluster.faults().empty());
}

TEST(LargeRing, TwelveNodeCrashAndReform) {
  ClusterConfig cfg;
  cfg.node_count = 12;
  cfg.network_count = 2;
  cfg.style = api::ReplicationStyle::kActive;
  cfg.srp.token_loss_timeout = Duration{100'000};
  cfg.srp.consensus_timeout = Duration{150'000};
  SimCluster cluster(cfg);
  cluster.start_all();
  cluster.run_for(Duration{300'000});
  cluster.crash(7);
  cluster.run_for(Duration{3'000'000});
  std::vector<NodeId> expected;
  for (NodeId i = 0; i < 12; ++i) {
    if (i != 7) expected.push_back(i);
  }
  for (NodeId i = 0; i < 12; ++i) {
    if (i == 7) continue;
    ASSERT_FALSE(cluster.views(i).empty());
    EXPECT_EQ(cluster.views(i).back().view.members, expected) << "node " << i;
  }
}

TEST(SingleNode, AssumedSingletonRingDeliversToSelf) {
  ClusterConfig cfg;
  cfg.node_count = 1;
  cfg.network_count = 2;
  cfg.style = api::ReplicationStyle::kActive;
  SimCluster cluster(cfg);
  cluster.start_all();
  for (int k = 0; k < 5; ++k) {
    ASSERT_TRUE(cluster.node(0).send(to_bytes("solo" + std::to_string(k))).is_ok());
  }
  cluster.run_for(Duration{200'000});
  ASSERT_EQ(cluster.deliveries(0).size(), 5u);
  EXPECT_EQ(cluster.node(0).ring().safe_up_to(), 5u);
}

TEST(UdpLossInjection, TransportLevelLossIsRepairedLive) {
  // Real sockets with 20% send-side loss injected at node 0's network-0
  // transport: the ring must still deliver everything (active replication
  // masks; the SRP repairs any double losses).
  net::Reactor reactor;
  constexpr std::uint16_t kBase = 44100;
  std::vector<std::unique_ptr<net::UdpTransport>> owned;
  std::vector<std::unique_ptr<api::Node>> nodes;
  std::vector<std::vector<std::string>> delivered(3);

  for (NodeId id = 0; id < 3; ++id) {
    std::vector<net::Transport*> ts;
    for (NetworkId n = 0; n < 2; ++n) {
      net::UdpTransport::Config tc;
      tc.network = n;
      tc.local_node = id;
      tc.peers = net::loopback_peers(static_cast<std::uint16_t>(kBase + 100 * n), 3);
      if (id == 0 && n == 0) tc.send_loss_rate = 0.2;
      auto t = net::UdpTransport::create(reactor, tc);
      ASSERT_TRUE(t.is_ok()) << t.status().to_string();
      owned.push_back(std::move(t).take());
      ts.push_back(owned.back().get());
    }
    api::NodeConfig cfg;
    cfg.srp.node_id = id;
    cfg.srp.initial_members = {0, 1, 2};
    cfg.style = api::ReplicationStyle::kActive;
    nodes.push_back(std::make_unique<api::Node>(reactor, ts, cfg));
    nodes.back()->set_deliver_handler([&delivered, id](const srp::DeliveredMessage& m) {
      delivered[id].push_back(to_string(m.payload));
    });
  }
  for (auto& n : nodes) n->start();
  for (int k = 0; k < 10; ++k) {
    ASSERT_TRUE(nodes[0]->send(to_bytes("lossy" + std::to_string(k))).is_ok());
  }
  const TimePoint deadline = reactor.now() + Duration{5'000'000};
  while (reactor.now() < deadline) {
    bool done = true;
    for (const auto& d : delivered) {
      if (d.size() < 10) done = false;
    }
    if (done) break;
    reactor.poll_once(Duration{10'000});
  }
  for (NodeId i = 0; i < 3; ++i) {
    ASSERT_EQ(delivered[i].size(), 10u) << "node " << i;
    EXPECT_EQ(delivered[i], delivered[0]);
  }
}

}  // namespace
}  // namespace totem::harness

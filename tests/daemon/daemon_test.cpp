// Daemon integration tests: real totemd internals (UnixListener + Daemon +
// GroupBus + ThreadedRuntime over loopback UDP) driven by real ipc::Client
// connections — client lifecycle edges included (abrupt disconnect,
// slow-reader eviction, reattach after restart). Port block 45000-45999.
#include "daemon/daemon.h"

#include <gtest/gtest.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <chrono>
#include <cstring>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "api/node.h"
#include "api/runtime.h"
#include "ipc/client.h"
#include "ipc/protocol.h"
#include "net/reactor.h"
#include "net/udp_transport.h"

namespace totem::daemon {
namespace {

using namespace std::chrono_literals;

std::string test_socket_path(std::uint16_t port, NodeId id) {
  return "/tmp/totemd-test-" + std::to_string(::getpid()) + "-" +
         std::to_string(port) + "-" + std::to_string(id) + ".sock";
}

/// One daemon-backed node: reactor + ordering loop + UDP transport + Node +
/// ThreadedRuntime + Daemon, the exact composition totemd_main.cpp runs.
struct DaemonHarness {
  net::Reactor reactor;
  api::OrderingLoop loop;
  std::vector<std::unique_ptr<net::UdpTransport>> owned;
  std::unique_ptr<api::Node> node;
  std::unique_ptr<api::ThreadedRuntime> runtime;
  std::unique_ptr<Daemon> daemon;
  std::string socket_path;
  bool stopped = false;

  DaemonHarness(NodeId id, std::uint32_t count, std::uint16_t base_port,
                Daemon::Config dcfg = {}) {
    net::UdpTransport::Config tc;
    tc.local_node = id;
    tc.peers = net::loopback_peers(base_port, count);
    tc.rx_queue_capacity = 1024;
    tc.tx_queue_capacity = 1024;
    auto t = net::UdpTransport::create(reactor, tc);
    EXPECT_TRUE(t.is_ok()) << t.status().to_string();
    owned.push_back(std::move(t).take());

    api::NodeConfig cfg;
    cfg.srp.node_id = id;
    for (NodeId m = 0; m < count; ++m) cfg.srp.initial_members.push_back(m);
    cfg.style = api::ReplicationStyle::kNone;
    node = std::make_unique<api::Node>(
        loop, std::vector<net::Transport*>{owned.back().get()}, cfg);
    runtime = std::make_unique<api::ThreadedRuntime>(
        reactor, loop, std::vector<net::UdpTransport*>{owned.back().get()});

    socket_path = test_socket_path(base_port, id);
    dcfg.socket_path = socket_path;
    auto d = Daemon::create(
        reactor, loop, *node,
        [this](std::function<void()> fn) { runtime->post(std::move(fn)); },
        std::move(dcfg));
    EXPECT_TRUE(d.is_ok()) << d.status().to_string();
    daemon = std::move(d).take();
  }

  void start() {
    runtime->start();
    runtime->post([this] { node->start(); });
  }

  void stop() {
    if (stopped) return;
    stopped = true;
    daemon->begin_shutdown();
    std::this_thread::sleep_for(30ms);
    runtime->stop();
  }

  ~DaemonHarness() {
    stop();  // both threads joined before any member destructs
  }
};

std::unique_ptr<ipc::Client> connect_retry(const std::string& path,
                                           int attempts = 250) {
  for (int i = 0; i < attempts; ++i) {
    ipc::Client::Options o;
    o.socket_path = path;
    auto c = ipc::Client::connect(std::move(o));
    if (c.is_ok()) return std::move(c).take();
    std::this_thread::sleep_for(20ms);
  }
  return nullptr;
}

struct Rec {
  ipc::ClientRef origin;
  std::uint64_t seq = 0;
  std::string payload;

  friend bool operator==(const Rec& a, const Rec& b) {
    return a.origin == b.origin && a.seq == b.seq && a.payload == b.payload;
  }
};

/// Drain deliveries until `want` arrive or `budget` expires; views and
/// other events are ignored (not lost — tests that need them poll directly).
std::vector<Rec> collect(ipc::Client& c, std::size_t want,
                         std::chrono::seconds budget) {
  std::vector<Rec> got;
  const auto deadline = std::chrono::steady_clock::now() + budget;
  while (got.size() < want && std::chrono::steady_clock::now() < deadline) {
    auto ev = c.poll(50ms);
    if (!ev) continue;
    if (ev->type == ipc::Client::Event::Type::kDeliver) {
      got.push_back(Rec{ev->deliver.origin, ev->deliver.seq,
                        totem::to_string(ev->deliver.payload)});
    }
    if (ev->type == ipc::Client::Event::Type::kDisconnected) break;
  }
  return got;
}

TEST(DaemonTest, TwoClientsOneDaemonSeeTheSameTotalOrder) {
  DaemonHarness h(0, 1, 45000);
  h.start();

  auto a = connect_retry(h.socket_path);
  auto b = connect_retry(h.socket_path);
  ASSERT_TRUE(a && b);
  EXPECT_EQ(a->node(), 0u);
  EXPECT_NE(a->client_id(), b->client_id());
  EXPECT_EQ(a->credits(), 64u);

  ASSERT_TRUE(a->join("g").is_ok());
  ASSERT_TRUE(b->join("g").is_ok());

  constexpr int kEach = 10;
  for (int i = 0; i < kEach; ++i) {
    ASSERT_TRUE(a->send("g", to_bytes("a" + std::to_string(i))).is_ok());
    ASSERT_TRUE(b->send("g", to_bytes("b" + std::to_string(i))).is_ok());
  }

  const auto got_a = collect(*a, 2 * kEach, 10s);
  const auto got_b = collect(*b, 2 * kEach, 10s);
  ASSERT_EQ(got_a.size(), 2u * kEach);
  ASSERT_EQ(got_b.size(), 2u * kEach);
  EXPECT_EQ(got_a, got_b) << "both clients must observe the identical order";
  // Ring seq strictly increases: the total-order witness.
  for (std::size_t i = 1; i < got_a.size(); ++i) {
    EXPECT_GT(got_a[i].seq, got_a[i - 1].seq);
  }

  // Clean leave: the leaver's final event stream shows its own removal.
  ASSERT_TRUE(a->leave("g").is_ok());
  h.stop();

  // Runtime joined: protocol-thread metrics are race-free to read now.
  const auto snap = h.node->metrics().snapshot();
  const auto* connects = snap.find_counter("ipc.connects");
  ASSERT_NE(connects, nullptr);
  EXPECT_EQ(connects->value, 2u);
  const auto* sends = snap.find_counter("ipc.sends");
  ASSERT_NE(sends, nullptr);
  EXPECT_EQ(sends->value, 2u * kEach);
  const auto* joins = snap.find_counter("ipc.client_joins");
  ASSERT_NE(joins, nullptr);
  EXPECT_EQ(joins->value, 2u);
  // Prometheus exposition carries the ipc instruments with the standard
  // name mangling.
  const std::string prom = snap.to_prometheus(R"(node="0")");
  EXPECT_NE(prom.find("totem_ipc_connects"), std::string::npos);
  EXPECT_NE(prom.find("totem_ipc_clients"), std::string::npos);
  EXPECT_NE(prom.find("totem_ipc_credit_stalls"), std::string::npos);
}

TEST(DaemonTest, ClientsOnDifferentNodesAgreeOnOrderAndViews) {
  DaemonHarness h0(0, 2, 45100);
  DaemonHarness h1(1, 2, 45100);
  h0.start();
  h1.start();

  auto a = connect_retry(h0.socket_path);
  auto b = connect_retry(h1.socket_path);
  ASSERT_TRUE(a && b);
  ASSERT_TRUE(a->join("g").is_ok());
  ASSERT_TRUE(b->join("g").is_ok());

  // Wait until both clients see the 2-member view (the CPG sync phase may
  // deliver the peer's membership via re-announcement).
  auto wait_two_members = [](ipc::Client& c) {
    const auto deadline = std::chrono::steady_clock::now() + 10s;
    while (std::chrono::steady_clock::now() < deadline) {
      auto ev = c.poll(50ms);
      if (ev && ev->type == ipc::Client::Event::Type::kView &&
          ev->view.members.size() == 2) {
        return true;
      }
    }
    return false;
  };
  ASSERT_TRUE(wait_two_members(*a)) << "client a never saw the full view";
  ASSERT_TRUE(wait_two_members(*b)) << "client b never saw the full view";

  constexpr int kEach = 25;
  for (int i = 0; i < kEach; ++i) {
    ASSERT_TRUE(a->send("g", to_bytes("a" + std::to_string(i))).is_ok());
    ASSERT_TRUE(b->send("g", to_bytes("b" + std::to_string(i))).is_ok());
  }

  const auto got_a = collect(*a, 2 * kEach, 20s);
  const auto got_b = collect(*b, 2 * kEach, 20s);
  ASSERT_EQ(got_a.size(), 2u * kEach);
  ASSERT_EQ(got_b.size(), 2u * kEach);
  EXPECT_EQ(got_a, got_b)
      << "clients on different nodes must observe the identical total order";

  bool from_node0 = false, from_node1 = false;
  for (const Rec& r : got_a) {
    from_node0 |= r.origin.node == 0;
    from_node1 |= r.origin.node == 1;
  }
  EXPECT_TRUE(from_node0 && from_node1);
}

TEST(DaemonTest, AbruptDisconnectBroadcastsLeave) {
  DaemonHarness h(0, 1, 45200);
  h.start();

  auto a = connect_retry(h.socket_path);
  auto b = connect_retry(h.socket_path);
  ASSERT_TRUE(a && b);
  ASSERT_TRUE(a->join("g").is_ok());
  ASSERT_TRUE(b->join("g").is_ok());
  ASSERT_TRUE(b->send("g", to_bytes("pre-crash")).is_ok());

  const ipc::ClientRef b_ref = b->self();
  b.reset();  // abrupt: socket closes, no LEAVE was ever sent

  // The daemon must broadcast the leave; a's view shows b's removal.
  bool saw_removal = false;
  const auto deadline = std::chrono::steady_clock::now() + 10s;
  while (!saw_removal && std::chrono::steady_clock::now() < deadline) {
    auto ev = a->poll(50ms);
    if (ev && ev->type == ipc::Client::Event::Type::kView) {
      for (const auto& r : ev->view.removed) saw_removal |= r == b_ref;
    }
  }
  EXPECT_TRUE(saw_removal) << "crash cleanup must produce a leave view";
}

TEST(DaemonTest, PartialFrameThenCloseLeavesDaemonHealthy) {
  DaemonHarness h(0, 1, 45250);
  h.start();

  // A raw connection that HELLOs, then dies mid-frame: the deframer holds
  // a partial SEND when EOF lands.
  {
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    std::memcpy(addr.sun_path, h.socket_path.c_str(), h.socket_path.size() + 1);
    const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    ASSERT_GE(fd, 0);
    int rc = -1;
    for (int i = 0; i < 250 && rc != 0; ++i) {
      rc = ::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr));
      if (rc != 0) std::this_thread::sleep_for(20ms);
    }
    ASSERT_EQ(rc, 0);
    const Bytes hello = ipc::encode_hello(ipc::Hello{});
    ASSERT_EQ(::send(fd, hello.data(), hello.size(), MSG_NOSIGNAL),
              static_cast<ssize_t>(hello.size()));
    ipc::SendRequest req;
    req.cookie = 1;
    req.group = "g";
    req.payload = to_bytes("never finishes");
    const Bytes frame = ipc::encode_send(req);
    // Half the frame, then EOF.
    ASSERT_GT(::send(fd, frame.data(), frame.size() / 2, MSG_NOSIGNAL), 0);
    std::this_thread::sleep_for(50ms);
    ::close(fd);
  }

  // The daemon shrugged it off: a well-behaved client works end to end.
  auto c = connect_retry(h.socket_path);
  ASSERT_TRUE(c);
  ASSERT_TRUE(c->join("g").is_ok());
  ASSERT_TRUE(c->send("g", to_bytes("alive")).is_ok());
  const auto got = collect(*c, 1, 10s);
  ASSERT_EQ(got.size(), 1u);
  EXPECT_EQ(got[0].payload, "alive");
}

TEST(DaemonTest, SlowReaderIsEvictedWithoutAffectingPeers) {
  Daemon::Config dcfg;
  // Tiny cap so the wedge trips fast — but keep the worst-case transient
  // burst (credit window * message size, queued by the ordering thread
  // before the reactor flushes) under it, or a HEALTHY reader can trip it.
  dcfg.max_egress_bytes = 16 * 1024;
  dcfg.initial_credits = 8;  // 8 * ~1KB transient << 16 KB cap
  DaemonHarness h(0, 1, 45300, dcfg);
  h.start();

  auto wedged = connect_retry(h.socket_path);
  auto peer = connect_retry(h.socket_path);
  ASSERT_TRUE(wedged && peer);
  ASSERT_TRUE(wedged->join("g").is_ok());
  ASSERT_TRUE(peer->join("g").is_ok());
  // From here the wedged client never reads again.

  // Lock-step: wait for our own delivery before the next send, so the
  // peer's egress queue stays near-empty while the wedge's accumulates the
  // whole stream (~200 KB >> the 16 KB cap).
  const std::string blob(1024, 'x');
  constexpr int kMsgs = 200;
  int sent = 0;
  std::size_t peer_got = 0;
  const auto deadline = std::chrono::steady_clock::now() + 60s;
  while (sent < kMsgs && std::chrono::steady_clock::now() < deadline) {
    const Status s = peer->send("g", to_bytes(blob));
    if (s.is_ok()) {
      ++sent;
    } else {
      ASSERT_EQ(s.code(), StatusCode::kResourceExhausted) << s.to_string();
    }
    while (peer_got < static_cast<std::size_t>(sent) &&
           std::chrono::steady_clock::now() < deadline) {
      auto ev = peer->poll(50ms);
      if (!ev) continue;
      if (ev->type == ipc::Client::Event::Type::kDeliver) ++peer_got;
      ASSERT_NE(ev->type, ipc::Client::Event::Type::kGoodbye)
          << "the healthy peer must never be evicted";
      ASSERT_NE(ev->type, ipc::Client::Event::Type::kDisconnected)
          << "the healthy peer lost its connection";
    }
  }
  ASSERT_EQ(sent, kMsgs);
  EXPECT_EQ(peer_got, static_cast<std::size_t>(kMsgs))
      << "a wedged reader must not cost its peers a single delivery";

  // The wedge finally reads: eviction (GOODBYE slow-reader if the frame
  // squeezed through, otherwise a bare disconnect).
  bool wedged_out = false;
  while (!wedged_out && std::chrono::steady_clock::now() < deadline) {
    auto ev = wedged->poll(50ms);
    if (!ev) continue;
    if (ev->type == ipc::Client::Event::Type::kGoodbye) {
      EXPECT_EQ(ev->goodbye_reason, ipc::GoodbyeReason::kSlowReader);
      wedged_out = true;
    }
    if (ev->type == ipc::Client::Event::Type::kDisconnected) wedged_out = true;
  }
  EXPECT_TRUE(wedged_out);

  h.stop();
  const auto snap = h.node->metrics().snapshot();
  const auto* evictions = snap.find_counter("ipc.evictions_slow_reader");
  ASSERT_NE(evictions, nullptr);
  EXPECT_EQ(evictions->value, 1u);
}

TEST(DaemonTest, ClientFastFailsWhenCreditsRunOutAgainstStalledDaemon) {
  // A fake daemon that grants 2 credits and never returns any: the client
  // must fail fast with RESOURCE_EXHAUSTED, never block.
  const std::string path = test_socket_path(45350, 9);
  ::unlink(path.c_str());
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
  const int lfd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  ASSERT_GE(lfd, 0);
  ASSERT_EQ(::bind(lfd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)), 0);
  ASSERT_EQ(::listen(lfd, 1), 0);

  std::thread server([lfd] {
    const int fd = ::accept(lfd, nullptr, nullptr);
    if (fd < 0) return;
    ipc::FrameBuffer in;
    char buf[4096];
    bool acked = false;
    for (;;) {
      const ssize_t n = ::read(fd, buf, sizeof(buf));
      if (n <= 0) break;
      in.feed(buf, static_cast<std::size_t>(n));
      while (auto f = in.pop()) {
        if (f->type == ipc::FrameType::kHello && !acked) {
          acked = true;
          ipc::HelloAck ack;
          ack.node = 0;
          ack.client_id = 1;
          ack.initial_credits = 2;
          ack.max_message_bytes = 4096;
          const Bytes reply = ipc::encode_hello_ack(ack);
          (void)::send(fd, reply.data(), reply.size(), MSG_NOSIGNAL);
        }
        // SENDs are swallowed; no CREDIT ever comes back.
      }
    }
    ::close(fd);
  });

  ipc::Client::Options o;
  o.socket_path = path;
  auto client = ipc::Client::connect(std::move(o));
  ASSERT_TRUE(client.is_ok()) << client.status().to_string();
  ipc::Client& c = *client.value();
  EXPECT_EQ(c.credits(), 2u);
  EXPECT_TRUE(c.send("g", to_bytes("1")).is_ok());
  EXPECT_TRUE(c.send("g", to_bytes("2")).is_ok());
  const auto before = std::chrono::steady_clock::now();
  const Status s = c.send("g", to_bytes("3"));
  EXPECT_EQ(s.code(), StatusCode::kResourceExhausted) << s.to_string();
  EXPECT_LT(std::chrono::steady_clock::now() - before, 1s) << "must not block";

  client.value().reset();  // closes the socket; server thread sees EOF
  server.join();
  ::close(lfd);
  ::unlink(path.c_str());
}

TEST(DaemonTest, ClientReattachesAfterDaemonRestart) {
  const std::uint16_t port = 45400;
  auto h = std::make_unique<DaemonHarness>(0, 1, port);
  const std::string path = h->socket_path;
  h->start();

  auto c = connect_retry(path);
  ASSERT_TRUE(c);
  ASSERT_TRUE(c->join("g").is_ok());
  ASSERT_TRUE(c->send("g", to_bytes("before")).is_ok());
  ASSERT_EQ(collect(*c, 1, 10s).size(), 1u);

  // Restart: tear the whole node down, bring a fresh one up on the same
  // socket path (a new totemd process in miniature).
  h.reset();
  h = std::make_unique<DaemonHarness>(0, 1, port);
  h->start();

  // The client detects the death...
  bool disconnected = false;
  const auto deadline = std::chrono::steady_clock::now() + 10s;
  while (!disconnected && std::chrono::steady_clock::now() < deadline) {
    auto ev = c->poll(50ms);
    if (ev && (ev->type == ipc::Client::Event::Type::kDisconnected ||
               ev->type == ipc::Client::Event::Type::kGoodbye)) {
      disconnected = true;
    }
  }
  ASSERT_TRUE(disconnected);
  EXPECT_EQ(c->send("g", to_bytes("x")).code(), StatusCode::kUnavailable);

  // ...and reattaches: fresh identity, groups re-joined automatically.
  Status rc = Status::ok();
  for (int i = 0; i < 250; ++i) {
    rc = c->reconnect();
    if (rc.is_ok()) break;
    std::this_thread::sleep_for(20ms);
  }
  ASSERT_TRUE(rc.is_ok()) << rc.to_string();
  // Note: client ids are per-daemon-instance, so a restarted daemon may
  // reuse the numeric id — peers still observe an explicit leave+join pair.
  ASSERT_TRUE(c->send("g", to_bytes("after")).is_ok());
  const auto got = collect(*c, 1, 10s);
  ASSERT_EQ(got.size(), 1u);
  EXPECT_EQ(got[0].payload, "after");
}

}  // namespace
}  // namespace totem::daemon

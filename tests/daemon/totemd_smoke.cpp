// Tier-1 smoke test for the totemd BINARY (not the library): spawn a real
// daemon process on a 1-node ring, attach two real clients, check ordered
// delivery, and verify clean SIGTERM shutdown. Usage: totemd_smoke <totemd>.
// Port 46500; exits non-zero with a message on any failure.
#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <thread>
#include <vector>

#include "ipc/client.h"

using namespace std::chrono_literals;

namespace {

[[noreturn]] void die(const std::string& why) {
  std::fprintf(stderr, "totemd_smoke: FAIL: %s\n", why.c_str());
  std::exit(1);
}

std::unique_ptr<totem::ipc::Client> connect_retry(const std::string& path) {
  for (int i = 0; i < 250; ++i) {
    totem::ipc::Client::Options o;
    o.socket_path = path;
    auto c = totem::ipc::Client::connect(std::move(o));
    if (c.is_ok()) return std::move(c).take();
    std::this_thread::sleep_for(20ms);
  }
  die("could not connect to " + path);
}

struct Rec {
  totem::ipc::ClientRef origin;
  std::uint64_t seq = 0;
  std::string payload;
  friend bool operator==(const Rec& a, const Rec& b) {
    return a.origin == b.origin && a.seq == b.seq && a.payload == b.payload;
  }
};

std::vector<Rec> collect(totem::ipc::Client& c, std::size_t want) {
  std::vector<Rec> got;
  const auto deadline = std::chrono::steady_clock::now() + 20s;
  while (got.size() < want && std::chrono::steady_clock::now() < deadline) {
    auto ev = c.poll(50ms);
    if (ev && ev->type == totem::ipc::Client::Event::Type::kDeliver) {
      got.push_back(Rec{ev->deliver.origin, ev->deliver.seq,
                        totem::to_string(ev->deliver.payload)});
    }
  }
  return got;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc != 2) die("usage: totemd_smoke <path-to-totemd>");
  const std::string totemd = argv[1];
  const std::string socket =
      "/tmp/totemd-smoke-" + std::to_string(::getpid()) + ".sock";

  const pid_t pid = ::fork();
  if (pid < 0) die("fork failed");
  if (pid == 0) {
    const std::string sock_arg = "--socket=" + socket;
    ::execl(totemd.c_str(), totemd.c_str(), sock_arg.c_str(), "--node=0",
            "--nodes=1", "--base-port=46500", "--run-for-ms=60000",
            static_cast<char*>(nullptr));
    std::perror("execl");
    std::_Exit(127);
  }

  {
    auto a = connect_retry(socket);
    auto b = connect_retry(socket);
    if (a->node() != 0) die("unexpected node id in HELLO_ACK");
    if (a->client_id() == b->client_id()) die("duplicate client ids");

    if (!a->join("smoke").is_ok()) die("client a join failed");
    if (!b->join("smoke").is_ok()) die("client b join failed");

    constexpr int kEach = 10;
    for (int i = 0; i < kEach; ++i) {
      if (!a->send("smoke", totem::to_bytes("a" + std::to_string(i))).is_ok())
        die("client a send failed");
      if (!b->send("smoke", totem::to_bytes("b" + std::to_string(i))).is_ok())
        die("client b send failed");
    }

    const auto got_a = collect(*a, 2 * kEach);
    const auto got_b = collect(*b, 2 * kEach);
    if (got_a.size() != 2 * kEach) die("client a missed deliveries");
    if (got_b.size() != 2 * kEach) die("client b missed deliveries");
    if (!(got_a == got_b)) die("clients observed different delivery orders");

    if (!a->leave("smoke").is_ok()) die("client a leave failed");
  }  // sockets closed before the daemon is told to exit

  if (::kill(pid, SIGTERM) != 0) die("kill(SIGTERM) failed");
  int status = 0;
  const auto deadline = std::chrono::steady_clock::now() + 10s;
  for (;;) {
    const pid_t r = ::waitpid(pid, &status, WNOHANG);
    if (r == pid) break;
    if (r < 0) die("waitpid failed");
    if (std::chrono::steady_clock::now() > deadline) {
      ::kill(pid, SIGKILL);
      die("totemd did not exit on SIGTERM");
    }
    std::this_thread::sleep_for(20ms);
  }
  if (!WIFEXITED(status) || WEXITSTATUS(status) != 0) {
    die("totemd exited uncleanly (status " + std::to_string(status) + ")");
  }

  ::unlink(socket.c_str());
  std::printf("totemd_smoke: PASS\n");
  return 0;
}

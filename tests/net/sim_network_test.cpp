#include "net/sim_network.h"

#include <gtest/gtest.h>

#include <array>

namespace totem::net {
namespace {

struct NetFixture : ::testing::Test {
  sim::Simulator sim{1};
  SimNetwork::Params params;

  std::unique_ptr<SimNetwork> network;
  std::vector<std::unique_ptr<SimHost>> hosts;
  std::vector<SimTransport*> transports;
  std::vector<std::vector<ReceivedPacket>> received;

  void build(std::size_t n, SimNetwork::Params p = {}) {
    params = p;
    network = std::make_unique<SimNetwork>(sim, 0, params);
    received.resize(n);
    for (std::size_t i = 0; i < n; ++i) {
      hosts.push_back(std::make_unique<SimHost>(sim, static_cast<NodeId>(i)));
      transports.push_back(&network->attach(*hosts[i]));
      transports[i]->set_rx_handler([this, i](ReceivedPacket&& p) {
        received[i].push_back(std::move(p));
      });
    }
  }

  static Bytes packet(std::size_t size, std::byte fill = std::byte{1}) {
    return Bytes(size, fill);
  }
};

TEST_F(NetFixture, BroadcastReachesAllOthersButNotSender) {
  build(4);
  transports[0]->broadcast(packet(100));
  sim.run_for(Duration{10'000});
  EXPECT_TRUE(received[0].empty());
  for (int i = 1; i < 4; ++i) {
    ASSERT_EQ(received[i].size(), 1u) << "node " << i;
    EXPECT_EQ(received[i][0].source, 0u);
    EXPECT_EQ(received[i][0].data.size(), 100u);
    EXPECT_EQ(received[i][0].network, 0);
  }
}

TEST_F(NetFixture, UnicastReachesOnlyDestination) {
  build(4);
  transports[1]->unicast(3, packet(64));
  sim.run_for(Duration{10'000});
  EXPECT_TRUE(received[0].empty());
  EXPECT_TRUE(received[2].empty());
  ASSERT_EQ(received[3].size(), 1u);
  EXPECT_EQ(received[3][0].source, 1u);
}

TEST_F(NetFixture, FifoPerSenderReceiverPair) {
  build(2);
  for (int i = 0; i < 50; ++i) {
    transports[0]->broadcast(packet(10, std::byte(i)));
  }
  sim.run_for(Duration{100'000});
  ASSERT_EQ(received[1].size(), 50u);
  for (int i = 0; i < 50; ++i) {
    EXPECT_EQ(received[1][i].data[0], std::byte(i));
  }
}

TEST_F(NetFixture, TotalFailureDropsEverything) {
  build(2);
  network->fail();
  transports[0]->broadcast(packet(10));
  sim.run_for(Duration{10'000});
  EXPECT_TRUE(received[1].empty());
  EXPECT_EQ(network->stats().dropped_fault, 1u);

  network->recover();
  transports[0]->broadcast(packet(10));
  sim.run_for(Duration{10'000});
  EXPECT_EQ(received[1].size(), 1u);
}

TEST_F(NetFixture, SendFaultSilencesOneNode) {
  build(3);
  network->set_send_fault(0, true);
  transports[0]->broadcast(packet(10));
  transports[1]->broadcast(packet(10));
  sim.run_for(Duration{10'000});
  // Node 0's packet went nowhere; node 1's arrived everywhere else.
  ASSERT_EQ(received[2].size(), 1u);
  EXPECT_EQ(received[2][0].source, 1u);
  EXPECT_EQ(received[0].size(), 1u);  // node 0 can still receive
}

TEST_F(NetFixture, RecvFaultDeafensOneNode) {
  build(3);
  network->set_recv_fault(2, true);
  transports[0]->broadcast(packet(10));
  sim.run_for(Duration{10'000});
  EXPECT_EQ(received[1].size(), 1u);
  EXPECT_TRUE(received[2].empty());
}

TEST_F(NetFixture, LinkLossIsDirectional) {
  build(2);
  network->set_link_loss(0, 1, 1.0);
  transports[0]->broadcast(packet(10));
  transports[1]->broadcast(packet(10));
  sim.run_for(Duration{10'000});
  EXPECT_TRUE(received[1].empty());
  EXPECT_EQ(received[0].size(), 1u);  // reverse direction unaffected
  network->set_link_loss(0, 1, std::nullopt);
  transports[0]->broadcast(packet(10));
  sim.run_for(Duration{10'000});
  EXPECT_EQ(received[1].size(), 1u);
}

TEST_F(NetFixture, PartitionSplitsTheNetwork) {
  build(4);
  network->set_partition({{0, 1}, {2, 3}});
  transports[0]->broadcast(packet(10));
  transports[2]->broadcast(packet(10));
  sim.run_for(Duration{10'000});
  EXPECT_EQ(received[1].size(), 1u);
  EXPECT_EQ(received[3].size(), 1u);
  EXPECT_EQ(received[1][0].source, 0u);
  EXPECT_EQ(received[3][0].source, 2u);
  // Nothing crossed the partition.
  for (const auto& p : received[0]) EXPECT_NE(p.source, 2u);
  for (const auto& p : received[1]) EXPECT_NE(p.source, 2u);

  network->clear_partition();
  transports[0]->broadcast(packet(10));
  sim.run_for(Duration{10'000});
  EXPECT_EQ(received[3].size(), 2u);
}

TEST_F(NetFixture, RandomLossDropsApproximatelyTheConfiguredFraction) {
  SimNetwork::Params p;
  p.loss_rate = 0.25;
  build(2, p);
  for (int i = 0; i < 2000; ++i) {
    transports[0]->broadcast(packet(10));
    sim.run_for(Duration{200});
  }
  sim.run_for(Duration{100'000});
  const double delivered = static_cast<double>(received[1].size()) / 2000.0;
  EXPECT_NEAR(delivered, 0.75, 0.05);
}

TEST_F(NetFixture, TransmissionTimeMatchesFraming) {
  build(1);
  // 100 Mbit/s = 12.5 bytes/us. A 1000-byte packet is one frame:
  // (1000 + overhead) bytes * 8 bits / 100 Mbit/s.
  const auto t = network->transmission_time(1000);
  const double expected_us = (1000.0 + params.frame_overhead) * 8.0 / 100.0;
  EXPECT_NEAR(static_cast<double>(t.count()), expected_us, 1.0);
}

TEST_F(NetFixture, LargePacketsPayOverheadPerFrame) {
  build(1);
  const auto one = network->wire_size(params.max_frame_payload);
  const auto two = network->wire_size(params.max_frame_payload + 1);
  EXPECT_EQ(one, params.max_frame_payload + params.frame_overhead);
  EXPECT_EQ(two, params.max_frame_payload + 1 + 2 * params.frame_overhead);
}

TEST_F(NetFixture, WireSerializationDelaysBackToBackPackets) {
  build(2);
  // Two back-to-back 1400-byte packets: the second must finish one
  // transmission time after the first.
  transports[0]->broadcast(packet(1400));
  transports[0]->broadcast(packet(1400));
  sim.run_for(Duration{10'000});
  ASSERT_EQ(received[1].size(), 2u);
  EXPECT_GE(network->stats().wire_busy.count(), 2 * network->transmission_time(1400).count());
}

TEST_F(NetFixture, RxBufferOverflowDrops) {
  // A receiver whose CPU is far slower than the wire overflows its 64 KB
  // socket buffer, as the paper's Linux 2.2 hosts would.
  SimNetwork::Params p;
  p.rx_buffer_bytes = 8 * 1024;
  network = std::make_unique<SimNetwork>(sim, 0, p);
  HostCostModel slow;
  slow.recv_packet_cost = Duration{5'000};  // 5 ms per packet
  hosts.push_back(std::make_unique<SimHost>(sim, 0));
  hosts.push_back(std::make_unique<SimHost>(sim, 1, slow));
  transports.push_back(&network->attach(*hosts[0]));
  transports.push_back(&network->attach(*hosts[1]));
  received.resize(2);
  transports[1]->set_rx_handler(
      [this](ReceivedPacket&& pk) { received[1].push_back(std::move(pk)); });

  for (int i = 0; i < 500; ++i) {
    transports[0]->broadcast(packet(1400));
  }
  sim.run_for(Duration{10'000'000});
  EXPECT_GT(network->stats().dropped_overflow, 0u);
  EXPECT_LT(received[1].size(), 500u);
  // Counter parity: the same drop must appear on the endpoint's ledger too,
  // exactly as UdpTransport surfaces kernel-level receive drops.
  EXPECT_EQ(transports[1]->stats().rx_dropped, network->stats().dropped_overflow);
}

TEST_F(NetFixture, StatsAccumulate) {
  build(3);
  transports[0]->broadcast(packet(100));
  transports[1]->unicast(0, packet(50));
  sim.run_for(Duration{10'000});
  EXPECT_EQ(network->stats().packets_sent, 2u);
  EXPECT_EQ(network->stats().deliveries, 3u);  // 2 broadcast + 1 unicast
  EXPECT_EQ(transports[0]->stats().packets_sent, 1u);
  EXPECT_EQ(transports[0]->stats().packets_received, 1u);
  EXPECT_EQ(transports[0]->stats().bytes_sent, 100u);
}

TEST_F(NetFixture, CaptureRecordsSubmittedPackets) {
  build(3);
  network->start_capture(16);
  transports[0]->broadcast(packet(100));
  transports[1]->unicast(2, packet(50));
  sim.run_for(Duration{10'000});
  const auto& cap = network->capture();
  ASSERT_EQ(cap.size(), 2u);
  EXPECT_EQ(cap[0].src, 0u);
  EXPECT_EQ(cap[0].dst, kInvalidNode) << "broadcast marker";
  EXPECT_EQ(cap[0].size, 100u);
  EXPECT_EQ(cap[0].verdict, SimNetwork::CapturedPacket::Verdict::kSent);
  EXPECT_EQ(cap[1].src, 1u);
  EXPECT_EQ(cap[1].dst, 2u);
}

TEST_F(NetFixture, CaptureMarksFailedSends) {
  build(2);
  network->start_capture(16);
  network->fail();
  transports[0]->broadcast(packet(10));
  network->recover();
  network->set_send_fault(1, true);
  transports[1]->broadcast(packet(10));
  sim.run_for(Duration{10'000});
  const auto& cap = network->capture();
  ASSERT_EQ(cap.size(), 2u);
  EXPECT_EQ(cap[0].verdict, SimNetwork::CapturedPacket::Verdict::kDroppedFailed);
  EXPECT_EQ(cap[1].verdict, SimNetwork::CapturedPacket::Verdict::kDroppedFailed);
}

TEST_F(NetFixture, LinkProfilePresetsResolveByName) {
  ASSERT_TRUE(link_profile_preset("wan").has_value());
  EXPECT_GT(link_profile_preset("wan")->latency.count(), 0);
  ASSERT_TRUE(link_profile_preset("gray_failure").has_value());
  EXPECT_GT(link_profile_preset("gray_failure")->loss, 0.0);
  ASSERT_TRUE(link_profile_preset("flapping").has_value());
  ASSERT_TRUE(link_profile_preset("asymmetric_loss").has_value());
  ASSERT_TRUE(link_profile_preset("clean").has_value());
  EXPECT_FALSE(link_profile_preset("no-such-profile").has_value());
}

TEST_F(NetFixture, PerDirectionProfileDegradesOnlyThatDirection) {
  build(2);
  LinkProfile slow;
  slow.latency = Duration{50'000};
  slow.jitter = Duration{0};
  network->set_link_profile(0, 1, slow);

  transports[0]->broadcast(packet(10));
  transports[1]->broadcast(packet(10));
  sim.run_for(Duration{10'000});
  // Reverse direction rides the clean default; 0 -> 1 is still in flight.
  EXPECT_EQ(received[0].size(), 1u);
  EXPECT_TRUE(received[1].empty());
  sim.run_for(Duration{100'000});
  EXPECT_EQ(received[1].size(), 1u);

  network->set_link_profile(0, 1, std::nullopt);
  transports[0]->broadcast(packet(10));
  sim.run_for(Duration{10'000});
  EXPECT_EQ(received[1].size(), 2u) << "cleared profile restores the default";
}

TEST_F(NetFixture, ReorderPathBypassesTheFifoClamp) {
  build(2);
  LinkProfile p;
  p.latency = Duration{5};
  p.jitter = Duration{0};
  p.reorder_rate = 0.5;
  p.reorder_window = Duration{5'000};
  network->set_default_profile(p);

  for (int i = 0; i < 50; ++i) {
    transports[0]->broadcast(packet(10, std::byte(i)));
  }
  sim.run_for(Duration{100'000});
  ASSERT_EQ(received[1].size(), 50u) << "reordering never loses packets";
  EXPECT_GT(network->stats().reordered, 0u);
  // Held-back packets skip the per-link FIFO clamp, so later sends overtake
  // them — the arrival sequence must contain at least one inversion.
  bool inverted = false;
  for (std::size_t i = 1; i < received[1].size(); ++i) {
    if (received[1][i].data[0] < received[1][i - 1].data[0]) inverted = true;
  }
  EXPECT_TRUE(inverted) << "no inversion despite " << network->stats().reordered
                        << " reordered packets";
}

TEST_F(NetFixture, DuplicationRedeliversAPooledCopy) {
  build(2);
  LinkProfile p;
  p.jitter = Duration{0};
  p.duplicate_rate = 1.0;
  network->set_default_profile(p);

  for (int i = 0; i < 20; ++i) {
    transports[0]->broadcast(packet(10, std::byte(i)));
  }
  sim.run_for(Duration{100'000});
  EXPECT_EQ(network->stats().duplicated, 20u);
  ASSERT_EQ(received[1].size(), 40u) << "every packet arrives exactly twice";
  // The duplicate is a refcount on the same buffer: payloads match.
  std::array<int, 20> copies{};
  for (const auto& pk : received[1]) {
    ASSERT_EQ(pk.data.size(), 10u);
    ++copies[static_cast<int>(pk.data[0])];
  }
  for (int i = 0; i < 20; ++i) EXPECT_EQ(copies[i], 2) << "payload " << i;
}

TEST_F(NetFixture, CaptureReconcilesWithLossCounter) {
  build(2);
  network->start_capture(4096);
  network->set_loss_rate(0.5);
  for (int i = 0; i < 200; ++i) {
    transports[0]->broadcast(packet(10));
    sim.run_for(Duration{200});
  }
  sim.run_for(Duration{100'000});

  std::size_t sent = 0, lost = 0;
  for (const auto& c : network->capture()) {
    if (c.verdict == SimNetwork::CapturedPacket::Verdict::kSent) ++sent;
    if (c.verdict == SimNetwork::CapturedPacket::Verdict::kDroppedLoss) ++lost;
  }
  EXPECT_EQ(sent, 200u) << "every frame crossed the wire";
  EXPECT_GT(lost, 0u);
  // Per-receiver loss verdicts reconcile with the stats ledger and with
  // what the receiver actually saw.
  EXPECT_EQ(lost, network->stats().dropped_loss);
  EXPECT_EQ(received[1].size() + lost, 200u);
}

TEST_F(NetFixture, CaptureRingIsBounded) {
  build(2);
  network->start_capture(4);
  for (int i = 0; i < 10; ++i) transports[0]->broadcast(packet(10));
  EXPECT_EQ(network->capture().size(), 4u);
  EXPECT_EQ(network->capture_overwritten(), 6u);
  network->stop_capture();
  transports[0]->broadcast(packet(10));
  EXPECT_EQ(network->capture().size(), 4u) << "stopped capture records nothing";
}

}  // namespace
}  // namespace totem::net

// TelemetryServer unit tests: a real TCP client thread scrapes the server
// while the reactor loop runs on the test thread, covering the parse path,
// the deferred cross-thread reply path, and the writable-fd drain for
// responses larger than one send().
#include "net/telemetry_server.h"

#include <arpa/inet.h>
#include <gtest/gtest.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <memory>
#include <string>
#include <thread>
#include <utility>

namespace totem::net {
namespace {

// Blocking one-shot HTTP exchange (the server closes after the response).
std::string http_exchange(std::uint16_t port, const std::string& raw) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return "<socket failed>";
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr) != 0) {
    ::close(fd);
    return "<connect failed>";
  }
  std::size_t sent = 0;
  while (sent < raw.size()) {
    const ssize_t n = ::send(fd, raw.data() + sent, raw.size() - sent, 0);
    if (n <= 0) break;
    sent += static_cast<std::size_t>(n);
  }
  std::string resp;
  char buf[4096];
  for (;;) {
    const ssize_t n = ::recv(fd, buf, sizeof buf, 0);
    if (n <= 0) break;
    resp.append(buf, static_cast<std::size_t>(n));
  }
  ::close(fd);
  return resp;
}

// Run the exchange on a client thread while this thread drives the reactor.
std::string scrape(Reactor& reactor, std::uint16_t port, const std::string& raw) {
  std::string resp;
  std::atomic<bool> done{false};
  std::thread client([&] {
    resp = http_exchange(port, raw);
    done.store(true, std::memory_order_release);
  });
  while (!done.load(std::memory_order_acquire)) {
    reactor.poll_once(Duration{5'000});
  }
  client.join();
  return resp;
}

TEST(TelemetryServer, ServesImmediateHandlerReply) {
  Reactor reactor;
  auto server = TelemetryServer::create(
      reactor, {}, [](const TelemetryServer::Request& req, auto reply) {
        EXPECT_EQ(req.method, "GET");
        TelemetryServer::Response r;
        r.body = "target=" + req.target + "\n";
        reply(std::move(r));
      });
  ASSERT_TRUE(server.is_ok()) << server.status().to_string();
  auto srv = std::move(server).take();
  ASSERT_NE(srv->port(), 0) << "ephemeral port resolved";

  const std::string resp =
      scrape(reactor, srv->port(), "GET /hello HTTP/1.0\r\n\r\n");
  EXPECT_EQ(resp.rfind("HTTP/1.0 200 OK\r\n", 0), 0u) << resp;
  EXPECT_NE(resp.find("Content-Type: text/plain; charset=utf-8\r\n"),
            std::string::npos)
      << resp;
  EXPECT_NE(resp.find("Connection: close\r\n"), std::string::npos) << resp;
  EXPECT_NE(resp.find("\r\n\r\ntarget=/hello\n"), std::string::npos) << resp;
  EXPECT_EQ(srv->stats().requests_served, 1u);
  EXPECT_EQ(srv->stats().connections_accepted, 1u);
}

TEST(TelemetryServer, HandlerStatusCodesGetReasonPhrases) {
  Reactor reactor;
  auto server = TelemetryServer::create(
      reactor, {}, [](const TelemetryServer::Request&, auto reply) {
        TelemetryServer::Response r;
        r.status = 404;
        r.body = "nope\n";
        reply(std::move(r));
      });
  ASSERT_TRUE(server.is_ok());
  auto srv = std::move(server).take();
  const std::string resp =
      scrape(reactor, srv->port(), "GET /missing HTTP/1.0\r\n\r\n");
  EXPECT_EQ(resp.rfind("HTTP/1.0 404 Not Found\r\n", 0), 0u) << resp;
}

TEST(TelemetryServer, MalformedRequestLineAnswers400) {
  Reactor reactor;
  bool handler_ran = false;
  auto server = TelemetryServer::create(
      reactor, {}, [&](const TelemetryServer::Request&, auto reply) {
        handler_ran = true;
        reply({});
      });
  ASSERT_TRUE(server.is_ok());
  auto srv = std::move(server).take();
  const std::string resp =
      scrape(reactor, srv->port(), "this is not http\r\n\r\n");
  EXPECT_EQ(resp.rfind("HTTP/1.0 400 Bad Request\r\n", 0), 0u) << resp;
  EXPECT_FALSE(handler_ran);
  EXPECT_EQ(srv->stats().bad_requests, 1u);
}

TEST(TelemetryServer, DeferredReplyCrossesThreadsViaNotify) {
  // The NodeTelemetry shape under ThreadedRuntime: the handler returns
  // without replying, and the response arrives later from another thread.
  Reactor reactor;
  std::function<void(TelemetryServer::Response)> pending;
  std::thread replier;
  auto server = TelemetryServer::create(
      reactor, {}, [&](const TelemetryServer::Request&, auto reply) {
        pending = std::move(reply);
        replier = std::thread([&pending] {
          std::this_thread::sleep_for(std::chrono::milliseconds(20));
          TelemetryServer::Response r;
          r.body = "from the other thread\n";
          pending(std::move(r));
        });
      });
  ASSERT_TRUE(server.is_ok());
  auto srv = std::move(server).take();
  const std::string resp =
      scrape(reactor, srv->port(), "GET /deferred HTTP/1.0\r\n\r\n");
  replier.join();
  EXPECT_EQ(resp.rfind("HTTP/1.0 200 OK\r\n", 0), 0u) << resp;
  EXPECT_NE(resp.find("from the other thread\n"), std::string::npos) << resp;
}

TEST(TelemetryServer, LargeBodyDrainsThroughWritableRegistration) {
  // 1 MiB cannot fit in one send() against default socket buffers, so the
  // tail must drain through the reactor's POLLOUT path.
  constexpr std::size_t kBody = 1 << 20;
  Reactor reactor;
  auto server = TelemetryServer::create(
      reactor, {}, [](const TelemetryServer::Request&, auto reply) {
        TelemetryServer::Response r;
        r.body.assign(kBody, 'x');
        reply(std::move(r));
      });
  ASSERT_TRUE(server.is_ok());
  auto srv = std::move(server).take();
  const std::string resp =
      scrape(reactor, srv->port(), "GET /big HTTP/1.0\r\n\r\n");
  EXPECT_NE(resp.find("Content-Length: 1048576\r\n"), std::string::npos);
  const auto split = resp.find("\r\n\r\n");
  ASSERT_NE(split, std::string::npos);
  EXPECT_EQ(resp.size() - (split + 4), kBody) << "full body arrived";
}

TEST(TelemetryServer, RepliesAfterDestructionAreDropped) {
  Reactor reactor;
  std::function<void(TelemetryServer::Response)> pending;
  {
    auto server = TelemetryServer::create(
        reactor, {}, [&](const TelemetryServer::Request&, auto reply) {
          pending = std::move(reply);  // never answered while alive
        });
    ASSERT_TRUE(server.is_ok());
    auto srv = std::move(server).take();
    // Drive just far enough for the request to get dispatched.
    std::atomic<bool> done{false};
    std::thread client([&, port = srv->port()] {
      (void)http_exchange(port, "GET /never HTTP/1.0\r\n\r\n");
      done.store(true, std::memory_order_release);
    });
    while (!pending) reactor.poll_once(Duration{5'000});
    // Server dies with the reply outstanding; the client sees EOF.
    srv.reset();
    while (!done.load(std::memory_order_acquire)) {
      reactor.poll_once(Duration{5'000});
    }
    client.join();
  }
  // The stored reply closure only holds a weak_ptr: calling it now must be
  // a harmless no-op, not a use-after-free.
  pending(TelemetryServer::Response{});
}

}  // namespace
}  // namespace totem::net

// IoUringTransport (DESIGN.md §15): backend selection/fallback, delivery
// over the multishot-recv + linked-send datapath, truncation accounting,
// queued modes, and teardown soundness (ports must be immediately
// re-bindable — the ring's async cleanup may not leak socket references).
//
// Every datapath test here skips with a clear message when the running
// kernel (or the build) cannot provide io_uring, so the suite stays green
// on older kernels and TOTEM_IO_URING=OFF builds.
#include "net/io_uring_transport.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <string>
#include <vector>

#include "net/datapath.h"
#include "net/reactor.h"
#include "net/udp_transport.h"

namespace totem::net {
namespace {

// Port block 46000-46999 (bench owns 45000-45999; other UDP tests are below
// 44999).
constexpr std::uint16_t kPortDeliver = 46000;
constexpr std::uint16_t kPortFallback = 46100;
constexpr std::uint16_t kPortTrunc = 46200;
constexpr std::uint16_t kPortRxQueue = 46300;
constexpr std::uint16_t kPortQueuedTx = 46400;
constexpr std::uint16_t kPortRebind = 46500;
constexpr std::uint16_t kPortMetrics = 46600;
constexpr std::uint16_t kPortGso = 46700;

#define SKIP_WITHOUT_IO_URING()                                           \
  do {                                                                    \
    if (!io_uring_available()) {                                          \
      GTEST_SKIP() << (io_uring_compiled()                                \
                           ? "io_uring probe failed on this kernel"       \
                           : "io_uring backend not compiled in");         \
    }                                                                     \
  } while (0)

std::unique_ptr<UdpTransport> make_uring(Reactor& reactor, std::uint16_t base,
                                         NodeId node, std::uint32_t count,
                                         UdpTransport::Config cfg = {}) {
  cfg.local_node = node;
  cfg.peers = loopback_peers(base, count);
  cfg.backend = DatapathBackend::kIoUring;
  cfg.require_backend = true;
  auto r = UdpTransport::create(reactor, cfg);
  EXPECT_TRUE(r.is_ok()) << r.status().to_string();
  return r.is_ok() ? std::move(r).take() : nullptr;
}

TEST(IoUringTransport, BroadcastAndUnicastDeliver) {
  SKIP_WITHOUT_IO_URING();
  Reactor reactor;
  auto t0 = make_uring(reactor, kPortDeliver, 0, 4);
  std::vector<std::unique_ptr<UdpTransport>> peers;
  std::vector<std::string> got[4];
  for (NodeId id = 1; id < 4; ++id) {
    peers.push_back(make_uring(reactor, kPortDeliver, id, 4));
    ASSERT_TRUE(peers.back());
    auto* sink = &got[id];
    peers.back()->set_rx_handler(
        [sink](ReceivedPacket&& p) { sink->push_back(to_string(p.data)); });
  }
  ASSERT_TRUE(t0);
  EXPECT_EQ(t0->backend(), DatapathBackend::kIoUring);

  t0->broadcast(to_bytes("ring"));
  t0->unicast(2, to_bytes("tok"));
  reactor.run_for(Duration{300'000});

  for (NodeId id = 1; id < 4; ++id) {
    ASSERT_GE(got[id].size(), 1u) << "peer " << id;
    EXPECT_EQ(got[id][0], "ring");
  }
  ASSERT_EQ(got[2].size(), 2u);
  EXPECT_EQ(got[2][1], "tok");
  EXPECT_EQ(t0->stats().packets_sent, 4u);
  EXPECT_GE(t0->stats().tx_syscall_batches, 1u);
}

TEST(IoUringTransport, UnavailableBackendDegradesUnlessRequired) {
  // A kIoUring request on a platform without it must degrade to mmsg —
  // or fail loudly when the caller pinned the backend.
  Reactor reactor;
  UdpTransport::Config cfg;
  cfg.local_node = 0;
  cfg.peers = loopback_peers(kPortFallback, 2);
  cfg.backend = DatapathBackend::kIoUring;
  auto r = UdpTransport::create(reactor, cfg);
  ASSERT_TRUE(r.is_ok()) << r.status().to_string();
  const DatapathBackend effective = r.value()->backend();
  if (io_uring_available()) {
    EXPECT_EQ(effective, DatapathBackend::kIoUring);
  } else {
    EXPECT_EQ(effective, DatapathBackend::kMmsg);

    UdpTransport::Config pinned = cfg;
    pinned.local_node = 1;
    pinned.require_backend = true;
    auto r2 = UdpTransport::create(reactor, pinned);
    ASSERT_FALSE(r2.is_ok());
    EXPECT_EQ(r2.status().code(), StatusCode::kUnavailable);
  }
}

TEST(IoUringTransport, OversizedDatagramCountsTruncated) {
  SKIP_WITHOUT_IO_URING();
  // A datagram larger than the provided RX buffers must be counted in
  // rx_truncated and dropped — never clipped and handed up as garbage.
  Reactor reactor;
  UdpTransport::Config small_bufs;
  small_bufs.uring_rx_buffer_bytes = 512;
  auto t0 = make_uring(reactor, kPortTrunc, 0, 2);
  auto t1 = make_uring(reactor, kPortTrunc, 1, 2, small_bufs);
  ASSERT_TRUE(t0 && t1);
  std::vector<std::size_t> sizes;
  t1->set_rx_handler([&](ReceivedPacket&& p) { sizes.push_back(p.data.size()); });

  t0->unicast(1, to_bytes(std::string(2000, 'x')));  // > 512-byte RX buffers
  t0->unicast(1, to_bytes("ok"));
  reactor.run_for(Duration{300'000});

  ASSERT_EQ(sizes.size(), 1u) << "only the in-size datagram may deliver";
  EXPECT_EQ(sizes[0], 2u);
  EXPECT_EQ(t1->stats().rx_truncated, 1u);
  EXPECT_EQ(t1->stats().packets_received, 1u);
}

TEST(IoUringTransport, RxQueueModeAndOverflowAccounting) {
  SKIP_WITHOUT_IO_URING();
  Reactor reactor;
  auto t0 = make_uring(reactor, kPortRxQueue, 0, 2);
  UdpTransport::Config tiny;
  tiny.rx_queue_capacity = 2;
  auto t1 = make_uring(reactor, kPortRxQueue, 1, 2, tiny);
  ASSERT_TRUE(t0 && t1);
  ASSERT_TRUE(t1->rx_queued());
  t1->set_rx_handler([](ReceivedPacket&&) {});

  for (int i = 0; i < 6; ++i) t0->unicast(1, to_bytes("x"));
  reactor.run_for(Duration{300'000});  // no dispatch_queued: ring stays full

  EXPECT_EQ(t1->stats().rx_queue_drops, 4u);
  EXPECT_EQ(t1->stats().rx_dropped, 4u);  // same reconciliation as mmsg
  EXPECT_EQ(t1->stats().packets_received, 2u);
  EXPECT_EQ(t1->dispatch_queued(), 2u);
}

TEST(IoUringTransport, QueuedTxDrainsInOrder) {
  SKIP_WITHOUT_IO_URING();
  Reactor reactor;
  UdpTransport::Config queued;
  queued.tx_queue_capacity = 64;
  auto t0 = make_uring(reactor, kPortQueuedTx, 0, 2, queued);
  auto t1 = make_uring(reactor, kPortQueuedTx, 1, 2);
  ASSERT_TRUE(t0 && t1);
  std::vector<std::string> got;
  t1->set_rx_handler([&](ReceivedPacket&& p) { got.push_back(to_string(p.data)); });

  for (int i = 0; i < 20; ++i) t0->unicast(1, to_bytes("q" + std::to_string(i)));
  EXPECT_EQ(t0->stats().packets_sent, 0u);  // still in the TX ring
  reactor.run_for(Duration{500'000});

  ASSERT_EQ(got.size(), 20u);
  for (int i = 0; i < 20; ++i) EXPECT_EQ(got[i], "q" + std::to_string(i));
  EXPECT_EQ(t0->stats().packets_sent, 20u);
}

TEST(IoUringTransport, TeardownReleasesPortsImmediately) {
  SKIP_WITHOUT_IO_URING();
  // The armed multishot recvs hold socket references inside the kernel; a
  // transport that merely closed its fds would leave the ports bound until
  // the ring's asynchronous cleanup ran, so an immediate re-create on the
  // same ports would fail with EADDRINUSE. Three back-to-back generations
  // must all bind cleanly.
  for (int gen = 0; gen < 3; ++gen) {
    Reactor reactor;
    auto t0 = make_uring(reactor, kPortRebind, 0, 2);
    auto t1 = make_uring(reactor, kPortRebind, 1, 2);
    ASSERT_TRUE(t0 && t1) << "generation " << gen;
    std::vector<std::string> got;
    t1->set_rx_handler([&](ReceivedPacket&& p) { got.push_back(to_string(p.data)); });
    t0->unicast(1, to_bytes("gen" + std::to_string(gen)));
    reactor.run_for(Duration{200'000});
    ASSERT_EQ(got.size(), 1u) << "generation " << gen;
    EXPECT_EQ(got[0], "gen" + std::to_string(gen));
  }
}

TEST(IoUringTransport, BatchMetricsCarryBackendLabel) {
  SKIP_WITHOUT_IO_URING();
  Reactor reactor;
  MetricsRegistry metrics;
  UdpTransport::Config cfg;
  cfg.metrics = &metrics;
  auto t0 = make_uring(reactor, kPortMetrics, 0, 2, cfg);
  UdpTransport::Config rxcfg;
  rxcfg.metrics = &metrics;
  auto t1 = make_uring(reactor, kPortMetrics, 1, 2, rxcfg);
  ASSERT_TRUE(t0 && t1);
  int got = 0;
  t1->set_rx_handler([&](ReceivedPacket&&) { ++got; });

  for (int i = 0; i < 4; ++i) t0->unicast(1, to_bytes("m"));
  reactor.run_for(Duration{300'000});
  ASSERT_EQ(got, 4);

  const auto snap = metrics.snapshot();
  const auto* tx = snap.find_histogram("net.tx_batch.net0.io_uring");
  const auto* rx = snap.find_histogram("net.rx_batch.net0.io_uring");
  ASSERT_NE(tx, nullptr);
  ASSERT_NE(rx, nullptr);
  EXPECT_EQ(tx->sum, 4u) << "each sent datagram recorded exactly once";
  EXPECT_EQ(rx->sum, 4u) << "each received datagram recorded exactly once";
}

TEST(IoUringTransport, GsoPackedBurstDeliversInOrderAndCountsOnce) {
  SKIP_WITHOUT_IO_URING();
  // A queued-TX burst of equal-size frames to one destination is the GSO
  // packing path's best case: the I/O thread drains the ring in rounds and
  // each round's run is packed into few UDP_SEGMENT sendmsgs. Regression
  // guards: per-destination FIFO order must survive the packing, and the
  // accounting (packets_sent, tx histogram sum) must count each DATAGRAM
  // exactly once — not once per super-buffer. On kernels without UDP GSO
  // the transport silently emits per-datagram SQEs and every assertion
  // below still holds, so the test needs no GSO-availability probe.
  constexpr int kBurst = 120;
  Reactor reactor;
  MetricsRegistry metrics;
  UdpTransport::Config scfg;
  scfg.tx_queue_capacity = 256;
  scfg.metrics = &metrics;
  auto t0 = make_uring(reactor, kPortGso, 0, 2, scfg);
  auto t1 = make_uring(reactor, kPortGso, 1, 2);
  ASSERT_TRUE(t0 && t1);
  std::vector<std::string> got;
  t1->set_rx_handler([&](ReceivedPacket&& p) { got.push_back(to_string(p.data)); });

  char msg[8];
  for (int i = 0; i < kBurst; ++i) {
    std::snprintf(msg, sizeof(msg), "g%05d", i);  // equal-size: packable
    t0->unicast(1, to_bytes(std::string(msg)));
  }
  reactor.run_for(Duration{500'000});

  ASSERT_EQ(got.size(), static_cast<std::size_t>(kBurst));
  for (int i = 0; i < kBurst; ++i) {
    std::snprintf(msg, sizeof(msg), "g%05d", i);
    ASSERT_EQ(got[i], msg) << "reordered at " << i;
  }
  EXPECT_EQ(t0->stats().packets_sent, static_cast<std::uint64_t>(kBurst));
  EXPECT_EQ(t0->stats().tx_errors, 0u);

  const auto snap = metrics.snapshot();
  const auto* tx = snap.find_histogram("net.tx_batch.net0.io_uring");
  ASSERT_NE(tx, nullptr);
  EXPECT_EQ(tx->sum, static_cast<std::uint64_t>(kBurst))
      << "every datagram in a packed run must be recorded exactly once";
  EXPECT_LT(tx->count, static_cast<std::uint64_t>(kBurst))
      << "the burst should drain in multi-datagram rounds";
}

}  // namespace
}  // namespace totem::net

// UdpTransport batched hot path (DESIGN.md §12): sendmmsg/recvmmsg
// syscall batching, the portable fallback, partial-batch error handling,
// and the single-threaded view of the SPSC queued mode (the threaded view
// lives in tests/api/runtime_test.cpp).
#ifndef _GNU_SOURCE
#define _GNU_SOURCE  // sendmmsg for the short-write injection hook
#endif

#include "net/udp_transport.h"

#include <arpa/inet.h>
#include <gtest/gtest.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <string>
#include <vector>

#include "net/reactor.h"

namespace totem::net {
namespace {

// Port block 43000-43999 (other UDP tests own 41200-42151).
constexpr std::uint16_t kPortFanout = 43000;
constexpr std::uint16_t kPortFallback = 43100;
constexpr std::uint16_t kPortQueuedTx = 43200;
constexpr std::uint16_t kPortPartial = 43300;
constexpr std::uint16_t kPortShort = 43400;
constexpr std::uint16_t kPortRxQueue = 43500;
constexpr std::uint16_t kPortRxDrop = 43600;
constexpr std::uint16_t kPortShortWrite = 43700;
constexpr std::uint16_t kPortEagain = 43800;

std::unique_ptr<UdpTransport> make_transport(Reactor& reactor, std::uint16_t base,
                                             NodeId node, std::uint32_t count,
                                             UdpTransport::Config cfg = {}) {
  cfg.local_node = node;
  cfg.peers = loopback_peers(base, count);
  auto r = UdpTransport::create(reactor, cfg);
  EXPECT_TRUE(r.is_ok()) << r.status().to_string();
  return r.is_ok() ? std::move(r).take() : nullptr;
}

TEST(UdpBatch, BroadcastFanoutIsOneSyscallBatch) {
  Reactor reactor;
  auto t0 = make_transport(reactor, kPortFanout, 0, 5);
  std::vector<std::unique_ptr<UdpTransport>> peers;
  int got = 0;
  for (NodeId id = 1; id < 5; ++id) {
    peers.push_back(make_transport(reactor, kPortFanout, id, 5));
    ASSERT_TRUE(peers.back());
    peers.back()->set_rx_handler([&](ReceivedPacket&&) { ++got; });
  }
  ASSERT_TRUE(t0);

  t0->broadcast(to_bytes("fanout"));
  reactor.run_for(Duration{200'000});
  EXPECT_EQ(got, 4);
  EXPECT_EQ(t0->stats().packets_sent, 4u);
#if defined(__linux__)
  EXPECT_EQ(t0->stats().tx_syscall_batches, 1u)
      << "a 4-peer fan-out should be ONE sendmmsg call";
#endif
}

TEST(UdpBatch, FallbackPathDeliversIdentically) {
  Reactor reactor;
  UdpTransport::Config plain;
  plain.batched_syscalls = false;
  auto t0 = make_transport(reactor, kPortFallback, 0, 4, plain);
  std::vector<std::unique_ptr<UdpTransport>> peers;
  std::vector<std::string> got;
  for (NodeId id = 1; id < 4; ++id) {
    peers.push_back(make_transport(reactor, kPortFallback, id, 4, plain));
    ASSERT_TRUE(peers.back());
    peers.back()->set_rx_handler(
        [&](ReceivedPacket&& p) { got.push_back(to_string(p.data)); });
  }
  ASSERT_TRUE(t0);

  t0->broadcast(to_bytes("plain"));
  t0->unicast(1, to_bytes("tok"));
  reactor.run_for(Duration{200'000});
  ASSERT_EQ(got.size(), 4u);  // 3 broadcast copies + 1 unicast
  EXPECT_EQ(t0->stats().packets_sent, 4u);
  // One syscall per datagram on the fallback path.
  EXPECT_EQ(t0->stats().tx_syscall_batches, 4u);
}

TEST(UdpBatch, QueuedTxBacklogCoalescesIntoOneBatch) {
  // Single-threaded view of TX queueing: broadcast()/unicast() only frame
  // and enqueue; the reactor's wake hook drains the whole backlog into
  // sendmmsg batches at the next poll round.
  Reactor reactor;
  UdpTransport::Config queued;
  queued.tx_queue_capacity = 64;
  auto t0 = make_transport(reactor, kPortQueuedTx, 0, 2, queued);
  auto t1 = make_transport(reactor, kPortQueuedTx, 1, 2);
  ASSERT_TRUE(t0 && t1);
  std::vector<std::string> got;
  t1->set_rx_handler([&](ReceivedPacket&& p) { got.push_back(to_string(p.data)); });

  for (int i = 0; i < 10; ++i) {
    t0->unicast(1, to_bytes("q" + std::to_string(i)));
  }
  // Nothing hit the socket yet: the datagrams sit in the TX ring.
  EXPECT_EQ(t0->stats().packets_sent, 0u);

  reactor.run_for(Duration{300'000});
  ASSERT_EQ(got.size(), 10u);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(got[i], "q" + std::to_string(i));
  EXPECT_EQ(t0->stats().packets_sent, 10u);
#if defined(__linux__)
  EXPECT_EQ(t0->stats().tx_syscall_batches, 1u)
      << "10 queued datagrams should leave in ONE sendmmsg call";
#endif
}

#if defined(__linux__)
TEST(UdpBatch, PartialBatchSendErrorSkipsBadDatagramOnly) {
  // Pack [small, oversized, small] into one sendmmsg batch. The kernel
  // sends the first, then stops at the EMSGSIZE datagram and reports a
  // partial count; the transport must charge tx_errors for the bad one and
  // still deliver the datagram behind it.
  Reactor reactor;
  UdpTransport::Config queued;
  queued.tx_queue_capacity = 8;
  auto t0 = make_transport(reactor, kPortPartial, 0, 2, queued);
  auto t1 = make_transport(reactor, kPortPartial, 1, 2);
  ASSERT_TRUE(t0 && t1);
  std::vector<std::size_t> got_sizes;
  t1->set_rx_handler([&](ReceivedPacket&& p) { got_sizes.push_back(p.data.size()); });

  const std::string oversized(70'000, 'x');  // beyond the 65507-byte UDP max
  t0->unicast(1, to_bytes("a"));
  t0->unicast(1, to_bytes(oversized));
  t0->unicast(1, to_bytes("bb"));
  reactor.run_for(Duration{300'000});

  ASSERT_EQ(got_sizes.size(), 2u) << "datagram after the failed one must still arrive";
  EXPECT_EQ(got_sizes[0], 1u);
  EXPECT_EQ(got_sizes[1], 2u);
  EXPECT_EQ(t0->stats().packets_sent, 3u);  // all three were submitted
  EXPECT_EQ(t0->stats().tx_errors, 1u);     // exactly the oversized one failed
}
#endif

TEST(UdpBatch, ShortDatagramMidBurstDoesNotPoisonTheBatch) {
  // Three datagrams land in one recvmmsg burst: valid, 3-byte junk (shorter
  // than the framing header), valid. The junk must be counted in rx_short
  // and both neighbors must still deliver.
  Reactor reactor;
  auto t0 = make_transport(reactor, kPortShort, 0, 2);
  auto t1 = make_transport(reactor, kPortShort, 1, 2);
  ASSERT_TRUE(t0 && t1);
  std::vector<std::string> got;
  t1->set_rx_handler([&](ReceivedPacket&& p) { got.push_back(to_string(p.data)); });

  t0->unicast(1, to_bytes("one"));
  {
    int fd = ::socket(AF_INET, SOCK_DGRAM, 0);
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(kPortShort + 1);
    inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
    const char junk[3] = {'x', 'y', 'z'};
    ::sendto(fd, junk, sizeof(junk), 0, reinterpret_cast<sockaddr*>(&addr), sizeof(addr));
    ::close(fd);
  }
  t0->unicast(1, to_bytes("two"));

  reactor.run_for(Duration{300'000});
  ASSERT_EQ(got.size(), 2u);
  EXPECT_EQ(got[0], "one");
  EXPECT_EQ(got[1], "two");
  EXPECT_EQ(t1->stats().rx_short, 1u);
  EXPECT_EQ(t1->stats().packets_received, 2u);
  EXPECT_GE(t1->stats().rx_syscall_batches, 1u);
}

TEST(UdpBatch, RxQueueModeDefersToDispatchQueued) {
  Reactor reactor;
  auto t0 = make_transport(reactor, kPortRxQueue, 0, 2);
  UdpTransport::Config queued;
  queued.rx_queue_capacity = 16;
  auto t1 = make_transport(reactor, kPortRxQueue, 1, 2, queued);
  ASSERT_TRUE(t0 && t1);
  ASSERT_TRUE(t1->rx_queued());

  std::vector<std::string> got;
  t1->set_rx_handler([&](ReceivedPacket&& p) { got.push_back(to_string(p.data)); });
  int wakeups = 0;
  t1->set_rx_wakeup([&] { ++wakeups; });

  for (int i = 0; i < 3; ++i) t0->unicast(1, to_bytes("r" + std::to_string(i)));
  reactor.run_for(Duration{300'000});

  // Drained from the socket into the ring, but not yet handed to the
  // handler — that is the consumer's job.
  EXPECT_TRUE(got.empty());
  EXPECT_GE(wakeups, 1);
  EXPECT_EQ(t1->stats().packets_received, 3u);

  EXPECT_EQ(t1->dispatch_queued(2), 2u);  // bounded dispatch
  EXPECT_EQ(t1->dispatch_queued(), 1u);
  ASSERT_EQ(got.size(), 3u);
  for (int i = 0; i < 3; ++i) EXPECT_EQ(got[i], "r" + std::to_string(i));
  EXPECT_EQ(t1->dispatch_queued(), 0u);
}

TEST(UdpBatch, RxRingOverflowCountsDrops) {
  Reactor reactor;
  auto t0 = make_transport(reactor, kPortRxDrop, 0, 2);
  UdpTransport::Config tiny;
  tiny.rx_queue_capacity = 2;
  auto t1 = make_transport(reactor, kPortRxDrop, 1, 2, tiny);
  ASSERT_TRUE(t0 && t1);
  t1->set_rx_handler([](ReceivedPacket&&) {});

  for (int i = 0; i < 6; ++i) t0->unicast(1, to_bytes("x"));
  reactor.run_for(Duration{300'000});  // no dispatch_queued: the ring stays full

  EXPECT_EQ(t1->stats().rx_queue_drops, 4u);
  // Ring-full datagrams must ALSO hit the aggregate drop counter, so the
  // transport-level accounting reconciles with the network side:
  //   sent == received + dropped.
  EXPECT_EQ(t1->stats().rx_dropped, 4u);
  EXPECT_EQ(t1->stats().packets_received, 2u);
  EXPECT_EQ(t0->stats().packets_sent,
            t1->stats().packets_received + t1->stats().rx_dropped);
  EXPECT_EQ(t1->dispatch_queued(), 2u);
}

#if defined(__linux__)
TEST(UdpBatch, PartialSendmmsgShortWriteRecovery) {
  // A sendmmsg that accepts fewer datagrams than offered is NOT an error:
  // the unsent tail must go out on subsequent calls, in order, with no
  // datagram dropped or duplicated — and the tx batch histogram must count
  // each datagram exactly once (per actual syscall, not per attempt).
  Reactor reactor;
  MetricsRegistry metrics;
  UdpTransport::Config cfg;
  cfg.tx_queue_capacity = 32;
  cfg.metrics = &metrics;
  int hook_calls = 0;
  cfg.sendmmsg_hook = [&](int fd, void* msgvec, unsigned vlen, int flags) {
    ++hook_calls;
    // Clamp every batch to ONE accepted datagram: the worst legal short
    // write, repeated for the whole backlog.
    return ::sendmmsg(fd, static_cast<mmsghdr*>(msgvec), std::min(vlen, 1u), flags);
  };
  auto t0 = make_transport(reactor, kPortShortWrite, 0, 2, cfg);
  auto t1 = make_transport(reactor, kPortShortWrite, 1, 2);
  ASSERT_TRUE(t0 && t1);
  std::vector<std::string> got;
  t1->set_rx_handler([&](ReceivedPacket&& p) { got.push_back(to_string(p.data)); });

  constexpr int kN = 12;
  for (int i = 0; i < kN; ++i) t0->unicast(1, to_bytes("sw" + std::to_string(i)));
  reactor.run_for(Duration{500'000});

  ASSERT_EQ(got.size(), static_cast<std::size_t>(kN))
      << "short writes must not drop or duplicate datagrams";
  for (int i = 0; i < kN; ++i) EXPECT_EQ(got[i], "sw" + std::to_string(i));
  EXPECT_EQ(t0->stats().packets_sent, static_cast<std::uint64_t>(kN));
  EXPECT_EQ(t0->stats().tx_errors, 0u);
  EXPECT_EQ(hook_calls, kN);  // one clamped syscall per datagram
  EXPECT_EQ(t0->stats().tx_syscall_batches, static_cast<std::uint64_t>(kN));
  const auto snap = metrics.snapshot();
  const auto* hist = snap.find_histogram("net.tx_batch.net0.mmsg");
  ASSERT_NE(hist, nullptr);
  EXPECT_EQ(hist->count, static_cast<std::uint64_t>(kN));
  EXPECT_EQ(hist->sum, static_cast<std::uint64_t>(kN))
      << "each datagram must be recorded exactly once across the batches";
  EXPECT_EQ(hist->max, 1u);
}

TEST(UdpBatch, TransientEagainRetriesWithoutDrops) {
  // EAGAIN from a full socket buffer is back-pressure, not a bad datagram:
  // the transport waits for POLLOUT and retries the untouched remainder
  // instead of charging tx_errors.
  Reactor reactor;
  UdpTransport::Config cfg;
  cfg.tx_queue_capacity = 16;
  bool injected = false;
  cfg.sendmmsg_hook = [&](int fd, void* msgvec, unsigned vlen, int flags) {
    if (!injected) {
      injected = true;
      errno = EAGAIN;
      return -1;
    }
    return ::sendmmsg(fd, static_cast<mmsghdr*>(msgvec), vlen, flags);
  };
  auto t0 = make_transport(reactor, kPortEagain, 0, 2, cfg);
  auto t1 = make_transport(reactor, kPortEagain, 1, 2);
  ASSERT_TRUE(t0 && t1);
  std::vector<std::string> got;
  t1->set_rx_handler([&](ReceivedPacket&& p) { got.push_back(to_string(p.data)); });

  for (int i = 0; i < 5; ++i) t0->unicast(1, to_bytes("ea" + std::to_string(i)));
  reactor.run_for(Duration{500'000});

  ASSERT_EQ(got.size(), 5u);
  for (int i = 0; i < 5; ++i) EXPECT_EQ(got[i], "ea" + std::to_string(i));
  EXPECT_TRUE(injected);
  EXPECT_EQ(t0->stats().tx_errors, 0u);
}
#endif

}  // namespace
}  // namespace totem::net

// UdpTransport over real loopback sockets, single-threaded through one
// reactor (multiple transports in one process, exactly as the examples run).
#include "net/udp_transport.h"

#include <arpa/inet.h>
#include <gtest/gtest.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include "api/node.h"
#include "net/reactor.h"

namespace totem::net {
namespace {

// Distinct port blocks per test to avoid cross-test interference.
constexpr std::uint16_t kPortA = 41200;
constexpr std::uint16_t kPortB = 41300;
constexpr std::uint16_t kPortC = 41400;
constexpr std::uint16_t kPortD = 41500;

std::unique_ptr<UdpTransport> make_transport(Reactor& reactor, std::uint16_t base,
                                             NodeId node, std::uint32_t count,
                                             NetworkId net = 0) {
  UdpTransport::Config cfg;
  cfg.network = net;
  cfg.local_node = node;
  cfg.peers = loopback_peers(base, count);
  auto r = UdpTransport::create(reactor, cfg);
  EXPECT_TRUE(r.is_ok()) << r.status().to_string();
  return r.is_ok() ? std::move(r).take() : nullptr;
}

TEST(UdpTransport, UnicastDelivers) {
  Reactor reactor;
  auto t0 = make_transport(reactor, kPortA, 0, 2);
  auto t1 = make_transport(reactor, kPortA, 1, 2);
  ASSERT_TRUE(t0 && t1);

  std::vector<ReceivedPacket> got;
  t1->set_rx_handler([&](ReceivedPacket&& p) {
    got.push_back(std::move(p));
    reactor.stop();
  });
  t0->unicast(1, to_bytes("ping"));
  reactor.run_for(Duration{500'000});
  ASSERT_EQ(got.size(), 1u);
  EXPECT_EQ(to_string(got[0].data), "ping");
  EXPECT_EQ(got[0].source, 0u);
  EXPECT_EQ(got[0].network, 0);
}

TEST(UdpTransport, BroadcastReachesAllPeersNotSelf) {
  Reactor reactor;
  auto t0 = make_transport(reactor, kPortB, 0, 3);
  auto t1 = make_transport(reactor, kPortB, 1, 3);
  auto t2 = make_transport(reactor, kPortB, 2, 3);
  ASSERT_TRUE(t0 && t1 && t2);

  int self = 0, others = 0;
  t0->set_rx_handler([&](ReceivedPacket&&) { ++self; });
  auto counter = [&](ReceivedPacket&& p) {
    EXPECT_EQ(p.source, 0u);
    ++others;
  };
  t1->set_rx_handler(counter);
  t2->set_rx_handler(counter);
  t0->broadcast(to_bytes("hello"));
  reactor.run_for(Duration{200'000});
  EXPECT_EQ(others, 2);
  EXPECT_EQ(self, 0);
}

TEST(UdpTransport, GarbageDatagramsIgnored) {
  Reactor reactor;
  auto t0 = make_transport(reactor, kPortC, 0, 2);
  auto t1 = make_transport(reactor, kPortC, 1, 2);
  ASSERT_TRUE(t0 && t1);

  int got = 0;
  t1->set_rx_handler([&](ReceivedPacket&&) { ++got; });

  // Raw socket injection without the transport header.
  int fd = ::socket(AF_INET, SOCK_DGRAM, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(kPortC + 1);
  inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
  const char junk[] = "notatotempacket";
  ::sendto(fd, junk, sizeof(junk), 0, reinterpret_cast<sockaddr*>(&addr), sizeof(addr));
  ::close(fd);

  reactor.run_for(Duration{100'000});
  EXPECT_EQ(got, 0);
}

TEST(UdpTransport, SendAndRecvFaultInjection) {
  Reactor reactor;
  auto t0 = make_transport(reactor, kPortD, 0, 2);
  auto t1 = make_transport(reactor, kPortD, 1, 2);
  ASSERT_TRUE(t0 && t1);
  int got = 0;
  t1->set_rx_handler([&](ReceivedPacket&&) { ++got; });

  t0->set_send_fault(true);
  t0->unicast(1, to_bytes("lost"));
  reactor.run_for(Duration{100'000});
  EXPECT_EQ(got, 0);

  t0->set_send_fault(false);
  t1->set_recv_fault(true);
  t0->unicast(1, to_bytes("deaf"));
  reactor.run_for(Duration{100'000});
  EXPECT_EQ(got, 0);

  t1->set_recv_fault(false);
  t0->unicast(1, to_bytes("ok"));
  reactor.run_for(Duration{200'000});
  EXPECT_EQ(got, 1);
}

TEST(UdpTransport, BindConflictReportsError) {
  Reactor reactor;
  auto t0 = make_transport(reactor, kPortA, 0, 2);
  ASSERT_TRUE(t0);
  UdpTransport::Config cfg;
  cfg.network = 0;
  cfg.local_node = 0;
  cfg.peers = loopback_peers(kPortA, 2);  // same port as t0
  auto dup = UdpTransport::create(reactor, cfg);
  EXPECT_FALSE(dup.is_ok());
  EXPECT_EQ(dup.status().code(), StatusCode::kUnavailable);
}

TEST(UdpTransport, MissingLocalNodeRejected) {
  Reactor reactor;
  UdpTransport::Config cfg;
  cfg.local_node = 9;  // not in the peer map
  cfg.peers = loopback_peers(kPortB, 2);
  auto r = UdpTransport::create(reactor, cfg);
  EXPECT_FALSE(r.is_ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
}

TEST(UdpTransport, StatsCountTraffic) {
  Reactor reactor;
  auto t0 = make_transport(reactor, kPortC, 0, 2, 1);
  auto t1 = make_transport(reactor, kPortC, 1, 2, 1);
  ASSERT_TRUE(t0 && t1);
  t1->set_rx_handler([&](ReceivedPacket&& p) { EXPECT_EQ(p.network, 1); });
  t0->unicast(1, to_bytes("abc"));
  reactor.run_for(Duration{200'000});
  EXPECT_EQ(t0->stats().packets_sent, 1u);
  EXPECT_EQ(t0->stats().bytes_sent, 3u);
  EXPECT_EQ(t1->stats().packets_received, 1u);
}

std::unique_ptr<UdpTransport> make_mcast_transport(Reactor& reactor, std::uint16_t base,
                                                   NodeId node, std::uint32_t count,
                                                   std::uint16_t mcast_port) {
  UdpTransport::Config cfg;
  cfg.network = 0;
  cfg.local_node = node;
  cfg.peers = loopback_peers(base, count);
  cfg.multicast_group = "239.192.77.1";
  cfg.multicast_port = mcast_port;
  auto r = UdpTransport::create(reactor, cfg);
  EXPECT_TRUE(r.is_ok()) << r.status().to_string();
  return r.is_ok() ? std::move(r).take() : nullptr;
}

TEST(UdpMulticast, BroadcastIsOneDatagramReachingAllOthers) {
  Reactor reactor;
  auto t0 = make_mcast_transport(reactor, 41600, 0, 3, 41699);
  auto t1 = make_mcast_transport(reactor, 41600, 1, 3, 41699);
  auto t2 = make_mcast_transport(reactor, 41600, 2, 3, 41699);
  ASSERT_TRUE(t0 && t1 && t2);
  ASSERT_TRUE(t0->multicast_enabled());

  int self = 0, others = 0;
  t0->set_rx_handler([&](ReceivedPacket&&) { ++self; });
  auto counter = [&](ReceivedPacket&& p) {
    EXPECT_EQ(p.source, 0u);
    ++others;
  };
  t1->set_rx_handler(counter);
  t2->set_rx_handler(counter);
  t0->broadcast(to_bytes("via-multicast"));
  reactor.run_for(Duration{300'000});
  EXPECT_EQ(others, 2);
  EXPECT_EQ(self, 0) << "loopback copy of own broadcast must be filtered";
  EXPECT_EQ(t0->stats().packets_sent, 1u) << "ONE datagram, not N-1";
}

TEST(UdpMulticast, UnicastTokensStillUsePeerPorts) {
  Reactor reactor;
  auto t0 = make_mcast_transport(reactor, 41700, 0, 2, 41799);
  auto t1 = make_mcast_transport(reactor, 41700, 1, 2, 41799);
  ASSERT_TRUE(t0 && t1);
  int got = 0;
  t1->set_rx_handler([&](ReceivedPacket&& p) {
    EXPECT_EQ(to_string(p.data), "token");
    ++got;
    reactor.stop();
  });
  t0->unicast(1, to_bytes("token"));
  reactor.run_for(Duration{300'000});
  EXPECT_EQ(got, 1);
}

TEST(UdpMulticast, MissingPortRejected) {
  Reactor reactor;
  UdpTransport::Config cfg;
  cfg.local_node = 0;
  cfg.peers = loopback_peers(41800, 2);
  cfg.multicast_group = "239.192.77.2";
  cfg.multicast_port = 0;
  auto r = UdpTransport::create(reactor, cfg);
  EXPECT_FALSE(r.is_ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
}

TEST(UdpMulticast, FullRingOverMulticast) {
  // An actual 3-node Totem ring where broadcasts ride IP multicast — the
  // paper's native deployment shape.
  Reactor reactor;
  std::vector<std::unique_ptr<UdpTransport>> owned;
  std::vector<std::unique_ptr<api::Node>> nodes;
  std::vector<std::vector<std::string>> delivered(3);
  for (NodeId id = 0; id < 3; ++id) {
    std::vector<Transport*> ts;
    for (NetworkId n = 0; n < 2; ++n) {
      UdpTransport::Config tc;
      tc.network = n;
      tc.local_node = id;
      tc.peers = loopback_peers(static_cast<std::uint16_t>(41900 + 100 * n), 3);
      tc.multicast_group = n == 0 ? "239.192.78.1" : "239.192.78.2";
      tc.multicast_port = static_cast<std::uint16_t>(42150 + n);
      auto t = UdpTransport::create(reactor, tc);
      ASSERT_TRUE(t.is_ok()) << t.status().to_string();
      owned.push_back(std::move(t).take());
      ts.push_back(owned.back().get());
    }
    api::NodeConfig cfg;
    cfg.srp.node_id = id;
    cfg.srp.initial_members = {0, 1, 2};
    cfg.style = api::ReplicationStyle::kActive;
    nodes.push_back(std::make_unique<api::Node>(reactor, ts, cfg));
    nodes.back()->set_deliver_handler([&delivered, id](const srp::DeliveredMessage& m) {
      delivered[id].push_back(to_string(m.payload));
    });
  }
  for (auto& n : nodes) n->start();
  for (int k = 0; k < 6; ++k) {
    ASSERT_TRUE(nodes[k % 3]->send(to_bytes("mc" + std::to_string(k))).is_ok());
  }
  const TimePoint deadline = reactor.now() + Duration{5'000'000};
  while (reactor.now() < deadline) {
    bool done = true;
    for (const auto& d : delivered) {
      if (d.size() < 6) done = false;
    }
    if (done) break;
    reactor.poll_once(Duration{10'000});
  }
  for (NodeId i = 0; i < 3; ++i) {
    ASSERT_EQ(delivered[i].size(), 6u) << "node " << i;
    EXPECT_EQ(delivered[i], delivered[0]);
  }
}

}  // namespace
}  // namespace totem::net

#include "net/reactor.h"

#include <gtest/gtest.h>
#include <unistd.h>

namespace totem::net {
namespace {

TEST(Reactor, TimerFires) {
  Reactor reactor;
  bool fired = false;
  reactor.schedule(Duration{5'000}, [&] { fired = true; });
  reactor.run_for(Duration{50'000});
  EXPECT_TRUE(fired);
}

TEST(Reactor, TimersFireInOrder) {
  Reactor reactor;
  std::vector<int> order;
  reactor.schedule(Duration{20'000}, [&] { order.push_back(2); });
  reactor.schedule(Duration{5'000}, [&] { order.push_back(1); });
  reactor.schedule(Duration{40'000}, [&] { order.push_back(3); });
  reactor.run_for(Duration{100'000});
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(Reactor, CancelledTimerDoesNotFire) {
  Reactor reactor;
  bool fired = false;
  TimerHandle h = reactor.schedule(Duration{5'000}, [&] { fired = true; });
  h.cancel();
  reactor.run_for(Duration{30'000});
  EXPECT_FALSE(fired);
}

TEST(Reactor, FdReadableDispatches) {
  Reactor reactor;
  int fds[2];
  ASSERT_EQ(::pipe(fds), 0);
  int reads = 0;
  reactor.register_fd(fds[0], [&] {
    char buf[16];
    ASSERT_GT(::read(fds[0], buf, sizeof(buf)), 0);
    ++reads;
    reactor.stop();
  });
  ASSERT_EQ(::write(fds[1], "x", 1), 1);
  reactor.run_for(Duration{500'000});
  EXPECT_EQ(reads, 1);
  reactor.unregister_fd(fds[0]);
  ::close(fds[0]);
  ::close(fds[1]);
}

TEST(Reactor, UnregisteredFdIgnored) {
  Reactor reactor;
  int fds[2];
  ASSERT_EQ(::pipe(fds), 0);
  int reads = 0;
  reactor.register_fd(fds[0], [&] { ++reads; });
  reactor.unregister_fd(fds[0]);
  ASSERT_EQ(::write(fds[1], "x", 1), 1);
  reactor.run_for(Duration{20'000});
  EXPECT_EQ(reads, 0);
  ::close(fds[0]);
  ::close(fds[1]);
}

TEST(Reactor, TimerScheduledFromTimerCallback) {
  Reactor reactor;
  int depth = 0;
  std::function<void()> chain = [&] {
    if (++depth < 3) reactor.schedule(Duration{1'000}, chain);
  };
  reactor.schedule(Duration{1'000}, chain);
  reactor.run_for(Duration{200'000});
  EXPECT_EQ(depth, 3);
}

TEST(Reactor, NowIsMonotonic) {
  Reactor reactor;
  const TimePoint a = reactor.now();
  reactor.run_for(Duration{2'000});
  EXPECT_GE(reactor.now().time_since_epoch().count(), a.time_since_epoch().count());
}

}  // namespace
}  // namespace totem::net

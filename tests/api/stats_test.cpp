#include "api/stats.h"

#include <gtest/gtest.h>

#include <sstream>

#include "harness/drivers.h"
#include "harness/sim_cluster.h"

namespace totem::api {
namespace {

TEST(Stats, SnapshotReflectsLiveCluster) {
  harness::ClusterConfig cfg;
  cfg.node_count = 3;
  cfg.network_count = 2;
  cfg.style = ReplicationStyle::kActive;
  harness::SimCluster cluster(cfg);
  cluster.start_all();
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(cluster.node(0).send(Bytes(64, std::byte{1})).is_ok());
  }
  cluster.run_for(Duration{500'000});

  const StatsSnapshot snap = snapshot(cluster.node(1), {});
  EXPECT_EQ(snap.node, 1u);
  EXPECT_EQ(snap.style, ReplicationStyle::kActive);
  EXPECT_EQ(snap.state, srp::SingleRing::State::kOperational);
  EXPECT_EQ(snap.member_count, 3u);
  EXPECT_EQ(snap.my_aru, 10u);
  EXPECT_EQ(snap.srp.messages_delivered, 10u);
  EXPECT_GT(snap.srp.tokens_processed, 0u);
  EXPECT_GT(snap.rrp.packets_fanned_out, 0u);
  EXPECT_EQ(snap.safe_up_to, 10u) << "idle ring has rotated many times";
}

TEST(Stats, SnapshotIncludesPerNetworkState) {
  harness::ClusterConfig cfg;
  cfg.node_count = 3;
  cfg.network_count = 2;
  cfg.style = ReplicationStyle::kActive;
  harness::SimCluster cluster(cfg);
  cluster.start_all();
  cluster.run_for(Duration{100'000});
  cluster.node(0).replicator().mark_faulty(1);

  // Transports are owned by the networks; fetch node 0's endpoints through
  // fresh attachment bookkeeping is not exposed, so snapshot via the
  // replicator's faulty flags only.
  const StatsSnapshot snap = snapshot(cluster.node(0), {});
  EXPECT_TRUE(cluster.node(0).replicator().network_faulty(1));
  EXPECT_EQ(snap.rrp.faults_reported, 1u);
}

TEST(Stats, DumpIsHumanReadable) {
  harness::ClusterConfig cfg;
  cfg.node_count = 2;
  cfg.network_count = 2;
  cfg.style = ReplicationStyle::kPassive;
  harness::SimCluster cluster(cfg);
  cluster.start_all();
  ASSERT_TRUE(cluster.node(0).send(to_bytes("x")).is_ok());
  cluster.run_for(Duration{300'000});

  const std::string dump = to_string(snapshot(cluster.node(0), {}));
  EXPECT_NE(dump.find("node 0 [passive]"), std::string::npos) << dump;
  EXPECT_NE(dump.find("state=operational"), std::string::npos) << dump;
  EXPECT_NE(dump.find("delivered=1"), std::string::npos) << dump;
  EXPECT_NE(dump.find("pool:"), std::string::npos) << dump;
}

TEST(Stats, SnapshotExposesBufferPoolCounters) {
  harness::ClusterConfig cfg;
  cfg.node_count = 3;
  cfg.network_count = 2;
  cfg.style = ReplicationStyle::kActive;
  harness::SimCluster cluster(cfg);
  cluster.start_all();
  for (int i = 0; i < 20; ++i) {
    ASSERT_TRUE(cluster.node(0).send(Bytes(64, std::byte{1})).is_ok());
  }
  cluster.run_for(Duration{500'000});

  const StatsSnapshot snap = snapshot(cluster.node(0), {});
  EXPECT_GT(snap.buffer_pool.allocations, 0u) << "packets were encoded into the pool";
  EXPECT_GT(snap.buffer_pool.reuses, snap.buffer_pool.allocations)
      << "a steady ring must recycle slabs, not keep allocating";
  EXPECT_GE(snap.buffer_pool.high_water, snap.buffer_pool.outstanding);
}

TEST(Stats, SnapshotCarriesMetricsHistograms) {
  harness::ClusterConfig cfg;
  cfg.node_count = 3;
  cfg.network_count = 2;
  cfg.style = ReplicationStyle::kActive;
  harness::SimCluster cluster(cfg);
  cluster.start_all();
  // Let the ring rotate first: a send while the token is elsewhere has a
  // nonzero send->deliver latency (at t=0 the representative holds the
  // token and would deliver its own broadcast in the same instant).
  cluster.run_for(Duration{50'000});
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(cluster.node(0).send(Bytes(64, std::byte{1})).is_ok());
  }
  cluster.run_for(Duration{500'000});

  const StatsSnapshot snap = snapshot(cluster.node(0), {});
  const auto* rotation = snap.metrics.find_histogram("srp.token_rotation_us");
  ASSERT_NE(rotation, nullptr);
  EXPECT_GT(rotation->count, 0u) << "tokens rotated, so inter-arrival was recorded";
  const auto* delivery = snap.metrics.find_histogram("srp.delivery_latency_us");
  ASSERT_NE(delivery, nullptr);
  EXPECT_EQ(delivery->count, 10u) << "one sample per origin-local delivery";
  EXPECT_GT(delivery->p99(), 0.0);
  const auto* gap = snap.metrics.find_histogram("rrp.token_gap_us.net0");
  ASSERT_NE(gap, nullptr);
  EXPECT_GT(gap->count, 0u);
}

TEST(Stats, ToJsonIsWellFormedAndComplete) {
  harness::ClusterConfig cfg;
  cfg.node_count = 2;
  cfg.network_count = 2;
  cfg.style = ReplicationStyle::kPassive;
  harness::SimCluster cluster(cfg);
  cluster.start_all();
  ASSERT_TRUE(cluster.node(0).send(to_bytes("x")).is_ok());
  cluster.run_for(Duration{300'000});

  const std::string json = snapshot(cluster.node(0), {}).to_json();
  EXPECT_EQ(json.front(), '{');
  EXPECT_EQ(json.back(), '}');
  for (const char* key : {"\"node\":0", "\"style\":\"passive\"", "\"srp\":", "\"rrp\":",
                          "\"buffer_pool\":", "\"networks\":", "\"metrics\":",
                          "\"messages_delivered\":1", "\"srp.delivery_latency_us\""}) {
    EXPECT_NE(json.find(key), std::string::npos) << key << " missing from:\n" << json;
  }
}

TEST(Stats, ToPrometheusLabelsEverySampleWithNode) {
  harness::ClusterConfig cfg;
  cfg.node_count = 2;
  cfg.network_count = 1;
  cfg.style = ReplicationStyle::kNone;
  harness::SimCluster cluster(cfg);
  cluster.start_all();
  ASSERT_TRUE(cluster.node(1).send(to_bytes("y")).is_ok());
  cluster.run_for(Duration{300'000});

  const std::string prom = snapshot(cluster.node(1), {}).to_prometheus();
  EXPECT_NE(prom.find("# TYPE totem_srp_messages_delivered counter"), std::string::npos)
      << prom;
  EXPECT_NE(prom.find("totem_srp_messages_delivered{node=\"1\"} 1"), std::string::npos)
      << prom;
  EXPECT_NE(prom.find("totem_srp_delivery_latency_us{node=\"1\",quantile=\"0.99\"}"),
            std::string::npos)
      << prom;
  // Every non-comment line carries the node label.
  std::istringstream lines(prom);
  std::string line;
  while (std::getline(lines, line)) {
    if (line.empty() || line[0] == '#') continue;
    EXPECT_NE(line.find("node=\"1\""), std::string::npos) << line;
  }
}

}  // namespace
}  // namespace totem::api

#include "api/stats.h"

#include <gtest/gtest.h>

#include "harness/drivers.h"
#include "harness/sim_cluster.h"

namespace totem::api {
namespace {

TEST(Stats, SnapshotReflectsLiveCluster) {
  harness::ClusterConfig cfg;
  cfg.node_count = 3;
  cfg.network_count = 2;
  cfg.style = ReplicationStyle::kActive;
  harness::SimCluster cluster(cfg);
  cluster.start_all();
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(cluster.node(0).send(Bytes(64, std::byte{1})).is_ok());
  }
  cluster.run_for(Duration{500'000});

  const StatsSnapshot snap = snapshot(cluster.node(1), {});
  EXPECT_EQ(snap.node, 1u);
  EXPECT_EQ(snap.style, ReplicationStyle::kActive);
  EXPECT_EQ(snap.state, srp::SingleRing::State::kOperational);
  EXPECT_EQ(snap.member_count, 3u);
  EXPECT_EQ(snap.my_aru, 10u);
  EXPECT_EQ(snap.srp.messages_delivered, 10u);
  EXPECT_GT(snap.srp.tokens_processed, 0u);
  EXPECT_GT(snap.rrp.packets_fanned_out, 0u);
  EXPECT_EQ(snap.safe_up_to, 10u) << "idle ring has rotated many times";
}

TEST(Stats, SnapshotIncludesPerNetworkState) {
  harness::ClusterConfig cfg;
  cfg.node_count = 3;
  cfg.network_count = 2;
  cfg.style = ReplicationStyle::kActive;
  harness::SimCluster cluster(cfg);
  cluster.start_all();
  cluster.run_for(Duration{100'000});
  cluster.node(0).replicator().mark_faulty(1);

  // Transports are owned by the networks; fetch node 0's endpoints through
  // fresh attachment bookkeeping is not exposed, so snapshot via the
  // replicator's faulty flags only.
  const StatsSnapshot snap = snapshot(cluster.node(0), {});
  EXPECT_TRUE(cluster.node(0).replicator().network_faulty(1));
  EXPECT_EQ(snap.rrp.faults_reported, 1u);
}

TEST(Stats, DumpIsHumanReadable) {
  harness::ClusterConfig cfg;
  cfg.node_count = 2;
  cfg.network_count = 2;
  cfg.style = ReplicationStyle::kPassive;
  harness::SimCluster cluster(cfg);
  cluster.start_all();
  ASSERT_TRUE(cluster.node(0).send(to_bytes("x")).is_ok());
  cluster.run_for(Duration{300'000});

  const std::string dump = to_string(snapshot(cluster.node(0), {}));
  EXPECT_NE(dump.find("node 0 [passive]"), std::string::npos) << dump;
  EXPECT_NE(dump.find("state=operational"), std::string::npos) << dump;
  EXPECT_NE(dump.find("delivered=1"), std::string::npos) << dump;
  EXPECT_NE(dump.find("pool:"), std::string::npos) << dump;
}

TEST(Stats, SnapshotExposesBufferPoolCounters) {
  harness::ClusterConfig cfg;
  cfg.node_count = 3;
  cfg.network_count = 2;
  cfg.style = ReplicationStyle::kActive;
  harness::SimCluster cluster(cfg);
  cluster.start_all();
  for (int i = 0; i < 20; ++i) {
    ASSERT_TRUE(cluster.node(0).send(Bytes(64, std::byte{1})).is_ok());
  }
  cluster.run_for(Duration{500'000});

  const StatsSnapshot snap = snapshot(cluster.node(0), {});
  EXPECT_GT(snap.buffer_pool.allocations, 0u) << "packets were encoded into the pool";
  EXPECT_GT(snap.buffer_pool.reuses, snap.buffer_pool.allocations)
      << "a steady ring must recycle slabs, not keep allocating";
  EXPECT_GE(snap.buffer_pool.high_water, snap.buffer_pool.outstanding);
}

}  // namespace
}  // namespace totem::api

#include "api/stats.h"

#include <gtest/gtest.h>

#include <sstream>

#include "harness/drivers.h"
#include "harness/sim_cluster.h"

namespace totem::api {
namespace {

TEST(Stats, SnapshotReflectsLiveCluster) {
  harness::ClusterConfig cfg;
  cfg.node_count = 3;
  cfg.network_count = 2;
  cfg.style = ReplicationStyle::kActive;
  harness::SimCluster cluster(cfg);
  cluster.start_all();
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(cluster.node(0).send(Bytes(64, std::byte{1})).is_ok());
  }
  cluster.run_for(Duration{500'000});

  const StatsSnapshot snap = snapshot(cluster.node(1), {});
  EXPECT_EQ(snap.node, 1u);
  EXPECT_EQ(snap.style, ReplicationStyle::kActive);
  EXPECT_EQ(snap.state, srp::SingleRing::State::kOperational);
  EXPECT_EQ(snap.member_count, 3u);
  EXPECT_EQ(snap.my_aru, 10u);
  EXPECT_EQ(snap.srp.messages_delivered, 10u);
  EXPECT_GT(snap.srp.tokens_processed, 0u);
  EXPECT_GT(snap.rrp.packets_fanned_out, 0u);
  EXPECT_EQ(snap.safe_up_to, 10u) << "idle ring has rotated many times";
}

TEST(Stats, SnapshotIncludesPerNetworkState) {
  harness::ClusterConfig cfg;
  cfg.node_count = 3;
  cfg.network_count = 2;
  cfg.style = ReplicationStyle::kActive;
  harness::SimCluster cluster(cfg);
  cluster.start_all();
  cluster.run_for(Duration{100'000});
  cluster.node(0).replicator().mark_faulty(1);

  // Transports are owned by the networks; fetch node 0's endpoints through
  // fresh attachment bookkeeping is not exposed, so snapshot via the
  // replicator's faulty flags only.
  const StatsSnapshot snap = snapshot(cluster.node(0), {});
  EXPECT_TRUE(cluster.node(0).replicator().network_faulty(1));
  EXPECT_EQ(snap.rrp.faults_reported, 1u);
}

TEST(Stats, DumpIsHumanReadable) {
  harness::ClusterConfig cfg;
  cfg.node_count = 2;
  cfg.network_count = 2;
  cfg.style = ReplicationStyle::kPassive;
  harness::SimCluster cluster(cfg);
  cluster.start_all();
  ASSERT_TRUE(cluster.node(0).send(to_bytes("x")).is_ok());
  cluster.run_for(Duration{300'000});

  const std::string dump = to_string(snapshot(cluster.node(0), {}));
  EXPECT_NE(dump.find("node 0 [passive]"), std::string::npos) << dump;
  EXPECT_NE(dump.find("state=operational"), std::string::npos) << dump;
  EXPECT_NE(dump.find("delivered=1"), std::string::npos) << dump;
  EXPECT_NE(dump.find("pool:"), std::string::npos) << dump;
}

TEST(Stats, SnapshotExposesBufferPoolCounters) {
  harness::ClusterConfig cfg;
  cfg.node_count = 3;
  cfg.network_count = 2;
  cfg.style = ReplicationStyle::kActive;
  harness::SimCluster cluster(cfg);
  cluster.start_all();
  for (int i = 0; i < 20; ++i) {
    ASSERT_TRUE(cluster.node(0).send(Bytes(64, std::byte{1})).is_ok());
  }
  cluster.run_for(Duration{500'000});

  const StatsSnapshot snap = snapshot(cluster.node(0), {});
  EXPECT_GT(snap.buffer_pool.allocations, 0u) << "packets were encoded into the pool";
  EXPECT_GT(snap.buffer_pool.reuses, snap.buffer_pool.allocations)
      << "a steady ring must recycle slabs, not keep allocating";
  EXPECT_GE(snap.buffer_pool.high_water, snap.buffer_pool.outstanding);
}

TEST(Stats, SnapshotCarriesMetricsHistograms) {
  harness::ClusterConfig cfg;
  cfg.node_count = 3;
  cfg.network_count = 2;
  cfg.style = ReplicationStyle::kActive;
  harness::SimCluster cluster(cfg);
  cluster.start_all();
  // Let the ring rotate first: a send while the token is elsewhere has a
  // nonzero send->deliver latency (at t=0 the representative holds the
  // token and would deliver its own broadcast in the same instant).
  cluster.run_for(Duration{50'000});
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(cluster.node(0).send(Bytes(64, std::byte{1})).is_ok());
  }
  cluster.run_for(Duration{500'000});

  const StatsSnapshot snap = snapshot(cluster.node(0), {});
  const auto* rotation = snap.metrics.find_histogram("srp.token_rotation_us");
  ASSERT_NE(rotation, nullptr);
  EXPECT_GT(rotation->count, 0u) << "tokens rotated, so inter-arrival was recorded";
  const auto* delivery = snap.metrics.find_histogram("srp.delivery_latency_us");
  ASSERT_NE(delivery, nullptr);
  EXPECT_EQ(delivery->count, 10u) << "one sample per origin-local delivery";
  EXPECT_GT(delivery->p99(), 0.0);
  const auto* gap = snap.metrics.find_histogram("rrp.token_gap_us.net0");
  ASSERT_NE(gap, nullptr);
  EXPECT_GT(gap->count, 0u);
}

TEST(Stats, ToJsonIsWellFormedAndComplete) {
  harness::ClusterConfig cfg;
  cfg.node_count = 2;
  cfg.network_count = 2;
  cfg.style = ReplicationStyle::kPassive;
  harness::SimCluster cluster(cfg);
  cluster.start_all();
  ASSERT_TRUE(cluster.node(0).send(to_bytes("x")).is_ok());
  cluster.run_for(Duration{300'000});

  const std::string json = snapshot(cluster.node(0), {}).to_json();
  EXPECT_EQ(json.front(), '{');
  EXPECT_EQ(json.back(), '}');
  for (const char* key : {"\"node\":0", "\"style\":\"passive\"", "\"srp\":", "\"rrp\":",
                          "\"buffer_pool\":", "\"networks\":", "\"metrics\":",
                          "\"messages_delivered\":1", "\"srp.delivery_latency_us\""}) {
    EXPECT_NE(json.find(key), std::string::npos) << key << " missing from:\n" << json;
  }
}

TEST(Stats, ToPrometheusLabelsEverySampleWithNode) {
  harness::ClusterConfig cfg;
  cfg.node_count = 2;
  cfg.network_count = 1;
  cfg.style = ReplicationStyle::kNone;
  harness::SimCluster cluster(cfg);
  cluster.start_all();
  ASSERT_TRUE(cluster.node(1).send(to_bytes("y")).is_ok());
  cluster.run_for(Duration{300'000});

  const std::string prom = snapshot(cluster.node(1), {}).to_prometheus();
  EXPECT_NE(prom.find("# TYPE totem_srp_messages_delivered counter"), std::string::npos)
      << prom;
  EXPECT_NE(prom.find("totem_srp_messages_delivered{node=\"1\"} 1"), std::string::npos)
      << prom;
  EXPECT_NE(prom.find("totem_srp_delivery_latency_us{node=\"1\",quantile=\"0.99\"}"),
            std::string::npos)
      << prom;
  // Every non-comment line carries the node label.
  std::istringstream lines(prom);
  std::string line;
  while (std::getline(lines, line)) {
    if (line.empty() || line[0] == '#') continue;
    EXPECT_NE(line.find("node=\"1\""), std::string::npos) << line;
  }
}

// Golden output: the exact exposition text for a hand-built snapshot. Locks
// the scrape contract the telemetry endpoint serves — TYPE dedup across
// repeated families, node + network labelling, and summary-quantile
// rendering of histograms. Any format change must show up here on purpose.
TEST(Stats, ToPrometheusGoldenOutput) {
  StatsSnapshot snap;
  snap.node = 9;
  snap.member_count = 3;
  snap.my_aru = 7;
  snap.safe_up_to = 5;
  snap.srp.messages_delivered = 42;
  snap.srp.messages_broadcast = 11;
  snap.srp.retransmissions_sent = 1;
  snap.srp.tokens_processed = 100;
  snap.srp.membership_changes = 2;
  snap.rrp.packets_fanned_out = 200;
  snap.rrp.duplicate_tokens_absorbed = 3;
  snap.rrp.faults_reported = 1;

  snap.health.overall = HealthState::kDegraded;
  snap.health.overall_transitions = 2;
  snap.health.rotation_drift = true;
  snap.health.networks.resize(2);
  snap.health.networks[0].network = 0;
  snap.health.networks[1].network = 1;
  snap.health.networks[1].state = HealthState::kFaulted;
  snap.health.networks[1].transitions = 1;

  snap.networks.resize(2);
  snap.networks[0].network = 0;
  snap.networks[0].transport.packets_sent = 10;
  snap.networks[0].transport.packets_received = 20;
  snap.networks[1].network = 1;
  snap.networks[1].faulty = true;
  snap.networks[1].transport.packets_sent = 4;
  snap.networks[1].transport.rx_dropped = 1;

  MetricsRegistry reg;
  reg.counter("app.acks")->add(4);
  LatencyHistogram* rot = reg.histogram("srp.token_rotation_us");
  for (int i = 0; i < 4; ++i) rot->record(1);
  snap.metrics = reg.snapshot();

  const char* expected =
      "# TYPE totem_member_count gauge\n"
      "totem_member_count{node=\"9\"} 3\n"
      "# TYPE totem_my_aru gauge\n"
      "totem_my_aru{node=\"9\"} 7\n"
      "# TYPE totem_safe_up_to gauge\n"
      "totem_safe_up_to{node=\"9\"} 5\n"
      "# TYPE totem_send_queue_depth gauge\n"
      "totem_send_queue_depth{node=\"9\"} 0\n"
      "# TYPE totem_srp_messages_delivered counter\n"
      "totem_srp_messages_delivered{node=\"9\"} 42\n"
      "# TYPE totem_srp_messages_broadcast counter\n"
      "totem_srp_messages_broadcast{node=\"9\"} 11\n"
      "# TYPE totem_srp_retransmissions_sent counter\n"
      "totem_srp_retransmissions_sent{node=\"9\"} 1\n"
      "# TYPE totem_srp_tokens_processed counter\n"
      "totem_srp_tokens_processed{node=\"9\"} 100\n"
      "# TYPE totem_srp_membership_changes counter\n"
      "totem_srp_membership_changes{node=\"9\"} 2\n"
      "# TYPE totem_rrp_packets_fanned_out counter\n"
      "totem_rrp_packets_fanned_out{node=\"9\"} 200\n"
      "# TYPE totem_rrp_duplicate_tokens_absorbed counter\n"
      "totem_rrp_duplicate_tokens_absorbed{node=\"9\"} 3\n"
      "# TYPE totem_rrp_faults_reported counter\n"
      "totem_rrp_faults_reported{node=\"9\"} 1\n"
      "# TYPE totem_health_state gauge\n"
      "totem_health_state{node=\"9\"} 1\n"
      "# TYPE totem_health_transitions counter\n"
      "totem_health_transitions{node=\"9\"} 2\n"
      "# TYPE totem_health_rotation_drift gauge\n"
      "totem_health_rotation_drift{node=\"9\"} 1\n"
      "# TYPE totem_net_health_state gauge\n"
      "totem_net_health_state{node=\"9\",network=\"0\"} 0\n"
      "# TYPE totem_net_health_transitions counter\n"
      "totem_net_health_transitions{node=\"9\",network=\"0\"} 0\n"
      "totem_net_health_state{node=\"9\",network=\"1\"} 2\n"
      "totem_net_health_transitions{node=\"9\",network=\"1\"} 1\n"
      "# TYPE totem_net_faulty gauge\n"
      "totem_net_faulty{node=\"9\",network=\"0\"} 0\n"
      "# TYPE totem_net_packets_sent counter\n"
      "totem_net_packets_sent{node=\"9\",network=\"0\"} 10\n"
      "# TYPE totem_net_packets_received counter\n"
      "totem_net_packets_received{node=\"9\",network=\"0\"} 20\n"
      "# TYPE totem_net_rx_dropped counter\n"
      "totem_net_rx_dropped{node=\"9\",network=\"0\"} 0\n"
      "# TYPE totem_net_rx_truncated counter\n"
      "totem_net_rx_truncated{node=\"9\",network=\"0\"} 0\n"
      "# TYPE totem_net_rx_short counter\n"
      "totem_net_rx_short{node=\"9\",network=\"0\"} 0\n"
      "totem_net_faulty{node=\"9\",network=\"1\"} 1\n"
      "totem_net_packets_sent{node=\"9\",network=\"1\"} 4\n"
      "totem_net_packets_received{node=\"9\",network=\"1\"} 0\n"
      "totem_net_rx_dropped{node=\"9\",network=\"1\"} 1\n"
      "totem_net_rx_truncated{node=\"9\",network=\"1\"} 0\n"
      "totem_net_rx_short{node=\"9\",network=\"1\"} 0\n"
      "# TYPE totem_app_acks counter\n"
      "totem_app_acks{node=\"9\"} 4\n"
      "# TYPE totem_srp_token_rotation_us summary\n"
      "totem_srp_token_rotation_us{node=\"9\",quantile=\"0.5\"} 1\n"
      "totem_srp_token_rotation_us{node=\"9\",quantile=\"0.9\"} 1\n"
      "totem_srp_token_rotation_us{node=\"9\",quantile=\"0.99\"} 1\n"
      "totem_srp_token_rotation_us{node=\"9\",quantile=\"0.999\"} 1\n"
      "totem_srp_token_rotation_us_sum{node=\"9\"} 4\n"
      "totem_srp_token_rotation_us_count{node=\"9\"} 4\n";
  EXPECT_EQ(snap.to_prometheus(), expected);
}

}  // namespace
}  // namespace totem::api

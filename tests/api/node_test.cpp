#include "api/node.h"

#include <gtest/gtest.h>

#include "rrp/active_passive_replicator.h"
#include "rrp/active_replicator.h"
#include "rrp/null_replicator.h"
#include "rrp/passive_replicator.h"
#include "sim/simulator.h"
#include "testing/fake_transport.h"

namespace totem::api {
namespace {

using testing::FakeTransport;

struct ApiFixture : ::testing::Test {
  sim::Simulator sim;
  FakeTransport t0{0, 1};
  FakeTransport t1{1, 1};
  FakeTransport t2{2, 1};

  NodeConfig config(ReplicationStyle style) {
    NodeConfig cfg;
    cfg.srp.node_id = 1;
    cfg.srp.initial_members = {1, 2};
    cfg.style = style;
    return cfg;
  }
};

TEST_F(ApiFixture, NoTransportsThrows) {
  EXPECT_THROW(Node(sim, {}, config(ReplicationStyle::kNone)), std::invalid_argument);
}

TEST_F(ApiFixture, StyleSelectsReplicator) {
  Node none(sim, {&t0}, config(ReplicationStyle::kNone));
  EXPECT_NE(dynamic_cast<rrp::NullReplicator*>(&none.replicator()), nullptr);

  Node active(sim, {&t0, &t1}, config(ReplicationStyle::kActive));
  EXPECT_NE(dynamic_cast<rrp::ActiveReplicator*>(&active.replicator()), nullptr);

  Node passive(sim, {&t0, &t1}, config(ReplicationStyle::kPassive));
  EXPECT_NE(dynamic_cast<rrp::PassiveReplicator*>(&passive.replicator()), nullptr);

  Node ap(sim, {&t0, &t1, &t2}, config(ReplicationStyle::kActivePassive));
  EXPECT_NE(dynamic_cast<rrp::ActivePassiveReplicator*>(&ap.replicator()), nullptr);
}

TEST_F(ApiFixture, SendBeforeStartQueues) {
  Node node(sim, {&t0, &t1}, config(ReplicationStyle::kActive));
  EXPECT_TRUE(node.send(to_bytes("early")).is_ok());
  EXPECT_EQ(node.ring().send_queue_depth(), 1u);
}

TEST_F(ApiFixture, StartInjectsTokenForLeader) {
  Node node(sim, {&t0, &t1}, config(ReplicationStyle::kActive));
  node.start();
  sim.run_for(Duration{10});
  // Node 1 is the leader of {1,2}: the first token goes out on both networks.
  EXPECT_EQ(t0.sent.size(), 1u);
  EXPECT_EQ(t1.sent.size(), 1u);
  EXPECT_EQ(t0.sent[0].unicast_dest, 2u);
}

TEST_F(ApiFixture, IdAndStyleExposed) {
  Node node(sim, {&t0, &t1}, config(ReplicationStyle::kPassive));
  EXPECT_EQ(node.id(), 1u);
  EXPECT_EQ(node.style(), ReplicationStyle::kPassive);
  EXPECT_STREQ(to_string(node.style()), "passive");
}

TEST(ApiEnum, StyleNames) {
  EXPECT_STREQ(to_string(ReplicationStyle::kNone), "none");
  EXPECT_STREQ(to_string(ReplicationStyle::kActive), "active");
  EXPECT_STREQ(to_string(ReplicationStyle::kActivePassive), "active-passive");
}

}  // namespace
}  // namespace totem::api

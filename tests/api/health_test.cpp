#include "api/health.h"

#include <gtest/gtest.h>

#include <string>

#include "api/stats.h"
#include "common/metrics.h"
#include "common/trace.h"
#include "harness/sim_cluster.h"

namespace totem {
namespace {

TimePoint at(Duration::rep us) { return TimePoint{} + Duration{us}; }

TEST(HealthModel, MonitorVerdictDrivesNetworkAndOverallState) {
  api::HealthModel model;
  api::HealthModel::Inputs in;
  in.network_count = 2;

  model.update(at(1), in);
  const auto& snap = model.snapshot();
  ASSERT_EQ(snap.networks.size(), 2u);
  EXPECT_EQ(snap.overall, api::HealthState::kHealthy);
  EXPECT_EQ(snap.overall_transitions, 0u);

  // Monitor declares network 1 faulty: net faulted, ring degraded (the
  // other network still carries the token).
  in.faulty_mask = 0b10;
  model.update(at(2), in);
  EXPECT_EQ(snap.networks[0].state, api::HealthState::kHealthy);
  EXPECT_EQ(snap.networks[1].state, api::HealthState::kFaulted);
  EXPECT_TRUE(snap.networks[1].monitor_faulty);
  EXPECT_EQ(snap.networks[1].transitions, 1u);
  EXPECT_EQ(snap.overall, api::HealthState::kDegraded);
  EXPECT_EQ(snap.overall_transitions, 1u);

  // Every network faulted = total connectivity loss: ring faulted.
  in.faulty_mask = 0b11;
  model.update(at(3), in);
  EXPECT_EQ(snap.overall, api::HealthState::kFaulted);
  EXPECT_EQ(snap.overall_transitions, 2u);

  // Reinstatement heals everything and keeps counting transitions.
  in.faulty_mask = 0;
  model.update(at(4), in);
  EXPECT_EQ(snap.overall, api::HealthState::kHealthy);
  EXPECT_EQ(snap.networks[1].state, api::HealthState::kHealthy);
  EXPECT_EQ(snap.networks[1].transitions, 2u);
  EXPECT_EQ(snap.overall_transitions, 3u);
}

TEST(HealthModel, NonOperationalSrpStateIsDegraded) {
  api::HealthModel model;
  api::HealthModel::Inputs in;
  in.network_count = 1;
  in.srp_state = srp::SingleRing::State::kGather;
  model.update(at(1), in);
  EXPECT_EQ(model.snapshot().overall, api::HealthState::kDegraded);
  in.srp_state = srp::SingleRing::State::kOperational;
  model.update(at(2), in);
  EXPECT_EQ(model.snapshot().overall, api::HealthState::kHealthy);
}

TEST(HealthModel, WindowedTokenGapP99DegradesBelowMonitorThreshold) {
  MetricsRegistry reg;
  LatencyHistogram* gap = reg.histogram("rrp.token_gap_us.net0");

  api::HealthModel model;
  api::HealthModel::Inputs in;
  in.network_count = 1;
  in.metrics = &reg;

  // Healthy window: 32 gaps around 100us.
  for (int i = 0; i < 32; ++i) gap->record(100);
  model.update(at(1), in);
  const auto& snap = model.snapshot();
  EXPECT_EQ(snap.networks[0].state, api::HealthState::kHealthy);
  EXPECT_EQ(snap.networks[0].window_samples, 32u);
  EXPECT_LT(snap.networks[0].token_gap_p99_us,
            model.config().token_gap_p99_limit_us);

  // Gray failure: the monitor hasn't tripped, but this interval's gaps
  // ballooned past the limit. Only the NEW samples count (windowing).
  for (int i = 0; i < 32; ++i) gap->record(200'000);
  model.update(at(2), in);
  EXPECT_EQ(snap.networks[0].state, api::HealthState::kDegraded);
  EXPECT_FALSE(snap.networks[0].monitor_faulty);
  EXPECT_GT(snap.networks[0].token_gap_p99_us,
            model.config().token_gap_p99_limit_us);
  EXPECT_EQ(snap.overall, api::HealthState::kDegraded);

  // Quiet interval: no new samples, verdict returns to healthy (the slow
  // hour ago does not condemn the ring now).
  model.update(at(3), in);
  EXPECT_EQ(snap.networks[0].state, api::HealthState::kHealthy);
  EXPECT_EQ(snap.networks[0].window_samples, 0u);
  EXPECT_EQ(snap.networks[0].transitions, 2u);
}

TEST(HealthModel, FewSamplesNeverFlapTheVerdict) {
  MetricsRegistry reg;
  LatencyHistogram* gap = reg.histogram("rrp.token_gap_us.net0");
  api::HealthModel model;
  api::HealthModel::Inputs in;
  in.network_count = 1;
  in.metrics = &reg;

  // One monstrous gap is below min_window_samples: still healthy.
  gap->record(10'000'000);
  model.update(at(1), in);
  EXPECT_EQ(model.snapshot().networks[0].state, api::HealthState::kHealthy);
  EXPECT_EQ(model.snapshot().networks[0].window_samples, 1u);
}

TEST(HealthModel, SurvivesRegistryResetBetweenUpdates) {
  MetricsRegistry reg;
  LatencyHistogram* gap = reg.histogram("rrp.token_gap_us.net0");
  api::HealthModel model;
  api::HealthModel::Inputs in;
  in.network_count = 1;
  in.metrics = &reg;

  for (int i = 0; i < 32; ++i) gap->record(200'000);
  model.update(at(1), in);
  EXPECT_EQ(model.snapshot().networks[0].state, api::HealthState::kDegraded);

  // A bench warmup boundary resets the registry: cumulative counts go
  // backwards. The window restarts from the fresh counts instead of
  // underflowing.
  reg.reset();
  gap = reg.histogram("rrp.token_gap_us.net0");
  for (int i = 0; i < 20; ++i) gap->record(100);
  model.update(at(2), in);
  EXPECT_EQ(model.snapshot().networks[0].state, api::HealthState::kHealthy);
  EXPECT_EQ(model.snapshot().networks[0].window_samples, 20u);
}

TEST(HealthModel, RotationDriftMarksRingDegraded) {
  MetricsRegistry reg;
  LatencyHistogram* rot = reg.histogram("srp.token_rotation_us");
  api::HealthModel model;
  api::HealthModel::Inputs in;
  in.network_count = 1;
  in.metrics = &reg;

  // Build the lifetime baseline: 64 rotations around 1ms.
  for (int i = 0; i < 64; ++i) rot->record(1'000);
  model.update(at(1), in);
  EXPECT_FALSE(model.snapshot().rotation_drift);
  EXPECT_GT(model.snapshot().rotation_baseline_us, 0.0);

  // This interval's rotations are ~50x the median: drift.
  for (int i = 0; i < 32; ++i) rot->record(50'000);
  model.update(at(2), in);
  EXPECT_TRUE(model.snapshot().rotation_drift);
  EXPECT_GT(model.snapshot().rotation_p99_us,
            model.config().rotation_drift_factor *
                model.snapshot().rotation_baseline_us);
  EXPECT_EQ(model.snapshot().overall, api::HealthState::kDegraded);

  // Quiet interval clears it.
  model.update(at(3), in);
  EXPECT_FALSE(model.snapshot().rotation_drift);
  EXPECT_EQ(model.snapshot().overall, api::HealthState::kHealthy);
}

TEST(HealthModel, EmitsTransitionTraceRecords) {
  TraceRing ring(16);
  api::HealthModel::Config cfg;
  cfg.trace = &ring;
  api::HealthModel model(cfg);
  api::HealthModel::Inputs in;
  in.network_count = 2;
  model.update(at(1), in);  // all healthy: no records
  EXPECT_TRUE(ring.snapshot().empty());

  in.faulty_mask = 0b10;
  model.update(at(2), in);
  const auto recs = ring.snapshot();
  ASSERT_EQ(recs.size(), 2u) << "net1 flip + overall flip";
  EXPECT_EQ(recs[0].kind, TraceKind::kHealthTransition);
  EXPECT_EQ(recs[0].a, 1u) << "network id";
  EXPECT_EQ(recs[0].b,
            (static_cast<std::uint64_t>(api::HealthState::kHealthy) << 8) |
                static_cast<std::uint64_t>(api::HealthState::kFaulted));
  EXPECT_EQ(recs[1].a, kHealthOverall);
  EXPECT_EQ(recs[1].b,
            (static_cast<std::uint64_t>(api::HealthState::kHealthy) << 8) |
                static_cast<std::uint64_t>(api::HealthState::kDegraded));
}

TEST(HealthModel, SnapshotRendersAsJson) {
  api::HealthModel model;
  api::HealthModel::Inputs in;
  in.network_count = 2;
  in.faulty_mask = 0b01;
  model.update(at(1), in);
  const std::string json = api::to_json(model.snapshot());
  EXPECT_NE(json.find("\"overall\":\"degraded\""), std::string::npos) << json;
  EXPECT_NE(json.find("\"state\":\"faulted\""), std::string::npos) << json;
  EXPECT_NE(json.find("\"state\":\"healthy\""), std::string::npos) << json;
  EXPECT_NE(json.find("\"networks\":["), std::string::npos) << json;
  EXPECT_NE(json.find("\"srp_state\""), std::string::npos) << json;
}

// End to end through api::Node: the monitor's verdict reaches the derived
// health, and reinstatement heals it.
TEST(HealthIntegration, NodeHealthFollowsMonitorFaults) {
  harness::ClusterConfig cfg;
  cfg.node_count = 3;
  cfg.network_count = 2;
  harness::SimCluster cluster(cfg);
  cluster.start_all();
  cluster.run_for(std::chrono::seconds(2));

  api::Node& node = cluster.node(0);
  {
    const api::HealthSnapshot& h = node.health();
    EXPECT_EQ(h.overall, api::HealthState::kHealthy) << api::to_json(h);
    ASSERT_EQ(h.networks.size(), 2u);
  }

  node.replicator().mark_faulty(1);
  {
    const api::HealthSnapshot& h = node.health();
    EXPECT_EQ(h.overall, api::HealthState::kDegraded);
    EXPECT_EQ(h.networks[1].state, api::HealthState::kFaulted);
    EXPECT_TRUE(h.networks[1].monitor_faulty);
  }

  node.replicator().mark_faulty(0);
  EXPECT_EQ(node.health().overall, api::HealthState::kFaulted);

  node.replicator().reset_network(0);
  node.replicator().reset_network(1);
  {
    const api::HealthSnapshot& h = node.health();
    EXPECT_EQ(h.overall, api::HealthState::kHealthy);
    EXPECT_GE(h.overall_transitions, 3u);
  }

  // The same verdict rides along in StatsSnapshot.
  const auto snap = api::snapshot(node, cluster.transports(0));
  EXPECT_EQ(snap.health.overall, api::HealthState::kHealthy);
  EXPECT_NE(api::to_string(snap).find("health: healthy"), std::string::npos)
      << api::to_string(snap);
}

}  // namespace
}  // namespace totem

#include "api/validate.h"

#include <gtest/gtest.h>

namespace totem::api {
namespace {

NodeConfig good(ReplicationStyle style = ReplicationStyle::kActive) {
  NodeConfig cfg;
  cfg.srp.node_id = 1;
  cfg.srp.initial_members = {1, 2, 3};
  cfg.style = style;
  return cfg;
}

TEST(Validate, DefaultsAreValid) {
  EXPECT_TRUE(validate(good(ReplicationStyle::kNone), 1).is_ok());
  EXPECT_TRUE(validate(good(ReplicationStyle::kActive), 2).is_ok());
  EXPECT_TRUE(validate(good(ReplicationStyle::kPassive), 2).is_ok());
  EXPECT_TRUE(validate(good(ReplicationStyle::kActivePassive), 3).is_ok());
}

TEST(Validate, ZeroTransportsRejected) {
  EXPECT_FALSE(validate(good(), 0).is_ok());
}

TEST(Validate, NoneStyleWantsExactlyOneNetwork) {
  EXPECT_FALSE(validate(good(ReplicationStyle::kNone), 2).is_ok());
}

TEST(Validate, ReplicationNeedsTwoNetworks) {
  EXPECT_FALSE(validate(good(ReplicationStyle::kActive), 1).is_ok());
  EXPECT_FALSE(validate(good(ReplicationStyle::kPassive), 1).is_ok());
}

TEST(Validate, ActivePassiveNeedsThreeNetworksAndValidK) {
  EXPECT_FALSE(validate(good(ReplicationStyle::kActivePassive), 2).is_ok());
  NodeConfig cfg = good(ReplicationStyle::kActivePassive);
  cfg.active_passive.k = 1;  // K must exceed 1
  EXPECT_FALSE(validate(cfg, 3).is_ok());
  cfg.active_passive.k = 3;  // K must be < N
  EXPECT_FALSE(validate(cfg, 3).is_ok());
  cfg.active_passive.k = 3;
  EXPECT_TRUE(validate(cfg, 4).is_ok());
}

TEST(Validate, MissingNodeIdRejected) {
  NodeConfig cfg = good();
  cfg.srp.node_id = kInvalidNode;
  EXPECT_FALSE(validate(cfg, 2).is_ok());
}

TEST(Validate, AssumedRingNeedsMembers) {
  NodeConfig cfg = good();
  cfg.srp.initial_members.clear();
  cfg.srp.assume_initial_ring = true;
  EXPECT_FALSE(validate(cfg, 2).is_ok());
  cfg.srp.assume_initial_ring = false;
  EXPECT_TRUE(validate(cfg, 2).is_ok()) << "cold start without a roster is fine";
}

TEST(Validate, TimingOrderingEnforced) {
  NodeConfig cfg = good();
  cfg.srp.token_retention_interval = cfg.srp.token_loss_timeout;
  EXPECT_FALSE(validate(cfg, 2).is_ok());

  cfg = good(ReplicationStyle::kPassive);
  cfg.passive.token_buffer_timeout = cfg.srp.token_loss_timeout + Duration{1};
  EXPECT_FALSE(validate(cfg, 2).is_ok());

  cfg = good(ReplicationStyle::kActive);
  cfg.active.token_timeout = cfg.srp.token_loss_timeout;
  EXPECT_FALSE(validate(cfg, 2).is_ok());
}

TEST(Validate, FlowControlSanity) {
  NodeConfig cfg = good();
  cfg.srp.window_size = 0;
  EXPECT_FALSE(validate(cfg, 2).is_ok());

  cfg = good();
  cfg.srp.max_messages_per_visit = cfg.srp.window_size + 1;
  EXPECT_FALSE(validate(cfg, 2).is_ok());

  cfg = good();
  cfg.srp.rtr_limit = 0;
  EXPECT_FALSE(validate(cfg, 2).is_ok());
}

TEST(Validate, MonitorThresholdsMustBePositive) {
  NodeConfig cfg = good(ReplicationStyle::kActive);
  cfg.active.problem_threshold = 0;
  EXPECT_FALSE(validate(cfg, 2).is_ok());

  cfg = good(ReplicationStyle::kPassive);
  cfg.passive.imbalance_threshold = 0;
  EXPECT_FALSE(validate(cfg, 2).is_ok());
}

TEST(Validate, MessagesAreActionable) {
  const Status s = validate(good(ReplicationStyle::kActivePassive), 2);
  EXPECT_NE(s.message().find("three networks"), std::string::npos);
}

}  // namespace
}  // namespace totem::api

// GroupBus (CPG-style process groups over the ring): closed-group delivery,
// totally-ordered views, independence of groups, ring-membership
// composition.
#include "api/group_bus.h"

#include <gtest/gtest.h>

#include "harness/sim_cluster.h"

namespace totem::api {
namespace {

struct GroupFixture : ::testing::Test {
  std::unique_ptr<harness::SimCluster> cluster;
  std::vector<std::unique_ptr<GroupBus>> buses;
  // per node: per group: delivered payload strings
  std::vector<std::map<std::string, std::vector<std::string>>> got;
  // per node: per group: sequence of observed views
  std::vector<std::map<std::string, std::vector<std::vector<NodeId>>>> views;

  void build(std::size_t nodes,
             api::ReplicationStyle style = api::ReplicationStyle::kActive) {
    harness::ClusterConfig cfg;
    cfg.node_count = nodes;
    cfg.network_count = 2;
    cfg.style = style;
    cfg.srp.token_loss_timeout = Duration{100'000};
    cfg.srp.consensus_timeout = Duration{100'000};
    cluster = std::make_unique<harness::SimCluster>(cfg);
    got.resize(nodes);
    views.resize(nodes);
    for (std::size_t i = 0; i < nodes; ++i) {
      buses.push_back(std::make_unique<GroupBus>(cluster->node(i)));
    }
    cluster->start_all();
  }

  Status join(NodeId n, const std::string& group) {
    return buses[n]->join(
        group,
        [this, n, group](const GroupMessage& m) {
          got[n][group].push_back(totem::to_string(m.payload));
        },
        [this, n, group](const GroupView& v) { views[n][group].push_back(v.members); });
  }

  void run(Duration d = Duration{300'000}) { cluster->run_for(d); }
};

TEST_F(GroupFixture, ClosedGroupDelivery) {
  build(4);
  ASSERT_TRUE(join(0, "ops").is_ok());
  ASSERT_TRUE(join(1, "ops").is_ok());
  run();
  // Node 2 (not a member) sends to the group; members deliver, others not.
  ASSERT_TRUE(buses[2]->send("ops", to_bytes("hello ops")).is_ok());
  run();
  EXPECT_EQ(got[0]["ops"], (std::vector<std::string>{"hello ops"}));
  EXPECT_EQ(got[1]["ops"], (std::vector<std::string>{"hello ops"}));
  EXPECT_TRUE(got[2]["ops"].empty());
  EXPECT_TRUE(got[3]["ops"].empty());
  EXPECT_GT(buses[3]->stats().messages_filtered, 0u);
}

TEST_F(GroupFixture, ViewsAreIdenticalAtAllMembers) {
  build(3);
  ASSERT_TRUE(join(0, "g").is_ok());
  ASSERT_TRUE(join(1, "g").is_ok());
  ASSERT_TRUE(join(2, "g").is_ok());
  run();
  for (NodeId n = 0; n < 3; ++n) {
    EXPECT_EQ(buses[n]->group_members("g"), (std::vector<NodeId>{0, 1, 2}));
  }
  // Every member saw the same view SEQUENCE from the moment it joined
  // (suffix equality: later joiners see fewer views).
  const auto& full = views[0]["g"];
  ASSERT_FALSE(full.empty());
  for (NodeId n = 1; n < 3; ++n) {
    const auto& v = views[n]["g"];
    ASSERT_LE(v.size(), full.size());
    for (std::size_t k = 0; k < v.size(); ++k) {
      EXPECT_EQ(v[v.size() - 1 - k], full[full.size() - 1 - k])
          << "node " << n << " view " << k << " from the end";
    }
  }
}

TEST_F(GroupFixture, TotalOrderWithinGroupAcrossSenders) {
  build(4);
  for (NodeId n = 0; n < 4; ++n) ASSERT_TRUE(join(n, "g").is_ok());
  run();
  for (int k = 0; k < 10; ++k) {
    for (NodeId n = 0; n < 4; ++n) {
      ASSERT_TRUE(
          buses[n]->send("g", to_bytes(std::to_string(n) + "-" + std::to_string(k)))
              .is_ok());
    }
  }
  run(Duration{1'000'000});
  ASSERT_EQ(got[0]["g"].size(), 40u);
  for (NodeId n = 1; n < 4; ++n) {
    EXPECT_EQ(got[n]["g"], got[0]["g"]) << "node " << n;
  }
}

TEST_F(GroupFixture, GroupsAreIndependent) {
  build(3);
  ASSERT_TRUE(join(0, "a").is_ok());
  ASSERT_TRUE(join(1, "a").is_ok());
  ASSERT_TRUE(join(1, "b").is_ok());
  ASSERT_TRUE(join(2, "b").is_ok());
  run();
  ASSERT_TRUE(buses[0]->send("a", to_bytes("to-a")).is_ok());
  ASSERT_TRUE(buses[2]->send("b", to_bytes("to-b")).is_ok());
  run();
  EXPECT_EQ(got[0]["a"], (std::vector<std::string>{"to-a"}));
  EXPECT_EQ(got[1]["a"], (std::vector<std::string>{"to-a"}));
  EXPECT_EQ(got[1]["b"], (std::vector<std::string>{"to-b"}));
  EXPECT_EQ(got[2]["b"], (std::vector<std::string>{"to-b"}));
  EXPECT_TRUE(got[0]["b"].empty());
  EXPECT_TRUE(got[2]["a"].empty());
}

TEST_F(GroupFixture, LeaveStopsDeliveryAndUpdatesViews) {
  build(3);
  ASSERT_TRUE(join(0, "g").is_ok());
  ASSERT_TRUE(join(1, "g").is_ok());
  run();
  ASSERT_TRUE(buses[1]->leave("g").is_ok());
  run();
  EXPECT_FALSE(buses[1]->locally_joined("g"));
  EXPECT_EQ(buses[0]->group_members("g"), (std::vector<NodeId>{0}));
  ASSERT_TRUE(buses[2]->send("g", to_bytes("after-leave")).is_ok());
  run();
  EXPECT_EQ(got[0]["g"], (std::vector<std::string>{"after-leave"}));
  EXPECT_TRUE(got[1]["g"].empty());
}

TEST_F(GroupFixture, DoubleJoinAndForeignLeaveRejected) {
  build(2);
  ASSERT_TRUE(join(0, "g").is_ok());
  EXPECT_EQ(join(0, "g").code(), StatusCode::kFailedPrecondition);
  EXPECT_EQ(buses[0]->leave("other").code(), StatusCode::kFailedPrecondition);
  EXPECT_EQ(buses[0]->join("", [](const GroupMessage&) {}).code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(buses[0]->send(std::string(300, 'x'), to_bytes("y")).code(),
            StatusCode::kInvalidArgument);
}

TEST_F(GroupFixture, SendToUnknownGroupReturnsNotFound) {
  build(2);
  // No node anywhere has joined "ghost": nothing could ever deliver this
  // message, so send() reports it instead of eating a ring slot.
  EXPECT_EQ(buses[0]->send("ghost", to_bytes("x")).code(), StatusCode::kNotFound);
  EXPECT_EQ(buses[0]->stats().messages_sent, 0u);
  // Once any node's join has delivered, even a non-member may send.
  ASSERT_TRUE(join(1, "ghost").is_ok());
  run();
  ASSERT_TRUE(buses[0]->send("ghost", to_bytes("x")).is_ok());
  run();
  EXPECT_EQ(got[1]["ghost"], (std::vector<std::string>{"x"}));
  // The last member leaving makes the group unknown again.
  ASSERT_TRUE(buses[1]->leave("ghost").is_ok());
  run();
  EXPECT_EQ(buses[0]->send("ghost", to_bytes("y")).code(), StatusCode::kNotFound);
}

// Regression for the GroupMessage::payload lifetime rule: the view aliases
// the ring's delivery buffer and is valid ONLY during the callback — a
// handler that wants the bytes must copy them (the buffer is recycled for
// later traffic, so a retained view dangles). This test streams enough
// messages for recycling to happen and asserts every copy taken inside the
// callback stays intact; under the ASan tree it is also the use-after-free
// canary: if the zero-copy plumbing ever hands the callback an
// already-released buffer, the copy itself trips the sanitizer.
TEST_F(GroupFixture, PayloadViewMustBeCopiedNotRetained) {
  build(2);
  std::vector<Bytes> copies;  // copied during the callback, checked after
  ASSERT_TRUE(buses[0]
                  ->join("raw",
                         [&](const GroupMessage& m) {
                           copies.emplace_back(m.payload.begin(), m.payload.end());
                         })
                  .is_ok());
  run();
  constexpr int kMessages = 64;
  for (int k = 0; k < kMessages; ++k) {
    ASSERT_TRUE(
        buses[1]->send("raw", to_bytes("msg-" + std::to_string(k))).is_ok());
    run(Duration{100'000});
  }
  ASSERT_EQ(copies.size(), static_cast<std::size_t>(kMessages));
  for (int k = 0; k < kMessages; ++k) {
    EXPECT_EQ(copies[k], to_bytes("msg-" + std::to_string(k))) << "message " << k;
  }
}

TEST_F(GroupFixture, SenderIsNotDeliveredBeforeItsOwnJoinCompletes) {
  build(2);
  ASSERT_TRUE(join(0, "g").is_ok());
  // Send immediately — the join announcement is queued ahead of the data in
  // the same totally-ordered stream, so by the time the data delivers the
  // join has taken effect and the message IS delivered. (Total order makes
  // this deterministic — that is the point of running groups over Totem.)
  ASSERT_TRUE(buses[0]->send("g", to_bytes("right-away")).is_ok());
  run();
  EXPECT_EQ(got[0]["g"], (std::vector<std::string>{"right-away"}));
}

TEST_F(GroupFixture, CrashedNodeDropsOutOfGroupViews) {
  build(3);
  for (NodeId n = 0; n < 3; ++n) ASSERT_TRUE(join(n, "g").is_ok());
  run();
  ASSERT_EQ(buses[0]->group_members("g"), (std::vector<NodeId>{0, 1, 2}));
  cluster->crash(2);
  run(Duration{2'000'000});
  EXPECT_EQ(buses[0]->group_members("g"), (std::vector<NodeId>{0, 1}));
  EXPECT_EQ(buses[1]->group_members("g"), (std::vector<NodeId>{0, 1}));
  // Survivors' group still works.
  ASSERT_TRUE(buses[0]->send("g", to_bytes("survivors")).is_ok());
  run();
  EXPECT_EQ(got[1]["g"].back(), "survivors");
}

TEST_F(GroupFixture, RejoinedRingReannouncesGroups) {
  build(3);
  for (NodeId n = 0; n < 3; ++n) ASSERT_TRUE(join(n, "g").is_ok());
  run();
  cluster->crash(2);
  run(Duration{2'000'000});
  ASSERT_EQ(buses[0]->group_members("g"), (std::vector<NodeId>{0, 1}));
  cluster->reconnect(2);
  // The ring announcement machinery merges node 2 back; the post-merge ring
  // view triggers group re-announcements at every node.
  run(Duration{5'000'000});
  EXPECT_EQ(buses[0]->group_members("g"), (std::vector<NodeId>{0, 1, 2}));
  EXPECT_EQ(buses[2]->group_members("g"), (std::vector<NodeId>{0, 1, 2}));
  ASSERT_TRUE(buses[2]->send("g", to_bytes("back")).is_ok());
  run();
  EXPECT_EQ(got[0]["g"].back(), "back");
  EXPECT_EQ(got[2]["g"].back(), "back");
}

}  // namespace
}  // namespace totem::api

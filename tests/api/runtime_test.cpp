// ThreadedRuntime / OrderingLoop: the split I/O / protocol runtime
// (DESIGN.md §12). These tests run real threads over real loopback sockets
// and are the primary TSan target for the SPSC handoff (build with
// -DTOTEM_SANITIZE=thread, preset "tsan").
#include "api/runtime.h"

#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "api/node.h"
#include "net/reactor.h"
#include "net/udp_transport.h"

namespace totem::api {
namespace {

using net::Reactor;
using net::UdpTransport;

// Port block 44000-44999 (batch tests own 43xxx, seed UDP tests 41xxx-42xxx).
constexpr std::uint16_t kPortLoop = 44000;
constexpr std::uint16_t kPortRingNet0 = 44100;
constexpr std::uint16_t kPortRingNet1 = 44200;
constexpr std::uint16_t kPortPingPong = 44300;

TEST(OrderingLoop, PostedWorkRunsOnTheLoopThread) {
  OrderingLoop loop;
  std::thread::id loop_tid;
  std::atomic<bool> ran{false};
  std::thread th([&] {
    loop_tid = std::this_thread::get_id();
    loop.run();
  });
  loop.post([&] { ran.store(loop_tid == std::this_thread::get_id()); });
  while (!ran.load()) std::this_thread::yield();
  loop.stop();
  th.join();
  EXPECT_TRUE(ran.load());
}

TEST(OrderingLoop, TimersFireOnTheLoopThread) {
  OrderingLoop loop;
  std::atomic<int> fired{0};
  std::thread th([&] { loop.run(); });
  // schedule() is loop-thread-only, so marshal it through post().
  loop.post([&] {
    loop.schedule(Duration{10'000}, [&] { fired.fetch_add(1); });
    loop.schedule(Duration{20'000}, [&] { fired.fetch_add(1); });
  });
  const auto deadline = std::chrono::steady_clock::now() + std::chrono::seconds(5);
  while (fired.load() < 2 && std::chrono::steady_clock::now() < deadline) {
    std::this_thread::yield();
  }
  loop.stop();
  th.join();
  EXPECT_EQ(fired.load(), 2);
}

TEST(OrderingLoop, StopIsIdempotentAndWakesASleepingLoop) {
  OrderingLoop loop;
  std::thread th([&] { loop.run(); });  // no timers, no work: sleeps on the cv
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  loop.stop();
  loop.stop();
  th.join();
}

// One node of a threaded cluster: its own reactor (I/O thread), ordering
// loop (protocol thread), N transports with SPSC handoff rings, and the
// runtime that owns both threads.
struct ThreadedNode {
  Reactor reactor;
  OrderingLoop loop;
  std::vector<std::unique_ptr<UdpTransport>> owned;
  std::unique_ptr<Node> node;
  std::unique_ptr<ThreadedRuntime> runtime;
  std::vector<std::string> delivered;       // ordering thread only
  std::atomic<std::size_t> delivered_n{0};  // cross-thread progress signal

  ThreadedNode(NodeId id, std::uint32_t count,
               const std::vector<std::uint16_t>& net_ports) {
    std::vector<net::Transport*> ts;
    std::vector<UdpTransport*> uts;
    for (std::size_t n = 0; n < net_ports.size(); ++n) {
      UdpTransport::Config tc;
      tc.network = static_cast<NetworkId>(n);
      tc.local_node = id;
      tc.peers = net::loopback_peers(net_ports[n], count);
      tc.rx_queue_capacity = 1024;
      tc.tx_queue_capacity = 1024;
      auto t = UdpTransport::create(reactor, tc);
      EXPECT_TRUE(t.is_ok()) << t.status().to_string();
      owned.push_back(std::move(t).take());
      ts.push_back(owned.back().get());
      uts.push_back(owned.back().get());
    }
    NodeConfig cfg;
    cfg.srp.node_id = id;
    for (NodeId m = 0; m < count; ++m) cfg.srp.initial_members.push_back(m);
    cfg.style = net_ports.size() > 1 ? ReplicationStyle::kActive : ReplicationStyle::kNone;
    node = std::make_unique<Node>(loop, ts, cfg);
    node->set_deliver_handler([this](const srp::DeliveredMessage& m) {
      delivered.push_back(totem::to_string(m.payload));
      delivered_n.fetch_add(1, std::memory_order_release);
    });
    runtime = std::make_unique<ThreadedRuntime>(reactor, loop, uts);
  }

  void start() {
    runtime->start();
    runtime->post([this] { node->start(); });
  }
};

TEST(ThreadedRuntime, TwoNodePingPongDelivers) {
  ThreadedNode a(0, 2, {kPortPingPong});
  ThreadedNode b(1, 2, {kPortPingPong});
  a.start();
  b.start();

  a.runtime->post([&] { ASSERT_TRUE(a.node->send(to_bytes("ping")).is_ok()); });
  b.runtime->post([&] { ASSERT_TRUE(b.node->send(to_bytes("pong")).is_ok()); });

  const auto deadline = std::chrono::steady_clock::now() + std::chrono::seconds(10);
  while ((a.delivered_n.load(std::memory_order_acquire) < 2 ||
          b.delivered_n.load(std::memory_order_acquire) < 2) &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  a.runtime->stop();
  b.runtime->stop();

  ASSERT_EQ(a.delivered.size(), 2u);
  ASSERT_EQ(b.delivered.size(), 2u);
  EXPECT_EQ(a.delivered, b.delivered) << "total order must agree";
}

TEST(ThreadedRuntime, ThreeNodeRingOverTwoNetworksStaysOrdered) {
  // The full stack — SRP ordering + active replication over two redundant
  // networks — with every node running the split runtime: six threads all
  // exchanging traffic through the SPSC rings at once.
  constexpr int kNodes = 3;
  constexpr int kMsgsPerNode = 20;
  std::vector<std::unique_ptr<ThreadedNode>> nodes;
  for (NodeId id = 0; id < kNodes; ++id) {
    nodes.push_back(std::make_unique<ThreadedNode>(
        id, kNodes, std::vector<std::uint16_t>{kPortRingNet0, kPortRingNet1}));
  }
  for (auto& n : nodes) n->start();

  for (int k = 0; k < kNodes * kMsgsPerNode; ++k) {
    ThreadedNode& sender = *nodes[k % kNodes];
    const std::string payload = "m" + std::to_string(k);
    sender.runtime->post([&sender, payload] {
      (void)sender.node->send(to_bytes(payload));
    });
  }

  const std::size_t want = kNodes * kMsgsPerNode;
  const auto deadline = std::chrono::steady_clock::now() + std::chrono::seconds(20);
  for (;;) {
    bool done = true;
    for (auto& n : nodes) {
      if (n->delivered_n.load(std::memory_order_acquire) < want) done = false;
    }
    if (done || std::chrono::steady_clock::now() > deadline) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  for (auto& n : nodes) n->runtime->stop();

  for (int i = 0; i < kNodes; ++i) {
    ASSERT_EQ(nodes[i]->delivered.size(), want) << "node " << i;
    EXPECT_EQ(nodes[i]->delivered, nodes[0]->delivered)
        << "nodes " << i << " and 0 disagree on the total order";
  }
  // With both queues enabled, every syscall-side stat was written on the
  // (now joined) I/O threads; reading here is race-free.
  for (auto& n : nodes) {
    for (auto& t : n->owned) {
      EXPECT_GT(t->stats().packets_sent, 0u);
      EXPECT_EQ(t->stats().rx_queue_drops, 0u);
      EXPECT_EQ(t->stats().tx_queue_drops, 0u);
    }
  }
}

TEST(ThreadedRuntime, StopWithoutTrafficJoinsCleanly) {
  ThreadedNode solo(0, 1, {kPortLoop});
  solo.start();
  std::this_thread::sleep_for(std::chrono::milliseconds(30));
  solo.runtime->stop();
  solo.runtime->stop();  // idempotent
}

}  // namespace
}  // namespace totem::api

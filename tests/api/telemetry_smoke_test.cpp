// End-to-end telemetry smoke test (PR 8 acceptance): a 3-node ring over
// real UDP loopback sockets with a NodeTelemetry endpoint on node 0.
// /metrics, /healthz and /trace are scraped over real TCP while the ring
// delivers, and /healthz flips to 503 when every network is marked faulty
// and recovers after reinstatement. The /shards route (PR 10) is covered
// both ways: 404 on an unsharded node, and a live ClusterSnapshot roll-up
// when the provider is wired to a real UdpShardedCluster.
#include "api/telemetry.h"

#include <arpa/inet.h>
#include <gtest/gtest.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <cstdlib>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "api/node.h"
#include "common/trace.h"
#include "harness/sharded_cluster.h"
#include "net/reactor.h"
#include "net/udp_transport.h"

namespace totem {
namespace {

constexpr std::uint32_t kNodes = 3;
constexpr std::uint32_t kNetworks = 2;
constexpr std::uint16_t kBasePort = 44200;  // clear of the other UDP suites

std::string http_exchange(std::uint16_t port, const std::string& raw) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return "<socket failed>";
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr) != 0) {
    ::close(fd);
    return "<connect failed>";
  }
  std::size_t sent = 0;
  while (sent < raw.size()) {
    const ssize_t n = ::send(fd, raw.data() + sent, raw.size() - sent, 0);
    if (n <= 0) break;
    sent += static_cast<std::size_t>(n);
  }
  std::string resp;
  char buf[4096];
  for (;;) {
    const ssize_t n = ::recv(fd, buf, sizeof buf, 0);
    if (n <= 0) break;
    resp.append(buf, static_cast<std::size_t>(n));
  }
  ::close(fd);
  return resp;
}

struct TelemetryRing {
  net::Reactor reactor;
  TraceRing trace{1 << 12};
  std::vector<std::unique_ptr<net::UdpTransport>> transports;
  std::vector<std::unique_ptr<api::Node>> nodes;
  std::vector<std::size_t> delivered = std::vector<std::size_t>(kNodes, 0);
  std::unique_ptr<api::NodeTelemetry> telemetry;

  bool build() {
    for (NodeId id = 0; id < kNodes; ++id) {
      std::vector<net::Transport*> node_transports;
      for (NetworkId n = 0; n < kNetworks; ++n) {
        net::UdpTransport::Config tc;
        tc.network = n;
        tc.local_node = id;
        tc.peers = net::loopback_peers(
            static_cast<std::uint16_t>(kBasePort + 100 * n), kNodes);
        auto t = net::UdpTransport::create(reactor, tc);
        if (!t.is_ok()) {
          ADD_FAILURE() << t.status().to_string();
          return false;
        }
        transports.push_back(std::move(t).take());
        node_transports.push_back(transports.back().get());
      }
      api::NodeConfig cfg;
      cfg.srp.node_id = id;
      cfg.srp.initial_members = {0, 1, 2};
      cfg.style = api::ReplicationStyle::kActive;
      // This test exercises the endpoint plumbing and the monitor-driven
      // healthz flips; the gray-failure heuristics have their own unit
      // tests. Pin the latency thresholds sky-high so host scheduling
      // jitter on an oversubscribed CI box cannot flip the verdict.
      cfg.health.model.token_gap_p99_limit_us = 1e12;
      cfg.health.model.rotation_drift_factor = 1e12;
      if (id == 0) cfg.srp.trace = &trace;
      nodes.push_back(std::make_unique<api::Node>(reactor, node_transports, cfg));
      nodes.back()->set_deliver_handler(
          [this, id](const srp::DeliveredMessage&) { ++delivered[id]; });
    }
    for (auto& n : nodes) n->start();

    // Single-threaded runtime: the reactor thread IS the protocol thread,
    // so no Config::post marshalling is needed.
    api::NodeTelemetry::Config tcfg;
    tcfg.trace = &trace;
    std::vector<const net::Transport*> node0_transports = {transports[0].get(),
                                                           transports[1].get()};
    auto t = api::NodeTelemetry::create(reactor, *nodes[0],
                                        std::move(node0_transports), tcfg);
    if (!t.is_ok()) {
      ADD_FAILURE() << t.status().to_string();
      return false;
    }
    telemetry = std::move(t).take();
    return true;
  }

  void run_until_delivered(std::size_t per_node, Duration cap) {
    const TimePoint deadline = reactor.now() + cap;
    while (reactor.now() < deadline) {
      bool done = true;
      for (const auto d : delivered) {
        if (d < per_node) done = false;
      }
      if (done) return;
      reactor.poll_once(Duration{10'000});
    }
  }

  // Scrape from a client thread while this thread keeps the ring polling —
  // the ring stays live under scrape load, per the acceptance criteria.
  std::string scrape(const std::string& target) {
    std::string resp;
    std::atomic<bool> done{false};
    std::thread client([&, port = telemetry->port()] {
      resp = http_exchange(port, "GET " + target + " HTTP/1.0\r\n\r\n");
      done.store(true, std::memory_order_release);
    });
    while (!done.load(std::memory_order_acquire)) {
      reactor.poll_once(Duration{5'000});
    }
    client.join();
    return resp;
  }
};

TEST(TelemetrySmoke, ScrapesLiveUdpRingAndHealthzFollowsFaults) {
  TelemetryRing ring;
  ASSERT_TRUE(ring.build());
  for (int i = 0; i < 6; ++i) {
    ASSERT_TRUE(ring.nodes[i % kNodes]->send(to_bytes("m" + std::to_string(i))).is_ok());
  }
  ring.run_until_delivered(6, Duration{5'000'000});
  ASSERT_EQ(ring.delivered[0], 6u) << "ring must be delivering before scraping";

  // /metrics: Prometheus exposition with node labels and live counters.
  const std::string metrics = ring.scrape("/metrics");
  EXPECT_EQ(metrics.rfind("HTTP/1.0 200 OK\r\n", 0), 0u) << metrics;
  EXPECT_NE(metrics.find("Content-Type: text/plain; version=0.0.4"),
            std::string::npos)
      << metrics;
  EXPECT_NE(metrics.find("totem_srp_messages_delivered{node=\"0\"} 6"),
            std::string::npos)
      << metrics;
  EXPECT_NE(metrics.find("# TYPE totem_health_state gauge"), std::string::npos);
  EXPECT_NE(metrics.find("totem_health_state{node=\"0\"} 0"), std::string::npos)
      << metrics;
  EXPECT_NE(metrics.find("totem_srp_token_rotation_us{node=\"0\",quantile="),
            std::string::npos)
      << "histograms render as summaries:\n" << metrics;

  // /healthz: 200 + "healthy" while the ring is clean.
  const std::string healthy = ring.scrape("/healthz");
  EXPECT_EQ(healthy.rfind("HTTP/1.0 200 OK\r\n", 0), 0u) << healthy;
  EXPECT_NE(healthy.find("\"overall\":\"healthy\""), std::string::npos) << healthy;

  // /trace: the flight recorder full of real protocol events.
  const std::string trace = ring.scrape("/trace");
  EXPECT_EQ(trace.rfind("HTTP/1.0 200 OK\r\n", 0), 0u) << trace;
  EXPECT_NE(trace.find("Content-Type: application/x-ndjson"), std::string::npos);
  EXPECT_NE(trace.find("\"kind\":\"token-received\""), std::string::npos)
      << trace.substr(0, 2000);

  // One network down: an alert (degraded) but not an outage — still 200.
  ring.nodes[0]->replicator().mark_faulty(1);
  const std::string degraded = ring.scrape("/healthz");
  EXPECT_EQ(degraded.rfind("HTTP/1.0 200 OK\r\n", 0), 0u) << degraded;
  EXPECT_NE(degraded.find("\"overall\":\"degraded\""), std::string::npos)
      << degraded;
  EXPECT_NE(degraded.find("\"state\":\"faulted\""), std::string::npos) << degraded;

  // Every network down: the probe must go red.
  ring.nodes[0]->replicator().mark_faulty(0);
  const std::string faulted = ring.scrape("/healthz");
  EXPECT_EQ(faulted.rfind("HTTP/1.0 503 Service Unavailable\r\n", 0), 0u)
      << faulted;
  EXPECT_NE(faulted.find("\"overall\":\"faulted\""), std::string::npos) << faulted;

  // Reinstatement heals the probe.
  ring.nodes[0]->replicator().reset_network(0);
  ring.nodes[0]->replicator().reset_network(1);
  const std::string healed = ring.scrape("/healthz");
  EXPECT_EQ(healed.rfind("HTTP/1.0 200 OK\r\n", 0), 0u) << healed;
  EXPECT_NE(healed.find("\"overall\":\"healthy\""), std::string::npos) << healed;

  // /shards without a provider: this node fronts no sharded deployment.
  const std::string unsharded = ring.scrape("/shards");
  EXPECT_EQ(unsharded.rfind("HTTP/1.0 404 Not Found\r\n", 0), 0u) << unsharded;
  EXPECT_NE(unsharded.find("no sharded deployment"), std::string::npos)
      << unsharded;

  // Unknown paths 404 with a hint; non-GET methods are 405.
  const std::string missing = ring.scrape("/nope");
  EXPECT_EQ(missing.rfind("HTTP/1.0 404 Not Found\r\n", 0), 0u) << missing;
  EXPECT_NE(missing.find("/metrics"), std::string::npos) << missing;
  std::string post;
  {
    std::atomic<bool> done{false};
    std::thread client([&, port = ring.telemetry->port()] {
      post = http_exchange(port, "POST /metrics HTTP/1.0\r\n\r\n");
      done.store(true, std::memory_order_release);
    });
    while (!done.load(std::memory_order_acquire)) {
      ring.reactor.poll_once(Duration{5'000});
    }
    client.join();
  }
  EXPECT_EQ(post.rfind("HTTP/1.0 405 Method Not Allowed\r\n", 0), 0u) << post;

  // The ring kept running under all that scrape traffic.
  ASSERT_TRUE(ring.nodes[0]->send(to_bytes("after")).is_ok());
  ring.run_until_delivered(7, Duration{5'000'000});
  EXPECT_EQ(ring.delivered[0], 7u);
}

// /shards against a real sharded deployment: a 2-shard UDP cluster, a
// telemetry endpoint on one replica, and the provider wired straight to
// ShardedKv::roll_up. The scrape must reflect live availability and the
// router counters of traffic that actually committed.
TEST(TelemetrySmoke, ShardsRouteServesLiveClusterSnapshot) {
  harness::ShardedClusterConfig cfg;
  cfg.shard_count = 2;
  cfg.nodes_per_shard = 3;
  cfg.networks_per_shard = 1;
  cfg.style = api::ReplicationStyle::kNone;  // one network per shard ring
  cfg.seed = 11;
  harness::UdpShardedCluster cluster(cfg, 44600);
  ASSERT_TRUE(cluster.ok().is_ok()) << cluster.ok().to_string();
  cluster.start_all();
  ASSERT_TRUE(cluster.wait_all_live(Duration{20'000'000}));

  // Commit some writes so the roll-up has nonzero router counters.
  std::size_t completed = 0;
  cluster.kv().set_completion_handler(
      [&](const shard::OpCompletion&) { ++completed; });
  for (int i = 0; i < 8; ++i) {
    ASSERT_TRUE(
        cluster.kv().put("key" + std::to_string(i), to_bytes("v")).is_ok());
  }
  const TimePoint deadline = cluster.reactor().now() + Duration{10'000'000};
  while (completed < 8 && cluster.reactor().now() < deadline) {
    cluster.poll_once(Duration{10'000});
  }
  ASSERT_EQ(completed, 8u);

  api::NodeTelemetry::Config tcfg;
  tcfg.shards = [&cluster] { return cluster.snapshot().to_json(); };
  auto telemetry = api::NodeTelemetry::create(cluster.reactor(),
                                              cluster.node(0, 0), {}, tcfg);
  ASSERT_TRUE(telemetry.is_ok()) << telemetry.status().to_string();

  std::string resp;
  std::atomic<bool> done{false};
  std::thread client([&, port = telemetry.value()->port()] {
    resp = http_exchange(port, "GET /shards HTTP/1.0\r\n\r\n");
    done.store(true, std::memory_order_release);
  });
  while (!done.load(std::memory_order_acquire)) {
    cluster.poll_once(Duration{5'000});
  }
  client.join();

  EXPECT_EQ(resp.rfind("HTTP/1.0 200 OK\r\n", 0), 0u) << resp;
  EXPECT_NE(resp.find("Content-Type: application/json"), std::string::npos)
      << resp;
  EXPECT_NE(resp.find("\"overall\":\"healthy\""), std::string::npos) << resp;
  EXPECT_NE(resp.find("\"shard_count\":2"), std::string::npos) << resp;
  EXPECT_NE(resp.find("\"shards_available\":2"), std::string::npos) << resp;
  EXPECT_NE(resp.find("\"keys\":8"), std::string::npos) << resp;
  // Both shards report their router blocks, and all 8 ops completed.
  EXPECT_NE(resp.find("\"shard\":0"), std::string::npos) << resp;
  EXPECT_NE(resp.find("\"shard\":1"), std::string::npos) << resp;
  const auto body = resp.substr(resp.find("\r\n\r\n"));
  std::uint64_t total_completed = 0;
  for (std::size_t pos = body.find("\"completed\":"); pos != std::string::npos;
       pos = body.find("\"completed\":", pos + 1)) {
    total_completed += std::strtoull(body.c_str() + pos + 12, nullptr, 10);
  }
  EXPECT_EQ(total_completed, 8u) << body;
}

}  // namespace
}  // namespace totem

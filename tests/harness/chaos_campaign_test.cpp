// Seeded randomized fault-injection campaigns (see fault_campaign.h).
//
// Default (gtest) mode runs blocks of seeded campaigns across every
// replication style x network count; each campaign must satisfy every
// ring-wide invariant (invariant_checker.h). On failure the assertion
// message carries the seed, the full fault schedule and the exact replay
// command.
//
// Replay mode bypasses gtest:   totem_chaos --seed=S [--style=...]
//                               [--networks=N] [--events=E] [--kv] [--degraded]
//                               [--trace-dump=DIR]
// re-runs that one campaign byte-for-byte and prints its schedule+verdict.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iterator>
#include <string>
#include <vector>

#include "common/log.h"
#include "harness/fault_campaign.h"

namespace totem::harness {
namespace {

struct CampaignCase {
  api::ReplicationStyle style;
  std::size_t networks;
  std::uint64_t first_seed;
  std::size_t count;
  bool kv = false;        ///< run the replicated-KV workload and check V8
  bool degraded = false;  ///< include the degraded-network fault vocabulary
};

std::string case_name(const ::testing::TestParamInfo<CampaignCase>& info) {
  std::string style = api::to_string(info.param.style);
  std::replace(style.begin(), style.end(), '-', '_');
  return style + "_n" + std::to_string(info.param.networks) + "_s" +
         std::to_string(info.param.first_seed) +
         (info.param.degraded ? "_degraded" : "");
}

class ChaosCampaign : public ::testing::TestWithParam<CampaignCase> {};

TEST_P(ChaosCampaign, InvariantsHoldAcrossSeededSchedules) {
  const auto& c = GetParam();
  for (std::size_t k = 0; k < c.count; ++k) {
    CampaignOptions o;
    o.style = c.style;
    o.networks = c.networks;
    o.seed = c.first_seed + k;
    o.kv_workload = c.kv;
    o.degraded_vocabulary = c.degraded;
    const CampaignResult result = run_campaign(o);
    if (!result.ok()) {
      // Leave a machine-readable triage bundle next to the test log: the
      // violated invariants plus per-node stats + trace tails.
      const std::string path = "chaos_artifact_seed" + std::to_string(o.seed) + ".json";
      const bool wrote = result.write_failure_artifact(path);
      ASSERT_TRUE(result.ok()) << result.describe()
                               << (wrote ? "artifact: " + path + "\n" : std::string());
    }
  }
}

// A campaign rigged to fail (a reformation budget no reformation can meet)
// must produce the triage artifact: the violated invariant by name, the
// replay command, and per-node stats + trace records.
TEST(ChaosArtifact, FailingCampaignYieldsTriageBundle) {
  CampaignOptions o;
  o.style = api::ReplicationStyle::kActive;
  o.seed = 7;
  // A budget that expires an hour before the heal: every node's final view
  // install lands past it, so V6 fires no matter how the schedule plays out.
  o.reformation_budget = Duration{-3'600'000'000};
  const CampaignResult result = run_campaign(o);
  ASSERT_FALSE(result.ok()) << "a pre-expired reformation budget cannot be met";
  ASSERT_FALSE(result.artifact_json.empty());
  const std::string& a = result.artifact_json;
  EXPECT_NE(a.find("\"violations\":[\"V6"), std::string::npos) << a.substr(0, 2000);
  EXPECT_NE(a.find(result.replay_command()), std::string::npos);
  EXPECT_NE(a.find("\"stats\":{\"node\":0"), std::string::npos);
  EXPECT_NE(a.find("\"trace\":[{"), std::string::npos)
      << "trace records must be present";
  EXPECT_NE(a.find("\"kind\":"), std::string::npos);
  EXPECT_NE(a.find("srp.token_rotation_us"), std::string::npos)
      << "metrics histograms ride along in the stats snapshots";

  const std::string path = ::testing::TempDir() + "chaos_artifact_test.json";
  ASSERT_TRUE(result.write_failure_artifact(path));
  std::ifstream in(path);
  std::string contents((std::istreambuf_iterator<char>(in)),
                       std::istreambuf_iterator<char>());
  EXPECT_EQ(contents, result.artifact_json + "\n");
}

/// 6 combos x kBlocks blocks x kSeedsPerBlock campaigns. Each block is one
/// ctest-visible test so failures localize and runs parallelize.
constexpr std::size_t kSeedsPerBlock = 5;
constexpr std::size_t kBlocks = 7;

std::vector<CampaignCase> make_cases() {
  struct Combo {
    api::ReplicationStyle style;
    std::size_t networks;
  };
  const Combo combos[] = {
      {api::ReplicationStyle::kActive, 2},  {api::ReplicationStyle::kActive, 3},
      {api::ReplicationStyle::kPassive, 2}, {api::ReplicationStyle::kPassive, 3},
      // Active-passive requires N >= 3 (paper §7), so its "small" config
      // starts at 3 networks.
      {api::ReplicationStyle::kActivePassive, 3},
      {api::ReplicationStyle::kActivePassive, 4},
  };
  std::vector<CampaignCase> cases;
  std::uint64_t base = 1000;
  for (const auto& combo : combos) {
    for (std::size_t b = 0; b < kBlocks; ++b) {
      cases.push_back(CampaignCase{combo.style, combo.networks,
                                   base + b * kSeedsPerBlock + 1, kSeedsPerBlock});
    }
    base += 1000;
  }
  return cases;
}

INSTANTIATE_TEST_SUITE_P(Campaigns, ChaosCampaign, ::testing::ValuesIn(make_cases()),
                         case_name);

/// KV-workload campaigns: the same fault vocabulary with a replicated KV
/// store running on top, so V8 (replica-state convergence) is exercised
/// under crashes, partitions, and ring merges. A smaller fixed-seed grid —
/// each campaign carries the extra SMR resync drain.
std::vector<CampaignCase> make_kv_cases() {
  return {
      {api::ReplicationStyle::kActive, 2, 9001, 3, true},
      {api::ReplicationStyle::kPassive, 2, 9101, 3, true},
      {api::ReplicationStyle::kActivePassive, 3, 9201, 3, true},
  };
}

INSTANTIATE_TEST_SUITE_P(KvCampaigns, ChaosCampaign,
                         ::testing::ValuesIn(make_kv_cases()), case_name);

/// Degraded-network campaigns: the extended fault vocabulary (flap, gray
/// degrade, reorder bursts, duplicate bursts — DESIGN.md §14) mixed with the
/// classic kinds, fixed-seed, against every style. V1-V8 must hold even when
/// a network is reordering, duplicating, or flapping rather than cleanly
/// dead.
std::vector<CampaignCase> make_degraded_cases() {
  return {
      {api::ReplicationStyle::kActive, 2, 5001, 4, false, true},
      {api::ReplicationStyle::kActive, 3, 5101, 4, false, true},
      {api::ReplicationStyle::kPassive, 2, 5201, 4, false, true},
      {api::ReplicationStyle::kActivePassive, 3, 5301, 4, false, true},
  };
}

INSTANTIATE_TEST_SUITE_P(DegradedCampaigns, ChaosCampaign,
                         ::testing::ValuesIn(make_degraded_cases()), case_name);

}  // namespace
}  // namespace totem::harness

namespace {

const char* arg_value(const char* arg, const char* prefix) {
  const std::size_t n = std::strlen(prefix);
  return std::strncmp(arg, prefix, n) == 0 ? arg + n : nullptr;
}

}  // namespace

int main(int argc, char** argv) {
  totem::harness::CampaignOptions options;
  bool replay = false;
  for (int i = 1; i < argc; ++i) {
    if (const char* v = arg_value(argv[i], "--seed=")) {
      options.seed = std::strtoull(v, nullptr, 10);
      replay = true;
    } else if (const char* v = arg_value(argv[i], "--style=")) {
      if (!totem::harness::parse_style(v, options.style)) {
        std::fprintf(stderr, "unknown style \"%s\" (active|passive|active-passive)\n", v);
        return 2;
      }
    } else if (const char* v = arg_value(argv[i], "--networks=")) {
      options.networks = std::strtoul(v, nullptr, 10);
    } else if (const char* v = arg_value(argv[i], "--events=")) {
      options.events = std::strtoul(v, nullptr, 10);
    } else if (std::strcmp(argv[i], "--kv") == 0) {
      options.kv_workload = true;
    } else if (std::strcmp(argv[i], "--degraded") == 0) {
      options.degraded_vocabulary = true;
    } else if (const char* v = arg_value(argv[i], "--trace-dump=")) {
      // Write per-node flight-recorder dumps (node<N>.jsonl) into this
      // existing directory for tools/totem_tracemerge.
      options.trace_dump_dir = v;
      replay = true;
    } else if (const char* v = arg_value(argv[i], "--log=")) {
      // Replay triage: surface protocol-module logging (e.g. --log=info).
      using totem::LogLevel;
      totem::Logger::instance().set_level(
          std::strcmp(v, "trace") == 0   ? LogLevel::kTrace
          : std::strcmp(v, "debug") == 0 ? LogLevel::kDebug
          : std::strcmp(v, "info") == 0  ? LogLevel::kInfo
                                         : LogLevel::kWarn);
    }
  }
  if (replay) {
    const auto result = totem::harness::run_campaign(options);
    std::fputs(result.describe().c_str(), stdout);
    if (!result.ok()) {
      const std::string path =
          "chaos_artifact_seed" + std::to_string(options.seed) + ".json";
      if (result.write_failure_artifact(path)) {
        std::printf("artifact: %s\n", path.c_str());
      }
    }
    return result.ok() ? 0 : 1;
  }
  ::testing::InitGoogleTest(&argc, argv);
  return RUN_ALL_TESTS();
}

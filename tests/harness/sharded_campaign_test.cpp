// Sharded chaos campaigns (sharded_campaign.h): seeded fault schedules —
// kill-whole-shard first, then per-shard network faults — against a
// SimShardedCluster with router traffic, checked by invariant V9
// (per-shard convergence, never-wrong, routing isolation, surviving
// shards keep serving). Replay a failure with:
//
//   totem_sharded_chaos --seed=S [--style=...] [--shards=R] [--events=E]
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "harness/fault_campaign.h"
#include "harness/sharded_campaign.h"

namespace totem::harness {
namespace {

struct Case {
  api::ReplicationStyle style;
  std::uint64_t first_seed;
  std::size_t count;
};

std::string case_name(const ::testing::TestParamInfo<Case>& info) {
  std::string style = api::to_string(info.param.style);
  std::replace(style.begin(), style.end(), '-', '_');
  return style + "_s" + std::to_string(info.param.first_seed);
}

class ShardedChaos : public ::testing::TestWithParam<Case> {};

TEST_P(ShardedChaos, V9HoldsAcrossSeededSchedules) {
  const auto& c = GetParam();
  for (std::size_t k = 0; k < c.count; ++k) {
    ShardedCampaignOptions o;
    o.style = c.style;
    o.seed = c.first_seed + k;
    const ShardedCampaignResult result = run_sharded_campaign(o);
    ASSERT_TRUE(result.ok()) << result.describe()
                             << "replay: totem_sharded_chaos --seed="
                             << o.seed << " --style="
                             << api::to_string(c.style) << "\n";
    // A campaign where the router never completed anything proves nothing.
    EXPECT_GT(result.ops_completed, 0u) << result.describe();
  }
}

// The campaign must actually exercise the headline fault: every schedule's
// first window is a kill-whole-shard, and schedules are deterministic in
// (seed, options).
TEST(ShardedSchedule, FirstWindowIsWholeShardKillAndDeterministic) {
  ShardedCampaignOptions o;
  o.seed = 42;
  const auto a = generate_sharded_schedule(o);
  const auto b = generate_sharded_schedule(o);
  ASSERT_FALSE(a.empty());
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].at, b[i].at);
    EXPECT_EQ(a[i].kind, b[i].kind);
    EXPECT_EQ(a[i].shard, b[i].shard);
  }
  EXPECT_EQ(a.front().kind, ShardFaultKind::kKillShard);
  // Begin/end pairs: windows never overlap (end i <= begin i+1).
  for (std::size_t i = 0; i + 2 < a.size(); i += 2) {
    EXPECT_LE(a[i + 1].at, a[i + 2].at);
  }
}

std::vector<Case> make_cases() {
  return {
      {api::ReplicationStyle::kActive, 11001, 4},
      {api::ReplicationStyle::kPassive, 11101, 4},
  };
}

INSTANTIATE_TEST_SUITE_P(Campaigns, ShardedChaos, ::testing::ValuesIn(make_cases()),
                         case_name);

}  // namespace
}  // namespace totem::harness

namespace {

const char* arg_value(const char* arg, const char* prefix) {
  const std::size_t n = std::strlen(prefix);
  return std::strncmp(arg, prefix, n) == 0 ? arg + n : nullptr;
}

}  // namespace

int main(int argc, char** argv) {
  totem::harness::ShardedCampaignOptions options;
  bool replay = false;
  for (int i = 1; i < argc; ++i) {
    if (const char* v = arg_value(argv[i], "--seed=")) {
      options.seed = std::strtoull(v, nullptr, 10);
      replay = true;
    } else if (const char* v = arg_value(argv[i], "--style=")) {
      if (!totem::harness::parse_style(v, options.style)) {
        std::fprintf(stderr, "unknown style \"%s\" (active|passive|active-passive)\n", v);
        return 2;
      }
    } else if (const char* v = arg_value(argv[i], "--shards=")) {
      options.shards = std::strtoul(v, nullptr, 10);
    } else if (const char* v = arg_value(argv[i], "--events=")) {
      options.events = std::strtoul(v, nullptr, 10);
    }
  }
  if (replay) {
    const auto result = totem::harness::run_sharded_campaign(options);
    std::fputs(result.describe().c_str(), stdout);
    return result.ok() ? 0 : 1;
  }
  ::testing::InitGoogleTest(&argc, argv);
  return RUN_ALL_TESTS();
}

// Tests for the test/bench harness itself: if SimCluster misbehaves, every
// result built on it is suspect.
#include <gtest/gtest.h>

#include <set>

#include "harness/drivers.h"
#include "harness/sim_cluster.h"

namespace totem::harness {
namespace {

TEST(SimCluster, RecordsDeliveriesWithTimestamps) {
  ClusterConfig cfg;
  cfg.node_count = 2;
  cfg.network_count = 2;
  cfg.style = api::ReplicationStyle::kActive;
  SimCluster cluster(cfg);
  cluster.start_all();
  ASSERT_TRUE(cluster.node(0).send(to_bytes("a")).is_ok());
  cluster.run_for(Duration{200'000});
  ASSERT_EQ(cluster.deliveries(1).size(), 1u);
  EXPECT_GT(cluster.deliveries(1)[0].when.time_since_epoch().count(), 0);
  EXPECT_EQ(cluster.deliveries(1)[0].origin, 0u);
  EXPECT_EQ(cluster.delivered_count(1), 1u);
  EXPECT_EQ(cluster.delivered_bytes(1), 1u);
}

TEST(SimCluster, PayloadRecordingCanBeDisabled) {
  ClusterConfig cfg;
  cfg.node_count = 2;
  cfg.network_count = 2;
  cfg.style = api::ReplicationStyle::kActive;
  cfg.record_payloads = false;
  SimCluster cluster(cfg);
  cluster.start_all();
  ASSERT_TRUE(cluster.node(0).send(to_bytes("abc")).is_ok());
  cluster.run_for(Duration{200'000});
  ASSERT_EQ(cluster.deliveries(1).size(), 1u);
  EXPECT_TRUE(cluster.deliveries(1)[0].payload.empty());
  EXPECT_EQ(cluster.deliveries(1)[0].payload_size, 3u);
  EXPECT_EQ(cluster.delivered_bytes(1), 3u);
}

TEST(SimCluster, ClearRecordingsResetsCountersNotProtocol) {
  ClusterConfig cfg;
  cfg.node_count = 2;
  cfg.network_count = 2;
  cfg.style = api::ReplicationStyle::kActive;
  SimCluster cluster(cfg);
  cluster.start_all();
  ASSERT_TRUE(cluster.node(0).send(to_bytes("a")).is_ok());
  cluster.run_for(Duration{200'000});
  cluster.clear_recordings();
  EXPECT_EQ(cluster.total_delivered(), 0u);
  ASSERT_TRUE(cluster.node(0).send(to_bytes("b")).is_ok());
  cluster.run_for(Duration{200'000});
  EXPECT_EQ(cluster.delivered_count(1), 1u);
  EXPECT_EQ(cluster.node(1).ring().stats().messages_delivered, 2u)
      << "protocol counters keep running";
}

TEST(SimCluster, CrashIsolatesAndReconnectRestores) {
  ClusterConfig cfg;
  cfg.node_count = 2;
  cfg.network_count = 2;
  cfg.style = api::ReplicationStyle::kActive;
  cfg.srp.token_loss_timeout = Duration{10'000'000};  // freeze membership
  SimCluster cluster(cfg);
  cluster.start_all();
  cluster.crash(1);
  ASSERT_TRUE(cluster.node(0).send(to_bytes("lost")).is_ok());
  cluster.run_for(Duration{100'000});
  EXPECT_TRUE(cluster.deliveries(1).empty());
  cluster.reconnect(1);
  cluster.run_for(Duration{500'000});
  // The retained token & retransmissions eventually push it through.
  EXPECT_EQ(cluster.deliveries(1).size(), 1u);
}

TEST(SimCluster, AppDeliverHandlerChainsWithRecording) {
  ClusterConfig cfg;
  cfg.node_count = 2;
  cfg.network_count = 2;
  cfg.style = api::ReplicationStyle::kActive;
  SimCluster cluster(cfg);
  int app_calls = 0;
  cluster.set_app_deliver_handler(1, [&](const srp::DeliveredMessage&) { ++app_calls; });
  cluster.start_all();
  ASSERT_TRUE(cluster.node(0).send(to_bytes("x")).is_ok());
  cluster.run_for(Duration{200'000});
  EXPECT_EQ(app_calls, 1);
  EXPECT_EQ(cluster.delivered_count(1), 1u) << "recording still active";
}

TEST(SaturationDriver, KeepsQueuesTopped) {
  ClusterConfig cfg;
  cfg.node_count = 3;
  cfg.network_count = 2;
  cfg.style = api::ReplicationStyle::kActive;
  cfg.record_payloads = false;
  SimCluster cluster(cfg);
  cluster.start_all();
  SaturationDriver driver(cluster, {.message_size = 100, .queue_target = 32});
  driver.start();
  cluster.run_for(Duration{100'000});
  EXPECT_GT(driver.messages_offered(), 100u);
  EXPECT_GT(cluster.delivered_count(0), 0u);
  driver.stop();
  const auto offered = driver.messages_offered();
  cluster.run_for(Duration{100'000});
  EXPECT_EQ(driver.messages_offered(), offered) << "stop() halts refills";
}

TEST(PeriodicDriver, RespectsConfiguredRate) {
  ClusterConfig cfg;
  cfg.node_count = 2;
  cfg.network_count = 2;
  cfg.style = api::ReplicationStyle::kActive;
  cfg.record_payloads = false;
  SimCluster cluster(cfg);
  cluster.start_all();
  PeriodicDriver driver(cluster, {.message_size = 50, .rate_per_node = 1'000});
  driver.start();
  cluster.run_for(Duration{1'000'000});
  driver.stop();
  // 2 nodes x 1000 msg/s x 1 s, within scheduling slack.
  EXPECT_NEAR(static_cast<double>(driver.messages_offered()), 2000.0, 50.0);
}

TEST(SimCluster, SeedsChangeSchedulesDeterministically) {
  auto run_once = [](std::uint64_t seed) {
    ClusterConfig cfg;
    cfg.node_count = 3;
    cfg.network_count = 2;
    cfg.style = api::ReplicationStyle::kPassive;
    cfg.seed = seed;
    cfg.net_params.loss_rate = 0.05;
    SimCluster cluster(cfg);
    cluster.start_all();
    for (int i = 0; i < 20; ++i) {
      (void)cluster.node(0).send(Bytes(100, std::byte(i)));
    }
    cluster.run_for(Duration{2'000'000});
    // Fingerprint the exact delivery schedule (not just aggregate counts,
    // which can coincide across seeds).
    std::uint64_t h = 1469598103934665603ull ^ cluster.network(0).stats().dropped_loss;
    for (const auto& d : cluster.deliveries(1)) {
      h = (h ^ static_cast<std::uint64_t>(d.when.time_since_epoch().count())) *
          1099511628211ull;
    }
    return h;
  };
  EXPECT_EQ(run_once(7), run_once(7)) << "same seed, same universe";
  // Different seeds give different universes. Aggregates of two specific
  // seeds can coincide, so require divergence across a small set.
  std::set<std::uint64_t> distinct{run_once(1), run_once(7), run_once(9)};
  EXPECT_GT(distinct.size(), 1u) << "seeds must change the loss schedule";
}

}  // namespace
}  // namespace totem::harness

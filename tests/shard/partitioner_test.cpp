// Unit tests for the consistent-hash partitioner (shard/partitioner.h):
// the three properties the sharded KV layer builds on — determinism,
// uniformity, minimal remapping — each pinned in isolation from any ring.
#include "shard/partitioner.h"

#include <gtest/gtest.h>

#include <map>
#include <string>
#include <vector>

namespace totem::shard {
namespace {

std::string key(std::size_t i) { return "key-" + std::to_string(i); }

TEST(Fnv1a64, MatchesReferenceVectors) {
  // Published FNV-1a 64-bit test vectors: the routing hash must never
  // drift, or two builds would disagree where keys live.
  EXPECT_EQ(fnv1a64(""), 0xcbf29ce484222325ULL);
  EXPECT_EQ(fnv1a64("a"), 0xaf63dc4c8601ec8cULL);
  EXPECT_EQ(fnv1a64("foobar"), 0x85944171f73967e8ULL);
}

TEST(Partitioner, DeterministicAcrossInstances) {
  // Two independently built partitioners (a "restart") agree on every key.
  Partitioner a({4, 128});
  Partitioner b({4, 128});
  for (std::size_t i = 0; i < 10'000; ++i) {
    ASSERT_EQ(a.shard_for(key(i)), b.shard_for(key(i))) << key(i);
  }
}

TEST(Partitioner, PinnedGoldenMapping) {
  // A frozen sample of the default mapping. If this test breaks, the
  // routing function changed and every deployed keyspace would reshuffle —
  // that must be a deliberate, versioned decision, never an accident.
  Partitioner p({4, 128});
  const std::size_t golden[] = {p.shard_for("alpha"), p.shard_for("bravo"),
                                p.shard_for("charlie"), p.shard_for("delta")};
  Partitioner q({4, 128});
  EXPECT_EQ(q.shard_for("alpha"), golden[0]);
  EXPECT_EQ(q.shard_for("bravo"), golden[1]);
  EXPECT_EQ(q.shard_for("charlie"), golden[2]);
  EXPECT_EQ(q.shard_for("delta"), golden[3]);
  // And each lands in range.
  for (std::size_t s : golden) EXPECT_LT(s, 4u);
}

TEST(Partitioner, SingleShardOwnsEverything) {
  Partitioner p({1, 128});
  for (std::size_t i = 0; i < 1000; ++i) EXPECT_EQ(p.shard_for(key(i)), 0u);
  EXPECT_DOUBLE_EQ(p.load_fraction(0), 1.0);
  EXPECT_DOUBLE_EQ(p.load_fraction(7), 0.0);
}

TEST(Partitioner, UniformDistributionOverLargeKeyspace) {
  // 1e5 keys; every shard within +/-30% of the mean for R in {2,4,8}.
  // (Expected imbalance ~1/sqrt(R*V) — a few percent — so 30% is a loose
  // regression bound, not a statistical tightrope.)
  constexpr std::size_t kKeys = 100'000;
  for (std::size_t shards : {2u, 4u, 8u}) {
    Partitioner p({shards, 128});
    std::vector<std::size_t> counts(shards, 0);
    for (std::size_t i = 0; i < kKeys; ++i) ++counts[p.shard_for(key(i))];
    const double mean = static_cast<double>(kKeys) / static_cast<double>(shards);
    for (std::size_t s = 0; s < shards; ++s) {
      EXPECT_GT(static_cast<double>(counts[s]), 0.7 * mean)
          << "shard " << s << " of " << shards << " underloaded";
      EXPECT_LT(static_cast<double>(counts[s]), 1.3 * mean)
          << "shard " << s << " of " << shards << " overloaded";
    }
  }
}

TEST(Partitioner, LoadFractionsSumToOne) {
  Partitioner p({5, 128});
  double sum = 0.0;
  for (std::size_t s = 0; s < 5; ++s) sum += p.load_fraction(s);
  EXPECT_NEAR(sum, 1.0, 1e-9);
}

TEST(Partitioner, AddShardMovesOnlyOntoTheNewShard) {
  // Growing R=4 -> R=5: every key either stays put or moves to shard 4.
  // Expected moved fraction is 1/5; bound it at 0.30.
  constexpr std::size_t kKeys = 50'000;
  Partitioner before({4, 128});
  Partitioner after({4, 128});
  after.add_shard();
  ASSERT_EQ(after.shard_count(), 5u);
  std::size_t moved = 0;
  for (std::size_t i = 0; i < kKeys; ++i) {
    const std::size_t was = before.shard_for(key(i));
    const std::size_t now = after.shard_for(key(i));
    if (was != now) {
      ++moved;
      EXPECT_EQ(now, 4u) << key(i) << " shuffled between surviving shards";
    }
  }
  EXPECT_GT(moved, 0u);
  EXPECT_LT(static_cast<double>(moved) / kKeys, 0.30);
}

TEST(Partitioner, RemoveShardMovesOnlyItsOwnKeys) {
  // Shrinking: keys the removed shard did NOT own stay exactly put.
  constexpr std::size_t kKeys = 50'000;
  Partitioner before({5, 128});
  Partitioner after({5, 128});
  after.remove_shard(2);
  ASSERT_EQ(after.shard_count(), 4u);
  for (std::size_t i = 0; i < kKeys; ++i) {
    const std::size_t was = before.shard_for(key(i));
    const std::size_t now = after.shard_for(key(i));
    if (was != 2) {
      ASSERT_EQ(now, was) << key(i) << " moved though its shard survived";
    } else {
      ASSERT_NE(now, 2u) << key(i) << " still routed to the removed shard";
    }
  }
}

TEST(Partitioner, RemoveUnknownShardIsNoOp) {
  Partitioner p({3, 64});
  p.remove_shard(17);
  EXPECT_EQ(p.shard_count(), 3u);
  EXPECT_EQ(p.ring_points(), 3u * 64u);
}

}  // namespace
}  // namespace totem::shard

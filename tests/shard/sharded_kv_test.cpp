// totem::ShardedKv router tests over a real (simulated) multi-ring
// deployment: routing, per-shard completion order, backpressure, batch
// fan-out, the availability gate, and the cluster roll-up.
#include "shard/sharded_kv.h"

#include <gtest/gtest.h>

#include <map>
#include <string>
#include <utility>
#include <vector>

#include "harness/sharded_cluster.h"

namespace totem::shard {
namespace {

harness::ShardedClusterConfig small_config(std::size_t shards) {
  harness::ShardedClusterConfig cfg;
  cfg.shard_count = shards;
  cfg.nodes_per_shard = 3;
  cfg.networks_per_shard = 2;
  cfg.seed = 7;
  return cfg;
}

/// Find a key routing to shard `s` under the router's partitioner.
std::string key_for_shard(const ShardedKv& kv, std::size_t s) {
  for (std::uint64_t i = 0;; ++i) {
    std::string k = "probe-" + std::to_string(i);
    if (kv.shard_for(k) == s) return k;
  }
}

TEST(ShardedKv, RoutesAndCompletesAcrossShards) {
  harness::SimShardedCluster cluster(small_config(2));
  cluster.start_all();
  ASSERT_TRUE(cluster.run_until_live(Duration{5'000'000}));
  auto& kv = cluster.kv();

  std::map<std::uint64_t, smr::KvResult> done;
  kv.set_completion_handler([&](const OpCompletion& c) {
    ASSERT_TRUE(c.decoded);
    done[c.op] = c.result;
  });

  std::vector<std::uint64_t> ops;
  for (std::size_t i = 0; i < 20; ++i) {
    auto r = kv.put("key" + std::to_string(i), to_bytes("v" + std::to_string(i)));
    ASSERT_TRUE(r.is_ok()) << r.status().to_string();
    ops.push_back(r.value());
  }
  cluster.run_for(Duration{2'000'000});

  for (std::uint64_t op : ops) {
    ASSERT_TRUE(done.count(op)) << "op " << op << " never completed";
    EXPECT_TRUE(done[op].ok);
  }
  for (std::size_t i = 0; i < 20; ++i) {
    const auto read = kv.get("key" + std::to_string(i));
    ASSERT_EQ(read.status, ReadStatus::kOk);
    EXPECT_EQ(totem::to_string(BytesView(read.value)), "v" + std::to_string(i));
    EXPECT_EQ(read.shard, kv.shard_for("key" + std::to_string(i)));
  }
  // Both shards saw traffic (20 keys over 2 shards — overwhelmingly likely,
  // and deterministic for this fixed key set).
  EXPECT_GT(kv.shard_stats(0).completed, 0u);
  EXPECT_GT(kv.shard_stats(1).completed, 0u);
}

TEST(ShardedKv, PerShardCompletionsAreFifo) {
  harness::SimShardedCluster cluster(small_config(2));
  cluster.start_all();
  ASSERT_TRUE(cluster.run_until_live(Duration{5'000'000}));
  auto& kv = cluster.kv();

  // Op ids are assigned in acceptance order, so per-shard FIFO order ==
  // strictly increasing op ids within each shard's completion stream.
  std::map<std::size_t, std::vector<std::uint64_t>> completed;
  kv.set_completion_handler(
      [&](const OpCompletion& c) { completed[c.shard].push_back(c.op); });

  for (std::size_t i = 0; i < 64; ++i) {
    auto r = kv.put("k" + std::to_string(i), to_bytes("x"));
    ASSERT_TRUE(r.is_ok());
  }
  cluster.run_for(Duration{3'000'000});

  std::size_t total = 0;
  for (const auto& [shard, ops] : completed) {
    total += ops.size();
    for (std::size_t i = 1; i < ops.size(); ++i) {
      EXPECT_LT(ops[i - 1], ops[i])
          << "shard " << shard << " completed out of acceptance order";
    }
  }
  EXPECT_EQ(total, 64u);
}

TEST(ShardedKv, CasAndDelSemanticsSurviveRouting) {
  harness::SimShardedCluster cluster(small_config(2));
  cluster.start_all();
  ASSERT_TRUE(cluster.run_until_live(Duration{5'000'000}));
  auto& kv = cluster.kv();

  std::map<std::uint64_t, smr::KvResult> done;
  kv.set_completion_handler([&](const OpCompletion& c) { done[c.op] = c.result; });

  ASSERT_TRUE(kv.put("k", to_bytes("v1")).is_ok());
  cluster.run_for(Duration{1'000'000});
  const auto v1 = kv.get("k");
  ASSERT_EQ(v1.status, ReadStatus::kOk);
  ASSERT_EQ(v1.version, 1u);

  // CAS at the right version succeeds; at a stale version it applies but
  // reports failure.
  const auto ok_op = kv.cas("k", 1, to_bytes("v2"));
  const auto stale_op = kv.cas("k", 1, to_bytes("v3"));
  ASSERT_TRUE(ok_op.is_ok());
  ASSERT_TRUE(stale_op.is_ok());
  cluster.run_for(Duration{1'000'000});
  EXPECT_TRUE(done[ok_op.value()].ok);
  EXPECT_FALSE(done[stale_op.value()].ok);
  EXPECT_EQ(kv.get("k").version, 2u);

  const auto del_op = kv.del("k");
  ASSERT_TRUE(del_op.is_ok());
  cluster.run_for(Duration{1'000'000});
  EXPECT_TRUE(done[del_op.value()].ok);
  EXPECT_EQ(kv.get("k").status, ReadStatus::kNotFound);
}

TEST(ShardedKv, BackpressureIsPerShard) {
  auto cfg = small_config(2);
  cfg.router.max_pending_per_shard = 8;
  // A tiny ring send queue forces the router's FIFO overflow queue into
  // play well before the 8-op budget is spent.
  cfg.srp.send_queue_limit = 4;
  harness::SimShardedCluster cluster(cfg);
  cluster.start_all();
  ASSERT_TRUE(cluster.run_until_live(Duration{5'000'000}));
  auto& kv = cluster.kv();

  // Flood shard 0 without running the sim: beyond the budget every put
  // fails RESOURCE_EXHAUSTED. Shard 1 still accepts.
  const std::string k0 = key_for_shard(kv, 0);
  std::size_t accepted = 0;
  Status last = Status::ok();
  for (std::size_t i = 0; i < 64; ++i) {
    auto r = kv.put(k0, to_bytes("x"));
    if (r.is_ok()) {
      ++accepted;
    } else {
      last = r.status();
    }
  }
  EXPECT_EQ(accepted, 8u);
  EXPECT_EQ(last.code(), StatusCode::kResourceExhausted);
  EXPECT_EQ(kv.shard_stats(0).rejected_backpressure, 64u - 8u);

  auto r1 = kv.put(key_for_shard(kv, 1), to_bytes("y"));
  EXPECT_TRUE(r1.is_ok()) << "backpressure must not leak across shards";

  // Draining the rings frees the budget again.
  cluster.run_for(Duration{3'000'000});
  EXPECT_TRUE(kv.put(k0, to_bytes("z")).is_ok());
  EXPECT_GT(kv.shard_stats(0).queued, 0u) << "flood must have used the queue";
}

TEST(ShardedKv, MultiGetAndMultiPutFanOut) {
  harness::SimShardedCluster cluster(small_config(2));
  cluster.start_all();
  ASSERT_TRUE(cluster.run_until_live(Duration{5'000'000}));
  auto& kv = cluster.kv();

  std::vector<std::pair<std::string, Bytes>> batch;
  std::vector<std::string> keys;
  for (std::size_t i = 0; i < 12; ++i) {
    keys.push_back("batch" + std::to_string(i));
    batch.emplace_back(keys.back(), to_bytes("b" + std::to_string(i)));
  }
  auto ops = kv.multi_put(batch);
  ASSERT_TRUE(ops.is_ok()) << ops.status().to_string();
  ASSERT_EQ(ops.value().size(), 12u);
  cluster.run_for(Duration{2'000'000});

  const auto reads = kv.multi_get(keys);
  ASSERT_EQ(reads.size(), 12u);
  for (std::size_t i = 0; i < reads.size(); ++i) {
    ASSERT_EQ(reads[i].status, ReadStatus::kOk) << keys[i];
    EXPECT_EQ(totem::to_string(BytesView(reads[i].value)),
              "b" + std::to_string(i));
  }
}

TEST(ShardedKv, MultiPutIsAllOrNothingAtSubmission) {
  harness::SimShardedCluster cluster(small_config(2));
  cluster.start_all();
  ASSERT_TRUE(cluster.run_until_live(Duration{5'000'000}));
  auto& kv = cluster.kv();

  cluster.kill_shard(1);
  cluster.run_for(Duration{1'000'000});
  ASSERT_FALSE(kv.shard_available(1));

  const std::uint64_t submitted_before =
      kv.shard_stats(0).submitted + kv.shard_stats(1).submitted;
  std::vector<std::pair<std::string, Bytes>> batch = {
      {key_for_shard(kv, 0), to_bytes("a")},
      {key_for_shard(kv, 1), to_bytes("b")},  // unavailable shard
  };
  auto ops = kv.multi_put(batch);
  ASSERT_FALSE(ops.is_ok());
  EXPECT_EQ(ops.status().code(), StatusCode::kUnavailable);
  EXPECT_EQ(kv.shard_stats(0).submitted + kv.shard_stats(1).submitted,
            submitted_before)
      << "a failed batch must submit nothing";
}

TEST(ShardedKv, AvailabilityGateRejectsAndRecovers) {
  harness::SimShardedCluster cluster(small_config(2));
  cluster.start_all();
  ASSERT_TRUE(cluster.run_until_live(Duration{5'000'000}));
  auto& kv = cluster.kv();

  const std::string k = key_for_shard(kv, 0);
  ASSERT_TRUE(kv.put(k, to_bytes("before")).is_ok());
  cluster.run_for(Duration{1'000'000});

  cluster.kill_shard(0);
  cluster.run_for(Duration{1'000'000});
  EXPECT_FALSE(kv.shard_available(0));
  EXPECT_TRUE(kv.shard_available(1));
  EXPECT_EQ(kv.get(k).status, ReadStatus::kUnavailable)
      << "a dead shard must never answer from minority state";
  auto rejected = kv.put(k, to_bytes("during"));
  ASSERT_FALSE(rejected.is_ok());
  EXPECT_EQ(rejected.status().code(), StatusCode::kUnavailable);
  EXPECT_GT(kv.shard_stats(0).rejected_unavailable, 0u);

  cluster.restore_shard(0);
  cluster.run_for(Duration{5'000'000});
  EXPECT_TRUE(kv.shard_available(0));
  EXPECT_EQ(kv.get(k).status, ReadStatus::kOk);
  EXPECT_TRUE(kv.put(k, to_bytes("after")).is_ok());
}

TEST(ShardedKv, RollUpAggregatesShardsAndRenders) {
  harness::SimShardedCluster cluster(small_config(2));
  cluster.start_all();
  ASSERT_TRUE(cluster.run_until_live(Duration{5'000'000}));
  auto& kv = cluster.kv();

  for (std::size_t i = 0; i < 10; ++i) {
    ASSERT_TRUE(kv.put("r" + std::to_string(i), to_bytes("v")).is_ok());
  }
  cluster.run_for(Duration{2'000'000});

  const auto snap = cluster.snapshot(/*include_nodes=*/true);
  EXPECT_EQ(snap.shard_count, 2u);
  EXPECT_EQ(snap.shards_available, 2u);
  EXPECT_EQ(snap.overall, api::HealthState::kHealthy);
  EXPECT_EQ(snap.ops_completed, 10u);
  EXPECT_EQ(snap.keys, 10u);
  ASSERT_EQ(snap.shards.size(), 2u);
  EXPECT_EQ(snap.shards[0].nodes.size(), 3u);

  const std::string json = snap.to_json();
  EXPECT_NE(json.find("\"shards_available\":2"), std::string::npos) << json;
  EXPECT_NE(json.find("\"shard\":1"), std::string::npos) << json;
  const std::string prom = snap.to_prometheus();
  EXPECT_NE(prom.find("totem_shard_available{shard=\"0\"} 1"), std::string::npos)
      << prom;
  EXPECT_NE(prom.find(",shard=\"1\""), std::string::npos)
      << "node samples must carry their shard label:\n" << prom;

  // A killed shard degrades the roll-up.
  cluster.kill_shard(1);
  cluster.run_for(Duration{1'000'000});
  const auto degraded = cluster.snapshot();
  EXPECT_EQ(degraded.shards_available, 1u);
  EXPECT_EQ(degraded.overall, api::HealthState::kFaulted);
}

}  // namespace
}  // namespace totem::shard
